(** Front-end load-balancing policies.

    The balancer lives on the fleet's shard 0 and decides from its own
    bookkeeping only — per-server outstanding counts (maintained from the
    responses it has seen) and the warm-route table it built itself — never
    from server-shard state, which is what keeps sharded fleet runs
    byte-identical to sequential ones. *)

type policy =
  | Round_robin  (** Rotate over routable servers. *)
  | Least_outstanding
      (** JBSQ-style: the routable server with the fewest requests in
          flight (lowest id wins ties). *)
  | Affinity
      (** Locality-aware: prefer the least-loaded server already warm for
          the entry (it skips the cold start), spilling to the fleet-wide
          least-outstanding server once every warm candidate has [spill]
          or more requests in flight — cold-start cost traded against
          queueing, the hexabase ADR-003 criterion. *)

val parse : string -> (policy, string) result
(** ["rr"]/["round-robin"], ["lo"]/["least-outstanding"], ["affinity"]. *)

val to_string : policy -> string
val names : string list

type view = {
  n : int;  (** Fleet size; server ids are [0 .. n-1]. *)
  routable : int -> bool;  (** Up and not draining. *)
  outstanding : int -> int;  (** LB-side in-flight count. *)
  spill : int;  (** Affinity spill threshold (e.g. the slot count). *)
}

type t

val create : policy -> t
val policy : t -> policy

val pick : t -> view -> entry:int -> (int * bool) option
(** Choose a server for a request to [entry], or [None] when no server is
    routable. The flag is [true] when an affinity warm route was used.
    [Affinity] records the chosen server as warm for [entry]. *)

val forget : t -> int -> unit
(** Drop a server from every warm route (it lost its warm state: drained
    away or about to cold-boot). *)
