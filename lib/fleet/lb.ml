type policy = Round_robin | Least_outstanding | Affinity

let spellings =
  [
    ("rr", Round_robin);
    ("round-robin", Round_robin);
    ("round_robin", Round_robin);
    ("lo", Least_outstanding);
    ("least-outstanding", Least_outstanding);
    ("least_outstanding", Least_outstanding);
    ("affinity", Affinity);
  ]

let names = [ "rr"; "lo"; "affinity" ]

let parse s =
  match List.assoc_opt (String.lowercase_ascii s) spellings with
  | Some p -> Ok p
  | None ->
      Error
        (Printf.sprintf "unknown LB policy %S (expected %s)" s
           (String.concat "|" names))

let to_string = function
  | Round_robin -> "rr"
  | Least_outstanding -> "lo"
  | Affinity -> "affinity"

type view = {
  n : int;
  routable : int -> bool;
  outstanding : int -> int;
  spill : int;
}

type t = {
  pol : policy;
  mutable rr : int;
  warm : (int, int list ref) Hashtbl.t;  (* entry -> warm server ids *)
}

let create pol = { pol; rr = 0; warm = Hashtbl.create 8 }
let policy t = t.pol

(* Lowest id among routable servers with minimal outstanding. *)
let least_outstanding v =
  let best = ref (-1) and best_out = ref max_int in
  for i = 0 to v.n - 1 do
    if v.routable i then begin
      let o = v.outstanding i in
      if o < !best_out then begin
        best := i;
        best_out := o
      end
    end
  done;
  if !best < 0 then None else Some !best

let round_robin t v =
  let rec go tries =
    if tries >= v.n then None
    else begin
      let c = t.rr mod v.n in
      t.rr <- (t.rr + 1) mod v.n;
      if v.routable c then Some c else go (tries + 1)
    end
  in
  go 0

let warm_list t entry =
  match Hashtbl.find_opt t.warm entry with
  | Some l -> l
  | None ->
      let l = ref [] in
      Hashtbl.add t.warm entry l;
      l

let pick t v ~entry =
  match t.pol with
  | Round_robin -> Option.map (fun s -> (s, false)) (round_robin t v)
  | Least_outstanding -> Option.map (fun s -> (s, false)) (least_outstanding v)
  | Affinity -> (
      let l = warm_list t entry in
      (* Drop servers that stopped being routable (drained or down). *)
      l := List.filter v.routable !l;
      let best_warm =
        List.fold_left
          (fun acc s ->
            match acc with
            | Some b when v.outstanding b < v.outstanding s -> acc
            | Some b when v.outstanding b = v.outstanding s && b < s -> acc
            | _ -> Some s)
          None !l
      in
      match best_warm with
      | Some s when v.outstanding s < v.spill -> Some (s, true)
      | _ -> (
          (* Spill: open the entry on the least-loaded server and remember
             the new warm route. *)
          match least_outstanding v with
          | None -> None
          | Some s ->
              if not (List.mem s !l) then l := s :: !l;
              Some (s, false)))

let forget t sid =
  Hashtbl.iter (fun _ l -> l := List.filter (fun s -> s <> sid) !l) t.warm
