type spec = {
  min_servers : int;
  max_servers : int;
  interval_us : float;
  up_util : float;
  down_util : float;
  up_after : int;
  down_after : int;
  step : int;
  boot_us : float;
}

let default =
  {
    min_servers = 1;
    max_servers = 0;
    interval_us = 50.0;
    up_util = 0.75;
    down_util = 0.25;
    up_after = 2;
    down_after = 6;
    step = 4;
    boot_us = 250.0;
  }

let presets =
  [
    ("default", default);
    ( "fast",
      { default with interval_us = 20.0; up_after = 1; down_after = 3; step = 8; boot_us = 100.0 } );
  ]

let validate t =
  if t.min_servers < 1 then Error "autoscale: min must be >= 1"
  else if t.max_servers < 0 then Error "autoscale: max must be >= 0"
  else if t.max_servers > 0 && t.max_servers < t.min_servers then
    Error "autoscale: max must be >= min"
  else if t.interval_us <= 0.0 then Error "autoscale: interval-us must be > 0"
  else if t.up_util <= 0.0 then Error "autoscale: up must be > 0"
  else if t.down_util < 0.0 || t.down_util >= t.up_util then
    Error "autoscale: need 0 <= down < up"
  else if t.up_after < 1 || t.down_after < 1 then
    Error "autoscale: up-after/down-after must be >= 1"
  else if t.step < 1 then Error "autoscale: step must be >= 1"
  else if t.boot_us <= 0.0 then Error "autoscale: boot-us must be > 0"
  else Ok ()

let parse spec_s =
  let apply base kv =
    match String.index_opt kv '=' with
    | None -> Error (Printf.sprintf "autoscale: expected key=value, got %S" kv)
    | Some i -> (
        let key = String.sub kv 0 i in
        let v = String.sub kv (i + 1) (String.length kv - i - 1) in
        let f () =
          match float_of_string_opt v with
          | Some f -> Ok f
          | None -> Error (Printf.sprintf "autoscale: bad float %S for %s" v key)
        in
        let int () =
          match int_of_string_opt v with
          | Some n -> Ok n
          | None -> Error (Printf.sprintf "autoscale: bad int %S for %s" v key)
        in
        let ( >>| ) r g = match r with Ok x -> Ok (g x) | Error _ as e -> e in
        match key with
        | "min" -> int () >>| fun x -> { base with min_servers = x }
        | "max" -> int () >>| fun x -> { base with max_servers = x }
        | "interval-us" | "interval_us" -> f () >>| fun x -> { base with interval_us = x }
        | "up" -> f () >>| fun x -> { base with up_util = x }
        | "down" -> f () >>| fun x -> { base with down_util = x }
        | "up-after" | "up_after" -> int () >>| fun x -> { base with up_after = x }
        | "down-after" | "down_after" -> int () >>| fun x -> { base with down_after = x }
        | "step" -> int () >>| fun x -> { base with step = x }
        | "boot-us" | "boot_us" -> f () >>| fun x -> { base with boot_us = x }
        | _ -> Error (Printf.sprintf "autoscale: unknown key %S" key))
  in
  let parts =
    String.split_on_char ',' spec_s |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  let base, rest =
    match parts with
    | first :: rest when List.mem_assoc first presets ->
        (List.assoc first presets, rest)
    | _ -> (default, parts)
  in
  let rec go acc = function
    | [] -> Ok acc
    | kv :: rest -> ( match apply acc kv with Ok acc -> go acc rest | Error _ as e -> e)
  in
  match go base rest with
  | Error _ as e -> e
  | Ok t -> ( match validate t with Ok () -> Ok t | Error m -> Error m)

let to_string t =
  Printf.sprintf
    "min=%d,max=%d,interval-us=%g,up=%g,down=%g,up-after=%d,down-after=%d,step=%d,boot-us=%g"
    t.min_servers t.max_servers t.interval_us t.up_util t.down_util t.up_after
    t.down_after t.step t.boot_us

let describe t =
  Printf.sprintf
    "min=%d max=%s interval=%gus up>=%g(x%d) down<=%g(x%d) step=%d boot=%gus"
    t.min_servers
    (if t.max_servers = 0 then "fleet" else string_of_int t.max_servers)
    t.interval_us t.up_util t.up_after t.down_util t.down_after t.step t.boot_us

let resolve t ~fleet =
  let t = if t.max_servers = 0 then { t with max_servers = fleet } else t in
  if t.max_servers > fleet then
    Error
      (Printf.sprintf "autoscale: max=%d exceeds the fleet size %d" t.max_servers
         fleet)
  else if t.min_servers > fleet then
    Error
      (Printf.sprintf "autoscale: min=%d exceeds the fleet size %d" t.min_servers
         fleet)
  else Ok t

type decision = Hold | Up of int | Down of int

type ctl = { spec : spec; mutable up_streak : int; mutable down_streak : int }

let control spec = { spec; up_streak = 0; down_streak = 0 }
let spec c = c.spec

let decide c ~util ~queue ~up ~booting =
  let s = c.spec in
  if util >= s.up_util || queue > 0.0 then begin
    c.up_streak <- c.up_streak + 1;
    c.down_streak <- 0
  end
  else if util <= s.down_util then begin
    c.down_streak <- c.down_streak + 1;
    c.up_streak <- 0
  end
  else begin
    c.up_streak <- 0;
    c.down_streak <- 0
  end;
  let capacity = up + booting in
  if c.up_streak >= s.up_after && capacity < s.max_servers then begin
    c.up_streak <- 0;
    Up (min s.step (s.max_servers - capacity))
  end
  else if c.down_streak >= s.down_after && capacity > s.min_servers then begin
    c.down_streak <- 0;
    Down (min s.step (capacity - s.min_servers))
  end
  else Hold
