module Engine = Jord_sim.Engine
module Time = Jord_sim.Time
module Model = Jord_faas.Model
module Netmodel = Jord_faas.Netmodel
module Registry = Jord_telemetry.Registry
module Sketch = Jord_telemetry.Sketch
module Traffic = Jord_workloads.Traffic

type config = {
  servers : int;
  policy : Lb.policy;
  member : Fserver.config;
  net : Netmodel.t;
  autoscale : Autoscaler.spec option;
  shards : int;
  service_samples : int;
  service_seed : int;
}

let default_config =
  {
    servers = 100;
    policy = Lb.Affinity;
    member = Fserver.default_config;
    net = Netmodel.default;
    autoscale = None;
    shards = 1;
    service_samples = 256;
    service_seed = 1117;
  }

type lifecycle = Down | Booting | Up | Draining

type sharded = { sfleet : Jord_sim.Fleet.t; shard_of : int array }

type scale_event = {
  ev_at : Time.t;
  ev_dir : [ `Up | `Down ];
  ev_count : int;
  ev_before : int;
  ev_after : int;
  ev_util : float;
}

type t = {
  cfg : config;
  entry_names : string array;
  entry_cum : float array;
  sharded : sharded option;
  engine : Engine.t;  (* the balancer's engine (shard 0 when sharded) *)
  members : Fserver.t array;
  state : lifecycle array;
  outstanding : int array;
  mutable outstanding_total : int;
  lb : Lb.t;
  mutable view : Lb.view option;
  autoscale : (Autoscaler.spec * Autoscaler.ctl) option;
  registry : Registry.t;
  latency : Sketch.t;
  mutable rollup : Jord_obsv.Rollup.t option;
  mutable tracer : Jord_obsv.Ftrace.t option;
  mutable slo_objs : Jord_obsv.Slo.objective list;  (* the "slo" keep rule *)
  mutable arrivals : int;
  mutable routed : int;
  mutable affinity_hits : int;
  mutable completed : int;
  mutable lb_shed : int;
  mutable server_shed : int;
  mutable up_count : int;
  mutable booting_count : int;
  mutable up_min : int;
  mutable up_max : int;
  mutable boots : int;
  mutable drains : int;
  mutable events : scale_event list;  (* newest first *)
  mutable traffic : Traffic.shape option;
  mutable duration_us : float;
  mutable ran : bool;
}

let one_way t = Netmodel.one_way t.cfg.net

(* --- cross-shard plumbing (the Cluster post pattern) ------------------- *)

(* Balancer -> member: the balancer runs on shard 0, so a co-sharded or
   sequential destination is a plain schedule; anything else goes through
   the mailbox with the constant balancer sid (= servers, unique fleet-
   wide) as the same-timestamp tiebreaker. *)
let to_server t ~server ~at fn =
  match t.sharded with
  | Some s when s.shard_of.(server) <> 0 ->
      Jord_sim.Shard.post
        (Jord_sim.Fleet.shard s.sfleet 0)
        ~dst:s.shard_of.(server) ~at ~sid:t.cfg.servers fn
  | Some s ->
      Engine.schedule_at (Jord_sim.Fleet.engine s.sfleet s.shard_of.(server)) ~time:at fn
  | None -> Engine.schedule_at t.engine ~time:at fn

(* Member -> balancer: sid is the member's id, as in Cluster. *)
let to_lb t ~server ~at fn =
  match t.sharded with
  | Some s when s.shard_of.(server) <> 0 ->
      Jord_sim.Shard.post
        (Jord_sim.Fleet.shard s.sfleet s.shard_of.(server))
        ~dst:0 ~at ~sid:server fn
  | Some _ | None -> Engine.schedule_at t.engine ~time:at fn

(* --- balancer-side request lifecycle ----------------------------------- *)

let entry_of_user t ~user =
  let u = Traffic.hash01 ~seed:t.cfg.service_seed ~user in
  let n = Array.length t.entry_cum in
  let rec go i = if i >= n - 1 || u < t.entry_cum.(i) then i else go (i + 1) in
  go 0

let observe_rollup t ~at_ps ~entry ~latency_ps ~shed ~trace_id =
  match t.rollup with
  | None -> ()
  | Some r ->
      Jord_obsv.Rollup.observe ~trace_id r ~at_ps ~fn:t.entry_names.(entry)
        ~latency_ps ~shed

(* The "slo" always-keep rule: a completed request that violated any
   matching latency objective must survive sampling. *)
let slo_violating t ~fn ~latency_ps =
  List.exists
    (fun o ->
      o.Jord_obsv.Slo.kind = Jord_obsv.Slo.Latency
      && (match o.Jord_obsv.Slo.fn with None -> true | Some f -> f = fn)
      && latency_ps > o.Jord_obsv.Slo.threshold_ps)
    t.slo_objs

(* Build and record the request's span. Every phase comes from an
   independent measurement — the wire hops from the netmodel constant, the
   member-side split from the member's own clock, end-to-end from the
   balancer's — so Fspan.conservation_ok genuinely cross-checks the
   cross-shard message stamping. Returns the trace id (-1 untraced). *)
let record_span t ~tracer ~req ~user ~entry ~server ~hit ~outcome ~submit_ps
    ~end_ps ~queue_ps ~cold_ps ~service_ps =
  let fn = t.entry_names.(entry) in
  let phases = Array.make Jord_obsv.Fspan.phase_count 0 in
  let set ph v = phases.(Jord_obsv.Fspan.phase_index ph) <- v in
  (if outcome <> Jord_obsv.Fspan.Shed_lb then begin
     let ow = one_way t in
     set Jord_obsv.Fspan.Wire ow;
     set Jord_obsv.Fspan.Response_wire ow;
     set Jord_obsv.Fspan.Member_queue queue_ps;
     set Jord_obsv.Fspan.Cold_start cold_ps;
     set Jord_obsv.Fspan.Service service_ps
   end);
  let sp =
    {
      Jord_obsv.Fspan.req_id = req;
      user;
      fn;
      member = server;
      lb_hit = hit;
      cold = cold_ps > 0;
      outcome;
      submit_ps;
      end_ps;
      phases;
    }
  in
  let keep =
    match outcome with
    | Jord_obsv.Fspan.Shed_lb | Jord_obsv.Fspan.Shed_member -> Some "shed"
    | Jord_obsv.Fspan.Completed ->
        if slo_violating t ~fn ~latency_ps:(end_ps - submit_ps) then Some "slo"
        else if cold_ps > 0 then Some "cold-start"
        else None
  in
  Jord_obsv.Ftrace.record tracer ?keep sp;
  req

let finish_drain t s =
  t.state.(s) <- Down;
  Lb.forget t.lb s

let complete t ~server ~entry ~submit_ps ~req ~user ~hit ~ok ~queue_ps ~cold_ps
    ~service_ps =
  t.outstanding.(server) <- t.outstanding.(server) - 1;
  t.outstanding_total <- t.outstanding_total - 1;
  let now = Engine.now t.engine in
  if ok then begin
    t.completed <- t.completed + 1;
    let lat = Time.( - ) now submit_ps in
    Sketch.add t.latency lat;
    let trace_id =
      match t.tracer with
      | None -> -1
      | Some tracer ->
          record_span t ~tracer ~req ~user ~entry ~server ~hit
            ~outcome:Jord_obsv.Fspan.Completed ~submit_ps ~end_ps:now ~queue_ps
            ~cold_ps ~service_ps
    in
    observe_rollup t ~at_ps:now ~entry ~latency_ps:lat ~shed:false ~trace_id
  end
  else begin
    t.server_shed <- t.server_shed + 1;
    (match t.tracer with
    | None -> ()
    | Some tracer ->
        ignore
          (record_span t ~tracer ~req ~user ~entry ~server ~hit
             ~outcome:Jord_obsv.Fspan.Shed_member ~submit_ps ~end_ps:now
             ~queue_ps:0 ~cold_ps:0 ~service_ps:0
            : int));
    observe_rollup t ~at_ps:now ~entry ~latency_ps:0 ~shed:true ~trace_id:(-1)
  end;
  if t.state.(server) = Draining && t.outstanding.(server) = 0 then finish_drain t server

let route t ~user =
  (* Request ids are arrival indices: arrivals are pre-scheduled on the
     balancer engine in generation order, so the numbering is identical at
     any shard count. *)
  let req = t.arrivals in
  t.arrivals <- t.arrivals + 1;
  let entry = entry_of_user t ~user in
  let now = Engine.now t.engine in
  let view = match t.view with Some v -> v | None -> assert false in
  match Lb.pick t.lb view ~entry with
  | None ->
      t.lb_shed <- t.lb_shed + 1;
      (match t.tracer with
      | None -> ()
      | Some tracer ->
          ignore
            (record_span t ~tracer ~req ~user ~entry ~server:(-1) ~hit:false
               ~outcome:Jord_obsv.Fspan.Shed_lb ~submit_ps:now ~end_ps:now
               ~queue_ps:0 ~cold_ps:0 ~service_ps:0
              : int));
      observe_rollup t ~at_ps:now ~entry ~latency_ps:0 ~shed:true ~trace_id:(-1)
  | Some (s, hit) ->
      if hit then t.affinity_hits <- t.affinity_hits + 1;
      t.routed <- t.routed + 1;
      t.outstanding.(s) <- t.outstanding.(s) + 1;
      t.outstanding_total <- t.outstanding_total + 1;
      let ow = one_way t in
      to_server t ~server:s ~at:(Time.( + ) now ow) (fun seng ->
          Fserver.deliver t.members.(s) ~entry
            ~on_done:(fun ~ok ~queue_ps ~cold_ps ~service_ps ->
              let at = Time.( + ) (Engine.now seng) ow in
              to_lb t ~server:s ~at (fun _ ->
                  complete t ~server:s ~entry ~submit_ps:now ~req ~user ~hit ~ok
                    ~queue_ps ~cold_ps ~service_ps)))

(* --- autoscaling ------------------------------------------------------- *)

let sample_gauge t name =
  match Registry.find t.registry ~name ~labels:[] with
  | Some { Registry.value = Registry.Gauge_v v; _ } -> v
  | _ -> 0.0

let scale_up t spec k ~util =
  let before = t.up_count + t.booting_count in
  let now = Engine.now t.engine in
  let added = ref 0 in
  let i = ref 0 in
  while !added < k && !i < Array.length t.members do
    let s = !i in
    if t.state.(s) = Down then begin
      t.state.(s) <- Booting;
      t.booting_count <- t.booting_count + 1;
      t.boots <- t.boots + 1;
      incr added;
      (* The member cold-boots: its warm table is gone by the time it can
         receive traffic (the power-on message rides the wire; the first
         delivery arrives at least boot_us later). *)
      to_server t ~server:s ~at:(Time.( + ) now (one_way t)) (fun _ ->
          Fserver.power_on t.members.(s));
      Engine.schedule t.engine ~after:(Time.of_us spec.Autoscaler.boot_us) (fun _ ->
          if t.state.(s) = Booting then begin
            t.state.(s) <- Up;
            t.booting_count <- t.booting_count - 1;
            t.up_count <- t.up_count + 1;
            if t.up_count > t.up_max then t.up_max <- t.up_count
          end)
    end;
    incr i
  done;
  if !added > 0 then
    t.events <-
      {
        ev_at = now;
        ev_dir = `Up;
        ev_count = !added;
        ev_before = before;
        ev_after = before + !added;
        ev_util = util;
      }
      :: t.events

let scale_down t k ~util =
  let before = t.up_count + t.booting_count in
  let now = Engine.now t.engine in
  let drained = ref 0 in
  let i = ref (Array.length t.members - 1) in
  while !drained < k && !i >= 0 do
    let s = !i in
    if t.state.(s) = Up then begin
      t.state.(s) <- Draining;
      t.up_count <- t.up_count - 1;
      t.drains <- t.drains + 1;
      incr drained;
      if t.up_count < t.up_min then t.up_min <- t.up_count;
      if t.outstanding.(s) = 0 then finish_drain t s
    end;
    decr i
  done;
  if !drained > 0 then
    t.events <-
      {
        ev_at = now;
        ev_dir = `Down;
        ev_count = !drained;
        ev_before = before;
        ev_after = before - !drained;
        ev_util = util;
      }
      :: t.events

let rec tick t spec ctl =
  let util = sample_gauge t "jord_fleet_utilization" in
  let queue = sample_gauge t "jord_fleet_queue_depth" in
  let up = int_of_float (sample_gauge t "jord_fleet_servers_up") in
  (match Autoscaler.decide ctl ~util ~queue ~up ~booting:t.booting_count with
  | Autoscaler.Hold -> ()
  | Autoscaler.Up k -> scale_up t spec k ~util
  | Autoscaler.Down k -> scale_down t k ~util);
  Engine.schedule t.engine ~after:(Time.of_us spec.Autoscaler.interval_us) (fun _ ->
      tick t spec ctl)

(* --- construction ------------------------------------------------------ *)

let register_metrics t =
  let r = t.registry in
  let slots = t.cfg.member.Fserver.slots in
  Registry.gauge_fn r ~help:"Routable fleet members" "jord_fleet_servers_up"
    (fun () -> float_of_int t.up_count);
  Registry.gauge_fn r ~help:"Members booting" "jord_fleet_servers_booting" (fun () ->
      float_of_int t.booting_count);
  Registry.gauge_fn r ~help:"In-flight requests over routable slot capacity"
    "jord_fleet_utilization" (fun () ->
      if t.up_count = 0 then 0.0
      else float_of_int t.outstanding_total /. float_of_int (t.up_count * slots));
  Registry.gauge_fn r ~help:"Requests waiting beyond the routable slots"
    "jord_fleet_queue_depth" (fun () ->
      float_of_int (max 0 (t.outstanding_total - (t.up_count * slots))));
  Array.iteri
    (fun i _ ->
      Registry.gauge_fn r ~help:"Member routable (1) or not (0)"
        ~labels:[ ("server", string_of_int i) ]
        "jord_server_up"
        (fun () -> if t.state.(i) = Up then 1.0 else 0.0))
    t.members;
  Registry.counter_fn r ~help:"Requests routed to a member" "jord_fleet_routed_total"
    (fun () -> float_of_int t.routed);
  Registry.counter_fn r ~help:"Requests completed" "jord_fleet_completed_total"
    (fun () -> float_of_int t.completed);
  Registry.counter_fn r ~help:"Requests shed (balancer + member queues)"
    "jord_fleet_shed_total" (fun () -> float_of_int (t.lb_shed + t.server_shed));
  Registry.counter_fn r ~help:"Cold starts paid by members"
    "jord_fleet_cold_starts_total" (fun () ->
      float_of_int (Array.fold_left (fun a m -> a + Fserver.cold_starts m) 0 t.members));
  Registry.counter_fn r ~help:"Autoscaler boot actions" "jord_fleet_scale_ups_total"
    (fun () -> float_of_int t.boots);
  Registry.counter_fn r ~help:"Autoscaler drain actions" "jord_fleet_scale_downs_total"
    (fun () -> float_of_int t.drains)

let create cfg ~app =
  if cfg.servers < 1 then invalid_arg "Fleet.create: servers must be >= 1";
  if cfg.shards < 1 then invalid_arg "Fleet.create: shards must be >= 1";
  (match Model.validate app with
  | Ok () -> ()
  | Error m -> invalid_arg ("Fleet.create: invalid app: " ^ m));
  let entries = Array.of_list app.Model.entries in
  let entry_names = Array.map fst entries in
  let entry_cum =
    let total = Array.fold_left (fun a (_, w) -> a +. w) 0.0 entries in
    let acc = ref 0.0 in
    Array.map
      (fun (_, w) ->
        acc := !acc +. (w /. total);
        !acc)
      entries
  in
  let service_tbl =
    Model.mean_service_ns app ~samples:cfg.service_samples ~seed:cfg.service_seed
  in
  let service_ns = Array.map (fun (name, _) -> List.assoc name service_tbl) entries in
  let n = cfg.servers in
  let eff_shards = if cfg.shards <= 1 then 1 else min cfg.shards (n + 1) in
  if eff_shards > 1 && Netmodel.lookahead cfg.net <= 0 then
    invalid_arg "Fleet.create: a sharded fleet needs positive wire latency";
  let sharded =
    if eff_shards <= 1 then None
    else begin
      let sfleet =
        Jord_sim.Fleet.create ~shards:eff_shards ~lookahead:(Netmodel.lookahead cfg.net)
      in
      (* Shard 0 belongs to the balancer alone (it sees every request
         twice); members spread in blocks over shards 1..S-1. *)
      let shard_of = Array.init n (fun i -> 1 + (i * (eff_shards - 1) / n)) in
      Some { sfleet; shard_of }
    end
  in
  let engine =
    match sharded with
    | None -> Engine.create ()
    | Some s -> Jord_sim.Fleet.engine s.sfleet 0
  in
  let member_engine i =
    match sharded with
    | None -> engine
    | Some s -> Jord_sim.Fleet.engine s.sfleet s.shard_of.(i)
  in
  let members =
    Array.init n (fun i ->
        Fserver.create ~engine:(member_engine i) ~id:i ~service_ns cfg.member)
  in
  let autoscale =
    match cfg.autoscale with
    | None -> None
    | Some spec -> (
        match Autoscaler.resolve spec ~fleet:n with
        | Ok spec -> Some (spec, Autoscaler.control spec)
        | Error m -> invalid_arg ("Fleet.create: " ^ m))
  in
  let initial_up =
    match autoscale with None -> n | Some (spec, _) -> spec.Autoscaler.min_servers
  in
  let state = Array.init n (fun i -> if i < initial_up then Up else Down) in
  let t =
    {
      cfg;
      entry_names;
      entry_cum;
      sharded;
      engine;
      members;
      state;
      outstanding = Array.make n 0;
      outstanding_total = 0;
      lb = Lb.create cfg.policy;
      view = None;
      autoscale;
      registry = Registry.create ();
      latency = Sketch.create ();
      rollup = None;
      tracer = None;
      slo_objs = [];
      arrivals = 0;
      routed = 0;
      affinity_hits = 0;
      completed = 0;
      lb_shed = 0;
      server_shed = 0;
      up_count = initial_up;
      booting_count = 0;
      up_min = initial_up;
      up_max = initial_up;
      boots = 0;
      drains = 0;
      events = [];
      traffic = None;
      duration_us = 0.0;
      ran = false;
    }
  in
  t.view <-
    Some
      {
        Lb.n;
        routable = (fun i -> t.state.(i) = Up);
        outstanding = (fun i -> t.outstanding.(i));
        spill = cfg.member.Fserver.slots;
      };
  register_metrics t;
  t

(* --- running ----------------------------------------------------------- *)

let run ?(slo = []) ?tracer t ~shape ~duration_us =
  if t.ran then invalid_arg "Fleet.run: call once per fleet";
  t.ran <- true;
  if slo <> [] then t.rollup <- Some (Jord_obsv.Rollup.create slo);
  t.tracer <- tracer;
  t.slo_objs <- slo;
  (* Window exemplars flow rollup -> tracer so every exemplar id a verdict
     table names is pinned into the retained trace set. *)
  (match (t.rollup, tracer) with
  | Some r, Some tr ->
      Jord_obsv.Rollup.set_exemplar_hook r (Jord_obsv.Ftrace.on_exemplar tr)
  | _ -> ());
  t.traffic <- Some shape;
  t.duration_us <- duration_us;
  (* Pre-schedule the whole arrival stream on the balancer engine before
     anything runs: the schedule is a pure function of the shape, so it is
     identical at every shard count. *)
  let (_ : int) =
    Jord_workloads.Loadgen.population
      ~submit:(fun ~time ~user ->
        Engine.schedule_at t.engine ~time (fun _ -> route t ~user))
      ~shape ~duration_us ()
  in
  (match t.autoscale with
  | None -> ()
  | Some (spec, ctl) ->
      Engine.schedule t.engine ~after:(Time.of_us spec.Autoscaler.interval_us)
        (fun _ -> tick t spec ctl));
  let until = Time.of_us (3.0 *. duration_us) in
  (match t.sharded with
  | None -> Engine.run ~until t.engine
  | Some s ->
      let jobs = Jord_sim.Fleet.shards s.sfleet in
      Jord_par.Pool.with_pool ~jobs (fun pool ->
          let runner f n =
            ignore (Jord_par.Pool.parmap pool f (List.init n Fun.id) : unit list)
          in
          Jord_sim.Fleet.run ~until ~runner s.sfleet));
  match t.rollup with
  | Some r -> Jord_obsv.Rollup.finish r ~now_ps:until
  | None -> ()

(* --- results ----------------------------------------------------------- *)

let servers t = t.cfg.servers
let arrivals t = t.arrivals
let routed t = t.routed
let completed t = t.completed
let lb_shed t = t.lb_shed
let server_shed t = t.server_shed
let shed t = t.lb_shed + t.server_shed
let affinity_hits t = t.affinity_hits

let cold_starts t =
  Array.fold_left (fun a m -> a + Fserver.cold_starts m) 0 t.members

let boots t = t.boots
let drains t = t.drains
let up_now t = t.up_count
let up_range t = (t.up_min, t.up_max)
let outstanding_now t = t.outstanding_total

let events_processed t =
  match t.sharded with
  | None -> Engine.processed t.engine
  | Some s -> Jord_sim.Fleet.processed s.sfleet

let scale_events t = List.rev t.events
let latency t = t.latency
let registry t = t.registry
let rollup t = t.rollup

let summary t =
  let buf = Buffer.create 2048 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let m = t.cfg.member in
  add "== fleet run ==\n";
  (* No shard count here: the summary is the byte-identity witness across
     shard counts; jordctl reports shards on its wall-clock line. *)
  add "fleet:     servers=%d policy=%s slots=%d queue-cap=%d cold-start-us=%g\n"
    t.cfg.servers
    (Lb.to_string (Lb.policy t.lb))
    m.Fserver.slots m.Fserver.queue_cap
    (m.Fserver.cold_start_ns /. 1000.0);
  (match t.traffic with
  | Some shape ->
      add "traffic:   %s\n" (Traffic.describe shape);
      add "           arrivals=%d over %gus\n" t.arrivals t.duration_us
  | None -> ());
  (match t.autoscale with
  | Some (spec, _) ->
      add "autoscale: %s\n" (Autoscaler.describe spec);
      add "           boots=%d drains=%d up min=%d max=%d now=%d\n" t.boots t.drains
        t.up_min t.up_max t.up_count;
      let evs = scale_events t in
      if evs <> [] then begin
        add "scale events:\n";
        List.iter
          (fun e ->
            add "  t=%10.1fus %s %c%d (%d -> %d) util=%.2f\n"
              (Time.to_us e.ev_at)
              (match e.ev_dir with `Up -> "scale-up  " | `Down -> "scale-down")
              (match e.ev_dir with `Up -> '+' | `Down -> '-')
              e.ev_count e.ev_before e.ev_after e.ev_util)
          evs
      end
  | None -> add "autoscale: off (all %d servers up)\n" t.cfg.servers);
  let hit_pct =
    if t.routed = 0 then 0.0
    else 100.0 *. float_of_int t.affinity_hits /. float_of_int t.routed
  in
  add "balancer:  routed=%d affinity-hits=%d (%.1f%%) shed-at-lb=%d\n" t.routed
    t.affinity_hits hit_pct t.lb_shed;
  add "members:   completed=%d shed-at-member=%d cold-starts=%d in-flight=%d\n"
    t.completed t.server_shed (cold_starts t) t.outstanding_total;
  let q p = Time.to_us (Sketch.quantile t.latency p) in
  add "latency:   mean=%.2fus p50=%.2fus p90=%.2fus p99=%.2fus max=%.2fus\n"
    (Sketch.mean t.latency /. 1e6)
    (q 50.0) (q 90.0) (q 99.0)
    (Time.to_us (Sketch.max_v t.latency));
  Buffer.contents buf
