(** The datacenter fleet: a front-end load balancer over 100-1000 Jord
    servers, driven by population-scale open-loop traffic.

    Composition (mirroring {!Jord_faas.Cluster}'s sharded layout): the
    balancer owns engine shard 0 and every member server lives on one of
    the remaining shards; requests travel as timestamped messages delayed
    by the {!Jord_faas.Netmodel} one-way wire latency, which is exactly
    the conservative lookahead of {!Jord_sim.Fleet} — so a sharded run is
    byte-identical to the sequential one. All routing state (outstanding
    counts, warm routes, lifecycle) is balancer-local and updated only by
    balancer-shard events; all member state is updated only by delivered
    messages. Arrivals are pre-scheduled from the deterministic
    {!Jord_workloads.Traffic} stream before any engine runs.

    The autoscaling controller ticks on the balancer engine at sim-time
    cadence, sampling the fleet's own {!Jord_telemetry} gauges
    (utilization, queue depth, servers up) and booting/draining members
    with hysteresis; a booted member comes up cold (PR 8's warm-loss
    restart economics), a drained one leaves once its last response is
    out. Completions feed a latency {!Jord_telemetry.Sketch} and the
    fleet-level {!Jord_obsv.Rollup} SLO verdicts. *)

type config = {
  servers : int;  (** Fleet size (members the autoscaler can use). *)
  policy : Lb.policy;
  member : Fserver.config;
  net : Jord_faas.Netmodel.t;
  autoscale : Autoscaler.spec option;
      (** [None] keeps every server up for the whole run. *)
  shards : int;  (** Engine shards; 1 = sequential. *)
  service_samples : int;  (** Monte-Carlo samples for calibration. *)
  service_seed : int;  (** Seed of calibration and user-entry hashing. *)
}

val default_config : config
(** 100 servers, affinity policy, default member/netmodel, no autoscale,
    1 shard. *)

type t

val create : config -> app:Jord_faas.Model.app -> t
(** Build the fleet, calibrating per-entry service times from [app] via
    {!Jord_faas.Model.mean_service_ns}.
    @raise Invalid_argument on a config the CLI layer should have
    rejected (servers/shards < 1, zero wire latency with shards > 1,
    autoscale bounds exceeding the fleet, invalid app). *)

val run :
  ?slo:Jord_obsv.Slo.objective list ->
  ?tracer:Jord_obsv.Ftrace.t ->
  t ->
  shape:Jord_workloads.Traffic.shape ->
  duration_us:float ->
  unit
(** Pre-schedule the whole arrival stream, start the autoscaler cadence,
    and run to [3 * duration_us] (the drain horizon). With [?slo] a
    {!Jord_obsv.Rollup} collects per-objective verdicts. With [?tracer]
    every request gets an {!Jord_obsv.Fspan} with exact phase attribution,
    tail-sampled deterministically: request ids are arrival indices, shed /
    SLO-violating / cold-start requests always survive, and rollup window
    exemplars are pinned into the retained set — so the saved trace file is
    byte-identical at any shard count. Call once. *)

(** {2 Results} *)

type scale_event = {
  ev_at : Jord_sim.Time.t;
  ev_dir : [ `Up | `Down ];
  ev_count : int;
  ev_before : int;  (** Routable + booting capacity before the action. *)
  ev_after : int;
  ev_util : float;  (** The sampled utilization that triggered it. *)
}

val servers : t -> int
val arrivals : t -> int
val routed : t -> int
val completed : t -> int

val lb_shed : t -> int
(** Arrivals with no routable server. *)

val server_shed : t -> int
(** Queue-full drops at members. *)

val shed : t -> int
(** [lb_shed + server_shed]. *)

val affinity_hits : t -> int

val cold_starts : t -> int
(** Summed over members. *)

val boots : t -> int
val drains : t -> int
val up_now : t -> int

val up_range : t -> int * int
(** Min/max routable count over the run. *)

val outstanding_now : t -> int
(** 0 after a fully drained run. *)

val events_processed : t -> int

val scale_events : t -> scale_event list
(** Chronological. *)

val latency : t -> Jord_telemetry.Sketch.t

val registry : t -> Jord_telemetry.Registry.t
(** The fleet's [jord_fleet_*] / [jord_server_up] instruments. *)

val rollup : t -> Jord_obsv.Rollup.t option

val summary : t -> string
(** Deterministic run report: fleet/traffic/autoscale headers, the scale
    event log, balancer and member counters, and latency quantiles.
    Byte-identical at any shard count. *)
