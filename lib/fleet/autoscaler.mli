(** The fleet autoscaling controller.

    On a fixed sim-time cadence the fleet samples its own
    {!Jord_telemetry} gauges — utilization, queue depth, servers up — and
    hands them to {!decide}, which applies threshold-with-hysteresis
    control: scale up after [up_after] consecutive samples at or above
    [up_util], scale down after [down_after] consecutive samples at or
    below [down_util], [step] servers at a time, bounded by
    [\[min_servers, max_servers\]]. A freshly added server boots for
    [boot_us] before it becomes routable (and comes up cold — the PR 8
    restart economics). *)

type spec = {
  min_servers : int;
  max_servers : int;  (** [0] means "the whole fleet" (see {!resolve}). *)
  interval_us : float;  (** Gauge sampling cadence, sim time. *)
  up_util : float;  (** Scale up at or above this utilization. *)
  down_util : float;  (** Scale down at or below this utilization. *)
  up_after : int;  (** Consecutive breaches before scaling up. *)
  down_after : int;  (** Consecutive breaches before scaling down. *)
  step : int;  (** Servers added/drained per action. *)
  boot_us : float;  (** Boot delay before a new server is routable. *)
}

val default : spec
(** min 1, max = fleet, 50 us cadence, up >= 0.75 x2, down <= 0.25 x6,
    step 4, 250 us boot — the ["default"] preset. *)

val presets : (string * spec) list
(** [default] and [fast] (20 us cadence, x1/x3 hysteresis, step 8,
    100 us boot — for short CI runs). *)

val parse : string -> (spec, string) result
(** Preset name, [key=value] list, or preset with overrides, like fault
    plans and traffic shapes. Keys: [min], [max], [interval-us], [up],
    [down], [up-after], [down-after], [step], [boot-us]. *)

val to_string : spec -> string
(** Canonical spelling; [parse (to_string s) = Ok s]. *)

val validate : spec -> (unit, string) result
val describe : spec -> string

val resolve : spec -> fleet:int -> (spec, string) result
(** Fix [max_servers = 0] to [fleet] and check the spec fits the fleet
    ([max_servers <= fleet]). *)

type decision = Hold | Up of int | Down of int

type ctl
(** Controller state: the spec plus the hysteresis streaks. *)

val control : spec -> ctl
val spec : ctl -> spec

val decide : ctl -> util:float -> queue:float -> up:int -> booting:int -> decision
(** One cadence tick over the sampled gauges. A positive [queue] (requests
    waiting beyond the slot capacity) counts as up-pressure even below
    [up_util]. [up]/[booting] are the current routable and booting server
    counts; booting capacity counts toward [max_servers] so the controller
    does not over-commit while boots are in flight. *)
