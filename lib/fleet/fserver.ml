module Engine = Jord_sim.Engine
module Time = Jord_sim.Time

type config = {
  slots : int;
  queue_cap : int;
  cold_start_ns : float;
  jitter_sigma : float;
  seed : int;
}

let default_config =
  { slots = 28; queue_cap = 112; cold_start_ns = 20_000.0; jitter_sigma = 0.25; seed = 11 }

type job = {
  entry : int;
  enq_ps : Time.t;  (* delivery time: queueing is measured from here *)
  on_done : ok:bool -> queue_ps:int -> cold_ps:int -> service_ps:int -> unit;
}

type t = {
  id : int;
  cfg : config;
  engine : Engine.t;
  service_ns : float array;
  prng : Jord_util.Prng.t;
  warm : bool array;
  queue : job Queue.t;
  mutable busy : int;
  mutable arrivals : int;
  mutable completed : int;
  mutable dropped : int;
  mutable cold_starts : int;
  mutable busy_ps : int;
}

let create ~engine ~id ~service_ns cfg =
  if cfg.slots < 1 then invalid_arg "Fserver.create: slots must be >= 1";
  if cfg.queue_cap < 0 then invalid_arg "Fserver.create: queue_cap must be >= 0";
  if Array.length service_ns = 0 then invalid_arg "Fserver.create: no entries";
  {
    id;
    cfg;
    engine;
    service_ns;
    (* Per-member PRNG sub-stream, as the chaos layer derives per-server
       streams: jitter draws on one member never shift another's. *)
    prng = Jord_util.Prng.create ~seed:(cfg.seed + (0x9E3779B9 * (id + 1)));
    warm = Array.make (Array.length service_ns) false;
    queue = Queue.create ();
    busy = 0;
    arrivals = 0;
    completed = 0;
    dropped = 0;
    cold_starts = 0;
    busy_ps = 0;
  }

let id t = t.id

let service_duration t ~entry ~cold =
  let sigma = t.cfg.jitter_sigma in
  let mult =
    if sigma <= 0.0 then 1.0
    else
      (* mu = -sigma^2/2 keeps the multiplier's mean at 1, so the fleet's
         aggregate throughput matches the calibrated means. *)
      Jord_util.Sample.lognormal t.prng ~mu:(-.(sigma *. sigma) /. 2.0) ~sigma
  in
  let ns =
    (if cold then t.cfg.cold_start_ns else 0.0) +. (t.service_ns.(entry) *. mult)
  in
  Time.of_ns ns

let rec start t job =
  t.busy <- t.busy + 1;
  let queue_ps = Time.( - ) (Engine.now t.engine) job.enq_ps in
  let cold = not t.warm.(job.entry) in
  if cold then begin
    t.cold_starts <- t.cold_starts + 1;
    t.warm.(job.entry) <- true
  end;
  let dur = service_duration t ~entry:job.entry ~cold in
  (* Phase split of [dur] for the span plane. [dur] keeps its single
     rounding (cold + jittered service as one of_ns), so untraced behavior
     is bit-for-bit unchanged; the split re-derives the cold share and by
     construction sums back to [dur] exactly. *)
  let cold_ps = if cold then Int.min dur (Time.of_ns t.cfg.cold_start_ns) else 0 in
  let service_ps = dur - cold_ps in
  t.busy_ps <- t.busy_ps + dur;
  Engine.schedule t.engine ~after:dur (fun _ ->
      t.busy <- t.busy - 1;
      t.completed <- t.completed + 1;
      job.on_done ~ok:true ~queue_ps ~cold_ps ~service_ps;
      if (not (Queue.is_empty t.queue)) && t.busy < t.cfg.slots then
        start t (Queue.pop t.queue))

let deliver t ~entry ~on_done =
  t.arrivals <- t.arrivals + 1;
  let job = { entry; enq_ps = Engine.now t.engine; on_done } in
  if t.busy < t.cfg.slots then start t job
  else if Queue.length t.queue < t.cfg.queue_cap then Queue.push job t.queue
  else begin
    t.dropped <- t.dropped + 1;
    on_done ~ok:false ~queue_ps:0 ~cold_ps:0 ~service_ps:0
  end

let power_on t = Array.fill t.warm 0 (Array.length t.warm) false
let arrivals t = t.arrivals
let completed t = t.completed
let dropped t = t.dropped
let cold_starts t = t.cold_starts
let busy_ps t = t.busy_ps
