(** One fleet member: a Jord server reduced to request granularity.

    The detailed single-server simulation prices a request through
    orchestrator dispatch, PD switches and VMA traffic; at fleet scale that
    fidelity is folded into a calibrated service-time model — per-entry
    mean compute from {!Jord_faas.Model.mean_service_ns} with lognormal
    jitter — behind the same shape of machinery: bounded execution slots,
    a bounded queue that sheds when full, and per-entry warm state whose
    absence costs a PD/VMA warm-up (the PR 8 cold-restart economics).
    Server state lives on the server's engine shard and is driven only by
    delivered messages, so a member never reads balancer state. *)

type config = {
  slots : int;  (** Concurrent executions (the paper's executor count). *)
  queue_cap : int;  (** Waiting requests beyond the slots; excess sheds. *)
  cold_start_ns : float;
      (** PD create + VMA warm-up charged when the entry is not warm. *)
  jitter_sigma : float;  (** Lognormal sigma of the service multiplier. *)
  seed : int;  (** Base seed; each member derives a sub-stream by id. *)
}

val default_config : config
(** 28 slots (fig. 14's per-socket executor count), 4x queue, 20 us cold
    start, sigma 0.25. *)

type t

val create :
  engine:Jord_sim.Engine.t -> id:int -> service_ns:float array -> config -> t
(** [service_ns] is the per-entry mean service time; entry indices are the
    fleet's. The member starts entirely cold. *)

val id : t -> int

val deliver :
  t ->
  entry:int ->
  on_done:(ok:bool -> queue_ps:int -> cold_ps:int -> service_ps:int -> unit) ->
  unit
(** Accept one request (runs on the member's engine). Starts service if a
    slot is free, queues it if the queue has room, otherwise sheds —
    [on_done ~ok:false] immediately with zero phases. On completion
    [on_done ~ok:true] runs at the completion's sim time carrying the
    member-side phase split: time spent queued, the cold-start share and
    the service share (the last two sum exactly to the service duration,
    whose single rounding is unchanged from the untraced path). *)

val power_on : t -> unit
(** Cold (re)boot: every entry loses its warm state, so the next request
    per entry pays [cold_start_ns] again. The fleet posts this when the
    autoscaler turns the member on. *)

val arrivals : t -> int
val completed : t -> int
val dropped : t -> int
val cold_starts : t -> int
val busy_ps : t -> int
(** Exact integer service picoseconds accumulated (at start of service). *)
