(** A Jord worker server: orchestrator and executor threads pinned to the
    cores of one machine, sharing a single address space (paper §3).

    The server is a discrete-event model driven by {!Jord_sim.Engine}:
    external requests enter an orchestrator, are JBSQ-dispatched to executor
    queues, run as continuations inside PDs, spawn nested invocations
    through the orchestrators' internal queues (which have priority, for
    deadlock freedom), and report completion back to the orchestrator. All
    control-plane memory traffic (queue lines, VTEs, free lists, ArgBufs)
    goes through the coherence model, so dispatch and isolation costs emerge
    from the machine rather than from constants.

    This module is the composition root: it builds the shared
    {!Executor.ctx} (hardware, runtime, app, counters), instantiates
    {!Orchestrator}s over their {!Executor} groups, and owns submission
    and telemetry. The behavior itself lives in {!Continuation},
    {!Executor}, {!Orchestrator} and {!Netmodel} — see
    [docs/architecture.md] for the map. *)

type config = {
  variant : Variant.t;
  machine : Jord_arch.Config.t;
  orchestrators : int;  (** Cores used as orchestrators (rest are executors). *)
  queue_capacity : int;  (** JBSQ bound per executor queue. *)
  policy : Policy.t;
  i_vlb_entries : int;
  d_vlb_entries : int;
  seed : int;
  internal_priority : bool;
      (** Dispatch internal (nested) requests before external ones — the
          paper's deadlock-avoidance rule (§3.3). Disabled only by the
          queue-priority ablation. *)
  forward_after : int;
      (** All-queues-full retries before an internal request is forwarded to
          another worker server (requires {!set_forward}); [max_int]
          disables forwarding. *)
  net : Netmodel.t;
      (** Cross-server network cost model, shared with {!Cluster} so wire
          and serialization constants have a single source of truth. *)
  fault_plan : Jord_fault_inject.Plan.t option;
      (** Deterministic fault schedule (executor and whole-server crashes,
          stalls, PrivLib slowdowns; {!Cluster} adds the wire faults).
          [None] — the default — keeps every code path bit-identical to the
          fault-free golden runs. *)
  recovery : Recovery.t;
      (** Deadline / retry-backoff / peer-health policy. The default
          reproduces the historical fixed 200 ns retry beat exactly. *)
}

val default_config : config
(** 32-core Table-2 machine, Jord variant, 2 orchestrators, JBSQ bound 4,
    16-entry VLBs. *)

type t

val create : ?engine:Jord_sim.Engine.t -> config -> Model.app -> t
(** Build the machine, bootstrap PrivLib, register the app's functions.
    Pass a shared [engine] to co-simulate several servers (see
    {!Cluster}). *)

val engine : t -> Jord_sim.Engine.t
val config : t -> config
val app : t -> Model.app
val hw : t -> Jord_vm.Hw.t
val privlib : t -> Jord_privlib.Privlib.t
val runtime : t -> Runtime.t
val netmodel : t -> Netmodel.t

val submit : t -> ?entry:string -> unit -> unit
(** Inject one external request at the current simulated time. The entry
    function is sampled from the app mix unless given. *)

val on_root_complete : t -> (Request.root -> unit) -> unit
(** Register the completion callback (metrics collection). *)

val executor_count : t -> int
val orchestrator_count : t -> int

val dispatch_count : t -> int
val dispatch_ns_total : t -> float
(** Orchestrator dispatch operations and their cumulative latency (Fig. 14). *)

val completed_roots : t -> int
val live_continuations : t -> int
(** Suspended or running continuations (should drain to 0 when idle). *)

val dropped_requests : t -> int
(** External requests shed because the orchestrator queue was full (severe
    overload only). *)

val set_forward : t -> (Request.t -> unit) option -> unit
(** Install the cross-server forwarding path (paper §3.3): called with an
    internal request this server could not place after
    [config.forward_after] full-scan retries. The callee must eventually
    hand the request to another server's {!receive_forwarded}. *)

val receive_forwarded : t -> Request.t -> unit
(** Accept an internal request shipped from another worker server; it joins
    an orchestrator's internal queue with the usual priority. *)

val forwarded_out : t -> int
val received_in : t -> int

val timed_out_requests : t -> int
(** External roots shed by the deadline policy. *)

val in_flight : t -> int
(** Accepted roots not yet completed or shed (0 once drained). *)

val crashes : t -> int
val recovered : t -> int
(** Injected executor crashes (whole-server crashes included), and requests
    re-queued for re-execution because of them (each crash recovers at
    least the crashed request). *)

val server_crashes : t -> int
(** Injected whole-server crashes (a subset of {!crashes}). *)

val warm_losses : t -> int
(** Whole-server crashes that also invalidated warm function state. *)

val cold_starts : t -> int
(** Post-boot invocations that paid the cold re-warm path. *)

val is_down : t -> bool
(** Whether the server is inside a crash window right now (down or
    booting); a down server accepts no dispatch and acks no transfers. *)

val stalls : t -> int
val slowdowns : t -> int
(** Injected executor stalls / PrivLib slowdowns absorbed without recovery
    action (they only add latency). *)

val forward_abandoned : t -> int
(** Forwarded transfers the cluster transport gave up on after
    [recovery.retry_max] attempts; each was re-executed locally. *)

val queue_wait_ns_total : t -> float
(** Cumulative orchestrator- plus executor-queue wait across all requests
    (each hop re-stamps, so held/re-hopped requests don't double count). *)

val fault_active : t -> bool
(** Is a non-trivial fault plan installed? *)

val note_forward_abandoned : t -> Request.t -> unit
val note_duplicate : t -> Request.t -> unit
(** Transport hooks used by {!Cluster}: account an abandoned transfer
    (Drop trace, reason [peer_dead]) / a deduplicated wire copy. *)

val conservation : t -> Jord_fault_inject.Invariant.tally
(** This server's end-of-sim conservation tally. Sum tallies with
    {!Jord_fault_inject.Invariant.add} across servers that forward to each
    other before checking — forwarding balances cluster-wide, not per
    member. *)

val check_invariants : t -> string list
(** [Invariant.check (conservation t)]: violated invariants ([[]] = all
    hold). Every test asserts this is empty at end-of-sim. *)

val arrivals : t -> int
(** External requests submitted (dropped ones included). *)

val queue_full_retries : t -> int
(** Dispatch scans that found every managed executor queue full (the
    precondition for forwarding). *)

val register_metrics :
  t -> ?labels:(string * string) list -> Jord_telemetry.Registry.t -> unit
(** Register the whole machine's metric families — the server's
    control-plane counters ([jord_server_*], [jord_executor_queue_depth])
    plus the VM ([jord_vlb_*], [jord_vtw_*], [jord_vtd_*],
    [jord_faults_total]), memory-system ([jord_mem_*]) and PrivLib
    ([jord_privlib_*]) families underneath it — as pull collectors.
    [labels] (e.g. [("server", "0")]) are prepended to every instance. *)

val attach_sampler :
  t -> ?labels:(string * string) list -> Jord_telemetry.Sampler.t -> unit
(** Track this server's time-varying gauges (executor queue depths,
    continuation population, per-role core busy fraction, VLB occupancy)
    on a simulated-time sampler. The busy-fraction series are delta
    gauges: utilization over the sampling interval, not since boot. *)

val set_tracer : t -> Trace.t option -> unit
(** Attach an execution tracer; [None] (the default) disables emission. *)

val set_trace_sid : t -> int -> unit
(** Server id stamped on this server's trace events — lets cluster members
    share a single tracer while staying distinguishable (default 0). *)

val set_sid : t -> int -> unit
(** Fleet-wide server id (default 0): stamped on [Request.home_sid] at the
    first forward hop so the cluster can route the response event back to
    this server — across shards when it lives on another engine. *)

val set_route_return : t -> (Request.t -> at:Jord_sim.Time.t -> (Jord_sim.Engine.t -> unit) -> unit) option -> unit
(** Install the cluster's response router for forwarded requests
    ([Executor.ctx.route_return]); [None] (the default) schedules the
    response on this server's own engine — correct whenever home and
    remote servers share it. *)

val set_req_id_space : t -> base:int -> stride:int -> unit
(** Allocate request ids [base], [base+stride], ... so cluster members
    sharing one tracer never collide. Call before any request is admitted;
    the default is [base:0 ~stride:1]. *)

val orchestrator_cores : t -> int list
(** The cores running orchestrators (for trace track naming). *)

val core_busy_ns : t -> core:int -> float
(** Accumulated busy time charged to a core. *)

val utilization : t -> float * float
(** (mean orchestrator utilization, mean executor utilization) over the
    simulated span so far. *)

val run : ?until:Jord_sim.Time.t -> t -> unit
(** Drive the engine. *)

val worst_case_shootdown_ns : t -> float
(** Microbenchmark of a VLB shootdown whose translation every core's VLB
    holds (the paper's worst case: a global invalidation, limited by the
    farthest core's response). Used by Fig. 14. *)

val worst_case_dispatch_ns : t -> float
(** Microbenchmark of one JBSQ dispatch scan in the paper's worst case
    (§6.3): every managed executor's queue-length line is dirty in that
    executor's L1, so each read is a remote transfer. Used by Fig. 14. *)
