(** Structured execution tracing.

    Records the request lifecycle (arrival, dispatch, execution segments,
    suspensions, completions) and system events (forwards, drops) into a
    bounded ring buffer, exportable as Chrome trace-event JSON
    (chrome://tracing, Perfetto) or a readable text log.

    Events carry causal context ([parent_id] of the spawning invocation,
    [sid] of the emitting server) and exact phase accounting ([dur_ps],
    [stall_ps]) so that {!Jord_obsv} can rebuild per-root span trees and
    attribute every picosecond of end-to-end latency offline.

    Tracing is optional and off by default; the server emits events through
    a sink the harness installs. *)

type kind =
  | Arrive  (** Request received by an orchestrator (external or internal). *)
  | Dispatch  (** Orchestrator placed a request on an executor queue. *)
  | Start  (** Executor began an invocation (setup + ccall done). *)
  | Segment  (** One run segment (until suspend or finish), dur = length. *)
  | Suspend  (** cexit while waiting on children. *)
  | Resume  (** center back into the continuation. *)
  | Complete  (** Invocation subtree finished; dur = teardown + notify cost. *)
  | Forward  (** Request shipped to another worker server. *)
  | Drop  (** Request shed; [detail] carries the reason. *)
  | Timeout  (** External request shed by the deadline policy. *)
  | Retry  (** Dispatch held and retried; dur = backoff until next attempt. *)
  | Crash  (** An invocation crashed mid-flight; dur = wasted work + abort. *)
  | Recover  (** A crashed/abandoned request re-queued for re-execution. *)
  | Duplicate  (** A duplicated wire copy arrived and was deduplicated. *)
  | Alert
      (** An SLO burn-rate alert transition ([detail] is ["fire"] or
          ["resolve"], [fn] the objective name). System-scoped: emitted with
          [req_id = -1] and ignored by span building. *)
  | ServerDown
      (** A whole server crashed ([sid] identifies it; [detail] ["crash"]).
          System-scoped like {!Alert}: [req_id = -1], exported as a
          Perfetto global instant marker. *)
  | ServerUp
      (** A crashed server finished booting and polls again ([detail]
          ["boot"], or ["boot_cold"] after a warm-state loss). System-scoped
          like {!Alert}. *)

type event = {
  at_ps : int;  (** Simulated timestamp. *)
  kind : kind;
  req_id : int;
  root_id : int;
  parent_id : int;  (** Spawning invocation's req_id, -1 for roots. *)
  fn : string;
  core : int;  (** Core involved (-1 when not applicable). *)
  sid : int;  (** Emitting server id (0 outside cluster mode). *)
  dur_ps : int;  (** Duration for span-like events, 0 otherwise. *)
  stall_ps : int;
      (** VM time (VLB misses, VTW walks, shootdown waits) inside [dur_ps],
          attributed to this request. Always [<= dur_ps]; 0 for
          non-isolated variants, whose VM cost is architectural. *)
  detail : string;
      (** Refinement of [kind]: the drop/shed reason ("queue_full",
          "deadline", "peer_dead"), the crash site, ""-when-absent. *)
}

type t

val create : ?capacity:int -> unit -> t
(** Ring buffer of the most recent [capacity] events (default 65536). *)

val set_sink : t -> (event -> unit) option -> unit
(** Install a streaming consumer called with every event as it is emitted
    (before any ring wraparound can lose it) — the hook the online SLO
    pipeline rides. [None] (the default) removes it. The sink runs inside
    {!emit}: it must not re-enter the simulation, though it may itself
    [emit] system events (e.g. alerts), which are delivered back to it. *)

val emit :
  t ->
  at_ps:int ->
  kind:kind ->
  req_id:int ->
  root_id:int ->
  ?parent_id:int ->
  fn:string ->
  core:int ->
  ?sid:int ->
  ?dur_ps:int ->
  ?stall_ps:int ->
  ?detail:string ->
  unit ->
  unit

val emit_event : t -> event -> unit
(** Re-emit an already-built event: same ring append and sink fan-out as
    {!emit}. {!Cluster} uses it to merge per-shard member rings into the
    user's tracer in canonical time order after a sharded run. *)

val length : t -> int
val total_emitted : t -> int

val capacity : t -> int
val truncated : t -> bool
(** True when the ring wrapped: [total_emitted > capacity], i.e. the oldest
    events were overwritten and analyses cover a suffix of the run only. *)

val iter : t -> (event -> unit) -> unit
(** Oldest-retained first, without materializing a list. *)

val fold : t -> init:'a -> ('a -> event -> 'a) -> 'a

val events : t -> event list
(** Oldest first (only the retained window). *)

val kind_name : kind -> string
val kind_of_name : string -> kind option

val to_chrome_json : ?orch_cores:int list -> t -> string
(** Chrome trace-event format: spans per core track, instant events for
    arrivals/drops/forwards, plus [ph:"M"] process/thread metadata naming
    each track ("core N", or "orchestrator (core N)" for cores listed in
    [orch_cores]). *)

val to_text : ?limit:int -> t -> string
(** Human-readable log lines, newest [limit] events (default all retained). *)

val clear : t -> unit
