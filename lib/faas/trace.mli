(** Structured execution tracing.

    Records the request lifecycle (arrival, dispatch, execution segments,
    suspensions, completions) and system events (forwards, drops) into a
    bounded ring buffer, exportable as Chrome trace-event JSON
    (chrome://tracing, Perfetto) or a readable text log.

    Tracing is optional and off by default; the server emits events through
    a sink the harness installs. *)

type kind =
  | Arrive  (** External request received by an orchestrator. *)
  | Dispatch  (** Orchestrator placed a request on an executor queue. *)
  | Start  (** Executor began an invocation (setup + ccall done). *)
  | Segment  (** One run segment (until suspend or finish), dur = length. *)
  | Suspend  (** cexit while waiting on children. *)
  | Resume  (** center back into the continuation. *)
  | Complete  (** Invocation subtree finished. *)
  | Forward  (** Request shipped to another worker server. *)
  | Drop  (** Request shed; [detail] carries the reason. *)
  | Timeout  (** External request shed by the deadline policy. *)
  | Retry  (** Dispatch held and retried after a backoff beat. *)
  | Crash  (** An invocation crashed mid-flight (fault injection). *)
  | Recover  (** A crashed/abandoned request re-queued for re-execution. *)
  | Duplicate  (** A duplicated wire copy arrived and was deduplicated. *)

type event = {
  at_ps : int;  (** Simulated timestamp. *)
  kind : kind;
  req_id : int;
  root_id : int;
  fn : string;
  core : int;  (** Core involved (-1 when not applicable). *)
  dur_ps : int;  (** Duration for span-like events, 0 otherwise. *)
  detail : string;
      (** Refinement of [kind]: the drop/shed reason ("queue_full",
          "deadline", "peer_dead"), the crash site, ""-when-absent. *)
}

type t

val create : ?capacity:int -> unit -> t
(** Ring buffer of the most recent [capacity] events (default 65536). *)

val emit :
  t ->
  at_ps:int ->
  kind:kind ->
  req_id:int ->
  root_id:int ->
  fn:string ->
  core:int ->
  ?dur_ps:int ->
  ?detail:string ->
  unit ->
  unit

val length : t -> int
val total_emitted : t -> int
val events : t -> event list
(** Oldest first (only the retained window). *)

val kind_name : kind -> string

val to_chrome_json : t -> string
(** Chrome trace-event format: spans per core track, instant events for
    arrivals/drops/forwards. *)

val to_text : ?limit:int -> t -> string
(** Human-readable log lines, newest [limit] events (default all retained). *)

val clear : t -> unit
