type t = {
  one_way_ns : float;
  per_byte_ns : float;
  response_bytes : int;
}

let create ?(one_way_ns = 2500.0) ?(per_byte_ns = 0.05) ?(response_bytes = 256) () =
  if one_way_ns < 0.0 then invalid_arg "Netmodel.create: one_way_ns";
  if per_byte_ns < 0.0 then invalid_arg "Netmodel.create: per_byte_ns";
  if response_bytes < 0 then invalid_arg "Netmodel.create: response_bytes";
  { one_way_ns; per_byte_ns; response_bytes }

let default = create ()
let one_way_ns t = t.one_way_ns
let one_way t = Jord_sim.Time.of_ns t.one_way_ns
let per_byte_ns t = t.per_byte_ns
let response_bytes t = t.response_bytes

(* Kept as [one_way +. per_byte *. bytes] — the exact expression the
   pre-split server evaluated, so shared use cannot drift the numbers. *)
(* Conservative-DES window: nothing crosses the wire faster than one_way,
   and every cross-server event (forward or response) pays at least that,
   so the sharded engine may run each shard one_way ahead of the others. *)
let lookahead t = Jord_sim.Time.of_ns t.one_way_ns

let send_ns t ~bytes = t.one_way_ns +. (t.per_byte_ns *. float_of_int bytes)
let copy_ns t ~bytes = t.per_byte_ns *. float_of_int bytes
let response_ns t = t.one_way_ns +. (t.per_byte_ns *. float_of_int t.response_bytes)
