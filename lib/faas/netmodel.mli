(** The cross-server network cost model — the single source of truth for
    wire latency, per-byte serialization and forwarding costs (paper §3.3).

    One instance is shared by every layer that touches the network: the
    orchestrator's forwarding path, the executor's response path, and the
    {!Cluster}'s inter-server delivery delay all read the same record, so
    the constants cannot drift apart (they were previously duplicated
    between [Server] and [Cluster]).

    The model is deliberately parametric: a cluster built with a custom
    instance simulates a different fabric (slower top-of-rack switch,
    cheaper serialization), and future work can extend it toward contention
    and topology without touching the orchestrator or executor layers. *)

type t

val create :
  ?one_way_ns:float -> ?per_byte_ns:float -> ?response_bytes:int -> unit -> t
(** [one_way_ns] (default 2500): NIC + wire + switch, one direction.
    [per_byte_ns] (default 0.05): serialization/copy cost per payload byte —
    there is no zero-copy path between machines. [response_bytes] (default
    256): size of a forwarded request's response message. *)

val default : t
(** The paper's numbers: 2.5 us one way, 0.05 ns/byte, 256-byte responses. *)

val one_way_ns : t -> float
val one_way : t -> Jord_sim.Time.t
val per_byte_ns : t -> float
val response_bytes : t -> int

val lookahead : t -> Jord_sim.Time.t
(** The conservative-synchronization window for a sharded run
    ({!Jord_sim.Fleet}), equal to {!one_way}: wire latency lower-bounds
    every cross-server interaction — a forward costs {!send_ns} [>=]
    [one_way] and a response {!response_ns} [>=] [one_way] — so two shards
    can safely run [one_way] apart without reordering anything. Zero when
    [one_way_ns] is zero; a parallel cluster requires it positive. *)

val send_ns : t -> bytes:int -> float
(** Cost of shipping a request with a [bytes]-byte payload to a peer:
    one-way latency plus serialization. *)

val copy_ns : t -> bytes:int -> float
(** Receiver-side cost of landing a [bytes]-byte payload in a local ArgBuf
    (the copy only; ArgBuf allocation is charged by the runtime). *)

val response_ns : t -> float
(** Cost of returning a forwarded request's response to its home server. *)
