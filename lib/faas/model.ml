type mode = Sync | Async

type phase =
  | Compute of float
  | Invoke of { target : string; arg_bytes : int; mode : mode; cookie : int option }
  | Wait
  | Wait_for of int
  | Scratch of int

type fn = {
  name : string;
  make_phases : Jord_util.Prng.t -> phase list;
  state_bytes : int;
  code_bytes : int;
}

type app = {
  app_name : string;
  fns : fn list;
  entries : (string * float) list;
}

let find_fn app name =
  match List.find_opt (fun f -> f.name = name) app.fns with
  | Some f -> f
  | None -> invalid_arg (Printf.sprintf "Model.find_fn: unknown function %S" name)

let pick_entry app prng =
  if app.entries = [] then invalid_arg "Model.pick_entry: empty entry mix";
  let weights = Array.of_list (List.map snd app.entries) in
  let i = Jord_util.Sample.categorical prng weights in
  fst (List.nth app.entries i)

(* Sample each function's phases a few times to discover its possible
   invocation targets (phase lists are generated, not declared). *)
let sampled_targets fn =
  let prng = Jord_util.Prng.create ~seed:7 in
  let targets = Hashtbl.create 8 in
  for _ = 1 to 16 do
    List.iter
      (function
        | Invoke { target; _ } -> Hashtbl.replace targets target ()
        | Compute _ | Wait | Wait_for _ | Scratch _ -> ())
      (fn.make_phases prng)
  done;
  Hashtbl.fold (fun k () acc -> k :: acc) targets []

let validate app =
  let exception Bad of string in
  try
    if app.entries = [] then raise (Bad "empty entry mix");
    List.iter
      (fun (name, w) ->
        if w < 0.0 then raise (Bad ("negative weight for " ^ name));
        if not (List.exists (fun f -> f.name = name) app.fns) then
          raise (Bad ("entry refers to unknown function " ^ name)))
      app.entries;
    let edges =
      List.map
        (fun fn ->
          let ts = sampled_targets fn in
          List.iter
            (fun t ->
              if not (List.exists (fun f -> f.name = t) app.fns) then
                raise (Bad (fn.name ^ " invokes unknown function " ^ t)))
            ts;
          (fn.name, ts))
        app.fns
    in
    (* DAG check by depth-first search with colouring. *)
    let color = Hashtbl.create 16 in
    let rec dfs name =
      match Hashtbl.find_opt color name with
      | Some `Done -> ()
      | Some `Active -> raise (Bad ("invocation cycle through " ^ name))
      | None ->
          Hashtbl.replace color name `Active;
          List.iter dfs (try List.assoc name edges with Not_found -> []);
          Hashtbl.replace color name `Done
    in
    List.iter (fun fn -> dfs fn.name) app.fns;
    Ok ()
  with Bad msg -> Error msg

let mean_invocations app ~samples ~seed =
  if samples <= 0 then invalid_arg "Model.mean_invocations";
  let prng = Jord_util.Prng.create ~seed in
  let rec tree_size name =
    let fn = find_fn app name in
    let phases = fn.make_phases prng in
    List.fold_left
      (fun acc phase ->
        match phase with
        | Invoke { target; _ } -> acc + tree_size target
        | Compute _ | Wait | Wait_for _ | Scratch _ -> acc)
      1 phases
  in
  let total = ref 0 in
  for _ = 1 to samples do
    total := !total + tree_size (pick_entry app prng)
  done;
  float_of_int !total /. float_of_int samples

let mean_service_ns app ~samples ~seed =
  if samples <= 0 then invalid_arg "Model.mean_service_ns";
  let prng = Jord_util.Prng.create ~seed in
  let memo = Hashtbl.create 16 in
  (* validate guarantees the call graph is a DAG, so the recursion ends. *)
  let rec mean_fn name =
    match Hashtbl.find_opt memo name with
    | Some v -> v
    | None ->
        let fn = find_fn app name in
        let total = ref 0.0 in
        for _ = 1 to samples do
          List.iter
            (fun phase ->
              match phase with
              | Compute ns -> total := !total +. ns
              | Invoke { target; _ } -> total := !total +. mean_fn target
              | Wait | Wait_for _ | Scratch _ -> ())
            (fn.make_phases prng)
        done;
        let v = !total /. float_of_int samples in
        Hashtbl.add memo name v;
        v
  in
  List.map (fun (entry, _) -> (entry, mean_fn entry)) app.entries

let compute ns = Compute ns

let invoke ?(mode = Sync) ?(arg_bytes = 512) ?cookie target =
  Invoke { target; arg_bytes; mode; cookie }

let wait = Wait
let wait_for c = Wait_for c
let scratch bytes = Scratch bytes
