(** Function-invocation requests and their accounting.

    Every invocation — external (from the load generator) or internal
    (nested) — is a request. External requests carry a [root] record that
    accumulates the whole invocation tree's execution time and overheads;
    nested requests share their parent's root, which is how the paper's
    breakdowns (Fig. 11) and per-request overhead numbers aggregate. *)

type root = {
  root_id : int;
  entry : string;  (** Entry function name. *)
  arrival : Jord_sim.Time.t;
  mutable completed_at : Jord_sim.Time.t;
  mutable finished : bool;
  mutable exec_ns : float;  (** Pure compute across the tree. *)
  mutable isolation_ns : float;  (** PrivLib + VLB-walk time across the tree. *)
  mutable dispatch_ns : float;  (** Orchestrator dispatch time across the tree. *)
  mutable comm_ns : float;  (** Data movement: ArgBuf accesses / pipe + shm. *)
  mutable queue_ns : float;
      (** Time spent waiting in orchestrator and executor queues across the
          tree, measured between [enqueued_at] stamps — each dispatch and
          forward hop re-stamps, so held or re-hopped requests never double
          count a wait. *)
  mutable invocations : int;  (** Requests in the tree (root included). *)
}

type t = {
  id : int;
  fn_name : string;
  arg_bytes : int;
  root : root;
  parent_id : int;  (** Spawning invocation's [id], -1 for external requests. *)
  depth : int;  (** 0 for external requests. *)
  mutable argbuf : int;  (** ArgBuf base VA (0 until allocated). *)
  mutable enqueued_at : Jord_sim.Time.t;
  mutable on_complete : (Jord_sim.Engine.t -> float -> unit) option;
      (** Fired by the executor when the request's subtree completes; the
          float is the notification-write latency already charged. Internal
          requests use it to resume their parent continuation. *)
  mutable forwarded : bool;
      (** Shipped to another worker server over the network (§3.3). *)
  mutable home_argbuf : int;
      (** The origin server's ArgBuf VA, restored before the parent reaps a
          forwarded request's response. *)
  mutable home_sid : int;
      (** Server the request was first forwarded from (-1 until then); the
          response event is routed back to it, across shards if needed. *)
  mutable acct : root;
      (** Where cost accumulators land: the real {!root} for local
          requests, a private detached ledger once forwarded (see
          {!detach_acct}) so remote servers never write the shared root —
          which would race under the sharded engine and make float
          summation order depend on interleaving. *)
  mutable home_acct : root;
      (** The ledger [acct] pointed at before {!detach_acct}; the fold
          target for {!settle_acct}. *)
}

val make_root :
  id:int -> entry:string -> arrival:Jord_sim.Time.t -> arg_bytes:int -> root * t

val make_child : id:int -> parent:t -> fn_name:string -> arg_bytes:int -> t
(** The child accumulates into [parent.acct] — the real root locally, the
    parent's detached ledger on a remote server. *)

val detach_acct : t -> unit
(** Called at the first forward hop: swap in a zeroed private ledger so all
    accounting while the request is away from home — including nested
    children spawned remotely — accumulates off to the side. *)

val settle_acct : t -> unit
(** Fold the detached ledger back into the enclosing one and re-attach.
    Runs inside the response event on the home server, so the float
    addition order is fixed by the response schedule — identical in
    sequential and sharded runs. No-op if never detached. *)

val latency_ns : root -> float
(** Arrival-to-completion latency (valid once [finished]). *)

val overhead_ns : root -> float
(** isolation + dispatch + comm across the tree. *)
