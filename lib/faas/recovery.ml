module Time = Jord_sim.Time

type t = {
  deadline : Time.t option;
  retry_base_ns : float;
  retry_cap : int;
  retry_max : int;
  health_threshold : int;
  probe_us : float;
}

let default =
  {
    deadline = None;
    retry_base_ns = 200.0;
    retry_cap = 0;
    retry_max = 4;
    health_threshold = 3;
    probe_us = 100.0;
  }

(* ldexp keeps the default (cap = 0) bit-identical to the historical fixed
   200 ns beat: ldexp base 0 = base exactly, no float drift. *)
let backoff_ns t n = Float.ldexp t.retry_base_ns (Int.min (Int.max 0 n) t.retry_cap)
