type wait = No_wait | For_child of int | For_all
type status = Running | Suspended | Ready | Aborted

type 'exec t = {
  cid : int;
  req : Request.t;
  fn : Model.fn;
  mutable phases : Model.phase list;
  pd : int;
  state_va : int;
  home : 'exec;
  mutable outstanding : int;
  mutable wait : wait;
  mutable status : status;
  mutable to_reap : (int * int) list;
  cookies : (int, int) Hashtbl.t;
  done_children : (int, unit) Hashtbl.t;
}

(* Continuation notify lines live in their own address-space region and
   recycle modulo 64 Ki so the directory stays bounded. *)
let cont_region = 1 lsl 44
let notify_line t = cont_region + (t.cid mod 65536 * 64)

let make ~cid ~req ~fn ~phases ~pd ~state_va ~home =
  {
    cid;
    req;
    fn;
    phases;
    pd;
    state_va;
    home;
    outstanding = 0;
    wait = No_wait;
    status = Running;
    to_reap = [];
    cookies = Hashtbl.create 4;
    done_children = Hashtbl.create 4;
  }

let register_child t ?cookie ~child_id () =
  (match cookie with
  | Some c -> Hashtbl.replace t.cookies c child_id
  | None -> ());
  t.outstanding <- t.outstanding + 1

let pending_cookie t ~cookie =
  (* Listing 1's wait(c): the cookie blocks only while that specific child
     is outstanding; unknown cookies are a no-op. *)
  match Hashtbl.find_opt t.cookies cookie with
  | None -> None
  | Some child_id ->
      if Hashtbl.mem t.done_children child_id then None else Some child_id

let can_skip_wait t = t.outstanding = 0 && t.to_reap = []

let child_completed t ~child_id ~argbuf ~bytes =
  t.outstanding <- t.outstanding - 1;
  Hashtbl.replace t.done_children child_id ();
  t.to_reap <- (argbuf, bytes) :: t.to_reap;
  let was_waiting_for_this =
    match t.wait with
    | For_child id -> id = child_id
    | For_all -> t.outstanding = 0
    | No_wait -> false
  in
  if was_waiting_for_this then t.wait <- No_wait;
  was_waiting_for_this

let ready_after_suspend t =
  (* If every awaited child already completed during the segment (the
     completion event cleared [wait]), the continuation is immediately
     ready again. *)
  match t.wait with
  | No_wait -> true
  | For_all -> t.outstanding = 0
  | For_child _ -> false

let take_reaps t =
  let r = t.to_reap in
  t.to_reap <- [];
  r
