(** Executor threads: run continuations inside PDs on their pinned cores
    (paper §3.2).

    An executor polls two sources — its ready queue of resumable
    continuations and its JBSQ-bounded request queue — and drives each
    continuation's phase interpreter ({!advance}) until it suspends or
    finishes. Interaction with the orchestrator goes exclusively through
    the {!uplink} closures, which is what keeps the module graph acyclic:
    [Continuation <- Executor <- Orchestrator <- Server].

    This module also defines {!ctx}, the machine context shared by every
    layer of a server: the simulated hardware, the runtime, the app, and
    the server-wide counters. [Server] builds one and threads it through
    executors and orchestrators. *)

module Time = Jord_sim.Time
module Engine = Jord_sim.Engine

type ctx = {
  variant : Variant.t;
  internal_priority : bool;
  forward_after : int;
  policy : Policy.t;
  net : Netmodel.t;
  engine : Engine.t;
  memsys : Jord_arch.Memsys.t;
  hw : Jord_vm.Hw.t;
  rt : Runtime.t;
  app : Model.app;
  prng : Jord_util.Prng.t;
  core_busy_ps : float array;
  mutable tracer : Trace.t option;
  mutable trace_sid : int;
      (** Server id stamped on trace events (cluster members share one
          tracer; 0 outside cluster mode). *)
  mutable sid : int;
      (** Fleet-wide server id; stamps [Request.home_sid] at the first
          forward hop so the response can be routed back across shards. *)
  mutable next_req_id : int;
  mutable req_id_stride : int;
  mutable next_cid : int;
  mutable root_cb : Request.root -> unit;
  mutable completed : int;
  mutable live_conts : int;
  mutable dispatch_count : int;
  mutable dispatch_ns : float;
  mutable queue_full_retries : int;
  mutable forward_cb : (Request.t -> unit) option;
  mutable route_return : (Request.t -> at:Time.t -> (Engine.t -> unit) -> unit) option;
      (** Delivery of a forwarded request's response event to its home
          server at absolute time [at]. [None] (the sequential cluster):
          schedule on the shared engine. Under [Jord_sim.Fleet] the cluster
          installs a router that posts cross-shard responses through the
          shard mailbox. *)
  mutable forwarded_out : int;
  mutable received_in : int;
  recovery : Recovery.t;  (** Deadline / retry-backoff / health policy. *)
  fault : Jord_fault_inject.Injector.t option;
      (** The seeded fault stream; [None] (no plan) keeps every fault-free
          code path bit-identical to the golden runs. *)
  mutable timed_out : int;  (** External roots shed past their deadline. *)
  mutable in_flight : int;  (** Accepted roots not yet completed or shed. *)
  mutable crashes : int;  (** Injected executor crashes. *)
  mutable recovered : int;  (** Requests re-queued after a crash. *)
  mutable stalls : int;  (** Injected executor stalls. *)
  mutable slowdowns : int;  (** Injected PrivLib slowdowns. *)
  mutable forward_abandoned : int;
      (** Forwarded transfers given up after [recovery.retry_max] attempts
          and re-executed locally. *)
  mutable queue_wait_ns : float;
      (** Cumulative orchestrator- plus executor-queue wait. *)
  mutable on_retry_backoff : float -> unit;
      (** Observation hook for retry-backoff intervals (telemetry wires a
          histogram here; defaults to a no-op). *)
  mutable srv_down_until : Time.t;
      (** Whole-server crash horizon: while [now < srv_down_until] the
          orchestrators hold all dispatch ([Time.zero] when up). *)
  mutable server_crashes : int;  (** Injected whole-server crashes. *)
  mutable warm_losses : int;
      (** Server crashes that also invalidated warm function state. *)
  mutable cold_starts : int;
      (** Post-boot invocations that paid the cold re-warm path. *)
  cold_fns : (string, unit) Hashtbl.t;
      (** Functions whose warm state a server crash invalidated; the next
          invocation of each pays the cold re-warm path. *)
  conts : (int, t Continuation.t) Hashtbl.t;
      (** Every live continuation by cid — the registry a whole-server
          crash walks (in sorted cid order) to abort them all. *)
  mutable on_server_purge : reboot:Time.t -> unit;
      (** Installed by [Server]: drain every orchestrator and executor
          queue after a whole-server crash (re-queue entry requests at
          [reboot], discard local children). *)
}

and uplink = {
  int_line : int;  (** The orchestrator's internal-queue cache line. *)
  notify_line : int;  (** Completion-notification line for external requests. *)
  submit_internal : at:Time.t -> Request.t -> unit;
      (** Schedule a nested request's arrival on the orchestrator. *)
  push_reclaim : va:int -> bytes:int -> unit;
      (** Queue a finished ArgBuf for the orchestrator's amortized reclaim. *)
  wake : Engine.t -> unit;
      (** Start the orchestrator's dispatch loop if it is idle. *)
}

and t = {
  eid : int;
  core : int;
  queue : Request.t Bounded_queue.t;
  ready : t Continuation.t Queue.t;
  mutable busy : bool;
  mutable suspended : int;
  mutable up : uplink option;  (** Installed by {!Orchestrator.create}. *)
  mutable release_fn : Engine.t -> unit;
      (** Pre-built "teardown done, poll again" closure (hot path). *)
  mutable down_until : Time.t;
      (** Crashed-executor restart horizon; orchestrators treat the
          executor as full until it passes ([Time.zero] when healthy). *)
  mutable epoch : int;
      (** Bumped by the whole-server purge; scheduled lifecycle events
          (executor-restart, teardown-release) capture it at schedule
          time and no-op if it moved, so a stale "executor free" from
          before a crash cannot clear [busy] on the rebooted server. *)
}

val create : ctx -> eid:int -> core:int -> queue_capacity:int -> t
(** An idle executor with a fresh JBSQ queue in the executor-queue
    address-space region; [up] is wired later by its orchestrator. *)

val poll : ctx -> t -> Engine.t -> unit
(** If idle, resume the next ready continuation, else dequeue and start the
    next request; no-op when busy or empty. Safe to call redundantly — the
    orchestrator and completion events both poke it. *)

val purge_request : ctx -> t -> Request.t -> reboot:Time.t -> unit
(** Classify one queued-but-unstarted request during a whole-server crash:
    entry requests (external roots and forwarded-in work) re-queue through
    the uplink at the [reboot] horizon; local children are discarded and
    their ArgBufs released (the re-executed parents re-invoke them).
    Shared by the executor and orchestrator purge paths. *)

val purge_for_reboot : ctx -> t -> reboot:Time.t -> unit
(** Whole-server crash: drain this executor's request queue through
    {!purge_request} (no dequeue cost — the machine is dead), clear the
    ready set, and hold the executor down until [reboot]. *)

val fresh_req_id : ctx -> int
val charge_core : ctx -> int -> float -> unit
(** Accrue [ns] of busy time on a core (stored in picoseconds). *)

val trace :
  ctx ->
  kind:Trace.kind ->
  req:Request.t ->
  core:int ->
  ?dur_ns:float ->
  ?dur_ps:int ->
  ?stall_ns:float ->
  ?detail:string ->
  unit ->
  unit
(** Emit on the context's tracer (no-op when tracing is off). [dur_ns]
    converts with {!Jord_sim.Time.of_ns} — the engine's own rounding — so
    event durations telescope exactly onto engine timestamps; [dur_ps]
    bypasses the conversion for pre-rounded values. [stall_ns] is the VM
    time inside the duration (clamped to it). *)

val stall_begin : ctx -> unit
(** Mark the hardware VM-stall accumulator at the start of a synchronous
    compute block (no-op when tracing is off). *)

val stall_take : ctx -> float
(** VM stall ns accumulated since {!stall_begin} — 0 for non-isolated
    variants, whose walk/shootdown costs are architectural background. *)

val add_cost : Request.root -> Runtime.cost -> unit
(** Fold a runtime cost into the root's isolation/communication accounting. *)
