module Time = Jord_sim.Time
module Engine = Jord_sim.Engine

type config = {
  variant : Variant.t;
  machine : Jord_arch.Config.t;
  orchestrators : int;
  queue_capacity : int;
  policy : Policy.t;
  i_vlb_entries : int;
  d_vlb_entries : int;
  seed : int;
  internal_priority : bool;
  forward_after : int;
}

let default_config =
  {
    variant = Variant.Jord;
    machine = Jord_arch.Config.default;
    orchestrators = 4;
    queue_capacity = 4;
    policy = Policy.Jbsq;
    i_vlb_entries = 16;
    d_vlb_entries = 16;
    seed = 42;
    internal_priority = true;
    forward_after = max_int;
  }

type wait_kind = Wait_none | Wait_child of int | Wait_all

type cont = {
  cid : int;
  req : Request.t;
  fn : Model.fn;
  mutable phases : Model.phase list;
  pd : int;
  state_va : int;
  home : exec;
  mutable outstanding : int;
  mutable wait_kind : wait_kind;
  mutable status : [ `Running | `Suspended | `Ready ];
  mutable to_reap : (int * int) list; (* completed child argbufs: (va, bytes) *)
  cookies : (int, int) Hashtbl.t; (* user cookie -> child request id *)
  done_children : (int, unit) Hashtbl.t; (* completed child request ids *)
}

and exec = {
  eid : int;
  ecore : int;
  equeue : Request.t Bounded_queue.t;
  ready : cont Queue.t;
  mutable ebusy : bool;
  mutable my_orch : orch option;
  mutable suspended : int;
}

and orch = {
  oid : int;
  ocore : int;
  mutable execs : exec array;
  external_q : Request.t Queue.t;
  internal_q : Request.t Queue.t;
  mutable pending : Request.t option; (* retry slot when all queues are full *)
  mutable pending_retries : int;
  mutable obusy : bool;
  rr_cursor : int ref;
  ext_line : int;
  int_line : int;
  notify_line : int;
  mutable reclaim : (int * int) list; (* finished root argbufs: (va, bytes) *)
}

type t = {
  cfg : config;
  app : Model.app;
  engine : Engine.t;
  memsys : Jord_arch.Memsys.t;
  hw : Jord_vm.Hw.t;
  priv : Jord_privlib.Privlib.t;
  rt : Runtime.t;
  orchs : orch array;
  all_execs : exec array;
  prng : Jord_util.Prng.t;
  mutable next_req_id : int;
  mutable next_cid : int;
  mutable root_cb : Request.root -> unit;
  mutable dispatch_count : int;
  mutable dispatch_ns : float;
  mutable completed : int;
  mutable live_conts : int;
  mutable dropped : int;
  mutable arrivals : int;
  mutable queue_full_retries : int;
  mutable forward_cb : (Request.t -> unit) option;
  mutable forwarded_out : int;
  mutable received_in : int;
  mutable tracer : Trace.t option;
  core_busy_ps : float array;
}

(* Address-space regions for the control-plane lines. Continuation notify
   lines recycle modulo 64 Ki so the directory stays bounded. *)
let orch_region = 1 lsl 45
let exec_queue_region = 1 lsl 46
let cont_region = 1 lsl 44
let cont_line cid = cont_region + (cid mod 65536 * 64)

(* Dispatch-loop instruction budgets. *)
let dispatch_instrs = 36
let per_scan_instrs = 4
let backoff = Time.of_ns 200.0

let engine t = t.engine
let config t = t.cfg
let app t = t.app
let hw t = t.hw
let privlib t = t.priv
let runtime t = t.rt
let on_root_complete t f = t.root_cb <- f
let executor_count t = Array.length t.all_execs
let orchestrator_count t = Array.length t.orchs
let dispatch_count t = t.dispatch_count
let dispatch_ns_total t = t.dispatch_ns
let completed_roots t = t.completed
let live_continuations t = t.live_conts
let dropped_requests t = t.dropped
let arrivals t = t.arrivals
let queue_full_retries t = t.queue_full_retries
let set_forward t cb = t.forward_cb <- cb
let set_tracer t tr = t.tracer <- tr
let charge_core t core ns = t.core_busy_ps.(core) <- t.core_busy_ps.(core) +. (ns *. 1000.0)

let core_busy_ns t ~core = t.core_busy_ps.(core) /. 1000.0

(* Mean utilization of the orchestrator and executor cores over the
   simulated span so far. *)
let utilization t =
  let now_ps = float_of_int (Engine.now t.engine) in
  if now_ps <= 0.0 then (0.0, 0.0)
  else begin
    let orch_sum = ref 0.0 and exec_sum = ref 0.0 in
    Array.iter (fun o -> orch_sum := !orch_sum +. t.core_busy_ps.(o.ocore)) t.orchs;
    Array.iter (fun e -> exec_sum := !exec_sum +. t.core_busy_ps.(e.ecore)) t.all_execs;
    ( !orch_sum /. now_ps /. float_of_int (Array.length t.orchs),
      !exec_sum /. now_ps /. float_of_int (Array.length t.all_execs) )
  end

let trace t ~kind ~req ~core ?dur_ns () =
  match t.tracer with
  | None -> ()
  | Some tr ->
      let dur_ps =
        match dur_ns with Some ns -> int_of_float (ns *. 1000.0) | None -> 0
      in
      Trace.emit tr
        ~at_ps:(Engine.now t.engine)
        ~kind ~req_id:req.Request.id
        ~root_id:req.Request.root.Request.root_id
        ~fn:req.Request.fn_name ~core ~dur_ps ()
let forwarded_out t = t.forwarded_out
let received_in t = t.received_in

(* Network costs for cross-server forwarding: NIC + wire + switch one way,
   plus a per-byte serialization/copy cost (no zero copy across servers). *)
let net_one_way_ns = 2500.0
let net_per_byte_ns = 0.05

(* External queues are capped like a NIC ring: beyond this the server sheds
   load instead of buffering unboundedly (keeps overloaded simulations
   bounded; dropped requests are never measured). *)
let external_queue_cap = 32768

let fresh_req_id t =
  let id = t.next_req_id in
  t.next_req_id <- id + 1;
  id

let add_cost (root : Request.root) (c : Runtime.cost) =
  root.Request.isolation_ns <- root.Request.isolation_ns +. c.Runtime.isolation_ns;
  root.Request.comm_ns <- root.Request.comm_ns +. c.Runtime.comm_ns

(* --- Executor side --- *)

let rec exec_poll t exec (_ : Engine.t) =
  if not exec.ebusy then begin
    if not (Queue.is_empty exec.ready) then resume_cont t exec (Queue.pop exec.ready)
    else
      match Bounded_queue.dequeue exec.equeue ~memsys:t.memsys ~core:exec.ecore with
      | Some (req, deq_ns) -> start_request t exec req ~deq_ns
      | None -> ()
  end

and start_request t exec req ~deq_ns =
  exec.ebusy <- true;
  trace t ~kind:Trace.Start ~req ~core:exec.ecore ();
  let fn = Model.find_fn t.app req.Request.fn_name in
  let pd, state_va, cost =
    Runtime.setup t.rt ~core:exec.ecore ~fn ~argbuf:req.Request.argbuf
      ~arg_bytes:req.Request.arg_bytes
  in
  add_cost req.Request.root cost;
  req.Request.root.Request.comm_ns <- req.Request.root.Request.comm_ns +. deq_ns;
  let cid = t.next_cid in
  t.next_cid <- cid + 1;
  t.live_conts <- t.live_conts + 1;
  let cont =
    {
      cid;
      req;
      fn;
      phases = fn.Model.make_phases t.prng;
      pd;
      state_va;
      home = exec;
      outstanding = 0;
      wait_kind = Wait_none;
      status = `Running;
      to_reap = [];
      cookies = Hashtbl.create 4;
      done_children = Hashtbl.create 4;
    }
  in
  advance t exec cont ~dt0:(Runtime.total cost +. deq_ns)

and resume_cont t exec cont =
  exec.ebusy <- true;
  trace t ~kind:Trace.Resume ~req:cont.req ~core:exec.ecore ();
  exec.suspended <- exec.suspended - 1;
  cont.status <- `Running;
  let root = cont.req.Request.root in
  (* Reap completed children executor-side (PD 0) before re-entering. *)
  let dt = ref 0.0 in
  List.iter
    (fun (va, bytes) ->
      let c = Runtime.reap_argbuf t.rt ~core:exec.ecore ~pd:cont.pd ~va ~bytes in
      add_cost root c;
      dt := !dt +. Runtime.total c)
    cont.to_reap;
  cont.to_reap <- [];
  let c = Runtime.resume t.rt ~core:exec.ecore ~pd:cont.pd in
  add_cost root c;
  advance t exec cont ~dt0:(!dt +. Runtime.total c)

(* Run the continuation until it suspends or finishes, accumulating the
   segment's latency [dt]; schedule the segment-end event. *)
and advance t exec cont ~dt0 =
  let now = Engine.now t.engine in
  let root = cont.req.Request.root in
  let dt = ref dt0 in
  let finished = ref false in
  let suspended = ref false in
  let continue = ref true in
  while !continue do
    match cont.phases with
    | [] ->
        continue := false;
        finished := true
    | Model.Compute ns :: rest ->
        cont.phases <- rest;
        root.Request.exec_ns <- root.Request.exec_ns +. ns;
        let c =
          Runtime.touch_working_set t.rt ~core:exec.ecore ~pd:cont.pd ~fn:cont.fn
            ~state_va:cont.state_va
        in
        add_cost root c;
        dt := !dt +. ns +. Runtime.total c
    | Model.Invoke { target; arg_bytes; mode; cookie } :: rest ->
        cont.phases <- rest;
        let va, c1 = Runtime.make_argbuf t.rt ~core:exec.ecore ~bytes:arg_bytes in
        let c2 = Runtime.invoke_send t.rt ~core:exec.ecore ~bytes:arg_bytes in
        (* Returning from the runtime's call gates refetches the caller's
           code region (I-VLB pressure on tiny VLBs). *)
        let c3 =
          Runtime.touch_working_set t.rt ~core:exec.ecore ~pd:cont.pd ~fn:cont.fn
            ~state_va:cont.state_va
        in
        add_cost root (Runtime.( ++ ) (Runtime.( ++ ) c1 c2) c3);
        dt := !dt +. Runtime.total c1 +. Runtime.total c2 +. Runtime.total c3;
        let child =
          Request.make_child ~id:(fresh_req_id t) ~parent:cont.req ~fn_name:target
            ~arg_bytes
        in
        child.Request.argbuf <- va;
        child.Request.on_complete <- Some (child_completed t cont child);
        (match cookie with
        | Some c -> Hashtbl.replace cont.cookies c child.Request.id
        | None -> ());
        cont.outstanding <- cont.outstanding + 1;
        (* Hand the request to this executor's orchestrator: one line write
           into the internal queue, then an arrival event. *)
        let orch =
          match exec.my_orch with
          | Some o -> o
          | None -> invalid_arg "Server: executor not wired to an orchestrator"
        in
        let wr = Jord_arch.Memsys.write t.memsys ~core:exec.ecore ~addr:orch.int_line in
        root.Request.dispatch_ns <- root.Request.dispatch_ns +. wr;
        dt := !dt +. wr;
        let arrival = Time.(now + Time.of_ns !dt) in
        Engine.schedule_at t.engine ~time:arrival (internal_arrival t orch child);
        (match mode with
        | Model.Async -> ()
        | Model.Sync ->
            cont.wait_kind <- Wait_child child.Request.id;
            let c = Runtime.suspend t.rt ~core:exec.ecore ~pd:cont.pd in
            add_cost root c;
            dt := !dt +. Runtime.total c;
            suspended := true;
            continue := false)
    | Model.Wait :: rest ->
        if cont.outstanding = 0 && cont.to_reap = [] then cont.phases <- rest
        else begin
          cont.phases <- rest;
          cont.wait_kind <- Wait_all;
          let c = Runtime.suspend t.rt ~core:exec.ecore ~pd:cont.pd in
          add_cost root c;
          dt := !dt +. Runtime.total c;
          suspended := true;
          continue := false
        end
    | Model.Wait_for cookie :: rest -> (
        cont.phases <- rest;
        (* Listing 1's wait(c): block only if that specific async child is
           still outstanding. Unknown cookies are a no-op. *)
        match Hashtbl.find_opt cont.cookies cookie with
        | None -> ()
        | Some child_id ->
            if not (Hashtbl.mem cont.done_children child_id) then begin
              cont.wait_kind <- Wait_child child_id;
              let c = Runtime.suspend t.rt ~core:exec.ecore ~pd:cont.pd in
              add_cost root c;
              dt := !dt +. Runtime.total c;
              suspended := true;
              continue := false
            end)
    | Model.Scratch bytes :: rest ->
        cont.phases <- rest;
        let c = Runtime.scratch t.rt ~core:exec.ecore ~bytes in
        add_cost root c;
        dt := !dt +. Runtime.total c
  done;
  trace t ~kind:Trace.Segment ~req:cont.req ~core:exec.ecore ~dur_ns:!dt ();
  charge_core t exec.ecore !dt;
  let at = Time.(now + Time.of_ns !dt) in
  if !finished then Engine.schedule_at t.engine ~time:at (finish_cont t exec cont)
  else if !suspended then begin
    trace t ~kind:Trace.Suspend ~req:cont.req ~core:exec.ecore ();
    Engine.schedule_at t.engine ~time:at (suspend_cont t exec cont)
  end

and suspend_cont t exec cont engine =
  exec.suspended <- exec.suspended + 1;
  (* If every awaited child already completed during the segment (the
     completion event cleared [wait_kind]), the continuation is immediately
     ready again. *)
  let ready =
    match cont.wait_kind with
    | Wait_none -> true
    | Wait_all -> cont.outstanding = 0
    | Wait_child _ -> false
  in
  if ready then begin
    cont.status <- `Ready;
    Queue.push cont exec.ready
  end
  else cont.status <- `Suspended;
  exec.ebusy <- false;
  exec_poll t exec engine

and finish_cont t exec cont engine =
  let now = Engine.now engine in
  trace t ~kind:Trace.Complete ~req:cont.req ~core:exec.ecore ();
  let req = cont.req in
  let root = req.Request.root in
  let c =
    Runtime.teardown t.rt ~core:exec.ecore ~fn:cont.fn ~pd:cont.pd
      ~state_va:cont.state_va ~argbuf:req.Request.argbuf
  in
  add_cost root c;
  t.live_conts <- t.live_conts - 1;
  let dt = Runtime.total c in
  (* Completion notification: a line write under Jord, a pipe message under
     NightCore — the sender only pays the send side; delivery takes the full
     message latency. *)
  let notify_busy, notify_lat, notify_charge =
    if Variant.uses_pipes t.cfg.variant then begin
      let pipe = (Runtime.nc t.rt).Jord_baseline.Nightcore.pipe in
      let send = Jord_baseline.Pipe.sender_ns pipe ~bytes:64 in
      let full = Jord_baseline.Pipe.message_ns pipe ~bytes:64 ~wake:true in
      (send, full, full)
    end
    else begin
      let addr =
        match req.Request.on_complete with
        | Some _ -> cont_line cont.cid
        | None -> (
            match exec.my_orch with
            | Some o -> o.notify_line
            | None -> invalid_arg "Server: executor not wired")
      in
      let wr = Jord_arch.Memsys.write t.memsys ~core:exec.ecore ~addr in
      (wr, wr, wr)
    end
  in
  root.Request.comm_ns <- root.Request.comm_ns +. notify_charge;
  (match req.Request.on_complete with
  | Some f when req.Request.forwarded ->
      (* Forwarded request: the response travels back over the network; the
         local ArgBuf is reclaimed here, and the origin-side buffer is
         restored before the parent reaps it. *)
      (match exec.my_orch with
      | Some o ->
          o.reclaim <- (req.Request.argbuf, req.Request.arg_bytes) :: o.reclaim;
          (* Wake the orchestrator so the buffer is reclaimed even when no
             further dispatches are pending on this server. *)
          Engine.schedule_at t.engine ~time:now (fun eng ->
              if not o.obusy then begin
                o.obusy <- true;
                dispatch_one t o eng
              end)
      | None -> ());
      let resp = net_one_way_ns +. (net_per_byte_ns *. 256.0) in
      root.Request.comm_ns <- root.Request.comm_ns +. resp;
      req.Request.argbuf <- req.Request.home_argbuf;
      let at = Time.(now + Time.of_ns (dt +. notify_lat +. resp)) in
      Engine.schedule_at t.engine ~time:at (fun e -> f e notify_lat)
  | Some f ->
      (* Internal request: notify the parent's executor. *)
      let at = Time.(now + Time.of_ns (dt +. notify_lat)) in
      Engine.schedule_at t.engine ~time:at (fun e -> f e notify_lat)
  | None ->
      (* External request: notify the orchestrator and finish measurement. *)
      let orch =
        match exec.my_orch with
        | Some o -> o
        | None -> invalid_arg "Server: executor not wired"
      in
      let at = Time.(now + Time.of_ns (dt +. notify_lat)) in
      orch.reclaim <- (req.Request.argbuf, req.Request.arg_bytes) :: orch.reclaim;
      Engine.schedule_at t.engine ~time:at (fun eng ->
          root.Request.completed_at <- at;
          root.Request.finished <- true;
          t.completed <- t.completed + 1;
          t.root_cb root;
          (* Wake the orchestrator so the finished ArgBuf gets reclaimed
             even when no further dispatches are pending. *)
          if not orch.obusy then begin
            orch.obusy <- true;
            dispatch_one t orch eng
          end));
  charge_core t exec.ecore (dt +. notify_busy);
  (* The executor is free again once teardown and the send are done. *)
  Engine.schedule_at t.engine ~time:Time.(now + Time.of_ns (dt +. notify_busy)) (fun e ->
      exec.ebusy <- false;
      exec_poll t exec e)

and child_completed t parent child engine (_notify_ns : float) =
  parent.outstanding <- parent.outstanding - 1;
  Hashtbl.replace parent.done_children child.Request.id ();
  parent.to_reap <- (child.Request.argbuf, child.Request.arg_bytes) :: parent.to_reap;
  let was_waiting_for_this =
    match parent.wait_kind with
    | Wait_child id -> id = child.Request.id
    | Wait_all -> parent.outstanding = 0
    | Wait_none -> false
  in
  if was_waiting_for_this then parent.wait_kind <- Wait_none;
  match parent.status with
  | `Suspended when was_waiting_for_this ->
      parent.status <- `Ready;
      Queue.push parent parent.home.ready;
      if not parent.home.ebusy then exec_poll t parent.home engine
  | `Suspended | `Running | `Ready -> ()

(* --- Orchestrator side --- *)

and internal_arrival t orch req engine =
  req.Request.enqueued_at <- Engine.now engine;
  Queue.push req orch.internal_q;
  if not orch.obusy then begin
    orch.obusy <- true;
    dispatch_one t orch engine
  end

and pick_request t orch =
  match orch.pending with
  | Some req ->
      orch.pending <- None;
      Some (req, 0.0)
  | None ->
      (* Deadlock freedom (paper §3.3): internal requests go first, so
         executors waiting on children always make progress. The ablation
         flag reverses the order to demonstrate why it matters. *)
      let internal_first =
        if t.cfg.internal_priority then not (Queue.is_empty orch.internal_q)
        else Queue.is_empty orch.external_q && not (Queue.is_empty orch.internal_q)
      in
      if internal_first then begin
        let req = Queue.pop orch.internal_q in
        let deq = Jord_arch.Memsys.read t.memsys ~core:orch.ocore ~addr:orch.int_line in
        if req.Request.forwarded && req.Request.argbuf = 0 then begin
          (* Arrived from another server: land the payload in a local
             ArgBuf (network copy, no zero-copy across machines). *)
          let va, c =
            Runtime.external_input t.rt ~core:orch.ocore ~bytes:req.Request.arg_bytes
          in
          req.Request.argbuf <- va;
          add_cost req.Request.root c;
          let copy = net_per_byte_ns *. float_of_int req.Request.arg_bytes in
          req.Request.root.Request.comm_ns <-
            req.Request.root.Request.comm_ns +. copy;
          Some (req, deq +. Runtime.total c +. copy)
        end
        else Some (req, deq)
      end
      else if not (Queue.is_empty orch.external_q) then begin
        let req = Queue.pop orch.external_q in
        let deq = Jord_arch.Memsys.read t.memsys ~core:orch.ocore ~addr:orch.ext_line in
        (* Materialize the external payload into an ArgBuf. *)
        let va, c = Runtime.external_input t.rt ~core:orch.ocore ~bytes:req.Request.arg_bytes in
        req.Request.argbuf <- va;
        add_cost req.Request.root c;
        Some (req, deq +. Runtime.total c)
      end
      else None

(* JBSQ scan: read every managed executor's queue-length line. Misses
   overlap (memory-level parallelism): the worst one at full latency, the
   rest at a quarter; hits are pipelined loads. *)
and jbsq_scan t orch =
  let hit_ns = ref 0.0 and misses = ref [] in
  let scanned = ref 0 in
  let lengths i =
    let e = orch.execs.(i) in
    let lat =
      Jord_arch.Memsys.read t.memsys ~core:orch.ocore
        ~addr:(Bounded_queue.len_addr e.equeue)
    in
    if lat <= 0.6 then hit_ns := !hit_ns +. lat else misses := lat :: !misses;
    Bounded_queue.length e.equeue
  in
  let full i = Bounded_queue.is_full orch.execs.(i).equeue in
  let choice =
    Policy.pick t.cfg.policy ~prng:t.prng ~cursor:orch.rr_cursor ~lengths ~full
      ~n:(Array.length orch.execs) ~scanned
  in
  let scan_ns =
    !hit_ns
    +.
    (* Independent loads overlap: the worst miss is fully exposed, the rest
       partially. Cross-socket transfers (long wire latency over deeply
       pipelined links) overlap more than intra-socket ones. *)
    match List.sort (fun a b -> compare b a) !misses with
    | [] -> 0.0
    | worst :: rest ->
        worst
        +. List.fold_left
             (fun acc lat -> acc +. (lat *. if lat > 400.0 then 0.1 else 0.25))
             0.0 rest
  in
  let instr_ns =
    Jord_vm.Hw.instr_ns t.hw (dispatch_instrs + (per_scan_instrs * !scanned))
  in
  (choice, scan_ns, instr_ns)

and reclaim_argbufs t orch n =
  let ns = ref 0.0 in
  let rec go n =
    if n > 0 then
      match orch.reclaim with
      | [] -> ()
      | (va, bytes) :: rest ->
          orch.reclaim <- rest;
          if va <> 0 then begin
            let c = Runtime.release_argbuf t.rt ~core:orch.ocore ~va ~bytes in
            ns := !ns +. Runtime.total c
          end;
          go (n - 1)
  in
  go n;
  !ns

and dispatch_one t orch engine =
  let now = Engine.now engine in
  match pick_request t orch with
  | None ->
      (* Going idle: release any finished root ArgBufs first. *)
      let reclaim_ns = reclaim_argbufs t orch max_int in
      if reclaim_ns > 0.0 then
        Engine.schedule t.engine ~after:(Time.of_ns reclaim_ns) (fun eng ->
            if not (Queue.is_empty orch.internal_q) || not (Queue.is_empty orch.external_q)
            then dispatch_one t orch eng
            else orch.obusy <- false)
      else orch.obusy <- false
  | Some (req, intake_ns) ->
      let root = req.Request.root in
      let choice, scan_ns, instr_ns = jbsq_scan t orch in
      (match choice with
      | None -> (
          root.Request.dispatch_ns <- root.Request.dispatch_ns +. scan_ns +. instr_ns;
          t.dispatch_ns <- t.dispatch_ns +. scan_ns +. instr_ns;
          orch.pending_retries <- orch.pending_retries + 1;
          t.queue_full_retries <- t.queue_full_retries + 1;
          match t.forward_cb with
          | Some forward
            when orch.pending_retries > t.cfg.forward_after
                 && req.Request.depth > 0
                 && not (Variant.uses_pipes t.cfg.variant) ->
              (* This server cannot serve the internal request: ship it to
                 another worker server over the network (paper 3.3). *)
              orch.pending_retries <- 0;
              t.forwarded_out <- t.forwarded_out + 1;
              trace t ~kind:Trace.Forward ~req ~core:orch.ocore ();
              (* Only the first hop records the origin ArgBuf; on a re-hop
                 the intermediate copy is reclaimed locally. *)
              if not req.Request.forwarded then begin
                req.Request.forwarded <- true;
                req.Request.home_argbuf <- req.Request.argbuf
              end
              else if req.Request.argbuf <> 0 then
                orch.reclaim <-
                  (req.Request.argbuf, req.Request.arg_bytes) :: orch.reclaim;
              req.Request.argbuf <- 0;
              let send =
                net_one_way_ns +. (net_per_byte_ns *. float_of_int req.Request.arg_bytes)
              in
              root.Request.dispatch_ns <- root.Request.dispatch_ns +. send;
              forward req;
              Engine.schedule t.engine ~after:(Time.of_ns send) (dispatch_one t orch)
          | Some _ | None ->
              (* Hold the request and retry after a beat. *)
              orch.pending <- Some req;
              Engine.schedule t.engine ~after:backoff (dispatch_one t orch))
      | Some i ->
          orch.pending_retries <- 0;
          trace t ~kind:Trace.Dispatch ~req ~core:orch.ocore ();
          let e = orch.execs.(i) in
          let enq_ns = Bounded_queue.enqueue e.equeue ~memsys:t.memsys ~core:orch.ocore req in
          (* NightCore ships the request over a pipe: the dispatcher only
             pays the write syscall; the receiver-side copy-out and futex
             wakeup delay the worker instead. *)
          let pipe_send, pipe_wake =
            if Variant.uses_pipes t.cfg.variant then
              let pipe = (Runtime.nc t.rt).Jord_baseline.Nightcore.pipe in
              ( Jord_baseline.Pipe.sender_ns pipe ~bytes:64,
                Jord_baseline.Pipe.message_ns pipe ~bytes:64 ~wake:true
                -. Jord_baseline.Pipe.sender_ns pipe ~bytes:64 )
            else (0.0, 0.0)
          in
          let disp = scan_ns +. instr_ns +. enq_ns +. pipe_send +. pipe_wake in
          root.Request.dispatch_ns <- root.Request.dispatch_ns +. disp;
          t.dispatch_count <- t.dispatch_count + 1;
          t.dispatch_ns <- t.dispatch_ns +. disp;
          (* Reclaim up to two finished root ArgBufs, amortized into the
             dispatch loop. *)
          let reclaim_ns = reclaim_argbufs t orch 2 in
          let busy = intake_ns +. scan_ns +. instr_ns +. enq_ns +. pipe_send +. reclaim_ns in
          charge_core t orch.ocore busy;
          let next = Time.(now + Time.of_ns busy) in
          let seen = Time.(now + Time.of_ns (busy +. pipe_wake)) in
          Engine.schedule_at t.engine ~time:seen (fun eng ->
              req.Request.enqueued_at <- seen;
              if not e.ebusy then exec_poll t e eng);
          Engine.schedule_at t.engine ~time:next (dispatch_one t orch))

(* --- Construction and submission --- *)

let receive_forwarded t req =
  t.received_in <- t.received_in + 1;
  let orch = t.orchs.(req.Request.id mod Array.length t.orchs) in
  internal_arrival t orch req t.engine

let create ?engine cfg app =
  (match Model.validate app with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Server.create: invalid app: " ^ msg));
  let n = cfg.machine.Jord_arch.Config.cores in
  if cfg.orchestrators < 1 || cfg.orchestrators >= n then
    invalid_arg "Server.create: orchestrator count";
  let topo = Jord_arch.Topology.create cfg.machine in
  let memsys = Jord_arch.Memsys.create topo in
  let va_cfg = Jord_vm.Va.default_config in
  let store =
    match cfg.variant with
    | Variant.Jord_bt -> Jord_vm.Vma_store.btree ()
    | Variant.Jord | Variant.Jord_ni | Variant.Nightcore -> Jord_vm.Vma_store.plain va_cfg
  in
  let hw =
    Jord_vm.Hw.create ~i_entries:cfg.i_vlb_entries ~d_entries:cfg.d_vlb_entries ~memsys
      ~store ~va_cfg ()
  in
  let os = Jord_privlib.Os_facade.create () in
  let priv = Jord_privlib.Privlib.create ~hw ~os in
  let rt =
    Runtime.create ~variant:cfg.variant ~hw ~priv ~nc:Jord_baseline.Nightcore.default
  in
  let block = n / cfg.orchestrators in
  let mk_exec eid core =
    {
      eid;
      ecore = core;
      equeue =
        Bounded_queue.create ~capacity:cfg.queue_capacity
          ~region:(exec_queue_region + (eid * Bounded_queue.region_bytes ~capacity:cfg.queue_capacity));
      ready = Queue.create ();
      ebusy = false;
      my_orch = None;
      suspended = 0;
    }
  in
  let execs = ref [] in
  let next_eid = ref 0 in
  let orchs =
    Array.init cfg.orchestrators (fun oid ->
        let base = oid * block in
        let last = if oid = cfg.orchestrators - 1 then n - 1 else base + block - 1 in
        let group =
          Array.init (last - base) (fun i ->
              let e = mk_exec !next_eid (base + 1 + i) in
              incr next_eid;
              execs := e :: !execs;
              e)
        in
        {
          oid;
          ocore = base;
          execs = group;
          external_q = Queue.create ();
          internal_q = Queue.create ();
          pending = None;
          pending_retries = 0;
          obusy = false;
          rr_cursor = ref 0;
          ext_line = orch_region + (oid * 4096);
          int_line = orch_region + (oid * 4096) + 64;
          notify_line = orch_region + (oid * 4096) + 128;
          reclaim = [];
        })
  in
  let all_execs = Array.of_list (List.rev !execs) in
  let t =
    {
      cfg;
      app;
      engine = (match engine with Some e -> e | None -> Engine.create ());
      memsys;
      hw;
      priv;
      rt;
      orchs;
      all_execs;
      prng = Jord_util.Prng.create ~seed:cfg.seed;
      next_req_id = 0;
      next_cid = 0;
      root_cb = (fun _ -> ());
      dispatch_count = 0;
      dispatch_ns = 0.0;
      completed = 0;
      live_conts = 0;
      dropped = 0;
      arrivals = 0;
      queue_full_retries = 0;
      forward_cb = None;
      forwarded_out = 0;
      received_in = 0;
      tracer = None;
      core_busy_ps = Array.make n 0.0;
    }
  in
  Array.iter (fun o -> Array.iter (fun e -> e.my_orch <- Some o) o.execs) orchs;
  (* Load the application's code. *)
  List.iter (fun fn -> Runtime.register_function rt ~core:0 fn) app.Model.fns;
  t

let submit t ?entry () =
  t.arrivals <- t.arrivals + 1;
  let entry = match entry with Some e -> e | None -> Model.pick_entry t.app t.prng in
  let arg_bytes = 512 in
  let _, req =
    Request.make_root ~id:(fresh_req_id t) ~entry ~arrival:(Engine.now t.engine)
      ~arg_bytes
  in
  let orch = t.orchs.(req.Request.id mod Array.length t.orchs) in
  if Queue.length orch.external_q >= external_queue_cap then begin
    t.dropped <- t.dropped + 1;
    trace t ~kind:Trace.Drop ~req ~core:orch.ocore ()
  end
  else begin
    trace t ~kind:Trace.Arrive ~req ~core:orch.ocore ();
    Queue.push req orch.external_q;
    if not orch.obusy then begin
      orch.obusy <- true;
      dispatch_one t orch t.engine
    end
  end

let run ?until t = Engine.run ?until t.engine

(* --- Telemetry --- *)

let queue_depths t =
  Array.fold_left
    (fun (sum, mx) e ->
      let d = Bounded_queue.length e.equeue in
      (sum + d, Int.max mx d))
    (0, 0) t.all_execs

(* One registry call wires the whole machine: the server's own control-plane
   counters plus the VM, memory-system and PrivLib families underneath it. *)
let register_metrics t ?(labels = []) reg =
  let open Jord_telemetry.Registry in
  let c name help fn = counter_fn reg ~help ~labels name fn in
  let g name help fn = gauge_fn reg ~help ~labels name fn in
  c "jord_server_arrivals_total" "External requests submitted" (fun () ->
      float_of_int t.arrivals);
  c "jord_server_dispatches_total" "JBSQ dispatch operations" (fun () ->
      float_of_int t.dispatch_count);
  c "jord_server_dispatch_ns_total" "Cumulative dispatch latency (ns)" (fun () ->
      t.dispatch_ns);
  c "jord_server_completed_total" "Root requests completed" (fun () ->
      float_of_int t.completed);
  c "jord_server_drops_total" "External requests shed (queue cap)" (fun () ->
      float_of_int t.dropped);
  c "jord_server_queue_full_retries_total"
    "Dispatch scans that found every executor queue full" (fun () ->
      float_of_int t.queue_full_retries);
  c "jord_server_forwarded_out_total" "Internal requests shipped to another server"
    (fun () -> float_of_int t.forwarded_out);
  c "jord_server_received_in_total" "Forwarded requests accepted from other servers"
    (fun () -> float_of_int t.received_in);
  g "jord_server_live_continuations" "Running or suspended continuations" (fun () ->
      float_of_int t.live_conts);
  gauge_fn reg ~help:"Deepest executor queue"
    ~labels:(labels @ [ ("agg", "max") ])
    "jord_executor_queue_depth" (fun () -> float_of_int (snd (queue_depths t)));
  Jord_vm.Hw.register_metrics t.hw ~labels reg;
  Jord_arch.Memsys.register_metrics t.memsys ~labels reg;
  Jord_privlib.Privlib.register_metrics t.priv ~labels reg

(* Sampled time series over simulated time: queue depths, continuation
   population, per-role busy fraction (a delta gauge: busy time accrued
   since the previous tick over the tick's span), VLB occupancy. *)
let attach_sampler t ?(labels = []) sampler =
  let track ?(extra = []) name fn =
    Jord_telemetry.Sampler.track sampler ~labels:(labels @ extra) name fn
  in
  track "jord_executor_queue_depth" ~extra:[ ("agg", "mean") ] (fun () ->
      let sum, _ = queue_depths t in
      float_of_int sum /. float_of_int (Int.max 1 (Array.length t.all_execs)));
  track "jord_executor_queue_depth" ~extra:[ ("agg", "max") ] (fun () ->
      float_of_int (snd (queue_depths t)));
  track "jord_server_live_continuations" (fun () -> float_of_int t.live_conts);
  track "jord_server_suspended_continuations" (fun () ->
      float_of_int (Array.fold_left (fun acc e -> acc + e.suspended) 0 t.all_execs));
  let busy_fraction cores =
    let last_busy = ref 0.0 and last_now = ref (float_of_int (Engine.now t.engine)) in
    fun () ->
      let busy = List.fold_left (fun acc c -> acc +. t.core_busy_ps.(c)) 0.0 cores in
      let now = float_of_int (Engine.now t.engine) in
      let span = now -. !last_now and delta = busy -. !last_busy in
      last_busy := busy;
      last_now := now;
      if span <= 0.0 then 0.0
      else Float.min 1.0 (delta /. span /. float_of_int (List.length cores))
  in
  let ocores = Array.to_list (Array.map (fun o -> o.ocore) t.orchs) in
  let ecores = Array.to_list (Array.map (fun e -> e.ecore) t.all_execs) in
  track "jord_core_busy_fraction" ~extra:[ ("role", "orchestrator") ]
    (busy_fraction ocores);
  track "jord_core_busy_fraction" ~extra:[ ("role", "executor") ]
    (busy_fraction ecores);
  track "jord_vlb_occupancy_fraction" ~extra:[ ("vlb", "i") ] (fun () ->
      Jord_vm.Hw.vlb_occupancy t.hw ~kind:`Instr);
  track "jord_vlb_occupancy_fraction" ~extra:[ ("vlb", "d") ] (fun () ->
      Jord_vm.Hw.vlb_occupancy t.hw ~kind:`Data)

(* Worst-case dispatch microbenchmark (Fig. 14): every executor re-acquired
   its queue-length line since the last scan, so each JBSQ read is a remote
   cache-to-cache transfer. *)
(* Worst-case VLB shootdown (Fig. 14): the translation is cached in every
   core's VLB, so the VTD must invalidate all of them; the latency is the
   round trip to the farthest core. PrivLib's code VMA — genuinely resident
   everywhere — serves as the victim, and is re-warmed afterwards. *)
let worst_case_shootdown_ns t =
  match Jord_privlib.Privlib.code_vma t.priv with
  | None -> 0.0
  | Some va ->
      let cores = Jord_arch.Topology.cores (Jord_arch.Memsys.topology t.memsys) in
      for core = 0 to cores - 1 do
        Jord_vm.Hw.warm t.hw ~core ~va ~kind:`Instr
      done;
      let ns = Jord_vm.Hw.shootdown t.hw ~core:0 ~va in
      for core = 0 to cores - 1 do
        Jord_vm.Hw.warm t.hw ~core ~va ~kind:`Instr
      done;
      ns

let worst_case_dispatch_ns t =
  let orch = t.orchs.(0) in
  Array.iter
    (fun e ->
      ignore
        (Jord_arch.Memsys.write t.memsys ~core:e.ecore
           ~addr:(Bounded_queue.len_addr e.equeue)))
    orch.execs;
  let _, scan_ns, instr_ns = jbsq_scan t orch in
  scan_ns +. instr_ns
