module Engine = Jord_sim.Engine

type config = {
  variant : Variant.t;
  machine : Jord_arch.Config.t;
  orchestrators : int;
  queue_capacity : int;
  policy : Policy.t;
  i_vlb_entries : int;
  d_vlb_entries : int;
  seed : int;
  internal_priority : bool;
  forward_after : int;
  net : Netmodel.t;
  fault_plan : Jord_fault_inject.Plan.t option;
  recovery : Recovery.t;
}

let default_config =
  {
    variant = Variant.Jord;
    machine = Jord_arch.Config.default;
    orchestrators = 4;
    queue_capacity = 4;
    policy = Policy.Jbsq;
    i_vlb_entries = 16;
    d_vlb_entries = 16;
    seed = 42;
    internal_priority = true;
    forward_after = max_int;
    net = Netmodel.default;
    fault_plan = None;
    recovery = Recovery.default;
  }

type t = {
  cfg : config;
  ctx : Executor.ctx;
  priv : Jord_privlib.Privlib.t;
  orchs : Orchestrator.t array;
  all_execs : Executor.t array;
  mutable dropped : int;
  mutable arrivals : int;
  pd_floor : int;  (** Live PDs right after boot (the balance baseline). *)
  vma_floor : int;  (** Live VMAs right after boot + function registration. *)
}

(* External queues are capped like a NIC ring: beyond this the server sheds
   load instead of buffering unboundedly; dropped requests are never measured. *)
let external_queue_cap = 32768

let engine t = t.ctx.Executor.engine
let config t = t.cfg
let app t = t.ctx.Executor.app
let hw t = t.ctx.Executor.hw
let privlib t = t.priv
let runtime t = t.ctx.Executor.rt
let netmodel t = t.cfg.net
let on_root_complete t f = t.ctx.Executor.root_cb <- f
let executor_count t = Array.length t.all_execs
let orchestrator_count t = Array.length t.orchs
let dispatch_count t = t.ctx.Executor.dispatch_count
let dispatch_ns_total t = t.ctx.Executor.dispatch_ns
let completed_roots t = t.ctx.Executor.completed
let live_continuations t = t.ctx.Executor.live_conts
let dropped_requests t = t.dropped
let arrivals t = t.arrivals
let queue_full_retries t = t.ctx.Executor.queue_full_retries
let set_forward t cb = t.ctx.Executor.forward_cb <- cb
let set_tracer t tr = t.ctx.Executor.tracer <- tr
let set_trace_sid t sid = t.ctx.Executor.trace_sid <- sid
let set_sid t sid = t.ctx.Executor.sid <- sid
let set_route_return t r = t.ctx.Executor.route_return <- r

(* Give a cluster member a disjoint request-id space (member [base] of
   [stride] servers allocates base, base+stride, ...) so spans built from a
   shared tracer never merge two servers' requests. Must be called before
   any request is admitted. *)
let set_req_id_space t ~base ~stride =
  t.ctx.Executor.next_req_id <- base;
  t.ctx.Executor.req_id_stride <- stride
let orchestrator_cores t =
  Array.to_list (Array.map (fun o -> o.Orchestrator.core) t.orchs)
let forwarded_out t = t.ctx.Executor.forwarded_out
let received_in t = t.ctx.Executor.received_in
let timed_out_requests t = t.ctx.Executor.timed_out
let in_flight t = t.ctx.Executor.in_flight
let crashes t = t.ctx.Executor.crashes
let server_crashes t = t.ctx.Executor.server_crashes
let warm_losses t = t.ctx.Executor.warm_losses
let cold_starts t = t.ctx.Executor.cold_starts

let is_down t =
  Engine.now t.ctx.Executor.engine < t.ctx.Executor.srv_down_until

let recovered t = t.ctx.Executor.recovered
let stalls t = t.ctx.Executor.stalls
let slowdowns t = t.ctx.Executor.slowdowns
let forward_abandoned t = t.ctx.Executor.forward_abandoned
let queue_wait_ns_total t = t.ctx.Executor.queue_wait_ns

let fault_active t =
  match t.ctx.Executor.fault with
  | Some inj -> Jord_fault_inject.Injector.active inj
  | None -> false

let core_busy_ns t ~core = t.ctx.Executor.core_busy_ps.(core) /. 1000.0

(* Cluster-side hooks: account a transfer given up on (the request is
   re-executed locally by the transport) and a deduplicated wire copy. *)
let note_forward_abandoned t req =
  let ctx = t.ctx in
  ctx.Executor.forward_abandoned <- ctx.Executor.forward_abandoned + 1;
  Executor.trace ctx ~kind:Trace.Drop ~req ~core:(-1) ~detail:"peer_dead" ()

let note_duplicate t req =
  Executor.trace t.ctx ~kind:Trace.Duplicate ~req ~core:(-1) ()

let conservation t =
  let ctx = t.ctx in
  {
    Jord_fault_inject.Invariant.arrivals = t.arrivals;
    completed = ctx.Executor.completed;
    dropped = t.dropped;
    timed_out = ctx.Executor.timed_out;
    in_flight = ctx.Executor.in_flight;
    forwarded_out = ctx.Executor.forwarded_out;
    received_in = ctx.Executor.received_in;
    crashes = ctx.Executor.crashes;
    recovered = ctx.Executor.recovered;
    live_continuations = ctx.Executor.live_conts;
    surplus_pds =
      Jord_privlib.Pd.live_count (Jord_privlib.Privlib.pds t.priv) - t.pd_floor;
    surplus_vmas =
      Jord_vm.Vma_store.count (Jord_vm.Hw.store (hw t)) - t.vma_floor;
    drained = Engine.pending ctx.Executor.engine = 0;
  }

let check_invariants t = Jord_fault_inject.Invariant.check (conservation t)

(* Mean orchestrator / executor core utilization over the simulated span. *)
let utilization t =
  let busy = t.ctx.Executor.core_busy_ps in
  let now_ps = float_of_int (Engine.now t.ctx.Executor.engine) in
  if now_ps <= 0.0 then (0.0, 0.0)
  else
    let orch_sum = ref 0.0 and exec_sum = ref 0.0 in
    let () =
      Array.iter (fun o -> orch_sum := !orch_sum +. busy.(o.Orchestrator.core)) t.orchs;
      Array.iter (fun e -> exec_sum := !exec_sum +. busy.(e.Executor.core)) t.all_execs
    in
    ( !orch_sum /. now_ps /. float_of_int (Array.length t.orchs),
      !exec_sum /. now_ps /. float_of_int (Array.length t.all_execs) )

let receive_forwarded t req =
  t.ctx.Executor.received_in <- t.ctx.Executor.received_in + 1;
  let orch = t.orchs.(req.Request.id mod Array.length t.orchs) in
  Orchestrator.internal_arrival t.ctx orch req t.ctx.Executor.engine

let create ?engine cfg app =
  (match Model.validate app with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Server.create: invalid app: " ^ msg));
  let n = cfg.machine.Jord_arch.Config.cores in
  if cfg.orchestrators < 1 || cfg.orchestrators >= n then
    invalid_arg "Server.create: orchestrator count";
  let topo = Jord_arch.Topology.create cfg.machine in
  let memsys = Jord_arch.Memsys.create topo in
  let va_cfg = Jord_vm.Va.default_config in
  let store =
    match cfg.variant with
    | Variant.Jord_bt -> Jord_vm.Vma_store.btree ()
    | Variant.Jord | Variant.Jord_ni | Variant.Nightcore -> Jord_vm.Vma_store.plain va_cfg
  in
  let hw =
    Jord_vm.Hw.create ~i_entries:cfg.i_vlb_entries ~d_entries:cfg.d_vlb_entries ~memsys
      ~store ~va_cfg ()
  in
  let os = Jord_privlib.Os_facade.create () in
  let priv = Jord_privlib.Privlib.create ~hw ~os in
  let rt =
    Runtime.create ~variant:cfg.variant ~hw ~priv ~nc:Jord_baseline.Nightcore.default
  in
  let ctx =
    {
      Executor.variant = cfg.variant;
      internal_priority = cfg.internal_priority;
      forward_after = cfg.forward_after;
      policy = cfg.policy;
      net = cfg.net;
      engine = (match engine with Some e -> e | None -> Engine.create ());
      memsys;
      hw;
      rt;
      app;
      prng = Jord_util.Prng.create ~seed:cfg.seed;
      core_busy_ps = Array.make n 0.0;
      tracer = None;
      trace_sid = 0;
      sid = 0;
      next_req_id = 0;
      req_id_stride = 1;
      next_cid = 0;
      root_cb = (fun _ -> ());
      completed = 0;
      live_conts = 0;
      dispatch_count = 0;
      dispatch_ns = 0.0;
      queue_full_retries = 0;
      forward_cb = None;
      route_return = None;
      forwarded_out = 0;
      received_in = 0;
      recovery = cfg.recovery;
      (* The fault stream is seeded by the plan, salted by the server seed
         so cluster members sharing one plan get decorrelated schedules. *)
      fault =
        Option.map
          (fun plan -> Jord_fault_inject.Injector.create ~salt:cfg.seed plan)
          cfg.fault_plan;
      timed_out = 0;
      in_flight = 0;
      crashes = 0;
      recovered = 0;
      stalls = 0;
      slowdowns = 0;
      forward_abandoned = 0;
      queue_wait_ns = 0.0;
      on_retry_backoff = (fun _ -> ());
      srv_down_until = Jord_sim.Time.zero;
      server_crashes = 0;
      warm_losses = 0;
      cold_starts = 0;
      cold_fns = Hashtbl.create 8;
      conts = Hashtbl.create 64;
      on_server_purge = (fun ~reboot:_ -> ());
    }
  in
  let block = n / cfg.orchestrators in
  let execs = ref [] in
  let next_eid = ref 0 in
  let orchs =
    Array.init cfg.orchestrators (fun oid ->
        let base = oid * block in
        let last = if oid = cfg.orchestrators - 1 then n - 1 else base + block - 1 in
        let group =
          Array.init (last - base) (fun i ->
              let e =
                Executor.create ctx ~eid:!next_eid ~core:(base + 1 + i)
                  ~queue_capacity:cfg.queue_capacity
              in
              incr next_eid;
              execs := e :: !execs;
              e)
        in
        Orchestrator.create ctx ~oid ~core:base ~execs:group)
  in
  let all_execs = Array.of_list (List.rev !execs) in
  (* Whole-server crash purge: orchestrator queues first (held/internal
     requests), then every executor's queue, in index order — a fixed walk
     so chaos runs replay identically. *)
  ctx.Executor.on_server_purge <-
    (fun ~reboot ->
      Array.iter (fun o -> Orchestrator.purge_for_reboot ctx o ~reboot) orchs;
      Array.iter (fun e -> Executor.purge_for_reboot ctx e ~reboot) all_execs);
  List.iter (fun fn -> Runtime.register_function rt ~core:0 fn) app.Model.fns;
  (* The conservation checker measures PD/VMA leaks against the population
     right after boot and function registration. *)
  let pd_floor = Jord_privlib.Pd.live_count (Jord_privlib.Privlib.pds priv) in
  let vma_floor = Jord_vm.Vma_store.count store in
  { cfg; ctx; priv; orchs; all_execs; dropped = 0; arrivals = 0; pd_floor; vma_floor }

let submit t ?entry () =
  let ctx = t.ctx in
  t.arrivals <- t.arrivals + 1;
  let entry =
    match entry with
    | Some e -> e
    | None -> Model.pick_entry ctx.Executor.app ctx.Executor.prng
  in
  let arg_bytes = 512 in
  let _, req =
    Request.make_root ~id:(Executor.fresh_req_id ctx) ~entry
      ~arrival:(Engine.now ctx.Executor.engine) ~arg_bytes
  in
  let orch = t.orchs.(req.Request.id mod Array.length t.orchs) in
  if Queue.length orch.Orchestrator.external_q >= external_queue_cap then begin
    t.dropped <- t.dropped + 1;
    Executor.trace ctx ~kind:Trace.Drop ~req ~core:orch.Orchestrator.core
      ~detail:"queue_full" ()
  end
  else begin
    ctx.Executor.in_flight <- ctx.Executor.in_flight + 1;
    Executor.trace ctx ~kind:Trace.Arrive ~req ~core:orch.Orchestrator.core ();
    Orchestrator.enqueue_external ctx orch req ctx.Executor.engine
  end

let run ?until t = Engine.run ?until t.ctx.Executor.engine

let queue_depths t =
  Array.fold_left
    (fun (sum, mx) e ->
      let d = Bounded_queue.length e.Executor.queue in
      (sum + d, Int.max mx d))
    (0, 0) t.all_execs

(* One registry call wires the whole machine's metric families. *)
let register_metrics t ?(labels = []) reg =
  let ctx = t.ctx in
  let open Jord_telemetry.Registry in
  let c name help fn = counter_fn reg ~help ~labels name fn in
  let g name help fn = gauge_fn reg ~help ~labels name fn in
  c "jord_server_arrivals_total" "External requests submitted" (fun () ->
      float_of_int t.arrivals);
  c "jord_server_dispatches_total" "JBSQ dispatch operations" (fun () ->
      float_of_int ctx.Executor.dispatch_count);
  c "jord_server_dispatch_ns_total" "Cumulative dispatch latency (ns)" (fun () ->
      ctx.Executor.dispatch_ns);
  c "jord_server_completed_total" "Root requests completed" (fun () ->
      float_of_int ctx.Executor.completed);
  (* Shed causes are distinguishable by the reason label: queue_full (full
     external queue), deadline (deadline policy), peer_dead (forwarded
     transfer abandoned on the wire and re-executed locally). *)
  let drop_reason reason fn =
    counter_fn reg ~help:"Requests shed, by reason"
      ~labels:(labels @ [ ("reason", reason) ])
      "jord_server_drops_total" fn
  in
  drop_reason "queue_full" (fun () -> float_of_int t.dropped);
  drop_reason "deadline" (fun () -> float_of_int ctx.Executor.timed_out);
  drop_reason "peer_dead" (fun () -> float_of_int ctx.Executor.forward_abandoned);
  c "jord_server_timeouts_total" "External requests shed past their deadline"
    (fun () -> float_of_int ctx.Executor.timed_out);
  c "jord_server_crashes_total" "Injected executor crashes" (fun () ->
      float_of_int ctx.Executor.crashes);
  c "jord_server_machine_crashes_total" "Injected whole-server crashes" (fun () ->
      float_of_int ctx.Executor.server_crashes);
  c "jord_server_warm_losses_total"
    "Whole-server crashes that invalidated warm function state" (fun () ->
      float_of_int ctx.Executor.warm_losses);
  c "jord_server_cold_starts_total"
    "Post-boot invocations that paid the cold re-warm path" (fun () ->
      float_of_int ctx.Executor.cold_starts);
  g "jord_server_up" "1 while the server is up, 0 during a crash window" (fun () ->
      if Engine.now ctx.Executor.engine < ctx.Executor.srv_down_until then 0.0
      else 1.0);
  c "jord_server_recoveries_total" "Requests re-queued after an executor crash"
    (fun () -> float_of_int ctx.Executor.recovered);
  c "jord_server_stalls_total" "Injected executor stalls" (fun () ->
      float_of_int ctx.Executor.stalls);
  c "jord_server_slowdowns_total" "Injected PrivLib slowdowns" (fun () ->
      float_of_int ctx.Executor.slowdowns);
  c "jord_server_queue_wait_ns_total"
    "Cumulative orchestrator + executor queue wait (ns)" (fun () ->
      ctx.Executor.queue_wait_ns);
  g "jord_server_in_flight" "Accepted roots not yet completed or shed" (fun () ->
      float_of_int ctx.Executor.in_flight);
  let backoff_h =
    histogram reg ~help:"Retry backoff intervals (ns)" ~labels
      "jord_server_retry_backoff_ns"
  in
  ctx.Executor.on_retry_backoff <-
    (fun ns -> Hist.observe backoff_h ns);
  c "jord_server_queue_full_retries_total"
    "Dispatch scans that found every executor queue full" (fun () ->
      float_of_int ctx.Executor.queue_full_retries);
  c "jord_server_forwarded_out_total" "Internal requests shipped to another server"
    (fun () -> float_of_int ctx.Executor.forwarded_out);
  c "jord_server_received_in_total" "Forwarded requests accepted from other servers"
    (fun () -> float_of_int ctx.Executor.received_in);
  g "jord_server_live_continuations" "Running or suspended continuations" (fun () ->
      float_of_int ctx.Executor.live_conts);
  gauge_fn reg ~help:"Deepest executor queue"
    ~labels:(labels @ [ ("agg", "max") ])
    "jord_executor_queue_depth" (fun () -> float_of_int (snd (queue_depths t)));
  Jord_vm.Hw.register_metrics ctx.Executor.hw ~labels reg;
  Jord_arch.Memsys.register_metrics ctx.Executor.memsys ~labels reg;
  Jord_privlib.Privlib.register_metrics t.priv ~labels reg

(* Sampled time series: queue depths, continuation population, per-role
   busy fraction (a delta gauge over the tick's span), VLB occupancy. *)
let attach_sampler t ?(labels = []) sampler =
  let ctx = t.ctx in
  let track ?(extra = []) name fn =
    Jord_telemetry.Sampler.track sampler ~labels:(labels @ extra) name fn
  in
  track "jord_executor_queue_depth" ~extra:[ ("agg", "mean") ] (fun () ->
      let sum, _ = queue_depths t in
      float_of_int sum /. float_of_int (Int.max 1 (Array.length t.all_execs)));
  track "jord_executor_queue_depth" ~extra:[ ("agg", "max") ] (fun () ->
      float_of_int (snd (queue_depths t)));
  track "jord_server_live_continuations" (fun () ->
      float_of_int ctx.Executor.live_conts);
  track "jord_server_suspended_continuations" (fun () ->
      float_of_int
        (Array.fold_left (fun acc e -> acc + e.Executor.suspended) 0 t.all_execs));
  let busy_fraction cores =
    let last_busy = ref 0.0
    and last_now = ref (float_of_int (Engine.now ctx.Executor.engine)) in
    fun () ->
      let busy =
        List.fold_left (fun acc c -> acc +. ctx.Executor.core_busy_ps.(c)) 0.0 cores
      in
      let now = float_of_int (Engine.now ctx.Executor.engine) in
      let span = now -. !last_now and delta = busy -. !last_busy in
      last_busy := busy;
      last_now := now;
      if span <= 0.0 then 0.0
      else Float.min 1.0 (delta /. span /. float_of_int (List.length cores))
  in
  let ocores = Array.to_list (Array.map (fun o -> o.Orchestrator.core) t.orchs) in
  let ecores = Array.to_list (Array.map (fun e -> e.Executor.core) t.all_execs) in
  track "jord_core_busy_fraction" ~extra:[ ("role", "orchestrator") ]
    (busy_fraction ocores);
  track "jord_core_busy_fraction" ~extra:[ ("role", "executor") ]
    (busy_fraction ecores);
  track "jord_vlb_occupancy_fraction" ~extra:[ ("vlb", "i") ] (fun () ->
      Jord_vm.Hw.vlb_occupancy ctx.Executor.hw ~kind:`Instr);
  track "jord_vlb_occupancy_fraction" ~extra:[ ("vlb", "d") ] (fun () ->
      Jord_vm.Hw.vlb_occupancy ctx.Executor.hw ~kind:`Data)

(* Worst-case VLB shootdown (Fig. 14): the victim translation (PrivLib's
   code VMA) is resident in every core's VLB, so the VTD invalidates all. *)
let worst_case_shootdown_ns t =
  let hw = t.ctx.Executor.hw in
  match Jord_privlib.Privlib.code_vma t.priv with
  | None -> 0.0
  | Some va ->
      let cores =
        Jord_arch.Topology.cores (Jord_arch.Memsys.topology t.ctx.Executor.memsys)
      in
      for core = 0 to cores - 1 do
        Jord_vm.Hw.warm hw ~core ~va ~kind:`Instr
      done;
      let ns = Jord_vm.Hw.shootdown hw ~core:0 ~va in
      for core = 0 to cores - 1 do
        Jord_vm.Hw.warm hw ~core ~va ~kind:`Instr
      done;
      ns

(* Worst-case dispatch (Fig. 14): every queue-length line is dirty in its
   executor's L1, so each JBSQ read is a remote cache-to-cache transfer. *)
let worst_case_dispatch_ns t =
  let orch = t.orchs.(0) in
  Array.iter
    (fun e ->
      ignore
        (Jord_arch.Memsys.write t.ctx.Executor.memsys ~core:e.Executor.core
           ~addr:(Bounded_queue.len_addr e.Executor.queue)))
    orch.Orchestrator.execs;
  let _, scan_ns, instr_ns = Orchestrator.jbsq_scan t.ctx orch in
  scan_ns +. instr_ns
