(** Continuation lifecycle: the per-invocation state machine an executor
    thread runs (paper §3.2, Listing 1).

    A continuation interprets its function's phase list, spawning children
    (nested invocations), suspending on [wait]/[wait(c)], and reaping
    completed children's ArgBufs when it resumes. This module owns only the
    bookkeeping — which children are outstanding, what the continuation is
    blocked on, what is waiting to be reaped; the surrounding machinery
    (runtime costs, event scheduling) lives in {!Executor}.

    The type is parametric in the home-executor type so the module stack
    stays acyclic: [Executor] instantiates ['exec t] with its own [t]. *)

type wait =
  | No_wait
  | For_child of int  (** Blocked on one child request id (sync invoke / [wait(c)]). *)
  | For_all  (** Blocked until every outstanding child completes. *)

type status =
  | Running
  | Suspended
  | Ready
  | Aborted
      (** Torn down Groundhog-style by a whole-server crash: any event still
          scheduled against this continuation (segment ends, child
          completions from zombie responses) must no-op. *)

type 'exec t = {
  cid : int;
  req : Request.t;
  fn : Model.fn;
  mutable phases : Model.phase list;  (** Remaining program. *)
  pd : int;
  state_va : int;
  home : 'exec;  (** The executor this continuation resumes on. *)
  mutable outstanding : int;
  mutable wait : wait;
  mutable status : status;
  mutable to_reap : (int * int) list;
      (** Completed child argbufs: [(va, bytes)], reaped on next resume. *)
  cookies : (int, int) Hashtbl.t;  (** User cookie -> child request id. *)
  done_children : (int, unit) Hashtbl.t;  (** Completed child request ids. *)
}

val make :
  cid:int ->
  req:Request.t ->
  fn:Model.fn ->
  phases:Model.phase list ->
  pd:int ->
  state_va:int ->
  home:'exec ->
  'exec t

val notify_line : _ t -> int
(** The continuation's completion-notification cache line. Lines live in a
    dedicated address-space region and recycle modulo 64 Ki so the
    directory stays bounded. *)

val register_child : _ t -> ?cookie:int -> child_id:int -> unit -> unit
(** Record a spawned child: bumps [outstanding] and binds [cookie] (if any)
    to the child's request id for a later [wait(c)]. *)

val pending_cookie : _ t -> cookie:int -> int option
(** Listing 1's [wait(c)]: [Some child_id] iff that labelled child is still
    outstanding. Unknown or already-completed cookies return [None]. *)

val can_skip_wait : _ t -> bool
(** A bare [wait] with nothing outstanding and nothing to reap is a no-op. *)

val child_completed : _ t -> child_id:int -> argbuf:int -> bytes:int -> bool
(** Record a child's completion: decrements [outstanding], queues the
    child's ArgBuf for reaping, and returns [true] iff this completion
    satisfies the parent's current wait (in which case the wait is
    cleared and the caller should make the parent runnable). *)

val ready_after_suspend : _ t -> bool
(** Whether the continuation is immediately runnable at suspension time —
    every awaited child already completed during the segment. *)

val take_reaps : _ t -> (int * int) list
(** Drain the reap list (most recently completed first). *)
