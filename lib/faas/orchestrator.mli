(** Orchestrator threads: request intake, the JBSQ dispatch loop, ArgBuf
    reclaim, and the cross-server retry/forward path (paper §3.3).

    Each orchestrator owns an external queue (front-end arrivals), an
    internal queue (nested invocations, which take priority for deadlock
    freedom), and a group of executors it dispatches to by scanning their
    queue-length cache lines through the coherence model. The dispatch
    loop pre-builds its closures and scan scratch at construction time so
    steady-state dispatching allocates little.

    [create] also wires each managed executor's {!Executor.uplink}, which
    is the executors' only channel back to their orchestrator. *)

module Time = Jord_sim.Time
module Engine = Jord_sim.Engine

type t = {
  oid : int;
  core : int;
  execs : Executor.t array;
  external_q : Request.t Queue.t;
  internal_q : Request.t Queue.t;
  mutable pending : Request.t option;
      (** Retry slot when every executor queue is full. *)
  mutable pending_retries : int;
  mutable busy : bool;
  rr_cursor : int ref;
  ext_line : int;
  int_line : int;
  notify_line : int;
  mutable reclaim : (int * int) list;
      (** Finished root ArgBufs awaiting release: [(va, bytes)]. *)
  mutable scan_hit_ns : float;  (** JBSQ scan scratch (valid during a scan). *)
  mutable scan_misses : float list;
  scan_count : int ref;
  mutable scan_lengths : int -> int;
  mutable scan_full : int -> bool;
  mutable dispatch_fn : Engine.t -> unit;  (** Pre-built dispatch-loop event. *)
  mutable wake_fn : Engine.t -> unit;
      (** Start the dispatch loop if idle (also the executors' uplink wake). *)
  mutable idle_fn : Engine.t -> unit;
}

val create : Executor.ctx -> oid:int -> core:int -> execs:Executor.t array -> t
(** Build the orchestrator and install its uplink on every executor in
    [execs]. *)

val dispatch_one : Executor.ctx -> t -> Engine.t -> unit
(** One turn of the dispatch loop: intake a request (retry slot, then
    internal, then external queue), JBSQ-scan the executors, and either
    enqueue, hold-and-retry, or forward to another server; reschedules
    itself while work remains. Callers must set [busy] before invoking. *)

val purge_for_reboot : Executor.ctx -> t -> reboot:Time.t -> unit
(** Whole-server crash: classify the held retry slot and the internal
    queue through {!Executor.purge_request} (entry requests re-queue at
    [reboot], local children are discarded). The external queue and the
    reclaim list survive untouched. *)

val internal_arrival : Executor.ctx -> t -> Request.t -> Engine.t -> unit
(** A nested (or forwarded-in) request joins the internal queue; starts the
    dispatch loop if idle. *)

val enqueue_external : Executor.ctx -> t -> Request.t -> Engine.t -> unit
(** An external request joins the external queue; starts the dispatch loop
    if idle. Queue-cap shedding is the caller's ({!Server.submit}) job. *)

val jbsq_scan : Executor.ctx -> t -> int option * float * float
(** Scan every managed executor's queue length and pick a target:
    [(choice, scan_ns, instr_ns)]. Misses overlap (memory-level
    parallelism): the worst one at full latency, the rest partially.
    Exposed for the Fig. 14 worst-case dispatch probe. *)

val reclaim_argbufs : Executor.ctx -> t -> int -> float
(** Release up to [n] queued ArgBufs; returns the time spent. *)

val pick_request : Executor.ctx -> t -> (Request.t * float) option
(** Intake: the held retry request first, then the internal/external queues
    in priority order; forwarded-in payloads are re-materialized into a
    local ArgBuf here. Returns the request and its intake cost in ns. *)
