(** Recovery policy knobs: deadlines, retry backoff, peer health.

    The defaults reproduce the historical behaviour exactly — no deadline,
    a fixed 200 ns retry beat ([retry_cap = 0] makes the exponential
    backoff degenerate), so fault-free runs stay bit-identical to
    [test/golden.expected]. *)

type t = {
  deadline : Jord_sim.Time.t option;
      (** Per-root deadline measured from arrival; expired external
          requests are shed at dispatch intake with a [Trace.Timeout].
          [None] disables shedding. *)
  retry_base_ns : float;  (** First retry/backoff interval. *)
  retry_cap : int;
      (** Max doublings: interval = [retry_base_ns * 2^min(n, retry_cap)].
          0 = fixed beat (the historical behaviour). *)
  retry_max : int;
      (** Send attempts per forwarded transfer before the sender gives up
          and re-executes the request locally. *)
  health_threshold : int;
      (** Consecutive transfer timeouts before a peer is routed around. *)
  probe_us : float;
      (** How long a peer stays quarantined before a probe transfer may be
          routed to it again. *)
}

val default : t

val backoff_ns : t -> int -> float
(** [backoff_ns t n] is the interval after the [n]-th consecutive failure
    (0-based): capped exponential, exact at the default cap. *)
