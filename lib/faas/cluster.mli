(** A cluster of Jord worker servers sharing one simulated timeline.

    Implements the paper's multi-server escape hatch (§3.3): when a worker
    server's orchestrator cannot place an internal request after repeated
    full scans, it ships the request over the network to a peer, which
    executes it and returns the response. Cross-server traffic has no
    zero-copy path: payloads are serialized, copied and re-materialized
    into a local ArgBuf on arrival.

    External requests are spread across servers round-robin (a front-end
    load balancer).

    With a fault plan installed ([config.fault_plan <> None]) the wire
    becomes faulty — copies may be lost, duplicated or jittered — and the
    transport switches from fire-and-forget to at-least-once delivery:
    each transfer is acked by the receiver, retried with capped
    exponential backoff on ack timeout, rerouted away from peers with
    [recovery.health_threshold] consecutive timeouts (quarantined until a
    probe interval elapses), and after [recovery.retry_max] failed
    attempts re-executed locally by the sender. Receivers deduplicate by
    transfer id, and the ack timeout strictly exceeds the worst-case
    round trip, so no request ever executes twice. Without a fault plan
    the historical fire-and-forget path runs bit-identically.

    {2 Sharded (conservative parallel) mode}

    With [~shards > 1] the servers are block-partitioned over a
    {!Jord_sim.Fleet} of engine shards that advance in lock-step epochs
    bounded by the network model's {!Netmodel.lookahead} (the one-way wire
    latency): no cross-server interaction is faster than one wire hop, so
    within a lookahead window every shard is independent. Cross-shard
    forwards and forwarded-response deliveries travel through the shard
    mailboxes and are drained at epoch barriers in deterministic
    [(timestamp, sid)] order; completions and trace events are buffered
    per server and replayed in the same canonical order after the run.
    Fixed-seed runs are byte-identical across shard counts, and
    [~shards:1] is exactly the historical single-engine path.

    Fault plans compose with sharding: chaos state is partitioned the same
    way the servers are — each source owns its fault sub-stream
    ({!Jord_fault_inject.Injector.for_sid}), transfer ids, timers and
    health rows; each target owns its dedup table — and wire copies/acks
    travel through the shard mailboxes, so any fault plan replays
    byte-identically at every shard count.

    Sharded mode requires a positive [one_way_ns] and arrivals via
    {!submit_at} (pre-scheduled, nondecreasing times) rather than live
    {!submit}. *)

type net_stats = {
  mutable xfers : int;  (** Transfers started (forwarded requests). *)
  mutable wire_copies : int;  (** Copies put on the wire (retries, dups). *)
  mutable lost : int;
  mutable duplicated : int;
  mutable dup_dropped : int;  (** Deliveries deduplicated at the receiver. *)
  mutable delivered : int;
  mutable dropped_down : int;
      (** Copies that reached a server inside a whole-server crash window:
          no ack, no dedup mark — the source times out and fails over. *)
  mutable acked : int;
  mutable retries : int;
  mutable abandoned : int;  (** Gave up after retry_max; re-executed locally. *)
  mutable failover : int;
      (** Retries that re-routed the transfer to a different peer. *)
  mutable no_healthy_peer : int;  (** Sends with every peer quarantined. *)
  mutable peers_marked_dead : int;
  mutable peers_unquarantined : int;
      (** Quarantined peers that answered a probe and rejoined the ring. *)
}

type t

val create :
  ?forward_after:int ->
  ?shards:int ->
  servers:int ->
  config:Server.config ->
  Model.app ->
  t
(** [forward_after] (default 3) full-scan retries before an internal request
    leaves its server. [shards] (default 1) partitions the servers over
    that many parallel engine shards, clamped to the server count; with 1
    every server shares one engine. Raises [Invalid_argument] if [shards]
    is not positive, or — when the effective shard count exceeds 1 — if
    the network model's one-way latency is zero (the lookahead would be
    empty). *)

val engine : t -> Jord_sim.Engine.t
(** The shared engine ([shards = 1]) or shard 0's engine — the control
    shard, used for load-generator sentinels; at the end of a horizon run
    every shard's clock agrees with it. *)

val servers : t -> Server.t array

val shards : t -> int
(** Effective shard count (1 = sequential single-engine mode). *)

val events_processed : t -> int
(** Events executed so far, summed across shards — identical across shard
    counts for the same workload. *)

val set_tracer : t -> Trace.t option -> unit
(** Install one shared tracer on every member (each stamps its own server
    id on emitted events); [None] disables emission cluster-wide. *)

val submit : t -> ?entry:string -> unit -> unit
(** Round-robin external submission at the current simulated time. Raises
    [Invalid_argument] on a sharded cluster (live submission would read
    one shard's clock mid-epoch) — use {!submit_at}. *)

val submit_at : t -> ?entry:string -> time:Jord_sim.Time.t -> unit -> unit
(** Round-robin external submission at absolute simulated [time]
    (scheduled on the chosen server's engine; works in both modes).
    Successive calls must use nondecreasing times — that makes the
    schedule-time round-robin choice identical to what live {!submit}
    calls at those instants would pick — or [Invalid_argument] is
    raised. *)

val on_root_complete : t -> (Request.root -> unit) -> unit
(** Install the completion callback on every server. On a sharded cluster
    the callback instead fires after {!run} returns, replaying all
    completions in [(completed_at, server id)] order — the sequential
    global order whenever no two servers complete roots on the same
    picosecond. *)

val run : ?until:Jord_sim.Time.t -> t -> unit
(** Drive the cluster to quiescence (or to the horizon [until]). Sharded
    mode runs the shards on a {!Jord_par.Pool} of domains, one per shard,
    then replays buffered completions and trace events in canonical
    order; per-server trace rings hold [capacity] events each, so a
    sharded run's merged trace only matches the sequential ring when no
    member overflowed. *)

val forwarded : t -> int
(** Total requests shipped between servers. *)

val net_stats : t -> net_stats option
(** Transport counters; [None] unless a fault plan is installed (the
    fault-free wire cannot lose anything worth counting). *)

val pending_transfers : t -> int
(** Transfers neither acked nor abandoned yet (0 once drained). *)

val conservation : t -> Jord_fault_inject.Invariant.tally
(** Cluster-wide tally: the member servers' tallies summed, so
    forwarded/received balance is checked across the whole ring. *)

val check_invariants : t -> string list
(** {!Jord_fault_inject.Invariant.check} on the cluster-wide tally, plus
    transport-level balance (transfers = acked + abandoned + pending;
    once drained, wire copies = lost + delivered + deduplicated +
    dropped-at-down-servers and no transfer pending). [[]] = all hold. *)

val register_metrics :
  t -> ?labels:(string * string) list -> Jord_telemetry.Registry.t -> unit
(** {!Server.register_metrics} on every member, each labeled
    [server=<index>] (plus the caller's [labels]). *)

val attach_sampler :
  t -> ?labels:(string * string) list -> Jord_telemetry.Sampler.t -> unit
(** {!Server.attach_sampler} on every member with [server=<index>] labels;
    all series share the cluster's single simulated timeline. *)
