(** A cluster of Jord worker servers sharing one simulated timeline.

    Implements the paper's multi-server escape hatch (§3.3): when a worker
    server's orchestrator cannot place an internal request after repeated
    full scans, it ships the request over the network to a peer, which
    executes it and returns the response. Cross-server traffic has no
    zero-copy path: payloads are serialized, copied and re-materialized
    into a local ArgBuf on arrival.

    External requests are spread across servers round-robin (a front-end
    load balancer). *)

type t

val create :
  ?forward_after:int ->
  servers:int ->
  config:Server.config ->
  Model.app ->
  t
(** [forward_after] (default 3) full-scan retries before an internal request
    leaves its server. All servers share one engine. *)

val engine : t -> Jord_sim.Engine.t
val servers : t -> Server.t array

val submit : t -> ?entry:string -> unit -> unit
(** Round-robin external submission. *)

val on_root_complete : t -> (Request.root -> unit) -> unit
(** Install the completion callback on every server. *)

val run : ?until:Jord_sim.Time.t -> t -> unit

val forwarded : t -> int
(** Total requests shipped between servers. *)

val register_metrics :
  t -> ?labels:(string * string) list -> Jord_telemetry.Registry.t -> unit
(** {!Server.register_metrics} on every member, each labeled
    [server=<index>] (plus the caller's [labels]). *)

val attach_sampler :
  t -> ?labels:(string * string) list -> Jord_telemetry.Sampler.t -> unit
(** {!Server.attach_sampler} on every member with [server=<index>] labels;
    all series share the cluster's single simulated timeline. *)
