type kind =
  | Arrive
  | Dispatch
  | Start
  | Segment
  | Suspend
  | Resume
  | Complete
  | Forward
  | Drop
  | Timeout
  | Retry
  | Crash
  | Recover
  | Duplicate

type event = {
  at_ps : int;
  kind : kind;
  req_id : int;
  root_id : int;
  fn : string;
  core : int;
  dur_ps : int;
  detail : string;
}

type t = {
  ring : event option array;
  mutable next : int;
  mutable total : int;
}

let create ?(capacity = 65536) () =
  if capacity <= 0 then invalid_arg "Trace.create";
  { ring = Array.make capacity None; next = 0; total = 0 }

let emit t ~at_ps ~kind ~req_id ~root_id ~fn ~core ?(dur_ps = 0) ?(detail = "") () =
  t.ring.(t.next) <- Some { at_ps; kind; req_id; root_id; fn; core; dur_ps; detail };
  t.next <- (t.next + 1) mod Array.length t.ring;
  t.total <- t.total + 1

let length t = Int.min t.total (Array.length t.ring)
let total_emitted t = t.total

let events t =
  let cap = Array.length t.ring in
  let n = length t in
  let start = if t.total <= cap then 0 else t.next in
  List.init n (fun i ->
      match t.ring.((start + i) mod cap) with
      | Some e -> e
      | None -> invalid_arg "Trace.events: ring corrupted")

let kind_name = function
  | Arrive -> "arrive"
  | Dispatch -> "dispatch"
  | Start -> "start"
  | Segment -> "segment"
  | Suspend -> "suspend"
  | Resume -> "resume"
  | Complete -> "complete"
  | Forward -> "forward"
  | Drop -> "drop"
  | Timeout -> "timeout"
  | Retry -> "retry"
  | Crash -> "crash"
  | Recover -> "recover"
  | Duplicate -> "duplicate"

let to_chrome_json t =
  let open Jord_util.Json in
  let us_of_ps ps = float_of_int ps /. 1e6 in
  let entry e =
    let common =
      [
        ("name", String (e.fn ^ "/" ^ kind_name e.kind));
        ("pid", Int 1);
        ("tid", Int (Int.max 0 e.core));
        ("ts", Float (us_of_ps e.at_ps));
        ( "args",
          Obj
            ([ ("req", Int e.req_id); ("root", Int e.root_id); ("fn", String e.fn) ]
            @ if e.detail = "" then [] else [ ("detail", String e.detail) ]) );
      ]
    in
    match e.kind with
    | Segment ->
        Obj (("ph", String "X") :: ("dur", Float (us_of_ps e.dur_ps)) :: common)
    | Arrive | Dispatch | Start | Suspend | Resume | Complete | Forward | Drop
    | Timeout | Retry | Crash | Recover | Duplicate ->
        Obj (("ph", String "i") :: ("s", String "t") :: common)
  in
  to_string (Obj [ ("traceEvents", List (List.map entry (events t))) ])

let to_text ?limit t =
  let evs = events t in
  let evs =
    match limit with
    | Some l when List.length evs > l ->
        List.filteri (fun i _ -> i >= List.length evs - l) evs
    | Some _ | None -> evs
  in
  let buf = Buffer.create 4096 in
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "%12.3fus core=%-3d %-8s req=%-6d root=%-6d %s%s%s\n"
           (float_of_int e.at_ps /. 1e6)
           e.core (kind_name e.kind) e.req_id e.root_id e.fn
           (if e.dur_ps > 0 then Printf.sprintf " (%.3fus)" (float_of_int e.dur_ps /. 1e6)
            else "")
           (if e.detail = "" then "" else Printf.sprintf " [%s]" e.detail)))
    evs;
  Buffer.contents buf

let clear t =
  Array.fill t.ring 0 (Array.length t.ring) None;
  t.next <- 0;
  t.total <- 0
