type kind =
  | Arrive
  | Dispatch
  | Start
  | Segment
  | Suspend
  | Resume
  | Complete
  | Forward
  | Drop
  | Timeout
  | Retry
  | Crash
  | Recover
  | Duplicate
  | Alert
  | ServerDown
  | ServerUp

type event = {
  at_ps : int;
  kind : kind;
  req_id : int;
  root_id : int;
  parent_id : int;
  fn : string;
  core : int;
  sid : int;
  dur_ps : int;
  stall_ps : int;
  detail : string;
}

type t = {
  ring : event option array;
  mutable next : int;
  mutable total : int;
  mutable sink : (event -> unit) option;
}

let create ?(capacity = 65536) () =
  if capacity <= 0 then invalid_arg "Trace.create";
  { ring = Array.make capacity None; next = 0; total = 0; sink = None }

let set_sink t sink = t.sink <- sink

let emit t ~at_ps ~kind ~req_id ~root_id ?(parent_id = -1) ~fn ~core ?(sid = 0)
    ?(dur_ps = 0) ?(stall_ps = 0) ?(detail = "") () =
  let e =
    { at_ps; kind; req_id; root_id; parent_id; fn; core; sid; dur_ps; stall_ps; detail }
  in
  t.ring.(t.next) <- Some e;
  t.next <- (t.next + 1) mod Array.length t.ring;
  t.total <- t.total + 1;
  match t.sink with None -> () | Some f -> f e

(* Re-emit an already-built event (the cluster's post-run merge of
   per-shard rings): same ring append and sink fan-out as [emit]. *)
let emit_event t e =
  t.ring.(t.next) <- Some e;
  t.next <- (t.next + 1) mod Array.length t.ring;
  t.total <- t.total + 1;
  match t.sink with None -> () | Some f -> f e

let length t = Int.min t.total (Array.length t.ring)
let total_emitted t = t.total
let capacity t = Array.length t.ring
let truncated t = t.total > Array.length t.ring

let iter t f =
  let cap = Array.length t.ring in
  let n = length t in
  let start = if t.total <= cap then 0 else t.next in
  for i = 0 to n - 1 do
    match t.ring.((start + i) mod cap) with
    | Some e -> f e
    | None -> invalid_arg "Trace.iter: ring corrupted"
  done

let fold t ~init f =
  let acc = ref init in
  iter t (fun e -> acc := f !acc e);
  !acc

let events t =
  List.rev (fold t ~init:[] (fun acc e -> e :: acc))

let kind_name = function
  | Arrive -> "arrive"
  | Dispatch -> "dispatch"
  | Start -> "start"
  | Segment -> "segment"
  | Suspend -> "suspend"
  | Resume -> "resume"
  | Complete -> "complete"
  | Forward -> "forward"
  | Drop -> "drop"
  | Timeout -> "timeout"
  | Retry -> "retry"
  | Crash -> "crash"
  | Recover -> "recover"
  | Duplicate -> "duplicate"
  | Alert -> "alert"
  | ServerDown -> "server_down"
  | ServerUp -> "server_up"

let kind_of_name = function
  | "arrive" -> Some Arrive
  | "dispatch" -> Some Dispatch
  | "start" -> Some Start
  | "segment" -> Some Segment
  | "suspend" -> Some Suspend
  | "resume" -> Some Resume
  | "complete" -> Some Complete
  | "forward" -> Some Forward
  | "drop" -> Some Drop
  | "timeout" -> Some Timeout
  | "retry" -> Some Retry
  | "crash" -> Some Crash
  | "recover" -> Some Recover
  | "duplicate" -> Some Duplicate
  | "alert" -> Some Alert
  | "server_down" -> Some ServerDown
  | "server_up" -> Some ServerUp
  | _ -> None

let us_of_ps ps = float_of_int ps /. 1e6

(* Process/thread metadata: Perfetto shows named tracks instead of bare
   tids. One process per server (pid = sid + 1, pid 0 is reserved), one
   thread per core that appears in the retained window. *)
let metadata_events ?(orch_cores = []) t =
  let open Jord_util.Json in
  let seen = Hashtbl.create 16 in
  let sids = Hashtbl.create 4 in
  iter t (fun e ->
      if e.core >= 0 then Hashtbl.replace seen (e.sid, e.core) ();
      Hashtbl.replace sids e.sid ());
  let meta ~pid ~name ?tid what =
    Obj
      ([ ("ph", String "M"); ("pid", Int pid); ("name", String what) ]
      @ (match tid with Some tid -> [ ("tid", Int tid) ] | None -> [])
      @ [ ("args", Obj [ ("name", String name) ]) ])
  in
  let procs =
    Hashtbl.fold
      (fun sid () acc ->
        meta ~pid:(sid + 1) ~name:(Printf.sprintf "jord server %d" sid) "process_name"
        :: acc)
      sids []
  in
  let threads =
    Hashtbl.fold
      (fun (sid, core) () acc ->
        let name =
          if List.mem core orch_cores then Printf.sprintf "orchestrator (core %d)" core
          else Printf.sprintf "core %d" core
        in
        meta ~pid:(sid + 1) ~tid:core ~name "thread_name" :: acc)
      seen []
  in
  List.sort compare procs @ List.sort compare threads

let to_chrome_json ?orch_cores t =
  let open Jord_util.Json in
  let entry e =
    let common =
      [
        ("name", String (e.fn ^ "/" ^ kind_name e.kind));
        ("pid", Int (e.sid + 1));
        ("tid", Int (Int.max 0 e.core));
        ("ts", Float (us_of_ps e.at_ps));
        ( "args",
          Obj
            ([ ("req", Int e.req_id); ("root", Int e.root_id); ("fn", String e.fn) ]
            @ (if e.parent_id < 0 then [] else [ ("parent", Int e.parent_id) ])
            @ (if e.stall_ps = 0 then []
               else [ ("vm_stall_us", Float (us_of_ps e.stall_ps)) ])
            @ if e.detail = "" then [] else [ ("detail", String e.detail) ]) );
      ]
    in
    match e.kind with
    | Segment ->
        Obj (("ph", String "X") :: ("dur", Float (us_of_ps e.dur_ps)) :: common)
    | Alert ->
        (* SLO transitions are process-global markers: they belong to no
           request and must line up against every track in Perfetto. *)
        Obj
          (("ph", String "i") :: ("s", String "g")
          :: ("name", String (Printf.sprintf "slo:%s:%s" e.fn e.detail))
          :: List.filter (fun (k, _) -> k <> "name") common)
    | ServerDown | ServerUp ->
        (* Server lifecycle transitions are likewise global instants: the
           whole process (one per server) goes dark or comes back. *)
        Obj
          (("ph", String "i") :: ("s", String "g")
          :: ("name", String (Printf.sprintf "server%d:%s" e.sid
                                (if e.kind = ServerDown then "down" else "up")))
          :: List.filter (fun (k, _) -> k <> "name") common)
    | Arrive | Dispatch | Start | Suspend | Resume | Complete | Forward | Drop
    | Timeout | Retry | Crash | Recover | Duplicate ->
        Obj (("ph", String "i") :: ("s", String "t") :: common)
  in
  let evs = metadata_events ?orch_cores t @ List.map entry (events t) in
  to_string (Obj [ ("traceEvents", List evs) ])

let to_text ?limit t =
  let evs = events t in
  let evs =
    match limit with
    | Some l when List.length evs > l ->
        List.filteri (fun i _ -> i >= List.length evs - l) evs
    | Some _ | None -> evs
  in
  let buf = Buffer.create 4096 in
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "%12.3fus core=%-3d %-8s req=%-6d root=%-6d %s%s%s\n"
           (float_of_int e.at_ps /. 1e6)
           e.core (kind_name e.kind) e.req_id e.root_id e.fn
           (if e.dur_ps > 0 then Printf.sprintf " (%.3fus)" (float_of_int e.dur_ps /. 1e6)
            else "")
           (if e.detail = "" then "" else Printf.sprintf " [%s]" e.detail)))
    evs;
  Buffer.contents buf

let clear t =
  Array.fill t.ring 0 (Array.length t.ring) None;
  t.next <- 0;
  t.total <- 0
