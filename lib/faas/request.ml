type root = {
  root_id : int;
  entry : string;
  arrival : Jord_sim.Time.t;
  mutable completed_at : Jord_sim.Time.t;
  mutable finished : bool;
  mutable exec_ns : float;
  mutable isolation_ns : float;
  mutable dispatch_ns : float;
  mutable comm_ns : float;
  mutable queue_ns : float;
  mutable invocations : int;
}

type t = {
  id : int;
  fn_name : string;
  arg_bytes : int;
  root : root;
  parent_id : int;
  depth : int;
  mutable argbuf : int;
  mutable enqueued_at : Jord_sim.Time.t;
  mutable on_complete : (Jord_sim.Engine.t -> float -> unit) option;
  mutable forwarded : bool;
  mutable home_argbuf : int;
  mutable home_sid : int;
  mutable acct : root;
  mutable home_acct : root;
}

let make_root ~id ~entry ~arrival ~arg_bytes =
  let root =
    {
      root_id = id;
      entry;
      arrival;
      completed_at = arrival;
      finished = false;
      exec_ns = 0.0;
      isolation_ns = 0.0;
      dispatch_ns = 0.0;
      comm_ns = 0.0;
      queue_ns = 0.0;
      invocations = 1;
    }
  in
  let req =
    {
      id;
      fn_name = entry;
      arg_bytes;
      root;
      parent_id = -1;
      depth = 0;
      argbuf = 0;
      enqueued_at = arrival;
      on_complete = None;
      forwarded = false;
      home_argbuf = 0;
      home_sid = -1;
      acct = root;
      home_acct = root;
    }
  in
  (root, req)

let make_child ~id ~parent ~fn_name ~arg_bytes =
  parent.acct.invocations <- parent.acct.invocations + 1;
  {
    id;
    fn_name;
    arg_bytes;
    root = parent.root;
    parent_id = parent.id;
    depth = parent.depth + 1;
    argbuf = 0;
    enqueued_at = Jord_sim.Time.zero;
    on_complete = None;
    forwarded = false;
    home_argbuf = 0;
    home_sid = -1;
    (* A child accumulates into whatever ledger its parent was using at
       spawn time: the real root locally, or the parent's detached ledger
       on a remote server (see {!detach_acct}). *)
    acct = parent.acct;
    home_acct = parent.acct;
  }

(* Cross-server accounting: when a request is forwarded, its cost
   accumulators must not be mutated from the remote server — under the
   sharded engine ([Jord_sim.Fleet]) the home and remote servers may run on
   different domains, and even sequentially the fold order of float adds
   must not depend on engine interleaving. [detach_acct] (called at the
   first forward hop) swaps in a private zeroed ledger that travels with
   the request; every accumulator write in the executor/orchestrator
   targets [acct]. [settle_acct] folds the ledger back into the enclosing
   one inside the response event, which runs on the home server — so the
   addition order is fixed by the response schedule, identically in
   sequential and sharded runs. *)

let detach_acct req =
  req.home_acct <- req.acct;
  req.acct <-
    {
      root_id = req.id;
      entry = req.fn_name;
      arrival = Jord_sim.Time.zero;
      completed_at = Jord_sim.Time.zero;
      finished = false;
      exec_ns = 0.0;
      isolation_ns = 0.0;
      dispatch_ns = 0.0;
      comm_ns = 0.0;
      queue_ns = 0.0;
      invocations = 0;
    }

let settle_acct req =
  if req.acct != req.home_acct then begin
    let a = req.acct and o = req.home_acct in
    o.exec_ns <- o.exec_ns +. a.exec_ns;
    o.isolation_ns <- o.isolation_ns +. a.isolation_ns;
    o.dispatch_ns <- o.dispatch_ns +. a.dispatch_ns;
    o.comm_ns <- o.comm_ns +. a.comm_ns;
    o.queue_ns <- o.queue_ns +. a.queue_ns;
    o.invocations <- o.invocations + a.invocations;
    req.acct <- o
  end

let latency_ns root = Jord_sim.Time.to_ns Jord_sim.Time.(root.completed_at - root.arrival)
let overhead_ns root = root.isolation_ns +. root.dispatch_ns +. root.comm_ns
