type root = {
  root_id : int;
  entry : string;
  arrival : Jord_sim.Time.t;
  mutable completed_at : Jord_sim.Time.t;
  mutable finished : bool;
  mutable exec_ns : float;
  mutable isolation_ns : float;
  mutable dispatch_ns : float;
  mutable comm_ns : float;
  mutable queue_ns : float;
  mutable invocations : int;
}

type t = {
  id : int;
  fn_name : string;
  arg_bytes : int;
  root : root;
  parent_id : int;
  depth : int;
  mutable argbuf : int;
  mutable enqueued_at : Jord_sim.Time.t;
  mutable on_complete : (Jord_sim.Engine.t -> float -> unit) option;
  mutable forwarded : bool;
  mutable home_argbuf : int;
}

let make_root ~id ~entry ~arrival ~arg_bytes =
  let root =
    {
      root_id = id;
      entry;
      arrival;
      completed_at = arrival;
      finished = false;
      exec_ns = 0.0;
      isolation_ns = 0.0;
      dispatch_ns = 0.0;
      comm_ns = 0.0;
      queue_ns = 0.0;
      invocations = 1;
    }
  in
  let req =
    {
      id;
      fn_name = entry;
      arg_bytes;
      root;
      parent_id = -1;
      depth = 0;
      argbuf = 0;
      enqueued_at = arrival;
      on_complete = None;
      forwarded = false;
      home_argbuf = 0;
    }
  in
  (root, req)

let make_child ~id ~parent ~fn_name ~arg_bytes =
  parent.root.invocations <- parent.root.invocations + 1;
  {
    id;
    fn_name;
    arg_bytes;
    root = parent.root;
    parent_id = parent.id;
    depth = parent.depth + 1;
    argbuf = 0;
    enqueued_at = Jord_sim.Time.zero;
    on_complete = None;
    forwarded = false;
    home_argbuf = 0;
  }

let latency_ns root = Jord_sim.Time.to_ns Jord_sim.Time.(root.completed_at - root.arrival)
let overhead_ns root = root.isolation_ns +. root.dispatch_ns +. root.comm_ns
