(** The function model: what a FaaS function does, as the runtime sees it.

    A function instance is a list of phases — compute segments interleaved
    with nested invocations (paper §3.1, Listing 1). Workloads instantiate
    phases per invocation (sampling execution times and fan-outs), so two
    invocations of the same function may differ, matching the service-time
    distributions of the paper's microservice benchmarks. *)

type mode = Sync | Async

type phase =
  | Compute of float  (** Pure execution for this many nanoseconds. *)
  | Invoke of { target : string; arg_bytes : int; mode : mode; cookie : int option }
      (** Create an ArgBuf of [arg_bytes], populate it, and invoke [target].
          [Sync] blocks until the child returns; [Async] continues and may
          label the invocation with a [cookie] for a later {!Wait_for}
          (Listing 1's [int c = jord::async(...)]). *)
  | Wait  (** Block until every outstanding child has completed. *)
  | Wait_for of int
      (** Block until the async invocation labelled with this cookie has
          completed (Listing 1's [jord::wait(c)]). *)
  | Scratch of int
      (** Allocate, touch and free a VMA of this many bytes from inside the
          function (Listing 1's dynamic [mmap]/[munmap], lines 19-23). *)

type fn = {
  name : string;
  make_phases : Jord_util.Prng.t -> phase list;
      (** Instantiate one invocation's behaviour. *)
  state_bytes : int;  (** Private stack+heap VMA size. *)
  code_bytes : int;  (** Code VMA size. *)
}

type app = {
  app_name : string;
  fns : fn list;
  entries : (string * float) list;
      (** External-request mix: function name, weight. *)
}

val find_fn : app -> string -> fn
(** @raise Invalid_argument on an unknown function. *)

val pick_entry : app -> Jord_util.Prng.t -> string
(** Sample an entry function according to the mix. *)

val validate : app -> (unit, string) result
(** Check that every [Invoke] target exists, entry mix is non-empty and
    refers to known functions, and there are no invocation cycles (the call
    graph must be a DAG, or nested requests could recurse forever). *)

val mean_invocations : app -> samples:int -> seed:int -> float
(** Monte-Carlo estimate of invocations (root + nested) per external
    request. *)

val mean_service_ns : app -> samples:int -> seed:int -> (string * float) list
(** Monte-Carlo estimate of the total compute nanoseconds behind one
    external request to each entry (nested invocations included, wire and
    queueing excluded). The fleet layer calibrates its per-server service
    model from this, so a fleet run prices a workload's entries the same
    way the detailed single-server simulation does. *)

val compute : float -> phase
val invoke : ?mode:mode -> ?arg_bytes:int -> ?cookie:int -> string -> phase
val wait : phase
val wait_for : int -> phase
val scratch : int -> phase
