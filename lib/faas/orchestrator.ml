module Time = Jord_sim.Time
module Engine = Jord_sim.Engine

(* Orchestrator control lines live in their own address-space region. *)
let orch_region = 1 lsl 45

(* Dispatch-loop instruction budgets. *)
let dispatch_instrs = 36
let per_scan_instrs = 4

type t = {
  oid : int;
  core : int;
  execs : Executor.t array;
  external_q : Request.t Queue.t;
  internal_q : Request.t Queue.t;
  mutable pending : Request.t option; (* retry slot when all queues are full *)
  mutable pending_retries : int;
  mutable busy : bool;
  rr_cursor : int ref;
  ext_line : int;
  int_line : int;
  notify_line : int;
  mutable reclaim : (int * int) list; (* finished root argbufs: (va, bytes) *)
  (* Dispatch-loop scratch and pre-built closures: the hot loop reuses
     these instead of allocating fresh ones on every dispatch. *)
  mutable scan_hit_ns : float;
  mutable scan_misses : float list;
  scan_count : int ref;
  mutable scan_lengths : int -> int;
  mutable scan_full : int -> bool;
  mutable dispatch_fn : Engine.t -> unit;
  mutable wake_fn : Engine.t -> unit;
  mutable idle_fn : Engine.t -> unit;
}

(* Deadline policy: shed external roots that can no longer meet their
   deadline before spending dispatch work on them. Internal (depth > 0)
   requests are never shed — a waiting parent must always be unblocked. *)
let shed_expired (ctx : Executor.ctx) t =
  match ctx.Executor.recovery.Recovery.deadline with
  | None -> ()
  | Some d ->
      let now = Engine.now ctx.Executor.engine in
      let rec go () =
        match Queue.peek_opt t.external_q with
        | Some req when Time.(now - req.Request.root.Request.arrival) > d ->
            ignore (Queue.pop t.external_q);
            ctx.Executor.timed_out <- ctx.Executor.timed_out + 1;
            ctx.Executor.in_flight <- ctx.Executor.in_flight - 1;
            Executor.trace ctx ~kind:Trace.Timeout ~req ~core:t.core
              ~detail:"deadline" ();
            go ()
        | Some _ | None -> ()
      in
      go ()

let pick_request (ctx : Executor.ctx) t =
  shed_expired ctx t;
  match t.pending with
  | Some req ->
      t.pending <- None;
      Some (req, 0.0)
  | None ->
      (* Deadlock freedom (paper §3.3): internal requests go first, so
         executors waiting on children always make progress. The ablation
         flag reverses the order to demonstrate why it matters. *)
      let internal_first =
        if ctx.Executor.internal_priority then not (Queue.is_empty t.internal_q)
        else Queue.is_empty t.external_q && not (Queue.is_empty t.internal_q)
      in
      if internal_first then begin
        let req = Queue.pop t.internal_q in
        let deq = Jord_arch.Memsys.read ctx.memsys ~core:t.core ~addr:t.int_line in
        if req.Request.forwarded && req.Request.argbuf = 0 then begin
          (* Arrived from another server: land the payload in a local
             ArgBuf (network copy, no zero-copy across machines). *)
          let va, c =
            Runtime.external_input ctx.rt ~core:t.core ~bytes:req.Request.arg_bytes
          in
          req.Request.argbuf <- va;
          Executor.add_cost req.Request.acct c;
          let copy = Netmodel.copy_ns ctx.net ~bytes:req.Request.arg_bytes in
          req.Request.acct.Request.comm_ns <-
            req.Request.acct.Request.comm_ns +. copy;
          Some (req, deq +. Runtime.total c +. copy)
        end
        else Some (req, deq)
      end
      else if not (Queue.is_empty t.external_q) then begin
        let req = Queue.pop t.external_q in
        let deq = Jord_arch.Memsys.read ctx.memsys ~core:t.core ~addr:t.ext_line in
        (* Materialize the external payload into an ArgBuf. *)
        let va, c =
          Runtime.external_input ctx.rt ~core:t.core ~bytes:req.Request.arg_bytes
        in
        req.Request.argbuf <- va;
        Executor.add_cost req.Request.acct c;
        Some (req, deq +. Runtime.total c)
      end
      else None

(* JBSQ scan: read every managed executor's queue-length line. Misses
   overlap (memory-level parallelism): the worst one at full latency, the
   rest at a quarter; hits are pipelined loads. *)
let jbsq_scan (ctx : Executor.ctx) t =
  t.scan_hit_ns <- 0.0;
  t.scan_misses <- [];
  t.scan_count := 0;
  let choice =
    Policy.pick ctx.Executor.policy ~prng:ctx.prng ~cursor:t.rr_cursor
      ~lengths:t.scan_lengths ~full:t.scan_full ~n:(Array.length t.execs)
      ~scanned:t.scan_count
  in
  let scan_ns =
    t.scan_hit_ns
    +.
    (* Independent loads overlap: the worst miss is fully exposed, the rest
       partially. Cross-socket transfers (long wire latency over deeply
       pipelined links) overlap more than intra-socket ones. *)
    match List.sort (fun a b -> compare b a) t.scan_misses with
    | [] -> 0.0
    | worst :: rest ->
        worst
        +. List.fold_left
             (fun acc lat -> acc +. (lat *. if lat > 400.0 then 0.1 else 0.25))
             0.0 rest
  in
  let instr_ns =
    Jord_vm.Hw.instr_ns ctx.hw (dispatch_instrs + (per_scan_instrs * !(t.scan_count)))
  in
  (choice, scan_ns, instr_ns)

let reclaim_argbufs (ctx : Executor.ctx) t n =
  let ns = ref 0.0 in
  let rec go n =
    if n > 0 then
      match t.reclaim with
      | [] -> ()
      | (va, bytes) :: rest ->
          t.reclaim <- rest;
          if va <> 0 then begin
            let c = Runtime.release_argbuf ctx.Executor.rt ~core:t.core ~va ~bytes in
            ns := !ns +. Runtime.total c
          end;
          go (n - 1)
  in
  go n;
  !ns

let dispatch_one (ctx : Executor.ctx) t engine =
  let now = Engine.now engine in
  if now < ctx.Executor.srv_down_until then
    (* Whole-server downtime: hold the loop — [busy] stays set so arrivals
       landing meanwhile only enqueue — and resume at the boot horizon. *)
    Engine.schedule_at ctx.Executor.engine ~time:ctx.Executor.srv_down_until
      t.dispatch_fn
  else
  match pick_request ctx t with
  | None ->
      (* Going idle: release any finished root ArgBufs first. *)
      let reclaim_ns = reclaim_argbufs ctx t max_int in
      if reclaim_ns > 0.0 then
        Engine.schedule ctx.engine ~after:(Time.of_ns reclaim_ns) t.idle_fn
      else t.busy <- false
  | Some (req, intake_ns) ->
      let acct = req.Request.acct in
      (* Queueing-time accounting: credit the wait since the last stamp and
         re-stamp now, so a held or re-hopped request leaves every hop with
         a fresh [enqueued_at] and never double counts a wait (bugfix: the
         forward path used to ship requests with a stale stamp). *)
      let wait_ns = Float.max 0.0 (Time.to_ns Time.(now - req.Request.enqueued_at)) in
      acct.Request.queue_ns <- acct.Request.queue_ns +. wait_ns;
      ctx.queue_wait_ns <- ctx.queue_wait_ns +. wait_ns;
      req.Request.enqueued_at <- now;
      let choice, scan_ns, instr_ns = jbsq_scan ctx t in
      (match choice with
      | None -> (
          acct.Request.dispatch_ns <- acct.Request.dispatch_ns +. scan_ns +. instr_ns;
          ctx.dispatch_ns <- ctx.dispatch_ns +. scan_ns +. instr_ns;
          t.pending_retries <- t.pending_retries + 1;
          ctx.queue_full_retries <- ctx.queue_full_retries + 1;
          match ctx.forward_cb with
          | Some forward
            when t.pending_retries > ctx.forward_after
                 && req.Request.depth > 0
                 && not (Variant.uses_pipes ctx.variant) ->
              (* This server cannot serve the internal request: ship it to
                 another worker server over the network (paper 3.3). *)
              t.pending_retries <- 0;
              ctx.forwarded_out <- ctx.forwarded_out + 1;
              Executor.trace ctx ~kind:Trace.Forward ~req ~core:t.core ();
              (* Only the first hop records the origin ArgBuf; on a re-hop
                 the intermediate copy is reclaimed locally. *)
              if not req.Request.forwarded then begin
                req.Request.forwarded <- true;
                req.Request.home_argbuf <- req.Request.argbuf;
                (* First hop off the home server: remember where the
                   response must land and detach the cost ledger so remote
                   accumulation never touches the shared root (folded back
                   at the response event — [Request.settle_acct]). *)
                req.Request.home_sid <- ctx.Executor.sid;
                Request.detach_acct req
              end
              else if req.Request.argbuf <> 0 then
                t.reclaim <- (req.Request.argbuf, req.Request.arg_bytes) :: t.reclaim;
              req.Request.argbuf <- 0;
              let send = Netmodel.send_ns ctx.net ~bytes:req.Request.arg_bytes in
              (* The send is paid by the forwarding server into the ledger
                 it owns: the enclosing one on the first hop (bound above,
                 pre-detach), the travelling one on a re-hop. *)
              acct.Request.dispatch_ns <- acct.Request.dispatch_ns +. send;
              forward req;
              Engine.schedule ctx.engine ~after:(Time.of_ns send) t.dispatch_fn
          | Some _ | None ->
              (* Hold the request and retry after a backoff beat: capped
                 exponential in the consecutive full scans; the default
                 cap of 0 keeps the historical fixed 200 ns beat. *)
              let back =
                Recovery.backoff_ns ctx.Executor.recovery (t.pending_retries - 1)
              in
              ctx.on_retry_backoff back;
              (* dur = the backoff beat: the span builder attributes the
                 interval up to the next dispatch attempt to backoff. *)
              Executor.trace ctx ~kind:Trace.Retry ~req ~core:t.core ~dur_ns:back ();
              t.pending <- Some req;
              Engine.schedule ctx.engine ~after:(Time.of_ns back) t.dispatch_fn)
      | Some i ->
          t.pending_retries <- 0;
          Executor.trace ctx ~kind:Trace.Dispatch ~req ~core:t.core ();
          let e = t.execs.(i) in
          let enq_ns =
            Bounded_queue.enqueue e.Executor.queue ~memsys:ctx.memsys ~core:t.core req
          in
          (* NightCore ships the request over a pipe: the dispatcher only
             pays the write syscall; the receiver-side copy-out and futex
             wakeup delay the worker instead. *)
          let pipe_send, pipe_wake =
            if Variant.uses_pipes ctx.variant then
              let pipe = (Runtime.nc ctx.rt).Jord_baseline.Nightcore.pipe in
              ( Jord_baseline.Pipe.sender_ns pipe ~bytes:64,
                Jord_baseline.Pipe.message_ns pipe ~bytes:64 ~wake:true
                -. Jord_baseline.Pipe.sender_ns pipe ~bytes:64 )
            else (0.0, 0.0)
          in
          let disp = scan_ns +. instr_ns +. enq_ns +. pipe_send +. pipe_wake in
          acct.Request.dispatch_ns <- acct.Request.dispatch_ns +. disp;
          ctx.dispatch_count <- ctx.dispatch_count + 1;
          ctx.dispatch_ns <- ctx.dispatch_ns +. disp;
          (* Reclaim up to two finished root ArgBufs, amortized into the
             dispatch loop. *)
          let reclaim_ns = reclaim_argbufs ctx t 2 in
          let busy =
            intake_ns +. scan_ns +. instr_ns +. enq_ns +. pipe_send +. reclaim_ns
          in
          Executor.charge_core ctx t.core busy;
          let next = Time.(now + Time.of_ns busy) in
          let seen = Time.(now + Time.of_ns (busy +. pipe_wake)) in
          Engine.schedule_at ctx.engine ~time:seen (fun eng ->
              req.Request.enqueued_at <- seen;
              if not e.Executor.busy then Executor.poll ctx e eng);
          Engine.schedule_at ctx.engine ~time:next t.dispatch_fn)

(* Whole-server crash: classify the held retry slot and the internal queue
   (entry requests re-queue at [reboot], local children are discarded).
   The external queue survives untouched — those roots never started, own
   no ArgBuf yet, and dispatch normally once the boot horizon passes. The
   reclaim list also survives: it is bookkeeping of buffers that must
   still be released. *)
let purge_for_reboot (ctx : Executor.ctx) t ~reboot =
  let e = t.execs.(0) in
  (match t.pending with
  | Some req ->
      t.pending <- None;
      Executor.purge_request ctx e req ~reboot
  | None -> ());
  t.pending_retries <- 0;
  while not (Queue.is_empty t.internal_q) do
    Executor.purge_request ctx e (Queue.pop t.internal_q) ~reboot
  done

let internal_arrival ctx t req engine =
  req.Request.enqueued_at <- Engine.now engine;
  (* Arrival checkpoint for every internally-queued request: child births,
     crash re-queues, and forwarded requests landing from the wire — the
     span builder closes a wire hop (or a queue interval) here. *)
  Executor.trace ctx ~kind:Trace.Arrive ~req ~core:t.core ();
  Queue.push req t.internal_q;
  if not t.busy then begin
    t.busy <- true;
    dispatch_one ctx t engine
  end

let enqueue_external ctx t req engine =
  Queue.push req t.external_q;
  if not t.busy then begin
    t.busy <- true;
    dispatch_one ctx t engine
  end

let create (ctx : Executor.ctx) ~oid ~core ~execs =
  let noop (_ : Engine.t) = () in
  let t =
    {
      oid;
      core;
      execs;
      external_q = Queue.create ();
      internal_q = Queue.create ();
      pending = None;
      pending_retries = 0;
      busy = false;
      rr_cursor = ref 0;
      ext_line = orch_region + (oid * 4096);
      int_line = orch_region + (oid * 4096) + 64;
      notify_line = orch_region + (oid * 4096) + 128;
      reclaim = [];
      scan_hit_ns = 0.0;
      scan_misses = [];
      scan_count = ref 0;
      scan_lengths = (fun _ -> 0);
      scan_full = (fun _ -> false);
      dispatch_fn = noop;
      wake_fn = noop;
      idle_fn = noop;
    }
  in
  t.scan_lengths <-
    (fun i ->
      let e = t.execs.(i) in
      let lat =
        Jord_arch.Memsys.read ctx.memsys ~core:t.core
          ~addr:(Bounded_queue.len_addr e.Executor.queue)
      in
      if lat <= 0.6 then t.scan_hit_ns <- t.scan_hit_ns +. lat
      else t.scan_misses <- lat :: t.scan_misses;
      Bounded_queue.length e.Executor.queue);
  t.scan_full <-
    (fun i ->
      let e = t.execs.(i) in
      (* A crashed executor reads as full until its restart horizon. *)
      Bounded_queue.is_full e.Executor.queue
      || Engine.now ctx.engine < e.Executor.down_until);
  t.dispatch_fn <- (fun eng -> dispatch_one ctx t eng);
  t.wake_fn <-
    (fun eng ->
      if not t.busy then begin
        t.busy <- true;
        dispatch_one ctx t eng
      end);
  t.idle_fn <-
    (fun eng ->
      if not (Queue.is_empty t.internal_q) || not (Queue.is_empty t.external_q) then
        dispatch_one ctx t eng
      else t.busy <- false);
  (* Wire the executors back to this orchestrator through the uplink —
     the only channel the executor layer has to reach us. *)
  let up =
    {
      Executor.int_line = t.int_line;
      notify_line = t.notify_line;
      submit_internal =
        (fun ~at req ->
          Engine.schedule_at ctx.engine ~time:at (fun eng ->
              internal_arrival ctx t req eng));
      push_reclaim = (fun ~va ~bytes -> t.reclaim <- (va, bytes) :: t.reclaim);
      wake = t.wake_fn;
    }
  in
  Array.iter (fun e -> e.Executor.up <- Some up) execs;
  t
