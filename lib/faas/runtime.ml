module Vm = Jord_vm
module Pl = Jord_privlib.Privlib

type cost = { isolation_ns : float; comm_ns : float }

let zero_cost = { isolation_ns = 0.0; comm_ns = 0.0 }

let ( ++ ) a b =
  { isolation_ns = a.isolation_ns +. b.isolation_ns; comm_ns = a.comm_ns +. b.comm_ns }

let iso ns = { isolation_ns = ns; comm_ns = 0.0 }
let comm ns = { isolation_ns = 0.0; comm_ns = ns }
let total c = c.isolation_ns +. c.comm_ns

type t = {
  variant : Variant.t;
  hw : Vm.Hw.t;
  priv : Pl.t;
  nc : Jord_baseline.Nightcore.t;
  code_vmas : (string, int) Hashtbl.t;
}

let create ~variant ~hw ~priv ~nc =
  { variant; hw; priv; nc; code_vmas = Hashtbl.create 16 }

let variant t = t.variant
let hw t = t.hw
let priv t = t.priv
let nc t = t.nc
let response_bytes = 256

let register_function t ~core fn =
  match t.variant with
  | Variant.Nightcore -> Hashtbl.replace t.code_vmas fn.Model.name 0
  | Variant.Jord | Variant.Jord_ni | Variant.Jord_bt ->
      let global =
        (* Without isolation, code is executable from everywhere. *)
        if Variant.isolated t.variant then None else Some Vm.Perm.rx
      in
      let va, _ =
        Pl.mmap t.priv ~core ~bytes:fn.Model.code_bytes ~perm:Vm.Perm.rx
          ~global_perm:global ()
      in
      Hashtbl.replace t.code_vmas fn.Model.name va

let code_va t name =
  match Hashtbl.find_opt t.code_vmas name with
  | Some va -> va
  | None -> invalid_arg (Printf.sprintf "Runtime.code_va: %S not registered" name)

(* Allocate a VMA usable as an ArgBuf. Under isolation it belongs to the
   caller's PD; without isolation it is globally accessible. *)
let mmap_argbuf t ~core ~bytes =
  let global = if Variant.isolated t.variant then None else Some Vm.Perm.rw in
  let va, ns = Pl.mmap t.priv ~core ~bytes ~perm:Vm.Perm.rw ~global_perm:global () in
  (va, ns)

let write_data t ~core ~va ~bytes =
  Vm.Hw.access t.hw ~core ~va ~access:Vm.Perm.Write ~kind:`Data ~bytes

let read_data t ~core ~va ~bytes =
  Vm.Hw.access t.hw ~core ~va ~access:Vm.Perm.Read ~kind:`Data ~bytes

let make_argbuf t ~core ~bytes =
  match t.variant with
  | Variant.Nightcore ->
      (* Payload staged into shm at invoke time. *)
      (0, comm (Jord_baseline.Shm.transfer_ns t.nc.Jord_baseline.Nightcore.shm ~bytes))
  | Variant.Jord | Variant.Jord_bt ->
      let va, mmap_ns = mmap_argbuf t ~core ~bytes in
      let w = write_data t ~core ~va ~bytes in
      let mv = Pl.pmove t.priv ~core ~va ~dst_pd:0 ~perm:Vm.Perm.rw () in
      (va, iso (mmap_ns +. mv) ++ comm w)
  | Variant.Jord_ni ->
      let va, mmap_ns = mmap_argbuf t ~core ~bytes in
      let w = write_data t ~core ~va ~bytes in
      (va, iso mmap_ns ++ comm w)

(* Runs executor-side (PD 0), just before the parent is resumed: grant the
   parent a view of the completed child's ArgBuf, read the response on its
   behalf and release the buffer. *)
let reap_argbuf t ~core ~pd ~va ~bytes:_ =
  match t.variant with
  | Variant.Nightcore ->
      comm (Jord_baseline.Nightcore.output_ns t.nc ~bytes:response_bytes)
  | Variant.Jord | Variant.Jord_bt ->
      let cp = Pl.pcopy t.priv ~core ~va ~dst_pd:pd ~perm:Vm.Perm.rw in
      let r = read_data t ~core ~va ~bytes:response_bytes in
      let un = Pl.munmap t.priv ~core ~va in
      iso (cp +. un) ++ comm r
  | Variant.Jord_ni ->
      let r = read_data t ~core ~va ~bytes:response_bytes in
      let un = Pl.munmap t.priv ~core ~va in
      iso un ++ comm r

let setup t ~core ~fn ~argbuf ~arg_bytes =
  match t.variant with
  | Variant.Nightcore ->
      (* Worker side: pipe read syscall, worker prep, input copy from shm. *)
      let c =
        comm (Jord_baseline.Nightcore.input_ns t.nc ~bytes:arg_bytes)
        ++ iso
             (t.nc.Jord_baseline.Nightcore.worker_prep_ns
             +. t.nc.Jord_baseline.Nightcore.pipe.Jord_baseline.Pipe.syscall_ns)
      in
      (0, 0, c)
  | Variant.Jord | Variant.Jord_bt ->
      let code = code_va t fn.Model.name in
      let pd, cget_ns = Pl.cget t.priv ~core in
      let state_va, mmap_ns =
        Pl.mmap t.priv ~core ~bytes:fn.Model.state_bytes ~perm:Vm.Perm.rw ()
      in
      let grant_state = Pl.pmove t.priv ~core ~va:state_va ~dst_pd:pd ~perm:Vm.Perm.rw () in
      let grant_code = Pl.pcopy t.priv ~core ~va:code ~dst_pd:pd ~perm:Vm.Perm.rx in
      let grant_arg = Pl.pmove t.priv ~core ~src_pd:0 ~va:argbuf ~dst_pd:pd ~perm:Vm.Perm.rw () in
      let call_ns = Pl.ccall t.priv ~core ~pd in
      (* First touches inside the PD: code fetch, stack write, input read. *)
      let code_touch =
        Vm.Hw.access t.hw ~core ~va:code ~access:Vm.Perm.Exec ~kind:`Instr ~bytes:64
      in
      let stack_touch = write_data t ~core ~va:state_va ~bytes:128 in
      let input = read_data t ~core ~va:argbuf ~bytes:arg_bytes in
      let isolation =
        cget_ns +. mmap_ns +. grant_state +. grant_code +. grant_arg +. call_ns
      in
      (pd, state_va, iso isolation ++ comm (code_touch +. stack_touch +. input))
  | Variant.Jord_ni ->
      let code = code_va t fn.Model.name in
      let state_va, mmap_ns =
        Pl.mmap t.priv ~core ~bytes:fn.Model.state_bytes ~perm:Vm.Perm.rw
          ~global_perm:(Some Vm.Perm.rw) ()
      in
      let code_touch =
        Vm.Hw.access t.hw ~core ~va:code ~access:Vm.Perm.Exec ~kind:`Instr ~bytes:64
      in
      let stack_touch = write_data t ~core ~va:state_va ~bytes:128 in
      let input = read_data t ~core ~va:argbuf ~bytes:arg_bytes in
      (0, state_va, iso mmap_ns ++ comm (code_touch +. stack_touch +. input))

let teardown t ~core ~fn ~pd ~state_va ~argbuf =
  match t.variant with
  | Variant.Nightcore ->
      comm (Jord_baseline.Nightcore.output_ns t.nc ~bytes:response_bytes)
  | Variant.Jord | Variant.Jord_bt ->
      let output = write_data t ~core ~va:argbuf ~bytes:response_bytes in
      let ret = Pl.creturn t.priv ~core in
      let reclaim_arg = Pl.pmove t.priv ~core ~src_pd:pd ~va:argbuf ~dst_pd:0 ~perm:Vm.Perm.rw () in
      let revoke_code =
        Pl.mprotect t.priv ~core ~pd ~va:(code_va t fn.Model.name) ~perm:Vm.Perm.none ()
      in
      let unmap_state = Pl.munmap t.priv ~core ~va:state_va in
      let put = Pl.cput t.priv ~core ~pd in
      iso (ret +. reclaim_arg +. revoke_code +. unmap_state +. put) ++ comm output
  | Variant.Jord_ni ->
      let output = write_data t ~core ~va:argbuf ~bytes:response_bytes in
      let unmap_state = Pl.munmap t.priv ~core ~va:state_va in
      iso unmap_state ++ comm output

(* True when [pd] is a cexit'd (suspended) protection domain. False for
   PDs currently entered on a core and for variants without PDs; callers
   use it to abort each core's entered PD before any suspended one. *)
let pd_suspended t ~pd =
  match t.variant with
  | Variant.Jord | Variant.Jord_bt ->
      pd > 0
      && Jord_privlib.Pd.status (Pl.pds t.priv) pd = Jord_privlib.Pd.Suspended
  | Variant.Nightcore | Variant.Jord_ni -> false

(* Groundhog-style rollback of a crashed invocation: like [teardown] minus
   the output write — the PD, its state VMA and the code grant are torn
   down, but the ArgBuf goes back to PD 0 intact so the request can be
   re-executed elsewhere from its original input. *)
let abort t ~core ~fn ~pd ~state_va ~argbuf =
  match t.variant with
  | Variant.Nightcore ->
      (* The worker thread dies; its replacement pays prep again at setup. *)
      iso t.nc.Jord_baseline.Nightcore.worker_prep_ns
  | Variant.Jord | Variant.Jord_bt ->
      (* A suspended invocation (cexit'd, waiting on children) must be
         re-entered before its context can be torn down — the gate's
         creturn only works from inside a running PD. *)
      let reenter =
        match Jord_privlib.Pd.status (Pl.pds t.priv) pd with
        | Jord_privlib.Pd.Suspended -> Pl.center t.priv ~core ~pd
        | _ -> 0.0
      in
      let ret = Pl.creturn t.priv ~core in
      let reclaim_arg =
        Pl.pmove t.priv ~core ~src_pd:pd ~va:argbuf ~dst_pd:0 ~perm:Vm.Perm.rw ()
      in
      let revoke_code =
        Pl.mprotect t.priv ~core ~pd ~va:(code_va t fn.Model.name) ~perm:Vm.Perm.none ()
      in
      let unmap_state = Pl.munmap t.priv ~core ~va:state_va in
      let put = Pl.cput t.priv ~core ~pd in
      iso (reenter +. ret +. reclaim_arg +. revoke_code +. unmap_state +. put)
  | Variant.Jord_ni -> iso (Pl.munmap t.priv ~core ~va:state_va)

let suspend t ~core ~pd =
  match t.variant with
  | Variant.Nightcore -> iso (Jord_baseline.Nightcore.suspend_ns t.nc)
  | Variant.Jord | Variant.Jord_bt ->
      if pd = 0 then zero_cost else iso (Pl.cexit t.priv ~core)
  | Variant.Jord_ni -> zero_cost

let resume t ~core ~pd =
  match t.variant with
  | Variant.Nightcore -> iso (Jord_baseline.Nightcore.resume_ns t.nc)
  | Variant.Jord | Variant.Jord_bt ->
      if pd = 0 then zero_cost else iso (Pl.center t.priv ~core ~pd)
  | Variant.Jord_ni -> zero_cost

let invoke_send t ~core:_ ~bytes =
  match t.variant with
  | Variant.Nightcore ->
      comm (Jord_baseline.Pipe.sender_ns t.nc.Jord_baseline.Nightcore.pipe ~bytes)
  | Variant.Jord | Variant.Jord_ni | Variant.Jord_bt -> zero_cost

let external_input t ~core ~bytes =
  match t.variant with
  | Variant.Nightcore ->
      (0, comm (Jord_baseline.Nightcore.input_ns t.nc ~bytes))
  | Variant.Jord | Variant.Jord_bt | Variant.Jord_ni ->
      let va, mmap_ns = mmap_argbuf t ~core ~bytes in
      let w = write_data t ~core ~va ~bytes in
      (va, iso mmap_ns ++ comm w)

let release_argbuf t ~core ~va ~bytes:_ =
  match t.variant with
  | Variant.Nightcore -> zero_cost
  | Variant.Jord | Variant.Jord_bt | Variant.Jord_ni ->
      iso (Pl.munmap t.priv ~core ~va)

(* Function-initiated dynamic VMA: mmap, touch, munmap (Listing 1's
   lines 19-23). Runs in the calling PD's context. *)
let scratch t ~core ~bytes =
  match t.variant with
  | Variant.Nightcore ->
      (* A plain malloc/free in the worker process: cheap, no VM work. *)
      iso 60.0
  | Variant.Jord | Variant.Jord_bt | Variant.Jord_ni ->
      let global = if Variant.isolated t.variant then None else Some Vm.Perm.rw in
      let va, mmap_ns = Pl.mmap t.priv ~core ~bytes ~perm:Vm.Perm.rw ~global_perm:global () in
      let w = write_data t ~core ~va ~bytes:(Int.min bytes 256) in
      let un = Pl.munmap t.priv ~core ~va in
      iso (mmap_ns +. un) ++ comm w

(* Re-establish a function's warm state after a whole-server crash wiped
   it: re-fault the code image in from storage. Modeled as a transient
   mapping the size of the image, touched and unmapped — the registered
   code VMA itself survives (the address-space layout is durable state),
   so the VMA population returns to its floor and the conservation
   invariant still balances. *)
let rewarm t ~core ~fn =
  match t.variant with
  | Variant.Nightcore ->
      (* A fresh worker process: pay prep once per function. *)
      iso t.nc.Jord_baseline.Nightcore.worker_prep_ns
  | Variant.Jord | Variant.Jord_bt | Variant.Jord_ni ->
      let va, mmap_ns =
        Pl.mmap t.priv ~core ~bytes:fn.Model.code_bytes ~perm:Vm.Perm.rx ()
      in
      let touch =
        Vm.Hw.access t.hw ~core ~va ~access:Vm.Perm.Read ~kind:`Data
          ~bytes:(Int.min fn.Model.code_bytes 4096)
      in
      let un = Pl.munmap t.priv ~core ~va in
      iso (mmap_ns +. un) ++ comm touch

let touch_working_set t ~core ~pd:_ ~fn ~state_va =
  match t.variant with
  | Variant.Nightcore -> zero_cost
  | Variant.Jord | Variant.Jord_bt | Variant.Jord_ni ->
      let code = code_va t fn.Model.name in
      let c =
        Vm.Hw.access t.hw ~core ~va:code ~access:Vm.Perm.Exec ~kind:`Instr ~bytes:64
      in
      let s = if state_va = 0 then 0.0 else write_data t ~core ~va:state_va ~bytes:64 in
      comm (c +. s)
