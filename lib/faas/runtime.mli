(** Per-variant invocation lifecycle costs.

    Maps each step of the Figure-4 flow onto the underlying mechanisms:
    PrivLib PD/VMA operations and hardware translation for Jord and Jord_BT,
    memory management only for Jord_NI, pipes + shm for NightCore. All
    functions return the latency charged on the given core; callers fold the
    components into the per-root accounting. *)

type cost = { isolation_ns : float; comm_ns : float }

val zero_cost : cost
val ( ++ ) : cost -> cost -> cost
val total : cost -> float

type t

val create :
  variant:Variant.t ->
  hw:Jord_vm.Hw.t ->
  priv:Jord_privlib.Privlib.t ->
  nc:Jord_baseline.Nightcore.t ->
  t

val variant : t -> Variant.t
val hw : t -> Jord_vm.Hw.t
val priv : t -> Jord_privlib.Privlib.t
val nc : t -> Jord_baseline.Nightcore.t

val register_function : t -> core:int -> Model.fn -> unit
(** Load a function: create its code VMA (executor-owned, RX). *)

val code_va : t -> string -> int

val make_argbuf : t -> core:int -> bytes:int -> int * cost
(** Allocate an ArgBuf in the calling context's PD and hand it to the
    runtime (pmove to PD 0) so it can travel with the request. Returns the
    base VA (0 for NightCore, which has no ArgBufs) and the cost, payload
    write included. *)

val reap_argbuf : t -> core:int -> pd:int -> va:int -> bytes:int -> cost
(** Parent-side consumption of a completed child's ArgBuf: take the
    permission back, read the response, deallocate. *)

val setup : t -> core:int -> fn:Model.fn -> argbuf:int -> arg_bytes:int -> int * int * cost
(** Executor-side invocation setup: PD creation, private stack/heap VMA,
    code-permission grant, ArgBuf permission transfer, [ccall], first code
    and data touches, input read. Returns [(pd, state_va, cost)] — [pd] and
    [state_va] are 0 where the variant does not use them. *)

val teardown : t -> core:int -> fn:Model.fn -> pd:int -> state_va:int -> argbuf:int -> cost
(** Executor-side completion: output write, [creturn]-equivalent switch,
    ArgBuf reclaim to PD 0, code-permission revoke, stack/heap deallocation,
    PD destruction. *)

val abort : t -> core:int -> fn:Model.fn -> pd:int -> state_va:int -> argbuf:int -> cost
(** Rollback of a crashed invocation (Groundhog-style): {!teardown} minus
    the output write — PD destroyed, state VMA freed, code grant revoked,
    but the ArgBuf returns to PD 0 {e intact} so the request can be
    re-executed from its original input. A suspended (cexit'd) PD is
    re-entered ([center]) first, so both running and suspended
    invocations can be rolled back. *)

val pd_suspended : t -> pd:int -> bool
(** True when [pd] is a cexit'd (suspended) protection domain; false for
    PDs currently entered on a core and for variants without PDs. During a
    whole-server crash, each core's entered PD must be aborted before any
    suspended one ({!abort} on a suspended PD re-enters it, clobbering the
    core's current-PD register). *)

val suspend : t -> core:int -> pd:int -> cost
(** [cexit] (or a thread block for NightCore). *)

val resume : t -> core:int -> pd:int -> cost
(** [center] (or a thread wakeup). *)

val invoke_send : t -> core:int -> bytes:int -> cost
(** Caller-side cost of shipping a nested invocation to the orchestrator
    (queue write for Jord; pipe message for NightCore), excluding the
    ArgBuf, which {!make_argbuf} covers. *)

val external_input : t -> core:int -> bytes:int -> int * cost
(** Orchestrator-side cost of materializing an external request's payload:
    ArgBuf allocation + payload write (Jord), shm transfer (NightCore).
    Returns the ArgBuf VA. *)

val release_argbuf : t -> core:int -> va:int -> bytes:int -> cost
(** Deallocate a root ArgBuf after the response has been sent. *)

val rewarm : t -> core:int -> fn:Model.fn -> cost
(** Re-establish a function's warm state after a whole-server crash wiped
    it (the cold path of the first post-boot invocation): re-fault the
    code image via a transient mapping. The registered code VMA itself
    survives, so the VMA population stays at its floor. *)

val touch_working_set : t -> core:int -> pd:int -> fn:Model.fn -> state_va:int -> cost
(** Per-compute-segment code/stack touches (I/D-VLB pressure). *)

val scratch : t -> core:int -> bytes:int -> cost
(** A function-initiated dynamic VMA: allocate, touch, free (the POSIX
    mmap/munmap of Listing 1). *)
