module Engine = Jord_sim.Engine
module Time = Jord_sim.Time
module Plan = Jord_fault_inject.Plan
module Injector = Jord_fault_inject.Injector
module Invariant = Jord_fault_inject.Invariant

type peer_health = {
  mutable consecutive_timeouts : int;
  mutable dead_until : Time.t;  (** Quarantined until; [Time.zero] = healthy. *)
}

type net_stats = {
  mutable xfers : int;
  mutable wire_copies : int;
  mutable lost : int;
  mutable duplicated : int;
  mutable dup_dropped : int;
  mutable delivered : int;
  mutable acked : int;
  mutable retries : int;
  mutable abandoned : int;
  mutable no_healthy_peer : int;
  mutable peers_marked_dead : int;
}

(* One forwarded request in flight: attempts, the ack-timeout timer, and
   the current target (re-picked on retry, so a dead peer is routed
   around). *)
type xfer = {
  xid : int;
  req : Request.t;
  src : int;
  mutable target : int;
  mutable attempt : int;
  mutable timer : Engine.handle;
  mutable closed : bool;
}

type chaos = {
  inj : Injector.t;
  recovery : Recovery.t;
  stats : net_stats;
  health : peer_health array array;  (** [health.(src).(dst)]. *)
  seen : (int, unit) Hashtbl.t array;  (** Per-target delivered transfer ids. *)
  mutable next_xid : int;
  mutable pending_xfers : int;
  mutable on_retry_backoff : float -> unit;
}

(* Sharded (conservative parallel) mode: servers are partitioned over
   [Jord_sim.Fleet] shards, each with a private engine; cross-shard
   forwards and responses travel through the shard mailboxes. Observables
   that the sequential cluster produced in one global event order —
   completion callbacks and trace events — are buffered per server and
   replayed in canonical (time, sid) order after the run, which is exactly
   the sequential order whenever no two servers act at the same picosecond
   (the golden suite pins this byte-for-byte). *)
type sharded = {
  fleet : Jord_sim.Fleet.t;
  shard_of : int array;  (** server index -> shard index. *)
  done_bufs : Request.root list ref array;  (** per-server completions. *)
  mutable member_traces : Trace.t array;  (** per-server rings when tracing. *)
  mutable user_tracer : Trace.t option;
  mutable user_root_cb : Request.root -> unit;
}

type t = {
  engine : Jord_sim.Engine.t;
      (** Single mode: the shared engine. Sharded: shard 0's engine — the
          control shard, used for load-generator sentinels and end-of-run
          timestamps (every shard's [now] agrees at the horizon). *)
  sharded : sharded option;
  servers : Server.t array;
  net : Netmodel.t;
  chaos : chaos option;
  mutable rr : int;
  mutable last_submit_at : Time.t;
}

(* --- chaos transport: ack-and-timeout retry over a faulty wire ---

   Data copies are subject to loss/duplication/jitter; acks are modelled
   as reliable and jitter-free control traffic. The ack timeout strictly
   exceeds [2 * one_way + max_jitter], so by the time a timer fires every
   surviving copy has been delivered and acked — a timeout therefore
   proves total loss, which is what makes retrying (and eventually
   re-executing locally) safe from double execution. Receivers deduplicate
   by transfer id, so a duplicated wire copy can never deliver twice. *)

let one_way_ns t = Netmodel.one_way_ns t.net

let timeout_ns t ch =
  (2.0 *. one_way_ns t) +. Injector.max_jitter_ns ch.inj
  +. ch.recovery.Recovery.retry_base_ns

(* First non-quarantined peer in ring order after [src]; when every peer is
   quarantined, fall back to the ring successor (the transfer probes it). *)
let pick_peer t ch ~src ~now =
  let n = Array.length t.servers in
  let rec go k =
    if k >= n then None
    else
      let j = (src + k) mod n in
      if now >= ch.health.(src).(j).dead_until then Some j else go (k + 1)
  in
  match go 1 with
  | Some j -> j
  | None ->
      ch.stats.no_healthy_peer <- ch.stats.no_healthy_peer + 1;
      (src + 1) mod n

let ack t ch xfer =
  if not xfer.closed then begin
    xfer.closed <- true;
    ch.pending_xfers <- ch.pending_xfers - 1;
    ignore (Engine.cancel t.engine xfer.timer);
    ch.stats.acked <- ch.stats.acked + 1;
    let h = ch.health.(xfer.src).(xfer.target) in
    h.consecutive_timeouts <- 0;
    h.dead_until <- Time.zero
  end

let deliver t ch xfer =
  let tgt = xfer.target in
  if Hashtbl.mem ch.seen.(tgt) xfer.xid then begin
    ch.stats.dup_dropped <- ch.stats.dup_dropped + 1;
    Server.note_duplicate t.servers.(tgt) xfer.req
  end
  else begin
    Hashtbl.add ch.seen.(tgt) xfer.xid ();
    ch.stats.delivered <- ch.stats.delivered + 1;
    Server.receive_forwarded t.servers.(tgt) xfer.req;
    Engine.schedule t.engine ~after:(Netmodel.one_way t.net) (fun _ -> ack t ch xfer)
  end

let rec send_attempt t ch xfer =
  xfer.attempt <- xfer.attempt + 1;
  let w = Injector.draw_wire ch.inj in
  ch.stats.wire_copies <- ch.stats.wire_copies + 1;
  if w.Injector.lost then ch.stats.lost <- ch.stats.lost + 1
  else
    Engine.schedule t.engine
      ~after:(Time.of_ns (one_way_ns t +. w.Injector.jitter_ns))
      (fun _ -> deliver t ch xfer);
  if w.Injector.duplicated then begin
    ch.stats.wire_copies <- ch.stats.wire_copies + 1;
    ch.stats.duplicated <- ch.stats.duplicated + 1;
    Engine.schedule t.engine
      ~after:(Time.of_ns (one_way_ns t +. w.Injector.dup_jitter_ns))
      (fun _ -> deliver t ch xfer)
  end;
  xfer.timer <-
    Engine.schedule_handle t.engine
      ~after:(Time.of_ns (timeout_ns t ch))
      (fun _ -> on_timeout t ch xfer)

and on_timeout t ch xfer =
  if not xfer.closed then begin
    let now = Engine.now t.engine in
    let h = ch.health.(xfer.src).(xfer.target) in
    h.consecutive_timeouts <- h.consecutive_timeouts + 1;
    if
      h.consecutive_timeouts >= ch.recovery.Recovery.health_threshold
      && now >= h.dead_until
    then begin
      (* Quarantine the peer; after probe_us one transfer may probe it. *)
      h.dead_until <- Time.(now + Time.of_us ch.recovery.Recovery.probe_us);
      ch.stats.peers_marked_dead <- ch.stats.peers_marked_dead + 1
    end;
    if xfer.attempt >= ch.recovery.Recovery.retry_max then begin
      (* Give up on the wire: every copy was provably lost, so the source
         re-executes the request locally (no double execution possible). *)
      xfer.closed <- true;
      ch.pending_xfers <- ch.pending_xfers - 1;
      ch.stats.abandoned <- ch.stats.abandoned + 1;
      Server.note_forward_abandoned t.servers.(xfer.src) xfer.req;
      Server.receive_forwarded t.servers.(xfer.src) xfer.req
    end
    else begin
      ch.stats.retries <- ch.stats.retries + 1;
      let back = Recovery.backoff_ns ch.recovery (xfer.attempt - 1) in
      ch.on_retry_backoff back;
      xfer.target <- pick_peer t ch ~src:xfer.src ~now;
      Engine.schedule t.engine ~after:(Time.of_ns back) (fun _ ->
          send_attempt t ch xfer)
    end
  end

let start_xfer t ch ~src req =
  let now = Engine.now t.engine in
  let xfer =
    {
      xid = ch.next_xid;
      req;
      src;
      target = pick_peer t ch ~src ~now;
      attempt = 0;
      timer = Engine.none_handle;
      closed = false;
    }
  in
  ch.next_xid <- ch.next_xid + 1;
  ch.stats.xfers <- ch.stats.xfers + 1;
  ch.pending_xfers <- ch.pending_xfers + 1;
  send_attempt t ch xfer

let create ?(forward_after = 3) ?(shards = 1) ~servers:n ~config app =
  if n < 1 then invalid_arg "Cluster.create";
  if shards < 1 then invalid_arg "Cluster.create: shards must be positive";
  (* More shards than servers would leave empty engines; clamp so
     [--shards 8] on a 3-server cluster means one server per shard. *)
  let eff_shards = Int.min shards n in
  if eff_shards > 1 && config.Server.fault_plan <> None then
    invalid_arg
      "Cluster.create: fault plans require --shards 1 (the chaos transport \
       shares wire state across servers)";
  let config = { config with Server.forward_after } in
  (* One-way latency between servers (top-of-rack switch) comes from the
     servers' own network model, so wire and serialization costs share a
     single source of truth. *)
  let net_one_way = Netmodel.one_way config.Server.net in
  let sharded =
    if eff_shards <= 1 then None
    else begin
      let lookahead = Netmodel.lookahead config.Server.net in
      if lookahead <= 0 then
        invalid_arg "Cluster.create: sharding requires a positive one_way_ns";
      let fleet = Jord_sim.Fleet.create ~shards:eff_shards ~lookahead in
      Some
        {
          fleet;
          (* Contiguous block partition: server i on shard i*S/n, so ring
             neighbours mostly share a shard and the id -> shard map is
             stable under any server count. *)
          shard_of = Array.init n (fun i -> i * eff_shards / n);
          done_bufs = Array.init n (fun _ -> ref []);
          member_traces = [||];
          user_tracer = None;
          user_root_cb = (fun _ -> ());
        }
    end
  in
  let engine =
    match sharded with
    | None -> Jord_sim.Engine.create ()
    | Some s -> Jord_sim.Fleet.engine s.fleet 0
  in
  let servers = Array.init n (fun i ->
      let engine =
        match sharded with
        | None -> engine
        | Some s -> Jord_sim.Fleet.engine s.fleet s.shard_of.(i)
      in
      Server.create ~engine { config with Server.seed = config.Server.seed + i } app)
  in
  Array.iteri (fun i s -> Server.set_sid s i) servers;
  let chaos =
    match config.Server.fault_plan with
    | None -> None
    | Some plan ->
        Some
          {
            inj = Injector.create ~salt:7919 plan;
            recovery = config.Server.recovery;
            stats =
              {
                xfers = 0;
                wire_copies = 0;
                lost = 0;
                duplicated = 0;
                dup_dropped = 0;
                delivered = 0;
                acked = 0;
                retries = 0;
                abandoned = 0;
                no_healthy_peer = 0;
                peers_marked_dead = 0;
              };
            health =
              Array.init n (fun _ ->
                  Array.init n (fun _ ->
                      { consecutive_timeouts = 0; dead_until = Time.zero }));
            seen = Array.init n (fun _ -> Hashtbl.create 256);
            next_xid = 0;
            pending_xfers = 0;
            on_retry_backoff = (fun _ -> ());
          }
  in
  let t =
    {
      engine;
      sharded;
      servers;
      net = config.Server.net;
      chaos;
      rr = 0;
      last_submit_at = Time.zero;
    }
  in
  (match chaos with
  | None ->
      (* Fault-free wire: forward to the next server in the ring,
         fire-and-forget, delivery after the wire latency — byte-identical
         to the historical (golden) behaviour. A cross-shard hop is the
         same wire, but the delivery event travels through the shard
         mailbox instead of being scheduled directly: the wire latency is
         exactly the fleet's lookahead, so the timestamp always satisfies
         the conservative contract. *)
      Array.iteri
        (fun i server ->
          if n > 1 then
            Server.set_forward server
              (Some
                 (fun req ->
                   let j = (i + 1) mod n in
                   let target = servers.(j) in
                   match sharded with
                   | Some s when s.shard_of.(i) <> s.shard_of.(j) ->
                       let src = Jord_sim.Fleet.shard s.fleet s.shard_of.(i) in
                       let at =
                         Time.(Engine.now (Server.engine server) + net_one_way)
                       in
                       Jord_sim.Shard.post src ~dst:s.shard_of.(j) ~at ~sid:i
                         (fun _ -> Server.receive_forwarded target req)
                   | Some _ | None ->
                       Jord_sim.Engine.schedule (Server.engine server)
                         ~after:net_one_way (fun _ ->
                           Server.receive_forwarded target req))))
        servers
  | Some ch ->
      (* Chaos wire: health-aware peer choice, ack-and-timeout retries with
         capped exponential backoff, local re-execution after retry_max. *)
      Array.iteri
        (fun i server ->
          if n > 1 then
            Server.set_forward server (Some (fun req -> start_xfer t ch ~src:i req)))
        servers);
  (match sharded with
  | None -> ()
  | Some s ->
      Array.iteri
        (fun i server ->
          (* Responses for forwarded requests go home via the mailbox when
             home and current server live on different shards; the response
             delay is at least [response_ns >= one_way_ns], so the
             lookahead contract holds by the same argument as forwards. *)
          Server.set_route_return server
            (Some
               (fun req ~at fn ->
                 let dst = s.shard_of.(req.Request.home_sid) in
                 if dst = s.shard_of.(i) then
                   Jord_sim.Engine.schedule_at (Server.engine server) ~time:at fn
                 else
                   Jord_sim.Shard.post
                     (Jord_sim.Fleet.shard s.fleet s.shard_of.(i))
                     ~dst ~at ~sid:i fn));
          (* Completions are buffered per server and replayed in canonical
             (completed_at, sid) order after the run (see [run]). *)
          Server.on_root_complete server (fun root ->
              s.done_bufs.(i) := root :: !(s.done_bufs.(i))))
        servers);
  t

let engine t = t.engine
let servers t = t.servers

let set_tracer t tr =
  let n = Array.length t.servers in
  match t.sharded with
  | Some s ->
      (* Per-shard engines cannot share one ring mid-run (parallel writers,
         interleaved order); each server gets a private ring of the user's
         capacity and [run] merges them into the user tracer afterwards in
         canonical (at_ps, sid) order. *)
      s.user_tracer <- tr;
      (match tr with
      | None ->
          s.member_traces <- [||];
          Array.iteri
            (fun i sv ->
              Server.set_tracer sv None;
              Server.set_trace_sid sv i)
            t.servers
      | Some user ->
          let cap = Trace.capacity user in
          s.member_traces <- Array.init n (fun _ -> Trace.create ~capacity:cap ());
          Array.iteri
            (fun i sv ->
              Server.set_tracer sv (Some s.member_traces.(i));
              Server.set_trace_sid sv i;
              Server.set_req_id_space sv ~base:i ~stride:n)
            t.servers)
  | None ->
      Array.iteri
        (fun i s ->
          Server.set_tracer s tr;
          Server.set_trace_sid s i;
          (* Disjoint request-id spaces: a shared tracer must never see two
             servers' requests under one id. Only done when tracing, so
             untraced runs keep the historical id sequence. *)
          if tr <> None then Server.set_req_id_space s ~base:i ~stride:n)
        t.servers

let submit t ?entry () =
  if t.sharded <> None then
    invalid_arg "Cluster.submit: sharded clusters take arrivals via submit_at";
  let server = t.servers.(t.rr mod Array.length t.servers) in
  t.rr <- t.rr + 1;
  Server.submit server ?entry ()

(* Round-robin target picked at schedule time; with nondecreasing [time]s
   this is the order the arrival events fire in, so it matches what live
   [submit] calls at those instants would have chosen. *)
let submit_at t ?entry ~time () =
  if time < t.last_submit_at then
    invalid_arg "Cluster.submit_at: submission times must be nondecreasing";
  t.last_submit_at <- time;
  let server = t.servers.(t.rr mod Array.length t.servers) in
  t.rr <- t.rr + 1;
  Jord_sim.Engine.schedule_at (Server.engine server) ~time (fun _ ->
      Server.submit server ?entry ())

let on_root_complete t f =
  match t.sharded with
  | Some s -> s.user_root_cb <- f
  | None -> Array.iter (fun s -> Server.on_root_complete s f) t.servers

(* Replay the sharded run's buffered observables in one canonical global
   order: completions by (completed_at, sid), trace events by (at_ps, sid).
   Whenever no two servers act on the same picosecond — true of the golden
   scenarios — this is exactly the order the sequential cluster produced
   them in, which is what makes shard counts observationally equivalent. *)
let finalize_sharded s =
  let completions =
    Array.to_list s.done_bufs
    |> List.mapi (fun i buf ->
           let roots = List.rev !buf in
           buf := [];
           List.map (fun r -> (i, r)) roots)
    |> List.concat
    |> List.stable_sort (fun (i, (a : Request.root)) (j, b) ->
           match compare a.Request.completed_at b.Request.completed_at with
           | 0 -> Int.compare i j
           | c -> c)
  in
  List.iter (fun (_, r) -> s.user_root_cb r) completions;
  match s.user_tracer with
  | None -> ()
  | Some user ->
      Array.to_list s.member_traces
      |> List.map Trace.events
      |> List.concat
      |> List.stable_sort (fun (a : Trace.event) b ->
             match Int.compare a.Trace.at_ps b.Trace.at_ps with
             | 0 -> Int.compare a.Trace.sid b.Trace.sid
             | c -> c)
      |> List.iter (Trace.emit_event user);
      Array.iter Trace.clear s.member_traces

let run ?until t =
  match t.sharded with
  | None -> Jord_sim.Engine.run ?until t.engine
  | Some s ->
      let jobs = Jord_sim.Fleet.shards s.fleet in
      Jord_par.Pool.with_pool ~jobs (fun pool ->
          let runner f n =
            ignore
              (Jord_par.Pool.parmap pool f (List.init n Fun.id) : unit list)
          in
          Jord_sim.Fleet.run ?until ~runner s.fleet);
      finalize_sharded s

let shards t =
  match t.sharded with None -> 1 | Some s -> Jord_sim.Fleet.shards s.fleet

let events_processed t =
  match t.sharded with
  | None -> Jord_sim.Engine.processed t.engine
  | Some s -> Jord_sim.Fleet.processed s.fleet

let forwarded t =
  Array.fold_left (fun acc s -> acc + Server.forwarded_out s) 0 t.servers

let net_stats t = Option.map (fun ch -> ch.stats) t.chaos
let pending_transfers t = match t.chaos with Some ch -> ch.pending_xfers | None -> 0

let conservation t =
  Array.fold_left
    (fun acc s -> Invariant.add acc (Server.conservation s))
    Invariant.zero t.servers

let check_invariants t =
  let tally = conservation t in
  let errs = ref (Invariant.check tally) in
  let fail fmt = Printf.ksprintf (fun m -> errs := !errs @ [ m ]) fmt in
  (match t.chaos with
  | None -> ()
  | Some ch ->
      let s = ch.stats in
      if s.xfers <> s.acked + s.abandoned + ch.pending_xfers then
        fail "transfer balance: %d transfers but %d acked + %d abandoned + %d pending"
          s.xfers s.acked s.abandoned ch.pending_xfers;
      if tally.Invariant.drained then begin
        if ch.pending_xfers <> 0 then
          fail "drained but %d transfers still pending" ch.pending_xfers;
        if s.wire_copies <> s.lost + s.delivered + s.dup_dropped then
          fail "wire balance: %d copies but %d lost + %d delivered + %d deduplicated"
            s.wire_copies s.lost s.delivered s.dup_dropped
      end);
  !errs

(* Per-server instances of every family, distinguished by a server=<i>
   label (the observability layer's instance convention). *)
let register_metrics t ?(labels = []) reg =
  Array.iteri
    (fun i s ->
      Server.register_metrics s ~labels:(labels @ [ ("server", string_of_int i) ]) reg)
    t.servers;
  match t.chaos with
  | None -> ()
  | Some ch ->
      let open Jord_telemetry.Registry in
      let s = ch.stats in
      let c name help fn =
        counter_fn reg ~help ~labels name (fun () -> float_of_int (fn ()))
      in
      c "jord_net_transfers_total" "Forwarded transfers started" (fun () -> s.xfers);
      c "jord_net_wire_copies_total" "Wire copies sent (retries + duplicates)"
        (fun () -> s.wire_copies);
      c "jord_net_lost_total" "Wire copies lost" (fun () -> s.lost);
      c "jord_net_duplicated_total" "Wire copies duplicated in flight" (fun () ->
          s.duplicated);
      c "jord_net_dup_dropped_total" "Duplicate deliveries deduplicated" (fun () ->
          s.dup_dropped);
      c "jord_net_retries_total" "Transfer retries after an ack timeout" (fun () ->
          s.retries);
      c "jord_net_abandoned_total" "Transfers given up and re-executed locally"
        (fun () -> s.abandoned);
      c "jord_net_peers_marked_dead_total"
        "Peer quarantines after consecutive timeouts" (fun () ->
          s.peers_marked_dead);
      let backoff_h =
        histogram reg ~help:"Transfer retry backoff intervals (ns)" ~labels
          "jord_net_retry_backoff_ns"
      in
      ch.on_retry_backoff <- (fun ns -> Hist.observe backoff_h ns)

let attach_sampler t ?(labels = []) sampler =
  Array.iteri
    (fun i s ->
      Server.attach_sampler s ~labels:(labels @ [ ("server", string_of_int i) ]) sampler)
    t.servers
