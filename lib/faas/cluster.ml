module Engine = Jord_sim.Engine
module Time = Jord_sim.Time
module Plan = Jord_fault_inject.Plan
module Injector = Jord_fault_inject.Injector
module Invariant = Jord_fault_inject.Invariant

type peer_health = {
  mutable consecutive_timeouts : int;
  mutable dead_until : Time.t;  (** Quarantined until; [Time.zero] = healthy. *)
}

type net_stats = {
  mutable xfers : int;
  mutable wire_copies : int;
  mutable lost : int;
  mutable duplicated : int;
  mutable dup_dropped : int;
  mutable delivered : int;
  mutable dropped_down : int;
  mutable acked : int;
  mutable retries : int;
  mutable abandoned : int;
  mutable failover : int;
  mutable no_healthy_peer : int;
  mutable peers_marked_dead : int;
  mutable peers_unquarantined : int;
}

let zero_stats () =
  {
    xfers = 0;
    wire_copies = 0;
    lost = 0;
    duplicated = 0;
    dup_dropped = 0;
    delivered = 0;
    dropped_down = 0;
    acked = 0;
    retries = 0;
    abandoned = 0;
    failover = 0;
    no_healthy_peer = 0;
    peers_marked_dead = 0;
    peers_unquarantined = 0;
  }

(* One forwarded request in flight: attempts, the ack-timeout timer, and
   the current target (re-picked on retry, so a dead peer is routed
   around). *)
type xfer = {
  xid : int;
  req : Request.t;
  src : int;
  mutable target : int;
  mutable attempt : int;
  mutable timer : Engine.handle;
  mutable closed : bool;
}

(* Chaos state is sharded the same way the servers are: every field is
   owned by exactly one server (and therefore one shard). Source-side
   state — the fault sub-stream, transfer ids, timers, health rows,
   retry/abandon counters — lives with the forwarding server; delivery-side
   state — the dedup table, delivered/dup/down-drop counters — with the
   target. Cross-server events (copies, acks) travel through the shard
   mailboxes like any other wire traffic, so any fault plan replays
   byte-identically at every shard count. *)
type chaos = {
  injs : Injector.t array;
      (** Per-source wire fault sub-streams ([Injector.for_sid]): draws are
          shard-local and independent of cross-server interleaving. *)
  recovery : Recovery.t;
  stats : net_stats array;
      (** Per-server; source-side counters accumulate in [stats.(src)],
          delivery-side ones in [stats.(target)]. Aggregated on read. *)
  health : peer_health array array;  (** [health.(src).(dst)]; src-owned. *)
  seen : (int, unit) Hashtbl.t array;
      (** Per-target delivered transfer ids; touched only on the target's
          shard. *)
  next_xid : int array;
      (** Per-source id allocator, strided by server count so transfer ids
          stay globally unique without shared state. *)
  pending : int array;  (** Per-source open transfers. *)
  backoff_bufs : (Time.t * float) list ref array;
      (** Sharded mode: per-source backoff observations (reversed), flushed
          to [on_retry_backoff] in canonical (time, src) order after the
          run; sequential mode calls the hook inline. *)
  mutable on_retry_backoff : float -> unit;
}

(* Sharded (conservative parallel) mode: servers are partitioned over
   [Jord_sim.Fleet] shards, each with a private engine; cross-shard
   forwards and responses travel through the shard mailboxes. Observables
   that the sequential cluster produced in one global event order —
   completion callbacks and trace events — are buffered per server and
   replayed in canonical (time, sid) order after the run, which is exactly
   the sequential order whenever no two servers act at the same picosecond
   (the golden suite pins this byte-for-byte). *)
type sharded = {
  fleet : Jord_sim.Fleet.t;
  shard_of : int array;  (** server index -> shard index. *)
  done_bufs : Request.root list ref array;  (** per-server completions. *)
  mutable member_traces : Trace.t array;  (** per-server rings when tracing. *)
  mutable user_tracer : Trace.t option;
  mutable user_root_cb : Request.root -> unit;
}

type t = {
  engine : Jord_sim.Engine.t;
      (** Single mode: the shared engine. Sharded: shard 0's engine — the
          control shard, used for load-generator sentinels and end-of-run
          timestamps (every shard's [now] agrees at the horizon). *)
  sharded : sharded option;
  servers : Server.t array;
  net : Netmodel.t;
  chaos : chaos option;
  mutable rr : int;
  mutable last_submit_at : Time.t;
}

(* --- chaos transport: ack-and-timeout retry over a faulty wire ---

   Data copies are subject to loss/duplication/jitter; acks are modelled
   as reliable and jitter-free control traffic. The ack timeout strictly
   exceeds [2 * one_way + max_jitter], so by the time a timer fires every
   surviving copy has been delivered and acked — a timeout therefore
   proves total loss, which is what makes retrying (and eventually
   re-executing locally) safe from double execution. Receivers deduplicate
   by transfer id, so a duplicated wire copy can never deliver twice. *)

let one_way_ns t = Netmodel.one_way_ns t.net

let timeout_ns t ch =
  (2.0 *. one_way_ns t) +. Injector.max_jitter_ns ch.injs.(0)
  +. ch.recovery.Recovery.retry_base_ns

(* Schedule [fn] at absolute time [at] as seen from server [src]: a plain
   engine event when [dst] shares [src]'s engine (sequential mode, or
   co-sharded servers), a mailbox post otherwise. Every chaos wire event is
   at least [one_way] in the future, so the lookahead contract holds. *)
let post t ~src ~dst ~at fn =
  match t.sharded with
  | Some s when s.shard_of.(src) <> s.shard_of.(dst) ->
      Jord_sim.Shard.post
        (Jord_sim.Fleet.shard s.fleet s.shard_of.(src))
        ~dst:s.shard_of.(dst) ~at ~sid:src fn
  | Some _ | None ->
      Engine.schedule_at (Server.engine t.servers.(src)) ~time:at fn

(* First non-quarantined peer in ring order after [src]; when every peer is
   quarantined, fall back to the ring successor (the transfer probes it). *)
let pick_peer t ch ~src ~now =
  let n = Array.length t.servers in
  let rec go k =
    if k >= n then None
    else
      let j = (src + k) mod n in
      if now >= ch.health.(src).(j).dead_until then Some j else go (k + 1)
  in
  match go 1 with
  | Some j -> j
  | None ->
      ch.stats.(src).no_healthy_peer <- ch.stats.(src).no_healthy_peer + 1;
      (src + 1) mod n

(* Runs on the source's shard (the ack travels back through the mailbox). *)
let ack t ch xfer =
  if not xfer.closed then begin
    xfer.closed <- true;
    let st = ch.stats.(xfer.src) in
    ch.pending.(xfer.src) <- ch.pending.(xfer.src) - 1;
    ignore (Engine.cancel (Server.engine t.servers.(xfer.src)) xfer.timer);
    st.acked <- st.acked + 1;
    let h = ch.health.(xfer.src).(xfer.target) in
    if h.dead_until > Time.zero then
      (* A quarantined peer answered its probe: back in the rotation. *)
      st.peers_unquarantined <- st.peers_unquarantined + 1;
    h.consecutive_timeouts <- 0;
    h.dead_until <- Time.zero
  end

(* Runs on the target's shard. *)
let deliver t ch xfer =
  let tgt = xfer.target in
  let st = ch.stats.(tgt) in
  if Server.is_down t.servers.(tgt) then
    (* The machine is dark (whole-server crash window): the copy reaches a
       dead NIC. No ack and no dedup mark, so the source's timer fires,
       the health row trips, and the transfer fails over to the next
       healthy peer — provably without double execution, exactly as for a
       lost copy. *)
    st.dropped_down <- st.dropped_down + 1
  else if Hashtbl.mem ch.seen.(tgt) xfer.xid then begin
    st.dup_dropped <- st.dup_dropped + 1;
    Server.note_duplicate t.servers.(tgt) xfer.req
  end
  else begin
    Hashtbl.add ch.seen.(tgt) xfer.xid ();
    st.delivered <- st.delivered + 1;
    Server.receive_forwarded t.servers.(tgt) xfer.req;
    let at = Time.(Engine.now (Server.engine t.servers.(tgt)) + Netmodel.one_way t.net) in
    post t ~src:tgt ~dst:xfer.src ~at (fun _ -> ack t ch xfer)
  end

let rec send_attempt t ch xfer =
  let src_eng = Server.engine t.servers.(xfer.src) in
  let now = Engine.now src_eng in
  let st = ch.stats.(xfer.src) in
  xfer.attempt <- xfer.attempt + 1;
  let w = Injector.draw_wire ch.injs.(xfer.src) in
  st.wire_copies <- st.wire_copies + 1;
  if w.Injector.lost then st.lost <- st.lost + 1
  else
    post t ~src:xfer.src ~dst:xfer.target
      ~at:Time.(now + Time.of_ns (one_way_ns t +. w.Injector.jitter_ns))
      (fun _ -> deliver t ch xfer);
  if w.Injector.duplicated then begin
    st.wire_copies <- st.wire_copies + 1;
    st.duplicated <- st.duplicated + 1;
    post t ~src:xfer.src ~dst:xfer.target
      ~at:Time.(now + Time.of_ns (one_way_ns t +. w.Injector.dup_jitter_ns))
      (fun _ -> deliver t ch xfer)
  end;
  xfer.timer <-
    Engine.schedule_handle src_eng
      ~after:(Time.of_ns (timeout_ns t ch))
      (fun _ -> on_timeout t ch xfer)

and on_timeout t ch xfer =
  if not xfer.closed then begin
    let now = Engine.now (Server.engine t.servers.(xfer.src)) in
    let st = ch.stats.(xfer.src) in
    let h = ch.health.(xfer.src).(xfer.target) in
    h.consecutive_timeouts <- h.consecutive_timeouts + 1;
    if
      h.consecutive_timeouts >= ch.recovery.Recovery.health_threshold
      && now >= h.dead_until
    then begin
      (* Quarantine the peer; after probe_us one transfer may probe it. *)
      h.dead_until <- Time.(now + Time.of_us ch.recovery.Recovery.probe_us);
      st.peers_marked_dead <- st.peers_marked_dead + 1
    end;
    if xfer.attempt >= ch.recovery.Recovery.retry_max then begin
      (* Give up on the wire: every copy was provably lost (or reached a
         dead machine), so the source re-executes the request locally — no
         double execution possible. *)
      xfer.closed <- true;
      ch.pending.(xfer.src) <- ch.pending.(xfer.src) - 1;
      st.abandoned <- st.abandoned + 1;
      Server.note_forward_abandoned t.servers.(xfer.src) xfer.req;
      Server.receive_forwarded t.servers.(xfer.src) xfer.req
    end
    else begin
      st.retries <- st.retries + 1;
      let back = Recovery.backoff_ns ch.recovery (xfer.attempt - 1) in
      (match t.sharded with
      | None -> ch.on_retry_backoff back
      | Some _ ->
          ch.backoff_bufs.(xfer.src) :=
            (now, back) :: !(ch.backoff_bufs.(xfer.src)));
      let next = pick_peer t ch ~src:xfer.src ~now in
      (* Re-routing an orphaned transfer away from a dead peer. *)
      if next <> xfer.target then st.failover <- st.failover + 1;
      xfer.target <- next;
      Engine.schedule
        (Server.engine t.servers.(xfer.src))
        ~after:(Time.of_ns back)
        (fun _ -> send_attempt t ch xfer)
    end
  end

let start_xfer t ch ~src req =
  let now = Engine.now (Server.engine t.servers.(src)) in
  let xfer =
    {
      xid = ch.next_xid.(src);
      req;
      src;
      target = pick_peer t ch ~src ~now;
      attempt = 0;
      timer = Engine.none_handle;
      closed = false;
    }
  in
  ch.next_xid.(src) <- ch.next_xid.(src) + Array.length t.servers;
  ch.stats.(src).xfers <- ch.stats.(src).xfers + 1;
  ch.pending.(src) <- ch.pending.(src) + 1;
  send_attempt t ch xfer

let create ?(forward_after = 3) ?(shards = 1) ~servers:n ~config app =
  if n < 1 then invalid_arg "Cluster.create";
  if shards < 1 then invalid_arg "Cluster.create: shards must be positive";
  (* More shards than servers would leave empty engines; clamp so
     [--shards 8] on a 3-server cluster means one server per shard. *)
  let eff_shards = Int.min shards n in
  let config = { config with Server.forward_after } in
  (* One-way latency between servers (top-of-rack switch) comes from the
     servers' own network model, so wire and serialization costs share a
     single source of truth. *)
  let net_one_way = Netmodel.one_way config.Server.net in
  let sharded =
    if eff_shards <= 1 then None
    else begin
      let lookahead = Netmodel.lookahead config.Server.net in
      if lookahead <= 0 then
        invalid_arg "Cluster.create: sharding requires a positive one_way_ns";
      let fleet = Jord_sim.Fleet.create ~shards:eff_shards ~lookahead in
      Some
        {
          fleet;
          (* Contiguous block partition: server i on shard i*S/n, so ring
             neighbours mostly share a shard and the id -> shard map is
             stable under any server count. *)
          shard_of = Array.init n (fun i -> i * eff_shards / n);
          done_bufs = Array.init n (fun _ -> ref []);
          member_traces = [||];
          user_tracer = None;
          user_root_cb = (fun _ -> ());
        }
    end
  in
  let engine =
    match sharded with
    | None -> Jord_sim.Engine.create ()
    | Some s -> Jord_sim.Fleet.engine s.fleet 0
  in
  let servers = Array.init n (fun i ->
      let engine =
        match sharded with
        | None -> engine
        | Some s -> Jord_sim.Fleet.engine s.fleet s.shard_of.(i)
      in
      Server.create ~engine { config with Server.seed = config.Server.seed + i } app)
  in
  Array.iteri (fun i s -> Server.set_sid s i) servers;
  let chaos =
    match config.Server.fault_plan with
    | None -> None
    | Some plan ->
        Some
          {
            (* Per-source wire sub-streams, decorrelated from the servers'
               own executor fault streams by the historical wire salt. *)
            injs = Array.init n (fun i -> Injector.for_sid plan ~sid:(7919 + i));
            recovery = config.Server.recovery;
            stats = Array.init n (fun _ -> zero_stats ());
            health =
              Array.init n (fun _ ->
                  Array.init n (fun _ ->
                      { consecutive_timeouts = 0; dead_until = Time.zero }));
            seen = Array.init n (fun _ -> Hashtbl.create 256);
            next_xid = Array.init n Fun.id;
            pending = Array.make n 0;
            backoff_bufs = Array.init n (fun _ -> ref []);
            on_retry_backoff = (fun _ -> ());
          }
  in
  let t =
    {
      engine;
      sharded;
      servers;
      net = config.Server.net;
      chaos;
      rr = 0;
      last_submit_at = Time.zero;
    }
  in
  (match chaos with
  | None ->
      (* Fault-free wire: forward to the next server in the ring,
         fire-and-forget, delivery after the wire latency — byte-identical
         to the historical (golden) behaviour. A cross-shard hop is the
         same wire, but the delivery event travels through the shard
         mailbox instead of being scheduled directly: the wire latency is
         exactly the fleet's lookahead, so the timestamp always satisfies
         the conservative contract. *)
      Array.iteri
        (fun i server ->
          if n > 1 then
            Server.set_forward server
              (Some
                 (fun req ->
                   let j = (i + 1) mod n in
                   let target = servers.(j) in
                   match sharded with
                   | Some s when s.shard_of.(i) <> s.shard_of.(j) ->
                       let src = Jord_sim.Fleet.shard s.fleet s.shard_of.(i) in
                       let at =
                         Time.(Engine.now (Server.engine server) + net_one_way)
                       in
                       Jord_sim.Shard.post src ~dst:s.shard_of.(j) ~at ~sid:i
                         (fun _ -> Server.receive_forwarded target req)
                   | Some _ | None ->
                       Jord_sim.Engine.schedule (Server.engine server)
                         ~after:net_one_way (fun _ ->
                           Server.receive_forwarded target req))))
        servers
  | Some ch ->
      (* Chaos wire: health-aware peer choice, ack-and-timeout retries with
         capped exponential backoff, local re-execution after retry_max. *)
      Array.iteri
        (fun i server ->
          if n > 1 then
            Server.set_forward server (Some (fun req -> start_xfer t ch ~src:i req)))
        servers);
  (match sharded with
  | None -> ()
  | Some s ->
      Array.iteri
        (fun i server ->
          (* Responses for forwarded requests go home via the mailbox when
             home and current server live on different shards; the response
             delay is at least [response_ns >= one_way_ns], so the
             lookahead contract holds by the same argument as forwards. *)
          Server.set_route_return server
            (Some
               (fun req ~at fn ->
                 let dst = s.shard_of.(req.Request.home_sid) in
                 if dst = s.shard_of.(i) then
                   Jord_sim.Engine.schedule_at (Server.engine server) ~time:at fn
                 else
                   Jord_sim.Shard.post
                     (Jord_sim.Fleet.shard s.fleet s.shard_of.(i))
                     ~dst ~at ~sid:i fn));
          (* Completions are buffered per server and replayed in canonical
             (completed_at, sid) order after the run (see [run]). *)
          Server.on_root_complete server (fun root ->
              s.done_bufs.(i) := root :: !(s.done_bufs.(i))))
        servers);
  t

let engine t = t.engine
let servers t = t.servers

let set_tracer t tr =
  let n = Array.length t.servers in
  match t.sharded with
  | Some s ->
      (* Per-shard engines cannot share one ring mid-run (parallel writers,
         interleaved order); each server gets a private ring of the user's
         capacity and [run] merges them into the user tracer afterwards in
         canonical (at_ps, sid) order. *)
      s.user_tracer <- tr;
      (match tr with
      | None ->
          s.member_traces <- [||];
          Array.iteri
            (fun i sv ->
              Server.set_tracer sv None;
              Server.set_trace_sid sv i)
            t.servers
      | Some user ->
          let cap = Trace.capacity user in
          s.member_traces <- Array.init n (fun _ -> Trace.create ~capacity:cap ());
          Array.iteri
            (fun i sv ->
              Server.set_tracer sv (Some s.member_traces.(i));
              Server.set_trace_sid sv i;
              Server.set_req_id_space sv ~base:i ~stride:n)
            t.servers)
  | None ->
      Array.iteri
        (fun i s ->
          Server.set_tracer s tr;
          Server.set_trace_sid s i;
          (* Disjoint request-id spaces: a shared tracer must never see two
             servers' requests under one id. Only done when tracing, so
             untraced runs keep the historical id sequence. *)
          if tr <> None then Server.set_req_id_space s ~base:i ~stride:n)
        t.servers

let submit t ?entry () =
  if t.sharded <> None then
    invalid_arg "Cluster.submit: sharded clusters take arrivals via submit_at";
  let server = t.servers.(t.rr mod Array.length t.servers) in
  t.rr <- t.rr + 1;
  Server.submit server ?entry ()

(* Round-robin target picked at schedule time; with nondecreasing [time]s
   this is the order the arrival events fire in, so it matches what live
   [submit] calls at those instants would have chosen. *)
let submit_at t ?entry ~time () =
  if time < t.last_submit_at then
    invalid_arg "Cluster.submit_at: submission times must be nondecreasing";
  t.last_submit_at <- time;
  let server = t.servers.(t.rr mod Array.length t.servers) in
  t.rr <- t.rr + 1;
  Jord_sim.Engine.schedule_at (Server.engine server) ~time (fun _ ->
      Server.submit server ?entry ())

let on_root_complete t f =
  match t.sharded with
  | Some s -> s.user_root_cb <- f
  | None -> Array.iter (fun s -> Server.on_root_complete s f) t.servers

(* Replay the sharded run's buffered observables in one canonical global
   order: completions by (completed_at, sid), trace events by (at_ps, sid).
   Whenever no two servers act on the same picosecond — true of the golden
   scenarios — this is exactly the order the sequential cluster produced
   them in, which is what makes shard counts observationally equivalent. *)
let finalize_sharded s =
  let completions =
    Array.to_list s.done_bufs
    |> List.mapi (fun i buf ->
           let roots = List.rev !buf in
           buf := [];
           List.map (fun r -> (i, r)) roots)
    |> List.concat
    |> List.stable_sort (fun (i, (a : Request.root)) (j, b) ->
           match compare a.Request.completed_at b.Request.completed_at with
           | 0 -> Int.compare i j
           | c -> c)
  in
  List.iter (fun (_, r) -> s.user_root_cb r) completions;
  match s.user_tracer with
  | None -> ()
  | Some user ->
      Array.to_list s.member_traces
      |> List.map Trace.events
      |> List.concat
      |> List.stable_sort (fun (a : Trace.event) b ->
             match Int.compare a.Trace.at_ps b.Trace.at_ps with
             | 0 -> Int.compare a.Trace.sid b.Trace.sid
             | c -> c)
      |> List.iter (Trace.emit_event user);
      Array.iter Trace.clear s.member_traces

let run ?until t =
  match t.sharded with
  | None -> Jord_sim.Engine.run ?until t.engine
  | Some s ->
      let jobs = Jord_sim.Fleet.shards s.fleet in
      Jord_par.Pool.with_pool ~jobs (fun pool ->
          let runner f n =
            ignore
              (Jord_par.Pool.parmap pool f (List.init n Fun.id) : unit list)
          in
          Jord_sim.Fleet.run ?until ~runner s.fleet);
      finalize_sharded s;
      (* Replay the buffered backoff observations into the histogram hook
         in canonical (time, src) order — the same merge rule as traces and
         completions, so the observed sequence matches shards 1. *)
      (match t.chaos with
      | None -> ()
      | Some ch ->
          Array.to_list ch.backoff_bufs
          |> List.mapi (fun i buf ->
                 let obs = List.rev !buf in
                 buf := [];
                 List.map (fun (at, ns) -> (at, i, ns)) obs)
          |> List.concat
          |> List.stable_sort (fun (a, i, _) (b, j, _) ->
                 match compare (a : Time.t) b with
                 | 0 -> Int.compare i j
                 | c -> c)
          |> List.iter (fun (_, _, ns) -> ch.on_retry_backoff ns))

let shards t =
  match t.sharded with None -> 1 | Some s -> Jord_sim.Fleet.shards s.fleet

let events_processed t =
  match t.sharded with
  | None -> Jord_sim.Engine.processed t.engine
  | Some s -> Jord_sim.Fleet.processed s.fleet

let forwarded t =
  Array.fold_left (fun acc s -> acc + Server.forwarded_out s) 0 t.servers

(* Cluster-wide aggregate of the per-server chaos counters. *)
let agg_stats ch =
  let a = zero_stats () in
  Array.iter
    (fun s ->
      a.xfers <- a.xfers + s.xfers;
      a.wire_copies <- a.wire_copies + s.wire_copies;
      a.lost <- a.lost + s.lost;
      a.duplicated <- a.duplicated + s.duplicated;
      a.dup_dropped <- a.dup_dropped + s.dup_dropped;
      a.delivered <- a.delivered + s.delivered;
      a.dropped_down <- a.dropped_down + s.dropped_down;
      a.acked <- a.acked + s.acked;
      a.retries <- a.retries + s.retries;
      a.abandoned <- a.abandoned + s.abandoned;
      a.failover <- a.failover + s.failover;
      a.no_healthy_peer <- a.no_healthy_peer + s.no_healthy_peer;
      a.peers_marked_dead <- a.peers_marked_dead + s.peers_marked_dead;
      a.peers_unquarantined <- a.peers_unquarantined + s.peers_unquarantined)
    ch.stats;
  a

let net_stats t = Option.map agg_stats t.chaos

let pending_transfers t =
  match t.chaos with
  | Some ch -> Array.fold_left ( + ) 0 ch.pending
  | None -> 0

let conservation t =
  Array.fold_left
    (fun acc s -> Invariant.add acc (Server.conservation s))
    Invariant.zero t.servers

let check_invariants t =
  let tally = conservation t in
  let errs = ref (Invariant.check tally) in
  let fail fmt = Printf.ksprintf (fun m -> errs := !errs @ [ m ]) fmt in
  (match t.chaos with
  | None -> ()
  | Some ch ->
      let s = agg_stats ch in
      let pend = pending_transfers t in
      if s.xfers <> s.acked + s.abandoned + pend then
        fail "transfer balance: %d transfers but %d acked + %d abandoned + %d pending"
          s.xfers s.acked s.abandoned pend;
      if tally.Invariant.drained then begin
        if pend <> 0 then fail "drained but %d transfers still pending" pend;
        if s.wire_copies <> s.lost + s.delivered + s.dup_dropped + s.dropped_down
        then
          fail
            "wire balance: %d copies but %d lost + %d delivered + %d deduplicated \
             + %d dropped at down servers"
            s.wire_copies s.lost s.delivered s.dup_dropped s.dropped_down
      end);
  !errs

(* Per-server instances of every family, distinguished by a server=<i>
   label (the observability layer's instance convention). *)
let register_metrics t ?(labels = []) reg =
  Array.iteri
    (fun i s ->
      Server.register_metrics s ~labels:(labels @ [ ("server", string_of_int i) ]) reg)
    t.servers;
  match t.chaos with
  | None -> ()
  | Some ch ->
      let open Jord_telemetry.Registry in
      let c name help fn =
        counter_fn reg ~help ~labels name (fun () ->
            float_of_int (fn (agg_stats ch)))
      in
      c "jord_net_transfers_total" "Forwarded transfers started" (fun s -> s.xfers);
      c "jord_net_wire_copies_total" "Wire copies sent (retries + duplicates)"
        (fun s -> s.wire_copies);
      c "jord_net_lost_total" "Wire copies lost" (fun s -> s.lost);
      c "jord_net_duplicated_total" "Wire copies duplicated in flight" (fun s ->
          s.duplicated);
      c "jord_net_dup_dropped_total" "Duplicate deliveries deduplicated" (fun s ->
          s.dup_dropped);
      c "jord_net_dropped_down_total"
        "Wire copies that reached a crashed (down) server" (fun s ->
          s.dropped_down);
      c "jord_net_retries_total" "Transfer retries after an ack timeout" (fun s ->
          s.retries);
      c "jord_net_abandoned_total" "Transfers given up and re-executed locally"
        (fun s -> s.abandoned);
      c "jord_failover_total"
        "Transfers re-routed to a different peer after a timeout" (fun s ->
          s.failover);
      c "jord_net_peers_marked_dead_total"
        "Peer quarantines after consecutive timeouts" (fun s ->
          s.peers_marked_dead);
      c "jord_net_peers_unquarantined_total"
        "Quarantined peers that answered a probe and rejoined the ring"
        (fun s -> s.peers_unquarantined);
      let backoff_h =
        histogram reg ~help:"Transfer retry backoff intervals (ns)" ~labels
          "jord_net_retry_backoff_ns"
      in
      ch.on_retry_backoff <- (fun ns -> Hist.observe backoff_h ns)

let attach_sampler t ?(labels = []) sampler =
  Array.iteri
    (fun i s ->
      Server.attach_sampler s ~labels:(labels @ [ ("server", string_of_int i) ]) sampler)
    t.servers
