type t = {
  engine : Jord_sim.Engine.t;
  servers : Server.t array;
  mutable rr : int;
}

let create ?(forward_after = 3) ~servers:n ~config app =
  if n < 1 then invalid_arg "Cluster.create";
  let engine = Jord_sim.Engine.create () in
  let config = { config with Server.forward_after } in
  (* One-way latency between servers (top-of-rack switch) comes from the
     servers' own network model, so wire and serialization costs share a
     single source of truth. *)
  let net_one_way = Netmodel.one_way config.Server.net in
  let servers = Array.init n (fun i ->
      Server.create ~engine { config with Server.seed = config.Server.seed + i } app)
  in
  (* Forward to the next server in the ring; delivery after the wire
     latency. *)
  Array.iteri
    (fun i server ->
      if n > 1 then
        Server.set_forward server
          (Some
             (fun req ->
               let target = servers.((i + 1) mod n) in
               Jord_sim.Engine.schedule engine ~after:net_one_way (fun _ ->
                   Server.receive_forwarded target req))))
    servers;
  { engine; servers; rr = 0 }

let engine t = t.engine
let servers t = t.servers

let submit t ?entry () =
  let server = t.servers.(t.rr mod Array.length t.servers) in
  t.rr <- t.rr + 1;
  Server.submit server ?entry ()

let on_root_complete t f = Array.iter (fun s -> Server.on_root_complete s f) t.servers

let run ?until t = Jord_sim.Engine.run ?until t.engine

let forwarded t =
  Array.fold_left (fun acc s -> acc + Server.forwarded_out s) 0 t.servers

(* Per-server instances of every family, distinguished by a server=<i>
   label (the observability layer's instance convention). *)
let register_metrics t ?(labels = []) reg =
  Array.iteri
    (fun i s ->
      Server.register_metrics s ~labels:(labels @ [ ("server", string_of_int i) ]) reg)
    t.servers

let attach_sampler t ?(labels = []) sampler =
  Array.iteri
    (fun i s ->
      Server.attach_sampler s ~labels:(labels @ [ ("server", string_of_int i) ]) sampler)
    t.servers
