module Time = Jord_sim.Time
module Engine = Jord_sim.Engine

(* The machine context every layer shares: the simulated hardware, the
   runtime, the app, and the server-wide counters. Built once by [Server]
   and threaded (never copied) through executors and orchestrators. *)
type ctx = {
  variant : Variant.t;
  internal_priority : bool;
  forward_after : int;
  policy : Policy.t;
  net : Netmodel.t;
  engine : Engine.t;
  memsys : Jord_arch.Memsys.t;
  hw : Jord_vm.Hw.t;
  rt : Runtime.t;
  app : Model.app;
  prng : Jord_util.Prng.t;
  core_busy_ps : float array;
  mutable tracer : Trace.t option;
  mutable trace_sid : int;
  mutable sid : int;
      (** Fleet-wide server id; stamps [Request.home_sid] at the first
          forward hop so the response can be routed back across shards. *)
  mutable next_req_id : int;
  mutable req_id_stride : int;
  mutable next_cid : int;
  mutable root_cb : Request.root -> unit;
  mutable completed : int;
  mutable live_conts : int;
  mutable dispatch_count : int;
  mutable dispatch_ns : float;
  mutable queue_full_retries : int;
  mutable forward_cb : (Request.t -> unit) option;
  mutable route_return : (Request.t -> at:Time.t -> (Engine.t -> unit) -> unit) option;
      (** Delivery of a forwarded request's response event to its home
          server. [None] (the sequential cluster): schedule on the shared
          engine. Under [Jord_sim.Fleet] the cluster installs a router that
          posts cross-shard responses through the shard mailbox. *)
  mutable forwarded_out : int;
  mutable received_in : int;
  recovery : Recovery.t;
  fault : Jord_fault_inject.Injector.t option;
  mutable timed_out : int;
  mutable in_flight : int;
  mutable crashes : int;
  mutable recovered : int;
  mutable stalls : int;
  mutable slowdowns : int;
  mutable forward_abandoned : int;
  mutable queue_wait_ns : float;
  mutable on_retry_backoff : float -> unit;
  mutable srv_down_until : Time.t;
      (** Whole-server crash horizon: while [now < srv_down_until] the
          orchestrators hold all dispatch ([Time.zero] when up). *)
  mutable server_crashes : int;
  mutable warm_losses : int;
  mutable cold_starts : int;
  cold_fns : (string, unit) Hashtbl.t;
      (** Functions whose warm state a server crash invalidated; the next
          invocation of each pays the cold re-warm path. *)
  conts : (int, t Continuation.t) Hashtbl.t;
      (** Every live continuation by cid — the registry a whole-server
          crash walks (in sorted cid order) to abort them all. *)
  mutable on_server_purge : reboot:Time.t -> unit;
      (** Installed by [Server]: drain every orchestrator and executor
          queue after a whole-server crash (re-queue entry requests at
          [reboot], discard local children). *)
}

(* Everything an executor needs from its orchestrator, as closures — this
   is what breaks the executor/orchestrator recursion: [Orchestrator]
   builds one uplink per orchestrator and installs it on its executors. *)
and uplink = {
  int_line : int;  (** The orchestrator's internal-queue cache line. *)
  notify_line : int;  (** Completion-notification line for external requests. *)
  submit_internal : at:Time.t -> Request.t -> unit;
      (** Schedule a nested request's arrival on the orchestrator. *)
  push_reclaim : va:int -> bytes:int -> unit;
      (** Queue a finished ArgBuf for the orchestrator's amortized reclaim. *)
  wake : Engine.t -> unit;
      (** Start the orchestrator's dispatch loop if it is idle. *)
}

and t = {
  eid : int;
  core : int;
  queue : Request.t Bounded_queue.t;
  ready : t Continuation.t Queue.t;
  mutable busy : bool;
  mutable suspended : int;
  mutable up : uplink option;
  mutable release_fn : Engine.t -> unit;
      (** Pre-built "teardown done, poll again" closure (hot path). *)
  mutable down_until : Time.t;
      (** Crashed-executor restart horizon; orchestrators treat the
          executor as full until it passes ([Time.zero] when healthy). *)
  mutable epoch : int;
      (** Bumped by the whole-server purge. Scheduled lifecycle events
          (executor-restart, teardown-release) capture it and no-op when
          it moved: a stale "executor free" from before the crash must
          not clear [busy] while a post-reboot invocation is running. *)
}

(* Executor queues live in their own address-space region. *)
let exec_queue_region = 1 lsl 46

let uplink e =
  match e.up with
  | Some u -> u
  | None -> invalid_arg "Server: executor not wired to an orchestrator"

let fresh_req_id ctx =
  let id = ctx.next_req_id in
  ctx.next_req_id <- id + ctx.req_id_stride;
  id

let charge_core ctx core ns =
  ctx.core_busy_ps.(core) <- ctx.core_busy_ps.(core) +. (ns *. 1000.0)

(* Durations convert with [Time.of_ns] — the same rounding the engine
   applies to its schedule offsets — or arrive pre-rounded via [dur_ps], so
   an event's [at + dur] lands exactly on the engine timestamp of the next
   lifecycle event. The offline span builder relies on this to make
   per-phase attribution telescope exactly to end-to-end latency. *)
let trace ctx ~kind ~req ~core ?dur_ns ?dur_ps ?stall_ns ?detail () =
  match ctx.tracer with
  | None -> ()
  | Some tr ->
      let dur_ps =
        match (dur_ps, dur_ns) with
        | Some ps, _ -> ps
        | None, Some ns -> Time.of_ns ns
        | None, None -> 0
      in
      let stall_ps =
        match stall_ns with
        | Some ns -> Int.min dur_ps (Int.max 0 (Time.of_ns ns))
        | None -> 0
      in
      Trace.emit tr
        ~at_ps:(Engine.now ctx.engine)
        ~kind ~req_id:req.Request.id
        ~root_id:req.Request.root.Request.root_id
        ~parent_id:req.Request.parent_id ~fn:req.Request.fn_name ~core
        ~sid:ctx.trace_sid ~dur_ps ~stall_ps ?detail ()

(* Per-request VM-stall attribution: reset the hardware's stall accumulator
   at the start of each synchronous compute block and read the delta when
   the block's trace event is emitted. Only isolated variants attribute VM
   time to requests — under page-table baselines (Jord_NI, NightCore) walk
   and shootdown costs are architectural background, folded into run. *)
let stall_begin ctx = if ctx.tracer <> None then Jord_vm.Hw.stall_mark ctx.hw

let stall_take ctx =
  if ctx.tracer <> None && Variant.isolated ctx.variant then
    Jord_vm.Hw.stall_since_mark ctx.hw
  else 0.0

(* All cost accumulation goes through [Request.acct] — the real root for
   local requests, a detached ledger for forwarded ones (folded back at the
   response event; see [Request.detach_acct]). Writing the shared root from
   a remote server would race under the sharded engine and make float
   summation order depend on interleaving. *)
let add_cost (acct : Request.root) (c : Runtime.cost) =
  acct.Request.isolation_ns <- acct.Request.isolation_ns +. c.Runtime.isolation_ns;
  acct.Request.comm_ns <- acct.Request.comm_ns +. c.Runtime.comm_ns

(* System-scoped lifecycle events (ServerDown/ServerUp): like SLO alerts
   they belong to no request — req_id = -1, ignored by span building,
   exported as Perfetto global instant markers. *)
let trace_server ctx ~kind ~detail =
  match ctx.tracer with
  | None -> ()
  | Some tr ->
      Trace.emit tr
        ~at_ps:(Engine.now ctx.engine)
        ~kind ~req_id:(-1) ~root_id:(-1) ~fn:"server" ~core:(-1)
        ~sid:ctx.trace_sid ~detail ()

let rec poll ctx e (eng : Engine.t) =
  if (not e.busy) && Engine.now ctx.engine >= e.down_until then begin
    if not (Queue.is_empty e.ready) then begin
      let cont = Queue.pop e.ready in
      (* A whole-server crash aborts continuations in place; skip corpses. *)
      if cont.Continuation.status = Continuation.Aborted then poll ctx e eng
      else resume_cont ctx e cont
    end
    else
      match Bounded_queue.dequeue e.queue ~memsys:ctx.memsys ~core:e.core with
      | Some (req, deq_ns) -> start_request ctx e req ~deq_ns
      | None -> ()
  end

and start_request ctx e req ~deq_ns =
  e.busy <- true;
  stall_begin ctx;
  let acct = req.Request.acct in
  (* Executor-queue wait since the dispatch stamp (pure accounting). *)
  let wait_ns =
    Float.max 0.0 (Time.to_ns Time.(Engine.now ctx.engine - req.Request.enqueued_at))
  in
  acct.Request.queue_ns <- acct.Request.queue_ns +. wait_ns;
  ctx.queue_wait_ns <- ctx.queue_wait_ns +. wait_ns;
  match ctx.fault with
  | Some inj when Jord_fault_inject.Injector.draw_server_crash inj ->
      crash_server ctx e inj req ~deq_ns
  | Some inj when Jord_fault_inject.Injector.draw_crash inj ->
      crash_request ctx e inj req ~deq_ns
  | _ ->
      let fn = Model.find_fn ctx.app req.Request.fn_name in
      (* Warm-state loss: the first invocation of each function after a
         cold boot re-establishes its warm code image before setup. *)
      let cold_ns =
        if Hashtbl.length ctx.cold_fns > 0 && Hashtbl.mem ctx.cold_fns req.Request.fn_name
        then begin
          Hashtbl.remove ctx.cold_fns req.Request.fn_name;
          ctx.cold_starts <- ctx.cold_starts + 1;
          let c = Runtime.rewarm ctx.rt ~core:e.core ~fn in
          add_cost acct c;
          Runtime.total c
        end
        else 0.0
      in
      trace ctx ~kind:Trace.Start ~req ~core:e.core
        ?detail:(if cold_ns > 0.0 then Some "cold" else None) ();
      let pd, state_va, cost =
        Runtime.setup ctx.rt ~core:e.core ~fn ~argbuf:req.Request.argbuf
          ~arg_bytes:req.Request.arg_bytes
      in
      add_cost acct cost;
      (* Injected anomalies: a transient stall before the first segment and
         a PrivLib slowdown scaling the setup's cost. Zero when no plan. *)
      let fault_ns =
        match ctx.fault with
        | None -> 0.0
        | Some inj ->
            let stall = Jord_fault_inject.Injector.draw_stall_ns inj in
            if stall > 0.0 then ctx.stalls <- ctx.stalls + 1;
            let factor = Jord_fault_inject.Injector.draw_slow_factor inj in
            let slow =
              if factor > 1.0 then (factor -. 1.0) *. Runtime.total cost else 0.0
            in
            if slow > 0.0 then begin
              ctx.slowdowns <- ctx.slowdowns + 1;
              add_cost acct { Runtime.isolation_ns = slow; comm_ns = 0.0 }
            end;
            stall +. slow
      in
      acct.Request.comm_ns <- acct.Request.comm_ns +. deq_ns;
      let cid = ctx.next_cid in
      ctx.next_cid <- cid + 1;
      ctx.live_conts <- ctx.live_conts + 1;
      let cont =
        Continuation.make ~cid ~req ~fn
          ~phases:(fn.Model.make_phases ctx.prng)
          ~pd ~state_va ~home:e
      in
      Hashtbl.replace ctx.conts cid cont;
      advance ctx e cont ~dt0:(Runtime.total cost +. deq_ns +. fault_ns +. cold_ns)

(* An injected executor crash at invocation start: the fault hits after
   setup, the runtime rolls the PD back Groundhog-style (ArgBuf preserved),
   and the crashed request — plus everything queued behind it — is
   re-queued through the orchestrator for re-execution on a healthy
   executor. The executor itself stays down for the plan's restart window. *)
and crash_request ctx e inj req ~deq_ns =
  let now = Engine.now ctx.engine in
  ctx.crashes <- ctx.crashes + 1;
  let acct = req.Request.acct in
  let fn = Model.find_fn ctx.app req.Request.fn_name in
  let pd, state_va, cost =
    Runtime.setup ctx.rt ~core:e.core ~fn ~argbuf:req.Request.argbuf
      ~arg_bytes:req.Request.arg_bytes
  in
  add_cost acct cost;
  let ab =
    Runtime.abort ctx.rt ~core:e.core ~fn ~pd ~state_va ~argbuf:req.Request.argbuf
  in
  add_cost acct ab;
  acct.Request.comm_ns <- acct.Request.comm_ns +. deq_ns;
  let dt = deq_ns +. Runtime.total cost +. Runtime.total ab in
  trace ctx ~kind:Trace.Crash ~req ~core:e.core ~dur_ns:dt
    ~stall_ns:(stall_take ctx) ~detail:"executor" ();
  charge_core ctx e.core dt;
  e.down_until <- Time.(now + Time.of_ns (dt +. Jord_fault_inject.Injector.restart_ns inj));
  let up = uplink e in
  let requeue r =
    ctx.recovered <- ctx.recovered + 1;
    trace ctx ~kind:Trace.Recover ~req:r ~core:e.core ();
    up.submit_internal ~at:e.down_until r
  in
  requeue req;
  let rec drain () =
    match Bounded_queue.dequeue e.queue ~memsys:ctx.memsys ~core:e.core with
    | Some (r, _) ->
        requeue r;
        drain ()
    | None -> ()
  in
  drain ();
  (* [busy] stays set (suspended continuations survive the crash untouched
     but nothing new starts) until the restart event clears it. A whole-
     server crash in the window supersedes the restart: the purge bumps
     [epoch] and this event must then leave the rebooted executor alone. *)
  let ep = e.epoch in
  Engine.schedule_at ctx.engine ~time:e.down_until (fun eng ->
      if e.epoch = ep then begin
        e.busy <- false;
        poll ctx e eng
      end)

(* A whole-server crash at invocation start: every executor dies at once.
   The triggering invocation rolls back Groundhog-style like an executor
   crash; then every live continuation on the server is aborted (PDs and
   state VMAs torn down, ArgBufs returned to PD 0), every queue is purged,
   and the server stays dark until the boot event at [reboot]. Entry
   requests — external roots and forwarded-in requests, the server's
   obligations to the outside — re-queue at the reboot horizon; local
   children are discarded because their re-executed parents re-invoke
   them. A warm-loss draw decides whether the boot is cold (every function
   pays the re-warm path on its next invocation). *)
and crash_server ctx e inj req ~deq_ns =
  let now = Engine.now ctx.engine in
  ctx.crashes <- ctx.crashes + 1;
  ctx.server_crashes <- ctx.server_crashes + 1;
  let acct = req.Request.acct in
  let fn = Model.find_fn ctx.app req.Request.fn_name in
  let pd, state_va, cost =
    Runtime.setup ctx.rt ~core:e.core ~fn ~argbuf:req.Request.argbuf
      ~arg_bytes:req.Request.arg_bytes
  in
  add_cost acct cost;
  let ab =
    Runtime.abort ctx.rt ~core:e.core ~fn ~pd ~state_va ~argbuf:req.Request.argbuf
  in
  add_cost acct ab;
  acct.Request.comm_ns <- acct.Request.comm_ns +. deq_ns;
  let dt = deq_ns +. Runtime.total cost +. Runtime.total ab in
  trace ctx ~kind:Trace.Crash ~req ~core:e.core ~dur_ns:dt
    ~stall_ns:(stall_take ctx) ~detail:"server" ();
  charge_core ctx e.core dt;
  let reboot =
    Time.(now + Time.of_ns (Jord_fault_inject.Injector.server_down_ns inj))
  in
  ctx.srv_down_until <- reboot;
  trace_server ctx ~kind:Trace.ServerDown ~detail:"crash";
  let cold = Jord_fault_inject.Injector.draw_warm_loss inj in
  if cold then begin
    ctx.warm_losses <- ctx.warm_losses + 1;
    List.iter
      (fun (f : Model.fn) -> Hashtbl.replace ctx.cold_fns f.Model.name ())
      ctx.app.Model.fns
  end;
  (* The triggering request is an entry by construction (it was dequeued
     for execution); re-queue it first, then abort the rest of the server
     in a deterministic order: live continuations by ascending cid, then
     the orchestrator/executor queues via the server-installed purge. *)
  let up = uplink e in
  ctx.recovered <- ctx.recovered + 1;
  trace ctx ~kind:Trace.Recover ~req ~core:e.core ~detail:"server" ();
  up.submit_internal ~at:reboot req;
  (* Abort each core's currently-entered PD before any suspended one:
     tearing a suspended cont down re-enters its PD, which clobbers the
     core's current-PD register — the mid-segment cont must creturn
     first. Within each class, ascending cid keeps the order canonical. *)
  let keyed =
    Hashtbl.fold
      (fun cid (cont : t Continuation.t) acc ->
        let suspended =
          if Runtime.pd_suspended ctx.rt ~pd:cont.Continuation.pd then 1 else 0
        in
        ((suspended, cid), cid) :: acc)
      ctx.conts []
  in
  List.iter
    (fun (_, cid) ->
      match Hashtbl.find_opt ctx.conts cid with
      | Some cont -> abort_cont ctx cont ~reboot
      | None -> ())
    (List.sort compare keyed);
  ctx.on_server_purge ~reboot;
  Engine.schedule_at ctx.engine ~time:reboot (fun _ ->
      trace_server ctx ~kind:Trace.ServerUp
        ~detail:(if cold then "boot_cold" else "boot"))

(* Groundhog-style abort of one live continuation during a whole-server
   crash: completed-but-unreaped child ArgBufs are released, the PD/state
   VMA/code grant are torn down (the request's own ArgBuf returns to PD 0
   intact), and the continuation is marked [Aborted] so any event still
   scheduled against it — segment ends, zombie child responses — no-ops. *)
and abort_cont ctx (cont : t Continuation.t) ~reboot =
  let e = cont.Continuation.home in
  let req = cont.Continuation.req in
  let acct = req.Request.acct in
  cont.Continuation.status <- Continuation.Aborted;
  Hashtbl.remove ctx.conts cont.Continuation.cid;
  ctx.live_conts <- ctx.live_conts - 1;
  List.iter
    (fun (va, bytes) ->
      if va <> 0 then
        add_cost acct (Runtime.release_argbuf ctx.rt ~core:e.core ~va ~bytes))
    (Continuation.take_reaps cont);
  let ab =
    Runtime.abort ctx.rt ~core:e.core ~fn:cont.Continuation.fn
      ~pd:cont.Continuation.pd ~state_va:cont.Continuation.state_va
      ~argbuf:req.Request.argbuf
  in
  add_cost acct ab;
  if req.Request.on_complete = None || req.Request.forwarded then begin
    (* Entry request: re-execute from its preserved ArgBuf after boot. *)
    ctx.recovered <- ctx.recovered + 1;
    trace ctx ~kind:Trace.Recover ~req ~core:e.core ~detail:"server" ();
    (uplink e).submit_internal ~at:reboot req
  end
  else if req.Request.argbuf <> 0 then begin
    (* Local child: its re-executed parent re-invokes it; drop this
       instance and release its input buffer. *)
    add_cost acct
      (Runtime.release_argbuf ctx.rt ~core:e.core ~va:req.Request.argbuf
         ~bytes:req.Request.arg_bytes);
    req.Request.argbuf <- 0
  end

and resume_cont ctx e (cont : t Continuation.t) =
  e.busy <- true;
  stall_begin ctx;
  trace ctx ~kind:Trace.Resume ~req:cont.Continuation.req ~core:e.core ();
  e.suspended <- e.suspended - 1;
  cont.Continuation.status <- Continuation.Running;
  let acct = cont.Continuation.req.Request.acct in
  (* Reap completed children executor-side (PD 0) before re-entering. *)
  let dt = ref 0.0 in
  List.iter
    (fun (va, bytes) ->
      let c =
        Runtime.reap_argbuf ctx.rt ~core:e.core ~pd:cont.Continuation.pd ~va ~bytes
      in
      add_cost acct c;
      dt := !dt +. Runtime.total c)
    (Continuation.take_reaps cont);
  let c = Runtime.resume ctx.rt ~core:e.core ~pd:cont.Continuation.pd in
  add_cost acct c;
  advance ctx e cont ~dt0:(!dt +. Runtime.total c)

(* Run the continuation until it suspends or finishes, accumulating the
   segment's latency [dt]; schedule the segment-end event. *)
and advance ctx e (cont : t Continuation.t) ~dt0 =
  let now = Engine.now ctx.engine in
  let acct = cont.Continuation.req.Request.acct in
  let dt = ref dt0 in
  let finished = ref false in
  let suspended = ref false in
  let continue = ref true in
  while !continue do
    match cont.Continuation.phases with
    | [] ->
        continue := false;
        finished := true
    | Model.Compute ns :: rest ->
        cont.Continuation.phases <- rest;
        acct.Request.exec_ns <- acct.Request.exec_ns +. ns;
        let c =
          Runtime.touch_working_set ctx.rt ~core:e.core ~pd:cont.Continuation.pd
            ~fn:cont.Continuation.fn ~state_va:cont.Continuation.state_va
        in
        add_cost acct c;
        dt := !dt +. ns +. Runtime.total c
    | Model.Invoke { target; arg_bytes; mode; cookie } :: rest ->
        cont.Continuation.phases <- rest;
        let va, c1 = Runtime.make_argbuf ctx.rt ~core:e.core ~bytes:arg_bytes in
        let c2 = Runtime.invoke_send ctx.rt ~core:e.core ~bytes:arg_bytes in
        (* Returning from the runtime's call gates refetches the caller's
           code region (I-VLB pressure on tiny VLBs). *)
        let c3 =
          Runtime.touch_working_set ctx.rt ~core:e.core ~pd:cont.Continuation.pd
            ~fn:cont.Continuation.fn ~state_va:cont.Continuation.state_va
        in
        add_cost acct (Runtime.( ++ ) (Runtime.( ++ ) c1 c2) c3);
        dt := !dt +. Runtime.total c1 +. Runtime.total c2 +. Runtime.total c3;
        let child =
          Request.make_child ~id:(fresh_req_id ctx) ~parent:cont.Continuation.req
            ~fn_name:target ~arg_bytes
        in
        child.Request.argbuf <- va;
        child.Request.on_complete <-
          Some (fun eng ns -> child_completed ctx cont child eng ns);
        Continuation.register_child cont ?cookie ~child_id:child.Request.id ();
        (* Hand the request to this executor's orchestrator: one line write
           into the internal queue, then an arrival event. *)
        let up = uplink e in
        let wr = Jord_arch.Memsys.write ctx.memsys ~core:e.core ~addr:up.int_line in
        acct.Request.dispatch_ns <- acct.Request.dispatch_ns +. wr;
        dt := !dt +. wr;
        let arrival = Time.(now + Time.of_ns !dt) in
        up.submit_internal ~at:arrival child;
        (match mode with
        | Model.Async -> ()
        | Model.Sync ->
            cont.Continuation.wait <- Continuation.For_child child.Request.id;
            let c = Runtime.suspend ctx.rt ~core:e.core ~pd:cont.Continuation.pd in
            add_cost acct c;
            dt := !dt +. Runtime.total c;
            suspended := true;
            continue := false)
    | Model.Wait :: rest ->
        if Continuation.can_skip_wait cont then cont.Continuation.phases <- rest
        else begin
          cont.Continuation.phases <- rest;
          cont.Continuation.wait <- Continuation.For_all;
          let c = Runtime.suspend ctx.rt ~core:e.core ~pd:cont.Continuation.pd in
          add_cost acct c;
          dt := !dt +. Runtime.total c;
          suspended := true;
          continue := false
        end
    | Model.Wait_for cookie :: rest -> (
        cont.Continuation.phases <- rest;
        match Continuation.pending_cookie cont ~cookie with
        | None -> ()
        | Some child_id ->
            cont.Continuation.wait <- Continuation.For_child child_id;
            let c = Runtime.suspend ctx.rt ~core:e.core ~pd:cont.Continuation.pd in
            add_cost acct c;
            dt := !dt +. Runtime.total c;
            suspended := true;
            continue := false)
    | Model.Scratch bytes :: rest ->
        cont.Continuation.phases <- rest;
        let c = Runtime.scratch ctx.rt ~core:e.core ~bytes in
        add_cost acct c;
        dt := !dt +. Runtime.total c
  done;
  trace ctx ~kind:Trace.Segment ~req:cont.Continuation.req ~core:e.core ~dur_ns:!dt
    ~stall_ns:(stall_take ctx) ();
  charge_core ctx e.core !dt;
  let at = Time.(now + Time.of_ns !dt) in
  if !finished then
    Engine.schedule_at ctx.engine ~time:at (fun eng -> finish_cont ctx e cont eng)
  else if !suspended then begin
    trace ctx ~kind:Trace.Suspend ~req:cont.Continuation.req ~core:e.core ();
    Engine.schedule_at ctx.engine ~time:at (fun eng -> suspend_cont ctx e cont eng)
  end

and suspend_cont ctx e (cont : t Continuation.t) engine =
  (* A whole-server crash between the segment's end being scheduled and
     firing already tore this continuation down; the stale event no-ops. *)
  if cont.Continuation.status = Continuation.Aborted then ()
  else begin
  e.suspended <- e.suspended + 1;
  if Continuation.ready_after_suspend cont then begin
    cont.Continuation.status <- Continuation.Ready;
    Queue.push cont e.ready
  end
  else cont.Continuation.status <- Continuation.Suspended;
  e.busy <- false;
  poll ctx e engine
  end

and finish_cont ctx e (cont : t Continuation.t) engine =
  if cont.Continuation.status = Continuation.Aborted then ()
  else begin
  let now = Engine.now engine in
  stall_begin ctx;
  let req = cont.Continuation.req in
  let root = req.Request.root in
  let acct = req.Request.acct in
  let c =
    Runtime.teardown ctx.rt ~core:e.core ~fn:cont.Continuation.fn
      ~pd:cont.Continuation.pd ~state_va:cont.Continuation.state_va
      ~argbuf:req.Request.argbuf
  in
  add_cost acct c;
  Hashtbl.remove ctx.conts cont.Continuation.cid;
  ctx.live_conts <- ctx.live_conts - 1;
  let dt = Runtime.total c in
  (* Completion notification: a line write under Jord, a pipe message under
     NightCore — the sender only pays the send side; delivery takes the full
     message latency. *)
  let notify_busy, notify_lat, notify_charge =
    if Variant.uses_pipes ctx.variant then begin
      let pipe = (Runtime.nc ctx.rt).Jord_baseline.Nightcore.pipe in
      let send = Jord_baseline.Pipe.sender_ns pipe ~bytes:64 in
      let full = Jord_baseline.Pipe.message_ns pipe ~bytes:64 ~wake:true in
      (send, full, full)
    end
    else begin
      let addr =
        match req.Request.on_complete with
        | Some _ -> Continuation.notify_line cont
        | None -> (uplink e).notify_line
      in
      let wr = Jord_arch.Memsys.write ctx.memsys ~core:e.core ~addr in
      (wr, wr, wr)
    end
  in
  acct.Request.comm_ns <- acct.Request.comm_ns +. notify_charge;
  (* The Complete event's duration is the ps distance to the exact engine
     timestamp where the request's life ends (parent reap notification or
     external completion), so span end = at + dur with no rounding slack. *)
  let trace_complete ~at =
    trace ctx ~kind:Trace.Complete ~req ~core:e.core ~dur_ps:Time.(at - now)
      ~stall_ns:(stall_take ctx) ()
  in
  (match req.Request.on_complete with
  | Some f when req.Request.forwarded ->
      (* Forwarded request: the response travels back over the network; the
         local ArgBuf is reclaimed here, and the origin-side buffer is
         restored before the parent reaps it. *)
      let up = uplink e in
      up.push_reclaim ~va:req.Request.argbuf ~bytes:req.Request.arg_bytes;
      (* Wake the orchestrator so the buffer is reclaimed even when no
         further dispatches are pending on this server. *)
      Engine.schedule_at ctx.engine ~time:now up.wake;
      let resp = Netmodel.response_ns ctx.net in
      acct.Request.comm_ns <- acct.Request.comm_ns +. resp;
      req.Request.argbuf <- req.Request.home_argbuf;
      let at = Time.(now + Time.of_ns (dt +. notify_lat +. resp)) in
      trace_complete ~at;
      (* The response event runs on the home server: fold the detached
         ledger back into the enclosing one there (same fold point in
         sequential and sharded runs, so float order is identical), then
         resume the parent. Routing: local schedule on the shared engine,
         or a shard-mailbox post when the home server lives on another
         shard — [resp >= Netmodel.one_way] keeps the lookahead contract. *)
      let deliver eng =
        Request.settle_acct req;
        f eng notify_lat
      in
      (match ctx.route_return with
      | None -> Engine.schedule_at ctx.engine ~time:at deliver
      | Some route -> route req ~at deliver)
  | Some f ->
      (* Internal request: notify the parent's executor. *)
      let at = Time.(now + Time.of_ns (dt +. notify_lat)) in
      trace_complete ~at;
      Engine.schedule_at ctx.engine ~time:at (fun eng -> f eng notify_lat)
  | None ->
      (* External request: notify the orchestrator and finish measurement. *)
      let up = uplink e in
      let at = Time.(now + Time.of_ns (dt +. notify_lat)) in
      trace_complete ~at;
      up.push_reclaim ~va:req.Request.argbuf ~bytes:req.Request.arg_bytes;
      Engine.schedule_at ctx.engine ~time:at (fun eng ->
          root.Request.completed_at <- at;
          root.Request.finished <- true;
          ctx.completed <- ctx.completed + 1;
          ctx.in_flight <- ctx.in_flight - 1;
          ctx.root_cb root;
          (* Wake the orchestrator so the finished ArgBuf gets reclaimed
             even when no further dispatches are pending. *)
          up.wake eng));
  charge_core ctx e.core (dt +. notify_busy);
  (* The executor is free again once teardown and the send are done —
     unless a whole-server crash lands in the window (epoch moved), in
     which case the purge already decided the executor's fate. *)
  let ep = e.epoch in
  Engine.schedule_at ctx.engine
    ~time:Time.(now + Time.of_ns (dt +. notify_busy))
    (fun eng -> if e.epoch = ep then e.release_fn eng)
  end

and child_completed ctx (parent : t Continuation.t) child engine (_notify_ns : float) =
  match parent.Continuation.status with
  | Continuation.Aborted ->
      (* Zombie response: the parent died in a whole-server crash after this
         child was already on its way (a forwarded child executing remotely,
         or a local completion notification already scheduled). Don't touch
         the dead continuation's reap list — just reclaim the response
         buffer on the parent's home server. The re-executed parent
         re-invokes its children from scratch. *)
      if child.Request.argbuf <> 0 then begin
        let home = parent.Continuation.home in
        (uplink home).push_reclaim ~va:child.Request.argbuf
          ~bytes:child.Request.arg_bytes;
        child.Request.argbuf <- 0;
        (uplink home).wake engine
      end
  | _ -> (
      let was_waiting_for_this =
        Continuation.child_completed parent ~child_id:child.Request.id
          ~argbuf:child.Request.argbuf ~bytes:child.Request.arg_bytes
      in
      match parent.Continuation.status with
      | Continuation.Suspended when was_waiting_for_this ->
          parent.Continuation.status <- Continuation.Ready;
          Queue.push parent parent.Continuation.home.ready;
          if not parent.Continuation.home.busy then
            poll ctx parent.Continuation.home engine
      | Continuation.Suspended | Continuation.Running | Continuation.Ready
      | Continuation.Aborted ->
          ())

(* Classify one queued-but-unstarted request during a whole-server crash:
   entry requests (external roots and forwarded-in work — the server's
   obligations to the outside) re-queue at the reboot horizon; local
   children are discarded because their re-executed parents re-invoke
   them. Shared by the executor and orchestrator purge paths. *)
let purge_request ctx e (req : Request.t) ~reboot =
  if req.Request.on_complete = None || req.Request.forwarded then begin
    ctx.recovered <- ctx.recovered + 1;
    trace ctx ~kind:Trace.Recover ~req ~core:e.core ~detail:"server" ();
    (uplink e).submit_internal ~at:reboot req
  end
  else if req.Request.argbuf <> 0 then begin
    add_cost req.Request.acct
      (Runtime.release_argbuf ctx.rt ~core:e.core ~va:req.Request.argbuf
         ~bytes:req.Request.arg_bytes);
    req.Request.argbuf <- 0
  end

(* Whole-server crash: purge this executor's queues (dequeue costs are
   not charged — the machine is dead) and hold it down until [reboot].
   Live continuations were already aborted by [crash_server]; the ready
   set holds only corpses at this point. *)
let purge_for_reboot ctx e ~reboot =
  let rec drain () =
    match Bounded_queue.dequeue e.queue ~memsys:ctx.memsys ~core:e.core with
    | Some (req, _) ->
        purge_request ctx e req ~reboot;
        drain ()
    | None -> ()
  in
  drain ();
  Queue.clear e.ready;
  e.suspended <- 0;
  e.busy <- false;
  e.down_until <- reboot;
  e.epoch <- e.epoch + 1

let create ctx ~eid ~core ~queue_capacity =
  let rec e =
    {
      eid;
      core;
      queue =
        Bounded_queue.create ~capacity:queue_capacity
          ~region:
            (exec_queue_region
            + (eid * Bounded_queue.region_bytes ~capacity:queue_capacity));
      ready = Queue.create ();
      busy = false;
      suspended = 0;
      up = None;
      release_fn =
        (fun eng ->
          e.busy <- false;
          poll ctx e eng);
      down_until = Time.zero;
      epoch = 0;
    }
  in
  e
