(* Text reports over a span forest — what [jordctl trace] prints. *)

let us ps = float_of_int ps /. 1e6

let percentile p sorted =
  let n = Array.length sorted in
  if n = 0 then 0
  else
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) - 1 in
    sorted.(Int.max 0 (Int.min (n - 1) rank))

let complete_roots r = List.filter Span.complete (Span.roots r)

let truncation_note r =
  if r.Span.truncated then
    "NOTE: the trace ring wrapped (truncated=true): oldest events were lost and\n\
     analyses cover only the retained suffix of the run.\n"
  else ""

type fn_stats = {
  fn : string;
  n : int;
  mean_ps : float;
  p50_ps : int;
  p99_ps : int;
  phase_mean_ps : float array;  (** Indexed by {!Span.phase_index}. *)
}

let by_function r =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun sp ->
      let l = Option.value ~default:[] (Hashtbl.find_opt tbl sp.Span.fn) in
      Hashtbl.replace tbl sp.Span.fn (sp :: l))
    (complete_roots r);
  Hashtbl.fold
    (fun fn sps acc ->
      let n = List.length sps in
      let lat = Array.of_list (List.map Span.e2e_ps sps) in
      Array.sort compare lat;
      let phase_mean_ps =
        Array.init Span.phase_count (fun i ->
            List.fold_left
              (fun s sp -> s +. float_of_int sp.Span.phases.(i))
              0.0 sps
            /. float_of_int n)
      in
      {
        fn;
        n;
        mean_ps =
          Array.fold_left (fun s v -> s +. float_of_int v) 0.0 lat /. float_of_int n;
        p50_ps = percentile 50.0 lat;
        p99_ps = percentile 99.0 lat;
        phase_mean_ps;
      }
      :: acc)
    tbl []
  |> List.sort (fun a b -> compare a.fn b.fn)

let conservation_ok r = Span.conservation_violations r = []

let conservation_line r =
  let roots = complete_roots r in
  match Span.conservation_violations r with
  | [] ->
      Printf.sprintf
        "conservation: ok (%d complete spans, %d roots; phases sum exactly to \
         end-to-end)"
        (let _, done_, _, _ = Span.stats r in
         done_)
        (List.length roots)
  | errs ->
      Printf.sprintf "conservation: VIOLATED (%d spans)\n  %s" (List.length errs)
        (String.concat "\n  " errs)

let phase_table buf ~label rows =
  (* rows : (name, total_ps array) — prints one line per row with per-phase
     microseconds and shares. *)
  Buffer.add_string buf
    (Printf.sprintf "%-14s %10s" label "e2e_us");
  Array.iter
    (fun ph -> Buffer.add_string buf (Printf.sprintf " %12s" (Span.phase_name ph)))
    Span.all_phases;
  Buffer.add_char buf '\n';
  List.iter
    (fun (name, phases) ->
      let total = Array.fold_left ( +. ) 0.0 phases in
      Buffer.add_string buf (Printf.sprintf "%-14s %10.3f" name (total /. 1e6));
      Array.iter
        (fun ph ->
          let v = phases.(Span.phase_index ph) in
          let share = if total > 0.0 then 100.0 *. v /. total else 0.0 in
          Buffer.add_string buf
            (Printf.sprintf " %7.3f/%3.0f%%" (v /. 1e6) share))
        Span.all_phases;
      Buffer.add_char buf '\n')
    rows

let breakdown r =
  let buf = Buffer.create 2048 in
  let total, done_, dead, partial = Span.stats r in
  Buffer.add_string buf (truncation_note r);
  Buffer.add_string buf
    (Printf.sprintf "spans: %d (%d completed, %d shed, %d partial) from %d events\n"
       total done_ dead partial r.Span.total_events);
  let stats = by_function r in
  if stats = [] then Buffer.add_string buf "no complete root spans\n"
  else begin
    Buffer.add_string buf
      "per-phase attribution, complete roots (mean us per request / share of e2e):\n";
    phase_table buf ~label:"fn"
      (List.map (fun s -> (Printf.sprintf "%s(%d)" s.fn s.n, s.phase_mean_ps)) stats)
  end;
  Buffer.add_string buf (conservation_line r);
  Buffer.add_char buf '\n';
  Buffer.contents buf

let slowest ?(n = 10) r =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (truncation_note r);
  let roots =
    List.sort (fun a b -> compare (Span.e2e_ps b) (Span.e2e_ps a)) (complete_roots r)
  in
  let rec take k = function
    | [] -> []
    | _ when k = 0 -> []
    | x :: tl -> x :: take (k - 1) tl
  in
  let picked = take n roots in
  if picked = [] then Buffer.add_string buf "no complete root spans\n"
  else begin
    Buffer.add_string buf (Printf.sprintf "slowest %d roots:\n" (List.length picked));
    phase_table buf ~label:"req"
      (List.map
         (fun sp ->
           ( Printf.sprintf "#%d %s" sp.Span.req_id sp.Span.fn,
             Array.map float_of_int sp.Span.phases ))
         picked)
  end;
  Buffer.contents buf

(* Aggregate critical-path blame per entry function plus the tail verdict
   ("for p99 requests, phase X is Y% of latency"). *)
let critical_path r =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf (truncation_note r);
  let roots = complete_roots r in
  if roots = [] then begin
    Buffer.add_string buf "no complete root spans\n";
    Buffer.contents buf
  end
  else begin
    let blames = List.map (fun sp -> (sp, Critical_path.of_root r sp)) roots in
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun ((sp : Span.t), (b : Critical_path.blame)) ->
        let n, acc =
          Option.value ~default:(0, Array.make Span.phase_count 0.0)
            (Hashtbl.find_opt tbl sp.Span.fn)
        in
        Array.iteri (fun i v -> acc.(i) <- acc.(i) +. float_of_int v) b.Critical_path.phases;
        Hashtbl.replace tbl sp.Span.fn (n + 1, acc))
      blames;
    let rows =
      Hashtbl.fold
        (fun fn (n, acc) l ->
          (Printf.sprintf "%s(%d)" fn n, Array.map (fun v -> v /. float_of_int n) acc)
          :: l)
        tbl []
      |> List.sort compare
    in
    Buffer.add_string buf
      "critical-path blame, complete roots (mean us on the longest causal chain):\n";
    phase_table buf ~label:"fn" rows;
    (* Tail report over the p99 slice. *)
    let lat = Array.of_list (List.map (fun (sp, _) -> Span.e2e_ps sp) blames) in
    Array.sort compare lat;
    let p99 = percentile 99.0 lat in
    let tail = List.filter (fun (sp, _) -> Span.e2e_ps sp >= p99) blames in
    let acc = Array.make Span.phase_count 0 in
    List.iter
      (fun (_, (b : Critical_path.blame)) ->
        Array.iteri (fun i v -> acc.(i) <- acc.(i) + v) b.Critical_path.phases)
      tail;
    let total = Array.fold_left ( + ) 0 acc in
    if total > 0 then begin
      let worst = ref 0 in
      Array.iteri (fun i v -> if v > acc.(!worst) then worst := i) acc;
      Buffer.add_string buf
        (Printf.sprintf
           "tail: for p99 requests (>= %.3f us, n=%d), %s is %.1f%% of \
            critical-path latency\n"
           (us p99) (List.length tail)
           (Span.phase_name Span.all_phases.(!worst))
           (100.0 *. float_of_int acc.(!worst) /. float_of_int total))
    end;
    let longest =
      List.fold_left
        (fun best (_, (b : Critical_path.blame)) ->
          if List.length b.Critical_path.chain
             > List.length best.Critical_path.chain
          then b
          else best)
        (snd (List.hd blames))
        blames
    in
    Buffer.add_string buf
      (Printf.sprintf "longest chain (%d spans): %s\n"
         (List.length longest.Critical_path.chain)
         (String.concat " -> "
            (List.map
               (fun (id, fn) -> Printf.sprintf "%s#%d" fn id)
               longest.Critical_path.chain)));
    Buffer.add_string buf (conservation_line r);
    Buffer.add_char buf '\n';
    Buffer.contents buf
  end
