module Json = Jord_util.Json

(* Reports over a loaded fleet trace — what [jordctl trace] prints when the
   file turns out to be a fleet one. Fleet spans are flat (one record per
   request, six exclusive phases), so "critical path" degenerates to the
   span itself and the interesting question becomes *blame*: which phase
   owns the tail, per entry function and per member, plus how evenly the
   balancer spread the load. All statistics are over the retained
   (tail-sampled) set; the headline line says so. *)

let us ps = float_of_int ps /. 1e6

let percentile p sorted =
  let n = Array.length sorted in
  if n = 0 then 0
  else
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) - 1 in
    sorted.(Int.max 0 (Int.min (n - 1) rank))

let spans_of (l : Ftrace.loaded) = List.map snd l.Ftrace.spans

let completed l =
  List.filter (fun sp -> sp.Fspan.outcome = Fspan.Completed) (spans_of l)

let conservation_violations l =
  List.filter_map
    (fun sp ->
      if Fspan.conservation_ok sp then None
      else
        Some
          (Printf.sprintf "request %d: phases sum to %d ps, end-to-end is %d ps"
             sp.Fspan.req_id (Fspan.sum_phases sp) (Fspan.e2e_ps sp)))
    (spans_of l)

let conservation_ok l = conservation_violations l = []

let conservation_line l =
  match conservation_violations l with
  | [] ->
      Printf.sprintf
        "conservation: ok (%d retained spans; phases sum exactly to end-to-end)"
        (List.length l.Ftrace.spans)
  | errs ->
      Printf.sprintf "conservation: VIOLATED (%d spans)\n  %s" (List.length errs)
        (String.concat "\n  " errs)

let headline (l : Ftrace.loaded) =
  let census = Hashtbl.create 8 in
  List.iter
    (fun (reason, _) ->
      Hashtbl.replace census reason
        (1 + Option.value ~default:0 (Hashtbl.find_opt census reason)))
    l.Ftrace.spans;
  let parts =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) census []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
    |> List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v)
  in
  Printf.sprintf "fleet trace: %d spans retained of %d requests (keep: %s)\n"
    (List.length l.Ftrace.spans)
    l.Ftrace.offered_total
    (if parts = [] then "-" else String.concat " " parts)

let phase_table buf ~label rows =
  (* rows : (name, total_ps float array) — per-phase microseconds and
     shares, one line per row (the single-node Report layout). *)
  Buffer.add_string buf (Printf.sprintf "%-16s %10s" label "e2e_us");
  Array.iter
    (fun ph ->
      Buffer.add_string buf (Printf.sprintf " %14s" (Fspan.phase_name ph)))
    Fspan.all_phases;
  Buffer.add_char buf '\n';
  List.iter
    (fun (name, phases) ->
      let total = Array.fold_left ( +. ) 0.0 phases in
      Buffer.add_string buf (Printf.sprintf "%-16s %10.3f" name (total /. 1e6));
      Array.iter
        (fun ph ->
          let v = phases.(Fspan.phase_index ph) in
          let share = if total > 0.0 then 100.0 *. v /. total else 0.0 in
          Buffer.add_string buf (Printf.sprintf " %9.3f/%3.0f%%" (v /. 1e6) share))
        Fspan.all_phases;
      Buffer.add_char buf '\n')
    rows

type fn_stats = {
  fn : string;
  n : int;
  mean_ps : float;
  p50_ps : int;
  p99_ps : int;
  phase_mean_ps : float array;  (* by Fspan.phase_index *)
  tail_phase_ps : int array;  (* phase totals over the >= p99 slice *)
  tail_n : int;
}

let group_by_fn sps =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun sp ->
      let l = Option.value ~default:[] (Hashtbl.find_opt tbl sp.Fspan.fn) in
      Hashtbl.replace tbl sp.Fspan.fn (sp :: l))
    sps;
  Hashtbl.fold (fun fn sps acc -> (fn, sps) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let by_function l =
  List.map
    (fun (fn, sps) ->
      let n = List.length sps in
      let lat = Array.of_list (List.map Fspan.e2e_ps sps) in
      Array.sort compare lat;
      let p99 = percentile 99.0 lat in
      let phase_mean_ps =
        Array.init Fspan.phase_count (fun i ->
            List.fold_left (fun s sp -> s +. float_of_int sp.Fspan.phases.(i)) 0.0 sps
            /. float_of_int n)
      in
      let tail = List.filter (fun sp -> Fspan.e2e_ps sp >= p99) sps in
      let tail_phase_ps = Array.make Fspan.phase_count 0 in
      List.iter
        (fun sp ->
          Array.iteri (fun i v -> tail_phase_ps.(i) <- tail_phase_ps.(i) + v)
            sp.Fspan.phases)
        tail;
      {
        fn;
        n;
        mean_ps =
          Array.fold_left (fun s v -> s +. float_of_int v) 0.0 lat /. float_of_int n;
        p50_ps = percentile 50.0 lat;
        p99_ps = p99;
        phase_mean_ps;
        tail_phase_ps;
        tail_n = List.length tail;
      })
    (group_by_fn (completed l))

(* "p99 is X% cold-start / Y% member queue / ..." over a tail slice's phase
   totals, heaviest phase first, zero phases omitted. *)
let tail_split tail_phase_ps =
  let total = Array.fold_left ( + ) 0 tail_phase_ps in
  if total = 0 then ("empty", [])
  else
    let parts =
      Array.to_list Fspan.all_phases
      |> List.map (fun ph ->
             (ph, tail_phase_ps.(Fspan.phase_index ph)))
      |> List.filter (fun (_, v) -> v > 0)
      |> List.sort (fun (pa, a) (pb, b) ->
             compare (-a, Fspan.phase_index pa) (-b, Fspan.phase_index pb))
      |> List.map (fun (ph, v) ->
             ( Fspan.phase_name ph,
               100.0 *. float_of_int v /. float_of_int total ))
    in
    (match parts with (name, _) :: _ -> name | [] -> "empty"), parts

let tail_split_string parts =
  String.concat " / "
    (List.map (fun (name, pct) -> Printf.sprintf "%.0f%% %s" pct name) parts)

let breakdown l =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf (headline l);
  let stats = by_function l in
  if stats = [] then Buffer.add_string buf "no completed spans retained\n"
  else begin
    Buffer.add_string buf
      "per-phase attribution, completed requests (mean us per request / share of \
       e2e):\n";
    phase_table buf ~label:"fn"
      (List.map
         (fun s -> (Printf.sprintf "%s(%d)" s.fn s.n, s.phase_mean_ps))
         stats)
  end;
  Buffer.add_string buf (conservation_line l);
  Buffer.add_char buf '\n';
  Buffer.contents buf

let slowest ?(n = 10) l =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (headline l);
  let sps =
    List.sort
      (fun a b ->
        compare (Fspan.e2e_ps b, a.Fspan.req_id) (Fspan.e2e_ps a, b.Fspan.req_id))
      (completed l)
  in
  let rec take k = function
    | [] -> []
    | _ when k = 0 -> []
    | x :: tl -> x :: take (k - 1) tl
  in
  let picked = take n sps in
  if picked = [] then Buffer.add_string buf "no completed spans retained\n"
  else begin
    Buffer.add_string buf
      (Printf.sprintf "slowest %d retained requests:\n" (List.length picked));
    phase_table buf ~label:"req"
      (List.map
         (fun sp ->
           ( Printf.sprintf "#%d %s@m%d%s" sp.Fspan.req_id sp.Fspan.fn
               sp.Fspan.member
               (if sp.Fspan.cold then "*" else ""),
             Array.map float_of_int sp.Fspan.phases ))
         picked)
  end;
  Buffer.contents buf

type member_stats = {
  member : int;
  routed : int;  (* spans routed to this member (incl. member sheds) *)
  m_completed : int;
  m_shed : int;
  hits : int;
  colds : int;
  m_mean_ps : float;
  m_p99_ps : int;
}

let by_member l =
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun sp ->
      if sp.Fspan.member >= 0 then
        let l = Option.value ~default:[] (Hashtbl.find_opt tbl sp.Fspan.member) in
        Hashtbl.replace tbl sp.Fspan.member (sp :: l))
    (spans_of l);
  Hashtbl.fold
    (fun member sps acc ->
      let comp = List.filter (fun sp -> sp.Fspan.outcome = Fspan.Completed) sps in
      let lat = Array.of_list (List.map Fspan.e2e_ps comp) in
      Array.sort compare lat;
      let count f = List.length (List.filter f sps) in
      {
        member;
        routed = List.length sps;
        m_completed = List.length comp;
        m_shed = count (fun sp -> sp.Fspan.outcome = Fspan.Shed_member);
        hits = count (fun sp -> sp.Fspan.lb_hit);
        colds = count (fun sp -> sp.Fspan.cold);
        m_mean_ps =
          (if comp = [] then 0.0
           else
             Array.fold_left (fun s v -> s +. float_of_int v) 0.0 lat
             /. float_of_int (Array.length lat));
        m_p99_ps = percentile 99.0 lat;
      }
      :: acc)
    tbl []
  |> List.sort (fun a b -> compare (-a.routed, a.member) (-b.routed, b.member))

(* Balance of the retained routed load: max/mean requests-per-member, the
   warm-route hit rate and the cold-start rate. *)
let imbalance_line members =
  match members with
  | [] -> "lb-imbalance: no routed spans retained\n"
  | _ ->
      let n = List.length members in
      let total = List.fold_left (fun a m -> a + m.routed) 0 members in
      let mean = float_of_int total /. float_of_int n in
      let worst = List.hd members in
      let least =
        List.fold_left
          (fun best m ->
            if (m.routed, m.member) < (best.routed, best.member) then m else best)
          worst members
      in
      let hits = List.fold_left (fun a m -> a + m.hits) 0 members in
      let colds = List.fold_left (fun a m -> a + m.colds) 0 members in
      let pct a = 100.0 *. float_of_int a /. float_of_int (Int.max 1 total) in
      Printf.sprintf
        "lb-imbalance: %d members, %.1f requests/member mean, max=%d (member %d) \
         min=%d (member %d), max/mean=%.2f; warm-route hits=%.0f%% cold=%.0f%%\n"
        n mean worst.routed worst.member least.routed least.member
        (float_of_int worst.routed /. Float.max 1.0 mean)
        (pct hits) (pct colds)

let member_cap = 16

(* The fleet blame report: per-fn attribution with tail verdicts, the
   per-member view (top [member_cap] by routed load, deterministic order),
   the LB-imbalance summary, and the headline p99 verdict that names the
   guilty phase. *)
let blame l =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (headline l);
  let comp = completed l in
  if comp = [] then begin
    Buffer.add_string buf "no completed spans retained\n";
    Buffer.add_string buf (conservation_line l);
    Buffer.add_char buf '\n';
    Buffer.contents buf
  end
  else begin
    let stats = by_function l in
    Buffer.add_string buf
      "per-phase attribution, completed requests (mean us per request / share of \
       e2e):\n";
    phase_table buf ~label:"fn"
      (List.map
         (fun s -> (Printf.sprintf "%s(%d)" s.fn s.n, s.phase_mean_ps))
         stats);
    Buffer.add_string buf "per-fn tail (requests at or above the fn's p99):\n";
    List.iter
      (fun s ->
        let _, parts = tail_split s.tail_phase_ps in
        Buffer.add_string buf
          (Printf.sprintf "  %-16s p99=%.3fus n=%d: p99 is %s\n" s.fn
             (us s.p99_ps) s.tail_n (tail_split_string parts)))
      stats;
    (* Fleet-wide tail verdict. *)
    let lat = Array.of_list (List.map Fspan.e2e_ps comp) in
    Array.sort compare lat;
    let p99 = percentile 99.0 lat in
    let tail = List.filter (fun sp -> Fspan.e2e_ps sp >= p99) comp in
    let acc = Array.make Fspan.phase_count 0 in
    List.iter
      (fun sp -> Array.iteri (fun i v -> acc.(i) <- acc.(i) + v) sp.Fspan.phases)
      tail;
    let worst, parts = tail_split acc in
    Buffer.add_string buf
      (Printf.sprintf "tail: for p99 requests (>= %.3f us, n=%d), p99 is %s\n"
         (us p99) (List.length tail) (tail_split_string parts));
    Buffer.add_string buf
      (Printf.sprintf "verdict: %s dominates the fleet p99 tail\n" worst);
    (* Per-member view, capped deterministically. *)
    let members = by_member l in
    let shown =
      let rec take k = function
        | [] -> []
        | _ when k = 0 -> []
        | x :: tl -> x :: take (k - 1) tl
      in
      take member_cap members
    in
    Buffer.add_string buf
      (Printf.sprintf "per-member (top %d of %d by retained requests):\n"
         (List.length shown) (List.length members));
    Buffer.add_string buf
      (Printf.sprintf "  %-8s %8s %8s %6s %6s %6s %10s %10s\n" "member" "routed"
         "done" "shed" "hit" "cold" "mean_us" "p99_us");
    List.iter
      (fun m ->
        Buffer.add_string buf
          (Printf.sprintf "  %-8d %8d %8d %6d %6d %6d %10.3f %10.3f\n" m.member
             m.routed m.m_completed m.m_shed m.hits m.colds (m.m_mean_ps /. 1e6)
             (us m.m_p99_ps)))
      shown;
    Buffer.add_string buf (imbalance_line members);
    Buffer.add_string buf (conservation_line l);
    Buffer.add_char buf '\n';
    Buffer.contents buf
  end

(* --- Perfetto export: one process track for the balancer, one per member,
   with request/response flow arrows between them --- *)

let balancer_pid = 1
let member_pid m = m + 2
let resp_flow_base = 1 lsl 30

let meta_entry ~pid ~name what =
  Json.Obj
    [
      ("ph", Json.String "M");
      ("pid", Json.Int pid);
      ("name", Json.String what);
      ("args", Json.Obj [ ("name", Json.String name) ]);
    ]

let flow ~ph ~id ~pid ~ts ~name =
  Json.Obj
    ([
       ("ph", Json.String ph);
       ("id", Json.Int id);
       ("cat", Json.String name);
       ("name", Json.String name);
       ("pid", Json.Int pid);
       ("tid", Json.Int 0);
       ("ts", Json.Float (us ts));
     ]
    @ if ph = "f" then [ ("bp", Json.String "e") ] else [])

let span_args keep sp =
  ( "args",
    Json.Obj
      ([
         ("req", Json.Int sp.Fspan.req_id);
         ("user", Json.Int sp.Fspan.user);
         ("fn", Json.String sp.Fspan.fn);
         ("member", Json.Int sp.Fspan.member);
         ("outcome", Json.String (Fspan.outcome_name sp.Fspan.outcome));
         ("keep", Json.String keep);
       ]
      @ Array.to_list
          (Array.map
             (fun ph ->
               (Fspan.phase_name ph ^ "_us", Json.Float (us (Fspan.phase_ps sp ph))))
             Fspan.all_phases)) )

let chrome_json (l : Ftrace.loaded) =
  let members = Hashtbl.create 32 in
  List.iter
    (fun (_, sp) ->
      if sp.Fspan.member >= 0 then Hashtbl.replace members sp.Fspan.member ())
    l.Ftrace.spans;
  let procs =
    meta_entry ~pid:balancer_pid ~name:"fleet balancer" "process_name"
    :: (Hashtbl.fold
          (fun m () acc ->
            meta_entry ~pid:(member_pid m)
              ~name:(Printf.sprintf "fleet member %d" m)
              "process_name"
            :: acc)
          members []
       |> List.sort compare)
  in
  let out = ref [] in
  let push j = out := j :: !out in
  List.iter
    (fun (keep, sp) ->
      let args = span_args keep sp in
      (* The balancer-side slice covers the whole request. *)
      push
        (Json.Obj
           [
             ("ph", Json.String "X");
             ("name", Json.String sp.Fspan.fn);
             ("pid", Json.Int balancer_pid);
             ("tid", Json.Int 0);
             ("ts", Json.Float (us sp.Fspan.submit_ps));
             ("dur", Json.Float (us (Fspan.e2e_ps sp)));
             args;
           ]);
      if sp.Fspan.member >= 0 then begin
        let depart =
          sp.Fspan.submit_ps + Fspan.phase_ps sp Fspan.Balancer_queue
        in
        let arrive = depart + Fspan.phase_ps sp Fspan.Wire in
        let busy =
          Fspan.phase_ps sp Fspan.Member_queue
          + Fspan.phase_ps sp Fspan.Cold_start
          + Fspan.phase_ps sp Fspan.Service
        in
        push
          (Json.Obj
             [
               ("ph", Json.String "X");
               ( "name",
                 Json.String
                   (sp.Fspan.fn
                   ^ (if sp.Fspan.cold then " (cold)" else "")
                   ^
                   if sp.Fspan.outcome = Fspan.Shed_member then " (shed)" else "")
               );
               ("pid", Json.Int (member_pid sp.Fspan.member));
               ("tid", Json.Int 0);
               ("ts", Json.Float (us arrive));
               ("dur", Json.Float (us busy));
               args;
             ]);
        (* Request and response wire hops as flow arrows. *)
        push
          (flow ~ph:"s" ~id:sp.Fspan.req_id ~pid:balancer_pid ~ts:depart
             ~name:"req");
        push
          (flow ~ph:"f" ~id:sp.Fspan.req_id ~pid:(member_pid sp.Fspan.member)
             ~ts:arrive ~name:"req");
        push
          (flow
             ~ph:"s"
             ~id:(resp_flow_base + sp.Fspan.req_id)
             ~pid:(member_pid sp.Fspan.member)
             ~ts:(arrive + busy) ~name:"resp");
        push
          (flow
             ~ph:"f"
             ~id:(resp_flow_base + sp.Fspan.req_id)
             ~pid:balancer_pid ~ts:sp.Fspan.end_ps ~name:"resp")
      end
      else
        (* Shed at the balancer: an instant marker on its track. *)
        push
          (Json.Obj
             [
               ("ph", Json.String "i");
               ("s", Json.String "t");
               ("name", Json.String (sp.Fspan.fn ^ " (shed-lb)"));
               ("pid", Json.Int balancer_pid);
               ("tid", Json.Int 0);
               ("ts", Json.Float (us sp.Fspan.submit_ps));
               args;
             ]))
    l.Ftrace.spans;
  Json.to_string (Json.Obj [ ("traceEvents", Json.List (procs @ List.rev !out)) ])

(* --- blame profiles, matching the single-node Export conventions --- *)

let blame_json l =
  let rows =
    List.map
      (fun s ->
        let _, parts = tail_split s.tail_phase_ps in
        Json.Obj
          [
            ("fn", Json.String s.fn);
            ("count", Json.Int s.n);
            ("mean_us", Json.Float (s.mean_ps /. 1e6));
            ("p50_us", Json.Float (us s.p50_ps));
            ("p99_us", Json.Float (us s.p99_ps));
            ( "phase_mean_ns",
              Json.Obj
                (Array.to_list
                   (Array.map
                      (fun ph ->
                        ( Fspan.phase_name ph,
                          Json.Float (s.phase_mean_ps.(Fspan.phase_index ph) /. 1e3)
                        ))
                      Fspan.all_phases)) );
            ( "tail_share_pct",
              Json.Obj (List.map (fun (name, pct) -> (name, Json.Float pct)) parts)
            );
          ])
      (by_function l)
  in
  Json.to_string
    (Json.Obj
       [
         ("offered", Json.Int l.Ftrace.offered_total);
         ("retained", Json.Int (List.length l.Ftrace.spans));
         ("functions", Json.List rows);
       ])

let blame_csv l =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "fn,count,mean_us,p50_us,p99_us,phase,mean_ns,tail_share_pct\n";
  List.iter
    (fun s ->
      let tail_total = Array.fold_left ( + ) 0 s.tail_phase_ps in
      Array.iter
        (fun ph ->
          let i = Fspan.phase_index ph in
          let tail_pct =
            if tail_total = 0 then 0.0
            else 100.0 *. float_of_int s.tail_phase_ps.(i) /. float_of_int tail_total
          in
          Buffer.add_string buf
            (Printf.sprintf "%s,%d,%.4f,%.4f,%.4f,%s,%.2f,%.2f\n" s.fn s.n
               (s.mean_ps /. 1e6) (us s.p50_ps) (us s.p99_ps) (Fspan.phase_name ph)
               (s.phase_mean_ps.(i) /. 1e3)
               tail_pct))
        Fspan.all_phases)
    (by_function l);
  Buffer.contents buf
