(** Deterministic tail-based sampler over fleet spans.

    Retention is a pure function of request ids, never of wall order:
    always-keep rules (the caller tags shed/failed/cold/SLO-violating
    spans, the rollup pins window exemplars) plus a seeded bottom-k
    head-sample — the [reservoir] ids with the smallest SplitMix64 hash of
    (seed, req_id) survive. Offering the same id set in any order yields
    the same retained set, which is what makes fleet trace files
    byte-identical at any [--shards] count. *)

type t

val default_seed : int
val default_reservoir : int

val create : ?seed:int -> ?reservoir:int -> unit -> t
(** [reservoir] bounds the head-sample only; rule-kept spans are always
    retained on top of it. [reservoir = 0] keeps rule-kept spans only. *)

val seed : t -> int
val reservoir : t -> int

val hash64 : seed:int -> id:int -> int64
(** The sampling draw (exposed for the determinism property tests). *)

val offer : t -> ?keep:string -> Fspan.t -> unit
(** Offer one finished span, at most once per request id. [keep] names an
    always-keep rule ("shed", "cold-start", "slo", ...); without it the
    span competes for a head-sample slot. *)

val pin : t -> reason:string -> Fspan.t -> unit
(** Force-retain a span after it was offered (rollup window exemplars).
    The first reason for an id wins; pinning is idempotent. *)

val offered : t -> int
(** Spans offered so far (the run's decided-request count). *)

val retained : t -> (string * Fspan.t) list
(** The final retained set as [(keep_reason, span)], sorted by request id
    — the canonical order fleet trace files are written in. *)
