(* Deterministic tail-based sampling for fleet spans.

   A 10^6-request population run cannot retain every span, so retention is
   decided per request, never per wall-clock order:

   - Always-keep rules (decided by the caller at completion time): shed,
     failed, cold-start and SLO-violating requests, plus exemplars pinned
     by the rollup at window close.
   - A seeded head-sample *reservoir*: the [reservoir] requests whose
     SplitMix64 hash of (seed, req_id) is smallest (a bottom-k sketch).
     Membership is a pure function of the id set — not of arrival or
     completion interleaving — so the retained set is byte-identical at
     any --shards count even though completions at equal timestamps may
     drain in different orders. *)

let default_seed = 0x6a726466 (* "jrdf" *)
let default_reservoir = 512

(* SplitMix64 finalizer over seed ⊕ id — the same mixer the traffic layer
   uses for user hashing, giving a uniform, seed-keyed draw per request. *)
let hash64 ~seed ~id =
  let open Int64 in
  let z = add (of_int (id + 1)) (mul (of_int (seed + 1)) 0x9E3779B97F4A7C15L) in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

(* Max-heap over (hash, id) with unsigned hash order: the root is the
   entry to evict when a smaller hash arrives. *)
type entry = { h : int64; id : int; sp : Fspan.t }

let entry_gt a b =
  let c = Int64.unsigned_compare a.h b.h in
  c > 0 || (c = 0 && a.id > b.id)

type t = {
  seed : int;
  reservoir : int;
  heap : entry array;  (* 0..size-1 live *)
  mutable size : int;
  pinned : (int, string * Fspan.t) Hashtbl.t;  (* req_id -> reason, span *)
  mutable offered : int;
}

let dummy =
  {
    h = 0L;
    id = -1;
    sp =
      {
        Fspan.req_id = -1;
        user = -1;
        fn = "";
        member = -1;
        lb_hit = false;
        cold = false;
        outcome = Fspan.Completed;
        submit_ps = 0;
        end_ps = 0;
        phases = Array.make Fspan.phase_count 0;
      };
  }

let create ?(seed = default_seed) ?(reservoir = default_reservoir) () =
  if reservoir < 0 then invalid_arg "Fsampler.create: reservoir must be >= 0";
  {
    seed;
    reservoir;
    heap = Array.make (max 1 reservoir) dummy;
    size = 0;
    pinned = Hashtbl.create 64;
    offered = 0;
  }

let seed t = t.seed
let reservoir t = t.reservoir
let offered t = t.offered

let swap t i j =
  let tmp = t.heap.(i) in
  t.heap.(i) <- t.heap.(j);
  t.heap.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let p = (i - 1) / 2 in
    if entry_gt t.heap.(i) t.heap.(p) then begin
      swap t i p;
      sift_up t p
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let m = if l < t.size && entry_gt t.heap.(l) t.heap.(i) then l else i in
  let m = if r < t.size && entry_gt t.heap.(r) t.heap.(m) then r else m in
  if m <> i then begin
    swap t i m;
    sift_down t m
  end

let pin t ~reason sp =
  let id = sp.Fspan.req_id in
  if not (Hashtbl.mem t.pinned id) then Hashtbl.add t.pinned id (reason, sp)

let offer t ?keep sp =
  t.offered <- t.offered + 1;
  match keep with
  | Some reason -> pin t ~reason sp
  | None ->
      if t.reservoir > 0 then begin
        let e = { h = hash64 ~seed:t.seed ~id:sp.Fspan.req_id; id = sp.Fspan.req_id; sp } in
        if t.size < t.reservoir then begin
          t.heap.(t.size) <- e;
          t.size <- t.size + 1;
          sift_up t (t.size - 1)
        end
        else if entry_gt t.heap.(0) e then begin
          t.heap.(0) <- e;
          sift_down t 0
        end
      end

(* The final retained set, sorted by request id: pinned spans (rule keeps
   and exemplars) first in priority, then the reservoir survivors that were
   not pinned along the way. *)
let retained t =
  let out = Hashtbl.fold (fun _ (reason, sp) acc -> (reason, sp) :: acc) t.pinned [] in
  let out = ref out in
  for i = 0 to t.size - 1 do
    let e = t.heap.(i) in
    if not (Hashtbl.mem t.pinned e.id) then out := ("sampled", e.sp) :: !out
  done;
  List.sort (fun (_, a) (_, b) -> compare a.Fspan.req_id b.Fspan.req_id) !out
