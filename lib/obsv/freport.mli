(** Reports over a loaded fleet trace ({!Ftrace.loaded}).

    Fleet spans are flat — one record per request with six exclusive
    phases — so the critical-path question becomes phase *blame*: which
    phase owns the p99 tail, per entry function and per member, and how
    evenly the balancer spread the retained load. All statistics are over
    the retained (tail-sampled) span set; every report's headline says
    how many spans survived out of how many requests. *)

val conservation_ok : Ftrace.loaded -> bool
(** Every retained span satisfies {!Fspan.conservation_ok}. *)

val breakdown : Ftrace.loaded -> string
(** Per-phase latency attribution per entry function, with the
    conservation verdict. *)

val slowest : ?n:int -> Ftrace.loaded -> string
(** The [n] slowest retained completed requests with their phase splits
    (ties broken by request id). *)

val blame : Ftrace.loaded -> string
(** The fleet blame report: per-fn attribution and tail splits, the
    fleet-wide p99 verdict naming the dominant phase ("p99 is X%
    cold_start / Y% member_queue / ..."), the per-member table (top 16 by
    retained load, deterministic order) and the LB-imbalance summary. *)

val chrome_json : Ftrace.loaded -> string
(** Perfetto trace-event document: one process track for the balancer,
    one per member, request/response wire hops drawn as flow arrows. *)

val blame_json : Ftrace.loaded -> string
(** Per-function blame profile (phase means plus tail shares) as JSON. *)

val blame_csv : Ftrace.loaded -> string
(** Flat CSV per (function, phase), same column conventions as the
    single-node {!Export.blame_csv}. *)
