(** JSONL trace files — the interchange between [jordctl run --trace-out]
    and [jordctl trace].

    Line 1 is a header object ([jord_trace] version, emission totals,
    truncation flag, plus caller metadata such as [variant] and
    [orch_cores]); each further line is one event, oldest retained first.
    All times are integer picoseconds, so files round-trip exactly — the
    conservation identity survives save/load, unlike the Chrome export's
    float microseconds. *)

val format_version : int

val save :
  path:string -> ?meta:(string * Jord_util.Json.t) list -> Jord_faas.Trace.t -> unit
(** Write the retained window. [meta] is appended to the header object. *)

type loaded = {
  events : Jord_faas.Trace.event list;  (** Oldest first. *)
  truncated : bool;
  total_emitted : int;
  capacity : int;
  meta : Jord_util.Json.t;
}

val load : path:string -> (loaded, string) result

val orch_cores : loaded -> int list
(** The [orch_cores] header list ([[]] when absent). *)

val spans : loaded -> Span.result
(** Build the span forest from a loaded file (truncation propagated). *)
