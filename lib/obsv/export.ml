module Trace = Jord_faas.Trace
module Json = Jord_util.Json

(* Offline exporters over a loaded trace: the Chrome/Perfetto document with
   flow events (parent -> child spawns and cross-server hops), and JSON/CSV
   blame profiles per function. The live exporter for interactive runs is
   {!Jord_faas.Trace.to_chrome_json}; this one adds the causal arrows that
   need the span forest. *)

let us ps = float_of_int ps /. 1e6

(* Flow-id spaces: spawn flows use the child's req_id, hop flows an offset
   counter, so the two families never collide. *)
let hop_flow_base = 1 lsl 30

let metadata ~orch_cores events =
  let seen = Hashtbl.create 16 and sids = Hashtbl.create 4 in
  List.iter
    (fun (e : Trace.event) ->
      if e.Trace.core >= 0 then Hashtbl.replace seen (e.Trace.sid, e.Trace.core) ();
      Hashtbl.replace sids e.Trace.sid ())
    events;
  let meta ~pid ~name ?tid what =
    Json.Obj
      ([ ("ph", Json.String "M"); ("pid", Json.Int pid); ("name", Json.String what) ]
      @ (match tid with Some tid -> [ ("tid", Json.Int tid) ] | None -> [])
      @ [ ("args", Json.Obj [ ("name", Json.String name) ]) ])
  in
  let procs =
    Hashtbl.fold
      (fun sid () acc ->
        meta ~pid:(sid + 1) ~name:(Printf.sprintf "jord server %d" sid) "process_name"
        :: acc)
      sids []
  in
  let threads =
    Hashtbl.fold
      (fun (sid, core) () acc ->
        let name =
          if List.mem core orch_cores then Printf.sprintf "orchestrator (core %d)" core
          else Printf.sprintf "core %d" core
        in
        meta ~pid:(sid + 1) ~tid:core ~name "thread_name" :: acc)
      seen []
  in
  List.sort compare procs @ List.sort compare threads

let entry (e : Trace.event) =
  let common =
    [
      ("name", Json.String (e.Trace.fn ^ "/" ^ Trace.kind_name e.Trace.kind));
      ("pid", Json.Int (e.Trace.sid + 1));
      ("tid", Json.Int (Int.max 0 e.Trace.core));
      ("ts", Json.Float (us e.Trace.at_ps));
      ( "args",
        Json.Obj
          ([
             ("req", Json.Int e.Trace.req_id);
             ("root", Json.Int e.Trace.root_id);
             ("fn", Json.String e.Trace.fn);
           ]
          @ (if e.Trace.parent_id < 0 then []
             else [ ("parent", Json.Int e.Trace.parent_id) ])
          @ (if e.Trace.stall_ps = 0 then []
             else [ ("vm_stall_us", Json.Float (us e.Trace.stall_ps)) ])
          @ if e.Trace.detail = "" then []
            else [ ("detail", Json.String e.Trace.detail) ]) );
    ]
  in
  match e.Trace.kind with
  | Trace.Segment ->
      Json.Obj (("ph", Json.String "X") :: ("dur", Json.Float (us e.Trace.dur_ps)) :: common)
  | Trace.Alert ->
      (* Global instant markers: SLO fire/resolve transitions line up with
         every span track on the Perfetto timeline. *)
      Json.Obj
        (("ph", Json.String "i") :: ("s", Json.String "g")
        :: ("name", Json.String (Printf.sprintf "slo:%s:%s" e.Trace.fn e.Trace.detail))
        :: List.filter (fun (k, _) -> k <> "name") common)
  | Trace.ServerDown | Trace.ServerUp ->
      Json.Obj
        (("ph", Json.String "i") :: ("s", Json.String "g")
        :: ("name",
            Json.String
              (Printf.sprintf "server%d:%s" e.Trace.sid
                 (if e.Trace.kind = Trace.ServerDown then "down" else "up")))
        :: List.filter (fun (k, _) -> k <> "name") common)
  | _ -> Json.Obj (("ph", Json.String "i") :: ("s", Json.String "t") :: common)

let flow ~ph ~id ~pid ~tid ~ts ~name =
  Json.Obj
    ([
       ("ph", Json.String ph);
       ("id", Json.Int id);
       ("cat", Json.String name);
       ("name", Json.String name);
       ("pid", Json.Int pid);
       ("tid", Json.Int tid);
       ("ts", Json.Float (us ts));
     ]
    @ if ph = "f" then [ ("bp", Json.String "e") ] else [])

(* Spawn flows: an arrow from the parent's running segment at the child's
   birth to the child's first executor segment. *)
let spawn_flows (r : Span.result) =
  let out = ref [] in
  Span.iter_spans r (fun sp ->
      if sp.Span.parent_id >= 0 && sp.Span.born >= 0 then
        match Span.find r sp.Span.parent_id with
        | None -> ()
        | Some parent -> (
            let at_birth =
              List.find_opt
                (fun (s : Span.seg) -> s.Span.t0 <= sp.Span.born && sp.Span.born <= s.Span.t1)
                (Span.segments parent)
            in
            match (at_birth, Span.segments sp) with
            | Some pseg, first :: _ ->
                out :=
                  flow ~ph:"f" ~id:sp.Span.req_id ~pid:(first.Span.seg_sid + 1)
                    ~tid:first.Span.core ~ts:first.Span.t0 ~name:"spawn"
                  :: flow ~ph:"s" ~id:sp.Span.req_id ~pid:(pseg.Span.seg_sid + 1)
                       ~tid:pseg.Span.core ~ts:sp.Span.born ~name:"spawn"
                  :: !out
            | _ -> ()));
  List.rev !out

(* Hop flows: an arrow from each Forward event to the next Arrive of the
   same request (the wire transit, possibly to another server). *)
let hop_flows events =
  let pending = Hashtbl.create 16 in
  let seq = ref 0 in
  let out = ref [] in
  List.iter
    (fun (e : Trace.event) ->
      match e.Trace.kind with
      | Trace.Forward ->
          incr seq;
          let id = hop_flow_base + !seq in
          Hashtbl.replace pending e.Trace.req_id id;
          out :=
            flow ~ph:"s" ~id ~pid:(e.Trace.sid + 1) ~tid:(Int.max 0 e.Trace.core)
              ~ts:e.Trace.at_ps ~name:"hop"
            :: !out
      | Trace.Arrive -> (
          match Hashtbl.find_opt pending e.Trace.req_id with
          | None -> ()
          | Some id ->
              Hashtbl.remove pending e.Trace.req_id;
              out :=
                flow ~ph:"f" ~id ~pid:(e.Trace.sid + 1) ~tid:(Int.max 0 e.Trace.core)
                  ~ts:e.Trace.at_ps ~name:"hop"
                :: !out)
      | _ -> ())
    events;
  List.rev !out

let chrome_json ?(orch_cores = []) ~events (r : Span.result) =
  let evs =
    metadata ~orch_cores events
    @ List.map entry events
    @ spawn_flows r @ hop_flows events
  in
  Json.to_string (Json.Obj [ ("traceEvents", Json.List evs) ])

(* Blame profiles: per entry function, end-to-end phase means plus the mean
   critical-path blame. *)
let profile (r : Span.result) =
  let stats = Report.by_function r in
  let cp = Hashtbl.create 16 in
  List.iter
    (fun sp ->
      let b = Critical_path.of_root r sp in
      let n, acc =
        Option.value ~default:(0, Array.make Span.phase_count 0.0)
          (Hashtbl.find_opt cp sp.Span.fn)
      in
      Array.iteri
        (fun i v -> acc.(i) <- acc.(i) +. float_of_int v)
        b.Critical_path.phases;
      Hashtbl.replace cp sp.Span.fn (n + 1, acc))
    (Report.complete_roots r);
  List.map
    (fun (s : Report.fn_stats) ->
      let cp_mean =
        match Hashtbl.find_opt cp s.Report.fn with
        | Some (n, acc) when n > 0 -> Array.map (fun v -> v /. float_of_int n) acc
        | _ -> Array.make Span.phase_count 0.0
      in
      (s, cp_mean))
    stats

let blame_json (r : Span.result) =
  let rows =
    List.map
      (fun ((s : Report.fn_stats), cp_mean) ->
        let phases which arr =
          ( which,
            Json.Obj
              (Array.to_list
                 (Array.map
                    (fun ph ->
                      (Span.phase_name ph, Json.Float (arr.(Span.phase_index ph) /. 1e3)))
                    Span.all_phases)) )
        in
        Json.Obj
          [
            ("fn", Json.String s.Report.fn);
            ("count", Json.Int s.Report.n);
            ("mean_us", Json.Float (s.Report.mean_ps /. 1e6));
            ("p50_us", Json.Float (Report.us s.Report.p50_ps));
            ("p99_us", Json.Float (Report.us s.Report.p99_ps));
            phases "phase_mean_ns" s.Report.phase_mean_ps;
            phases "critical_path_mean_ns" cp_mean;
          ])
      (profile r)
  in
  Json.to_string
    (Json.Obj
       [
         ("truncated", Json.Bool r.Span.truncated);
         ("functions", Json.List rows);
       ])

let blame_csv (r : Span.result) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "fn,count,mean_us,p50_us,p99_us,phase,mean_ns,critical_path_ns\n";
  List.iter
    (fun ((s : Report.fn_stats), cp_mean) ->
      Array.iter
        (fun ph ->
          Buffer.add_string buf
            (Printf.sprintf "%s,%d,%.4f,%.4f,%.4f,%s,%.2f,%.2f\n" s.Report.fn
               s.Report.n
               (s.Report.mean_ps /. 1e6)
               (Report.us s.Report.p50_ps)
               (Report.us s.Report.p99_ps)
               (Span.phase_name ph)
               (s.Report.phase_mean_ps.(Span.phase_index ph) /. 1e3)
               (cp_mean.(Span.phase_index ph) /. 1e3)))
        Span.all_phases)
    (profile r);
  Buffer.contents buf
