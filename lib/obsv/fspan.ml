module Json = Jord_util.Json

(* Fleet request spans: one record per balancer-observed request, with the
   whole end-to-end latency attributed to exclusive integer-ps phases (the
   PR-5 conservation identity at datacenter scale). The fleet's request
   lifecycle is linear — balancer, wire, member, wire back — so the span is
   a flat record rather than a fan-out tree. *)

type phase =
  | Balancer_queue
  | Wire
  | Member_queue
  | Cold_start
  | Service
  | Response_wire

let phase_count = 6

let phase_index = function
  | Balancer_queue -> 0
  | Wire -> 1
  | Member_queue -> 2
  | Cold_start -> 3
  | Service -> 4
  | Response_wire -> 5

let all_phases =
  [| Balancer_queue; Wire; Member_queue; Cold_start; Service; Response_wire |]

let phase_name = function
  | Balancer_queue -> "balancer_queue"
  | Wire -> "wire"
  | Member_queue -> "member_queue"
  | Cold_start -> "cold_start"
  | Service -> "service"
  | Response_wire -> "response_wire"

(* Short JSONL keys, one per phase, in [all_phases] order. *)
let phase_keys = [| "bq"; "w"; "mq"; "cs"; "sv"; "rw" |]

type outcome = Completed | Shed_lb | Shed_member

let outcome_name = function
  | Completed -> "ok"
  | Shed_lb -> "shed-lb"
  | Shed_member -> "shed-member"

let outcome_of_name = function
  | "ok" -> Some Completed
  | "shed-lb" -> Some Shed_lb
  | "shed-member" -> Some Shed_member
  | _ -> None

type t = {
  req_id : int;  (* arrival index: deterministic at any shard count *)
  user : int;
  fn : string;  (* entry function the user hashed to *)
  member : int;  (* serving member; -1 when shed at the balancer *)
  lb_hit : bool;  (* affinity warm-route hit *)
  cold : bool;  (* the member paid a cold start *)
  outcome : outcome;
  submit_ps : int;  (* arrival at the balancer *)
  end_ps : int;  (* completion (or shed decision) at the balancer *)
  phases : int array;  (* indexed by [phase_index], length [phase_count] *)
}

let e2e_ps sp = sp.end_ps - sp.submit_ps
let phase_ps sp ph = sp.phases.(phase_index ph)
let sum_phases sp = Array.fold_left ( + ) 0 sp.phases

(* The conservation identity: phases are exclusive and exhaustive, so their
   exact integer sum must equal the end-to-end latency. A violation means
   the fleet plumbing mis-stamped an event — a tool bug, never data. *)
let conservation_ok sp =
  sum_phases sp = e2e_ps sp && Array.for_all (fun v -> v >= 0) sp.phases

let to_json_line ~keep sp =
  let buf = Buffer.create 160 in
  Buffer.add_string buf
    (Printf.sprintf "{\"r\":%d,\"u\":%d,\"f\":\"%s\",\"m\":%d,\"o\":\"%s\""
       sp.req_id sp.user (Json.escape sp.fn) sp.member (outcome_name sp.outcome));
  if sp.lb_hit then Buffer.add_string buf ",\"hit\":1";
  if sp.cold then Buffer.add_string buf ",\"cold\":1";
  Buffer.add_string buf (Printf.sprintf ",\"t\":%d,\"e\":%d" sp.submit_ps sp.end_ps);
  Array.iteri
    (fun i key ->
      if sp.phases.(i) <> 0 then
        Buffer.add_string buf (Printf.sprintf ",\"%s\":%d" key sp.phases.(i)))
    phase_keys;
  Buffer.add_string buf (Printf.sprintf ",\"keep\":\"%s\"}" (Json.escape keep));
  Buffer.contents buf

let int_member ?(default = 0) key j =
  match Json.member key j with Some (Json.Int i) -> i | _ -> default

let str_member ?(default = "") key j =
  match Json.member key j with Some (Json.String s) -> s | _ -> default

let of_json j =
  let oname = str_member "o" j in
  match outcome_of_name oname with
  | None -> Error (Printf.sprintf "unknown span outcome %S" oname)
  | Some outcome ->
      Ok
        ( str_member ~default:"sampled" "keep" j,
          {
            req_id = int_member "r" j;
            user = int_member "u" j;
            fn = str_member "f" j;
            member = int_member ~default:(-1) "m" j;
            lb_hit = int_member "hit" j = 1;
            cold = int_member "cold" j = 1;
            outcome;
            submit_ps = int_member "t" j;
            end_ps = int_member "e" j;
            phases = Array.map (fun key -> int_member key j) phase_keys;
          } )
