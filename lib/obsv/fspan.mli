(** Fleet request spans with exact integer-ps phase attribution.

    Every fleet request — completed or shed — gets one span whose
    end-to-end latency decomposes into six exclusive phases: time queued at
    the balancer, the request wire hop, the member queue, the cold start,
    service, and the response wire hop. The route decision itself is an
    instant (it happens at the arrival event), so it carries no phase of
    its own. As with {!Span}, the phases are built from independent event
    timestamps, and {!conservation_ok} checks that they sum exactly to the
    end-to-end latency — the qcheck-enforced identity that catches any
    mis-stamped cross-shard message. *)

type phase =
  | Balancer_queue  (** Arrival to route decision (0 in the current LB). *)
  | Wire  (** Balancer -> member one-way hop. *)
  | Member_queue  (** Delivery to service start at the member. *)
  | Cold_start  (** PD/VMA warm-up charged when the entry was cold. *)
  | Service  (** Calibrated compute (jittered). *)
  | Response_wire  (** Member -> balancer one-way hop. *)

val phase_count : int
val phase_index : phase -> int
val all_phases : phase array
val phase_name : phase -> string

type outcome =
  | Completed
  | Shed_lb  (** No routable server: the span never left the balancer. *)
  | Shed_member  (** Queue-full drop: wire hops only. *)

val outcome_name : outcome -> string

type t = {
  req_id : int;  (** Arrival index — identical at any [--shards] count. *)
  user : int;
  fn : string;
  member : int;  (** -1 when shed at the balancer. *)
  lb_hit : bool;
  cold : bool;
  outcome : outcome;
  submit_ps : int;
  end_ps : int;
  phases : int array;  (** By {!phase_index}; length {!phase_count}. *)
}

val e2e_ps : t -> int
val phase_ps : t -> phase -> int
val sum_phases : t -> int

val conservation_ok : t -> bool
(** Phases are non-negative and sum exactly to [e2e_ps]. *)

val to_json_line : keep:string -> t -> string
(** One compact JSONL object (no trailing newline); [keep] is the
    retention reason recorded by the sampler. *)

val of_json : Jord_util.Json.t -> (string * t, string) result
(** Inverse of {!to_json_line}: [(keep_reason, span)]. *)
