module Trace = Jord_faas.Trace
module Sketch = Jord_telemetry.Sketch
module Json = Jord_util.Json

type transition = {
  tr_at_ps : int;
  tr_objective : string;
  tr_firing : bool;
  tr_window : int;
  tr_burn_fast : float;
  tr_burn_slow : float;
}

type window_summary = {
  w_index : int;
  w_total : int;
  w_bad : int;
  w_burn_fast : float;
  w_burn_slow : float;
  w_firing : bool;
}

(* One open tumbling window on one server: exact counts plus sketches of
   the completions that landed in it. *)
type win = {
  mutable total : int;
  mutable bad : int;
  mutable shed : int;
  lat : Sketch.t;
}

type closed = { c_total : int; c_bad : int }

type ostate = {
  obj : Slo.objective;
  open_wins : (int * int, win) Hashtbl.t;  (* (window index, sid) -> win *)
  mutable next_close : int;
  mutable recent : closed list;  (* newest first, length <= slow_windows *)
  mutable history : window_summary list;  (* newest first *)
  mutable firing : bool;
  mutable fired : int;
  mutable resolved : int;
  mutable completed : int;
  mutable shed : int;
  mutable bad : int;
  mutable e2e_sum_ps : int;
  phase_sum_ps : int array;
  all : Sketch.t;
  per_sid : (int, Sketch.t) Hashtbl.t;
  mutable windows_closed : int;
  mutable trans : transition list;  (* newest first *)
}

type tracked = { sp : Span.t; mutable decided : bool }

type t = {
  objs : ostate list;
  spans : (int, tracked) Hashtbl.t;
  kids : (int, int list) Hashtbl.t;
  mutable watermark : int;
  mutable tracer : Trace.t option;
  mutable finished : bool;
}

let create objectives =
  {
    objs =
      List.map
        (fun o ->
          {
            obj = o;
            open_wins = Hashtbl.create 16;
            next_close = 0;
            recent = [];
            history = [];
            firing = false;
            fired = 0;
            resolved = 0;
            completed = 0;
            shed = 0;
            bad = 0;
            e2e_sum_ps = 0;
            phase_sum_ps = Array.make Span.phase_count 0;
            all = Sketch.create ();
            per_sid = Hashtbl.create 4;
            trans = [];
            windows_closed = 0;
          })
        objectives;
    spans = Hashtbl.create 1024;
    kids = Hashtbl.create 256;
    watermark = 0;
    tracer = None;
    finished = false;
  }

let objectives t = List.map (fun os -> os.obj) t.objs

(* --- burn-rate evaluation --- *)

let burn_over obj windows =
  let rec take k = function
    | [] -> []
    | _ when k = 0 -> []
    | w :: rest -> w :: take (k - 1) rest
  in
  let frac ws =
    let total = List.fold_left (fun a w -> a + w.c_total) 0 ws in
    let bad = List.fold_left (fun a w -> a + w.c_bad) 0 ws in
    if total = 0 then (0.0, 0)
    else (float_of_int bad /. float_of_int total, bad)
  in
  let fast_frac, fast_bad = frac (take obj.Slo.fast_windows windows) in
  let slow_frac, _ = frac (take obj.Slo.slow_windows windows) in
  (fast_frac /. obj.Slo.budget, slow_frac /. obj.Slo.budget, fast_bad)

let emit_transition t os ~at_ps ~window ~firing ~burn_fast ~burn_slow =
  os.trans <-
    {
      tr_at_ps = at_ps;
      tr_objective = os.obj.Slo.name;
      tr_firing = firing;
      tr_window = window;
      tr_burn_fast = burn_fast;
      tr_burn_slow = burn_slow;
    }
    :: os.trans;
  if firing then os.fired <- os.fired + 1 else os.resolved <- os.resolved + 1;
  match t.tracer with
  | None -> ()
  | Some tr ->
      Trace.emit tr ~at_ps ~kind:Trace.Alert ~req_id:(-1) ~root_id:(-1)
        ~fn:os.obj.Slo.name ~core:(-1)
        ~detail:(if firing then "fire" else "resolve")
        ()

(* Close window [idx]: merge the member servers' sketches (ascending sid,
   though any order would do — Sketch merging is associative and
   commutative), push the burn history and run the alert rule. *)
let close_window t os idx =
  let sids =
    Hashtbl.fold
      (fun (w, sid) _ acc -> if w = idx then sid :: acc else acc)
      os.open_wins []
    |> List.sort compare
  in
  let total = ref 0 and bad = ref 0 in
  List.iter
    (fun sid ->
      let w = Hashtbl.find os.open_wins (idx, sid) in
      total := !total + w.total;
      bad := !bad + w.bad;
      Hashtbl.remove os.open_wins (idx, sid))
    sids;
  let rec cap k = function
    | [] -> []
    | _ when k = 0 -> []
    | w :: rest -> w :: cap (k - 1) rest
  in
  os.recent <- cap os.obj.Slo.slow_windows ({ c_total = !total; c_bad = !bad } :: os.recent);
  let burn_fast, burn_slow, fast_bad = burn_over os.obj os.recent in
  let should_fire =
    burn_fast >= os.obj.Slo.burn_threshold
    && burn_slow >= os.obj.Slo.burn_threshold
    && fast_bad > 0
  in
  if should_fire <> os.firing then begin
    os.firing <- should_fire;
    emit_transition t os
      ~at_ps:((idx + 1) * os.obj.Slo.window_ps)
      ~window:idx ~firing:should_fire ~burn_fast ~burn_slow
  end;
  os.history <-
    {
      w_index = idx;
      w_total = !total;
      w_bad = !bad;
      w_burn_fast = burn_fast;
      w_burn_slow = burn_slow;
      w_firing = os.firing;
    }
    :: os.history;
  os.windows_closed <- os.windows_closed + 1;
  os.next_close <- idx + 1

let close_due t =
  List.iter
    (fun os ->
      while (os.next_close + 1) * os.obj.Slo.window_ps <= t.watermark do
        close_window t os os.next_close
      done)
    t.objs

(* --- recording decided roots --- *)

let matches os (sp : Span.t) =
  match os.obj.Slo.fn with None -> true | Some fn -> fn = sp.Span.fn

let win_for os ~idx ~sid =
  match Hashtbl.find_opt os.open_wins (idx, sid) with
  | Some w -> w
  | None ->
      let w = { total = 0; bad = 0; shed = 0; lat = Sketch.create () } in
      Hashtbl.add os.open_wins (idx, sid) w;
      w

let record_completion t (sp : Span.t) =
  let e2e = Span.e2e_ps sp in
  List.iter
    (fun os ->
      if matches os sp then begin
        let idx = sp.Span.end_ps / os.obj.Slo.window_ps in
        let w = win_for os ~idx ~sid:sp.Span.sid in
        (* Availability objectives only charge shed/failed roots to the
           budget: a completed request is available regardless of latency. *)
        let is_bad =
          match os.obj.Slo.kind with
          | Slo.Availability -> false
          | Slo.Latency -> e2e > os.obj.Slo.threshold_ps
        in
        w.total <- w.total + 1;
        if is_bad then w.bad <- w.bad + 1;
        Sketch.add w.lat e2e;
        os.completed <- os.completed + 1;
        if is_bad then os.bad <- os.bad + 1;
        os.e2e_sum_ps <- os.e2e_sum_ps + e2e;
        Array.iteri
          (fun i v -> os.phase_sum_ps.(i) <- os.phase_sum_ps.(i) + v)
          sp.Span.phases;
        Sketch.add os.all e2e;
        let per =
          match Hashtbl.find_opt os.per_sid sp.Span.sid with
          | Some s -> s
          | None ->
              let s = Sketch.create () in
              Hashtbl.add os.per_sid sp.Span.sid s;
              s
        in
        Sketch.add per e2e
      end)
    t.objs

(* Shed roots (queue-full drops, deadline timeouts) never complete but do
   consume error budget: bad with no latency observation, in the window of
   the shedding instant. *)
let record_shed t (sp : Span.t) ~at_ps =
  List.iter
    (fun os ->
      if matches os sp then begin
        let idx = at_ps / os.obj.Slo.window_ps in
        let w = win_for os ~idx ~sid:sp.Span.sid in
        w.total <- w.total + 1;
        w.bad <- w.bad + 1;
        w.shed <- w.shed + 1;
        os.shed <- os.shed + 1;
        os.bad <- os.bad + 1
      end)
    t.objs

let rec forget t req_id =
  Hashtbl.remove t.spans req_id;
  match Hashtbl.find_opt t.kids req_id with
  | None -> ()
  | Some kids ->
      Hashtbl.remove t.kids req_id;
      List.iter (forget t) kids

let is_root (sp : Span.t) = sp.Span.parent_id < 0 && sp.Span.req_id = sp.Span.root_id

let observe t (e : Trace.event) =
  if e.Trace.req_id >= 0 then begin
    if e.Trace.at_ps > t.watermark then begin
      t.watermark <- e.Trace.at_ps;
      close_due t
    end;
    let tracked =
      match Hashtbl.find_opt t.spans e.Trace.req_id with
      | Some tr -> tr
      | None ->
          let tr = { sp = Span.fresh e; decided = false } in
          Hashtbl.add t.spans e.Trace.req_id tr;
          if e.Trace.parent_id >= 0 then
            Hashtbl.replace t.kids e.Trace.parent_id
              (e.Trace.req_id
              :: Option.value ~default:[] (Hashtbl.find_opt t.kids e.Trace.parent_id));
          tr
    in
    Span.feed tracked.sp e;
    if (not tracked.decided) && is_root tracked.sp then
      if tracked.sp.Span.state = Span.Done && Span.complete tracked.sp then begin
        tracked.decided <- true;
        record_completion t tracked.sp;
        forget t e.Trace.req_id
      end
      else if tracked.sp.Span.dead then begin
        tracked.decided <- true;
        record_shed t tracked.sp ~at_ps:e.Trace.at_ps;
        forget t e.Trace.req_id
      end
  end

let attach t tracer =
  t.tracer <- Some tracer;
  Trace.set_sink tracer (Some (observe t))

let finish t ~now_ps =
  if not t.finished then begin
    t.finished <- true;
    if now_ps > t.watermark then t.watermark <- now_ps;
    close_due t;
    (* Close the final partial window so end-of-run reports include it. *)
    List.iter
      (fun os ->
        if os.next_close * os.obj.Slo.window_ps <= t.watermark then
          close_window t os os.next_close)
      t.objs
  end

let replay ~objectives ?finish_ps events =
  let t = create objectives in
  let last = ref 0 in
  List.iter
    (fun (e : Trace.event) ->
      if e.Trace.at_ps > !last then last := e.Trace.at_ps;
      observe t e)
    events;
  finish t ~now_ps:(match finish_ps with Some ps -> ps | None -> !last);
  t

(* --- snapshots --- *)

type objective_snapshot = {
  s_objective : Slo.objective;
  s_completed : int;
  s_shed : int;
  s_bad : int;
  s_e2e_sum_ps : int;
  s_phase_sum_ps : int array;
  s_sketch : Sketch.t;
  s_quantile_ps : int;
  s_windows_closed : int;
  s_fired : int;
  s_resolved : int;
  s_firing : bool;
  s_transitions : transition list;
  s_windows : window_summary list;
  s_per_sid : (int * Sketch.t) list;
}

let snapshot t =
  List.map
    (fun os ->
      {
        s_objective = os.obj;
        s_completed = os.completed;
        s_shed = os.shed;
        s_bad = os.bad;
        s_e2e_sum_ps = os.e2e_sum_ps;
        s_phase_sum_ps = Array.copy os.phase_sum_ps;
        s_sketch = Sketch.copy os.all;
        s_quantile_ps = Sketch.quantile os.all os.obj.Slo.percentile;
        s_windows_closed = os.windows_closed;
        s_fired = os.fired;
        s_resolved = os.resolved;
        s_firing = os.firing;
        s_transitions = List.rev os.trans;
        s_windows = List.rev os.history;
        s_per_sid =
          Hashtbl.fold (fun sid s acc -> (sid, Sketch.copy s) :: acc) os.per_sid []
          |> List.sort (fun (a, _) (b, _) -> compare a b);
      })
    t.objs

let transitions t =
  List.concat_map (fun os -> List.rev os.trans) t.objs
  |> List.sort (fun a b ->
         compare (a.tr_at_ps, a.tr_objective) (b.tr_at_ps, b.tr_objective))

(* --- telemetry --- *)

let register_metrics t ?(labels = []) registry =
  let module R = Jord_telemetry.Registry in
  List.iter
    (fun os ->
      let l = labels @ [ ("slo", os.obj.Slo.name) ] in
      let c name help f = R.counter_fn registry ~help ~labels:l name f in
      let g name help f = R.gauge_fn registry ~help ~labels:l name f in
      c "jord_slo_requests_total" "Roots decided against this objective"
        (fun () -> float_of_int (os.completed + os.shed));
      c "jord_slo_bad_total" "Budget-consuming requests (over threshold or shed)"
        (fun () -> float_of_int os.bad);
      c "jord_slo_shed_total" "Shed roots charged to the objective" (fun () ->
          float_of_int os.shed);
      c "jord_slo_windows_closed_total" "Tumbling windows evaluated" (fun () ->
          float_of_int os.windows_closed);
      c "jord_slo_alerts_fired_total" "Burn-rate alert firings" (fun () ->
          float_of_int os.fired);
      c "jord_slo_alerts_resolved_total" "Burn-rate alert resolutions" (fun () ->
          float_of_int os.resolved);
      g "jord_slo_firing" "1 while the alert is firing" (fun () ->
          if os.firing then 1.0 else 0.0);
      g "jord_slo_budget_remaining_ratio"
        "Share of the error budget not yet consumed" (fun () ->
          let total = os.completed + os.shed in
          if total = 0 then 1.0
          else
            Float.max 0.0
              (1.0
              -. float_of_int os.bad
                 /. (os.obj.Slo.budget *. float_of_int total))))
    t.objs

(* --- rendering --- *)

let us ps = float_of_int ps /. 1e6

let verdict_row s =
  let o = s.s_objective in
  let total = s.s_completed + s.s_shed in
  let budget_used =
    if total = 0 then 0.0
    else float_of_int s.s_bad /. (o.Slo.budget *. float_of_int total) *. 100.0
  in
  [
    o.Slo.name;
    (match o.Slo.fn with None -> "*" | Some fn -> fn);
    (match o.Slo.kind with
    | Slo.Latency ->
        Printf.sprintf "p%g<%.1fus" o.Slo.percentile (us o.Slo.threshold_ps)
    | Slo.Availability ->
        Printf.sprintf "avail>=%g%%" (100.0 *. (1.0 -. o.Slo.budget)));
    string_of_int total;
    string_of_int s.s_bad;
    string_of_int s.s_shed;
    (match o.Slo.kind with
    | Slo.Latency ->
        if s.s_completed = 0 then "-"
        else Printf.sprintf "%.3f" (us s.s_quantile_ps)
    | Slo.Availability ->
        if total = 0 then "-"
        else
          Printf.sprintf "%.3f%%"
            (100.0 *. float_of_int (total - s.s_bad) /. float_of_int total));
    Printf.sprintf "%.1f%%" budget_used;
    string_of_int s.s_windows_closed;
    Printf.sprintf "%d/%d" s.s_fired s.s_resolved;
    (if s.s_firing then "FIRING"
     else if s.s_completed = 0 && s.s_shed = 0 then "no-data"
     else
       match o.Slo.kind with
       | Slo.Availability -> if budget_used <= 100.0 then "met" else "VIOLATED"
       | Slo.Latency ->
           if s.s_quantile_ps <= o.Slo.threshold_ps && budget_used <= 100.0
           then "met"
           else "VIOLATED");
  ]

let transition_line tr =
  Printf.sprintf "%12.3fus %-7s %-16s window=%-4d burn fast=%.2f slow=%.2f"
    (us tr.tr_at_ps)
    (if tr.tr_firing then "FIRE" else "resolve")
    tr.tr_objective tr.tr_window tr.tr_burn_fast tr.tr_burn_slow

let alerts_text t =
  match transitions t with
  | [] -> "no alert transitions\n"
  | trs -> String.concat "\n" (List.map transition_line trs) ^ "\n"

let report_text t =
  let buf = Buffer.create 2048 in
  let snaps = snapshot t in
  Buffer.add_string buf
    (Jord_util.Render.table
       ~title:(Printf.sprintf "SLO report (%d objectives)" (List.length snaps))
       ~header:
         [
           "objective"; "fn"; "target"; "requests"; "bad"; "shed"; "measured_us";
           "budget_used"; "windows"; "fire/res"; "state";
         ]
       ~rows:(List.map verdict_row snaps) ());
  List.iter
    (fun s ->
      Buffer.add_string buf
        (Printf.sprintf "%s: %s\n" s.s_objective.Slo.name
           (Slo.describe s.s_objective)))
    snaps;
  Buffer.add_string buf "alerts:\n";
  Buffer.add_string buf
    (match transitions t with
    | [] -> "  none\n"
    | trs -> String.concat "\n" (List.map (fun tr -> "  " ^ transition_line tr) trs) ^ "\n");
  Buffer.contents buf

let burn_text t =
  let buf = Buffer.create 2048 in
  List.iter
    (fun s ->
      let o = s.s_objective in
      Buffer.add_string buf
        (Jord_util.Render.table
           ~title:
             (Printf.sprintf "burn rate: %s (%s)" o.Slo.name (Slo.describe o))
           ~header:
             [ "window"; "start_us"; "end_us"; "total"; "bad"; "burn_fast";
               "burn_slow"; "state" ]
           ~rows:
             (List.map
                (fun w ->
                  [
                    string_of_int w.w_index;
                    Printf.sprintf "%.1f" (us (w.w_index * o.Slo.window_ps));
                    Printf.sprintf "%.1f" (us ((w.w_index + 1) * o.Slo.window_ps));
                    string_of_int w.w_total;
                    string_of_int w.w_bad;
                    Printf.sprintf "%.2f" w.w_burn_fast;
                    Printf.sprintf "%.2f" w.w_burn_slow;
                    (if w.w_firing then "FIRING" else "ok");
                  ])
                s.s_windows) ());
      Buffer.add_string buf
        (Printf.sprintf "burn_fast: %s\n\n"
           (Jord_util.Render.sparkline
              (List.map (fun w -> w.w_burn_fast) s.s_windows))))
    (snapshot t);
  Buffer.contents buf

let transition_json tr =
  Json.Obj
    [
      ("at_us", Json.Float (us tr.tr_at_ps));
      ("objective", Json.String tr.tr_objective);
      ("transition", Json.String (if tr.tr_firing then "fire" else "resolve"));
      ("window", Json.Int tr.tr_window);
      ("burn_fast", Json.Float tr.tr_burn_fast);
      ("burn_slow", Json.Float tr.tr_burn_slow);
    ]

let alerts_json t =
  Json.to_string
    (Json.Obj
       [
         ("jord_slo_alerts", Json.Int 1);
         ("alerts", Json.List (List.map transition_json (transitions t)));
       ])

let report_json t =
  let snaps = snapshot t in
  let obj_json s =
    let o = s.s_objective in
    Json.Obj
      [
        ("name", Json.String o.Slo.name);
        ("spec", Json.String (Slo.to_string o));
        ("completed", Json.Int s.s_completed);
        ("shed", Json.Int s.s_shed);
        ("bad", Json.Int s.s_bad);
        ("e2e_sum_ps", Json.Int s.s_e2e_sum_ps);
        ( "phase_sum_ps",
          Json.Obj
            (Array.to_list
               (Array.map
                  (fun ph ->
                    ( Span.phase_name ph,
                      Json.Int s.s_phase_sum_ps.(Span.phase_index ph) ))
                  Span.all_phases)) );
        ("measured_quantile_us", Json.Float (us s.s_quantile_ps));
        ("threshold_us", Json.Float (us o.Slo.threshold_ps));
        ("windows_closed", Json.Int s.s_windows_closed);
        ("alerts_fired", Json.Int s.s_fired);
        ("alerts_resolved", Json.Int s.s_resolved);
        ("firing", Json.Bool s.s_firing);
      ]
  in
  Json.to_string
    (Json.Obj
       [
         ("jord_slo_report", Json.Int 1);
         ("objectives", Json.List (List.map obj_json snaps));
         ("alerts", Json.List (List.map transition_json (transitions t)));
       ])

let burn_csv t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "objective,window,start_us,end_us,total,bad,burn_fast,burn_slow,firing\n";
  List.iter
    (fun s ->
      let o = s.s_objective in
      List.iter
        (fun w ->
          Buffer.add_string buf
            (Printf.sprintf "%s,%d,%.3f,%.3f,%d,%d,%.4f,%.4f,%d\n" o.Slo.name
               w.w_index
               (us (w.w_index * o.Slo.window_ps))
               (us ((w.w_index + 1) * o.Slo.window_ps))
               w.w_total w.w_bad w.w_burn_fast w.w_burn_slow
               (if w.w_firing then 1 else 0)))
        s.s_windows)
    (snapshot t);
  Buffer.contents buf
