module Trace = Jord_faas.Trace
module Json = Jord_util.Json

(* JSONL trace files: one header object, then one compact object per event,
   oldest retained first. All times are integer picoseconds — the format
   round-trips exactly (the Chrome export's float microseconds do not),
   which the conservation checks depend on. *)

let format_version = 1

let save ~path ?(meta = []) tr =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let header =
        Json.Obj
          ([
             ("jord_trace", Json.Int format_version);
             ("total_emitted", Json.Int (Trace.total_emitted tr));
             ("capacity", Json.Int (Trace.capacity tr));
             ("truncated", Json.Bool (Trace.truncated tr));
           ]
          @ meta)
      in
      output_string oc (Json.to_string header);
      output_char oc '\n';
      let buf = Buffer.create 256 in
      Trace.iter tr (fun e ->
          Buffer.clear buf;
          Buffer.add_string buf
            (Printf.sprintf "{\"a\":%d,\"k\":\"%s\",\"r\":%d,\"g\":%d" e.Trace.at_ps
               (Trace.kind_name e.Trace.kind)
               e.Trace.req_id e.Trace.root_id);
          if e.Trace.parent_id >= 0 then
            Buffer.add_string buf (Printf.sprintf ",\"p\":%d" e.Trace.parent_id);
          Buffer.add_string buf
            (Printf.sprintf ",\"f\":\"%s\",\"c\":%d" (Json.escape e.Trace.fn)
               e.Trace.core);
          if e.Trace.sid <> 0 then
            Buffer.add_string buf (Printf.sprintf ",\"s\":%d" e.Trace.sid);
          if e.Trace.dur_ps <> 0 then
            Buffer.add_string buf (Printf.sprintf ",\"d\":%d" e.Trace.dur_ps);
          if e.Trace.stall_ps <> 0 then
            Buffer.add_string buf (Printf.sprintf ",\"v\":%d" e.Trace.stall_ps);
          if e.Trace.detail <> "" then
            Buffer.add_string buf
              (Printf.sprintf ",\"x\":\"%s\"" (Json.escape e.Trace.detail));
          Buffer.add_string buf "}\n";
          Buffer.output_buffer oc buf))

type loaded = {
  events : Trace.event list;  (** Oldest first. *)
  truncated : bool;
  total_emitted : int;
  capacity : int;
  meta : Json.t;  (** The whole header object. *)
}

let int_member ?(default = 0) key j =
  match Json.member key j with Some (Json.Int i) -> i | _ -> default

let str_member ?(default = "") key j =
  match Json.member key j with Some (Json.String s) -> s | _ -> default

let event_of_json j =
  let kind_name = str_member "k" j in
  match Trace.kind_of_name kind_name with
  | None -> Error (Printf.sprintf "unknown event kind %S" kind_name)
  | Some kind ->
      Ok
        {
          Trace.at_ps = int_member "a" j;
          kind;
          req_id = int_member "r" j;
          root_id = int_member "g" j;
          parent_id = int_member ~default:(-1) "p" j;
          fn = str_member "f" j;
          core = int_member "c" j;
          sid = int_member "s" j;
          dur_ps = int_member "d" j;
          stall_ps = int_member "v" j;
          detail = str_member "x" j;
        }

let load ~path =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          let parse_line n line =
            match Json.of_string line with
            | Error msg -> Error (Printf.sprintf "%s:%d: %s" path n msg)
            | Ok j -> Ok j
          in
          match input_line ic with
          | exception End_of_file -> Error (path ^ ": empty trace file")
          | first -> (
              match parse_line 1 first with
              | Error _ as e -> e
              | Ok header when Json.member "jord_trace" header = None ->
                  Error (path ^ ": not a jord trace file (missing jord_trace header)")
              | Ok header ->
                  let rec go n acc =
                    match input_line ic with
                    | exception End_of_file -> Ok (List.rev acc)
                    | "" -> go (n + 1) acc
                    | line -> (
                        match parse_line n line with
                        | Error _ as e -> e
                        | Ok j -> (
                            match event_of_json j with
                            | Error msg ->
                                Error (Printf.sprintf "%s:%d: %s" path n msg)
                            | Ok e -> go (n + 1) (e :: acc)))
                  in
                  Result.map
                    (fun events ->
                      {
                        events;
                        truncated =
                          (match Json.member "truncated" header with
                          | Some (Json.Bool b) -> b
                          | _ -> false);
                        total_emitted = int_member "total_emitted" header;
                        capacity = int_member "capacity" header;
                        meta = header;
                      })
                    (go 2 [])))

let orch_cores loaded =
  match Json.member "orch_cores" loaded.meta with
  | Some (Json.List l) ->
      List.filter_map (function Json.Int i -> Some i | _ -> None) l
  | _ -> []

let spans loaded =
  Span.build ~truncated:loaded.truncated (fun f -> List.iter f loaded.events)
