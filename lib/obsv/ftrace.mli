(** Fleet tracer: deterministic tail sampling plus SLO exemplar pinning.

    Owns an {!Fsampler} and listens to the rollup's exemplar events so
    that every exemplar trace id named by a verdict table is guaranteed to
    be present in the saved trace file. The fleet records each finished
    span (with its always-keep rule, if any) immediately before feeding
    the request to {!Rollup.observe}; wire {!on_exemplar} to
    {!Rollup.set_exemplar_hook} to complete the loop. *)

type t

val create : ?seed:int -> ?reservoir:int -> unit -> t
val seed : t -> int
val reservoir : t -> int

val offered : t -> int
(** Spans recorded so far (the run's decided-request count). *)

val record : t -> ?keep:string -> Fspan.t -> unit
(** Record one finished span, staging it for exemplar capture and
    offering it to the sampler. Call at most once per request id,
    immediately before the matching {!Rollup.observe}. *)

val on_exemplar : t -> Rollup.exemplar_event -> unit
(** Parks window-max candidates and pins promoted exemplars (retention
    reason ["exemplar"]). *)

val retained : t -> (string * Fspan.t) list
(** Final retained set as [(keep_reason, span)], sorted by request id. *)

val retained_ids : t -> int list

val keep_counts : t -> (string * int) list
(** Census of retention reasons, sorted by reason name. *)

val save : path:string -> ?meta:(string * Jord_util.Json.t) list -> t -> unit
(** Write the retained set as JSONL: a header object carrying
    ["jord_fleet_trace"], offered/retained counts, sampler seed and
    reservoir plus [meta], then one compact span object per line. *)

type loaded = {
  spans : (string * Fspan.t) list;  (** [(keep_reason, span)], by req id. *)
  offered_total : int;
  meta : Jord_util.Json.t;  (** The whole header object. *)
}

val load : path:string -> (loaded, string) result

val is_fleet_file : path:string -> bool
(** Peek at the first line: is this a fleet trace file (as opposed to a
    single-node {!Tracefile})? Missing or unreadable files are [false]. *)
