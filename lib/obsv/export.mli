(** Offline exporters over a loaded trace.

    [chrome_json] produces a Chrome/Perfetto [traceEvents] document with
    [ph:"M"] process/thread metadata and [ph:"s"]/[ph:"f"] flow arrows for
    parent->child spawns (flow id = child request id) and forward->arrive
    wire hops (flow ids offset by {!hop_flow_base}).  [blame_json] /
    [blame_csv] export the per-function phase attribution and mean
    critical-path blame. *)

val hop_flow_base : int

val chrome_json :
  ?orch_cores:int list -> events:Jord_faas.Trace.event list -> Span.result -> string

val blame_json : Span.result -> string
val blame_csv : Span.result -> string
