(** Causal span building and per-phase latency attribution.

    Folds a {!Jord_faas.Trace} event stream into one span per invocation
    (request id), linked into a tree per root request via [parent_id].
    Every picosecond between a span's birth (first Arrive) and its end
    (Complete + duration) is credited to exactly one phase, maintained as
    an advancing attribution frontier ([mark]): duration-bearing events
    credit their own length, and the gap up to each event is credited to
    the phase implied by the span's state (queueing, wire transit, or
    waiting on children).

    Conservation identity (checked by {!conservation_violations} and the
    qcheck suite): for every complete span,

    {v queue_wait + backoff + run + vm_stall + wire + suspend_wait
       = end_to_end v}

    exactly, in integer picoseconds. This holds because the executor emits
    durations rounded with the same {!Jord_sim.Time.of_ns} the engine uses
    to schedule the corresponding lifecycle events. *)

type phase = Queue_wait | Backoff | Run | Vm_stall | Wire | Suspend_wait

val phase_count : int
val phase_index : phase -> int
val all_phases : phase array
val phase_name : phase -> string

type state = Queued | Running | Suspended | Done

type seg = { t0 : int; t1 : int; core : int; seg_sid : int }

type t = {
  req_id : int;
  root_id : int;
  parent_id : int;
  fn : string;
  mutable sid : int;
  mutable born : int;
  mutable end_ps : int;
  mutable mark : int;
  mutable state : state;
  mutable wire_open : bool;
  phases : int array;
  mutable timeline : (phase * int * int) list;
  mutable segs : seg list;
  mutable crashes : int;
  mutable retries : int;
  mutable hops : int;
  mutable partial : bool;
  mutable dead : bool;
  mutable anomalies : int;
}

val e2e_ps : t -> int
val complete : t -> bool
(** Finished with a retained birth: attribution covers its whole life. *)

val phase_ps : t -> phase -> int
val sum_phases : t -> int

type result = {
  spans : (int, t) Hashtbl.t;
  order : int list;
  children : (int, int list) Hashtbl.t;
  truncated : bool;
  total_events : int;
}

val fresh : Jord_faas.Trace.event -> t
(** A new span keyed by the event's ids, before any attribution. *)

val feed : t -> Jord_faas.Trace.event -> unit
(** Advance a span's attribution with its next event (events must arrive in
    emission order). {!build} is a fold of [feed] over a whole trace; the
    online SLO pipeline calls it one event at a time as the simulation
    runs, which is how the streaming aggregates end up exactly equal to the
    post-hoc fold. *)

val build : ?truncated:bool -> ((Jord_faas.Trace.event -> unit) -> unit) -> result
(** [build iter] folds the events produced by [iter] (oldest first) into
    spans. Pass [~truncated:true] when the source ring wrapped so reports
    flag the analysis as covering a suffix of the run only. *)

val of_trace : Jord_faas.Trace.t -> result
(** {!build} over a live ring via {!Jord_faas.Trace.iter} (no list
    materialization), truncation flagged automatically. *)

val find : result -> int -> t option
val children_of : result -> int -> int list
val iter_spans : result -> (t -> unit) -> unit
(** First-appearance order. *)

val roots : result -> t list
(** Spans of root requests (depth 0), oldest first. *)

val timeline : t -> (phase * int * int) list
(** Chronological attributed intervals. *)

val segments : t -> seg list
(** Chronological executor-occupancy segments (with core and server). *)

val conservation_violations : result -> string list
(** One message per complete span violating the conservation identity;
    [[]] means every attributed picosecond is accounted for. *)

val stats : result -> int * int * int * int
(** (spans, completed, shed, partial). *)
