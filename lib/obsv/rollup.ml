(* Fleet-level SLO rollup: the same objectives, windows and burn-rate rule
   as the span-fed Online plane, fed instead from the fleet load balancer's
   request completions (the fleet models servers at request granularity, so
   there are no spans to fold). One sketch + window history per objective;
   observations arrive in nondecreasing event time, so the watermark only
   moves forward. *)

type transition = {
  tr_at_ps : int;
  tr_objective : string;
  tr_firing : bool;
  tr_window : int;
  tr_burn_fast : float;
  tr_burn_slow : float;
}

type closed = { c_total : int; c_bad : int }

type obj_state = {
  obj : Slo.objective;
  mutable win_idx : int;  (* index of the currently open window *)
  mutable win_total : int;
  mutable win_bad : int;
  mutable recent : closed list;  (* newest first, <= slow_windows *)
  mutable firing : bool;
  mutable fired : int;
  mutable resolved : int;
  mutable completed : int;
  mutable shed : int;
  mutable bad : int;
  mutable windows_closed : int;
  sketch : Jord_telemetry.Sketch.t;
  mutable trans : transition list;  (* newest first *)
}

type t = { objs : obj_state list; mutable finished : bool }

let create objectives =
  {
    objs =
      List.map
        (fun obj ->
          {
            obj;
            win_idx = 0;
            win_total = 0;
            win_bad = 0;
            recent = [];
            firing = false;
            fired = 0;
            resolved = 0;
            completed = 0;
            shed = 0;
            bad = 0;
            windows_closed = 0;
            sketch = Jord_telemetry.Sketch.create ();
            trans = [];
          })
        objectives;
    finished = false;
  }

let objectives t = List.map (fun os -> os.obj) t.objs

let burn_over obj windows =
  let rec take k = function
    | [] -> []
    | _ when k = 0 -> []
    | w :: rest -> w :: take (k - 1) rest
  in
  let frac ws =
    let total = List.fold_left (fun a w -> a + w.c_total) 0 ws in
    let bad = List.fold_left (fun a w -> a + w.c_bad) 0 ws in
    if total = 0 then 0.0 else float_of_int bad /. float_of_int total
  in
  ( frac (take obj.Slo.fast_windows windows) /. obj.Slo.budget,
    frac (take obj.Slo.slow_windows windows) /. obj.Slo.budget )

let rec cap k = function
  | [] -> []
  | _ when k = 0 -> []
  | w :: rest -> w :: cap (k - 1) rest

let close_window os =
  os.recent <- cap os.obj.Slo.slow_windows ({ c_total = os.win_total; c_bad = os.win_bad } :: os.recent);
  let burn_fast, burn_slow = burn_over os.obj os.recent in
  let should_fire =
    burn_fast >= os.obj.Slo.burn_threshold && burn_slow >= os.obj.Slo.burn_threshold
  in
  if should_fire <> os.firing then begin
    os.trans <-
      {
        tr_at_ps = (os.win_idx + 1) * os.obj.Slo.window_ps;
        tr_objective = os.obj.Slo.name;
        tr_firing = should_fire;
        tr_window = os.win_idx;
        tr_burn_fast = burn_fast;
        tr_burn_slow = burn_slow;
      }
      :: os.trans;
    if should_fire then os.fired <- os.fired + 1 else os.resolved <- os.resolved + 1;
    os.firing <- should_fire
  end;
  os.windows_closed <- os.windows_closed + 1;
  os.win_idx <- os.win_idx + 1;
  os.win_total <- 0;
  os.win_bad <- 0

let advance os ~at_ps =
  let idx = at_ps / os.obj.Slo.window_ps in
  while os.win_idx < idx do
    close_window os
  done

let matches obj ~fn =
  match obj.Slo.fn with None -> true | Some f -> f = fn

let observe t ~at_ps ~fn ~latency_ps ~shed =
  if t.finished then invalid_arg "Rollup.observe: already finished";
  List.iter
    (fun os ->
      if matches os.obj ~fn then begin
        advance os ~at_ps;
        os.win_total <- os.win_total + 1;
        if shed then begin
          os.shed <- os.shed + 1;
          os.bad <- os.bad + 1;
          os.win_bad <- os.win_bad + 1
        end
        else begin
          os.completed <- os.completed + 1;
          Jord_telemetry.Sketch.add os.sketch latency_ps;
          let late =
            match os.obj.Slo.kind with
            | Slo.Latency -> latency_ps > os.obj.Slo.threshold_ps
            | Slo.Availability -> false
          in
          if late then begin
            os.bad <- os.bad + 1;
            os.win_bad <- os.win_bad + 1
          end
        end
      end)
    t.objs

let finish t ~now_ps =
  if not t.finished then begin
    t.finished <- true;
    List.iter
      (fun os ->
        advance os ~at_ps:now_ps;
        (* Close the final partial window so the report covers the run. *)
        if os.win_total > 0 then close_window os)
      t.objs
  end

type row = {
  r_objective : Slo.objective;
  r_requests : int;
  r_bad : int;
  r_shed : int;
  r_quantile_ps : int;
  r_budget_used : float;  (* percent of the error budget consumed *)
  r_windows_closed : int;
  r_fired : int;
  r_resolved : int;
  r_firing : bool;
  r_verdict : string;
}

let rows t =
  List.map
    (fun os ->
      let o = os.obj in
      let total = os.completed + os.shed in
      let q = Jord_telemetry.Sketch.quantile os.sketch o.Slo.percentile in
      let budget_used =
        if total = 0 then 0.0
        else float_of_int os.bad /. (o.Slo.budget *. float_of_int total) *. 100.0
      in
      let verdict =
        if os.firing then "FIRING"
        else if total = 0 then "no-data"
        else
          match o.Slo.kind with
          | Slo.Availability -> if budget_used <= 100.0 then "met" else "VIOLATED"
          | Slo.Latency ->
              if q <= o.Slo.threshold_ps && budget_used <= 100.0 then "met"
              else "VIOLATED"
      in
      {
        r_objective = o;
        r_requests = total;
        r_bad = os.bad;
        r_shed = os.shed;
        r_quantile_ps = q;
        r_budget_used = budget_used;
        r_windows_closed = os.windows_closed;
        r_fired = os.fired;
        r_resolved = os.resolved;
        r_firing = os.firing;
        r_verdict = verdict;
      })
    t.objs

let transitions t =
  List.concat_map (fun os -> List.rev os.trans) t.objs
  |> List.sort (fun a b ->
         compare (a.tr_at_ps, a.tr_objective) (b.tr_at_ps, b.tr_objective))

let us ps = float_of_int ps /. 1e6

let transition_line tr =
  Printf.sprintf "%12.3fus %-7s %-16s window=%-4d burn fast=%.2f slow=%.2f"
    (us tr.tr_at_ps)
    (if tr.tr_firing then "FIRE" else "resolve")
    tr.tr_objective tr.tr_window tr.tr_burn_fast tr.tr_burn_slow

let report_text t =
  let buf = Buffer.create 1024 in
  let rs = rows t in
  Buffer.add_string buf
    (Jord_util.Render.table
       ~title:(Printf.sprintf "fleet SLO rollup (%d objectives)" (List.length rs))
       ~header:
         [
           "objective"; "fn"; "target"; "requests"; "bad"; "shed"; "measured_us";
           "budget_used"; "windows"; "fire/res"; "state";
         ]
       ~rows:
         (List.map
            (fun r ->
              let o = r.r_objective in
              [
                o.Slo.name;
                (match o.Slo.fn with None -> "*" | Some fn -> fn);
                (match o.Slo.kind with
                | Slo.Latency ->
                    Printf.sprintf "p%g<%.1fus" o.Slo.percentile (us o.Slo.threshold_ps)
                | Slo.Availability ->
                    Printf.sprintf "avail>=%g%%" (100.0 *. (1.0 -. o.Slo.budget)));
                string_of_int r.r_requests;
                string_of_int r.r_bad;
                string_of_int r.r_shed;
                (match o.Slo.kind with
                | Slo.Latency ->
                    if r.r_requests - r.r_shed = 0 then "-"
                    else Printf.sprintf "%.3f" (us r.r_quantile_ps)
                | Slo.Availability ->
                    if r.r_requests = 0 then "-"
                    else
                      Printf.sprintf "%.3f%%"
                        (100.0
                        *. float_of_int (r.r_requests - r.r_bad)
                        /. float_of_int r.r_requests));
                Printf.sprintf "%.1f%%" r.r_budget_used;
                string_of_int r.r_windows_closed;
                Printf.sprintf "%d/%d" r.r_fired r.r_resolved;
                r.r_verdict;
              ])
            rs)
       ());
  Buffer.add_string buf "alerts:\n";
  Buffer.add_string buf
    (match transitions t with
    | [] -> "  none\n"
    | trs ->
        String.concat "\n" (List.map (fun tr -> "  " ^ transition_line tr) trs) ^ "\n");
  Buffer.contents buf

let report_json t =
  let open Jord_util.Json in
  let rs = rows t in
  to_string
    (Obj
       [
         ("jord_fleet_slo_rollup", Int 1);
         ( "objectives",
           List
             (List.map
                (fun r ->
                  Obj
                    [
                      ("name", String r.r_objective.Slo.name);
                      ("requests", Int r.r_requests);
                      ("bad", Int r.r_bad);
                      ("shed", Int r.r_shed);
                      ("quantile_ps", Int r.r_quantile_ps);
                      ("budget_used_pct", Float r.r_budget_used);
                      ("windows_closed", Int r.r_windows_closed);
                      ("fired", Int r.r_fired);
                      ("resolved", Int r.r_resolved);
                      ("firing", Bool r.r_firing);
                      ("verdict", String r.r_verdict);
                    ])
                rs) );
       ])
