(* Fleet-level SLO rollup: the same objectives, windows and burn-rate rule
   as the span-fed Online plane, fed instead from the fleet load balancer's
   request completions (the fleet models servers at request granularity, so
   there are no spans to fold). One sketch + window history per objective;
   observations arrive in nondecreasing event time, so the watermark only
   moves forward. *)

type transition = {
  tr_at_ps : int;
  tr_objective : string;
  tr_firing : bool;
  tr_window : int;
  tr_burn_fast : float;
  tr_burn_slow : float;
}

type closed = { c_total : int; c_bad : int }

type closed_window = {
  cw_index : int;
  cw_total : int;
  cw_bad : int;
  cw_exemplar_ps : int;  (* -1 without an exemplar *)
  cw_exemplar : int;  (* retained trace id; -1 without one *)
}

(* Exemplar plumbing toward the fleet tracer: [Candidate] fires when an
   observation becomes the open window's max-latency trace (the tracer
   parks its span), [Promoted] when the window closes on it (the tracer
   pins the parked span into the retained set). *)
type exemplar_event =
  | Candidate of { objective : string; id : int }
  | Promoted of { objective : string; id : int; window : int }

type obj_state = {
  obj : Slo.objective;
  mutable win_idx : int;  (* index of the currently open window *)
  mutable win_total : int;
  mutable win_bad : int;
  mutable win_ex : (int * int) option;  (* (latency_ps, trace id) max *)
  mutable recent : closed list;  (* newest first, <= slow_windows *)
  mutable history : closed_window list;  (* newest first, unbounded *)
  mutable firing : bool;
  mutable fired : int;
  mutable resolved : int;
  mutable completed : int;
  mutable shed : int;
  mutable bad : int;
  mutable windows_closed : int;
  sketch : Jord_telemetry.Sketch.t;
  mutable trans : transition list;  (* newest first *)
}

type t = {
  objs : obj_state list;
  mutable on_exemplar : (exemplar_event -> unit) option;
  mutable finished : bool;
}

let create objectives =
  {
    objs =
      List.map
        (fun obj ->
          {
            obj;
            win_idx = 0;
            win_total = 0;
            win_bad = 0;
            win_ex = None;
            recent = [];
            history = [];
            firing = false;
            fired = 0;
            resolved = 0;
            completed = 0;
            shed = 0;
            bad = 0;
            windows_closed = 0;
            sketch = Jord_telemetry.Sketch.create ();
            trans = [];
          })
        objectives;
    on_exemplar = None;
    finished = false;
  }

let objectives t = List.map (fun os -> os.obj) t.objs
let set_exemplar_hook t f = t.on_exemplar <- Some f

let burn_over obj windows =
  let rec take k = function
    | [] -> []
    | _ when k = 0 -> []
    | w :: rest -> w :: take (k - 1) rest
  in
  let frac ws =
    let total = List.fold_left (fun a w -> a + w.c_total) 0 ws in
    let bad = List.fold_left (fun a w -> a + w.c_bad) 0 ws in
    if total = 0 then 0.0 else float_of_int bad /. float_of_int total
  in
  ( frac (take obj.Slo.fast_windows windows) /. obj.Slo.budget,
    frac (take obj.Slo.slow_windows windows) /. obj.Slo.budget )

let rec cap k = function
  | [] -> []
  | _ when k = 0 -> []
  | w :: rest -> w :: cap (k - 1) rest

let close_window t os =
  os.recent <- cap os.obj.Slo.slow_windows ({ c_total = os.win_total; c_bad = os.win_bad } :: os.recent);
  let ex_ps, ex_id = match os.win_ex with Some (v, id) -> (v, id) | None -> (-1, -1) in
  os.history <-
    {
      cw_index = os.win_idx;
      cw_total = os.win_total;
      cw_bad = os.win_bad;
      cw_exemplar_ps = ex_ps;
      cw_exemplar = ex_id;
    }
    :: os.history;
  (* Promote the window's max-latency trace: the tracer pins it so every
     exemplar the reports name is present in the retained trace set. *)
  (match (os.win_ex, t.on_exemplar) with
  | Some (_, id), Some hook ->
      hook (Promoted { objective = os.obj.Slo.name; id; window = os.win_idx })
  | _ -> ());
  os.win_ex <- None;
  let burn_fast, burn_slow = burn_over os.obj os.recent in
  let should_fire =
    burn_fast >= os.obj.Slo.burn_threshold && burn_slow >= os.obj.Slo.burn_threshold
  in
  if should_fire <> os.firing then begin
    os.trans <-
      {
        tr_at_ps = (os.win_idx + 1) * os.obj.Slo.window_ps;
        tr_objective = os.obj.Slo.name;
        tr_firing = should_fire;
        tr_window = os.win_idx;
        tr_burn_fast = burn_fast;
        tr_burn_slow = burn_slow;
      }
      :: os.trans;
    if should_fire then os.fired <- os.fired + 1 else os.resolved <- os.resolved + 1;
    os.firing <- should_fire
  end;
  os.windows_closed <- os.windows_closed + 1;
  os.win_idx <- os.win_idx + 1;
  os.win_total <- 0;
  os.win_bad <- 0

let advance t os ~at_ps =
  let idx = at_ps / os.obj.Slo.window_ps in
  while os.win_idx < idx do
    close_window t os
  done

let matches obj ~fn =
  match obj.Slo.fn with None -> true | Some f -> f = fn

let observe ?(trace_id = -1) t ~at_ps ~fn ~latency_ps ~shed =
  if t.finished then invalid_arg "Rollup.observe: already finished";
  List.iter
    (fun os ->
      if matches os.obj ~fn then begin
        advance t os ~at_ps;
        os.win_total <- os.win_total + 1;
        if shed then begin
          os.shed <- os.shed + 1;
          os.bad <- os.bad + 1;
          os.win_bad <- os.win_bad + 1
        end
        else begin
          os.completed <- os.completed + 1;
          Jord_telemetry.Sketch.add_ex os.sketch latency_ps ~ex:trace_id;
          (* Max-latency exemplar of the open window, ties toward the
             smaller id: the final candidate at close time depends only on
             the window's observation set, not on drain order. *)
          (if trace_id >= 0 then
             let better =
               match os.win_ex with
               | None -> true
               | Some (v, id) ->
                   latency_ps > v || (latency_ps = v && trace_id < id)
             in
             if better then begin
               os.win_ex <- Some (latency_ps, trace_id);
               match t.on_exemplar with
               | Some hook ->
                   hook (Candidate { objective = os.obj.Slo.name; id = trace_id })
               | None -> ()
             end);
          let late =
            match os.obj.Slo.kind with
            | Slo.Latency -> latency_ps > os.obj.Slo.threshold_ps
            | Slo.Availability -> false
          in
          if late then begin
            os.bad <- os.bad + 1;
            os.win_bad <- os.win_bad + 1
          end
        end
      end)
    t.objs

let finish t ~now_ps =
  if not t.finished then begin
    t.finished <- true;
    List.iter
      (fun os ->
        advance t os ~at_ps:now_ps;
        (* Close the final partial window so the report covers the run. *)
        if os.win_total > 0 then close_window t os)
      t.objs
  end

type row = {
  r_objective : Slo.objective;
  r_requests : int;
  r_bad : int;
  r_shed : int;
  r_quantile_ps : int;
  r_budget_used : float;  (* percent of the error budget consumed *)
  r_windows_closed : int;
  r_fired : int;
  r_resolved : int;
  r_firing : bool;
  r_verdict : string;
  r_exemplar_ps : int;  (* -1 when the run carried no trace ids *)
  r_exemplar : int;  (* max-latency retained trace id, or -1 *)
}

let rows t =
  List.map
    (fun os ->
      let o = os.obj in
      let total = os.completed + os.shed in
      let q = Jord_telemetry.Sketch.quantile os.sketch o.Slo.percentile in
      let budget_used =
        if total = 0 then 0.0
        else float_of_int os.bad /. (o.Slo.budget *. float_of_int total) *. 100.0
      in
      let verdict =
        if os.firing then "FIRING"
        else if total = 0 then "no-data"
        else
          match o.Slo.kind with
          | Slo.Availability -> if budget_used <= 100.0 then "met" else "VIOLATED"
          | Slo.Latency ->
              if q <= o.Slo.threshold_ps && budget_used <= 100.0 then "met"
              else "VIOLATED"
      in
      let ex_ps, ex_id =
        match Jord_telemetry.Sketch.exemplar os.sketch with
        | Some (v, id) -> (v, id)
        | None -> (-1, -1)
      in
      {
        r_objective = o;
        r_requests = total;
        r_bad = os.bad;
        r_shed = os.shed;
        r_quantile_ps = q;
        r_budget_used = budget_used;
        r_windows_closed = os.windows_closed;
        r_fired = os.fired;
        r_resolved = os.resolved;
        r_firing = os.firing;
        r_verdict = verdict;
        r_exemplar_ps = ex_ps;
        r_exemplar = ex_id;
      })
    t.objs

let windows t =
  List.map (fun os -> (os.obj.Slo.name, List.rev os.history)) t.objs

let transitions t =
  List.concat_map (fun os -> List.rev os.trans) t.objs
  |> List.sort (fun a b ->
         compare (a.tr_at_ps, a.tr_objective) (b.tr_at_ps, b.tr_objective))

let us ps = float_of_int ps /. 1e6

let transition_line tr =
  Printf.sprintf "%12.3fus %-7s %-16s window=%-4d burn fast=%.2f slow=%.2f"
    (us tr.tr_at_ps)
    (if tr.tr_firing then "FIRE" else "resolve")
    tr.tr_objective tr.tr_window tr.tr_burn_fast tr.tr_burn_slow

let report_text t =
  let buf = Buffer.create 1024 in
  let rs = rows t in
  Buffer.add_string buf
    (Jord_util.Render.table
       ~title:(Printf.sprintf "fleet SLO rollup (%d objectives)" (List.length rs))
       ~header:
         [
           "objective"; "fn"; "target"; "requests"; "bad"; "shed"; "measured_us";
           "budget_used"; "windows"; "fire/res"; "state"; "exemplar";
         ]
       ~rows:
         (List.map
            (fun r ->
              let o = r.r_objective in
              [
                o.Slo.name;
                (match o.Slo.fn with None -> "*" | Some fn -> fn);
                (match o.Slo.kind with
                | Slo.Latency ->
                    Printf.sprintf "p%g<%.1fus" o.Slo.percentile (us o.Slo.threshold_ps)
                | Slo.Availability ->
                    Printf.sprintf "avail>=%g%%" (100.0 *. (1.0 -. o.Slo.budget)));
                string_of_int r.r_requests;
                string_of_int r.r_bad;
                string_of_int r.r_shed;
                (match o.Slo.kind with
                | Slo.Latency ->
                    if r.r_requests - r.r_shed = 0 then "-"
                    else Printf.sprintf "%.3f" (us r.r_quantile_ps)
                | Slo.Availability ->
                    if r.r_requests = 0 then "-"
                    else
                      Printf.sprintf "%.3f%%"
                        (100.0
                        *. float_of_int (r.r_requests - r.r_bad)
                        /. float_of_int r.r_requests));
                Printf.sprintf "%.1f%%" r.r_budget_used;
                string_of_int r.r_windows_closed;
                Printf.sprintf "%d/%d" r.r_fired r.r_resolved;
                r.r_verdict;
                (if r.r_exemplar < 0 then "-"
                 else Printf.sprintf "trace=%d" r.r_exemplar);
              ])
            rs)
       ());
  Buffer.add_string buf "alerts:\n";
  Buffer.add_string buf
    (match transitions t with
    | [] -> "  none\n"
    | trs ->
        String.concat "\n" (List.map (fun tr -> "  " ^ transition_line tr) trs) ^ "\n");
  Buffer.contents buf

let report_json t =
  let open Jord_util.Json in
  let rs = rows t in
  to_string
    (Obj
       [
         ("jord_fleet_slo_rollup", Int 1);
         ( "objectives",
           List
             (List.map
                (fun r ->
                  Obj
                    [
                      ("name", String r.r_objective.Slo.name);
                      ("requests", Int r.r_requests);
                      ("bad", Int r.r_bad);
                      ("shed", Int r.r_shed);
                      ("quantile_ps", Int r.r_quantile_ps);
                      ("budget_used_pct", Float r.r_budget_used);
                      ("windows_closed", Int r.r_windows_closed);
                      ("fired", Int r.r_fired);
                      ("resolved", Int r.r_resolved);
                      ("firing", Bool r.r_firing);
                      ("verdict", String r.r_verdict);
                      ("exemplar_trace_id", Int r.r_exemplar);
                      ("exemplar_ps", Int r.r_exemplar_ps);
                    ])
                rs) );
       ])

(* --- CSV export (the Report.blame conventions: one flat unquoted table,
   objective-level columns repeated on every per-window row) --- *)

let csv_header =
  "objective,fn,kind,requests,bad,shed,measured_us,budget_used_pct,windows,\
   fired,resolved,verdict,exemplar,window,w_total,w_bad,w_exemplar"

let report_csv t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf csv_header;
  Buffer.add_char buf '\n';
  List.iter2
    (fun r (_, wins) ->
      let o = r.r_objective in
      let prefix =
        Printf.sprintf "%s,%s,%s,%d,%d,%d,%.4f,%.4f,%d,%d,%d,%s,%d" o.Slo.name
          (match o.Slo.fn with None -> "*" | Some fn -> fn)
          (match o.Slo.kind with Slo.Latency -> "latency" | Slo.Availability -> "availability")
          r.r_requests r.r_bad r.r_shed (us r.r_quantile_ps) r.r_budget_used
          r.r_windows_closed r.r_fired r.r_resolved r.r_verdict r.r_exemplar
      in
      match wins with
      | [] -> Buffer.add_string buf (prefix ^ ",-1,0,0,-1\n")
      | wins ->
          List.iter
            (fun cw ->
              Buffer.add_string buf
                (Printf.sprintf "%s,%d,%d,%d,%d\n" prefix cw.cw_index cw.cw_total
                   cw.cw_bad cw.cw_exemplar))
            wins)
    (rows t) (windows t);
  Buffer.contents buf

(* Parse a [report_csv] document back into header-keyed rows — the
   round-trip check and any downstream tooling share this. No quoting: the
   writer never emits fields containing commas. *)
let parse_csv body =
  match String.split_on_char '\n' (String.trim body) with
  | [] | [ "" ] -> Error "empty CSV"
  | header :: lines ->
      let cols = String.split_on_char ',' header in
      let ncols = List.length cols in
      let rec go n acc = function
        | [] -> Ok (List.rev acc)
        | "" :: rest -> go (n + 1) acc rest
        | line :: rest ->
            let fields = String.split_on_char ',' line in
            if List.length fields <> ncols then
              Error
                (Printf.sprintf "line %d: expected %d fields, got %d" n ncols
                   (List.length fields))
            else go (n + 1) (List.combine cols fields :: acc) rest
      in
      go 2 [] lines
