(** Critical-path extraction over fan-out span trees.

    For a completed root, the critical path is the root's own attributed
    timeline with every suspend-wait interval resolved to the child whose
    completion released it (latest end inside the interval), recursively —
    the longest causal chain through the invocation tree, with per-phase
    blame along it. Since each suspend interval is either spliced with a
    child's (conserving) timeline or left as suspend wait, the blame total
    still equals the root's end-to-end latency. *)

type blame = {
  phases : int array;  (** ps per {!Span.phase} on the path. *)
  chain : (int * string) list;  (** (req_id, fn) of spans on the path. *)
  unresolved_ps : int;
      (** Suspend wait not attributable to any retained child (fan-out
          siblings off the path, or children lost to ring wraparound). *)
}

val of_root : Span.result -> Span.t -> blame
(** Zero blame for incomplete roots. *)

val total_ps : blame -> int
(** Equals the root's end-to-end latency for complete roots. *)
