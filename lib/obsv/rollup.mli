(** Fleet-level SLO rollup.

    The same declarative objectives, tumbling windows and multi-window
    burn-rate rule as {!Online}, fed from the fleet load balancer's
    request completions instead of trace spans: the fleet layer models
    servers at request granularity, so each finished (or shed) request is
    one observation. Latencies aggregate into one mergeable
    {!Jord_telemetry.Sketch} per objective; everything is integer-ps and
    event-time driven, so the verdict table is byte-identical at any shard
    count. *)

type transition = {
  tr_at_ps : int;
  tr_objective : string;
  tr_firing : bool;  (** [true] = fire, [false] = resolve. *)
  tr_window : int;
  tr_burn_fast : float;
  tr_burn_slow : float;
}

type closed_window = {
  cw_index : int;
  cw_total : int;
  cw_bad : int;
  cw_exemplar_ps : int;  (** -1 when the window carried no trace ids. *)
  cw_exemplar : int;  (** The window's max-latency trace id, or -1. *)
}

(** Exemplar plumbing toward the fleet tracer: a [Candidate] fires when an
    observation becomes the open window's max-latency trace (park its
    span); [Promoted] fires when the window closes on it (pin the parked
    span into the retained trace set). *)
type exemplar_event =
  | Candidate of { objective : string; id : int }
  | Promoted of { objective : string; id : int; window : int }

type t

val create : Slo.objective list -> t

val objectives : t -> Slo.objective list

val set_exemplar_hook : t -> (exemplar_event -> unit) -> unit

val observe :
  ?trace_id:int -> t -> at_ps:int -> fn:string -> latency_ps:int -> shed:bool -> unit
(** Record one decided request for entry function [fn] at event time
    [at_ps] (nondecreasing across calls). A shed request consumes budget
    without a latency; a completed one is bad only if the objective is
    latency-kind and [latency_ps] exceeds its threshold. [trace_id]
    (default -1 = untraced) feeds the exemplar machinery: the window and
    whole-run max-latency observations remember it, ties toward the
    smaller id so exemplars are drain-order independent. *)

val finish : t -> now_ps:int -> unit
(** Close every window through [now_ps] (including a final partial one).
    Call once after the fleet drains; reports are stable afterwards. *)

type row = {
  r_objective : Slo.objective;
  r_requests : int;  (** Decided requests matching the objective. *)
  r_bad : int;  (** Budget-consuming requests (includes [r_shed]). *)
  r_shed : int;
  r_quantile_ps : int;  (** Sketch at the objective's percentile. *)
  r_budget_used : float;  (** Percent of the error budget consumed. *)
  r_windows_closed : int;
  r_fired : int;
  r_resolved : int;
  r_firing : bool;
  r_verdict : string;  (** ["met"], ["VIOLATED"], ["FIRING"], ["no-data"]. *)
  r_exemplar_ps : int;  (** -1 when the run carried no trace ids. *)
  r_exemplar : int;  (** Max-latency retained trace id, or -1. *)
}

val rows : t -> row list

val windows : t -> (string * closed_window list) list
(** Closed-window history per objective, oldest first. *)

val transitions : t -> transition list
(** Chronological, across objectives. *)

val report_text : t -> string
(** Verdict table plus the alert log (same columns as the Online report). *)

val report_json : t -> string

val report_csv : t -> string
(** Flat CSV in the {!Export.blame_csv} convention: a header line, then one
    row per (objective, closed window) with the objective-level columns
    repeated; an objective with no closed windows emits a single row with
    [window = -1]. *)

val parse_csv : string -> ((string * string) list list, string) result
(** Inverse of {!report_csv}: each data line becomes a
    [(column, value)] assoc list keyed by the header. *)
