(** Declarative SLO objectives and their burn-rate alert rules.

    An objective states a latency target over a workload: "the [percentile]
    latency of roots entering [fn] stays under [threshold_ps], with an
    error budget of [budget] (the fraction of requests allowed to miss the
    threshold — shed requests count as misses)". The online pipeline
    ({!Online}) evaluates it over tumbling sim-time windows of [window_ps]
    and runs the Google-SRE multi-window burn-rate rule: the alert fires
    when the budget burn rate over the last [fast_windows] windows {e and}
    over the last [slow_windows] windows both reach [burn_threshold], and
    resolves as soon as either recovers. Burn rate 1.0 means consuming the
    budget exactly as fast as allowed. *)

type kind =
  | Latency  (** Bad = completed over [threshold_ps], or shed. *)
  | Availability
      (** Bad = shed/failed only; completions are good at any latency.
          States "at least [1 - budget] of roots complete" — the natural
          objective under whole-server fault plans, where crash windows
          shed work without inflating tail latency. *)

type objective = {
  name : string;  (** Unique within a spec; labels alerts and metrics. *)
  fn : string option;  (** Entry-function filter; [None] matches all roots. *)
  kind : kind;  (** What consumes the budget; [Latency] is the default. *)
  percentile : float;  (** Reported quantile, in (0, 100). *)
  threshold_ps : int;  (** Latency bound a request must meet. *)
  window_ps : int;  (** Tumbling evaluation window, sim time. *)
  budget : float;  (** Allowed bad-request fraction, in (0, 1). *)
  fast_windows : int;  (** Short burn-rate horizon, in windows (>= 1). *)
  slow_windows : int;  (** Long horizon, in windows (>= fast). *)
  burn_threshold : float;  (** Fire when both horizons burn >= this. *)
}

val default : objective
(** p99 < 25 us over 250 us windows, 1% budget, 1/4-window horizons,
    burn threshold 1.0 — the ["default"] preset. *)

val presets : (string * objective list) list
(** [none] (empty — the inert spelling), [default], [tight] (p99 < 5 us,
    0.5% budget) and [ci] (p99 < 8 us over 100 us windows, 2% budget). *)

val parse : string -> (objective list, string) result
(** Parse a spec: a preset name, a preset with overrides
    (["ci,threshold_us=5"]), or one-or-more inline objectives separated by
    [';'], each a comma-separated [key=value] list over keys [name], [fn],
    [kind] ([latency] or [availability]), [p], [threshold_us], [window_us],
    [budget], [fast], [slow], [burn]. Objective names must be unique. *)

val load : path:string -> (objective list, string) result
(** Parse a spec file: one objective per line ([key=value] lists), blank
    lines and [#] comments ignored. *)

val parse_arg : string -> (objective list, string) result
(** CLI entry point: if the argument names an existing file, {!load} it,
    otherwise {!parse} it as a preset/inline spec. *)

val to_string : objective -> string
(** Canonical [key=value] spelling; [parse]s back to the same objective. *)

val describe : objective -> string
(** Human summary, e.g. ["p99 < 25.0us (budget 1%, 250us windows, burn >= 1.0
    over 1/4 windows)"]. *)
