(** Text reports over a span forest — what [jordctl trace] prints.

    Every report leads with a truncation note when the source ring wrapped
    (the analysis covers only the retained suffix), and the breakdown /
    critical-path reports end with the conservation verdict. *)

type fn_stats = {
  fn : string;
  n : int;
  mean_ps : float;
  p50_ps : int;
  p99_ps : int;
  phase_mean_ps : float array;  (** Indexed by {!Span.phase_index}. *)
}

val by_function : Span.result -> fn_stats list
(** Complete roots grouped by entry function, sorted by name. *)

val complete_roots : Span.result -> Span.t list

val conservation_ok : Span.result -> bool

val breakdown : Span.result -> string
(** Per-function per-phase attribution table + conservation verdict. *)

val slowest : ?n:int -> Span.result -> string
(** The [n] (default 10) slowest complete roots with their phase splits. *)

val critical_path : Span.result -> string
(** Mean critical-path blame per entry function, the p99 tail verdict, the
    longest causal chain, and the conservation verdict. *)

val percentile : float -> int array -> int
(** Nearest-rank percentile over a sorted array. *)

val us : int -> float
(** ps to microseconds. *)
