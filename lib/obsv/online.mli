(** The online SLO observability plane: streaming span completion,
    windowed quantile sketches, and burn-rate alerting — PR 5's post-hoc
    attribution made available {e at sim time}.

    The pipeline rides the {!Jord_faas.Trace} emit sink ({!attach}): every
    event a server/orchestrator emits is folded into an incremental span
    (the same {!Span.feed} the post-hoc builder uses, which is why the
    online aggregates are {e exactly} equal to the post-hoc fold — the
    qcheck suite asserts integer-ps equality). When a root span completes,
    its end-to-end latency and per-phase attribution are recorded into the
    tumbling window of each matching objective, kept as one
    {!Jord_telemetry.Sketch} per (window, server): deterministic,
    associative merging means cluster members can be rolled up in any
    order with identical results.

    A window closes when the event-time watermark passes its end; closing
    merges the member servers' sketches (ascending server id), appends the
    window to the burn-rate history and evaluates the multi-window rule
    ({!Slo}). Fire/resolve transitions are appended to the alert log,
    counted, and emitted as [Alert] trace events (with [req_id = -1]) so
    Perfetto timelines show SLO breaches against the spans that caused
    them.

    Shed requests (queue-full drops, deadline timeouts) consume error
    budget: they count as bad without a latency observation. Windows with
    no traffic burn nothing and resolve a firing alert. *)

type transition = {
  tr_at_ps : int;  (** The closing window's end. *)
  tr_objective : string;
  tr_firing : bool;  (** [true] = fire, [false] = resolve. *)
  tr_window : int;  (** Index of the window whose close transitioned. *)
  tr_burn_fast : float;
  tr_burn_slow : float;
}

type window_summary = {
  w_index : int;
  w_total : int;  (** Roots decided in the window (completed + shed). *)
  w_bad : int;  (** Over-threshold completions plus shed roots. *)
  w_burn_fast : float;
  w_burn_slow : float;
  w_firing : bool;  (** Alert state after this window's evaluation. *)
}

type objective_snapshot = {
  s_objective : Slo.objective;
  s_completed : int;
  s_shed : int;
  s_bad : int;  (** Includes [s_shed]. *)
  s_e2e_sum_ps : int;  (** Exact integer sum over completed roots. *)
  s_phase_sum_ps : int array;  (** Indexed by {!Span.phase_index}; exact. *)
  s_sketch : Jord_telemetry.Sketch.t;  (** All completions, merged. *)
  s_quantile_ps : int;  (** [s_sketch] at the objective's percentile. *)
  s_windows_closed : int;
  s_fired : int;
  s_resolved : int;
  s_firing : bool;
  s_transitions : transition list;  (** Chronological. *)
  s_windows : window_summary list;  (** Chronological. *)
  s_per_sid : (int * Jord_telemetry.Sketch.t) list;
      (** Completion sketches per server id, ascending — merging these in
          any order reproduces [s_sketch] (asserted by the tests). *)
}

type t

val create : Slo.objective list -> t

val attach : t -> Jord_faas.Trace.t -> unit
(** Install {!observe} as the tracer's emit sink and use the tracer for
    [Alert] transition events. *)

val observe : t -> Jord_faas.Trace.event -> unit
(** Feed one event (events must arrive in emission order). System events
    ([req_id < 0], e.g. this pipeline's own alerts) are ignored. *)

val finish : t -> now_ps:int -> unit
(** Advance the watermark to the end of the run and close every window
    through it (including the final partial one). Call once, after the
    engine drains; reports are stable afterwards. *)

val replay :
  objectives:Slo.objective list -> ?finish_ps:int ->
  Jord_faas.Trace.event list -> t
(** Offline evaluation of a recorded trace: feed every event in order and
    {!finish} at [finish_ps] (default: the last event's timestamp). Live
    and replayed pipelines over the same events produce identical
    snapshots. *)

val objectives : t -> Slo.objective list
val snapshot : t -> objective_snapshot list
val transitions : t -> transition list
(** All objectives' transitions, chronological. *)

val register_metrics :
  t -> ?labels:(string * string) list -> Jord_telemetry.Registry.t -> unit
(** Register the [jord_slo_*] families ([requests/bad/shed/windows_closed/
    alerts_fired/alerts_resolved] counters and [firing]/
    [budget_remaining_ratio] gauges), one instance per objective, labeled
    [slo=<name>]. *)

val report_text : t -> string
(** Per-objective verdict table plus the alert log. *)

val alerts_text : t -> string
val burn_text : t -> string
(** Alert log alone / per-window burn-rate table with a sparkline. *)

val report_json : t -> string
val alerts_json : t -> string
(** Machine-readable snapshot / alert log (the CI artifact). *)

val burn_csv : t -> string
(** One row per (objective, closed window). *)
