module Json = Jord_util.Json

(* The fleet tracer: glue between the fleet's span construction, the
   deterministic tail sampler, and the rollup's exemplar machinery.

   The fleet records each finished span immediately before feeding the
   same request to the rollup, so when the rollup announces a [Candidate]
   (new open-window max for an objective) the staged span is the one it
   means — we park a copy per objective. When the window closes, the
   rollup announces [Promoted] and we pin the parked span into the
   retained set with reason "exemplar": every exemplar id a verdict table
   names is therefore guaranteed to be present in the trace file. *)

type t = {
  sampler : Fsampler.t;
  mutable staging : Fspan.t option;  (* the span most recently recorded *)
  parked : (string, Fspan.t) Hashtbl.t;  (* objective -> window candidate *)
}

let create ?seed ?reservoir () =
  {
    sampler = Fsampler.create ?seed ?reservoir ();
    staging = None;
    parked = Hashtbl.create 8;
  }

let seed t = Fsampler.seed t.sampler
let reservoir t = Fsampler.reservoir t.sampler
let offered t = Fsampler.offered t.sampler

let record t ?keep sp =
  t.staging <- Some sp;
  Fsampler.offer t.sampler ?keep sp

(* Wire this to [Rollup.set_exemplar_hook]. *)
let on_exemplar t = function
  | Rollup.Candidate { objective; id } -> (
      match t.staging with
      | Some sp when sp.Fspan.req_id = id -> Hashtbl.replace t.parked objective sp
      | _ -> ())
  | Rollup.Promoted { objective; id; window = _ } -> (
      match Hashtbl.find_opt t.parked objective with
      | Some sp when sp.Fspan.req_id = id ->
          Fsampler.pin t.sampler ~reason:"exemplar" sp
      | _ -> ())

let retained t = Fsampler.retained t.sampler
let retained_ids t = List.map (fun (_, sp) -> sp.Fspan.req_id) (retained t)

(* Retention-reason census of the final set, sorted by reason name. *)
let keep_counts t =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (reason, _) ->
      Hashtbl.replace tbl reason (1 + Option.value ~default:0 (Hashtbl.find_opt tbl reason)))
    (retained t);
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* --- fleet trace files: JSONL, one header object then one span per line,
   sorted by request id (the sampler's canonical order) --- *)

let format_version = 1

let save ~path ?(meta = []) t =
  let spans = retained t in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let header =
        Json.Obj
          ([
             ("jord_fleet_trace", Json.Int format_version);
             ("offered", Json.Int (offered t));
             ("retained", Json.Int (List.length spans));
             ("reservoir", Json.Int (reservoir t));
             ("seed", Json.Int (seed t));
           ]
          @ meta)
      in
      output_string oc (Json.to_string header);
      output_char oc '\n';
      List.iter
        (fun (keep, sp) ->
          output_string oc (Fspan.to_json_line ~keep sp);
          output_char oc '\n')
        spans)

type loaded = {
  spans : (string * Fspan.t) list;  (** [(keep_reason, span)], by req id. *)
  offered_total : int;
  meta : Json.t;  (** The whole header object. *)
}

let int_member ?(default = 0) key j =
  match Json.member key j with Some (Json.Int i) -> i | _ -> default

let load ~path =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          let parse_line n line =
            match Json.of_string line with
            | Error msg -> Error (Printf.sprintf "%s:%d: %s" path n msg)
            | Ok j -> Ok j
          in
          match input_line ic with
          | exception End_of_file -> Error (path ^ ": empty trace file")
          | first -> (
              match parse_line 1 first with
              | Error _ as e -> e
              | Ok header when Json.member "jord_fleet_trace" header = None ->
                  Error
                    (path
                   ^ ": not a fleet trace file (missing jord_fleet_trace header)")
              | Ok header ->
                  let rec go n acc =
                    match input_line ic with
                    | exception End_of_file -> Ok (List.rev acc)
                    | "" -> go (n + 1) acc
                    | line -> (
                        match parse_line n line with
                        | Error _ as e -> e
                        | Ok j -> (
                            match Fspan.of_json j with
                            | Error msg ->
                                Error (Printf.sprintf "%s:%d: %s" path n msg)
                            | Ok ks -> go (n + 1) (ks :: acc)))
                  in
                  Result.map
                    (fun spans ->
                      {
                        spans;
                        offered_total = int_member "offered" header;
                        meta = header;
                      })
                    (go 2 [])))

(* Header peek so jordctl can dispatch one [--trace] path to either the
   single-node or the fleet reader. *)
let is_fleet_file ~path =
  match open_in path with
  | exception Sys_error _ -> false
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          match input_line ic with
          | exception End_of_file -> false
          | first -> (
              match Json.of_string first with
              | Ok j -> Json.member "jord_fleet_trace" j <> None
              | Error _ -> false))
