type kind = Latency | Availability

type objective = {
  name : string;
  fn : string option;
  kind : kind;
  percentile : float;
  threshold_ps : int;
  window_ps : int;
  budget : float;
  fast_windows : int;
  slow_windows : int;
  burn_threshold : float;
}

let ps_of_us us = int_of_float (us *. 1e6)

let default =
  {
    name = "p99-latency";
    fn = None;
    kind = Latency;
    percentile = 99.0;
    threshold_ps = ps_of_us 25.0;
    window_ps = ps_of_us 250.0;
    budget = 0.01;
    fast_windows = 1;
    slow_windows = 4;
    burn_threshold = 1.0;
  }

let presets =
  [
    ("none", []);
    ("default", [ default ]);
    ( "tight",
      [
        {
          default with
          name = "p99-tight";
          threshold_ps = ps_of_us 5.0;
          budget = 0.005;
          window_ps = ps_of_us 100.0;
          slow_windows = 6;
        };
      ] );
    ( "ci",
      [
        {
          default with
          name = "p99-burn";
          threshold_ps = ps_of_us 8.0;
          window_ps = ps_of_us 100.0;
          budget = 0.02;
          slow_windows = 3;
        };
      ] );
  ]

let validate o =
  if o.name = "" then Error "objective name must be non-empty"
  else if not (o.percentile > 0.0 && o.percentile < 100.0) then
    Error (Printf.sprintf "%s: p must be in (0, 100)" o.name)
  else if o.threshold_ps <= 0 then
    Error (Printf.sprintf "%s: threshold_us must be > 0" o.name)
  else if o.window_ps <= 0 then
    Error (Printf.sprintf "%s: window_us must be > 0" o.name)
  else if not (o.budget > 0.0 && o.budget < 1.0) then
    Error (Printf.sprintf "%s: budget must be in (0, 1)" o.name)
  else if o.fast_windows < 1 then
    Error (Printf.sprintf "%s: fast must be >= 1" o.name)
  else if o.slow_windows < o.fast_windows then
    Error (Printf.sprintf "%s: slow must be >= fast" o.name)
  else if not (o.burn_threshold > 0.0) then
    Error (Printf.sprintf "%s: burn must be > 0" o.name)
  else Ok o

(* One objective from comma-separated key=value fields, starting from
   [base] (a preset objective or [default]). [auto_name] invents a
   "p99<25us"-style name for unnamed inline objectives; preset-seeded
   objectives keep the preset's name instead. *)
let parse_fields ?(auto_name = true) ~base fields =
  let float_field k v =
    match float_of_string_opt v with
    | Some f -> Ok f
    | None -> Error (Printf.sprintf "%s: expected a number, got %S" k v)
  in
  let int_field k v =
    match int_of_string_opt v with
    | Some i -> Ok i
    | None -> Error (Printf.sprintf "%s: expected an integer, got %S" k v)
  in
  let ( let* ) = Result.bind in
  let named = ref false in
  let rec go o = function
    | [] -> Ok o
    | field :: rest -> (
        match String.index_opt field '=' with
        | None -> Error (Printf.sprintf "expected key=value, got %S" field)
        | Some i -> (
            let k = String.sub field 0 i in
            let v = String.sub field (i + 1) (String.length field - i - 1) in
            match k with
            | "name" ->
                named := true;
                go { o with name = v } rest
            | "fn" -> go { o with fn = (if v = "" then None else Some v) } rest
            | "kind" -> (
                match v with
                | "latency" -> go { o with kind = Latency } rest
                | "availability" -> go { o with kind = Availability } rest
                | _ ->
                    Error
                      (Printf.sprintf
                         "kind: expected latency or availability, got %S" v))
            | "p" ->
                let* f = float_field k v in
                (* Changing the percentile re-derives the default budget
                   unless one is given explicitly later. *)
                go { o with percentile = f; budget = (100.0 -. f) /. 100.0 } rest
            | "threshold_us" ->
                let* f = float_field k v in
                go { o with threshold_ps = ps_of_us f } rest
            | "window_us" ->
                let* f = float_field k v in
                go { o with window_ps = ps_of_us f } rest
            | "budget" ->
                let* f = float_field k v in
                go { o with budget = f } rest
            | "fast" ->
                let* i = int_field k v in
                go { o with fast_windows = i } rest
            | "slow" ->
                let* i = int_field k v in
                go { o with slow_windows = i } rest
            | "burn" ->
                let* f = float_field k v in
                go { o with burn_threshold = f } rest
            | _ ->
                Error
                  (Printf.sprintf
                     "unknown key %S (valid: name, fn, kind, p, threshold_us, \
                      window_us, budget, fast, slow, burn)"
                     k)))
  in
  let* o = go base fields in
  let o =
    if (not auto_name) || !named || o.name <> base.name then o
    else
      { o with
        name =
          (let suffix =
             match o.fn with None -> "" | Some fn -> ":" ^ fn
           in
           match o.kind with
           | Latency ->
               Printf.sprintf "p%g<%gus%s" o.percentile
                 (float_of_int o.threshold_ps /. 1e6)
                 suffix
           | Availability ->
               Printf.sprintf "avail>=%g%%%s"
                 (100.0 *. (1.0 -. o.budget))
                 suffix);
      }
  in
  validate o

let split sep s =
  String.split_on_char sep s |> List.map String.trim
  |> List.filter (fun f -> f <> "")

let check_unique objectives =
  let rec go seen = function
    | [] -> Ok objectives
    | o :: rest ->
        if List.mem o.name seen then
          Error (Printf.sprintf "duplicate objective name %S" o.name)
        else go (o.name :: seen) rest
  in
  go [] objectives

let parse spec =
  let spec = String.trim spec in
  match List.assoc_opt spec presets with
  | Some objectives -> Ok objectives
  | None -> (
      let parts = split ';' spec in
      if parts = [] then Error "empty SLO spec"
      else
        let parse_one part =
          match split ',' part with
          | [] -> Error "empty objective"
          | first :: rest as fields -> (
              (* A preset name in first position seeds the objective and the
                 remaining fields override it (fault-plan style). *)
              match List.assoc_opt first presets with
              | Some [ base ] -> parse_fields ~auto_name:false ~base rest
              | Some _ ->
                  Error
                    (Printf.sprintf "preset %S cannot take overrides" first)
              | None -> parse_fields ~base:default fields)
        in
        let rec go acc = function
          | [] -> check_unique (List.rev acc)
          | part :: rest -> (
              match parse_one part with
              | Ok o -> go (o :: acc) rest
              | Error e -> Error e)
        in
        go [] parts)

let load ~path =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          let rec go n acc =
            match input_line ic with
            | exception End_of_file -> check_unique (List.rev acc)
            | line -> (
                let line = String.trim line in
                if line = "" || line.[0] = '#' then go (n + 1) acc
                else
                  match parse line with
                  | Ok objectives -> go (n + 1) (List.rev_append objectives acc)
                  | Error e -> Error (Printf.sprintf "%s:%d: %s" path n e))
          in
          go 1 [])

let parse_arg arg = if Sys.file_exists arg then load ~path:arg else parse arg

let to_string o =
  Printf.sprintf
    "name=%s%s%s,p=%g,threshold_us=%g,window_us=%g,budget=%g,fast=%d,slow=%d,burn=%g"
    o.name
    (match o.fn with None -> "" | Some fn -> ",fn=" ^ fn)
    (match o.kind with Latency -> "" | Availability -> ",kind=availability")
    o.percentile
    (float_of_int o.threshold_ps /. 1e6)
    (float_of_int o.window_ps /. 1e6)
    o.budget o.fast_windows o.slow_windows o.burn_threshold

let describe o =
  match o.kind with
  | Latency ->
      Printf.sprintf
        "p%g%s < %gus (budget %g%%, %gus windows, burn >= %g over %d/%d windows)"
        o.percentile
        (match o.fn with None -> "" | Some fn -> " of " ^ fn)
        (float_of_int o.threshold_ps /. 1e6)
        (100.0 *. o.budget)
        (float_of_int o.window_ps /. 1e6)
        o.burn_threshold o.fast_windows o.slow_windows
  | Availability ->
      Printf.sprintf
        "availability%s >= %g%% (budget %g%%, %gus windows, burn >= %g over \
         %d/%d windows)"
        (match o.fn with None -> "" | Some fn -> " of " ^ fn)
        (100.0 *. (1.0 -. o.budget))
        (100.0 *. o.budget)
        (float_of_int o.window_ps /. 1e6)
        o.burn_threshold o.fast_windows o.slow_windows
