(* Critical-path extraction over a root's span tree.

   A root's own timeline already accounts every picosecond of its life; the
   only intervals that hide nested structure are suspend waits. For each
   suspend interval we resolve the child whose completion released the wait
   (the child of this span with the latest end inside the interval), splice
   the child's attributed timeline into the window, and recurse — the
   result is the longest causal chain's per-phase blame. Residue the child
   does not cover (it was born later, or its completion notification
   preceded the resume) stays suspend wait, as do waits whose child was
   lost to ring wraparound. *)

type blame = {
  phases : int array;  (** ps per {!Span.phase} along the critical path. *)
  chain : (int * string) list;  (** (req_id, fn) of spans on the path. *)
  unresolved_ps : int;  (** Suspend wait left unattributed to any child. *)
}

type acc = {
  blame_acc : int array;
  mutable chain_acc : (int * string) list;
  mutable unresolved : int;
}

let max_depth = 64

let clip (t0, t1) (w0, w1) = (Int.max t0 w0, Int.min t1 w1)

let rec walk r (sp : Span.t) ~window:(w0, w1) ~depth acc =
  if depth > max_depth || w1 <= w0 then ()
  else begin
    acc.chain_acc <- (sp.Span.req_id, sp.Span.fn) :: acc.chain_acc;
    List.iter
      (fun (ph, t0, t1) ->
        let c0, c1 = clip (t0, t1) (w0, w1) in
        if c1 > c0 then
          match ph with
          | Span.Suspend_wait -> resolve_wait r sp ~window:(c0, c1) ~depth acc
          | ph ->
              acc.blame_acc.(Span.phase_index ph) <-
                acc.blame_acc.(Span.phase_index ph) + (c1 - c0))
      (Span.timeline sp)
  end

and resolve_wait r (sp : Span.t) ~window:(c0, c1) ~depth acc =
  (* The child that released this wait: latest end inside the interval. *)
  let best =
    List.fold_left
      (fun best id ->
        match Span.find r id with
        | Some ch when Span.complete ch && ch.Span.end_ps > c0 && ch.Span.end_ps <= c1
          -> (
            match best with
            | Some b when b.Span.end_ps >= ch.Span.end_ps -> best
            | Some _ | None -> Some ch)
        | Some _ | None -> best)
      None
      (Span.children_of r sp.Span.req_id)
  in
  let suspend ps =
    if ps > 0 then
      acc.blame_acc.(Span.phase_index Span.Suspend_wait) <-
        acc.blame_acc.(Span.phase_index Span.Suspend_wait) + ps
  in
  match best with
  | None ->
      suspend (c1 - c0);
      acc.unresolved <- acc.unresolved + (c1 - c0)
  | Some ch ->
      let b0 = Int.max c0 ch.Span.born and b1 = Int.min c1 ch.Span.end_ps in
      (* Residue outside the child's life stays suspend wait. *)
      suspend (c1 - c0 - (b1 - b0));
      walk r ch ~window:(b0, b1) ~depth:(depth + 1) acc

let of_root r (root : Span.t) =
  let acc = { blame_acc = Array.make Span.phase_count 0; chain_acc = []; unresolved = 0 } in
  if Span.complete root then
    walk r root ~window:(root.Span.born, root.Span.end_ps) ~depth:0 acc;
  { phases = acc.blame_acc; chain = List.rev acc.chain_acc; unresolved_ps = acc.unresolved }

let total_ps b = Array.fold_left ( + ) 0 b.phases
