module Trace = Jord_faas.Trace

type phase = Queue_wait | Backoff | Run | Vm_stall | Wire | Suspend_wait

let phase_count = 6
let phase_index = function
  | Queue_wait -> 0
  | Backoff -> 1
  | Run -> 2
  | Vm_stall -> 3
  | Wire -> 4
  | Suspend_wait -> 5

let all_phases = [| Queue_wait; Backoff; Run; Vm_stall; Wire; Suspend_wait |]

let phase_name = function
  | Queue_wait -> "queue_wait"
  | Backoff -> "backoff"
  | Run -> "run"
  | Vm_stall -> "vm_stall"
  | Wire -> "wire"
  | Suspend_wait -> "suspend_wait"

type state = Queued | Running | Suspended | Done

type seg = { t0 : int; t1 : int; core : int; seg_sid : int }

type t = {
  req_id : int;
  root_id : int;
  parent_id : int;
  fn : string;
  mutable sid : int;
  mutable born : int;  (** First Arrive timestamp; -1 when lost to wraparound. *)
  mutable end_ps : int;  (** Complete.at + dur; -1 until complete. *)
  mutable mark : int;  (** Attribution frontier: every ps below it is credited. *)
  mutable state : state;
  mutable wire_open : bool;  (** Last credit was a Forward: next gap is wire. *)
  phases : int array;  (** ps per phase, indexed by [phase_index]. *)
  mutable timeline : (phase * int * int) list;  (** Reversed (newest first). *)
  mutable segs : seg list;  (** Executor occupancy, reversed. *)
  mutable crashes : int;
  mutable retries : int;
  mutable hops : int;
  mutable partial : bool;  (** Born lost to ring wraparound. *)
  mutable dead : bool;  (** Shed (queue_full / deadline): never completes. *)
  mutable anomalies : int;  (** Events observed below the mark (should be 0). *)
}

let e2e_ps sp = if sp.end_ps >= 0 && sp.born >= 0 then sp.end_ps - sp.born else 0
let complete sp = sp.state = Done && sp.born >= 0 && not sp.partial
let phase_ps sp ph = sp.phases.(phase_index ph)
let sum_phases sp = Array.fold_left ( + ) 0 sp.phases

type result = {
  spans : (int, t) Hashtbl.t;  (** By req_id. *)
  order : int list;  (** req_ids in first-appearance order. *)
  children : (int, int list) Hashtbl.t;  (** parent req_id -> children, in order. *)
  truncated : bool;
  total_events : int;
}

let credit sp ph ~t0 ~t1 =
  if t1 > t0 then begin
    sp.phases.(phase_index ph) <- sp.phases.(phase_index ph) + (t1 - t0);
    sp.timeline <- (ph, t0, t1) :: sp.timeline
  end

(* Credit the interval between the attribution frontier and [a] to the
   phase implied by the span's state, then advance the frontier. Events at
   or below the frontier (Suspend is emitted at segment start by design)
   leave it untouched, so the credited total always telescopes. *)
let gap sp a =
  if sp.mark < 0 then begin
    (* No Arrive retained (ring wraparound): anchor here, span is partial. *)
    sp.partial <- true;
    sp.mark <- a
  end
  else if a > sp.mark then begin
    let ph =
      if sp.wire_open then Wire
      else match sp.state with Suspended -> Suspend_wait | _ -> Queue_wait
    in
    credit sp ph ~t0:sp.mark ~t1:a;
    sp.mark <- a
  end
  else if a < sp.mark then sp.anomalies <- sp.anomalies + 1

(* A duration-bearing event: [stall] ps of its [dur] are VM time. *)
let credit_work sp ~a ~dur ~stall ~core =
  gap sp a;
  let stall = Int.max 0 (Int.min stall dur) in
  credit sp Run ~t0:sp.mark ~t1:(sp.mark + dur - stall);
  credit sp Vm_stall ~t0:(sp.mark + dur - stall) ~t1:(sp.mark + dur);
  if dur > 0 then
    sp.segs <- { t0 = sp.mark; t1 = sp.mark + dur; core; seg_sid = sp.sid } :: sp.segs;
  sp.mark <- sp.mark + dur

let fresh (e : Trace.event) =
  {
    req_id = e.Trace.req_id;
    root_id = e.Trace.root_id;
    parent_id = e.Trace.parent_id;
    fn = e.Trace.fn;
    sid = e.Trace.sid;
    born = -1;
    end_ps = -1;
    mark = -1;
    state = Queued;
    wire_open = false;
    phases = Array.make phase_count 0;
    timeline = [];
    segs = [];
    crashes = 0;
    retries = 0;
    hops = 0;
    partial = false;
    dead = false;
    anomalies = 0;
  }

let feed sp (e : Trace.event) =
  let a = e.Trace.at_ps in
  sp.sid <- e.Trace.sid;
  match e.Trace.kind with
  | Trace.Arrive ->
      if sp.born < 0 && sp.mark < 0 then begin
        sp.born <- a;
        sp.mark <- a
      end
      else begin
        gap sp a;
        sp.wire_open <- false
      end;
      sp.state <- Queued
  | Trace.Forward ->
      gap sp a;
      sp.wire_open <- true;
      sp.hops <- sp.hops + 1;
      sp.state <- Queued
  | Trace.Retry ->
      gap sp a;
      credit sp Backoff ~t0:sp.mark ~t1:(sp.mark + e.Trace.dur_ps);
      sp.mark <- sp.mark + e.Trace.dur_ps;
      sp.retries <- sp.retries + 1
  | Trace.Start ->
      gap sp a;
      sp.state <- Running
  | Trace.Segment ->
      credit_work sp ~a ~dur:e.Trace.dur_ps ~stall:e.Trace.stall_ps ~core:e.Trace.core
  | Trace.Suspend ->
      (* Emitted at segment start; the wait begins at the segment's end
         (the current mark), so only the state flips here. *)
      if a > sp.mark then gap sp a;
      sp.state <- Suspended
  | Trace.Resume ->
      gap sp a;
      sp.state <- Running
  | Trace.Complete ->
      credit_work sp ~a ~dur:e.Trace.dur_ps ~stall:e.Trace.stall_ps ~core:e.Trace.core;
      sp.end_ps <- sp.mark;
      sp.state <- Done
  | Trace.Crash ->
      credit_work sp ~a ~dur:e.Trace.dur_ps ~stall:e.Trace.stall_ps ~core:e.Trace.core;
      sp.crashes <- sp.crashes + 1;
      sp.state <- Queued
  | Trace.Timeout -> sp.dead <- true
  | Trace.Drop -> if e.Trace.detail <> "peer_dead" then sp.dead <- true
  | Trace.Dispatch | Trace.Recover | Trace.Duplicate | Trace.Alert
  | Trace.ServerDown | Trace.ServerUp ->
      ()

let build ?(truncated = false) iter_events =
  let spans = Hashtbl.create 1024 in
  let children = Hashtbl.create 256 in
  let order = ref [] in
  let total = ref 0 in
  iter_events (fun (e : Trace.event) ->
      incr total;
      if e.Trace.req_id < 0 then () (* system events (alerts) span nothing *)
      else
      let sp =
        match Hashtbl.find_opt spans e.Trace.req_id with
        | Some sp -> sp
        | None ->
            let sp = fresh e in
            Hashtbl.add spans e.Trace.req_id sp;
            order := e.Trace.req_id :: !order;
            if e.Trace.parent_id >= 0 then
              Hashtbl.replace children e.Trace.parent_id
                (e.Trace.req_id
                :: (Option.value ~default:[] (Hashtbl.find_opt children e.Trace.parent_id)));
            sp
      in
      feed sp e);
  Hashtbl.iter (fun k v -> Hashtbl.replace children k (List.rev v)) children;
  { spans; order = List.rev !order; children; truncated; total_events = !total }

let of_trace tr = build ~truncated:(Trace.truncated tr) (Trace.iter tr)

let find r id = Hashtbl.find_opt r.spans id
let children_of r id = Option.value ~default:[] (Hashtbl.find_opt r.children id)

let iter_spans r f = List.iter (fun id -> f (Hashtbl.find r.spans id)) r.order

let roots r =
  List.rev
    (List.fold_left
       (fun acc id ->
         let sp = Hashtbl.find r.spans id in
         if sp.parent_id < 0 && sp.req_id = sp.root_id then sp :: acc else acc)
       [] r.order)

let timeline sp = List.rev sp.timeline
let segments sp = List.rev sp.segs

(* The conservation identity: for every complete span,
   queue_wait + backoff + run + vm_stall + wire + suspend_wait = end - born,
   exactly, in integer picoseconds. A violation means an instrumentation
   hole (an uncredited interval or an event below the frontier). *)
let conservation_violations r =
  let errs = ref [] in
  iter_spans r (fun sp ->
      if complete sp then begin
        let total = sum_phases sp and e2e = e2e_ps sp in
        if total <> e2e then
          errs :=
            Printf.sprintf
              "req %d (%s): phases sum to %d ps but end-to-end is %d ps (delta %d)"
              sp.req_id sp.fn total e2e (total - e2e)
            :: !errs;
        if sp.anomalies > 0 then
          errs :=
            Printf.sprintf "req %d (%s): %d events below the attribution frontier"
              sp.req_id sp.fn sp.anomalies
            :: !errs
      end);
  List.rev !errs

let stats r =
  let total = ref 0 and done_ = ref 0 and dead = ref 0 and partial = ref 0 in
  iter_spans r (fun sp ->
      incr total;
      if sp.state = Done then incr done_;
      if sp.dead then incr dead;
      if sp.partial then incr partial);
  (!total, !done_, !dead, !partial)
