(** Fixed-size OCaml 5 Domain pool with a deterministic [parmap].

    Work items are expected to be independent, single-threaded computations
    (in this repo: whole seeded simulations). [parmap] gathers results in
    submission order and re-raises the first (by submission index) exception
    a work item threw, so a pool of size 1 — which runs everything in the
    calling domain without spawning — is observably identical to
    [List.map]. With size > 1 the items' side effects may interleave, but
    the returned list (and any raised exception) cannot tell the difference
    as long as items are independent.

    [parmap] called from inside one of the pool's own worker domains falls
    back to a sequential [List.map] instead of deadlocking on its own
    queue. *)

type t

val create : jobs:int -> t
(** A pool of [jobs] worker domains ([jobs - 0] domains are spawned when
    [jobs > 1]; a size-1 pool spawns none).
    @raise Invalid_argument when [jobs < 1]. *)

val jobs : t -> int
(** The pool size given to {!create}. *)

val parmap : t -> ('a -> 'b) -> 'a list -> 'b list
(** [parmap pool f xs] applies [f] to every element of [xs] on the pool and
    returns the results in the order of [xs]. All items run to completion
    even when one raises; afterwards the exception of the lowest-index
    failed item is re-raised (with its backtrace) and the pool remains
    usable. *)

val shutdown : t -> unit
(** Join the worker domains. Idempotent; the pool must be idle. After
    shutdown, [parmap] falls back to sequential execution. *)

val with_pool : jobs:int -> (t -> 'a) -> 'a
(** [with_pool ~jobs f] runs [f] on a fresh pool and shuts it down
    afterwards, whether [f] returns or raises. *)

val set_default_jobs : int -> unit
(** Configure the process-wide shared pool used by {!default}. Shuts down
    any previously created default pool (which must be idle) and takes
    effect at the next {!default} call.
    @raise Invalid_argument when the argument is [< 1]. *)

val default : unit -> t
(** The process-wide shared pool, created lazily at first use. Its size is
    the last [set_default_jobs] value, else the [JORD_JOBS] environment
    variable, else 1 — so unconfigured processes stay sequential. *)

val default_jobs : unit -> int
(** The size {!default} has (or would be created with). *)
