(* A fixed-size domain pool feeding workers from one mutex-protected queue.

   Determinism contract: parmap writes each result into a slot indexed by
   the item's submission position and re-raises the lowest-index exception
   only after every submitted item finished, so the observable outcome is
   independent of which worker ran what and in which order. *)

type task = unit -> unit

type t = {
  jobs : int;
  mutex : Mutex.t;
  nonempty : Condition.t;
  tasks : task Queue.t;
  mutable stop : bool;
  mutable workers : unit Domain.t list;
  mutable worker_ids : Domain.id list;
}

let worker_loop pool () =
  let rec next () =
    Mutex.lock pool.mutex;
    let rec await () =
      if pool.stop then begin
        Mutex.unlock pool.mutex;
        None
      end
      else
        match Queue.take_opt pool.tasks with
        | Some task ->
            Mutex.unlock pool.mutex;
            Some task
        | None ->
            Condition.wait pool.nonempty pool.mutex;
            await ()
    in
    match await () with
    | None -> ()
    | Some task ->
        (* Tasks wrap their own exceptions; a raise here is a pool bug. *)
        task ();
        next ()
  in
  next ()

let create ~jobs =
  if jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  let pool =
    {
      jobs;
      mutex = Mutex.create ();
      nonempty = Condition.create ();
      tasks = Queue.create ();
      stop = false;
      workers = [];
      worker_ids = [];
    }
  in
  if jobs > 1 then begin
    pool.workers <- List.init jobs (fun _ -> Domain.spawn (worker_loop pool));
    pool.worker_ids <- List.map Domain.get_id pool.workers
  end;
  pool

let jobs pool = pool.jobs

let shutdown pool =
  Mutex.lock pool.mutex;
  pool.stop <- true;
  Condition.broadcast pool.nonempty;
  Mutex.unlock pool.mutex;
  List.iter Domain.join pool.workers;
  pool.workers <- [];
  pool.worker_ids <- []

let in_pool pool = List.mem (Domain.self ()) pool.worker_ids

let parmap pool f xs =
  if pool.jobs <= 1 || pool.workers = [] || in_pool pool then List.map f xs
  else begin
    let items = Array.of_list xs in
    let n = Array.length items in
    if n = 0 then []
    else begin
      let results = Array.make n None in
      let finished = Mutex.create () in
      let all_done = Condition.create () in
      let remaining = ref n in
      let run i x () =
        let r =
          try Ok (f x) with e -> Error (e, Printexc.get_raw_backtrace ())
        in
        Mutex.lock finished;
        results.(i) <- Some r;
        decr remaining;
        if !remaining = 0 then Condition.signal all_done;
        Mutex.unlock finished
      in
      Mutex.lock pool.mutex;
      Array.iteri (fun i x -> Queue.add (run i x) pool.tasks) items;
      Condition.broadcast pool.nonempty;
      Mutex.unlock pool.mutex;
      Mutex.lock finished;
      while !remaining > 0 do
        Condition.wait all_done finished
      done;
      Mutex.unlock finished;
      (* Sequential semantics: the first (submission-order) failure wins. *)
      Array.iter
        (function
          | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
          | Some (Ok _) | None -> ())
        results;
      Array.to_list
        (Array.map
           (function
             | Some (Ok v) -> v
             | Some (Error _) | None -> assert false)
           results)
    end
  end

let with_pool ~jobs f =
  let pool = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

(* --- process-wide shared pool --- *)

let env_jobs () =
  match Sys.getenv_opt "JORD_JOBS" with
  | None -> None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> Some n
      | Some _ | None -> None)

let configured_jobs : int option ref = ref None
let shared : t option ref = ref None

let default_jobs () =
  match !configured_jobs with
  | Some n -> n
  | None -> ( match env_jobs () with Some n -> n | None -> 1)

let set_default_jobs n =
  if n < 1 then invalid_arg "Pool.set_default_jobs: jobs must be >= 1";
  configured_jobs := Some n;
  match !shared with
  | Some pool when pool.jobs <> n ->
      shutdown pool;
      shared := None
  | Some _ | None -> ()

let default () =
  match !shared with
  | Some pool -> pool
  | None ->
      let pool = create ~jobs:(default_jobs ()) in
      shared := Some pool;
      pool
