(* Structured benchmarks: every experiment returns a Bench_json.doc whose
   Time metrics are host wall-clock (median/IQR over repetitions; advisory
   in CI) and whose Count metrics are deterministic — simulated results,
   event counts and per-op minor-heap allocation. A Count moving beyond
   tolerance means the implementation's arithmetic or allocation profile
   changed, which is exactly what the perf-regression gate must catch.

   Deterministic metrics carry a tight 0.1% tolerance: far above the JSON
   round-trip's %.6g rounding, far below any real behaviour change.
   Allocation metrics get 50%: minor words per op are stable for a given
   compiler but may shift across OCaml versions. *)

module B = Jord_util.Bench_json

let det_tol = 0.001
let alloc_tol = 0.5

(* Wall-clock ns/op over [reps] repetitions of [iters] calls (one warmup
   repetition is discarded). *)
let time_ns ~reps ~iters f =
  let rep () =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to iters do
      f ()
    done;
    (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int iters
  in
  ignore (rep ());
  List.init reps (fun _ -> rep ())

(* Minor-heap words allocated per call, measured on the calling domain. *)
let minor_words ~iters f =
  f ();
  let w0 = Gc.minor_words () in
  for _ = 1 to iters do
    f ()
  done;
  (Gc.minor_words () -. w0) /. float_of_int iters

let reps quick = if quick then 5 else 9

(* --- engine: event-queue hot path --- *)

let engine ~quick =
  let iters = if quick then 20_000 else 60_000 in
  let counter = ref 0 in
  let batch () =
    let q = Jord_sim.Event_queue.create () in
    incr counter;
    for i = 0 to 15 do
      ignore
        (Jord_sim.Event_queue.push q ~time:((!counter + i) mod 97) i
          : Jord_sim.Event_queue.handle)
    done;
    while Jord_sim.Event_queue.pop q <> None do
      ()
    done
  in
  let per_batch = time_ns ~reps:(reps quick) ~iters batch in
  let words = minor_words ~iters:2_000 batch in
  {
    B.experiment = "engine";
    metrics =
      [
        B.metric ~name:"queue_push_pop_x16" ~unit_:"ns/batch" per_batch;
        B.count ~tolerance:alloc_tol ~name:"queue_push_pop_x16_minor_words"
          ~unit_:"words/batch" words;
      ];
  }

(* --- vm: VLB / VMA-store / memsys hot paths --- *)

let vm ~quick =
  let cfg = Jord_vm.Va.default_config in
  let mk_vte index =
    let sc = Jord_vm.Size_class.of_size 4096 in
    let base = Jord_vm.Va.encode cfg sc ~index ~offset:0 in
    Jord_vm.Vte.create ~base ~bytes:4096 ~phys:(0x100000 + (index * 4096)) ()
  in
  let plain = Jord_vm.Vma_table.create cfg in
  let btree = Jord_vm.Vma_btree.create () in
  for i = 0 to 999 do
    ignore (Jord_vm.Vma_table.insert plain (mk_vte i));
    ignore (Jord_vm.Vma_btree.insert btree (mk_vte i))
  done;
  let probe = Jord_vm.Vte.base (mk_vte 500) + 64 in
  let vlb = Jord_vm.Vlb.create ~entries:16 in
  for i = 0 to 15 do
    Jord_vm.Vlb.fill vlb ~vte_addr:i (mk_vte i)
  done;
  let vlb_probe = Jord_vm.Vte.base (mk_vte 7) + 5 in
  let memsys =
    Jord_arch.Memsys.create (Jord_arch.Topology.create Jord_arch.Config.default)
  in
  let iters = if quick then 50_000 else 200_000 in
  let r = reps quick in
  let t name f = B.metric ~name ~unit_:"ns/op" (time_ns ~reps:r ~iters f) in
  {
    B.experiment = "vm";
    metrics =
      [
        t "vlb_lookup" (fun () -> ignore (Jord_vm.Vlb.lookup vlb ~va:vlb_probe));
        t "vma_plain_lookup" (fun () ->
            ignore (Jord_vm.Vma_table.lookup plain ~va:probe));
        t "vma_btree_lookup" (fun () ->
            ignore (Jord_vm.Vma_btree.lookup btree ~va:probe));
        t "memsys_read_hit" (fun () ->
            ignore (Jord_arch.Memsys.read memsys ~core:0 ~addr:0x4000));
        B.count ~tolerance:det_tol ~name:"btree_rebalances_1k" ~unit_:"ops"
          (float_of_int (Jord_vm.Vma_btree.rebalance_ops btree));
      ];
  }

(* --- server: steady-state throughput of one seeded simulation --- *)

let server ~quick =
  let config = Exp_common.config_for Jord_faas.Variant.Jord in
  let duration_us = if quick then 800.0 else 2500.0 in
  let t0 = Unix.gettimeofday () in
  let server, recorder =
    Jord_workloads.Loadgen.run ~warmup:200 ~app:Jord_workloads.Hipster.app ~config
      ~rate_mrps:4.0 ~duration_us ()
  in
  let wall_ns = (Unix.gettimeofday () -. t0) *. 1e9 in
  let events = Jord_sim.Engine.processed (Jord_faas.Server.engine server) in
  let open Jord_metrics.Recorder in
  {
    B.experiment = "server";
    metrics =
      [
        B.count ~tolerance:det_tol ~name:"completed" ~unit_:"requests"
          (float_of_int (count recorder));
        B.count ~tolerance:det_tol ~name:"events" ~unit_:"events"
          (float_of_int events);
        B.count ~tolerance:det_tol ~name:"throughput" ~unit_:"mrps"
          (throughput_mrps recorder);
        B.count ~tolerance:det_tol ~name:"p99" ~unit_:"us" (p99_us recorder);
        B.metric ~name:"wall_per_event" ~unit_:"ns/event"
          [ wall_ns /. float_of_int (Int.max 1 events) ];
      ];
  }

(* --- cluster: cross-server forwarding under tight queues --- *)

let fanout_app =
  let open Jord_faas.Model in
  let leaf =
    {
      name = "leaf";
      make_phases = (fun _ -> [ compute 2000.0 ]);
      state_bytes = 1024;
      code_bytes = 1024;
    }
  in
  let entry =
    {
      name = "entry";
      make_phases =
        (fun _ ->
          List.init 6 (fun _ -> invoke ~mode:Async ~arg_bytes:256 "leaf") @ [ wait ]);
      state_bytes = 1024;
      code_bytes = 1024;
    }
  in
  { app_name = "fanout"; fns = [ entry; leaf ]; entries = [ ("entry", 1.0) ] }

let cluster ~quick =
  let config =
    {
      (Exp_common.config_for Jord_faas.Variant.Jord) with
      Jord_faas.Server.machine =
        Jord_arch.Config.with_cores Jord_arch.Config.default 8;
      orchestrators = 1;
      queue_capacity = 2;
    }
  in
  let duration_us = if quick then 600.0 else 2000.0 in
  let t0 = Unix.gettimeofday () in
  let cluster, recorder =
    Jord_workloads.Loadgen.run_cluster ~forward_after:2 ~servers:3 ~warmup:50
      ~app:fanout_app ~config ~rate_mrps:1.5 ~duration_us ()
  in
  let wall_ns = (Unix.gettimeofday () -. t0) *. 1e9 in
  let events = Jord_sim.Engine.processed (Jord_faas.Cluster.engine cluster) in
  let members = Jord_faas.Cluster.servers cluster in
  let sum f = Array.fold_left (fun acc s -> acc + f s) 0 members in
  {
    B.experiment = "cluster";
    metrics =
      [
        B.count ~tolerance:det_tol ~name:"completed" ~unit_:"requests"
          (float_of_int (Jord_metrics.Recorder.count recorder));
        B.count ~tolerance:det_tol ~name:"events" ~unit_:"events"
          (float_of_int events);
        B.count ~tolerance:det_tol ~name:"forwarded_out" ~unit_:"requests"
          (float_of_int (sum Jord_faas.Server.forwarded_out));
        B.count ~tolerance:det_tol ~name:"received_in" ~unit_:"requests"
          (float_of_int (sum Jord_faas.Server.received_in));
        B.metric ~name:"wall_per_event" ~unit_:"ns/event"
          [ wall_ns /. float_of_int (Int.max 1 events) ];
      ];
  }

(* --- cluster_sharded: the conservative parallel core. One seeded 8-server
   fanout workload run twice per repetition — sequentially (shards=1, the
   historical shared engine) and on 4 parallel engine shards — with a full
   result signature compared for byte-equality. The signature match is the
   hard gate (determinism_ok); events/sec and the sharded/sequential
   speedup are host wall-clock, so advisory. --- *)

let cluster_sharded ~quick =
  let servers = 8 in
  let shards = 4 in
  let config =
    {
      (Exp_common.config_for Jord_faas.Variant.Jord) with
      Jord_faas.Server.machine =
        Jord_arch.Config.with_cores Jord_arch.Config.default 8;
      orchestrators = 1;
      queue_capacity = 2;
    }
  in
  let duration_us = if quick then 600.0 else 2000.0 in
  let run ~shards =
    let t0 = Unix.gettimeofday () in
    let cluster, recorder =
      Jord_workloads.Loadgen.run_cluster ~forward_after:2 ~shards ~servers
        ~warmup:50 ~app:fanout_app ~config ~rate_mrps:3.0 ~duration_us ()
    in
    let wall_s = Unix.gettimeofday () -. t0 in
    let members = Jord_faas.Cluster.servers cluster in
    let sum f = Array.fold_left (fun acc s -> acc + f s) 0 members in
    let open Jord_metrics.Recorder in
    let signature =
      Printf.sprintf "count=%d events=%d out=%d in=%d p99=%.17g tput=%.17g"
        (count recorder)
        (Jord_faas.Cluster.events_processed cluster)
        (sum Jord_faas.Server.forwarded_out)
        (sum Jord_faas.Server.received_in)
        (p99_us recorder) (throughput_mrps recorder)
    in
    ( signature,
      float_of_int (count recorder),
      Jord_faas.Cluster.events_processed cluster,
      wall_s )
  in
  ignore (run ~shards);
  ignore (run ~shards:1);
  let pairs = List.init (reps quick) (fun _ -> (run ~shards:1, run ~shards)) in
  let identical =
    List.for_all (fun ((sig_seq, _, _, _), (sig_shd, _, _, _)) -> sig_seq = sig_shd)
      pairs
  in
  let (_, completed, events, _), _ = List.hd pairs in
  let rate_of (_, _, events, wall_s) =
    float_of_int events /. Float.max wall_s 1e-9
  in
  {
    B.experiment = "cluster_sharded";
    metrics =
      [
        (* The conservative core's contract: 1.0 iff every repetition's
           sharded signature was byte-equal to the sequential one. *)
        B.count ~tolerance:det_tol ~name:"determinism_ok" ~unit_:"bool"
          (if identical then 1.0 else 0.0);
        B.count ~tolerance:det_tol ~name:"completed" ~unit_:"requests" completed;
        B.count ~tolerance:det_tol ~name:"events" ~unit_:"events"
          (float_of_int events);
        B.metric ~name:"events_per_sec_seq" ~unit_:"events/s"
          (List.map (fun (seq, _) -> rate_of seq) pairs);
        B.metric ~name:"events_per_sec_sharded" ~unit_:"events/s"
          (List.map (fun (_, shd) -> rate_of shd) pairs);
        (* > 1.0 whenever the host gives the 4 shard domains real cores;
           on starved CI runners the barrier overhead can push it below. *)
        B.metric ~name:"sharded_speedup" ~unit_:"ratio"
          (List.map (fun (seq, shd) -> rate_of shd /. Float.max (rate_of seq) 1e-9)
             pairs);
      ];
  }

(* --- chaos_failover: the server failure domain under sharding. One seeded
   3-server fanout workload under a whole-server-crash fault plan, run
   sequentially (shards=1) and on 3 parallel engine shards, with the full
   chaos signature — completions, crash/recovery counters and every
   transport stat — compared for byte-equality. The signature match and
   the conservation invariants are the hard gates (determinism_ok,
   invariants_ok); the chaos counters are deterministic counts, so the
   baseline also pins how much failure the plan actually injects. --- *)

let chaos_failover ~quick =
  let plan =
    {
      Jord_fault_inject.Plan.ci_smoke with
      Jord_fault_inject.Plan.server_crash = 0.002;
      server_down_us = 20.0;
      warm_loss = 1.0;
    }
  in
  let config =
    {
      (Exp_common.config_for Jord_faas.Variant.Jord) with
      Jord_faas.Server.machine =
        Jord_arch.Config.with_cores Jord_arch.Config.default 8;
      orchestrators = 1;
      queue_capacity = 2;
      fault_plan = Some plan;
    }
  in
  let duration_us = if quick then 600.0 else 2000.0 in
  let run ~shards =
    let cluster, recorder =
      Jord_workloads.Loadgen.run_cluster ~forward_after:2 ~shards ~servers:3
        ~warmup:50 ~app:fanout_app ~config ~rate_mrps:1.5 ~duration_us ()
    in
    let members = Jord_faas.Cluster.servers cluster in
    let sum f = Array.fold_left (fun acc s -> acc + f s) 0 members in
    let s = Option.get (Jord_faas.Cluster.net_stats cluster) in
    let signature =
      Printf.sprintf
        "count=%d events=%d crashes=%d srv=%d warm=%d cold=%d rec=%d \
         xfers=%d copies=%d lost=%d dup=%d down=%d acked=%d retries=%d \
         abandoned=%d failover=%d dead=%d probe=%d p99=%.17g"
        (Jord_metrics.Recorder.count recorder)
        (Jord_faas.Cluster.events_processed cluster)
        (sum Jord_faas.Server.crashes)
        (sum Jord_faas.Server.server_crashes)
        (sum Jord_faas.Server.warm_losses)
        (sum Jord_faas.Server.cold_starts)
        (sum Jord_faas.Server.recovered)
        s.Jord_faas.Cluster.xfers s.Jord_faas.Cluster.wire_copies
        s.Jord_faas.Cluster.lost s.Jord_faas.Cluster.dup_dropped
        s.Jord_faas.Cluster.dropped_down s.Jord_faas.Cluster.acked
        s.Jord_faas.Cluster.retries s.Jord_faas.Cluster.abandoned
        s.Jord_faas.Cluster.failover s.Jord_faas.Cluster.peers_marked_dead
        s.Jord_faas.Cluster.peers_unquarantined
        (Jord_metrics.Recorder.p99_us recorder)
    in
    let clean = Jord_faas.Cluster.check_invariants cluster = [] in
    ( signature,
      clean,
      float_of_int (Jord_metrics.Recorder.count recorder),
      float_of_int (sum Jord_faas.Server.server_crashes),
      float_of_int s.Jord_faas.Cluster.failover )
  in
  let pairs = List.init (reps quick) (fun _ -> (run ~shards:1, run ~shards:3)) in
  let identical =
    List.for_all
      (fun ((sig_seq, _, _, _, _), (sig_shd, _, _, _, _)) -> sig_seq = sig_shd)
      pairs
  in
  let all_clean =
    List.for_all
      (fun ((_, c1, _, _, _), (_, c2, _, _, _)) -> c1 && c2)
      pairs
  in
  let (_, _, completed, server_crashes, failover), _ = List.hd pairs in
  {
    B.experiment = "chaos_failover";
    metrics =
      [
        (* Hard gate: any fault plan replays byte-identically at every
           shard count — sharded chaos is part of the determinism contract. *)
        B.count ~tolerance:det_tol ~name:"determinism_ok" ~unit_:"bool"
          (if identical then 1.0 else 0.0);
        (* Hard gate: no request lost or executed twice through whole-server
           crashes, failover and local re-execution. *)
        B.count ~tolerance:det_tol ~name:"invariants_ok" ~unit_:"bool"
          (if all_clean then 1.0 else 0.0);
        B.count ~tolerance:det_tol ~name:"completed" ~unit_:"requests" completed;
        B.count ~tolerance:det_tol ~name:"server_crashes" ~unit_:"crashes"
          server_crashes;
        B.count ~tolerance:det_tol ~name:"failover" ~unit_:"transfers" failover;
      ];
  }

(* --- fleet_scale: the datacenter layer over the parallel core. One seeded
   64-server fleet under autoscaled flash-crowd traffic, run sequentially
   (shards=1) and on 4 engine shards (balancer shard + 3 server shards),
   with the full result signature — routing, autoscale actions, cold
   starts, the latency quantile and the SLO rollup verdicts — compared for
   byte-equality. The signature match is the hard gate (determinism_ok);
   the deterministic counts pin how much the autoscaler and the flash crowd
   actually do; events/sec and the speedup are host wall-clock, so
   advisory. --- *)

let fleet_scale ~quick =
  let duration_us = if quick then 400.0 else 1200.0 in
  let shape =
    match Jord_workloads.Traffic.parse "ci,users=100000,rate=40" with
    | Ok s -> s
    | Error m -> failwith ("fleet_scale: " ^ m)
  in
  let autoscale =
    match Jord_fleet.Autoscaler.parse "fast,min=12,boot-us=60" with
    | Ok s -> s
    | Error m -> failwith ("fleet_scale: " ^ m)
  in
  let slo =
    match Jord_obsv.Slo.parse "ci" with
    | Ok o -> o
    | Error m -> failwith ("fleet_scale: " ^ m)
  in
  let run ~shards =
    let cfg =
      {
        Jord_fleet.Fleet.default_config with
        Jord_fleet.Fleet.servers = 64;
        member =
          { Jord_fleet.Fserver.default_config with Jord_fleet.Fserver.slots = 8; queue_cap = 32 };
        autoscale = Some autoscale;
        shards;
      }
    in
    let t0 = Unix.gettimeofday () in
    let t = Jord_fleet.Fleet.create cfg ~app:Jord_workloads.Hipster.app in
    Jord_fleet.Fleet.run ~slo t ~shape ~duration_us;
    let wall_s = Unix.gettimeofday () -. t0 in
    let module F = Jord_fleet.Fleet in
    let rollup_sig =
      match F.rollup t with
      | None -> "none"
      | Some r ->
          String.concat ";"
            (List.map
               (fun (row : Jord_obsv.Rollup.row) ->
                 Printf.sprintf "%s:%d/%d/%d:%s"
                   row.Jord_obsv.Rollup.r_objective.Jord_obsv.Slo.name
                   row.Jord_obsv.Rollup.r_requests row.Jord_obsv.Rollup.r_bad
                   row.Jord_obsv.Rollup.r_shed row.Jord_obsv.Rollup.r_verdict)
               (Jord_obsv.Rollup.rows r))
    in
    let signature =
      Printf.sprintf
        "arr=%d routed=%d done=%d shed=%d hits=%d cold=%d boots=%d drains=%d \
         events=%d p99=%d mean=%.17g slo=[%s]"
        (F.arrivals t) (F.routed t) (F.completed t) (F.shed t)
        (F.affinity_hits t) (F.cold_starts t) (F.boots t) (F.drains t)
        (F.events_processed t)
        (Jord_telemetry.Sketch.quantile (F.latency t) 99.0)
        (Jord_telemetry.Sketch.mean (F.latency t))
        rollup_sig
    in
    ( signature,
      float_of_int (F.completed t),
      float_of_int (F.cold_starts t),
      float_of_int (F.boots t),
      float_of_int (F.drains t),
      (F.events_processed t, wall_s) )
  in
  ignore (run ~shards:4);
  ignore (run ~shards:1);
  let pairs = List.init (reps quick) (fun _ -> (run ~shards:1, run ~shards:4)) in
  let identical =
    List.for_all
      (fun ((sig_seq, _, _, _, _, _), (sig_shd, _, _, _, _, _)) ->
        sig_seq = sig_shd)
      pairs
  in
  let (_, completed, cold_starts, boots, drains, _), _ = List.hd pairs in
  let rate_of (events, wall_s) = float_of_int events /. Float.max wall_s 1e-9 in
  {
    B.experiment = "fleet_scale";
    metrics =
      [
        (* Hard gate: a fleet run — balancer decisions, autoscale actions,
           cold starts, SLO verdicts — is byte-identical at any shard
           count. *)
        B.count ~tolerance:det_tol ~name:"determinism_ok" ~unit_:"bool"
          (if identical then 1.0 else 0.0);
        B.count ~tolerance:det_tol ~name:"completed" ~unit_:"requests" completed;
        B.count ~tolerance:det_tol ~name:"cold_starts" ~unit_:"starts" cold_starts;
        B.count ~tolerance:det_tol ~name:"boots" ~unit_:"servers" boots;
        B.count ~tolerance:det_tol ~name:"drains" ~unit_:"servers" drains;
        B.metric ~name:"events_per_sec_seq" ~unit_:"events/s"
          (List.map (fun ((_, _, _, _, _, seq), _) -> rate_of seq) pairs);
        B.metric ~name:"events_per_sec_sharded" ~unit_:"events/s"
          (List.map (fun (_, (_, _, _, _, _, shd)) -> rate_of shd) pairs);
        B.metric ~name:"sharded_speedup" ~unit_:"ratio"
          (List.map
             (fun ((_, _, _, _, _, seq), (_, _, _, _, _, shd)) ->
               rate_of shd /. Float.max (rate_of seq) 1e-9)
             pairs);
      ];
  }

(* --- fleet_trace_overhead: cost and determinism of fleet causal tracing.
   One seeded autoscaled flash-crowd fleet, run untraced and traced on the
   same seeds. Hard gates: the tracer leaves the simulation untouched (the
   traced run's fleet signature equals the untraced one), the whole trace
   surface — retained span lines plus the verdict table with its exemplar
   column — is byte-identical at shards 1 and 4, the retained-span census
   is pinned, and every exemplar id named by a verdict row or closed
   window is present in the retained set. The wall-clock cost of tracing
   is advisory (target <= ~1.1x). --- *)

let fleet_trace_overhead ~quick =
  let duration_us = if quick then 400.0 else 1200.0 in
  let shape =
    match Jord_workloads.Traffic.parse "flash,users=100000,rate=40" with
    | Ok s -> s
    | Error m -> failwith ("fleet_trace_overhead: " ^ m)
  in
  let autoscale =
    match Jord_fleet.Autoscaler.parse "fast,min=12,boot-us=60" with
    | Ok s -> s
    | Error m -> failwith ("fleet_trace_overhead: " ^ m)
  in
  let slo =
    match Jord_obsv.Slo.parse "ci" with
    | Ok o -> o
    | Error m -> failwith ("fleet_trace_overhead: " ^ m)
  in
  let module F = Jord_fleet.Fleet in
  let module Ftrace = Jord_obsv.Ftrace in
  let run ~shards ~traced =
    let cfg =
      {
        F.default_config with
        F.servers = 64;
        member =
          { Jord_fleet.Fserver.default_config with Jord_fleet.Fserver.slots = 8; queue_cap = 32 };
        autoscale = Some autoscale;
        shards;
      }
    in
    let tracer = if traced then Some (Ftrace.create ()) else None in
    let t0 = Unix.gettimeofday () in
    let t = F.create cfg ~app:Jord_workloads.Hipster.app in
    F.run ~slo ?tracer t ~shape ~duration_us;
    let wall_s = Unix.gettimeofday () -. t0 in
    let fleet_sig =
      Printf.sprintf "arr=%d done=%d shed=%d cold=%d events=%d p99=%d"
        (F.arrivals t) (F.completed t) (F.shed t) (F.cold_starts t)
        (F.events_processed t)
        (Jord_telemetry.Sketch.quantile (F.latency t) 99.0)
    in
    let trace_sig, retained, exemplars_ok =
      match tracer with
      | None -> ("untraced", 0, true)
      | Some tr ->
          let lines =
            List.map
              (fun (keep, sp) -> Jord_obsv.Fspan.to_json_line ~keep sp)
              (Ftrace.retained tr)
          in
          let ids = Ftrace.retained_ids tr in
          let rollup_text =
            match F.rollup t with
            | Some r -> Jord_obsv.Rollup.report_text r
            | None -> "no-rollup"
          in
          let ex_ok =
            match F.rollup t with
            | None -> true
            | Some r ->
                List.for_all
                  (fun (row : Jord_obsv.Rollup.row) ->
                    row.Jord_obsv.Rollup.r_exemplar < 0
                    || List.mem row.Jord_obsv.Rollup.r_exemplar ids)
                  (Jord_obsv.Rollup.rows r)
                && List.for_all
                     (fun (_, ws) ->
                       List.for_all
                         (fun (cw : Jord_obsv.Rollup.closed_window) ->
                           cw.Jord_obsv.Rollup.cw_exemplar < 0
                           || List.mem cw.Jord_obsv.Rollup.cw_exemplar ids)
                         ws)
                     (Jord_obsv.Rollup.windows r)
          in
          (String.concat "\n" (rollup_text :: lines), List.length lines, ex_ok)
    in
    (fleet_sig, trace_sig, retained, exemplars_ok, (F.events_processed t, wall_s))
  in
  ignore (run ~shards:1 ~traced:true);
  let pairs =
    List.init (reps quick) (fun _ ->
        (run ~shards:1 ~traced:false, run ~shards:1 ~traced:true))
  in
  let fsig_off, _, _, _, _ = fst (List.hd pairs) in
  let fsig_on, tsig_on, retained, exemplars_ok, _ = snd (List.hd pairs) in
  let _, tsig_shd, _, _, _ = run ~shards:4 ~traced:true in
  let stable =
    List.for_all
      (fun ((fo, _, _, _, _), (fn_, ts, _, _, _)) ->
        fo = fsig_off && fn_ = fsig_on && ts = tsig_on)
      pairs
  in
  let rate_of (events, wall_s) = float_of_int events /. Float.max wall_s 1e-9 in
  {
    B.experiment = "fleet_trace_overhead";
    metrics =
      [
        (* Hard gates: tracing never perturbs the simulation, and the
           trace surface is shard-invariant and repeatable. *)
        B.count ~tolerance:det_tol ~name:"sim_unperturbed" ~unit_:"bool"
          (if fsig_off = fsig_on && stable then 1.0 else 0.0);
        B.count ~tolerance:det_tol ~name:"determinism_ok" ~unit_:"bool"
          (if tsig_on = tsig_shd then 1.0 else 0.0);
        B.count ~tolerance:det_tol ~name:"exemplars_ok" ~unit_:"bool"
          (if exemplars_ok then 1.0 else 0.0);
        B.count ~tolerance:det_tol ~name:"retained_spans" ~unit_:"spans"
          (float_of_int retained);
        B.metric ~name:"events_per_sec_untraced" ~unit_:"events/s"
          (List.map (fun ((_, _, _, _, off), _) -> rate_of off) pairs);
        B.metric ~name:"events_per_sec_traced" ~unit_:"events/s"
          (List.map (fun (_, (_, _, _, _, on)) -> rate_of on) pairs);
        (* Wall-clock slowdown of the traced run over the untraced run of
           the same seeded simulation (1.0 = free; advisory, ~1.1x). *)
        B.metric ~name:"fleet_trace_overhead" ~unit_:"ratio"
          (List.map
             (fun ((_, _, _, _, off), (_, _, _, _, on)) ->
               snd on /. Float.max (snd off) 1e-9)
             pairs);
      ];
  }

(* --- trace: cost of causal tracing on the single-server hot path --- *)

let trace ~quick =
  let config = Exp_common.config_for Jord_faas.Variant.Jord in
  let duration_us = if quick then 500.0 else 1200.0 in
  let run ?tracer () =
    let t0 = Unix.gettimeofday () in
    let server, _ =
      Jord_workloads.Loadgen.run ?tracer ~warmup:100
        ~app:Jord_workloads.Hipster.app ~config ~rate_mrps:3.0 ~duration_us ()
    in
    let wall_s = Unix.gettimeofday () -. t0 in
    (Jord_sim.Engine.processed (Jord_faas.Server.engine server), wall_s)
  in
  ignore (run ());
  let r = reps quick in
  let emitted = ref 0 in
  let pairs =
    List.init r (fun _ ->
        let events_off, off_s = run () in
        let tr = Jord_faas.Trace.create () in
        let events_on, on_s = run ~tracer:tr () in
        emitted := Jord_faas.Trace.total_emitted tr;
        ((events_off, off_s), (events_on, on_s)))
  in
  let rate_of (events, s) = float_of_int events /. Float.max s 1e-9 in
  {
    B.experiment = "trace";
    metrics =
      [
        B.metric ~name:"events_per_sec_off" ~unit_:"events/s"
          (List.map (fun (off, _) -> rate_of off) pairs);
        B.metric ~name:"events_per_sec_on" ~unit_:"events/s"
          (List.map (fun (_, on) -> rate_of on) pairs);
        (* Wall-clock slowdown of the traced run over the untraced run of
           the same seeded simulation (1.0 = free). *)
        B.metric ~name:"trace_overhead" ~unit_:"ratio"
          (List.map (fun ((_, off_s), (_, on_s)) -> on_s /. Float.max off_s 1e-9) pairs);
        B.count ~tolerance:det_tol ~name:"trace_events_emitted" ~unit_:"events"
          (float_of_int !emitted);
      ];
  }

(* --- slo_overhead: cost of the online SLO plane over plain tracing --- *)

let slo_overhead ~quick =
  let config = Exp_common.config_for Jord_faas.Variant.Jord in
  let duration_us = if quick then 500.0 else 1200.0 in
  (* A threshold below this workload's p99 so windows carry bad requests and
     the burn-rate rule does real transitions, not just bookkeeping. *)
  let objectives =
    match Jord_obsv.Slo.parse "p=99,threshold_us=6,window_us=100,budget=0.02,slow=3" with
    | Ok objs -> objs
    | Error msg -> failwith ("slo_overhead: " ^ msg)
  in
  let run ~slo () =
    let tracer = Jord_faas.Trace.create () in
    let pipeline =
      if slo then begin
        let p = Jord_obsv.Online.create objectives in
        Jord_obsv.Online.attach p tracer;
        Some p
      end
      else None
    in
    let t0 = Unix.gettimeofday () in
    let server, _ =
      Jord_workloads.Loadgen.run ~tracer ~warmup:100
        ~app:Jord_workloads.Hipster.app ~config ~rate_mrps:3.0 ~duration_us ()
    in
    let wall_s = Unix.gettimeofday () -. t0 in
    Option.iter
      (fun p ->
        Jord_obsv.Online.finish p
          ~now_ps:(Jord_sim.Engine.now (Jord_faas.Server.engine server)))
      pipeline;
    (wall_s, pipeline)
  in
  ignore (run ~slo:true ());
  let r = reps quick in
  let last_pipeline = ref None in
  let pairs =
    List.init r (fun _ ->
        let off_s, _ = run ~slo:false () in
        let on_s, p = run ~slo:true () in
        last_pipeline := p;
        (off_s, on_s))
  in
  let snaps =
    match !last_pipeline with
    | Some p -> Jord_obsv.Online.snapshot p
    | None -> []
  in
  let sum f = List.fold_left (fun acc s -> acc + f s) 0 snaps in
  {
    B.experiment = "slo_overhead";
    metrics =
      [
        (* Wall-clock slowdown of traced+SLO over traced-only of the same
           seeded simulation (1.0 = the pipeline is free). *)
        B.metric ~name:"slo_overhead" ~unit_:"ratio"
          (List.map (fun (off_s, on_s) -> on_s /. Float.max off_s 1e-9) pairs);
        B.count ~tolerance:det_tol ~name:"slo_requests" ~unit_:"requests"
          (float_of_int (sum (fun s -> s.Jord_obsv.Online.s_completed + s.Jord_obsv.Online.s_shed)));
        B.count ~tolerance:det_tol ~name:"slo_bad" ~unit_:"requests"
          (float_of_int (sum (fun s -> s.Jord_obsv.Online.s_bad)));
        B.count ~tolerance:det_tol ~name:"slo_windows_closed" ~unit_:"windows"
          (float_of_int (sum (fun s -> s.Jord_obsv.Online.s_windows_closed)));
        B.count ~tolerance:det_tol ~name:"slo_transitions" ~unit_:"transitions"
          (float_of_int (sum (fun s -> s.Jord_obsv.Online.s_fired + s.Jord_obsv.Online.s_resolved)));
      ];
  }

(* --- registry --- *)

let experiments =
  [
    ("engine", engine);
    ("vm", vm);
    ("server", server);
    ("cluster", cluster);
    ("cluster_sharded", cluster_sharded);
    ("chaos_failover", chaos_failover);
    ("fleet_scale", fleet_scale);
    ("fleet_trace_overhead", fleet_trace_overhead);
    ("trace", trace);
    ("slo_overhead", slo_overhead);
  ]

let names = List.map fst experiments
let is_known name = List.mem_assoc name experiments

let run_one ~quick name =
  match List.assoc_opt name experiments with
  | Some f -> Ok (f ~quick)
  | None ->
      Error
        (Printf.sprintf "unknown bench experiment %S; valid: %s" name
           (String.concat ", " names))

let render (doc : B.doc) =
  Jord_util.Render.table
    ~title:(Printf.sprintf "bench [%s]" doc.B.experiment)
    ~header:[ "metric"; "kind"; "value"; "unit"; "iqr"; "reps" ]
    ~rows:
      (List.map
         (fun (m : B.metric) ->
           [
             m.B.name;
             (match m.B.kind with B.Time -> "time" | B.Count -> "count");
             Printf.sprintf "%g" m.B.value;
             m.B.unit_;
             Printf.sprintf "%g" m.B.iqr;
             string_of_int m.B.repetitions;
           ])
         doc.B.metrics)
    ()

(* --- parallel selftest: byte-identical + measurably faster --- *)

let par_selftest ?jobs ?(quick = true) () =
  let jobs =
    match jobs with
    | Some j -> j
    | None -> Int.min 4 (Int.max 2 (Domain.recommended_domain_count ()))
  in
  let duration_us = if quick then 1200.0 else 3000.0 in
  let points =
    [ (1.0, 0); (2.0, 0); (3.0, 0); (4.0, 0); (1.5, 1); (2.5, 1); (3.5, 1); (4.5, 1) ]
  in
  let run_case (rate, seed_offset) =
    let config = Exp_common.config_for Jord_faas.Variant.Jord in
    let config =
      { config with Jord_faas.Server.seed = config.Jord_faas.Server.seed + (1000 * seed_offset) }
    in
    let server, recorder =
      Jord_workloads.Loadgen.run ~warmup:100 ~app:Jord_workloads.Hipster.app ~config
        ~rate_mrps:rate ~duration_us ~seed:(7 + (100 * seed_offset)) ()
    in
    Printf.sprintf "r%g_s%d count=%d events=%d p99=%.17g tput=%.17g" rate seed_offset
      (Jord_metrics.Recorder.count recorder)
      (Jord_sim.Engine.processed (Jord_faas.Server.engine server))
      (Jord_metrics.Recorder.p99_us recorder)
      (Jord_metrics.Recorder.throughput_mrps recorder)
  in
  (* Warm code paths once so the sequential leg is not paying one-time
     initialization the parallel leg then skips. *)
  ignore (run_case (List.hd points));
  let timed f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let seq_report, seq_s = timed (fun () -> List.map run_case points) in
  let par_report, par_s =
    timed (fun () ->
        Jord_par.Pool.with_pool ~jobs (fun pool ->
            Jord_par.Pool.parmap pool run_case points))
  in
  if seq_report <> par_report then
    Error
      (Printf.sprintf
         "parallel report differs from sequential (jobs=%d): determinism broken" jobs)
  else begin
    let speedup = seq_s /. Float.max par_s 1e-9 in
    let cores = Domain.recommended_domain_count () in
    let summary =
      Printf.sprintf
        "par-selftest: %d points byte-identical at jobs=%d; seq=%.2fs par=%.2fs \
         speedup=%.2fx (%d cores)"
        (List.length points) jobs seq_s par_s speedup cores
    in
    if cores >= jobs && jobs >= 4 && speedup < 1.8 then
      Error (summary ^ " — expected >= 1.8x on a machine with >= 4 cores")
    else Ok summary
  end
