(** Structured benchmark suite behind [bench/main.exe --json-out] and
    [jordctl bench]: each experiment measures one layer's hot path and
    returns a {!Jord_util.Bench_json.doc} mixing host wall-clock metrics
    (advisory in CI) with deterministic simulated counts and allocation
    profiles (hard perf-regression gates). *)

val names : string list
(** Experiment names, in run order: engine, vm, server, cluster,
    cluster_sharded, trace, slo_overhead. [cluster_sharded] runs the same
    seeded 8-server workload sequentially and on 4 parallel engine shards:
    its [determinism_ok] count hard-gates result byte-equality, while
    events/sec and the sharded speedup are advisory wall-clock. *)

val is_known : string -> bool

val run_one : quick:bool -> string -> (Jord_util.Bench_json.doc, string) result
(** Run one experiment; [Error] names the valid experiments. *)

val render : Jord_util.Bench_json.doc -> string
(** Human-readable table of a doc (medians, IQRs, kinds). *)

val par_selftest : ?jobs:int -> ?quick:bool -> unit -> (string, string) result
(** The bench smoke behind the PR's acceptance bar: runs an identical batch
    of independent simulations sequentially and on a [jobs]-domain pool
    (default: min 4 [Domain.recommended_domain_count]), checks the two
    reports are byte-identical, and — when the host actually has [>= jobs]
    cores — that the parallel run is at least 1.8x faster. [Ok] carries a
    summary line; [Error] a diagnosis. *)
