(** Golden-run scenarios for refactor safety.

    [report ()] runs a fixed set of seeded simulations — single-server per
    variant, a 3-server forwarding cluster, and Poisson loadgen runs — and
    renders every measured number with full (%.17g) precision. The output is
    compared bit-for-bit against [test/golden.expected]; a diff means a
    change altered measured results, not just structure.

    Regenerate the expectation with [bin/golden_gen.exe] only when a change
    is {e meant} to move numbers, and say so in the commit. *)

val report : ?jobs:int -> ?shards:int -> unit -> string
(** [jobs] (default 1) runs the scenarios on a dedicated domain pool of
    that size; the output is byte-identical at any job count. [shards]
    (default 1) runs the cluster scenarios on that many parallel engine
    shards ({!Jord_faas.Cluster.create}); the output is byte-identical at
    any shard count — that invariant {e is} the conservative parallel
    core's correctness statement, and CI diffs --shards 1/2/4 outputs to
    enforce it. Combine [jobs] and [shards] with care: each cluster
    scenario then opens its own nested domain pool. *)
