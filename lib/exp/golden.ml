(* Golden-run scenarios: a fixed set of seeded simulations whose outputs are
   checked bit-for-bit against test/golden.expected. The scenarios cover the
   paths a core refactor can disturb — the event engine's ordering, the
   executor/orchestrator interplay, cross-server forwarding, and the Poisson
   load generator — so any change to a measured number shows up as a diff.

   Every float is printed with %.17g: two runs agree only if they performed
   the exact same arithmetic in the exact same order. *)

module Server = Jord_faas.Server
module Cluster = Jord_faas.Cluster
module Variant = Jord_faas.Variant
module Request = Jord_faas.Request
module Time = Jord_sim.Time
module Engine = Jord_sim.Engine

let f17 = Printf.sprintf "%.17g"

(* The deterministic app of test_server.ml: sync, async and nested chains,
   no sampled phases. *)
let tiny_app =
  let open Jord_faas.Model in
  let leaf name ns =
    { name; make_phases = (fun _ -> [ compute ns ]); state_bytes = 1024; code_bytes = 1024 }
  in
  let mid =
    {
      name = "mid";
      make_phases = (fun _ -> [ compute 150.0; invoke "leafB"; compute 50.0 ]);
      state_bytes = 1024;
      code_bytes = 1024;
    }
  in
  let entry =
    {
      name = "entry";
      make_phases =
        (fun _ ->
          [
            compute 200.0;
            invoke ~mode:Async "leafA";
            invoke "mid";
            wait;
            compute 100.0;
          ]);
      state_bytes = 1024;
      code_bytes = 1024;
    }
  in
  {
    app_name = "tiny";
    fns = [ entry; mid; leaf "leafA" 120.0; leaf "leafB" 80.0 ];
    entries = [ ("entry", 1.0) ];
  }

(* The fan-out app of test_cluster.ml: six async leaves per entry, the recipe
   for forwarding under tight queues. *)
let fanout_app =
  let open Jord_faas.Model in
  let leaf =
    {
      name = "leaf";
      make_phases = (fun _ -> [ compute 2000.0 ]);
      state_bytes = 1024;
      code_bytes = 1024;
    }
  in
  let entry =
    {
      name = "entry";
      make_phases =
        (fun _ ->
          List.init 6 (fun _ -> invoke ~mode:Async ~arg_bytes:256 "leaf") @ [ wait ]);
      state_bytes = 1024;
      code_bytes = 1024;
    }
  in
  { app_name = "fanout"; fns = [ entry; leaf ]; entries = [ ("entry", 1.0) ] }

let root_sums roots =
  List.fold_left
    (fun (lat, ex, iso, disp, comm) (r : Request.root) ->
      ( lat +. Request.latency_ns r,
        ex +. r.Request.exec_ns,
        iso +. r.Request.isolation_ns,
        disp +. r.Request.dispatch_ns,
        comm +. r.Request.comm_ns ))
    (0.0, 0.0, 0.0, 0.0, 0.0) roots

let single_server buf variant =
  let config =
    {
      Server.default_config with
      Server.variant;
      machine = Jord_arch.Config.with_cores Jord_arch.Config.default 8;
      orchestrators = 1;
    }
  in
  let server = Server.create config tiny_app in
  let roots = ref [] in
  Server.on_root_complete server (fun r -> roots := r :: !roots);
  let engine = Server.engine server in
  for i = 0 to 39 do
    Engine.schedule_at engine
      ~time:(Time.of_ns (float_of_int i *. 400.0))
      (fun _ -> Server.submit server ())
  done;
  Server.run server;
  let lat, ex, iso, disp, comm = root_sums !roots in
  Buffer.add_string buf
    (Printf.sprintf
       "server/%s completed=%d live=%d dropped=%d dispatches=%d retries=%d events=%d\n"
       (Variant.name variant) (Server.completed_roots server)
       (Server.live_continuations server)
       (Server.dropped_requests server)
       (Server.dispatch_count server)
       (Server.queue_full_retries server)
       (Engine.processed engine));
  Buffer.add_string buf
    (Printf.sprintf "server/%s latency=%s exec=%s isolation=%s dispatch=%s comm=%s\n"
       (Variant.name variant) (f17 lat) (f17 ex) (f17 iso) (f17 disp) (f17 comm));
  Buffer.add_string buf
    (Printf.sprintf "server/%s dispatch_ns=%s\n" (Variant.name variant)
       (f17 (Server.dispatch_ns_total server)))

(* Arrivals go through [Cluster.submit_at] (round-robin resolved at
   schedule time, which for nondecreasing times is exactly the live order)
   so the very same scenario runs sequentially or sharded: with a fixed
   seed the two must be byte-identical, and CI diffs --shards 1/2/4
   golden outputs against each other to prove it. *)
let cluster_scenario buf ~label ~shards ~servers:n ~arrivals ~gap_ns =
  let config =
    {
      Server.default_config with
      Server.machine = Jord_arch.Config.with_cores Jord_arch.Config.default 4;
      orchestrators = 1;
      queue_capacity = 1;
    }
  in
  let cluster = Cluster.create ~forward_after:2 ~shards ~servers:n ~config fanout_app in
  let roots = ref [] in
  Cluster.on_root_complete cluster (fun r -> roots := r :: !roots);
  for i = 0 to arrivals - 1 do
    Cluster.submit_at cluster ~time:(Time.of_ns (float_of_int i *. gap_ns)) ()
  done;
  Cluster.run cluster;
  let lat, _, iso, disp, comm = root_sums !roots in
  Buffer.add_string buf
    (Printf.sprintf "%s completed=%d events=%d\n" label (List.length !roots)
       (Cluster.events_processed cluster));
  Array.iteri
    (fun i s ->
      Buffer.add_string buf
        (Printf.sprintf "%s server=%d completed=%d out=%d in=%d\n" label i
           (Server.completed_roots s) (Server.forwarded_out s) (Server.received_in s)))
    (Cluster.servers cluster);
  Buffer.add_string buf
    (Printf.sprintf "%s latency=%s isolation=%s dispatch=%s comm=%s\n" label (f17 lat)
       (f17 iso) (f17 disp) (f17 comm))

let cluster buf ~shards = cluster_scenario buf ~label:"cluster" ~shards ~servers:3 ~arrivals:120 ~gap_ns:900.0

(* Six servers so a --shards 4 run actually partitions (two shards hold two
   servers each) and cross-shard forwards dominate the ring. *)
let cluster6 buf ~shards =
  cluster_scenario buf ~label:"cluster6" ~shards ~servers:6 ~arrivals:180 ~gap_ns:450.0

let loadgen buf (label, app, variant, rate) =
  let config = { Server.default_config with Server.variant } in
  let server, recorder =
    Jord_workloads.Loadgen.run ~warmup:100 ~app ~config ~rate_mrps:rate
      ~duration_us:600.0 ()
  in
  let open Jord_metrics.Recorder in
  Buffer.add_string buf
    (Printf.sprintf "loadgen/%s count=%d events=%d mean=%s p50=%s p99=%s tput=%s\n"
       label (count recorder)
       (Engine.processed (Server.engine server))
       (f17 (mean_us recorder)) (f17 (p50_us recorder)) (f17 (p99_us recorder))
       (f17 (throughput_mrps recorder)))

(* Every scenario is a self-contained seeded simulation writing its own
   buffer, so the list can run on a domain pool: parmap returns the pieces
   in this exact order and the concatenation is byte-identical to a
   sequential run at any job count (CI diffs -j 1/4/8 against the golden
   file to prove it). *)
let scenarios ~shards : (unit -> string) list =
  let in_buf f () =
    let buf = Buffer.create 1024 in
    f buf;
    Buffer.contents buf
  in
  List.map
    (fun v -> in_buf (fun buf -> single_server buf v))
    [ Variant.Jord; Variant.Jord_ni; Variant.Jord_bt; Variant.Nightcore ]
  @ [ in_buf (cluster ~shards); in_buf (cluster6 ~shards) ]
  @ List.map
      (fun case -> in_buf (fun buf -> loadgen buf case))
      [
        ("hipster-jord", Jord_workloads.Hipster.app, Variant.Jord, 1.0);
        ("hotel-ni", Jord_workloads.Hotel.app, Variant.Jord_ni, 0.8);
        ("hipster-nightcore", Jord_workloads.Hipster.app, Variant.Nightcore, 0.4);
      ]

let report ?(jobs = 1) ?(shards = 1) () =
  let scenarios = scenarios ~shards in
  let parts =
    if jobs <= 1 then List.map (fun f -> f ()) scenarios
    else
      Jord_par.Pool.with_pool ~jobs (fun pool ->
          Jord_par.Pool.parmap pool (fun f -> f ()) scenarios)
  in
  "# jord golden run (seeded, bit-exact)\n" ^ String.concat "" parts
