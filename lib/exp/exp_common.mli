(** Shared machinery for the per-figure experiment drivers.

    Every driver reports to stdout as an ASCII table/series (via
    {!Jord_util.Render}) so the bench harness output is directly comparable
    with EXPERIMENTS.md. *)

type spec = {
  name : string;
  app : Jord_faas.Model.app;
  rates : float list;  (** Load sweep (MRPS) for the p99-vs-load figures. *)
  min_rate : float;  (** "Minimal load" used for SLO calibration. *)
  duration_us : float;  (** Arrival window per point. *)
  warmup : int;
}

val hipster : spec
val hotel : spec
val media : spec
val social : spec
val all : spec list

val scale : float -> spec -> spec
(** [scale f spec] multiplies the duration by [f] (and scales warmup),
    for quick runs. *)

val config_for : Jord_faas.Variant.t -> Jord_faas.Server.config

val set_jobs : int -> unit
(** Size of the shared domain pool that {!par_map}, {!sweep} and
    {!sweep_replicated} fan simulation points out on (default 1, i.e.
    sequential; also settable via the [JORD_JOBS] environment variable).
    Results are gathered in submission order, so figures and golden runs
    are bit-identical at any job count. *)

val jobs : unit -> int
(** Current shared pool size. *)

val par_map : ('a -> 'b) -> 'a list -> 'b list
(** Deterministic parallel map over independent simulation points on the
    shared pool (sequential [List.map] when {!jobs} is 1). *)

val metrics_sink : (name:string -> Jord_telemetry.Registry.t -> unit) option ref
(** When set, {!run_point} snapshots the simulated machine's full metric
    registry after each point and hands it to the sink under a
    "<spec>_<variant>_r<rate>[_s<seed>]" name (the bench harness's
    [--metrics-dir] turns these into one exposition file per point). *)

val run_point :
  ?seed_offset:int ->
  spec ->
  config:Jord_faas.Server.config ->
  rate_mrps:float ->
  Jord_faas.Server.t * Jord_metrics.Recorder.t
(** One simulation at one offered load; [seed_offset] derives an
    independent replication. *)

val slo_us : spec -> float
(** SLO = 10x the minimal-load mean service time on Jord_NI (paper §5).
    Memoized per spec name. *)

val sweep :
  spec ->
  config:Jord_faas.Server.config ->
  (float * Jord_metrics.Recorder.t) list
(** Run every rate of the spec. *)

val sweep_replicated :
  spec ->
  config:Jord_faas.Server.config ->
  seeds:int ->
  (float * float * float) list
(** [(rate, median p99 us, mean tput MRPS)] over [seeds] independent
    replications per rate. *)

val throughput_under_slo :
  slo_us:float -> (float * Jord_metrics.Recorder.t) list -> float
(** Highest measured throughput whose p99 meets the SLO (0 when none do). *)
