module Server = Jord_faas.Server
module Variant = Jord_faas.Variant

type spec = {
  name : string;
  app : Jord_faas.Model.app;
  rates : float list;
  min_rate : float;
  duration_us : float;
  warmup : int;
}

let hipster =
  {
    name = "Hipster";
    app = Jord_workloads.Hipster.app;
    rates = [ 1.0; 2.0; 4.0; 5.0; 6.0; 7.0; 8.0; 8.5; 9.0; 9.5; 10.0; 11.0; 12.0; 14.0; 16.0 ];
    min_rate = 0.5;
    duration_us = 3000.0;
    warmup = 500;
  }

let hotel =
  {
    name = "Hotel";
    app = Jord_workloads.Hotel.app;
    rates = [ 0.5; 1.0; 2.0; 3.0; 4.0; 5.0; 6.0; 6.5; 7.0; 7.5; 8.0 ];
    min_rate = 0.3;
    duration_us = 3500.0;
    warmup = 500;
  }

let media =
  {
    name = "Media";
    app = Jord_workloads.Media.app;
    rates = [ 0.5; 1.0; 1.5; 2.0; 2.5; 3.0; 3.5; 4.0; 4.5; 5.0 ];
    min_rate = 0.25;
    duration_us = 4000.0;
    warmup = 400;
  }

let social =
  {
    name = "Social";
    app = Jord_workloads.Social.app;
    rates = [ 0.2; 0.4; 0.6; 0.8; 0.9; 1.0; 1.1; 1.2; 1.4 ];
    min_rate = 0.1;
    duration_us = 16000.0;
    warmup = 300;
  }

let all = [ hipster; hotel; media; social ]

let scale f spec =
  {
    spec with
    duration_us = spec.duration_us *. f;
    warmup = Int.max 50 (int_of_float (float_of_int spec.warmup *. Float.min 1.0 f));
  }

let config_for variant = { Server.default_config with Server.variant }

(* --- domain-parallel execution of independent simulation points ---

   Every sweep point is a whole seeded simulation with its own engine and
   PRNGs, so points are embarrassingly parallel. [par_map] fans them out on
   the shared Jord_par pool; results come back in submission order, which
   keeps every figure (and the golden file) bit-identical to a sequential
   run. The only cross-point state, [slo_cache] and [metrics_sink], is
   written exclusively from the calling domain / to per-point files. *)

let set_jobs n = Jord_par.Pool.set_default_jobs n
let jobs () = Jord_par.Pool.default_jobs ()
let par_map f xs = Jord_par.Pool.parmap (Jord_par.Pool.default ()) f xs

(* When set (bench --metrics-dir), every simulated point dumps its machine
   counters through this sink, named after the figure point. *)
let metrics_sink : (name:string -> Jord_telemetry.Registry.t -> unit) option ref =
  ref None

let point_name spec ~config ~rate_mrps ~seed_offset =
  Printf.sprintf "%s_%s_r%g%s"
    (String.lowercase_ascii spec.name)
    (Variant.name config.Server.variant)
    rate_mrps
    (if seed_offset = 0 then "" else Printf.sprintf "_s%d" seed_offset)

let run_point ?(seed_offset = 0) spec ~config ~rate_mrps =
  let config = { config with Server.seed = config.Server.seed + (1000 * seed_offset) } in
  let server, recorder =
    Jord_workloads.Loadgen.run ~warmup:spec.warmup ~app:spec.app ~config ~rate_mrps
      ~duration_us:spec.duration_us ~seed:(7 + (100 * seed_offset)) ()
  in
  (match !metrics_sink with
  | None -> ()
  | Some sink ->
      let reg = Jord_telemetry.Registry.create () in
      Server.register_metrics server reg;
      sink ~name:(point_name spec ~config ~rate_mrps ~seed_offset) reg);
  (server, recorder)

let slo_cache : (string, float) Hashtbl.t = Hashtbl.create 8

let slo_us spec =
  match Hashtbl.find_opt slo_cache spec.name with
  | Some v -> v
  | None ->
      (* Long-enough window at minimal load to observe the mean. *)
      let config = config_for Variant.Jord_ni in
      let spec' =
        { spec with duration_us = Float.max spec.duration_us (2000.0 /. spec.min_rate) }
      in
      let _, recorder = run_point spec' ~config ~rate_mrps:spec.min_rate in
      let slo = 10.0 *. Jord_metrics.Recorder.mean_us recorder in
      Hashtbl.replace slo_cache spec.name slo;
      slo

let sweep spec ~config =
  par_map (fun rate -> (rate, snd (run_point spec ~config ~rate_mrps:rate))) spec.rates

(* Replicated sweep: run every rate with [seeds] independent seeds and
   report the median p99 and mean throughput per rate — squeezes run-to-run
   noise out of the knee region. The rate x seed cross product is one flat
   parallel batch; regrouping by rate preserves the per-rate seed order, so
   medians and sums see the samples in the sequential order. *)
let sweep_replicated spec ~config ~seeds =
  if seeds < 1 then invalid_arg "Exp_common.sweep_replicated";
  let points =
    List.concat_map (fun rate -> List.init seeds (fun i -> (rate, i))) spec.rates
  in
  let runs =
    par_map
      (fun (rate, i) ->
        let _, r = run_point ~seed_offset:i spec ~config ~rate_mrps:rate in
        (Jord_metrics.Recorder.p99_us r, Jord_metrics.Recorder.throughput_mrps r))
      points
  in
  let runs = Array.of_list runs in
  List.mapi
    (fun ri rate ->
      let per_rate = Array.sub runs (ri * seeds) seeds in
      let p99s = Array.map fst per_rate in
      let tput_sum = Array.fold_left (fun acc (_, t) -> acc +. t) 0.0 per_rate in
      (rate, Jord_util.Stats.percentile p99s 50.0, tput_sum /. float_of_int seeds))
    spec.rates

let throughput_under_slo ~slo_us pts =
  List.fold_left
    (fun best (_, recorder) ->
      if
        Jord_metrics.Recorder.count recorder > 0
        && Jord_metrics.Recorder.p99_us recorder <= slo_us
      then Float.max best (Jord_metrics.Recorder.throughput_mrps recorder)
      else best)
    0.0 pts
