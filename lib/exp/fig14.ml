module Server = Jord_faas.Server
module R = Jord_metrics.Recorder

type point = {
  label : string;
  cores : int;
  sockets : int;
  service_us : float;
  shootdown_ns : float;
  dispatch_us : float;
}

let scales =
  [
    ("16-core", 16, 1);
    ("64-core", 64, 1);
    ("128-core", 128, 1);
    ("256-core", 256, 1);
    ("2-socket", 256, 2);
  ]

let run ?(quick = false) () =
  (* Each scale point is an independent simulation: fan them out on the
     shared domain pool (Exp_common.set_jobs); order is preserved. *)
  Exp_common.par_map
    (fun (label, cores, sockets) ->
      let machine =
        Jord_arch.Config.with_cores
          (Jord_arch.Config.with_sockets Jord_arch.Config.default sockets)
          cores
      in
      let config =
        {
          Server.default_config with
          Server.machine;
          orchestrators = 1;
          variant = Jord_faas.Variant.Jord;
        }
      in
      (* Fixed offered load at every scale: keeps the single orchestrator
         continuously busy on the big machines (the regime the paper's
         analysis describes) without being executor-bound on the small
         ones. *)
      let rate = 2.0 in
      let duration_us =
        (if cores >= 128 then 9000.0 else 5000.0) *. if quick then 0.4 else 1.0
      in
      let server, recorder =
        Jord_workloads.Loadgen.run ~warmup:300 ~app:Jord_workloads.Hipster.app ~config
          ~rate_mrps:rate ~duration_us ()
      in
      let b = R.mean_breakdown recorder in
      {
        label;
        cores;
        sockets;
        service_us = (b.R.exec_ns +. b.R.isolation_ns +. b.R.comm_ns) /. 1000.0;
        shootdown_ns = Server.worst_case_shootdown_ns server;
        dispatch_us =
          (* Worst-case scan (all queue lines remote-dirty), averaged over a
             few probes. *)
          (let probes = 32 in
           let sum = ref 0.0 in
           for _ = 1 to probes do
             sum := !sum +. Server.worst_case_dispatch_ns server
           done;
           !sum /. float_of_int probes /. 1000.0);
      })
    scales

let report ?quick () =
  let pts = run ?quick () in
  Jord_util.Render.table
    ~title:
      "Figure 14: service time, VLB shootdown and dispatch latency vs scale\n\
       (single orchestrator, Hipster)"
    ~header:
      [ "Scale"; "Cores"; "Sockets"; "Service(us)"; "Shootdown(ns)"; "Dispatch(us)" ]
    ~rows:
      (List.map
         (fun p ->
           [
             p.label;
             string_of_int p.cores;
             string_of_int p.sockets;
             Jord_util.Render.f2 p.service_us;
             Jord_util.Render.f1 p.shootdown_ns;
             Jord_util.Render.f3 p.dispatch_us;
           ])
         pts)
    ()
