(** Machine-readable benchmark reports ([BENCH_<experiment>.json]) and the
    baseline comparator behind the CI perf-regression gate.

    Two metric kinds with different gating semantics:
    - [Time]: host wall-clock measurements. Noisy by nature, so baseline
      deviations are {e advisory} (reported, never failing).
    - [Count]: deterministic quantities — simulated-time results, event and
      completion counts, allocation words. Deviations beyond tolerance are
      {e hard failures}: the simulation's arithmetic moved.

    The JSON shape (schema_version 1):
    {v
    { "schema_version": 1,
      "experiment": "engine",
      "metrics": [
        { "name": "push_pop", "kind": "time", "unit": "ns/op",
          "value": 81.2, "median": 81.2, "iqr": 3.4,
          "repetitions": 5, "tolerance": 0.25 } ] }
    v}
    [value] is the median of the repetitions; [tolerance] is optional and
    overrides the comparator's default for that metric. *)

type kind = Time | Count

type metric = {
  name : string;
  kind : kind;
  unit_ : string;
  value : float;  (** Median of the repetitions. *)
  median : float;
  iqr : float;  (** Interquartile range (p75 - p25) of the repetitions. *)
  repetitions : int;
  tolerance : float option;
      (** Per-metric relative tolerance overriding the comparator default. *)
}

type doc = { experiment : string; metrics : metric list }

val metric :
  ?kind:kind ->
  ?tolerance:float ->
  name:string ->
  unit_:string ->
  float list ->
  metric
(** Summarize repetition samples (default [kind] is [Time]).
    @raise Invalid_argument on an empty sample list. *)

val count : ?tolerance:float -> name:string -> unit_:string -> float -> metric
(** A single-shot deterministic ([Count]) metric. *)

(* --- JSON round trip --- *)

val to_json : doc -> Json.t
val to_string : doc -> string
val of_json : Json.t -> (doc, string) result
val of_string : string -> (doc, string) result

val filename : string -> string
(** [filename experiment] is ["BENCH_<experiment>.json"]. *)

val write_dir : dir:string -> doc -> string
(** Write [doc] under [dir] (created if missing) as {!filename}; returns
    the path written. *)

val read_file : string -> (doc, string) result

(* --- baseline + comparator --- *)

type baseline = { default_tolerance : float; experiments : doc list }

val baseline_to_string : baseline -> string
val baseline_of_string : string -> (baseline, string) result
val read_baseline : string -> (baseline, string) result

type status =
  | Ok_within  (** Within tolerance. *)
  | Advisory  (** [Time] metric out of tolerance: reported, never fails. *)
  | Fail  (** [Count] metric out of tolerance. *)
  | Missing  (** Metric present in the baseline, absent from the run. *)

type verdict = {
  v_experiment : string;
  v_metric : string;
  v_kind : kind;
  v_baseline : float;
  v_current : float;
  v_deviation : float;  (** |current - baseline| / max |baseline| eps. *)
  v_allowed : float;
  v_status : status;
}

val compare_docs :
  ?default_tolerance:float -> baseline:doc -> current:doc -> unit -> verdict list
(** One verdict per baseline metric, in baseline order. Metrics only in
    [current] are ignored (new metrics are not regressions). The default
    tolerance is 0.2 (20% relative). *)

val has_failure : verdict list -> bool
(** True when any verdict is [Fail] or [Missing]. *)

val render_verdicts : verdict list -> string
(** Aligned human-readable table of the verdicts. *)
