let f1 v = Printf.sprintf "%.1f" v
let f2 v = Printf.sprintf "%.2f" v
let f3 v = Printf.sprintf "%.3f" v

let pad s w = s ^ String.make (Int.max 0 (w - String.length s)) ' '

let table ?title ~header ~rows () =
  let ncols = List.length header in
  let normalize row =
    let len = List.length row in
    if len >= ncols then row else row @ List.init (ncols - len) (fun _ -> "")
  in
  let rows = List.map normalize rows in
  let widths = Array.of_list (List.map String.length header) in
  List.iter
    (fun row ->
      List.iteri
        (fun i cell ->
          if i < ncols && String.length cell > widths.(i) then
            widths.(i) <- String.length cell)
        row)
    rows;
  let render_row row =
    String.concat "  " (List.mapi (fun i cell -> pad cell widths.(i)) row)
  in
  let sep =
    String.concat "  "
      (Array.to_list (Array.map (fun w -> String.make w '-') widths))
  in
  let buf = Buffer.create 256 in
  (match title with
  | Some t ->
      Buffer.add_string buf t;
      Buffer.add_char buf '\n'
  | None -> ());
  Buffer.add_string buf (render_row header);
  Buffer.add_char buf '\n';
  Buffer.add_string buf sep;
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (render_row row);
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

(* ASCII sparkline: resample [values] into [width] columns (mean per
   column) and map each onto a 8-level ramp scaled to [min, max]. *)
let spark_ramp = [| ' '; '.'; ':'; '-'; '='; '+'; '*'; '#' |]

let sparkline ?(width = 40) values =
  match values with
  | [] -> ""
  | values ->
      let v = Array.of_list values in
      let n = Array.length v in
      let width = Int.min width n in
      let lo = Array.fold_left Float.min v.(0) v in
      let hi = Array.fold_left Float.max v.(0) v in
      let span = hi -. lo in
      String.init width (fun col ->
          let first = col * n / width and last = ((col + 1) * n / width) - 1 in
          let last = Int.max first last in
          let sum = ref 0.0 in
          for i = first to last do
            sum := !sum +. v.(i)
          done;
          let mean = !sum /. float_of_int (last - first + 1) in
          let level =
            if span <= 0.0 then if hi > 0.0 then Array.length spark_ramp - 1 else 0
            else
              Int.min
                (Array.length spark_ramp - 1)
                (int_of_float ((mean -. lo) /. span *. float_of_int (Array.length spark_ramp - 1) +. 0.5))
          in
          spark_ramp.(level))

let series ?title ~x_label ~y_label named =
  (* Union of x values across all series, sorted. *)
  let module FSet = Set.Make (Float) in
  let xs =
    List.fold_left
      (fun acc (_, pts) -> List.fold_left (fun acc (x, _) -> FSet.add x acc) acc pts)
      FSet.empty named
  in
  let header = x_label :: List.map fst named in
  let lookup pts x =
    match List.assoc_opt x pts with Some y -> f3 y | None -> "-"
  in
  let rows =
    List.map
      (fun x -> f3 x :: List.map (fun (_, pts) -> lookup pts x) named)
      (FSet.elements xs)
  in
  let title =
    match title with
    | Some t -> Some (Printf.sprintf "%s  [y: %s]" t y_label)
    | None -> Some (Printf.sprintf "[y: %s]" y_label)
  in
  table ?title ~header ~rows ()
