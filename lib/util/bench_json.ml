type kind = Time | Count

type metric = {
  name : string;
  kind : kind;
  unit_ : string;
  value : float;
  median : float;
  iqr : float;
  repetitions : int;
  tolerance : float option;
}

type doc = { experiment : string; metrics : metric list }

let schema_version = 1

let metric ?(kind = Time) ?tolerance ~name ~unit_ samples =
  if samples = [] then invalid_arg "Bench_json.metric: empty samples";
  let arr = Array.of_list samples in
  let median = Stats.percentile arr 50.0 in
  let iqr = Stats.percentile arr 75.0 -. Stats.percentile arr 25.0 in
  {
    name;
    kind;
    unit_;
    value = median;
    median;
    iqr;
    repetitions = Array.length arr;
    tolerance;
  }

let count ?tolerance ~name ~unit_ v = metric ~kind:Count ?tolerance ~name ~unit_ [ v ]

(* --- JSON --- *)

let kind_name = function Time -> "time" | Count -> "count"

let kind_of_name = function
  | "time" -> Ok Time
  | "count" -> Ok Count
  | other -> Error (Printf.sprintf "unknown metric kind %S" other)

let metric_to_json m =
  Json.Obj
    ([
       ("name", Json.String m.name);
       ("kind", Json.String (kind_name m.kind));
       ("unit", Json.String m.unit_);
       ("value", Json.Float m.value);
       ("median", Json.Float m.median);
       ("iqr", Json.Float m.iqr);
       ("repetitions", Json.Int m.repetitions);
     ]
    @ match m.tolerance with None -> [] | Some t -> [ ("tolerance", Json.Float t) ])

let to_json doc =
  Json.Obj
    [
      ("schema_version", Json.Int schema_version);
      ("experiment", Json.String doc.experiment);
      ("metrics", Json.List (List.map metric_to_json doc.metrics));
    ]

let to_string doc = Json.to_string (to_json doc)

let ( let* ) = Result.bind

let str_field name j =
  match Json.member name j with
  | Some (Json.String s) -> Ok s
  | Some _ -> Error (Printf.sprintf "field %S: expected a string" name)
  | None -> Error (Printf.sprintf "missing field %S" name)

let num_field name j =
  match Json.member name j with
  | Some (Json.Float f) -> Ok f
  | Some (Json.Int i) -> Ok (float_of_int i)
  | Some _ -> Error (Printf.sprintf "field %S: expected a number" name)
  | None -> Error (Printf.sprintf "missing field %S" name)

let metric_of_json j =
  let* name = str_field "name" j in
  let* kind_s = str_field "kind" j in
  let* kind = kind_of_name kind_s in
  let* unit_ = str_field "unit" j in
  let* value = num_field "value" j in
  let* median = num_field "median" j in
  let* iqr = num_field "iqr" j in
  let* reps = num_field "repetitions" j in
  let* tolerance =
    match Json.member "tolerance" j with
    | None -> Ok None
    | Some _ -> Result.map Option.some (num_field "tolerance" j)
  in
  Ok
    {
      name;
      kind;
      unit_;
      value;
      median;
      iqr;
      repetitions = int_of_float reps;
      tolerance;
    }

let rec map_result f = function
  | [] -> Ok []
  | x :: rest ->
      let* y = f x in
      let* ys = map_result f rest in
      Ok (y :: ys)

let of_json j =
  let* experiment = str_field "experiment" j in
  let* metrics =
    match Json.member "metrics" j with
    | Some (Json.List ms) -> map_result metric_of_json ms
    | Some _ -> Error "field \"metrics\": expected a list"
    | None -> Error "missing field \"metrics\""
  in
  Ok { experiment; metrics }

let of_string s =
  let* j = Json.of_string s in
  of_json j

let filename experiment = Printf.sprintf "BENCH_%s.json" experiment

let write_dir ~dir doc =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let path = Filename.concat dir (filename doc.experiment) in
  let oc = open_out path in
  output_string oc (to_string doc);
  output_char oc '\n';
  close_out oc;
  path

let read_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | s -> of_string s
  | exception Sys_error m -> Error m

(* --- baseline --- *)

type baseline = { default_tolerance : float; experiments : doc list }

let baseline_to_string b =
  Json.to_string
    (Json.Obj
       [
         ("schema_version", Json.Int schema_version);
         ("default_tolerance", Json.Float b.default_tolerance);
         ("experiments", Json.List (List.map to_json b.experiments));
       ])

let baseline_of_string s =
  let* j = Json.of_string s in
  let* default_tolerance = num_field "default_tolerance" j in
  let* experiments =
    match Json.member "experiments" j with
    | Some (Json.List ds) -> map_result of_json ds
    | Some _ -> Error "field \"experiments\": expected a list"
    | None -> Error "missing field \"experiments\""
  in
  Ok { default_tolerance; experiments }

let read_baseline path =
  match In_channel.with_open_text path In_channel.input_all with
  | s -> baseline_of_string s
  | exception Sys_error m -> Error m

(* --- comparator --- *)

type status = Ok_within | Advisory | Fail | Missing

type verdict = {
  v_experiment : string;
  v_metric : string;
  v_kind : kind;
  v_baseline : float;
  v_current : float;
  v_deviation : float;
  v_allowed : float;
  v_status : status;
}

let deviation ~baseline ~current =
  let denom = Float.max (Float.abs baseline) 1e-12 in
  Float.abs (current -. baseline) /. denom

let compare_docs ?(default_tolerance = 0.2) ~baseline ~current () =
  List.map
    (fun bm ->
      let allowed = Option.value bm.tolerance ~default:default_tolerance in
      match List.find_opt (fun cm -> cm.name = bm.name) current.metrics with
      | None ->
          {
            v_experiment = baseline.experiment;
            v_metric = bm.name;
            v_kind = bm.kind;
            v_baseline = bm.value;
            v_current = nan;
            v_deviation = infinity;
            v_allowed = allowed;
            v_status = Missing;
          }
      | Some cm ->
          let dev = deviation ~baseline:bm.value ~current:cm.value in
          let status =
            if dev <= allowed then Ok_within
            else match bm.kind with Time -> Advisory | Count -> Fail
          in
          {
            v_experiment = baseline.experiment;
            v_metric = bm.name;
            v_kind = bm.kind;
            v_baseline = bm.value;
            v_current = cm.value;
            v_deviation = dev;
            v_allowed = allowed;
            v_status = status;
          })
    baseline.metrics

let has_failure verdicts =
  List.exists (fun v -> v.v_status = Fail || v.v_status = Missing) verdicts

let status_name = function
  | Ok_within -> "ok"
  | Advisory -> "ADVISORY"
  | Fail -> "FAIL"
  | Missing -> "MISSING"

let render_verdicts verdicts =
  Render.table
    ~header:
      [ "experiment"; "metric"; "kind"; "baseline"; "current"; "dev"; "allowed"; "status" ]
    ~rows:
      (List.map
         (fun v ->
           [
             v.v_experiment;
             v.v_metric;
             kind_name v.v_kind;
             Printf.sprintf "%g" v.v_baseline;
             (if Float.is_nan v.v_current then "-" else Printf.sprintf "%g" v.v_current);
             (if Float.is_finite v.v_deviation then
                Printf.sprintf "%.1f%%" (100.0 *. v.v_deviation)
              else "-");
             Printf.sprintf "%g%%" (100.0 *. v.v_allowed);
             status_name v.v_status;
           ])
         verdicts)
    ()
