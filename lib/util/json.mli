(** Minimal JSON emission and parsing for trace and telemetry export.
    The parser exists so the exporters' round-trip tests (and downstream
    tooling smoke checks) can consume exactly what we emit. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val escape : string -> string
(** JSON string-body escaping (quotes, backslashes, control characters). *)

val to_buffer : Buffer.t -> t -> unit
val to_string : t -> string

val of_string : string -> (t, string) result
(** Parse one JSON value (full grammar; numbers without '.', exponent and
    within [int] range parse as [Int], the rest as [Float]). Trailing
    non-whitespace is an error. *)

val member : string -> t -> t option
(** [member key (Obj ...)] — field lookup; [None] on non-objects. *)
