type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (string_of_bool b)
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      if Float.is_integer f && Float.abs f < 1e15 then
        Buffer.add_string buf (Printf.sprintf "%.1f" f)
      else Buffer.add_string buf (Printf.sprintf "%.6g" f)
  | String s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          to_buffer buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          to_buffer buf (String k);
          Buffer.add_char buf ':';
          to_buffer buf v)
        fields;
      Buffer.add_char buf '}'

let to_string t =
  let buf = Buffer.create 256 in
  to_buffer buf t;
  Buffer.contents buf

(* --- parsing (recursive descent over the full JSON grammar; numbers with
   a '.', exponent or out-of-int range become Float, the rest Int) --- *)

exception Parse_error of string

type cursor = { text : string; mutable pos : int }

let fail cur msg =
  raise (Parse_error (Printf.sprintf "%s at offset %d" msg cur.pos))

let peek cur = if cur.pos < String.length cur.text then Some cur.text.[cur.pos] else None

let advance cur = cur.pos <- cur.pos + 1

let rec skip_ws cur =
  match peek cur with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance cur;
      skip_ws cur
  | Some _ | None -> ()

let expect cur c =
  match peek cur with
  | Some x when x = c -> advance cur
  | Some x -> fail cur (Printf.sprintf "expected %c, found %c" c x)
  | None -> fail cur (Printf.sprintf "expected %c, found end of input" c)

let literal cur word value =
  let n = String.length word in
  if
    cur.pos + n <= String.length cur.text
    && String.sub cur.text cur.pos n = word
  then begin
    cur.pos <- cur.pos + n;
    value
  end
  else fail cur ("expected " ^ word)

let parse_string_body cur =
  expect cur '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek cur with
    | None -> fail cur "unterminated string"
    | Some '"' -> advance cur
    | Some '\\' -> (
        advance cur;
        match peek cur with
        | None -> fail cur "unterminated escape"
        | Some c ->
            advance cur;
            (match c with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'n' -> Buffer.add_char buf '\n'
            | 'r' -> Buffer.add_char buf '\r'
            | 't' -> Buffer.add_char buf '\t'
            | 'u' ->
                if cur.pos + 4 > String.length cur.text then fail cur "bad \\u escape";
                let hex = String.sub cur.text cur.pos 4 in
                cur.pos <- cur.pos + 4;
                let code =
                  match int_of_string_opt ("0x" ^ hex) with
                  | Some c -> c
                  | None -> fail cur "bad \\u escape"
                in
                (* Only BMP code points below 0x80 round-trip exactly; ours
                   are escaped control characters, so this suffices. *)
                if code < 0x80 then Buffer.add_char buf (Char.chr code)
                else Buffer.add_string buf (Printf.sprintf "\\u%04x" code)
            | c -> fail cur (Printf.sprintf "bad escape \\%c" c));
            go ())
    | Some c ->
        advance cur;
        Buffer.add_char buf c;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number cur =
  let start = cur.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (match peek cur with Some c -> is_num_char c | None -> false) do
    advance cur
  done;
  let s = String.sub cur.text start (cur.pos - start) in
  let is_float = String.exists (function '.' | 'e' | 'E' -> true | _ -> false) s in
  if is_float then
    match float_of_string_opt s with
    | Some f -> Float f
    | None -> fail cur ("bad number " ^ s)
  else
    match int_of_string_opt s with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt s with
        | Some f -> Float f
        | None -> fail cur ("bad number " ^ s))

let rec parse_value cur =
  skip_ws cur;
  match peek cur with
  | None -> fail cur "unexpected end of input"
  | Some '"' -> String (parse_string_body cur)
  | Some '{' ->
      advance cur;
      skip_ws cur;
      if peek cur = Some '}' then begin
        advance cur;
        Obj []
      end
      else begin
        let rec fields acc =
          skip_ws cur;
          let k = parse_string_body cur in
          skip_ws cur;
          expect cur ':';
          let v = parse_value cur in
          skip_ws cur;
          match peek cur with
          | Some ',' ->
              advance cur;
              fields ((k, v) :: acc)
          | Some '}' ->
              advance cur;
              List.rev ((k, v) :: acc)
          | _ -> fail cur "expected , or } in object"
        in
        Obj (fields [])
      end
  | Some '[' ->
      advance cur;
      skip_ws cur;
      if peek cur = Some ']' then begin
        advance cur;
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value cur in
          skip_ws cur;
          match peek cur with
          | Some ',' ->
              advance cur;
              items (v :: acc)
          | Some ']' ->
              advance cur;
              List.rev (v :: acc)
          | _ -> fail cur "expected , or ] in array"
        in
        List (items [])
      end
  | Some 't' -> literal cur "true" (Bool true)
  | Some 'f' -> literal cur "false" (Bool false)
  | Some 'n' -> literal cur "null" Null
  | Some ('-' | '0' .. '9') -> parse_number cur
  | Some c -> fail cur (Printf.sprintf "unexpected character %c" c)

let of_string s =
  try
    let cur = { text = s; pos = 0 } in
    let v = parse_value cur in
    skip_ws cur;
    if cur.pos <> String.length s then Error "trailing characters after JSON value"
    else Ok v
  with Parse_error msg -> Error msg

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None
