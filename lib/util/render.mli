(** Plain-text rendering of tables and data series for the bench harness.

    Every table and figure of the paper is printed as an aligned ASCII table
    (tables) or as a set of (x, y) series (figures), so the harness output can
    be diffed against EXPERIMENTS.md. *)

val table :
  ?title:string -> header:string list -> rows:string list list -> unit -> string
(** Render an aligned table with a separator under the header. Rows shorter
    than the header are padded with empty cells. *)

val series :
  ?title:string ->
  x_label:string ->
  y_label:string ->
  (string * (float * float) list) list ->
  string
(** Render named (x, y) series in columns: one x column and one column per
    series, aligned on the union of x values. Missing points print as "-". *)

val sparkline : ?width:int -> float list -> string
(** Render values as a one-line ASCII sparkline on an 8-level character
    ramp, resampled to at most [width] (default 40) columns. A flat
    non-zero series renders at full level; an empty series renders as "". *)

val f1 : float -> string
val f2 : float -> string
val f3 : float -> string
(** Fixed-precision float formatting helpers (1/2/3 decimals). *)
