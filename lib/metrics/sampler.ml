module Time = Jord_sim.Time
module Engine = Jord_sim.Engine

type tracked = {
  name : string;
  labels : Registry.labels;
  read : unit -> float;
  ring : (float * float) array;
  mutable next : int;
  mutable total : int;
}

type series = { name : string; labels : Registry.labels; points : (float * float) array }

type t = {
  engine : Engine.t;
  ival : float;
  capacity : int;
  mutable tracks : tracked list; (* reverse registration order *)
  mutable rounds : int;
  mutable running : bool;
}

let create ?(capacity = 4096) ~engine ~interval_us () =
  if capacity <= 0 then invalid_arg "Sampler.create: capacity";
  if interval_us <= 0.0 then invalid_arg "Sampler.create: interval";
  { engine; ival = interval_us; capacity; tracks = []; rounds = 0; running = false }

let interval_us t = t.ival

let track t ?(labels = []) name read =
  t.tracks <-
    { name; labels; read; ring = Array.make t.capacity (0.0, 0.0); next = 0; total = 0 }
    :: t.tracks

let record tr ~at_us v =
  tr.ring.(tr.next) <- (at_us, v);
  tr.next <- (tr.next + 1) mod Array.length tr.ring;
  tr.total <- tr.total + 1

let sample_now t =
  let at_us = Time.to_us (Engine.now t.engine) in
  List.iter (fun tr -> record tr ~at_us (tr.read ())) t.tracks;
  t.rounds <- t.rounds + 1

let samples_taken t = t.rounds

let stop t = t.running <- false

let start ?until t =
  t.running <- true;
  let step = Time.of_us t.ival in
  let within time = match until with None -> true | Some u -> time <= u in
  let rec tick engine =
    if t.running then begin
      sample_now t;
      (* Reschedule only while the machine itself still has work: a lone
         sampler event must not keep the simulation running forever. *)
      let next = Time.(Engine.now engine + step) in
      if Engine.pending engine > 0 && within next then
        Engine.schedule_at engine ~time:next tick
    end
  in
  let first = Time.(Engine.now t.engine + step) in
  if within first then Engine.schedule_at t.engine ~time:first tick

let series t =
  List.rev_map
    (fun tr ->
      let cap = Array.length tr.ring in
      let n = Int.min tr.total cap in
      let first = if tr.total <= cap then 0 else tr.next in
      {
        name = tr.name;
        labels = tr.labels;
        points = Array.init n (fun i -> tr.ring.((first + i) mod cap));
      })
    t.tracks
