(* Fixed-boundary log-bucket sketch: values 0..15 exactly, then 16 linear
   sub-buckets per octave. With 62 usable octaves above the exact range the
   ladder tops out at 16 + 59 * 16 buckets for any OCaml int; 960 slots
   cover every representable picosecond duration. *)

let sub = 16 (* sub-buckets per octave *)
let sub_log2 = 4
let bucket_count = 960

(* Position of the most significant set bit (v > 0). *)
let msb v =
  let rec go v acc = if v <= 1 then acc else go (v lsr 1) (acc + 1) in
  go v 0

let bucket_index v =
  if v < sub then v
  else
    let b = msb v in
    let top = v lsr (b - sub_log2) in
    (* top is in [16, 32): octave group (b - 3) shifted by the sub-bucket. *)
    ((b - sub_log2 + 1) * sub) + top - sub

let bucket_upper i =
  if i < sub then i
  else
    let g = i lsr sub_log2 in
    let b = g + sub_log2 - 1 in
    let top = (i land (sub - 1)) + sub in
    ((top + 1) lsl (b - sub_log2)) - 1

type t = {
  buckets : int array;
  mutable count : int;
  mutable sum : int;
  mutable min_v : int;
  mutable max_v : int;
  (* Exemplar slot: the id attached to the largest observation seen (ties
     broken toward the smallest id), so merges stay order-independent. *)
  mutable ex_v : int;
  mutable ex_id : int;
}

let create () =
  {
    buckets = Array.make bucket_count 0;
    count = 0;
    sum = 0;
    min_v = max_int;
    max_v = -1;
    ex_v = -1;
    ex_id = -1;
  }

let add t v =
  if v < 0 then invalid_arg "Sketch.add: negative observation";
  let i = bucket_index v in
  t.buckets.(i) <- t.buckets.(i) + 1;
  t.count <- t.count + 1;
  t.sum <- t.sum + v;
  if v < t.min_v then t.min_v <- v;
  if v > t.max_v then t.max_v <- v

let note_exemplar t v ~ex =
  if ex >= 0 && (v > t.ex_v || (v = t.ex_v && ex < t.ex_id)) then begin
    t.ex_v <- v;
    t.ex_id <- ex
  end

let add_ex t v ~ex =
  add t v;
  note_exemplar t v ~ex

let exemplar t = if t.ex_id < 0 then None else Some (t.ex_v, t.ex_id)

let count t = t.count
let sum t = t.sum
let is_empty t = t.count = 0
let min_v t = if t.count = 0 then 0 else t.min_v
let max_v t = if t.count = 0 then 0 else t.max_v
let mean t = if t.count = 0 then 0.0 else float_of_int t.sum /. float_of_int t.count

let merge_into ~into src =
  for i = 0 to bucket_count - 1 do
    into.buckets.(i) <- into.buckets.(i) + src.buckets.(i)
  done;
  into.count <- into.count + src.count;
  into.sum <- into.sum + src.sum;
  if src.min_v < into.min_v then into.min_v <- src.min_v;
  if src.max_v > into.max_v then into.max_v <- src.max_v;
  if src.ex_id >= 0 then note_exemplar into src.ex_v ~ex:src.ex_id

let merge a b =
  let t = create () in
  merge_into ~into:t a;
  merge_into ~into:t b;
  t

let copy t =
  {
    buckets = Array.copy t.buckets;
    count = t.count;
    sum = t.sum;
    min_v = t.min_v;
    max_v = t.max_v;
    ex_v = t.ex_v;
    ex_id = t.ex_id;
  }

let quantile t q =
  if q < 0.0 || q > 100.0 then invalid_arg "Sketch.quantile";
  if t.count = 0 then 0
  else begin
    let rank = Int.max 1 (int_of_float (ceil (q /. 100.0 *. float_of_int t.count))) in
    let i = ref 0 and seen = ref 0 in
    while !seen < rank && !i < bucket_count do
      seen := !seen + t.buckets.(!i);
      incr i
    done;
    (* !i is one past the bucket that reached the rank. *)
    Int.max t.min_v (Int.min t.max_v (bucket_upper (!i - 1)))
  end

let equal a b =
  a.count = b.count && a.sum = b.sum
  && min_v a = min_v b && max_v a = max_v b
  && a.ex_v = b.ex_v && a.ex_id = b.ex_id
  && a.buckets = b.buckets

let quantile_of_buckets buckets q =
  if q < 0.0 || q > 100.0 then invalid_arg "Sketch.quantile_of_buckets";
  let total =
    List.fold_left (fun acc (_, c) -> Int.max acc c) 0 buckets
  in
  if total = 0 then 0.0
  else begin
    let rank = Int.max 1 (int_of_float (ceil (q /. 100.0 *. float_of_int total))) in
    let last_finite =
      List.fold_left
        (fun acc (ub, _) -> if Float.is_finite ub then ub else acc)
        0.0 buckets
    in
    let rec pick = function
      | [] -> last_finite
      | (ub, cum) :: rest ->
          if cum >= rank then if Float.is_finite ub then ub else last_finite
          else pick rest
    in
    pick buckets
  end
