(** ASCII timeline view of sampled series and registry snapshots, built on
    {!Jord_util.Render} (tables + sparklines) for the [jordctl stats]
    summary and quick terminal inspection. *)

val render_series : ?width:int -> Sampler.t -> string
(** One row per tracked series: name, labels, point count, min / mean /
    max / last value, and a sparkline over simulated time. *)

val render_snapshot : ?filter:(string -> bool) -> Registry.t -> string
(** Counters and gauges as an aligned table (histograms summarize to
    count/mean/p-ish sum). [filter] selects metric names (default all). *)
