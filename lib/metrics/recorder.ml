module Request = Jord_faas.Request

type breakdown = {
  exec_ns : float;
  isolation_ns : float;
  dispatch_ns : float;
  comm_ns : float;
}

type acc = {
  mutable n : int;
  mutable lat_sum : float;
  mutable exec : float;
  mutable iso : float;
  mutable disp : float;
  mutable comm : float;
  mutable invocations : int;
}

let fresh_acc () =
  { n = 0; lat_sum = 0.0; exec = 0.0; iso = 0.0; disp = 0.0; comm = 0.0; invocations = 0 }

type t = {
  warmup : int;
  mutable seen : int;
  hist : Jord_util.Histogram.t; (* latency in ns *)
  total : acc;
  per_fn : (string, acc) Hashtbl.t;
  mutable first_at : Jord_sim.Time.t;
  mutable last_at : Jord_sim.Time.t;
}

let create ?(warmup = 2000) () =
  {
    warmup;
    seen = 0;
    hist = Jord_util.Histogram.create ~lowest:10.0 ~highest:1e10 ~sub_buckets:48 ();
    total = fresh_acc ();
    per_fn = Hashtbl.create 8;
    first_at = Jord_sim.Time.zero;
    last_at = Jord_sim.Time.zero;
  }

let add_to acc root lat_ns =
  acc.n <- acc.n + 1;
  acc.lat_sum <- acc.lat_sum +. lat_ns;
  acc.exec <- acc.exec +. root.Request.exec_ns;
  acc.iso <- acc.iso +. root.Request.isolation_ns;
  acc.disp <- acc.disp +. root.Request.dispatch_ns;
  acc.comm <- acc.comm +. root.Request.comm_ns;
  acc.invocations <- acc.invocations + root.Request.invocations

let observe t root =
  t.seen <- t.seen + 1;
  if t.seen > t.warmup then begin
    let lat_ns = Request.latency_ns root in
    if t.total.n = 0 then t.first_at <- root.Request.completed_at;
    t.last_at <- root.Request.completed_at;
    Jord_util.Histogram.record t.hist lat_ns;
    add_to t.total root lat_ns;
    let acc =
      match Hashtbl.find_opt t.per_fn root.Request.entry with
      | Some a -> a
      | None ->
          let a = fresh_acc () in
          Hashtbl.add t.per_fn root.Request.entry a;
          a
    in
    add_to acc root lat_ns
  end

let count t = t.total.n
let first_counted_at t = t.first_at
let last_counted_at t = t.last_at

let throughput_mrps t =
  (* Fewer than two counted completions span no time: the rate is
     undefined, and (n-1)/span would divide by zero (or go negative when
     everything fell inside warmup). Report 0 instead. *)
  if t.total.n < 2 then 0.0
  else
    let span_us = Jord_sim.Time.to_us Jord_sim.Time.(t.last_at - t.first_at) in
    if span_us <= 0.0 then 0.0 else float_of_int (t.total.n - 1) /. span_us

let percentile_us t p = Jord_util.Histogram.percentile t.hist p /. 1000.0
let p99_us t = percentile_us t 99.0
let p50_us t = percentile_us t 50.0
let mean_us t = if t.total.n = 0 then 0.0 else t.total.lat_sum /. float_of_int t.total.n /. 1000.0

let cdf t =
  List.map (fun (v, f) -> (v /. 1000.0, f)) (Jord_util.Histogram.cdf t.hist)

let breakdown_of acc =
  (* All-zero when nothing was counted (run shorter than warmup) rather
     than 0/0 = nan leaking into figure tables. *)
  if acc.n = 0 then { exec_ns = 0.0; isolation_ns = 0.0; dispatch_ns = 0.0; comm_ns = 0.0 }
  else
    let n = float_of_int acc.n in
    {
      exec_ns = acc.exec /. n;
      isolation_ns = acc.iso /. n;
      dispatch_ns = acc.disp /. n;
      comm_ns = acc.comm /. n;
    }

let mean_breakdown t = breakdown_of t.total

let mean_invocations t =
  if t.total.n = 0 then 0.0
  else float_of_int t.total.invocations /. float_of_int t.total.n

let by_entry t =
  Hashtbl.fold
    (fun name acc out ->
      let mean_lat = acc.lat_sum /. float_of_int (Int.max 1 acc.n) /. 1000.0 in
      (name, acc.n, mean_lat, breakdown_of acc) :: out)
    t.per_fn []
  |> List.sort (fun (a, _, _, _) (b, _, _, _) -> compare a b)
