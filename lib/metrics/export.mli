(** Machine-readable telemetry export: Prometheus text exposition format,
    JSONL and CSV.

    Every format carries the registry snapshot; when a {!Sampler} is
    given its time series ride along too (Prometheus lines gain explicit
    millisecond timestamps; JSONL and CSV gain point records). A small
    Prometheus parser is included so tests — and the CI smoke — can
    round-trip what we emit. *)

val to_prometheus : ?sampler:Sampler.t -> Registry.t -> string
(** [# HELP]/[# TYPE] headers per family; histograms expand into
    [_bucket{le=...}], [_sum] and [_count] lines. Sampled points are
    appended as timestamped gauge lines. *)

val to_jsonl : ?sampler:Sampler.t -> Registry.t -> string
(** One JSON object per line: [{"type":"counter"|"gauge","name":...,
    "labels":{...},"value":...}], histograms with bucket arrays, and
    [{"type":"point",...,"t_us":...}] for sampled series. *)

val to_csv : ?sampler:Sampler.t -> Registry.t -> string
(** Header [kind,name,labels,t_us,value]; labels are rendered as
    [k=v;k2=v2]. Histogram buckets become [histogram_bucket] rows with an
    [le] pseudo-label. *)

val write_file : path:string -> string -> unit
(** Write (truncating) [path]. *)

type format = Prometheus | Jsonl | Csv

val format_of_string : string -> format option
(** ["prom"|"prometheus"], ["jsonl"|"json"], ["csv"]. *)

val format_for_path : string -> format
(** Infer from the file extension; defaults to Prometheus. *)

val export : format -> ?sampler:Sampler.t -> Registry.t -> string

type prom_line = { name : string; labels : Registry.labels; value : float }

val parse_prometheus : string -> (prom_line list, string) result
(** Parse the sample lines of a Prometheus text exposition ([# ] comment
    lines are skipped, timestamps are accepted and dropped). *)
