(** Mergeable fixed-boundary log-bucket quantile sketch over non-negative
    integer picoseconds.

    The bucket ladder is fixed at module load: values 0..15 get exact
    buckets, and every octave above is split into 16 linear sub-buckets, so
    the quantile upper bound is within 1/16 (6.25%) of the true value while
    the ladder never depends on the data. Because buckets are fixed and all
    state is integer sums, merging is exact, associative and commutative:
    any merge order over any partition of the observations yields the same
    sketch, byte for byte — the property that lets per-server, per-window
    sketches roll up into fleet aggregates deterministically.

    [count], [sum], [min] and [max] are exact (plain integer arithmetic),
    which the online-vs-post-hoc conservation property in the test suite
    relies on; only [quantile] is bucketed. *)

type t

val create : unit -> t

val add : t -> int -> unit
(** Record one observation. Negative values are rejected with
    [Invalid_argument]. *)

val add_ex : t -> int -> ex:int -> unit
(** [add], plus an exemplar id for the observation (a retained trace id,
    say). The sketch keeps the id of the largest observation it has seen,
    breaking ties toward the smallest id, so the slot — like the rest of
    the state — is exact, associative and commutative under [merge].
    A negative [ex] records the observation without an exemplar. *)

val exemplar : t -> (int * int) option
(** [(value, id)] of the largest exemplar-carrying observation, or [None]
    when no [add_ex] with a non-negative id has happened. *)

val count : t -> int
val sum : t -> int
(** Exact observation count and exact integer sum. *)

val min_v : t -> int
val max_v : t -> int
(** Exact extrema; both are 0 on an empty sketch. *)

val mean : t -> float
(** [sum / count] as a float; 0 on an empty sketch. *)

val is_empty : t -> bool

val merge_into : into:t -> t -> unit
(** Element-wise add of the source into [into] (the source is unchanged). *)

val merge : t -> t -> t
(** Fresh sketch holding both inputs' observations. *)

val copy : t -> t

val quantile : t -> float -> int
(** [quantile t q] for [q] in [0, 100]: the upper boundary of the bucket
    holding the rank-[ceil (q/100 * count)] observation, clamped into
    [[min_v, max_v]] so the answer always lies in the observed range. 0 on
    an empty sketch. Deterministic and merge-order independent. *)

val bucket_index : int -> int
(** The ladder: which bucket a value lands in (exposed for tests). *)

val bucket_upper : int -> int
(** Inclusive upper boundary of a bucket (exposed for tests). *)

val bucket_count : int
(** Number of buckets in the fixed ladder. *)

val equal : t -> t -> bool
(** Structural equality of the full state (buckets, count, sum, extrema) —
    the merge-order-independence checks compare whole sketches. *)

val quantile_of_buckets : (float * int) list -> float -> float
(** Quantile over a cumulative [(upper_bound, cumulative_count)] ladder as
    produced by {!Registry.Hist.buckets}: the first upper bound whose
    cumulative count reaches the rank. An infinite final bound falls back
    to the last finite one (the ladder's ceiling). 0 when empty. *)
