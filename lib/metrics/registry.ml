type labels = (string * string) list

type kind = Counter_kind | Gauge_kind | Histogram_kind

module Counter = struct
  type t = { mutable v : float }

  let inc c = c.v <- c.v +. 1.0

  let add c x =
    if x < 0.0 then invalid_arg "Registry.Counter.add: negative increment";
    c.v <- c.v +. x

  let value c = c.v
end

module Hist = struct
  type t = {
    bounds : float array; (* sorted upper bounds, exclusive of +inf *)
    counts : int array; (* length bounds + 1; last is the +inf bucket *)
    mutable n : int;
    mutable total : float;
  }

  (* Powers of 4 from 1 to 4^15 (~1.07e9): 16 buckets covering sub-ns to
     second-scale latencies in ns with a worst-case 4x quantization. *)
  let default_bounds = Array.init 16 (fun i -> 4.0 ** float_of_int i)

  let create bounds =
    let bounds = Array.of_list (List.sort_uniq compare bounds) in
    if Array.length bounds = 0 then invalid_arg "Registry.histogram: no buckets";
    { bounds; counts = Array.make (Array.length bounds + 1) 0; n = 0; total = 0.0 }

  let observe h x =
    let n = Array.length h.bounds in
    let rec find i = if i >= n || x <= h.bounds.(i) then i else find (i + 1) in
    let i = find 0 in
    h.counts.(i) <- h.counts.(i) + 1;
    h.n <- h.n + 1;
    h.total <- h.total +. x

  let count h = h.n
  let sum h = h.total

  let buckets h =
    let acc = ref 0 in
    let finite =
      Array.to_list
        (Array.mapi
           (fun i b ->
             acc := !acc + h.counts.(i);
             (b, !acc))
           h.bounds)
    in
    finite @ [ (infinity, h.n) ]
end

type value =
  | Counter_v of float
  | Gauge_v of float
  | Histogram_v of { buckets : (float * int) list; count : int; sum : float }

type sample = { name : string; help : string; labels : labels; value : value }

type instrument =
  | Owned_counter of Counter.t
  | Owned_hist of Hist.t
  | Pull of (unit -> float)

type family = {
  fname : string;
  fkind : kind;
  fhelp : string;
  mutable instances : (labels * instrument) list; (* reverse registration order *)
}

type t = { mutable fams : family list (* reverse registration order *) }

let create () = { fams = [] }

let valid_name name =
  name <> ""
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true | _ -> false)
       name

let family t ~name ~kind ~help =
  match List.find_opt (fun f -> f.fname = name) t.fams with
  | Some f ->
      if f.fkind <> kind then
        invalid_arg ("Registry: " ^ name ^ " re-registered with a different kind");
      f
  | None ->
      if not (valid_name name) then invalid_arg ("Registry: invalid metric name " ^ name);
      let f = { fname = name; fkind = kind; fhelp = help; instances = [] } in
      t.fams <- f :: t.fams;
      f

let add_instance f ~labels instr =
  f.instances <- (labels, instr) :: List.remove_assoc labels f.instances;
  instr

let counter t ?(help = "") ?(labels = []) name =
  let f = family t ~name ~kind:Counter_kind ~help in
  match List.assoc_opt labels f.instances with
  | Some (Owned_counter c) -> c
  | Some _ -> invalid_arg ("Registry: " ^ name ^ " is not an owned counter")
  | None -> (
      match add_instance f ~labels (Owned_counter { Counter.v = 0.0 }) with
      | Owned_counter c -> c
      | _ -> assert false)

let histogram t ?(help = "") ?(labels = []) ?buckets name =
  let f = family t ~name ~kind:Histogram_kind ~help in
  match List.assoc_opt labels f.instances with
  | Some (Owned_hist h) -> h
  | Some _ -> invalid_arg ("Registry: " ^ name ^ " is not a histogram")
  | None ->
      let h =
        match buckets with
        | Some bs -> Hist.create bs
        | None -> Hist.create (Array.to_list Hist.default_bounds)
      in
      ignore (add_instance f ~labels (Owned_hist h));
      h

let counter_fn t ?(help = "") ?(labels = []) name fn =
  let f = family t ~name ~kind:Counter_kind ~help in
  ignore (add_instance f ~labels (Pull fn))

let gauge_fn t ?(help = "") ?(labels = []) name fn =
  let f = family t ~name ~kind:Gauge_kind ~help in
  ignore (add_instance f ~labels (Pull fn))

let family_count t = List.length t.fams

let families t =
  List.rev_map (fun f -> (f.fname, f.fkind, f.fhelp)) t.fams

let sample_of f (labels, instr) =
  let value =
    match (instr, f.fkind) with
    | Owned_counter c, _ -> Counter_v (Counter.value c)
    | Owned_hist h, _ ->
        Histogram_v { buckets = Hist.buckets h; count = Hist.count h; sum = Hist.sum h }
    | Pull fn, Counter_kind -> Counter_v (fn ())
    | Pull fn, (Gauge_kind | Histogram_kind) -> Gauge_v (fn ())
  in
  { name = f.fname; help = f.fhelp; labels; value }

let snapshot t =
  List.concat_map
    (fun f -> List.rev_map (sample_of f) f.instances)
    (List.rev t.fams)

let find t ~name ~labels =
  match List.find_opt (fun f -> f.fname = name) t.fams with
  | None -> None
  | Some f -> Option.map (fun i -> sample_of f (labels, snd i))
                (List.find_opt (fun (l, _) -> l = labels) f.instances)
