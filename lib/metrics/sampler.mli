(** Simulated-time gauge sampler.

    Rides on a {!Jord_sim.Engine}: every [interval_us] of {e simulated}
    time it evaluates every tracked gauge and appends the value to that
    series' ring buffer. Sampling stops by itself when the engine has no
    other pending events (the machine went quiescent), when the optional
    [until] horizon passes, or on {!stop} — so a sampler never keeps a
    simulation alive on its own. *)

type t

type series = {
  name : string;
  labels : Registry.labels;
  points : (float * float) array;  (** (simulated time in us, value), oldest first. *)
}

val create :
  ?capacity:int -> engine:Jord_sim.Engine.t -> interval_us:float -> unit -> t
(** [capacity] bounds each series' ring buffer (default 4096 points; older
    points are overwritten). [interval_us] must be positive. *)

val interval_us : t -> float

val track : t -> ?labels:Registry.labels -> string -> (unit -> float) -> unit
(** Add a gauge to the sampled set. Metric names follow the registry's
    conventions so exported points line up with snapshot families. *)

val start : ?until:Jord_sim.Time.t -> t -> unit
(** Schedule the periodic sampling from the engine's current time. *)

val stop : t -> unit

val sample_now : t -> unit
(** Record one sample of every series at the current simulated time. *)

val samples_taken : t -> int
(** Sampling rounds performed so far. *)

val series : t -> series list
(** Tracked series in registration order. *)
