module Json = Jord_util.Json

(* --- shared rendering helpers --- *)

let escape_label_value s =
  let buf = Buffer.create (String.length s + 4) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let labelset labels =
  match labels with
  | [] -> ""
  | _ ->
      "{"
      ^ String.concat ","
          (List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label_value v)) labels)
      ^ "}"

let num v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

let le_str b = if b = infinity then "+Inf" else num b

(* --- Prometheus text exposition --- *)

let to_prometheus ?sampler reg =
  let buf = Buffer.create 4096 in
  let seen_type = Hashtbl.create 32 in
  let type_header name kind help =
    if not (Hashtbl.mem seen_type name) then begin
      Hashtbl.add seen_type name ();
      if help <> "" then Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" name help);
      Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name kind)
    end
  in
  List.iter
    (fun (s : Registry.sample) ->
      match s.Registry.value with
      | Registry.Counter_v v ->
          type_header s.name "counter" s.help;
          Buffer.add_string buf
            (Printf.sprintf "%s%s %s\n" s.name (labelset s.labels) (num v))
      | Registry.Gauge_v v ->
          type_header s.name "gauge" s.help;
          Buffer.add_string buf
            (Printf.sprintf "%s%s %s\n" s.name (labelset s.labels) (num v))
      | Registry.Histogram_v { buckets; count; sum } ->
          type_header s.name "histogram" s.help;
          List.iter
            (fun (b, c) ->
              Buffer.add_string buf
                (Printf.sprintf "%s_bucket%s %d\n" s.name
                   (labelset (s.labels @ [ ("le", le_str b) ]))
                   c))
            buckets;
          Buffer.add_string buf
            (Printf.sprintf "%s_sum%s %s\n" s.name (labelset s.labels) (num sum));
          Buffer.add_string buf
            (Printf.sprintf "%s_count%s %d\n" s.name (labelset s.labels) count))
    (Registry.snapshot reg);
  (match sampler with
  | None -> ()
  | Some sampler ->
      List.iter
        (fun (sr : Sampler.series) ->
          type_header sr.Sampler.name "gauge" "sampled time series (simulated time)";
          Array.iter
            (fun (t_us, v) ->
              (* Prometheus timestamps are integer milliseconds; simulated
                 microseconds map 1:1 onto them to keep sub-ms resolution. *)
              Buffer.add_string buf
                (Printf.sprintf "%s%s %s %d\n" sr.Sampler.name
                   (labelset sr.Sampler.labels) (num v)
                   (int_of_float (Float.round t_us))))
            sr.Sampler.points)
        (Sampler.series sampler));
  Buffer.contents buf

(* --- JSONL --- *)

let labels_obj labels = Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) labels)

let to_jsonl ?sampler reg =
  let buf = Buffer.create 4096 in
  let line j =
    Json.to_buffer buf j;
    Buffer.add_char buf '\n'
  in
  List.iter
    (fun (s : Registry.sample) ->
      let base ty =
        [
          ("type", Json.String ty);
          ("name", Json.String s.Registry.name);
          ("labels", labels_obj s.Registry.labels);
        ]
      in
      match s.Registry.value with
      | Registry.Counter_v v -> line (Json.Obj (base "counter" @ [ ("value", Json.Float v) ]))
      | Registry.Gauge_v v -> line (Json.Obj (base "gauge" @ [ ("value", Json.Float v) ]))
      | Registry.Histogram_v { buckets; count; sum } ->
          line
            (Json.Obj
               (base "histogram"
               @ [
                   ("count", Json.Int count);
                   ("sum", Json.Float sum);
                   ( "buckets",
                     Json.List
                       (List.map
                          (fun (b, c) ->
                            Json.Obj
                              [
                                ( "le",
                                  if b = infinity then Json.String "+Inf" else Json.Float b );
                                ("count", Json.Int c);
                              ])
                          buckets) );
                 ])))
    (Registry.snapshot reg);
  (match sampler with
  | None -> ()
  | Some sampler ->
      List.iter
        (fun (sr : Sampler.series) ->
          Array.iter
            (fun (t_us, v) ->
              line
                (Json.Obj
                   [
                     ("type", Json.String "point");
                     ("name", Json.String sr.Sampler.name);
                     ("labels", labels_obj sr.Sampler.labels);
                     ("t_us", Json.Float t_us);
                     ("value", Json.Float v);
                   ]))
            sr.Sampler.points)
        (Sampler.series sampler));
  Buffer.contents buf

(* --- CSV --- *)

let csv_labels labels =
  String.concat ";" (List.map (fun (k, v) -> k ^ "=" ^ v) labels)

let csv_cell s =
  if String.exists (function ',' | '"' | '\n' -> true | _ -> false) s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let to_csv ?sampler reg =
  let buf = Buffer.create 4096 in
  let row kind name labels t_us value =
    Buffer.add_string buf
      (String.concat ","
         (List.map csv_cell [ kind; name; csv_labels labels; t_us; value ]));
    Buffer.add_char buf '\n'
  in
  Buffer.add_string buf "kind,name,labels,t_us,value\n";
  List.iter
    (fun (s : Registry.sample) ->
      match s.Registry.value with
      | Registry.Counter_v v -> row "counter" s.name s.labels "" (num v)
      | Registry.Gauge_v v -> row "gauge" s.name s.labels "" (num v)
      | Registry.Histogram_v { buckets; count; sum } ->
          List.iter
            (fun (b, c) ->
              row "histogram_bucket" s.name
                (s.labels @ [ ("le", le_str b) ])
                "" (string_of_int c))
            buckets;
          row "histogram_sum" s.name s.labels "" (num sum);
          row "histogram_count" s.name s.labels "" (string_of_int count))
    (Registry.snapshot reg);
  (match sampler with
  | None -> ()
  | Some sampler ->
      List.iter
        (fun (sr : Sampler.series) ->
          Array.iter
            (fun (t_us, v) ->
              row "point" sr.Sampler.name sr.Sampler.labels (Printf.sprintf "%.3f" t_us)
                (num v))
            sr.Sampler.points)
        (Sampler.series sampler));
  Buffer.contents buf

let write_file ~path content =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc content)

type format = Prometheus | Jsonl | Csv

let format_of_string = function
  | "prom" | "prometheus" -> Some Prometheus
  | "jsonl" | "json" -> Some Jsonl
  | "csv" -> Some Csv
  | _ -> None

let format_for_path path =
  match String.rindex_opt path '.' with
  | None -> Prometheus
  | Some i -> (
      match format_of_string (String.sub path (i + 1) (String.length path - i - 1)) with
      | Some f -> f
      | None -> Prometheus)

let export fmt ?sampler reg =
  match fmt with
  | Prometheus -> to_prometheus ?sampler reg
  | Jsonl -> to_jsonl ?sampler reg
  | Csv -> to_csv ?sampler reg

(* --- Prometheus parsing (for round-trip tests and the CI smoke) --- *)

type prom_line = { name : string; labels : Registry.labels; value : float }

let parse_prom_line line =
  let n = String.length line in
  let is_name_char = function
    | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true
    | _ -> false
  in
  let rec skip_ws i = if i < n && (line.[i] = ' ' || line.[i] = '\t') then skip_ws (i + 1) else i in
  let i = skip_ws 0 in
  let j = ref i in
  while !j < n && is_name_char line.[!j] do incr j done;
  if !j = i then Error ("bad metric name: " ^ line)
  else begin
    let name = String.sub line i (!j - i) in
    let labels = ref [] in
    let k = ref !j in
    let err = ref None in
    if !k < n && line.[!k] = '{' then begin
      incr k;
      let fin = ref false in
      while (not !fin) && !err = None do
        let s = skip_ws !k in
        if s < n && line.[s] = '}' then begin
          k := s + 1;
          fin := true
        end
        else begin
          let e = ref s in
          while !e < n && is_name_char line.[!e] do incr e done;
          if !e = s || !e >= n || line.[!e] <> '=' || !e + 1 >= n || line.[!e + 1] <> '"'
          then err := Some ("bad label at: " ^ line)
          else begin
            let key = String.sub line s (!e - s) in
            let buf = Buffer.create 16 in
            let p = ref (!e + 2) in
            let closed = ref false in
            while (not !closed) && !err = None do
              if !p >= n then err := Some ("unterminated label value: " ^ line)
              else
                match line.[!p] with
                | '"' ->
                    closed := true;
                    incr p
                | '\\' when !p + 1 < n ->
                    (match line.[!p + 1] with
                    | 'n' -> Buffer.add_char buf '\n'
                    | c -> Buffer.add_char buf c);
                    p := !p + 2
                | c ->
                    Buffer.add_char buf c;
                    incr p
            done;
            if !err = None then begin
              labels := (key, Buffer.contents buf) :: !labels;
              let s = skip_ws !p in
              if s < n && line.[s] = ',' then k := s + 1 else k := s
            end
          end
        end
      done
    end;
    match !err with
    | Some e -> Error e
    | None -> (
        let rest = String.trim (String.sub line !k (n - !k)) in
        match String.split_on_char ' ' rest with
        | v :: _ -> (
            let v = if v = "+Inf" then "infinity" else v in
            match float_of_string_opt v with
            | Some value -> Ok { name; labels = List.rev !labels; value }
            | None -> Error ("bad value in: " ^ line))
        | [] -> Error ("missing value in: " ^ line))
  end

let parse_prometheus text =
  let lines = String.split_on_char '\n' text in
  List.fold_left
    (fun acc line ->
      match acc with
      | Error _ -> acc
      | Ok out ->
          let line = String.trim line in
          if line = "" || line.[0] = '#' then acc
          else
            (match parse_prom_line line with
            | Ok l -> Ok (l :: out)
            | Error e -> Error e))
    (Ok []) lines
  |> Result.map List.rev
