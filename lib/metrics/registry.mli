(** Named, labeled metric families: counters, gauges and log-scale
    histograms.

    The registry is the single naming authority of the telemetry layer
    (see docs/observability.md for the metric catalog and label
    conventions). Two styles of instrument coexist:

    - {e owned} instruments ({!counter}, {!histogram}) hand the caller a
      handle whose update is a plain O(1) field write — safe on simulation
      hot paths;
    - {e collected} instruments ({!counter_fn}, {!gauge_fn}) register a
      closure that is only evaluated at {!snapshot} time, so instrumenting
      a subsystem that already keeps mutable statistics costs nothing on
      the hot path at all.

    A {e family} is one metric name; instances of a family differ by their
    label sets (e.g. [jord_vlb_hits_total{vlb="i"}] and [{vlb="d"}]). *)

type t

type labels = (string * string) list
(** Label pairs, e.g. [[("vlb", "i")]]. Order is preserved on export. *)

type kind = Counter_kind | Gauge_kind | Histogram_kind

module Counter : sig
  type t

  val inc : t -> unit
  val add : t -> float -> unit
  (** O(1); negative increments are rejected with [Invalid_argument]. *)

  val value : t -> float
end

module Hist : sig
  type t

  val observe : t -> float -> unit
  (** O(number of buckets), bounded by the fixed bucket ladder. *)

  val count : t -> int
  val sum : t -> float

  val buckets : t -> (float * int) list
  (** [(upper_bound, cumulative_count)] pairs, ending with [(infinity, count)]. *)
end

type value =
  | Counter_v of float
  | Gauge_v of float
  | Histogram_v of { buckets : (float * int) list; count : int; sum : float }

type sample = { name : string; help : string; labels : labels; value : value }

val create : unit -> t

val counter : t -> ?help:string -> ?labels:labels -> string -> Counter.t
(** Create (or fetch, for an existing name+labels pair) an owned counter. *)

val histogram :
  t -> ?help:string -> ?labels:labels -> ?buckets:float list -> string -> Hist.t
(** Owned log-scale histogram. [buckets] are the upper bounds (default:
    powers of 4 from 1 to [4^15], suiting nanosecond latencies). *)

val counter_fn : t -> ?help:string -> ?labels:labels -> string -> (unit -> float) -> unit
(** Register a pull-collected counter: the closure is read at snapshot
    time and must be monotone over a run (e.g. a stats-record field). *)

val gauge_fn : t -> ?help:string -> ?labels:labels -> string -> (unit -> float) -> unit
(** Register a pull-collected gauge (an instantaneous level). *)

val family_count : t -> int
(** Number of distinct metric names registered. *)

val families : t -> (string * kind * string) list
(** [(name, kind, help)] in registration order. *)

val snapshot : t -> sample list
(** Evaluate every instrument. Families appear in registration order,
    instances in registration order within a family. *)

val find : t -> name:string -> labels:labels -> sample option
(** Snapshot a single instrument (mainly for tests). *)
