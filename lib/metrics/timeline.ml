module Render = Jord_util.Render

let labels_str = function
  | [] -> "-"
  | labels -> String.concat ";" (List.map (fun (k, v) -> k ^ "=" ^ v) labels)

let render_series ?(width = 40) sampler =
  let rows =
    List.map
      (fun (sr : Sampler.series) ->
        let vs = Array.to_list (Array.map snd sr.Sampler.points) in
        let n = List.length vs in
        let mn = List.fold_left Float.min infinity vs in
        let mx = List.fold_left Float.max neg_infinity vs in
        let mean = if n = 0 then 0.0 else List.fold_left ( +. ) 0.0 vs /. float_of_int n in
        let last = match List.rev vs with v :: _ -> v | [] -> 0.0 in
        [
          sr.Sampler.name;
          labels_str sr.Sampler.labels;
          string_of_int n;
          (if n = 0 then "-" else Render.f2 mn);
          Render.f2 mean;
          (if n = 0 then "-" else Render.f2 mx);
          Render.f2 last;
          Render.sparkline ~width vs;
        ])
      (Sampler.series sampler)
  in
  Render.table
    ~title:
      (Printf.sprintf "sampled series (every %.1f us of simulated time)"
         (Sampler.interval_us sampler))
    ~header:[ "series"; "labels"; "pts"; "min"; "mean"; "max"; "last"; "timeline" ]
    ~rows ()

let render_snapshot ?(filter = fun _ -> true) reg =
  let rows =
    List.filter_map
      (fun (s : Registry.sample) ->
        if not (filter s.Registry.name) then None
        else
          match s.Registry.value with
          | Registry.Counter_v v ->
              Some [ s.name; labels_str s.labels; "counter"; Render.f2 v ]
          | Registry.Gauge_v v ->
              Some [ s.name; labels_str s.labels; "gauge"; Render.f2 v ]
          | Registry.Histogram_v { buckets; count; sum } ->
              let q p =
                if count = 0 then "-"
                else Render.f2 (Sketch.quantile_of_buckets buckets p)
              in
              Some
                [
                  s.name;
                  labels_str s.labels;
                  "histogram";
                  Printf.sprintf "n=%d mean=%s p50=%s p95=%s p99=%s" count
                    (Render.f2 (if count = 0 then 0.0 else sum /. float_of_int count))
                    (q 50.0) (q 95.0) (q 99.0);
                ])
      (Registry.snapshot reg)
  in
  Render.table ~header:[ "metric"; "labels"; "kind"; "value" ] ~rows ()
