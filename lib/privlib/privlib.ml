module Vm = Jord_vm

type category = Vma_mgmt | Pd_mgmt

type op =
  | Op_mmap
  | Op_munmap
  | Op_mprotect
  | Op_pmove
  | Op_pcopy
  | Op_cget
  | Op_cput
  | Op_ccall
  | Op_creturn
  | Op_cexit
  | Op_center

let all_ops =
  [
    Op_mmap; Op_munmap; Op_mprotect; Op_pmove; Op_pcopy; Op_cget; Op_cput;
    Op_ccall; Op_creturn; Op_cexit; Op_center;
  ]

let op_index = function
  | Op_mmap -> 0
  | Op_munmap -> 1
  | Op_mprotect -> 2
  | Op_pmove -> 3
  | Op_pcopy -> 4
  | Op_cget -> 5
  | Op_cput -> 6
  | Op_ccall -> 7
  | Op_creturn -> 8
  | Op_cexit -> 9
  | Op_center -> 10

let op_name = function
  | Op_mmap -> "mmap"
  | Op_munmap -> "munmap"
  | Op_mprotect -> "mprotect"
  | Op_pmove -> "pmove"
  | Op_pcopy -> "pcopy"
  | Op_cget -> "cget"
  | Op_cput -> "cput"
  | Op_ccall -> "ccall"
  | Op_creturn -> "creturn"
  | Op_cexit -> "cexit"
  | Op_center -> "center"

let n_ops = List.length all_ops

type t = {
  hw : Vm.Hw.t;
  os : Os_facade.t;
  fl : Free_list.t;
  pds : Pd.t;
  mutable code_va : int option; (* PrivLib's own code VMA (I-VLB pressure) *)
  grants : (int, int) Hashtbl.t; (* PD id -> outstanding VMA permissions *)
  mutable vma_ns : float;
  mutable pd_ns : float;
  mutable vma_calls : int;
  mutable pd_calls : int;
  op_calls : int array; (* per-op call counts, indexed by op_index *)
  op_ns : float array; (* per-op cumulative latency *)
}

(* Straight-line instruction budgets for each API body (gate entry, policy
   checks, bookkeeping), calibrated so the measured latencies land near
   Table 4 under the Simulator profile. The memory-system traffic on top of
   these comes from the live data structures. *)
let gate_instrs = 14
let mmap_instrs = 110
let munmap_instrs = 90
let mprotect_instrs = 80
let pmove_instrs = 85
let pcopy_instrs = 85
let cget_instrs = 55
let cput_instrs = 65
let ccall_instrs = 95
let creturn_instrs = 48
let cexit_instrs = 58
let center_instrs = 75

let hw t = t.hw
let code_vma t = t.code_va
let pds t = t.pds
let free_lists t = t.fl
let mmu t ~core = Vm.Hw.mmu t.hw ~core
let caller_pd t ~core = Vm.Mmu.ucid (mmu t ~core)

(* Model the uatg gate entry: sets the P bit for the duration of the call and
   fetches the first PrivLib instructions (I-VLB pressure on tiny VLBs). *)
let enter t ~core =
  Vm.Mmu.enter_privileged (mmu t ~core) ~at_gate:true;
  match t.code_va with
  | Some va ->
      let _, lat = Vm.Hw.translate t.hw ~core ~va ~access:Vm.Perm.Exec ~kind:`Instr in
      lat
  | None -> 0.0

let leave t ~core = Vm.Mmu.exit_privileged (mmu t ~core)

(* Run an API body inside the gate. The P bit is cleared on every exit path:
   when a security-policy check faults, the hardware tears the privileged
   context down before delivering the fault, so a failed call must never
   leave the core privileged. *)
let with_gate t ~core f =
  let gate_ns = enter t ~core in
  Fun.protect
    ~finally:(fun () -> leave t ~core)
    (fun () ->
      try f gate_ns
      with Vm.Fault.Fault fl as exn ->
        (* Policy rejections are faults too: count them with the hardware's
           fault classes so telemetry sees the whole fault surface. *)
        Vm.Hw.note_fault t.hw fl;
        raise exn)

let account t cat op ns =
  (match cat with
  | Vma_mgmt ->
      t.vma_ns <- t.vma_ns +. ns;
      t.vma_calls <- t.vma_calls + 1
  | Pd_mgmt ->
      t.pd_ns <- t.pd_ns +. ns;
      t.pd_calls <- t.pd_calls + 1);
  let i = op_index op in
  t.op_calls.(i) <- t.op_calls.(i) + 1;
  t.op_ns.(i) <- t.op_ns.(i) +. ns

let time_in t = function Vma_mgmt -> t.vma_ns | Pd_mgmt -> t.pd_ns
let call_count t = function Vma_mgmt -> t.vma_calls | Pd_mgmt -> t.pd_calls
let op_count t op = t.op_calls.(op_index op)
let op_ns t op = t.op_ns.(op_index op)

let op_stats t =
  List.map (fun op -> (op, op_count t op, op_ns t op)) all_ops

let reset_accounting t =
  t.vma_ns <- 0.0;
  t.pd_ns <- 0.0;
  t.vma_calls <- 0;
  t.pd_calls <- 0;
  Array.fill t.op_calls 0 n_ops 0;
  Array.fill t.op_ns 0 n_ops 0.0

(* Telemetry wiring: per-op call counts and cumulative in-PrivLib time, as
   pull collectors over the accounting arrays (Table 1 / Fig. 11 signals). *)
let register_metrics t ?(labels = []) reg =
  let open Jord_telemetry.Registry in
  List.iter
    (fun op ->
      let l = labels @ [ ("op", op_name op) ] in
      counter_fn reg ~help:"PrivLib calls by API" ~labels:l "jord_privlib_calls_total"
        (fun () -> float_of_int (op_count t op));
      counter_fn reg ~help:"Cumulative time inside PrivLib by API (ns)" ~labels:l
        "jord_privlib_ns_total" (fun () -> op_ns t op))
    all_ops;
  List.iter
    (fun (cat, name) ->
      let l = labels @ [ ("category", name) ] in
      counter_fn reg ~help:"PrivLib calls by category" ~labels:l
        "jord_privlib_category_calls_total" (fun () -> float_of_int (call_count t cat));
      counter_fn reg ~help:"Cumulative PrivLib time by category (ns)" ~labels:l
        "jord_privlib_category_ns_total" (fun () -> time_in t cat))
    [ (Vma_mgmt, "vma_mgmt"); (Pd_mgmt, "pd_mgmt") ];
  gauge_fn reg ~help:"Outstanding VMA grants across non-root PDs" ~labels
    "jord_privlib_outstanding_grants" (fun () ->
      float_of_int (Hashtbl.fold (fun _ v acc -> acc + v) t.grants 0))

(* Find the VTE covering [va], charging the lookup, with policy check: the
   subject PD must hold some permission on the VMA — and acting on behalf of
   a foreign PD is reserved to the trusted runtime in PD 0. *)
let resolve_owned t ~core ~subject ~va =
  let caller = caller_pd t ~core in
  if subject <> caller && caller <> 0 then
    Vm.Fault.raise_fault (Vm.Fault.Bad_handle "acting on a foreign PD is executor-only");
  let vte, fp = Vm.Vma_store.lookup (Vm.Hw.store t.hw) ~va in
  let lat = Vm.Hw.charge_footprint t.hw ~core fp in
  match vte with
  | None -> Vm.Fault.raise_fault (Vm.Fault.Unmapped va)
  | Some vte ->
      let owned =
        (not (Vm.Perm.equal (Vm.Vte.perm_for vte ~pd:subject) Vm.Perm.none))
        || Vm.Vte.global_perm vte <> None
        || caller = 0
      in
      if not owned then
        Vm.Fault.raise_fault (Vm.Fault.Bad_handle "caller holds no permission on VMA");
      (vte, lat)

let check_dst_pd t pd = if pd = 0 then () else ignore (Pd.status t.pds pd)

(* Track how many VMA permissions each non-root PD holds: destroying a PD
   that still holds permissions would let a recycled PD id inherit them, so
   [cput] rejects it (the Figure-4 teardown always revokes first). *)
let bump_grants t pd delta =
  if pd <> 0 then begin
    let v = Option.value ~default:0 (Hashtbl.find_opt t.grants pd) + delta in
    if v <= 0 then Hashtbl.remove t.grants pd else Hashtbl.replace t.grants pd v
  end

let outstanding_grants t pd =
  Option.value ~default:0 (Hashtbl.find_opt t.grants pd)

(* Apply a permission change on [vte] for [pd], keeping the grant counter in
   sync with whether the PD holds an entry. *)
let set_perm_tracked t vte ~pd perm =
  let had = Vm.Vte.has_pd vte ~pd in
  Vm.Vte.set_perm vte ~pd perm;
  let has = Vm.Vte.has_pd vte ~pd in
  if has && not had then bump_grants t pd 1
  else if had && not has then bump_grants t pd (-1)

let mmap t ~core ~bytes ~perm ?(privileged = false) ?(global_perm = None) () =
  with_gate t ~core (fun gate_ns ->
      if (privileged || global_perm <> None) && caller_pd t ~core <> 0 then
        Vm.Fault.raise_fault (Vm.Fault.Bad_handle "special mappings are executor-only");
      let sc = Vm.Size_class.of_size bytes in
      let index, phys, alloc_ns =
        Free_list.alloc t.fl ~memsys:(Vm.Hw.memsys t.hw) ~core sc
      in
      let va_cfg = Vm.Hw.va_cfg t.hw in
      let base = Vm.Va.encode va_cfg sc ~index ~offset:0 in
      let vte = Vm.Vte.create ~base ~bytes ~phys ~global_perm ~privileged () in
      set_perm_tracked t vte ~pd:(caller_pd t ~core) perm;
      let fp = Vm.Vma_store.insert (Vm.Hw.store t.hw) vte in
      let lat =
        gate_ns
        +. Vm.Hw.instr_ns t.hw (gate_instrs + mmap_instrs)
        +. alloc_ns
        +. Vm.Hw.charge_footprint t.hw ~core fp
      in
      account t Vma_mgmt Op_mmap lat;
      (base, lat))

let munmap t ~core ~va =
  with_gate t ~core (fun gate_ns ->
      let vte, lookup_ns = resolve_owned t ~core ~subject:(caller_pd t ~core) ~va in
      if Vm.Vte.privileged vte then
        Vm.Fault.raise_fault (Vm.Fault.Bad_handle "cannot unmap a privileged VMA");
      let base = Vm.Vte.base vte in
      List.iter (fun pd -> bump_grants t pd (-1)) (Vm.Vte.sharer_pds vte);
      let _, fp = Vm.Vma_store.remove (Vm.Hw.store t.hw) ~va:base in
      let sd = Vm.Hw.shootdown t.hw ~core ~va:base in
      let va_cfg = Vm.Hw.va_cfg t.hw in
      let sc, index, _ =
        match Vm.Va.decode va_cfg base with
        | Some d -> d
        | None -> Vm.Fault.raise_fault (Vm.Fault.Unmapped base)
      in
      let free_ns =
        Free_list.free t.fl ~memsys:(Vm.Hw.memsys t.hw) ~core sc ~index
          ~phys:(Vm.Vte.phys vte)
      in
      let lat =
        gate_ns
        +. Vm.Hw.instr_ns t.hw (gate_instrs + munmap_instrs)
        +. lookup_ns
        +. Vm.Hw.charge_footprint t.hw ~core fp
        +. sd +. free_ns
      in
      account t Vma_mgmt Op_munmap lat;
      lat)

(* Shared tail of the three permission-updating calls: charge the structure
   update and the hardware shootdown for the rewritten VTE. *)
let update_vte t ~core ~base =
  let fp = Vm.Vma_store.update_footprint (Vm.Hw.store t.hw) ~va:base in
  Vm.Hw.charge_footprint t.hw ~core fp +. Vm.Hw.shootdown t.hw ~core ~va:base

let mprotect t ~core ?pd ~va ~perm () =
  with_gate t ~core (fun gate_ns ->
      let subject = match pd with Some p -> p | None -> caller_pd t ~core in
      let vte, lookup_ns = resolve_owned t ~core ~subject ~va in
      set_perm_tracked t vte ~pd:subject perm;
      let lat =
        gate_ns
        +. Vm.Hw.instr_ns t.hw (gate_instrs + mprotect_instrs)
        +. lookup_ns
        +. update_vte t ~core ~base:(Vm.Vte.base vte)
      in
      account t Vma_mgmt Op_mprotect lat;
      lat)

let transfer t ~core ~src_pd ~va ~dst_pd ~perm ~keep_src ~instrs ~op =
  with_gate t ~core (fun gate_ns ->
      check_dst_pd t dst_pd;
      let src_pd = match src_pd with Some p -> p | None -> caller_pd t ~core in
      let vte, lookup_ns = resolve_owned t ~core ~subject:src_pd ~va in
      let src_perm = Vm.Vte.perm_for vte ~pd:src_pd in
      let privileged_caller = caller_pd t ~core = 0 in
      if
        (not (Vm.Perm.subsumes src_perm perm))
        && Vm.Vte.global_perm vte = None
        && not privileged_caller
      then
        Vm.Fault.raise_fault (Vm.Fault.Bad_handle "cannot grant rights the caller lacks");
      set_perm_tracked t vte ~pd:dst_pd perm;
      if not keep_src then set_perm_tracked t vte ~pd:src_pd Vm.Perm.none;
      let lat =
        gate_ns
        +. Vm.Hw.instr_ns t.hw (gate_instrs + instrs)
        +. lookup_ns
        +. update_vte t ~core ~base:(Vm.Vte.base vte)
      in
      account t Vma_mgmt op lat;
      lat)

let pmove t ~core ?src_pd ~va ~dst_pd ~perm () =
  transfer t ~core ~src_pd ~va ~dst_pd ~perm ~keep_src:false ~instrs:pmove_instrs
    ~op:Op_pmove

let pcopy t ~core ~va ~dst_pd ~perm =
  transfer t ~core ~src_pd:None ~va ~dst_pd ~perm ~keep_src:true ~instrs:pcopy_instrs
    ~op:Op_pcopy

let require_executor t ~core what =
  if caller_pd t ~core <> 0 then
    Vm.Fault.raise_fault (Vm.Fault.Bad_handle (what ^ " is executor-only"))

let cget t ~core =
  with_gate t ~core (fun gate_ns ->
      require_executor t ~core "cget";
      let id, alloc_ns = Pd.alloc t.pds ~memsys:(Vm.Hw.memsys t.hw) ~core in
      let lat = gate_ns +. Vm.Hw.instr_ns t.hw (gate_instrs + cget_instrs) +. alloc_ns in
      account t Pd_mgmt Op_cget lat;
      (id, lat))

let cput t ~core ~pd =
  with_gate t ~core (fun gate_ns ->
      require_executor t ~core "cput";
      if outstanding_grants t pd > 0 then
        Vm.Fault.raise_fault
          (Vm.Fault.Bad_handle "cput: PD still holds VMA permissions");
      let free_ns = Pd.free t.pds ~memsys:(Vm.Hw.memsys t.hw) ~core pd in
      let lat = gate_ns +. Vm.Hw.instr_ns t.hw (gate_instrs + cput_instrs) +. free_ns in
      account t Pd_mgmt Op_cput lat;
      lat)

(* Context switches: save/restore of the register file to/from the PD's
   config line plus the ucid CSR write. *)
let switch_cost t ~core ~pd ~instrs =
  Vm.Hw.instr_ns t.hw (gate_instrs + instrs)
  +. Jord_arch.Memsys.write (Vm.Hw.memsys t.hw) ~core ~addr:(Pd.config_addr pd)

let ccall t ~core ~pd =
  with_gate t ~core (fun gate_ns ->
      require_executor t ~core "ccall";
      (match Pd.status t.pds pd with
      | Pd.Idle -> ()
      | Pd.Running _ ->
          Vm.Fault.raise_fault (Vm.Fault.Bad_handle "ccall target already running")
      | Pd.Suspended ->
          Vm.Fault.raise_fault
            (Vm.Fault.Bad_handle "ccall target suspended; use center"));
      Pd.set_status t.pds pd (Pd.Running core);
      let lat = gate_ns +. switch_cost t ~core ~pd ~instrs:ccall_instrs in
      Vm.Mmu.write_ucid (mmu t ~core) pd;
      account t Pd_mgmt Op_ccall lat;
      lat)

let current_running_pd t ~core what =
  let pd = caller_pd t ~core in
  if pd = 0 then
    Vm.Fault.raise_fault (Vm.Fault.Bad_handle (what ^ ": not inside a PD"));
  (match Pd.status t.pds pd with
  | Pd.Running c when c = core -> ()
  | Pd.Running _ | Pd.Idle | Pd.Suspended ->
      Vm.Fault.raise_fault
        (Vm.Fault.Bad_handle (what ^ ": PD not running on this core")));
  pd

let creturn t ~core =
  with_gate t ~core (fun gate_ns ->
      let pd = current_running_pd t ~core "creturn" in
      Pd.set_status t.pds pd Pd.Idle;
      let lat = gate_ns +. switch_cost t ~core ~pd ~instrs:creturn_instrs in
      Vm.Mmu.write_ucid (mmu t ~core) 0;
      account t Pd_mgmt Op_creturn lat;
      lat)

let cexit t ~core =
  with_gate t ~core (fun gate_ns ->
      let pd = current_running_pd t ~core "cexit" in
      Pd.set_status t.pds pd Pd.Suspended;
      let lat = gate_ns +. switch_cost t ~core ~pd ~instrs:cexit_instrs in
      Vm.Mmu.write_ucid (mmu t ~core) 0;
      account t Pd_mgmt Op_cexit lat;
      lat)

let center t ~core ~pd =
  with_gate t ~core (fun gate_ns ->
      require_executor t ~core "center";
      (match Pd.status t.pds pd with
      | Pd.Suspended -> ()
      | Pd.Idle | Pd.Running _ ->
          Vm.Fault.raise_fault (Vm.Fault.Bad_handle "center target not suspended"));
      Pd.set_status t.pds pd (Pd.Running core);
      let lat = gate_ns +. switch_cost t ~core ~pd ~instrs:center_instrs in
      Vm.Mmu.write_ucid (mmu t ~core) pd;
      account t Pd_mgmt Op_center lat;
      lat)

let create ~hw ~os =
  let t =
    {
      hw;
      os;
      fl = Free_list.create ~os ~va_cfg:(Vm.Hw.va_cfg hw) ();
      pds = Pd.create ();
      code_va = None;
      grants = Hashtbl.create 64;
      vma_ns = 0.0;
      pd_ns = 0.0;
      vma_calls = 0;
      pd_calls = 0;
      op_calls = Array.make n_ops 0;
      op_ns = Array.make n_ops 0.0;
    }
  in
  (* OS bootstrap: PrivLib's own code, stack and heap live in privileged
     VMAs that only privileged code can touch; they are visible from every
     PD so PrivLib can run regardless of ucid. *)
  let boot bytes perm =
    let va, _ =
      mmap t ~core:0 ~bytes ~perm ~privileged:true ~global_perm:(Some perm) ()
    in
    va
  in
  let code_va = boot (256 * 1024) Vm.Perm.rx (* PrivLib code *) in
  let (_ : int) = boot (64 * 1024) Vm.Perm.rw (* PrivLib stacks *) in
  let (_ : int) = boot (1024 * 1024) Vm.Perm.rw (* PrivLib heap *) in
  t.code_va <- Some code_va;
  reset_accounting t;
  t
