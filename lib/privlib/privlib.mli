(** PrivLib — the trusted user-level privileged library (paper §3.2, §4.4,
    Table 1).

    Every API models the real entry sequence: a [uatg] call-gate entry, the
    mandatory security-policy checks, the data-structure work (free lists,
    VMA table, PD table — all charged through the memory system), the VTE
    writes with their hardware VLB shootdowns, and the gate exit. Each call
    returns the latency it cost on the calling core; PrivLib also keeps
    per-category time accumulators used by the paper's breakdown figures.

    Policy violations and protection violations raise {!Jord_vm.Fault.Fault};
    the latency of faulting calls is not modelled (a faulting function is
    killed). *)

type t

val create : hw:Jord_vm.Hw.t -> os:Os_facade.t -> t
(** Bootstraps PrivLib the way the OS would: creates the initial privileged
    VMAs (PrivLib code/stack/heap) in the VMA table. *)

val hw : t -> Jord_vm.Hw.t

val code_vma : t -> int option
(** PrivLib's own (privileged, global-RX) code VMA. *)

val pds : t -> Pd.t
val free_lists : t -> Free_list.t

(** {1 VMA management} *)

val mmap :
  t ->
  core:int ->
  bytes:int ->
  perm:Jord_vm.Perm.t ->
  ?privileged:bool ->
  ?global_perm:Jord_vm.Perm.t option ->
  unit ->
  int * float
(** Allocate a VMA of [bytes] into the calling PD with [perm]; returns
    [(base_va, ns)]. [privileged]/[global_perm] are only honoured for
    privileged callers (bootstrap and code loading). *)

val munmap : t -> core:int -> va:int -> float
(** Deallocate the VMA based at [va]. The caller must hold a permission on
    it (or be privileged). *)

val mprotect : t -> core:int -> ?pd:int -> va:int -> perm:Jord_vm.Perm.t -> unit -> float
(** Change a PD's permission on the VMA covering [va]. [pd] defaults to the
    calling PD; naming another PD is an executor-only operation (the trusted
    runtime revoking a finished function's code permission). *)

val pmove :
  t -> core:int -> ?src_pd:int -> va:int -> dst_pd:int -> perm:Jord_vm.Perm.t -> unit -> float
(** Atomically transfer a permission on the VMA from [src_pd] (default: the
    caller) to [dst_pd]. A foreign [src_pd] is executor-only (reclaiming an
    ArgBuf from a finished function's PD). *)

val pcopy : t -> core:int -> va:int -> dst_pd:int -> perm:Jord_vm.Perm.t -> float
(** Duplicate (a subset of) the caller's permission to [dst_pd]. *)

(** {1 PD management} *)

val cget : t -> core:int -> int * float
(** Allocate a fresh PD. Executor (PD 0) only. *)

val cput : t -> core:int -> pd:int -> float
(** Destroy a PD. Executor only; the PD must not be running and must hold
    no VMA permissions (or a recycled PD id would inherit them). *)

val outstanding_grants : t -> int -> int
(** VMA permissions currently held by a PD (0 for the root domain). *)

val ccall : t -> core:int -> pd:int -> float
(** Switch the core into [pd] (user-level context switch; updates ucid). *)

val creturn : t -> core:int -> float
(** The implicit switch back to the executor when the function running in
    the current PD returns (the return half of [ccall]). *)

val cexit : t -> core:int -> float
(** Suspend the current PD (nested invocation wait) and switch back to the
    executor. *)

val center : t -> core:int -> pd:int -> float
(** Resume a suspended PD on this core. Executor only. *)

(** {1 Introspection} *)

type category = Vma_mgmt | Pd_mgmt

type op =
  | Op_mmap
  | Op_munmap
  | Op_mprotect
  | Op_pmove
  | Op_pcopy
  | Op_cget
  | Op_cput
  | Op_ccall
  | Op_creturn
  | Op_cexit
  | Op_center

val all_ops : op list
val op_name : op -> string
(** The Table-1 API name ("mmap", "ccall", ...). *)

val time_in : t -> category -> float
(** Cumulative ns spent inside PrivLib per category — feeds the isolation
    overhead breakdown (Fig. 11) and the Jord_BT "+167% management time"
    comparison (Fig. 13). *)

val call_count : t -> category -> int

val op_count : t -> op -> int
val op_ns : t -> op -> float
(** Per-operation call counts and cumulative latency. *)

val op_stats : t -> (op * int * float) list
(** [(op, calls, total_ns)] for every API op, in {!all_ops} order. *)

val register_metrics :
  t -> ?labels:(string * string) list -> Jord_telemetry.Registry.t -> unit
(** Register the PrivLib metric families ([jord_privlib_calls_total{op=...}],
    [jord_privlib_ns_total{op=...}], the per-category aggregates and the
    outstanding-grants gauge) as pull collectors; [labels] are prepended to
    every instance. Zero hot-path cost. *)

val reset_accounting : t -> unit
