module Time = Jord_sim.Time
module Engine = Jord_sim.Engine
module Server = Jord_faas.Server
module Cluster = Jord_faas.Cluster

type t = {
  submit_fn : unit -> unit;
  prng : Jord_util.Prng.t;
  mean_gap_ns : float;
  stop_at : Time.t;
  mutable submitted : int;
}

let rec arrival t engine =
  if Engine.now engine <= t.stop_at then begin
    t.submit_fn ();
    t.submitted <- t.submitted + 1;
    let gap = Jord_util.Sample.exponential t.prng ~mean:t.mean_gap_ns in
    Engine.schedule engine ~after:(Time.of_ns gap) (arrival t)
  end

let start_on ~engine ~submit ~rate_mrps ~duration ~seed =
  if rate_mrps <= 0.0 then invalid_arg "Loadgen.start: rate";
  let t =
    {
      submit_fn = submit;
      prng = Jord_util.Prng.create ~seed;
      mean_gap_ns = 1000.0 /. rate_mrps;
      stop_at = Time.(Engine.now engine + duration);
      submitted = 0;
    }
  in
  let first = Jord_util.Sample.exponential t.prng ~mean:t.mean_gap_ns in
  Engine.schedule engine ~after:(Time.of_ns first) (arrival t);
  t

let start ~server ~rate_mrps ~duration ~seed =
  start_on ~engine:(Server.engine server)
    ~submit:(fun () -> Server.submit server ())
    ~rate_mrps ~duration ~seed

let submitted t = t.submitted

let run ?(warmup = 2000) ?tracer ?on_server ~app ~config ~rate_mrps ~duration_us
    ?(seed = 7) () =
  let server = Server.create config app in
  (match on_server with Some f -> f server | None -> ());
  (match tracer with Some tr -> Server.set_tracer server (Some tr) | None -> ());
  let recorder = Jord_metrics.Recorder.create ~warmup () in
  Server.on_root_complete server (Jord_metrics.Recorder.observe recorder);
  let duration = Time.of_us duration_us in
  let (_ : t) = start ~server ~rate_mrps ~duration ~seed in
  (* Let the server drain for at most 2x the arrival window after arrivals
     stop; under overload the unfinished tail simply goes unmeasured, while
     the measured completions already carry the queueing delay. *)
  Server.run ~until:(Time.of_us (3.0 *. duration_us)) server;
  (server, recorder)

(* Sharded clusters cannot take live submissions (an arrival closure would
   read one shard's clock mid-epoch), so the same Poisson process is drawn
   up front and pre-scheduled through {!Cluster.submit_at}. The draw
   sequence, arrival timestamps and round-robin assignment are identical
   to what {!start_on} produces event-by-event, and the live generator's
   final past-the-window no-op event is reproduced as a sentinel so the
   engines' processed-event tallies agree too. *)
let pregen_cluster ~cluster ~rate_mrps ~duration ~seed =
  if rate_mrps <= 0.0 then invalid_arg "Loadgen.start: rate";
  let prng = Jord_util.Prng.create ~seed in
  let mean_gap_ns = 1000.0 /. rate_mrps in
  let t =
    { submit_fn = (fun () -> ()); prng; mean_gap_ns; stop_at = duration; submitted = 0 }
  in
  let time = ref (Time.of_ns (Jord_util.Sample.exponential prng ~mean:mean_gap_ns)) in
  while !time <= t.stop_at do
    Cluster.submit_at cluster ~time:!time ();
    t.submitted <- t.submitted + 1;
    let gap = Jord_util.Sample.exponential prng ~mean:mean_gap_ns in
    time := Time.(!time + Time.of_ns gap)
  done;
  Engine.schedule_at (Cluster.engine cluster) ~time:!time (fun _ -> ());
  t

let run_cluster ?(warmup = 2000) ?tracer ?on_cluster ?forward_after ?(shards = 1)
    ~servers ~app ~config ~rate_mrps ~duration_us ?(seed = 7) () =
  let cluster = Cluster.create ?forward_after ~shards ~servers ~config app in
  (match on_cluster with Some f -> f cluster | None -> ());
  (match tracer with Some tr -> Cluster.set_tracer cluster (Some tr) | None -> ());
  let recorder = Jord_metrics.Recorder.create ~warmup () in
  Cluster.on_root_complete cluster (Jord_metrics.Recorder.observe recorder);
  let duration = Time.of_us duration_us in
  let (_ : t) =
    if Cluster.shards cluster > 1 then
      pregen_cluster ~cluster ~rate_mrps ~duration ~seed
    else
      start_on
        ~engine:(Cluster.engine cluster)
        ~submit:(fun () -> Cluster.submit cluster ())
        ~rate_mrps ~duration ~seed
  in
  Cluster.run ~until:(Time.of_us (3.0 *. duration_us)) cluster;
  (cluster, recorder)

(* Population traffic (fleet layer): walk a {!Traffic} stream and hand every
   arrival to the caller. The stream is the same whether walked here or
   materialized by {!Traffic.pregen} — the fleet pre-schedules through this
   before its engines start, which is what keeps sharded runs identical. *)
let population ~submit ~shape ~duration_us () =
  let stream = Traffic.make shape ~duration_us in
  let rec go () =
    match Traffic.next stream with
    | Some { Traffic.at; user } ->
        submit ~time:at ~user;
        go ()
    | None -> ()
  in
  go ();
  Traffic.generated stream
