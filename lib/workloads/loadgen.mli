(** Open-loop Poisson load generator (wrk2-style, paper §5).

    Inter-arrival times are exponential with mean [1 / rate]; arrivals are
    independent of completions, so overload shows up as unbounded queueing —
    exactly the hockey-stick the p99-vs-load figures rely on. *)

type t

val start :
  server:Jord_faas.Server.t ->
  rate_mrps:float ->
  duration:Jord_sim.Time.t ->
  seed:int ->
  t
(** Schedule arrivals from the current simulated time for [duration].
    [rate_mrps] is in requests per microsecond (MRPS as used in the paper's
    figures — million requests per second). *)

val submitted : t -> int

val run :
  ?warmup:int ->
  ?tracer:Jord_faas.Trace.t ->
  ?on_server:(Jord_faas.Server.t -> unit) ->
  app:Jord_faas.Model.app ->
  config:Jord_faas.Server.config ->
  rate_mrps:float ->
  duration_us:float ->
  ?seed:int ->
  unit ->
  Jord_faas.Server.t * Jord_metrics.Recorder.t
(** Convenience harness: build a server for [app], attach a recorder, drive
    the load to completion (arrivals stop after [duration_us]; the engine
    then drains), and return both. [on_server] runs right after the server
    is built and before any load — the hook where telemetry (a registry or
    a {!Jord_telemetry.Sampler} on the server's engine) gets attached. *)

val run_cluster :
  ?warmup:int ->
  ?tracer:Jord_faas.Trace.t ->
  ?on_cluster:(Jord_faas.Cluster.t -> unit) ->
  ?forward_after:int ->
  ?shards:int ->
  servers:int ->
  app:Jord_faas.Model.app ->
  config:Jord_faas.Server.config ->
  rate_mrps:float ->
  duration_us:float ->
  ?seed:int ->
  unit ->
  Jord_faas.Cluster.t * Jord_metrics.Recorder.t
(** {!run} over a {!Jord_faas.Cluster}: [servers] workers share one engine
    and one front-end round-robin load balancer; internal requests that
    cannot be placed locally are forwarded after [forward_after] (default 3,
    see {!Jord_faas.Cluster.create}) full-scan retries. [on_cluster] is the
    telemetry hook, as [on_server] is for {!run}.

    [shards] (default 1) runs the servers on that many parallel engine
    shards (see {!Jord_faas.Cluster.create}); at 1 the historical
    single-engine path runs unchanged, while above 1 the same Poisson
    arrival process is pre-drawn and scheduled through
    {!Jord_faas.Cluster.submit_at} — identical timestamps, identical
    round-robin placement — so results are byte-identical across shard
    counts. *)

val population :
  submit:(time:Jord_sim.Time.t -> user:int -> unit) ->
  shape:Traffic.shape ->
  duration_us:float ->
  unit ->
  int
(** Open-loop population traffic: draw the whole {!Traffic} arrival stream
    for [shape] over [duration_us] and pass each arrival to [submit] in
    nondecreasing time order, returning the arrival count. Byte-identical
    to walking {!Traffic.pregen} — the fleet layer uses it to pre-schedule
    arrivals before any engine runs, so sharded runs see the exact same
    schedule as sequential ones. *)
