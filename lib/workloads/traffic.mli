(** Population-scale open-loop traffic shapes.

    A {!shape} describes the aggregate arrival process of a simulated user
    population: [users] independent sources whose per-user rates follow a
    Zipf law (a few heavy hitters, a long tail of occasional users), an
    optional diurnal modulation of the aggregate rate, and flash-crowd
    bursts that multiply the rate inside a window. Arrivals are drawn by
    thinning an inhomogeneous Poisson process, so the schedule is exact for
    the instantaneous rate [rate_at] and — crucially for the sharded fleet
    runs — a pure function of the shape: the same shape yields the same
    byte sequence of arrivals whether consumed live ({!make}/{!next}) or
    pre-generated ({!pregen}), at any shard count. *)

type flash = {
  at_us : float;  (** Burst start, relative to the run start. *)
  dur_us : float;  (** Burst length. *)
  boost : float;  (** Rate multiplier while the burst is active ([>= 1]). *)
}

type shape = {
  users : int;  (** Population size; user ids are [0 .. users-1]. *)
  zipf_s : float;  (** Zipf exponent of per-user rates ([0] = uniform). *)
  rate_mrps : float;  (** Baseline aggregate rate, requests per us (MRPS). *)
  diurnal_amp : float;  (** Diurnal amplitude in [\[0, 1)]; [0] disables. *)
  diurnal_period_us : float;  (** Diurnal period ("one day" of sim time). *)
  flash : flash list;  (** Flash-crowd windows, multiplicative. *)
  seed : int;  (** Seed of the arrival/user draw stream. *)
}

val presets : (string * shape) list
(** [steady] (flat Poisson over a 1M-user Zipf population), [diurnal]
    (amp 0.5), [flash] (one 3x burst), [ci] (small population, diurnal +
    flash — the CI smoke shape). *)

val parse : string -> (shape, string) result
(** Spec grammar, mirroring fault plans: a preset name, a [key=value] list,
    or a preset seeded with overrides (["ci,rate=120"]). Keys: [users],
    [zipf], [rate], [amp], [period-us], [seed], and [flash] as
    [AT_US:DUR_US:BOOST] windows joined by ['+']
    (["flash=800:200:3+2400:100:2"]). Underscored key spellings are
    accepted. The result is validated. *)

val to_string : shape -> string
(** Canonical [key=value] spelling; [parse (to_string t) = Ok t]. *)

val validate : shape -> (unit, string) result

val describe : shape -> string
(** Human one-liner for run headers. *)

val rate_at : shape -> us:float -> float
(** Instantaneous aggregate rate (requests/us) at time [us]:
    [rate * (1 + amp * sin(2*pi*us/period)) * product of active boosts]. *)

val peak_rate : shape -> float
(** Upper bound on {!rate_at} over any horizon — the thinning envelope. *)

type arrival = { at : Jord_sim.Time.t; user : int }

type t
(** A live arrival stream: the iterator form of the process. *)

val make : shape -> duration_us:float -> t
(** Build the stream (allocates the Zipf alias table, O(users)). Arrival
    times are nondecreasing and all land in [\[0, duration_us)]. *)

val next : t -> arrival option
(** The next arrival, or [None] once the horizon is reached. *)

val generated : t -> int
(** Arrivals produced so far. *)

val pregen : shape -> duration_us:float -> arrival array
(** The whole schedule at once: exactly the arrivals {!next} would yield. *)

val hash01 : seed:int -> user:int -> float
(** Deterministic per-user uniform in [\[0, 1)] (SplitMix64 finalizer) —
    the fleet derives each user's entry-point preference from it, so a
    user's function follows them to whatever server they are routed to. *)
