type flash = { at_us : float; dur_us : float; boost : float }

type shape = {
  users : int;
  zipf_s : float;
  rate_mrps : float;
  diurnal_amp : float;
  diurnal_period_us : float;
  flash : flash list;
  seed : int;
}

let steady =
  {
    users = 1_000_000;
    zipf_s = 1.1;
    rate_mrps = 8.0;
    diurnal_amp = 0.0;
    diurnal_period_us = 2000.0;
    flash = [];
    seed = 11;
  }

let presets =
  [
    ("steady", steady);
    ("diurnal", { steady with diurnal_amp = 0.5 });
    ("flash", { steady with flash = [ { at_us = 800.0; dur_us = 300.0; boost = 3.0 } ] });
    ( "ci",
      {
        users = 100_000;
        zipf_s = 1.1;
        rate_mrps = 8.0;
        diurnal_amp = 0.5;
        diurnal_period_us = 1000.0;
        flash = [ { at_us = 600.0; dur_us = 200.0; boost = 3.0 } ];
        seed = 11;
      } );
  ]

let validate t =
  if t.users < 1 then Error "traffic: users must be >= 1"
  else if t.zipf_s < 0.0 then Error "traffic: zipf must be >= 0"
  else if t.rate_mrps <= 0.0 then Error "traffic: rate must be > 0"
  else if t.diurnal_amp < 0.0 || t.diurnal_amp >= 1.0 then
    Error "traffic: amp must be in [0, 1)"
  else if t.diurnal_period_us <= 0.0 then Error "traffic: period-us must be > 0"
  else if
    List.exists
      (fun f -> f.at_us < 0.0 || f.dur_us <= 0.0 || f.boost < 1.0)
      t.flash
  then Error "traffic: each flash needs at>=0, dur>0, boost>=1"
  else Ok ()

let flash_to_string fs =
  String.concat "+"
    (List.map (fun f -> Printf.sprintf "%g:%g:%g" f.at_us f.dur_us f.boost) fs)

let flash_of_string s =
  let window w =
    match String.split_on_char ':' w |> List.map float_of_string_opt with
    | [ Some at_us; Some dur_us; Some boost ] -> Ok { at_us; dur_us; boost }
    | _ -> Error (Printf.sprintf "traffic: bad flash window %S (want AT:DUR:BOOST)" w)
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | w :: rest -> ( match window w with Ok f -> go (f :: acc) rest | Error _ as e -> e)
  in
  go [] (String.split_on_char '+' s |> List.filter (fun w -> w <> ""))

(* Spec grammar mirrors Fault_inject.Plan: preset name, key=value list, or
   preset seeded with overrides. *)
let parse spec =
  let apply base kv =
    match String.index_opt kv '=' with
    | None -> Error (Printf.sprintf "traffic: expected key=value, got %S" kv)
    | Some i -> (
        let key = String.sub kv 0 i in
        let v = String.sub kv (i + 1) (String.length kv - i - 1) in
        let f () =
          match float_of_string_opt v with
          | Some f -> Ok f
          | None -> Error (Printf.sprintf "traffic: bad float %S for %s" v key)
        in
        let ( >>| ) r g = match r with Ok x -> Ok (g x) | Error _ as e -> e in
        match key with
        | "users" -> (
            match int_of_string_opt v with
            | Some u -> Ok { base with users = u }
            | None -> Error (Printf.sprintf "traffic: bad int %S for users" v))
        | "seed" -> (
            match int_of_string_opt v with
            | Some s -> Ok { base with seed = s }
            | None -> Error (Printf.sprintf "traffic: bad int %S for seed" v))
        | "zipf" -> f () >>| fun x -> { base with zipf_s = x }
        | "rate" | "rate-mrps" | "rate_mrps" -> f () >>| fun x -> { base with rate_mrps = x }
        | "amp" | "diurnal-amp" | "diurnal_amp" ->
            f () >>| fun x -> { base with diurnal_amp = x }
        | "period-us" | "period_us" ->
            f () >>| fun x -> { base with diurnal_period_us = x }
        | "flash" -> (
            match flash_of_string v with
            | Ok fs -> Ok { base with flash = fs }
            | Error _ as e -> e)
        | _ -> Error (Printf.sprintf "traffic: unknown key %S" key))
  in
  let parts =
    String.split_on_char ',' spec |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  let base, rest =
    match parts with
    | first :: rest when List.mem_assoc first presets ->
        (List.assoc first presets, rest)
    | _ -> (steady, parts)
  in
  let rec go acc = function
    | [] -> Ok acc
    | kv :: rest -> ( match apply acc kv with Ok acc -> go acc rest | Error _ as e -> e)
  in
  match go base rest with
  | Error _ as e -> e
  | Ok t -> ( match validate t with Ok () -> Ok t | Error m -> Error m)

let to_string t =
  let base =
    Printf.sprintf "users=%d,zipf=%g,rate=%g,amp=%g,period-us=%g" t.users t.zipf_s
      t.rate_mrps t.diurnal_amp t.diurnal_period_us
  in
  let flash = if t.flash = [] then "" else ",flash=" ^ flash_to_string t.flash in
  Printf.sprintf "%s%s,seed=%d" base flash t.seed

let describe t =
  let diurnal =
    if t.diurnal_amp > 0.0 then
      Printf.sprintf " diurnal(amp=%g,period=%gus)" t.diurnal_amp t.diurnal_period_us
    else ""
  in
  let flash =
    if t.flash = [] then "" else Printf.sprintf " flash=%s" (flash_to_string t.flash)
  in
  Printf.sprintf "users=%d zipf=%g rate=%g MRPS%s%s seed=%d" t.users t.zipf_s
    t.rate_mrps diurnal flash t.seed

let two_pi = 8.0 *. atan 1.0

let rate_at t ~us =
  let diurnal =
    1.0 +. (t.diurnal_amp *. sin (two_pi *. us /. t.diurnal_period_us))
  in
  let boost =
    List.fold_left
      (fun acc f -> if us >= f.at_us && us < f.at_us +. f.dur_us then acc *. f.boost else acc)
      1.0 t.flash
  in
  t.rate_mrps *. diurnal *. boost

let peak_rate t =
  t.rate_mrps
  *. (1.0 +. t.diurnal_amp)
  *. List.fold_left (fun acc f -> acc *. f.boost) 1.0 t.flash

(* Vose alias table over the Zipf rank weights (r+1)^-s: O(users) to build,
   O(1) per draw, and a pure function of (users, s) — no PRNG involved. *)
type alias = { prob : float array; alias : int array }

let alias_build weights =
  let n = Array.length weights in
  let total = Array.fold_left ( +. ) 0.0 weights in
  let scaled = Array.map (fun w -> w *. float_of_int n /. total) weights in
  let prob = Array.make n 1.0 and alias = Array.init n Fun.id in
  let small = Array.make n 0 and large = Array.make n 0 in
  let ns = ref 0 and nl = ref 0 in
  for i = 0 to n - 1 do
    if scaled.(i) < 1.0 then begin
      small.(!ns) <- i;
      incr ns
    end
    else begin
      large.(!nl) <- i;
      incr nl
    end
  done;
  while !ns > 0 && !nl > 0 do
    decr ns;
    decr nl;
    let s = small.(!ns) and l = large.(!nl) in
    prob.(s) <- scaled.(s);
    alias.(s) <- l;
    scaled.(l) <- scaled.(l) +. scaled.(s) -. 1.0;
    if scaled.(l) < 1.0 then begin
      small.(!ns) <- l;
      incr ns
    end
    else begin
      large.(!nl) <- l;
      incr nl
    end
  done;
  { prob; alias }

let alias_of_shape t =
  alias_build (Array.init t.users (fun r -> (float_of_int (r + 1)) ** -.t.zipf_s))

let alias_pick a prng =
  let n = Array.length a.prob in
  let i = Jord_util.Prng.int prng n in
  if Jord_util.Prng.float prng 1.0 < a.prob.(i) then i else a.alias.(i)

type arrival = { at : Jord_sim.Time.t; user : int }

type t = {
  shape : shape;
  zipf : alias;
  prng : Jord_util.Prng.t;
  lam_max : float;
  duration_us : float;
  mutable t_us : float;
  mutable produced : int;
}

let make shape ~duration_us =
  (match validate shape with Ok () -> () | Error m -> invalid_arg ("Traffic.make: " ^ m));
  if duration_us <= 0.0 then invalid_arg "Traffic.make: duration_us must be > 0";
  {
    shape;
    zipf = alias_of_shape shape;
    prng = Jord_util.Prng.create ~seed:shape.seed;
    lam_max = peak_rate shape;
    duration_us;
    t_us = 0.0;
    produced = 0;
  }

(* Thinning (Lewis–Shedler): candidate arrivals at the constant envelope
   rate, each accepted with probability rate_at/lam_max. Rejected draws
   consume PRNG state too, so the stream is one deterministic sequence. *)
let rec next t =
  t.t_us <- t.t_us +. Jord_util.Sample.exponential t.prng ~mean:(1.0 /. t.lam_max);
  if t.t_us >= t.duration_us then None
  else if Jord_util.Prng.float t.prng t.lam_max < rate_at t.shape ~us:t.t_us then begin
    let user = alias_pick t.zipf t.prng in
    t.produced <- t.produced + 1;
    Some { at = Jord_sim.Time.of_us t.t_us; user }
  end
  else next t

let generated t = t.produced

let pregen shape ~duration_us =
  let t = make shape ~duration_us in
  let acc = ref [] in
  let rec go () =
    match next t with
    | Some a ->
        acc := a :: !acc;
        go ()
    | None -> ()
  in
  go ();
  Array.of_list (List.rev !acc)

(* SplitMix64 finalizer over (seed, user); top 53 bits as a uniform. *)
let hash01 ~seed ~user =
  let open Int64 in
  let z = add (mul (of_int (user + 1)) 0x9E3779B97F4A7C15L) (of_int seed) in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  let z = logxor z (shift_right_logical z 31) in
  Int64.to_float (shift_right_logical z 11) /. 9007199254740992.0
