(** Discrete-event simulation engine.

    Entities schedule closures at absolute or relative simulated times; the
    engine runs them in timestamp order (FIFO among equal timestamps). Time
    only advances between events, so a callback observes a consistent
    [now].

    Scheduling is allocation-free in the engine itself: the event heap
    stores closures in recycled slots (see {!Event_queue}), so hot loops
    that reuse a pre-built closure — the orchestrator dispatch loop, the
    executor poll loop — put no per-event pressure on the GC. The
    [_handle] variants return a {!handle} with which a pending event can be
    cancelled or moved. *)

type t

type handle
(** Names one pending event; stale after the event fires or is cancelled. *)

val none_handle : handle
(** Never names a live event; [cancel]/[reschedule] on it return [false]. *)

val create : unit -> t

val now : t -> Time.t
(** Current simulated time. *)

val schedule : t -> after:Time.t -> (t -> unit) -> unit
(** [schedule t ~after f] runs [f] at [now t + after]. [after] must be
    non-negative. *)

val schedule_at : t -> time:Time.t -> (t -> unit) -> unit
(** [schedule_at t ~time f] runs [f] at absolute [time >= now t]. *)

val schedule_handle : t -> after:Time.t -> (t -> unit) -> handle
val schedule_at_handle : t -> time:Time.t -> (t -> unit) -> handle
(** As {!schedule} / {!schedule_at}, returning a handle for {!cancel} /
    {!reschedule}. *)

val cancel : t -> handle -> bool
(** Remove a pending event. [false] if it already fired or was cancelled
    (stale handles are always safe to pass). *)

val reschedule : t -> handle -> time:Time.t -> bool
(** Move a pending event to absolute [time >= now], keeping its handle
    valid; among events at the new instant it fires last, as a fresh push
    would. [false] on a stale handle. *)

val pending_handle : t -> handle -> bool
(** Is this handle's event still queued? *)

val run : ?until:Time.t -> t -> unit
(** Process events in order until the queue drains, or until simulated time
    would exceed [until] (remaining events are left unprocessed). When
    [until] is given, [now] ends at exactly [max now until] even if the
    queue drained earlier — the run is defined to cover the whole window,
    so busy fractions computed against [now] use the true horizon. *)

val run_window : t -> until:Time.t -> unit
(** Process events with timestamps [<= until], leaving [now] at the last
    processed event rather than forcing it to the window edge. This is the
    epoch body of the conservative parallel core ({!Fleet}): a shard idle
    mid-epoch must keep [now] where it is so messages drained at the next
    barrier — which may land anywhere inside the just-run window plus the
    lookahead — are still schedulable. Use {!run} when the window edge is a
    true horizon that observers should see. *)

val next_time : t -> Time.t option
(** Timestamp of the earliest pending event, without processing it. The
    fleet uses the minimum across shards to place the next epoch. *)

val step : t -> bool
(** Process a single event; [false] if the queue was empty. *)

val pending : t -> int
(** Number of scheduled events not yet run. *)

val processed : t -> int
(** Total number of events executed so far. *)

val cancelled : t -> int
(** Total number of events removed via {!cancel}. *)
