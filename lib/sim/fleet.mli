(** Conservative parallel DES: a fixed set of {!Shard}s advanced in
    lock-step epochs.

    The fleet repeatedly (1) drains every shard's outboxes into the
    destination engines at a single-threaded barrier, (2) finds the
    earliest pending event time [T] across all shards, and (3) runs every
    shard through the window [\[T, T+W-1\]] where [W] is the lookahead —
    optionally in parallel via an injected runner. Because {!Shard.post}
    refuses timestamps closer than [W], no message produced inside an epoch
    can land inside it, so each epoch's work is independent across shards
    and the schedule is identical whatever the runner's interleaving.

    Determinism of barrier delivery: messages drain into a destination in
    ascending [(timestamp, sid, posting order)], and same-timestamp events
    in an engine fire in insertion order, so the merged schedule is a pure
    function of the posted messages. *)

type t

val create : shards:int -> lookahead:Time.t -> t
(** [lookahead] must be positive; [shards] at least 1. *)

val shards : t -> int
val shard : t -> int -> Shard.t
val engine : t -> int -> Engine.t
val lookahead : t -> Time.t

val run :
  ?until:Time.t -> ?runner:((int -> unit) -> int -> unit) -> t -> unit
(** Run epochs until every queue and outbox is empty, or (with [until])
    until the earliest pending event lies beyond the horizon. [runner f n]
    must call [f i] exactly once for each [i < n], in any order or in
    parallel (e.g. [Jord_par.Pool]); when omitted the shards run
    sequentially in shard order — same results either way.

    With [until], every shard's [now] is forced to the horizon on return,
    even on shards that never had an event — mirroring
    {!Engine.run}[ ~until] on the sequential path. *)

val drain : t -> int
(** Run one barrier by hand: deliver all posted messages into their
    destination engines, returning how many were delivered. {!run} calls
    this between epochs; tests use it to observe delivery order. *)

val processed : t -> int
(** Events executed, summed over shards. *)

val pending : t -> int
(** Events still queued plus messages awaiting a barrier. *)
