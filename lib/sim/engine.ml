type t = {
  queue : (t -> unit) Event_queue.t;
  mutable now : Time.t;
  mutable processed : int;
  mutable cancelled : int;
}

type handle = Event_queue.handle

let none_handle = Event_queue.none_handle
let create () = { queue = Event_queue.create (); now = Time.zero; processed = 0; cancelled = 0 }
let now t = t.now

let schedule_at_handle t ~time f =
  if time < t.now then invalid_arg "Engine.schedule_at: time in the past";
  Event_queue.push t.queue ~time f

let schedule_handle t ~after f =
  if after < 0 then invalid_arg "Engine.schedule: negative delay";
  Event_queue.push t.queue ~time:Time.(t.now + after) f

let schedule_at t ~time f = ignore (schedule_at_handle t ~time f : handle)
let schedule t ~after f = ignore (schedule_handle t ~after f : handle)

let cancel t h =
  let ok = Event_queue.cancel t.queue h in
  if ok then t.cancelled <- t.cancelled + 1;
  ok

let reschedule t h ~time =
  if time < t.now then invalid_arg "Engine.reschedule: time in the past";
  Event_queue.reschedule t.queue h ~time

let pending_handle t h = Event_queue.holds t.queue h

let step t =
  if Event_queue.is_empty t.queue then false
  else begin
    let time = Event_queue.min_time_exn t.queue in
    let f = Event_queue.pop_exn t.queue in
    t.now <- time;
    t.processed <- t.processed + 1;
    f t;
    true
  end

let run ?until t =
  match until with
  | None -> while step t do () done
  | Some limit ->
      let continue = ref true in
      while !continue do
        if Event_queue.is_empty t.queue then continue := false
        else if Event_queue.min_time_exn t.queue > limit then continue := false
        else ignore (step t : bool)
      done;
      (* The run covered the whole window: observers (utilization, samplers)
         must see the horizon they asked for, not the last event's stamp. *)
      if t.now < limit then t.now <- limit

(* Epoch body for the conservative parallel core (see [Fleet]): identical
   to [run ~until] except [now] is left at the last processed event. A
   shard that goes idle mid-epoch must NOT fast-forward to the epoch edge —
   a barrier-drained message may still land inside this window, and
   [schedule_at] would reject it as "time in the past". The fleet forces
   the caller's horizon exactly once, after the final barrier. *)
let run_window t ~until =
  let continue = ref true in
  while !continue do
    if Event_queue.is_empty t.queue then continue := false
    else if Event_queue.min_time_exn t.queue > until then continue := false
    else ignore (step t : bool)
  done

let next_time t = Event_queue.peek_time t.queue

let pending t = Event_queue.length t.queue
let processed t = t.processed
let cancelled t = t.cancelled
