type t = {
  shards : Shard.t array;
  lookahead : Time.t;
  mutable scratch : Shard.msg array;
  (* Reusable per-barrier gather array; holds refs to pooled outbox slots
     only within one [drain] call. *)
}

let create ~shards ~lookahead =
  if shards <= 0 then invalid_arg "Fleet.create: shards must be positive";
  if lookahead <= 0 then invalid_arg "Fleet.create: lookahead must be positive";
  {
    shards = Array.init shards (fun id -> Shard.create ~id ~shards ~lookahead);
    lookahead;
    scratch = [||];
  }

let shards t = Array.length t.shards
let shard t i = t.shards.(i)
let engine t i = Shard.engine t.shards.(i)
let lookahead t = t.lookahead

let push_scratch t i (m : Shard.msg) =
  if i >= Array.length t.scratch then begin
    let cap' = Int.max 64 ((i + 1) * 2) in
    let scratch' = Array.make cap' m in
    Array.blit t.scratch 0 scratch' 0 (Array.length t.scratch);
    t.scratch <- scratch'
  end;
  t.scratch.(i) <- m

(* Ascending (at, sid, seq); seq is unique per source shard, and remaining
   cross-source ties keep gather order (ascending source id) because the
   insertion sort below is stable. *)
let msg_before (a : Shard.msg) (b : Shard.msg) =
  a.at < b.at || (a.at = b.at && (a.sid < b.sid || (a.sid = b.sid && a.seq < b.seq)))

let insertion_sort (arr : Shard.msg array) len =
  for i = 1 to len - 1 do
    let m = arr.(i) in
    let j = ref (i - 1) in
    while !j >= 0 && msg_before m arr.(!j) do
      arr.(!j + 1) <- arr.(!j);
      decr j
    done;
    arr.(!j + 1) <- m
  done

let drain t =
  let n = Array.length t.shards in
  let total = ref 0 in
  for d = 0 to n - 1 do
    let len = ref 0 in
    for s = 0 to n - 1 do
      if s <> d then begin
        let slots, l = Shard.take_outbox t.shards.(s) ~dst:d in
        for i = 0 to l - 1 do
          push_scratch t !len slots.(i);
          incr len
        done
      end
    done;
    if !len > 0 then begin
      insertion_sort t.scratch !len;
      let dst = Shard.engine t.shards.(d) in
      for i = 0 to !len - 1 do
        let m = t.scratch.(i) in
        Engine.schedule_at dst ~time:m.at m.fn
      done;
      total := !total + !len
    end
  done;
  Array.iter Shard.reset_outboxes t.shards;
  !total

let next_event_time t =
  Array.fold_left
    (fun acc s ->
      match (acc, Engine.next_time (Shard.engine s)) with
      | None, x | x, None -> x
      | Some a, Some b -> Some (if b < a then b else a))
    None t.shards

let run ?until ?runner t =
  let n = Array.length t.shards in
  let run_epoch upto =
    let body i = Engine.run_window (Shard.engine t.shards.(i)) ~until:upto in
    match runner with
    | Some r when n > 1 -> r body n
    | _ ->
        for i = 0 to n - 1 do
          body i
        done
  in
  let rec loop () =
    ignore (drain t : int);
    match next_event_time t with
    | None -> ()
    | Some start ->
        let beyond = match until with Some u -> start > u | None -> false in
        if not beyond then begin
          let epoch_end = Time.(start + t.lookahead - 1) in
          let epoch_end =
            match until with Some u when epoch_end > u -> u | _ -> epoch_end
          in
          run_epoch epoch_end;
          loop ()
        end
  in
  loop ();
  (* Mirror [Engine.run ~until]: the horizon is covered even on shards that
     drained early (or never had an event at all), so busy fractions and
     trace end-stamps read the same in sequential and sharded runs. At this
     point no shard holds an event <= until, so this only advances [now]. *)
  match until with
  | Some u ->
      Array.iter (fun s -> Engine.run (Shard.engine s) ~until:u) t.shards
  | None -> ()

let processed t =
  Array.fold_left (fun acc s -> acc + Engine.processed (Shard.engine s)) 0 t.shards

let pending t =
  Array.fold_left
    (fun acc s -> acc + Engine.pending (Shard.engine s) + Shard.pending_messages s)
    0 t.shards
