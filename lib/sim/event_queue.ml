(* Indexed binary min-heap over (time, seq) with stable handles.

   The heap is a structure of arrays — times, seqs and slot ids in parallel
   int arrays — so pushing an event allocates nothing once the backing
   arrays are warm. Payloads live in a side table indexed by slot id; a
   handle packs the slot id with the slot's generation so a handle held
   across the event's pop (or a cancel) goes stale instead of touching a
   recycled slot. pos_of maps slot id -> current heap position, which is
   what makes cancel and reschedule O(log n) instead of a scan. *)

type handle = int

let slot_bits = 24
let slot_mask = (1 lsl slot_bits) - 1
let none_handle = -1

type 'a t = {
  (* Heap order: position i holds (times.(i), seqs.(i), slots.(i)). *)
  mutable times : int array;
  mutable seqs : int array;
  mutable slots : int array;
  mutable size : int;
  mutable next_seq : int;
  (* Slot tables, indexed by slot id < slots_used. *)
  mutable payloads : 'a array; (* [||] until the first push *)
  mutable gens : int array;
  mutable pos_of : int array; (* -1 when the slot is free *)
  mutable free : int array; (* stack of recycled slot ids *)
  mutable free_top : int;
  mutable slots_used : int;
  mutable dummy : 'a option; (* slot filler so popped payloads can be GC'd *)
}

let create () =
  {
    times = [||];
    seqs = [||];
    slots = [||];
    size = 0;
    next_seq = 0;
    payloads = [||];
    gens = [||];
    pos_of = [||];
    free = [||];
    free_top = 0;
    slots_used = 0;
    dummy = None;
  }

let is_empty t = t.size = 0
let length t = t.size

let less t i j =
  t.times.(i) < t.times.(j) || (t.times.(i) = t.times.(j) && t.seqs.(i) < t.seqs.(j))

(* Overwrite heap position [dst] with the entry at [src]. *)
let move t ~src ~dst =
  t.times.(dst) <- t.times.(src);
  t.seqs.(dst) <- t.seqs.(src);
  let s = t.slots.(src) in
  t.slots.(dst) <- s;
  t.pos_of.(s) <- dst

let swap t i j =
  let time = t.times.(i) and seq = t.seqs.(i) and slot = t.slots.(i) in
  move t ~src:j ~dst:i;
  t.times.(j) <- time;
  t.seqs.(j) <- seq;
  t.slots.(j) <- slot;
  t.pos_of.(slot) <- j

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if less t i parent then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && less t l !smallest then smallest := l;
  if r < t.size && less t r !smallest then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let grow_int_array a n =
  let b = Array.make n 0 in
  Array.blit a 0 b 0 (Array.length a);
  b

let ensure_heap_capacity t =
  let cap = Array.length t.times in
  if t.size = cap then begin
    let ncap = Int.max 16 (cap * 2) in
    t.times <- grow_int_array t.times ncap;
    t.seqs <- grow_int_array t.seqs ncap;
    t.slots <- grow_int_array t.slots ncap
  end

let ensure_slot_capacity t filler =
  let cap = Array.length t.gens in
  if t.slots_used = cap then begin
    let ncap = Int.max 16 (cap * 2) in
    if ncap > slot_mask + 1 then invalid_arg "Event_queue: too many pending events";
    let payloads = Array.make ncap filler in
    Array.blit t.payloads 0 payloads 0 t.slots_used;
    t.payloads <- payloads;
    t.gens <- grow_int_array t.gens ncap;
    let pos_of = Array.make ncap (-1) in
    Array.blit t.pos_of 0 pos_of 0 t.slots_used;
    t.pos_of <- pos_of;
    t.free <- grow_int_array t.free ncap
  end

let alloc_slot t v =
  if t.free_top > 0 then begin
    t.free_top <- t.free_top - 1;
    let s = t.free.(t.free_top) in
    t.payloads.(s) <- v;
    s
  end
  else begin
    ensure_slot_capacity t v;
    let s = t.slots_used in
    t.slots_used <- s + 1;
    t.payloads.(s) <- v;
    s
  end

let free_slot t s =
  t.gens.(s) <- t.gens.(s) + 1;
  t.pos_of.(s) <- (-1);
  (match t.dummy with Some d -> t.payloads.(s) <- d | None -> ());
  t.free.(t.free_top) <- s;
  t.free_top <- t.free_top + 1

let push t ~time v =
  if t.dummy = None then t.dummy <- Some v;
  ensure_heap_capacity t;
  let s = alloc_slot t v in
  let i = t.size in
  t.size <- i + 1;
  t.times.(i) <- time;
  t.seqs.(i) <- t.next_seq;
  t.next_seq <- t.next_seq + 1;
  t.slots.(i) <- s;
  t.pos_of.(s) <- i;
  sift_up t i;
  s lor (t.gens.(s) lsl slot_bits)

let min_time_exn t =
  if t.size = 0 then invalid_arg "Event_queue.min_time_exn: empty";
  t.times.(0)

let pop_exn t =
  if t.size = 0 then invalid_arg "Event_queue.pop_exn: empty";
  let s = t.slots.(0) in
  let v = t.payloads.(s) in
  free_slot t s;
  let last = t.size - 1 in
  t.size <- last;
  if last > 0 then begin
    move t ~src:last ~dst:0;
    sift_down t 0
  end;
  v

let pop t =
  if t.size = 0 then None
  else begin
    let time = t.times.(0) in
    let v = pop_exn t in
    Some (time, v)
  end

let peek_time t = if t.size = 0 then None else Some t.times.(0)

let holds t h =
  let s = h land slot_mask and g = h lsr slot_bits in
  h >= 0 && s < t.slots_used && t.gens.(s) = g && t.pos_of.(s) >= 0

let time_of t h =
  if holds t h then Some t.times.(t.pos_of.(h land slot_mask)) else None

(* Remove the entry at heap position [pos]; its slot must already be freed
   (or about to be re-pushed). *)
let remove_at t pos =
  let last = t.size - 1 in
  t.size <- last;
  if pos < last then begin
    move t ~src:last ~dst:pos;
    sift_up t pos;
    sift_down t pos
  end

let cancel t h =
  if not (holds t h) then false
  else begin
    let s = h land slot_mask in
    let pos = t.pos_of.(s) in
    free_slot t s;
    remove_at t pos;
    true
  end

let reschedule t h ~time =
  if not (holds t h) then false
  else begin
    let s = h land slot_mask in
    let pos = t.pos_of.(s) in
    t.times.(pos) <- time;
    (* A fresh seq: a rescheduled event fires after events already queued
       for the same instant, as if it had just been pushed. *)
    t.seqs.(pos) <- t.next_seq;
    t.next_seq <- t.next_seq + 1;
    sift_up t pos;
    sift_down t t.pos_of.(s);
    true
  end

let clear t =
  for i = 0 to t.size - 1 do
    let s = t.slots.(i) in
    t.gens.(s) <- t.gens.(s) + 1;
    t.pos_of.(s) <- (-1);
    match t.dummy with Some d -> t.payloads.(s) <- d | None -> ()
  done;
  t.size <- 0;
  t.free_top <- 0;
  t.slots_used <- 0

(* Heap-invariant check for the property tests: every child sorts after its
   parent under (time, seq), and pos_of is the inverse of slots. *)
let invariants_ok t =
  let ok = ref true in
  for i = 1 to t.size - 1 do
    if less t i ((i - 1) / 2) then ok := false
  done;
  for i = 0 to t.size - 1 do
    if t.pos_of.(t.slots.(i)) <> i then ok := false
  done;
  let live = ref 0 in
  for s = 0 to t.slots_used - 1 do
    if t.pos_of.(s) >= 0 then incr live
  done;
  !ok && !live = t.size
