(** Priority queue of timestamped events: an indexed binary min-heap with
    cancellable, reschedulable handles.

    Ties are broken by insertion order so the simulation is deterministic:
    two events scheduled for the same instant fire in the order they were
    scheduled, and the pop sequence depends only on the push sequence, never
    on the heap's internal shape.

    The heap is a structure of parallel [int] arrays, so a push performs no
    heap allocation once the backing arrays are warm — the engine's
    dispatch-heavy hot loop runs allocation-free when callers reuse their
    event closures (see [bench/engine_bench.ml]). *)

type 'a t

type handle = int
(** Names one pending event. A handle goes stale as soon as its event pops,
    is cancelled, or the queue is cleared; stale handles are recognized (via
    a per-slot generation) and rejected, never confused with a recycled
    slot. *)

val none_handle : handle
(** A handle that no live event ever has; [cancel]/[reschedule] on it return
    [false]. Useful as an initializer. *)

val create : unit -> 'a t
val is_empty : 'a t -> bool
val length : 'a t -> int

val push : 'a t -> time:Time.t -> 'a -> handle
(** Schedule a payload; the handle can later [cancel] or [reschedule] it. *)

val pop : 'a t -> (Time.t * 'a) option
(** Remove and return the earliest event. *)

val min_time_exn : 'a t -> Time.t
(** Timestamp of the earliest event.
    @raise Invalid_argument when empty. *)

val pop_exn : 'a t -> 'a
(** Allocation-free pop: returns the payload alone (read {!min_time_exn}
    first if the timestamp is needed).
    @raise Invalid_argument when empty. *)

val peek_time : 'a t -> Time.t option
(** Timestamp of the earliest event without removing it. *)

val holds : 'a t -> handle -> bool
(** Is this handle's event still pending? *)

val time_of : 'a t -> handle -> Time.t option
(** Current firing time of a pending event; [None] if the handle is stale. *)

val cancel : 'a t -> handle -> bool
(** Remove a pending event in O(log n). [false] if the handle is stale
    (already popped, cancelled, or cleared). *)

val reschedule : 'a t -> handle -> time:Time.t -> bool
(** Move a pending event to a new time in O(log n), keeping the handle
    valid. The event is re-sequenced: among events at the new timestamp it
    fires last, exactly as if it had been pushed at the reschedule point.
    [false] if the handle is stale. *)

val clear : 'a t -> unit
(** Drop every pending event (their handles all go stale). *)

val invariants_ok : 'a t -> bool
(** Internal consistency check (heap order, index maps); for tests. *)
