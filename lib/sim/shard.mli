(** One engine shard of a conservative parallel simulation.

    A shard wraps a private {!Engine.t} plus per-destination outboxes for
    timestamped cross-shard messages. During an epoch the shard's domain is
    the only writer of its engine and its outboxes; at the epoch barrier the
    fleet (single-threaded) drains every outbox into the destination
    engines in deterministic [(timestamp, sid, posting order)] order.

    The conservative contract: a message posted while the shard executes
    the epoch [\[T, T+W-1\]] must carry a timestamp [>= now + W] where [W]
    is the fleet's lookahead — so it always lands at or after the next
    epoch's start and no shard ever receives an event in its past. {!post}
    enforces this. *)

type t

val create : id:int -> shards:int -> lookahead:Time.t -> t
(** [create ~id ~shards ~lookahead] makes shard [id] of a fleet of
    [shards], with outboxes for every destination. [lookahead] must be
    positive. *)

val id : t -> int
val engine : t -> Engine.t
val lookahead : t -> Time.t

val post : t -> dst:int -> at:Time.t -> sid:int -> (Engine.t -> unit) -> unit
(** Queue [fn] for delivery into shard [dst]'s engine at absolute time
    [at]. [sid] is the deterministic tiebreaker among same-timestamp
    messages (callers use the source server id, which is unique
    fleet-wide). Raises [Invalid_argument] if [at - now < lookahead] (a
    conservative-synchronization violation) or if [dst] is this shard
    (local work should be scheduled directly — it needs no barrier).

    Message records are pooled and reused across epochs; a post in the
    steady state allocates only the closure. *)

val pending_messages : t -> int
(** Messages posted since the last barrier, summed over destinations. *)

(**/**)

(* Barrier-side interface, used by {!Fleet} and by tests. *)

type msg = {
  mutable at : Time.t;
  mutable sid : int;
  mutable seq : int;
  mutable fn : Engine.t -> unit;
}

val take_outbox : t -> dst:int -> msg array * int
(** Slots (first [len] live) destined for [dst], in posting order. The
    caller must {!reset_outboxes} once every destination is drained. *)

val reset_outboxes : t -> unit
