type msg = {
  mutable at : Time.t;
  mutable sid : int;
  mutable seq : int;
  mutable fn : Engine.t -> unit;
}

type outbox = { mutable slots : msg array; mutable len : int }

type t = {
  id : int;
  engine : Engine.t;
  lookahead : Time.t;
  outboxes : outbox array;
  mutable next_seq : int;
}

let nop (_ : Engine.t) = ()
let fresh_msg () = { at = Time.zero; sid = 0; seq = 0; fn = nop }

let create ~id ~shards ~lookahead =
  if shards <= 0 then invalid_arg "Shard.create: shards must be positive";
  if id < 0 || id >= shards then invalid_arg "Shard.create: id out of range";
  if lookahead <= 0 then invalid_arg "Shard.create: lookahead must be positive";
  {
    id;
    engine = Engine.create ();
    lookahead;
    outboxes = Array.init shards (fun _ -> { slots = [||]; len = 0 });
    next_seq = 0;
  }

let id t = t.id
let engine t = t.engine
let lookahead t = t.lookahead

let grow ob =
  let cap = Array.length ob.slots in
  let cap' = if cap = 0 then 8 else cap * 2 in
  let slots' = Array.init cap' (fun i -> if i < cap then ob.slots.(i) else fresh_msg ()) in
  ob.slots <- slots'

let post t ~dst ~at ~sid fn =
  if dst = t.id then invalid_arg "Shard.post: message to own shard";
  if dst < 0 || dst >= Array.length t.outboxes then invalid_arg "Shard.post: bad dst";
  if at - Engine.now t.engine < t.lookahead then
    invalid_arg "Shard.post: timestamp violates the lookahead window";
  let ob = t.outboxes.(dst) in
  if ob.len = Array.length ob.slots then grow ob;
  let m = ob.slots.(ob.len) in
  m.at <- at;
  m.sid <- sid;
  m.seq <- t.next_seq;
  m.fn <- fn;
  t.next_seq <- t.next_seq + 1;
  ob.len <- ob.len + 1

let pending_messages t =
  Array.fold_left (fun acc ob -> acc + ob.len) 0 t.outboxes

let take_outbox t ~dst =
  let ob = t.outboxes.(dst) in
  (ob.slots, ob.len)

let reset_outboxes t =
  Array.iter
    (fun ob ->
      (* Drop closure references so delivered payloads are collectable;
         the slot records themselves are kept warm for the next epoch. *)
      for i = 0 to ob.len - 1 do
        ob.slots.(i).fn <- nop
      done;
      ob.len <- 0)
    t.outboxes
