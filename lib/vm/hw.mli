(** The assembled Jord hardware extension: per-core MMUs (I/D-VLBs), the VMA
    table walker, the VTD, and the T-bit coherence path, all charging their
    memory traffic through {!Jord_arch.Memsys}.

    Translation identity (VLB tags, VTD tracking) always uses the canonical
    plain-list VTE address computable from the VA — the VA encoding does not
    change between Jord and Jord_BT; only the walked data structure (and so
    the walk's memory footprint) does. *)

type t

val create :
  ?i_entries:int ->
  ?d_entries:int ->
  memsys:Jord_arch.Memsys.t ->
  store:Vma_store.t ->
  va_cfg:Va.config ->
  unit ->
  t
(** Default VLB geometry: 16 I-entries, 16 D-entries (Table 2). *)

val memsys : t -> Jord_arch.Memsys.t
val store : t -> Vma_store.t
val va_cfg : t -> Va.config
val mmu : t -> core:int -> Mmu.t

val vtd : t -> Vtd.t
(** The machine's virtual translation directory (stats inspection). *)

val config : t -> Jord_arch.Config.t

val instr_ns : t -> int -> float
(** Straight-line instruction cost under the machine's CPU profile. *)

val translate :
  t -> core:int -> va:int -> access:Perm.access -> kind:[ `Instr | `Data ] -> Vte.t * float
(** Translation + protection check for the PD currently in the core's ucid:
    VLB lookup, VTW walk on miss (charged through the memory system, with
    VTD registration), sub-array/overflow permission resolution, P-bit
    check.
    Returns the VTE and the translation latency in ns (0 on a VLB hit).
    @raise Fault.Fault on unmapped VA, denied permission or privilege
    violation. *)

val access :
  t ->
  core:int ->
  va:int ->
  access:Perm.access ->
  kind:[ `Instr | `Data ] ->
  bytes:int ->
  float
(** {!translate} followed by the data access(es) at the translated physical
    address: total latency in ns. *)

val charge_footprint : t -> core:int -> Vma_store.footprint -> float
(** Drive a VMA-structure operation's reads/writes through the memory
    system (walker and PrivLib traffic). *)

val shootdown : t -> core:int -> va:int -> float
(** T-bit VTE-write handling for the VMA covering [va]: consult the VTD (or
    fall back on the coherence directory when untracked), invalidate every
    sharer core's VLB entries in parallel, and return the shootdown latency
    — the round trip from the home LLC slice to the farthest sharer. The
    writing core's own VLB entries are invalidated locally for free. *)

val warm : t -> core:int -> va:int -> kind:[ `Instr | `Data ] -> unit
(** Pre-fill a VLB entry without charging latency (used to set up steady
    state in microbenchmarks). *)

val shootdown_count : t -> int
(** Total shootdowns performed. *)

val shootdown_ns_total : t -> float
(** Cumulative shootdown latency (for the Fig. 14 scalability study). *)

val walk_count : t -> int
val walk_ns_total : t -> float
(** VTW walk statistics (VLB miss penalty measurements). *)

val stall_mark : t -> unit
(** Reset the per-request VM-stall accumulator. The executor calls this at
    the start of each synchronous compute block. *)

val stall_since_mark : t -> float
(** VM time (VTW walks, I-VLB refill bubbles, shootdown round trips)
    accumulated since the last {!stall_mark}, in ns — the tracing layer
    attributes it to the request that ran the block. *)

val vlb_totals : t -> int * int
(** (hits, misses) summed over every core's I- and D-VLB. *)

val vlb_totals_by_kind : t -> (int * int) * (int * int)
(** ((I hits, I misses), (D hits, D misses)) summed over every core. *)

val fault_count : t -> int
(** Translation/protection faults raised through this machine. *)

val note_fault : t -> Fault.t -> unit
(** Count a fault raised outside {!translate} (PrivLib policy checks). *)

val vlb_occupancy : t -> kind:[ `Instr | `Data ] -> float
(** Mean occupancy fraction (0..1) of the given VLB kind across cores —
    sampled over simulated time by the telemetry layer. *)

val register_metrics :
  t -> ?labels:(string * string) list -> Jord_telemetry.Registry.t -> unit
(** Register the VM-layer metric families ([jord_vlb_*], [jord_vtw_*],
    [jord_vtd_*], [jord_faults_total]) as pull collectors; [labels] are
    prepended to every instance. Zero hot-path cost. *)

val reset_counters : t -> unit
