type t = {
  memsys : Jord_arch.Memsys.t;
  store : Vma_store.t;
  va_cfg : Va.config;
  vtd : Vtd.t;
  mmus : Mmu.t array;
  mutable shootdowns : int;
  mutable shootdown_ns : float;
  mutable walks : int;
  mutable walk_ns : float;
  mutable cur_stall_ns : float;
      (* Running VM-stall accumulator for per-request attribution: walks,
         I-VLB refill bubbles and shootdown waits add to it as they are
         charged. The executor marks it at the start of each synchronous
         compute block and reads the delta at the end (reset-and-read), so
         stray accumulation outside a block is harmless. *)
  faults : int array; (* indexed by fault_class *)
}

(* Fault accounting: translation/protection faults by class, counted where
   the machine raises them (the telemetry layer reads these by label). *)
let fault_classes = [| "unmapped"; "permission"; "privileged"; "gate"; "policy" |]

let fault_class = function
  | Fault.Unmapped _ -> 0
  | Fault.Permission _ -> 1
  | Fault.Privileged_access _ -> 2
  | Fault.Gate_violation _ -> 3
  | Fault.Bad_handle _ -> 4

let create ?(i_entries = 16) ?(d_entries = 16) ~memsys ~store ~va_cfg () =
  let cores = Jord_arch.Topology.cores (Jord_arch.Memsys.topology memsys) in
  {
    memsys;
    store;
    va_cfg;
    vtd = Vtd.create ~cores ();
    mmus = Array.init cores (fun _ -> Mmu.create ~i_entries ~d_entries);
    shootdowns = 0;
    shootdown_ns = 0.0;
    walks = 0;
    walk_ns = 0.0;
    cur_stall_ns = 0.0;
    faults = Array.make (Array.length fault_classes) 0;
  }

let memsys t = t.memsys
let store t = t.store
let va_cfg t = t.va_cfg
let mmu t ~core = t.mmus.(core)
let vtd t = t.vtd
let config t = Jord_arch.Memsys.config t.memsys
let instr_ns t n = Jord_arch.Config.instr_ns (config t) n
let shootdown_count t = t.shootdowns
let shootdown_ns_total t = t.shootdown_ns
let walk_count t = t.walks
let walk_ns_total t = t.walk_ns
let stall_mark t = t.cur_stall_ns <- 0.0
let stall_since_mark t = t.cur_stall_ns

(* Aggregate VLB statistics across every core. *)
let vlb_totals t =
  Array.fold_left
    (fun (h, m) mmu ->
      let i = Vlb.stats (Mmu.i_vlb mmu) and d = Vlb.stats (Mmu.d_vlb mmu) in
      (h + i.Vlb.hits + d.Vlb.hits, m + i.Vlb.misses + d.Vlb.misses))
    (0, 0) t.mmus

(* Per-kind VLB totals (I vs D) across every core. *)
let vlb_totals_by_kind t =
  Array.fold_left
    (fun ((ih, im), (dh, dm)) mmu ->
      let i = Vlb.stats (Mmu.i_vlb mmu) and d = Vlb.stats (Mmu.d_vlb mmu) in
      ((ih + i.Vlb.hits, im + i.Vlb.misses), (dh + d.Vlb.hits, dm + d.Vlb.misses)))
    ((0, 0), (0, 0))
    t.mmus

let vlb_shootdown_drops t =
  Array.fold_left
    (fun acc mmu ->
      acc
      + (Vlb.stats (Mmu.i_vlb mmu)).Vlb.shootdowns
      + (Vlb.stats (Mmu.d_vlb mmu)).Vlb.shootdowns)
    0 t.mmus

let fault_count t = Array.fold_left ( + ) 0 t.faults

let note_fault t f = t.faults.(fault_class f) <- t.faults.(fault_class f) + 1

let reset_counters t =
  t.shootdowns <- 0;
  t.shootdown_ns <- 0.0;
  t.walks <- 0;
  t.walk_ns <- 0.0;
  Array.fill t.faults 0 (Array.length t.faults) 0

let vlb_of mmu = function `Instr -> Mmu.i_vlb mmu | `Data -> Mmu.d_vlb mmu

let canonical_tag t va =
  match Va.decode t.va_cfg va with
  | Some _ -> Va.vte_addr_of_va t.va_cfg va
  | None -> Fault.raise_fault (Fault.Unmapped va)

let charge_footprint t ~core (fp : Vma_store.footprint) =
  let acc = ref 0.0 in
  List.iter (fun addr -> acc := !acc +. Jord_arch.Memsys.read t.memsys ~core ~addr) fp.Vma_store.reads;
  List.iter (fun addr -> acc := !acc +. Jord_arch.Memsys.write t.memsys ~core ~addr) fp.Vma_store.writes;
  !acc

(* VTW walk: locate the VTE through the active data structure, charging its
   memory footprint, then register the translation with the VTD and fill the
   requesting VLB. *)
(* The VTW is a small FSM: besides the VTE fetch it spends a few cycles
   computing the entry address and validating the sub-array. *)
let vtw_fsm_cycles = 5

let walk t ~core ~va ~vlb =
  let vte, fp = Vma_store.lookup t.store ~va in
  let lat =
    Jord_arch.Config.cycles_ns (config t) vtw_fsm_cycles
    +. instr_ns t (Vma_store.search_instrs t.store)
    +. charge_footprint t ~core fp
  in
  match vte with
  | None -> Fault.raise_fault (Fault.Unmapped va)
  | Some vte ->
      let tag = canonical_tag t va in
      Vtd.note_read t.vtd ~vte_addr:tag ~core;
      Vlb.fill vlb ~vte_addr:tag vte;
      t.walks <- t.walks + 1;
      t.walk_ns <- t.walk_ns +. lat;
      (vte, lat)

(* Overflow-pointer chase: VMAs shared by more than 20 PDs keep the extra
   (pd, perm) pairs behind the ptr field, one more memory access away. *)
let overflow_addr t va = canonical_tag t va + (t.va_cfg.Va.table_capacity * Va.vte_bytes)

let check_perm t ~core ~mmu ~va ~access vte =
  if Vte.privileged vte && not (Mmu.p_bit mmu) then
    Fault.raise_fault (Fault.Privileged_access va);
  let pd = Mmu.ucid mmu in
  let extra =
    if Vte.overflow_lookup_needed vte ~pd then
      Jord_arch.Memsys.read t.memsys ~core ~addr:(overflow_addr t va)
    else 0.0
  in
  let perm = Vte.perm_for vte ~pd in
  if not (Perm.allows perm access) then
    Fault.raise_fault (Fault.Permission { va; pd; need = access });
  extra

(* An I-VLB miss stalls the front end: besides the walk, the fetch stage
   refills after the bubble. *)
let ivlb_stall_cycles = 14

let translate_unchecked t ~core ~va ~access ~kind =
  let mmu = t.mmus.(core) in
  let vlb = vlb_of mmu kind in
  let vte, walk_lat =
    match Vlb.lookup vlb ~va with
    | Some vte -> (vte, 0.0)
    | None ->
        let vte, lat = walk t ~core ~va ~vlb in
        let stall =
          match kind with
          | `Instr -> Jord_arch.Config.cycles_ns (config t) ivlb_stall_cycles
          | `Data -> 0.0
        in
        t.cur_stall_ns <- t.cur_stall_ns +. lat +. stall;
        (vte, lat +. stall)
  in
  let perm_lat = check_perm t ~core ~mmu ~va ~access vte in
  (vte, walk_lat +. perm_lat)

let translate t ~core ~va ~access ~kind =
  try translate_unchecked t ~core ~va ~access ~kind
  with Fault.Fault f as exn ->
    note_fault t f;
    raise exn

let access t ~core ~va ~access:acc ~kind ~bytes =
  let vte, lat = translate t ~core ~va ~access:acc ~kind in
  let phys = Vte.translate vte va in
  let line = (config t).Jord_arch.Config.line in
  let data =
    match acc with
    | Perm.Write when bytes <= line ->
        Jord_arch.Memsys.write t.memsys ~core ~addr:phys
    | Perm.Write ->
        (* Streaming store: charge per line with overlap. *)
        let n = Jord_util.Bits.ceil_div bytes line in
        let total = ref 0.0 in
        for i = 0 to n - 1 do
          let l = Jord_arch.Memsys.write t.memsys ~core ~addr:(phys + (i * line)) in
          total := !total +. (if i = 0 then l else l *. 0.25)
        done;
        !total
    | Perm.Read | Perm.Exec ->
        Jord_arch.Memsys.read_block t.memsys ~core ~addr:phys ~bytes
  in
  lat +. data

let shootdown t ~core ~va =
  t.shootdowns <- t.shootdowns + 1;
  let tag = canonical_tag t va in
  let cores =
    match Vtd.sharers t.vtd ~vte_addr:tag with
    | `Tracked cores -> cores
    | `Untracked ->
        (* Victim-cache fallback: every coherence sharer of the VTE line is
           pessimistically treated as a translation sharer. *)
        Jord_arch.Memsys.sharers t.memsys ~addr:tag
  in
  let topo = Jord_arch.Memsys.topology t.memsys in
  let home = Jord_arch.Memsys.home_of t.memsys ~addr:tag ~requester:core in
  let worst = ref 0.0 in
  List.iter
    (fun sharer ->
      let mmu = t.mmus.(sharer) in
      let hit_i = Vlb.invalidate_vte (Mmu.i_vlb mmu) ~vte_addr:tag in
      let hit_d = Vlb.invalidate_vte (Mmu.d_vlb mmu) ~vte_addr:tag in
      if sharer <> core && (hit_i || hit_d) then begin
        let d = 2.0 *. Jord_arch.Topology.latency_ns topo ~src:home ~dst:sharer in
        if d > !worst then worst := d
      end)
    cores;
  Vtd.note_write t.vtd ~vte_addr:tag;
  t.shootdown_ns <- t.shootdown_ns +. !worst;
  t.cur_stall_ns <- t.cur_stall_ns +. !worst;
  !worst

(* Mean occupancy fraction of one VLB kind across every core — a sampled
   gauge (VLB pressure over time). *)
let vlb_occupancy t ~kind =
  let pick_vlb mmu = match kind with `Instr -> Mmu.i_vlb mmu | `Data -> Mmu.d_vlb mmu in
  let n = Array.length t.mmus in
  if n = 0 then 0.0
  else
    Array.fold_left
      (fun acc mmu ->
        let vlb = pick_vlb mmu in
        acc
        +. (float_of_int (Vlb.occupancy vlb) /. float_of_int (Int.max 1 (Vlb.capacity vlb))))
      0.0 t.mmus
    /. float_of_int n

(* Telemetry wiring (pull-based; see docs/observability.md for the metric
   catalog). Every closure reads counters this module already maintains. *)
let register_metrics t ?(labels = []) reg =
  let open Jord_telemetry.Registry in
  let c name help extra fn = counter_fn reg ~help ~labels:(labels @ extra) name fn in
  let g name help extra fn = gauge_fn reg ~help ~labels:(labels @ extra) name fn in
  let vlb part pick =
    c "jord_vlb_hits_total" "VLB hits by kind" [ ("vlb", part) ] (fun () ->
        float_of_int (fst (pick (vlb_totals_by_kind t))));
    c "jord_vlb_misses_total" "VLB misses by kind" [ ("vlb", part) ] (fun () ->
        float_of_int (snd (pick (vlb_totals_by_kind t))))
  in
  vlb "i" fst;
  vlb "d" snd;
  c "jord_vlb_shootdowns_total" "T-bit shootdown operations" [] (fun () ->
      float_of_int t.shootdowns);
  c "jord_vlb_shootdown_ns_total" "Cumulative shootdown latency (ns)" [] (fun () ->
      t.shootdown_ns);
  c "jord_vlb_shootdown_invalidations_total"
    "VLB entries dropped by shootdown messages" [] (fun () ->
      float_of_int (vlb_shootdown_drops t));
  c "jord_vtw_walks_total" "VMA-table walks (VLB misses served)" [] (fun () ->
      float_of_int t.walks);
  c "jord_vtw_walk_ns_total" "Cumulative walk latency (ns)" [] (fun () -> t.walk_ns);
  let vs = Vtd.stats t.vtd in
  c "jord_vtd_registrations_total" "T-bit reads registered in the VTD" [] (fun () ->
      float_of_int vs.Vtd.registrations);
  c "jord_vtd_evictions_total" "VTD entries evicted (capacity)" [] (fun () ->
      float_of_int vs.Vtd.evictions);
  c "jord_vtd_shootdowns_total" "VTE-write shootdowns by resolution path"
    [ ("path", "tracked") ] (fun () -> float_of_int vs.Vtd.tracked_shootdowns);
  c "jord_vtd_shootdowns_total" "VTE-write shootdowns by resolution path"
    [ ("path", "fallback") ] (fun () -> float_of_int vs.Vtd.fallback_shootdowns);
  g "jord_vtd_tracked_entries" "Live VTD entries" [] (fun () ->
      float_of_int (Vtd.tracked t.vtd));
  Array.iteri
    (fun i cls ->
      c "jord_faults_total" "Translation/protection faults by class"
        [ ("class", cls) ] (fun () -> float_of_int t.faults.(i)))
    fault_classes;
  g "jord_vlb_occupancy_fraction" "Mean VLB occupancy across cores"
    [ ("vlb", "i") ] (fun () -> vlb_occupancy t ~kind:`Instr);
  g "jord_vlb_occupancy_fraction" "Mean VLB occupancy across cores"
    [ ("vlb", "d") ] (fun () -> vlb_occupancy t ~kind:`Data)

let warm t ~core ~va ~kind =
  let mmu = t.mmus.(core) in
  let vlb = vlb_of mmu kind in
  match Vlb.lookup vlb ~va with
  | Some _ -> ()
  | None -> (
      match Vma_store.lookup t.store ~va with
      | Some vte, _ ->
          let tag = canonical_tag t va in
          Vtd.note_read t.vtd ~vte_addr:tag ~core;
          Vlb.fill vlb ~vte_addr:tag vte
      | None, _ -> ())
