(** End-of-sim conservation invariants.

    Every external request must be accounted for exactly once:
    [arrivals = completed + dropped + timed_out + in_flight]. When the
    event queue has drained, stronger balance laws apply: no in-flight
    roots, no live continuations, PD and VMA (ArgBuf) populations back at
    their post-boot floors, and — summed over the servers of a cluster —
    every forwarded request received exactly once.

    Per-server tallies come from [Server.conservation]; sum them with
    {!add} before {!check} when servers forward to each other (forwarding
    balances across the cluster, not per member). *)

type tally = {
  arrivals : int;
  completed : int;
  dropped : int;  (** Shed at the full external queue. *)
  timed_out : int;  (** Shed by the deadline policy. *)
  in_flight : int;  (** Accepted but not yet completed/shed. *)
  forwarded_out : int;
  received_in : int;
  crashes : int;
  recovered : int;  (** Requests re-queued after an executor crash. *)
  live_continuations : int;
  surplus_pds : int;  (** Live PDs above the post-boot floor. *)
  surplus_vmas : int;  (** Live VMAs above the post-boot floor. *)
  drained : bool;  (** Event queue empty (end-of-sim, not a cut mid-run). *)
}

val zero : tally
val add : tally -> tally -> tally
(** Field-wise sum; [drained] is the conjunction. *)

val check : tally -> string list
(** Violated invariants, human-readable; [[]] means all hold. The drain-only
    laws (continuation/PD/VMA balance, forward balance) are skipped when
    [drained] is false. *)

val pp : Format.formatter -> tally -> unit
