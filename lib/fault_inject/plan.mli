(** A deterministic fault plan: which failures to inject, how often, and
    the seed of the fault PRNG stream.

    The plan's seed is independent of the workload seed, so the same
    workload can be replayed under different fault schedules (and vice
    versa). All probabilities are per-opportunity draws: [server_crash]
    then [crash] per invocation start, [stall]/[slow] per invocation,
    [loss]/[dup]/[jitter_us] per cross-server wire copy, [warm_loss] per
    whole-server crash. *)

type t = {
  seed : int;  (** Seed of the fault PRNG stream (not the workload seed). *)
  crash : float;  (** P(executor crash) at invocation start. *)
  restart_us : float;  (** Downtime of a crashed executor before it polls again. *)
  stall : float;  (** P(transient executor stall) at invocation start. *)
  stall_us : float;  (** Stall length. *)
  loss : float;  (** P(a cross-server wire copy is lost). *)
  dup : float;  (** P(a wire copy is duplicated in flight). *)
  jitter_us : float;  (** Max uniform extra one-way latency per wire copy. *)
  slow : float;  (** P(transient PrivLib slowdown) during invocation setup. *)
  slow_factor : float;  (** Multiplier applied to the slowed setup's cost. *)
  server_crash : float;
      (** P(whole-server crash) at invocation start, drawn before [crash]
          from the same per-server stream. A hit kills every executor on
          the server at once. *)
  server_down_us : float;
      (** Downtime of a crashed server before it boots and polls again. *)
  warm_loss : float;
      (** P(a server crash invalidates all warm per-function state), drawn
          once per whole-server crash; every function then pays the cold
          path on its next invocation there. *)
}

val none : t
(** All probabilities zero: a plan that injects nothing. *)

val ci_smoke : t
(** The CI determinism smoke plan: every fault class enabled at moderate
    rates (see .github/workflows/ci.yml, job [chaos-smoke]). *)

val mild : t
val harsh : t

val presets : (string * t) list
(** [("none", _); ("ci-smoke", _); ("mild", _); ("harsh", _)]. *)

val active : t -> bool
(** Does the plan inject anything at all? *)

val validate : t -> (unit, string) result

val parse : string -> (t, string) result
(** Parse a plan spec: a preset name ("ci-smoke"), a "key=value,..." list
    ("crash=0.01,loss=0.2,seed=7"), or a preset refined by overrides
    ("ci-smoke,loss=0.5"). Keys: seed, crash, restart-us, stall, stall-us,
    loss, dup, jitter-us, slow, slow-factor, server-crash, server-down-us,
    warm-loss (underscore spellings accepted). *)

val to_string : t -> string
(** Canonical "key=value,..." form; [parse (to_string t) = Ok t]. *)
