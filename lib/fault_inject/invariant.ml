type tally = {
  arrivals : int;
  completed : int;
  dropped : int;
  timed_out : int;
  in_flight : int;
  forwarded_out : int;
  received_in : int;
  crashes : int;
  recovered : int;
  live_continuations : int;
  surplus_pds : int;
  surplus_vmas : int;
  drained : bool;
}

let zero =
  {
    arrivals = 0;
    completed = 0;
    dropped = 0;
    timed_out = 0;
    in_flight = 0;
    forwarded_out = 0;
    received_in = 0;
    crashes = 0;
    recovered = 0;
    live_continuations = 0;
    surplus_pds = 0;
    surplus_vmas = 0;
    drained = true;
  }

let add a b =
  {
    arrivals = a.arrivals + b.arrivals;
    completed = a.completed + b.completed;
    dropped = a.dropped + b.dropped;
    timed_out = a.timed_out + b.timed_out;
    in_flight = a.in_flight + b.in_flight;
    forwarded_out = a.forwarded_out + b.forwarded_out;
    received_in = a.received_in + b.received_in;
    crashes = a.crashes + b.crashes;
    recovered = a.recovered + b.recovered;
    live_continuations = a.live_continuations + b.live_continuations;
    surplus_pds = a.surplus_pds + b.surplus_pds;
    surplus_vmas = a.surplus_vmas + b.surplus_vmas;
    drained = a.drained && b.drained;
  }

let check t =
  let errs = ref [] in
  let fail fmt = Printf.ksprintf (fun m -> errs := m :: !errs) fmt in
  let accounted = t.completed + t.dropped + t.timed_out + t.in_flight in
  if t.arrivals <> accounted then
    fail "root conservation: arrivals=%d but completed+dropped+timed_out+in_flight=%d"
      t.arrivals accounted;
  List.iter
    (fun (name, v) -> if v < 0 then fail "negative counter: %s=%d" name v)
    [
      ("arrivals", t.arrivals);
      ("completed", t.completed);
      ("dropped", t.dropped);
      ("timed_out", t.timed_out);
      ("in_flight", t.in_flight);
      ("forwarded_out", t.forwarded_out);
      ("received_in", t.received_in);
      ("crashes", t.crashes);
      ("recovered", t.recovered);
      ("live_continuations", t.live_continuations);
    ];
  if t.recovered < t.crashes then
    fail "recovery: %d crashes but only %d requests re-executed" t.crashes t.recovered;
  if t.drained then begin
    if t.in_flight <> 0 then fail "drained but in_flight=%d roots unaccounted" t.in_flight;
    if t.live_continuations <> 0 then
      fail "drained but %d continuations still live" t.live_continuations;
    if t.surplus_pds <> 0 then fail "PD balance: %d PDs leaked" t.surplus_pds;
    if t.surplus_vmas <> 0 then
      fail "ArgBuf/VMA balance: %d VMAs above the post-boot floor" t.surplus_vmas;
    if t.forwarded_out <> t.received_in then
      fail "forward balance: %d shipped out but %d received" t.forwarded_out
        t.received_in
  end;
  List.rev !errs

let pp ppf t =
  Format.fprintf ppf
    "arrivals=%d completed=%d dropped=%d timed_out=%d in_flight=%d fwd_out=%d fwd_in=%d crashes=%d recovered=%d conts=%d pds=%+d vmas=%+d drained=%b"
    t.arrivals t.completed t.dropped t.timed_out t.in_flight t.forwarded_out
    t.received_in t.crashes t.recovered t.live_continuations t.surplus_pds
    t.surplus_vmas t.drained
