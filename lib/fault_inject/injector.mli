(** The seeded fault stream behind a {!Plan}.

    Every fault decision is a PRNG draw on a stream derived from the plan
    seed (xoshiro256**, independent of the workload stream), taken in
    simulated-event order — so a given (workload seed, plan) pair yields a
    bit-identical fault schedule on every run. Draws only consume PRNG
    state for fault classes the plan enables; disabled classes are free and
    do not perturb the schedule of the others. *)

type t

val create : ?salt:int -> Plan.t -> t
(** [salt] decorrelates streams that share one plan (per-server injectors,
    the cluster transport). *)

val plan : t -> Plan.t
val active : t -> bool

val draws : t -> int
(** PRNG draws taken so far (a cheap determinism fingerprint). *)

val draw_crash : t -> bool
(** One crash decision, taken at invocation start. *)

val restart_ns : t -> float
(** Downtime of a crashed executor (fixed by the plan, not drawn). *)

val draw_stall_ns : t -> float
(** 0.0, or the plan's stall length if the stall draw hits. *)

val draw_slow_factor : t -> float
(** 1.0, or the plan's PrivLib slowdown factor if the slow draw hits. *)

type wire = {
  lost : bool;  (** The primary copy never arrives. *)
  duplicated : bool;  (** A second copy is delivered independently. *)
  jitter_ns : float;  (** Extra one-way latency of the primary copy. *)
  dup_jitter_ns : float;  (** Extra one-way latency of the duplicate. *)
}

val draw_wire : t -> wire
(** One wire-fault decision, taken per cross-server send attempt. *)

val max_jitter_ns : t -> float
(** Upper bound of any jitter draw — ack timeouts must exceed
    [2 * one_way + max_jitter_ns] so a timeout implies every copy was
    lost (which is what makes sender-side re-injection safe). *)
