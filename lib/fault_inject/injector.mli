(** The seeded fault stream behind a {!Plan}.

    Every fault decision is a PRNG draw on a stream derived from the plan
    seed (xoshiro256**, independent of the workload stream), taken in
    simulated-event order — so a given (workload seed, plan) pair yields a
    bit-identical fault schedule on every run. Draws only consume PRNG
    state for fault classes the plan enables; disabled classes are free and
    do not perturb the schedule of the others. *)

type t

val create : ?salt:int -> Plan.t -> t
(** [salt] decorrelates streams that share one plan (per-server injectors,
    the cluster transport). *)

val for_sid : Plan.t -> sid:int -> t
(** The per-server-id sub-stream, seeded [plan.seed lxor sid]. Used for
    shard-local draws (e.g. per-source wire faults) whose schedule must
    depend only on the owning server's own event order, never on how
    servers are interleaved across engine shards. *)

val plan : t -> Plan.t
val active : t -> bool

val draws : t -> int
(** PRNG draws taken so far (a cheap determinism fingerprint). *)

val draw_crash : t -> bool
(** One crash decision, taken at invocation start. *)

val restart_ns : t -> float
(** Downtime of a crashed executor (fixed by the plan, not drawn). *)

val draw_server_crash : t -> bool
(** One whole-server crash decision, taken at invocation start before the
    executor-crash draw. Consumes no PRNG state when the plan's
    [server_crash] is 0, so pre-existing plans keep their schedules. *)

val server_down_ns : t -> float
(** Downtime of a crashed server (fixed by the plan, not drawn). *)

val draw_warm_loss : t -> bool
(** One warm-state-loss decision, taken per whole-server crash. *)

val draw_stall_ns : t -> float
(** 0.0, or the plan's stall length if the stall draw hits. *)

val draw_slow_factor : t -> float
(** 1.0, or the plan's PrivLib slowdown factor if the slow draw hits. *)

type wire = {
  lost : bool;  (** The primary copy never arrives. *)
  duplicated : bool;  (** A second copy is delivered independently. *)
  jitter_ns : float;  (** Extra one-way latency of the primary copy. *)
  dup_jitter_ns : float;  (** Extra one-way latency of the duplicate. *)
}

val draw_wire : t -> wire
(** One wire-fault decision, taken per cross-server send attempt. *)

val max_jitter_ns : t -> float
(** Upper bound of any jitter draw — ack timeouts must exceed
    [2 * one_way + max_jitter_ns] so a timeout implies every copy was
    lost (which is what makes sender-side re-injection safe). *)
