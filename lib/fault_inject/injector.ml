module Prng = Jord_util.Prng

type t = {
  plan : Plan.t;
  prng : Prng.t;
  mutable draws : int;
}

(* Each injector derives its stream from the plan seed and a caller salt
   (e.g. the server index), so every server and the cluster transport get
   independent but reproducible fault schedules. *)
let create ?(salt = 0) plan =
  { plan; prng = Prng.create ~seed:(Plan.(plan.seed) lxor (salt * 0x9e3779b9)); draws = 0 }

(* Per-server-id sub-stream: seeded plan.seed xor sid, so each server's
   fault schedule is a function of (plan, sid) alone — independent of how
   the servers are interleaved across engine shards. *)
let for_sid plan ~sid = { plan; prng = Prng.create ~seed:(Plan.(plan.seed) lxor sid); draws = 0 }

let plan t = t.plan
let draws t = t.draws
let active t = Plan.active t.plan

(* Probability draws only consume PRNG state when the fault class is
   enabled: a plan with loss=0 produces the same crash schedule as one
   without a loss field at all. *)
let hit t prob =
  prob > 0.0
  &&
  (t.draws <- t.draws + 1;
   Prng.float t.prng 1.0 < prob)

let uniform_ns t max_us =
  if max_us <= 0.0 then 0.0
  else begin
    t.draws <- t.draws + 1;
    Prng.float t.prng (max_us *. 1000.0)
  end

let draw_crash t = hit t t.plan.Plan.crash
let restart_ns t = t.plan.Plan.restart_us *. 1000.0
let draw_server_crash t = hit t t.plan.Plan.server_crash
let server_down_ns t = t.plan.Plan.server_down_us *. 1000.0
let draw_warm_loss t = hit t t.plan.Plan.warm_loss
let draw_stall_ns t = if hit t t.plan.Plan.stall then t.plan.Plan.stall_us *. 1000.0 else 0.0

let draw_slow_factor t =
  if hit t t.plan.Plan.slow then t.plan.Plan.slow_factor else 1.0

type wire = {
  lost : bool;
  duplicated : bool;
  jitter_ns : float;
  dup_jitter_ns : float;
}

let draw_wire t =
  let lost = hit t t.plan.Plan.loss in
  let duplicated = hit t t.plan.Plan.dup in
  let jitter_ns = uniform_ns t t.plan.Plan.jitter_us in
  let dup_jitter_ns = if duplicated then uniform_ns t t.plan.Plan.jitter_us else 0.0 in
  { lost; duplicated; jitter_ns; dup_jitter_ns }

let max_jitter_ns t = t.plan.Plan.jitter_us *. 1000.0
