type t = {
  seed : int;
  crash : float;
  restart_us : float;
  stall : float;
  stall_us : float;
  loss : float;
  dup : float;
  jitter_us : float;
  slow : float;
  slow_factor : float;
  server_crash : float;
  server_down_us : float;
  warm_loss : float;
}

let none =
  {
    seed = 1;
    crash = 0.0;
    restart_us = 20.0;
    stall = 0.0;
    stall_us = 5.0;
    loss = 0.0;
    dup = 0.0;
    jitter_us = 0.0;
    slow = 0.0;
    slow_factor = 3.0;
    server_crash = 0.0;
    server_down_us = 200.0;
    warm_loss = 1.0;
  }

(* The CI determinism smoke: every fault class enabled at a rate that keeps
   most requests flowing while exercising every recovery path. Whole-server
   crashes stay off here so the historical chaos goldens are untouched; the
   server failure domain has its own plans (see [harsh] and the
   "server-crash=..." spellings in the docs). *)
let ci_smoke =
  {
    seed = 1337;
    crash = 0.02;
    restart_us = 20.0;
    stall = 0.05;
    stall_us = 5.0;
    loss = 0.1;
    dup = 0.05;
    jitter_us = 3.0;
    slow = 0.05;
    slow_factor = 3.0;
    server_crash = 0.0;
    server_down_us = 200.0;
    warm_loss = 1.0;
  }

let mild = { ci_smoke with seed = 7; crash = 0.005; loss = 0.02; dup = 0.01 }

let harsh =
  {
    seed = 13;
    crash = 0.1;
    restart_us = 50.0;
    stall = 0.2;
    stall_us = 10.0;
    loss = 0.3;
    dup = 0.15;
    jitter_us = 8.0;
    slow = 0.2;
    slow_factor = 5.0;
    server_crash = 0.02;
    server_down_us = 100.0;
    warm_loss = 1.0;
  }

let presets = [ ("none", none); ("ci-smoke", ci_smoke); ("mild", mild); ("harsh", harsh) ]

let active t =
  t.crash > 0.0 || t.stall > 0.0 || t.loss > 0.0 || t.dup > 0.0
  || t.jitter_us > 0.0 || t.slow > 0.0 || t.server_crash > 0.0

let validate t =
  let prob name v =
    if v < 0.0 || v > 1.0 then Error (Printf.sprintf "%s must be in [0,1]" name)
    else Ok ()
  in
  let nonneg name v =
    if v < 0.0 then Error (Printf.sprintf "%s must be >= 0" name) else Ok ()
  in
  let ( >>= ) r f = match r with Ok () -> f () | Error _ as e -> e in
  prob "crash" t.crash
  >>= fun () ->
  prob "stall" t.stall
  >>= fun () ->
  prob "loss" t.loss
  >>= fun () ->
  prob "dup" t.dup
  >>= fun () ->
  prob "slow" t.slow
  >>= fun () ->
  prob "server-crash" t.server_crash
  >>= fun () ->
  prob "warm-loss" t.warm_loss
  >>= fun () ->
  nonneg "restart-us" t.restart_us
  >>= fun () ->
  nonneg "stall-us" t.stall_us
  >>= fun () ->
  nonneg "jitter-us" t.jitter_us
  >>= fun () ->
  nonneg "server-down-us" t.server_down_us
  >>= fun () ->
  if t.slow_factor < 1.0 then Error "slow-factor must be >= 1" else Ok ()

(* Spec grammar: a preset name, or "k=v,k=v,..." (optionally seeded from a
   preset, e.g. "ci-smoke,loss=0.5"). *)
let parse spec =
  let apply base kv =
    match String.index_opt kv '=' with
    | None -> Error (Printf.sprintf "fault plan: expected key=value, got %S" kv)
    | Some i -> (
        let key = String.sub kv 0 i in
        let v = String.sub kv (i + 1) (String.length kv - i - 1) in
        let f () =
          match float_of_string_opt v with
          | Some f -> Ok f
          | None -> Error (Printf.sprintf "fault plan: bad float %S for %s" v key)
        in
        let ( >>| ) r g = match r with Ok x -> Ok (g x) | Error _ as e -> e in
        match key with
        | "seed" -> (
            match int_of_string_opt v with
            | Some s -> Ok { base with seed = s }
            | None -> Error (Printf.sprintf "fault plan: bad int %S for seed" v))
        | "crash" -> f () >>| fun x -> { base with crash = x }
        | "restart-us" | "restart_us" -> f () >>| fun x -> { base with restart_us = x }
        | "stall" -> f () >>| fun x -> { base with stall = x }
        | "stall-us" | "stall_us" -> f () >>| fun x -> { base with stall_us = x }
        | "loss" -> f () >>| fun x -> { base with loss = x }
        | "dup" -> f () >>| fun x -> { base with dup = x }
        | "jitter-us" | "jitter_us" -> f () >>| fun x -> { base with jitter_us = x }
        | "slow" -> f () >>| fun x -> { base with slow = x }
        | "slow-factor" | "slow_factor" -> f () >>| fun x -> { base with slow_factor = x }
        | "server-crash" | "server_crash" ->
            f () >>| fun x -> { base with server_crash = x }
        | "server-down-us" | "server_down_us" ->
            f () >>| fun x -> { base with server_down_us = x }
        | "warm-loss" | "warm_loss" -> f () >>| fun x -> { base with warm_loss = x }
        | _ -> Error (Printf.sprintf "fault plan: unknown key %S" key))
  in
  let parts =
    String.split_on_char ',' spec |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  let base, rest =
    match parts with
    | first :: rest when List.mem_assoc first presets ->
        (List.assoc first presets, rest)
    | _ -> (none, parts)
  in
  let rec go acc = function
    | [] -> Ok acc
    | kv :: rest -> ( match apply acc kv with Ok acc -> go acc rest | Error _ as e -> e)
  in
  match go base rest with
  | Error _ as e -> e
  | Ok plan -> ( match validate plan with Ok () -> Ok plan | Error m -> Error m)

let to_string t =
  Printf.sprintf
    "seed=%d,crash=%g,restart-us=%g,stall=%g,stall-us=%g,loss=%g,dup=%g,jitter-us=%g,slow=%g,slow-factor=%g,server-crash=%g,server-down-us=%g,warm-loss=%g"
    t.seed t.crash t.restart_us t.stall t.stall_us t.loss t.dup t.jitter_us t.slow
    t.slow_factor t.server_crash t.server_down_us t.warm_loss
