(** End-to-end memory-access latency engine.

    Combines per-core L1D tag arrays, the distributed directory/LLC and the
    NoC into a functional MESI model: every access updates coherence state
    and returns its latency in nanoseconds. Only protocol-relevant accesses
    are driven through this engine (VMA-table entries, request-queue slots,
    free-list heads, ArgBuf lines); plain function execution is charged as
    opaque compute time by the workload model. *)

type stats = {
  mutable l1_hits : int;
  mutable l1_misses : int;
  mutable llc_hits : int;
  mutable dram_fills : int;
  mutable forwards : int;  (** Cache-to-cache transfers from a remote owner. *)
  mutable upgrades : int;  (** S->M upgrades requiring invalidations. *)
  mutable invalidations : int;  (** Remote L1 lines invalidated. *)
}

type t

val create : Topology.t -> t
val topology : t -> Topology.t
val config : t -> Config.t
val stats : t -> stats

val read : t -> core:int -> addr:int -> float
(** Latency (ns) of a load by [core] from byte address [addr]. *)

val write : t -> core:int -> addr:int -> float
(** Latency (ns) of a store (read-for-ownership on miss, upgrade on shared
    hit). *)

val atomic : t -> core:int -> addr:int -> float
(** Atomic read-modify-write: a write plus the serialization cost of the
    locked operation. *)

val read_block : t -> core:int -> addr:int -> bytes:int -> float
(** Latency of streaming [bytes] starting at [addr]: per-line accesses with
    overlapped misses (memory-level parallelism models all but the first
    line at a fraction of full latency). *)

val register_metrics :
  t -> ?labels:(string * string) list -> Jord_telemetry.Registry.t -> unit
(** Register the MESI/cache traffic counters ([jord_mem_*] families) as
    pull collectors over {!stats}; [labels] (e.g. a server id) are
    prepended to every instance. Zero hot-path cost. *)

val sharers : t -> addr:int -> int list
(** Cores whose L1 may hold the address' line — the directory's view, used by
    the VTD when it must fall back on the coherence directory (victim-cache
    behaviour, paper §4.2). *)

val line_of : t -> int -> int
(** Line index of a byte address. *)

val home_of : t -> addr:int -> requester:int -> int
(** LLC slice homing the address' line; assigned by first touch within the
    requester's socket when not yet known. *)
