type stats = {
  mutable l1_hits : int;
  mutable l1_misses : int;
  mutable llc_hits : int;
  mutable dram_fills : int;
  mutable forwards : int;
  mutable upgrades : int;
  mutable invalidations : int;
}

type t = {
  topo : Topology.t;
  cfg : Config.t;
  l1 : Cache.t array;
  dir : Directory.t;
  stats : stats;
}

let create topo =
  let cfg = Topology.config topo in
  let mk_l1 _ =
    Cache.create ~size:cfg.Config.l1_size ~ways:cfg.Config.l1_ways ~line:cfg.Config.line
  in
  {
    topo;
    cfg;
    l1 = Array.init (Topology.cores topo) mk_l1;
    dir = Directory.create ~cores:(Topology.cores topo);
    stats =
      {
        l1_hits = 0;
        l1_misses = 0;
        llc_hits = 0;
        dram_fills = 0;
        forwards = 0;
        upgrades = 0;
        invalidations = 0;
      };
  }

let topology t = t.topo
let config t = t.cfg
let stats t = t.stats
let line_of t addr = addr / t.cfg.Config.line
let l1_ns t = Config.cycles_ns t.cfg t.cfg.Config.l1_latency
let llc_ns t = Config.cycles_ns t.cfg t.cfg.Config.llc_latency
let lat t a b = Topology.latency_ns t.topo ~src:a ~dst:b

(* Invalidate the line in every sharer's L1 except [keep]. Invalidations are
   sent in parallel from the home slice; the cost is the round trip to the
   farthest sharer. *)
let invalidate_sharers t entry line ~home ~keep =
  let worst = ref 0.0 in
  let victims = Jord_util.Bitset.to_list entry.Directory.sharers in
  List.iter
    (fun core ->
      if core <> keep then begin
        ignore (Cache.invalidate t.l1.(core) line);
        Jord_util.Bitset.remove entry.Directory.sharers core;
        if entry.Directory.owner = core then entry.Directory.owner <- -1;
        t.stats.invalidations <- t.stats.invalidations + 1;
        let d = 2.0 *. lat t home core in
        if d > !worst then worst := d
      end)
    victims;
  !worst

(* Handle an L1 eviction: tell the directory the core no longer holds it. *)
let note_eviction t core = function
  | None -> ()
  | Some (line, _state) -> Directory.drop_core t.dir line core

(* Fetch a line into [core]'s L1 with the desired state, accounting for the
   directory lookup at the home slice, remote-owner forwarding, LLC presence
   and DRAM cold fills. Returns latency. *)
let fill t ~core ~line ~addr ~exclusive =
  t.stats.l1_misses <- t.stats.l1_misses + 1;
  let entry =
    Directory.find_or_add t.dir line
      ~home:(Topology.slice_of_line t.topo ~requester:core addr)
  in
  let home = entry.Directory.home in
  let base = l1_ns t +. (2.0 *. lat t core home) +. llc_ns t in
  let owner = entry.Directory.owner in
  let extra =
    if owner >= 0 && owner <> core then begin
      (* Cache-to-cache transfer: home forwards the request to the owner,
         which replies directly to the requester. *)
      t.stats.forwards <- t.stats.forwards + 1;
      let fwd = lat t home owner +. lat t owner core in
      if exclusive then begin
        ignore (Cache.invalidate t.l1.(owner) line);
        Jord_util.Bitset.remove entry.Directory.sharers owner;
        entry.Directory.owner <- -1;
        t.stats.invalidations <- t.stats.invalidations + 1
      end
      else begin
        Cache.set_state t.l1.(owner) line Mesi.Shared;
        entry.Directory.owner <- -1
      end;
      entry.Directory.in_llc <- true;
      fwd
    end
    else if entry.Directory.in_llc then begin
      t.stats.llc_hits <- t.stats.llc_hits + 1;
      0.0
    end
    else begin
      t.stats.dram_fills <- t.stats.dram_fills + 1;
      entry.Directory.in_llc <- true;
      t.cfg.Config.dram_ns
    end
  in
  let inval_cost =
    if exclusive then invalidate_sharers t entry line ~home ~keep:core else 0.0
  in
  let state =
    if exclusive then Mesi.Modified
    else if Jord_util.Bitset.is_empty entry.Directory.sharers then Mesi.Exclusive
    else Mesi.Shared
  in
  note_eviction t core (Cache.insert t.l1.(core) line state);
  Jord_util.Bitset.add entry.Directory.sharers core;
  if exclusive then entry.Directory.owner <- core
  else if state = Mesi.Exclusive then entry.Directory.owner <- core;
  base +. extra +. inval_cost

let read t ~core ~addr =
  let line = line_of t addr in
  match Cache.lookup t.l1.(core) line with
  | Some state when Mesi.can_read state ->
      t.stats.l1_hits <- t.stats.l1_hits + 1;
      l1_ns t
  | Some _ | None -> fill t ~core ~line ~addr ~exclusive:false

let write t ~core ~addr =
  let line = line_of t addr in
  match Cache.lookup t.l1.(core) line with
  | Some state when Mesi.can_write state ->
      t.stats.l1_hits <- t.stats.l1_hits + 1;
      Cache.set_state t.l1.(core) line Mesi.Modified;
      (match Directory.find t.dir line with
      | Some e -> e.Directory.owner <- core
      | None -> ());
      l1_ns t
  | Some Mesi.Shared ->
      (* Upgrade: request ownership from home, invalidate other sharers. *)
      t.stats.upgrades <- t.stats.upgrades + 1;
      let entry =
        Directory.find_or_add t.dir line
          ~home:(Topology.slice_of_line t.topo ~requester:core addr)
      in
      let home = entry.Directory.home in
      let inval = invalidate_sharers t entry line ~home ~keep:core in
      Cache.set_state t.l1.(core) line Mesi.Modified;
      entry.Directory.owner <- core;
      Jord_util.Bitset.add entry.Directory.sharers core;
      l1_ns t +. (2.0 *. lat t core home) +. inval
  | Some (Mesi.Modified | Mesi.Exclusive | Mesi.Invalid) | None ->
      fill t ~core ~line ~addr ~exclusive:true

let atomic t ~core ~addr =
  (* Locked RMW: ownership acquisition plus pipeline serialization. *)
  write t ~core ~addr +. Config.cycles_ns t.cfg 4

let read_block t ~core ~addr ~bytes =
  if bytes <= 0 then 0.0
  else begin
    let line_bytes = t.cfg.Config.line in
    let nlines = Jord_util.Bits.ceil_div bytes line_bytes in
    (* The first line pays full latency; subsequent misses overlap thanks to
       memory-level parallelism and pay a quarter of their latency each. *)
    let total = ref 0.0 in
    for i = 0 to nlines - 1 do
      let l = read t ~core ~addr:(addr + (i * line_bytes)) in
      total := !total +. (if i = 0 then l else l *. 0.25)
    done;
    !total
  end

(* Pull-based telemetry: closures read the live stats record at snapshot
   time, so the coherence hot path carries no extra work. *)
let register_metrics t ?(labels = []) reg =
  let open Jord_telemetry.Registry in
  let c name help extra fn = counter_fn reg ~help ~labels:(labels @ extra) name fn in
  let s = t.stats in
  c "jord_mem_hits_total" "Cache hits by level" [ ("level", "l1") ] (fun () ->
      float_of_int s.l1_hits);
  c "jord_mem_hits_total" "Cache hits by level" [ ("level", "llc") ] (fun () ->
      float_of_int s.llc_hits);
  c "jord_mem_l1_misses_total" "L1 misses (directory consulted)" [] (fun () ->
      float_of_int s.l1_misses);
  c "jord_mem_dram_fills_total" "Lines filled from DRAM" [] (fun () ->
      float_of_int s.dram_fills);
  c "jord_mem_forwards_total" "Cache-to-cache transfers from a remote owner" []
    (fun () -> float_of_int s.forwards);
  c "jord_mem_upgrades_total" "S->M upgrades requiring invalidations" [] (fun () ->
      float_of_int s.upgrades);
  c "jord_mem_invalidations_total" "Remote L1 lines invalidated" [] (fun () ->
      float_of_int s.invalidations)

let sharers t ~addr = Directory.sharers t.dir (line_of t addr)

let home_of t ~addr ~requester =
  let line = line_of t addr in
  let entry =
    Directory.find_or_add t.dir line
      ~home:(Topology.slice_of_line t.topo ~requester addr)
  in
  entry.Directory.home
