(* Engine microbenchmark: allocation and throughput on the dispatch-heavy
   path (many concurrent self-rescheduling events, the shape of the
   orchestrator dispatch loop and executor poll loop).

   Three contenders over the same workload:
     boxed      the pre-refactor design, reproduced here as a reference: a
                boxed-entry binary heap (one record per push, option-boxed
                peek/pop) driven with a freshly allocated closure per event
     fresh      the new indexed-heap engine, still allocating a closure per
                event (what naive call sites do)
     reused     the new engine on its fast path: pre-built closures, zero
                per-event allocation

   Prints minor-heap words per event and wall-clock throughput, and fails
   (exit 1) unless the reused path allocates at least 2x less than the
   boxed reference — the regression guard CI runs in --smoke mode.

     dune exec bench/engine_bench.exe            full run (4M events)
     dune exec bench/engine_bench.exe -- --smoke quick CI guard (200k events) *)

module Engine = Jord_sim.Engine

(* --- Reference implementation: the pre-refactor boxed event queue --- *)

module Boxed = struct
  type 'a entry = { time : int; seq : int; payload : 'a }

  type 'a queue = {
    mutable heap : 'a entry array;
    mutable size : int;
    mutable next_seq : int;
    mutable dummy : 'a entry option;
  }

  let create () = { heap = [||]; size = 0; next_seq = 0; dummy = None }
  let less a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

  let swap t i j =
    let tmp = t.heap.(i) in
    t.heap.(i) <- t.heap.(j);
    t.heap.(j) <- tmp

  let rec sift_up t i =
    if i > 0 then begin
      let parent = (i - 1) / 2 in
      if less t.heap.(i) t.heap.(parent) then begin
        swap t i parent;
        sift_up t parent
      end
    end

  let rec sift_down t i =
    let l = (2 * i) + 1 and r = (2 * i) + 2 in
    let smallest = ref i in
    if l < t.size && less t.heap.(l) t.heap.(!smallest) then smallest := l;
    if r < t.size && less t.heap.(r) t.heap.(!smallest) then smallest := r;
    if !smallest <> i then begin
      swap t i !smallest;
      sift_down t !smallest
    end

  let push t ~time payload =
    let entry = { time; seq = t.next_seq; payload } in
    t.next_seq <- t.next_seq + 1;
    if t.dummy = None then t.dummy <- Some entry;
    let cap = Array.length t.heap in
    if t.size = cap then begin
      let heap = Array.make (Int.max 16 (cap * 2)) entry in
      Array.blit t.heap 0 heap 0 t.size;
      t.heap <- heap
    end;
    t.heap.(t.size) <- entry;
    t.size <- t.size + 1;
    sift_up t (t.size - 1)

  let pop t =
    if t.size = 0 then None
    else begin
      let top = t.heap.(0) in
      t.size <- t.size - 1;
      if t.size > 0 then begin
        t.heap.(0) <- t.heap.(t.size);
        sift_down t 0
      end;
      (match t.dummy with Some d -> t.heap.(t.size) <- d | None -> ());
      Some (top.time, top.payload)
    end

  let peek_time t = if t.size = 0 then None else Some t.heap.(0).time

  type engine = { queue : (engine -> unit) queue; mutable now : int }

  let run e =
    let continue () = match peek_time e.queue with None -> false | Some _ -> true in
    while continue () do
      match pop e.queue with
      | None -> ()
      | Some (time, f) ->
          e.now <- time;
          f e
    done
end

(* --- Workload: [lanes] concurrent events, each rescheduling itself with a
   deterministic per-lane gap until [total] events have fired. Mirrors the
   server: a handful of always-armed control loops dominating the queue. --- *)

let lanes = 64
let gap lane = 1 + (lane * 7 mod 97)

let bench_boxed total =
  let e = Boxed.{ queue = create (); now = 0 } in
  let fired = ref 0 in
  (* Per-event closure allocation, as the old server did via partial
     application. *)
  let rec tick lane (eng : Boxed.engine) =
    incr fired;
    if !fired < total then Boxed.push eng.queue ~time:(eng.now + gap lane) (tick lane)
  in
  for lane = 0 to lanes - 1 do
    Boxed.push e.queue ~time:(gap lane) (tick lane)
  done;
  Boxed.run e;
  !fired

let bench_fresh total =
  let e = Engine.create () in
  let fired = ref 0 in
  let rec tick lane eng =
    incr fired;
    if !fired < total then
      Engine.schedule eng ~after:(gap lane) (fun eng -> tick lane eng)
  in
  for lane = 0 to lanes - 1 do
    Engine.schedule e ~after:(gap lane) (tick lane)
  done;
  Engine.run e;
  !fired

let bench_reused total =
  let e = Engine.create () in
  let fired = ref 0 in
  (* The fast path: one closure per lane for the whole run. *)
  let fns = Array.make lanes (fun (_ : Engine.t) -> ()) in
  Array.iteri
    (fun lane _ ->
      fns.(lane) <-
        (fun eng ->
          incr fired;
          if !fired < total then Engine.schedule eng ~after:(gap lane) fns.(lane)))
    fns;
  for lane = 0 to lanes - 1 do
    Engine.schedule e ~after:(gap lane) fns.(lane)
  done;
  Engine.run e;
  !fired

(* --- Fleet leg: the conservative parallel core on the same event shape.

   [fleet_shards] shards each run [lanes / fleet_shards] self-rescheduling
   lanes, and one courier closure hops shard to shard through the mailbox
   every epoch, so the barrier path is always exercised. The same fleet
   runs once with the sequential runner and once on a domain pool; both
   must execute the identical schedule — equal event counts and equal
   per-shard fire-time checksums — which is the determinism gate. The
   events/sec ratio is printed, and only enforced (> 1x) when the host
   actually has a core per shard. *)

module Fleet = Jord_sim.Fleet
module Shard = Jord_sim.Shard

let fleet_shards = 4
let fleet_lookahead = 4096
let courier_hops = 2_000

(* Per-shard state, touched only by the shard's own domain during an epoch
   (the barrier's fork/join orders the courier's cross-shard handoff). *)
type fleet_cell = { mutable fired : int; mutable checksum : int }

let bench_fleet ~use_pool total =
  let fleet = Fleet.create ~shards:fleet_shards ~lookahead:fleet_lookahead in
  let cells = Array.init fleet_shards (fun _ -> { fired = 0; checksum = 0 }) in
  let per_shard = total / fleet_shards in
  let lanes_per_shard = lanes / fleet_shards in
  for s = 0 to fleet_shards - 1 do
    let eng = Fleet.engine fleet s in
    let cell = cells.(s) in
    let fns = Array.make lanes_per_shard (fun (_ : Engine.t) -> ()) in
    Array.iteri
      (fun lane _ ->
        fns.(lane) <-
          (fun eng ->
            cell.fired <- cell.fired + 1;
            cell.checksum <- cell.checksum + ((Engine.now eng * 31) lxor lane);
            if cell.fired < per_shard then
              Engine.schedule eng ~after:(gap ((s * lanes_per_shard) + lane))
                fns.(lane)))
      fns;
    for lane = 0 to lanes_per_shard - 1 do
      Engine.schedule eng ~after:(gap ((s * lanes_per_shard) + lane)) fns.(lane)
    done
  done;
  let hops = ref courier_hops in
  let rec courier at_shard eng =
    let cell = cells.(at_shard) in
    cell.checksum <- cell.checksum + (Engine.now eng * 7);
    decr hops;
    if !hops > 0 then begin
      let dst = (at_shard + 1) mod fleet_shards in
      let src = Fleet.shard fleet at_shard in
      Shard.post src ~dst
        ~at:(Engine.now eng + fleet_lookahead)
        ~sid:at_shard (courier dst)
    end
  in
  Engine.schedule (Fleet.engine fleet 0) ~after:1 (courier 0);
  let t0 = Unix.gettimeofday () in
  if use_pool then
    Jord_par.Pool.with_pool ~jobs:fleet_shards (fun pool ->
        let runner f n =
          ignore (Jord_par.Pool.parmap pool f (List.init n Fun.id) : unit list)
        in
        Fleet.run ~runner fleet)
  else Fleet.run fleet;
  let dt = Unix.gettimeofday () -. t0 in
  let processed = Fleet.processed fleet in
  let checksum =
    Array.fold_left (fun acc c -> acc lxor c.checksum) 0 cells
  in
  (processed, checksum, dt)

let fleet_leg total =
  ignore (bench_fleet ~use_pool:false (total / 10));
  let p_seq, c_seq, dt_seq = bench_fleet ~use_pool:false total in
  let p_par, c_par, dt_par = bench_fleet ~use_pool:true total in
  let rate dt n = float_of_int n /. dt /. 1e6 in
  Printf.printf "fleet/seq  %9d events  %7.2f Mevents/s (shards=%d, one domain)\n%!"
    p_seq (rate dt_seq p_seq) fleet_shards;
  Printf.printf "fleet/par  %9d events  %7.2f Mevents/s (shards=%d, pooled domains)\n%!"
    p_par (rate dt_par p_par) fleet_shards;
  if p_seq <> p_par || c_seq <> c_par then begin
    Printf.eprintf
      "FAIL: pooled fleet diverged from sequential schedule \
       (events %d vs %d, checksum %d vs %d)\n"
      p_seq p_par c_seq c_par;
    exit 1
  end;
  let speedup = dt_seq /. Float.max dt_par 1e-9 in
  let cores = Domain.recommended_domain_count () in
  Printf.printf "fleet speedup: %.2fx on %d cores\n%!" speedup cores;
  Printf.printf "OK: pooled fleet executes the identical schedule (checksum %d)\n%!"
    c_seq;
  if cores >= fleet_shards && speedup <= 1.0 then begin
    Printf.eprintf
      "FAIL: fleet must beat one domain when a core per shard is available \
       (got %.2fx on %d cores)\n"
      speedup cores;
    exit 1
  end

let measure name f total =
  Gc.full_major ();
  let w0 = Gc.minor_words () in
  let t0 = Unix.gettimeofday () in
  let fired = f total in
  let dt = Unix.gettimeofday () -. t0 in
  let words = Gc.minor_words () -. w0 in
  let per_event = words /. float_of_int fired in
  Printf.printf "%-8s %9d events  %6.2f words/event  %7.2f Mevents/s\n%!" name fired
    per_event
    (float_of_int fired /. dt /. 1e6);
  per_event

let () =
  let smoke = Array.exists (( = ) "--smoke") Sys.argv in
  let total = if smoke then 200_000 else 4_000_000 in
  Printf.printf "engine dispatch-path microbenchmark (%d lanes, %d events)\n%!" lanes
    total;
  (* Warm both engines once so array growth is off the measured path. *)
  ignore (bench_boxed 10_000 : int);
  ignore (bench_reused 10_000 : int);
  print_string "-- measured --\n";
  let boxed = measure "boxed" bench_boxed total in
  let fresh = measure "fresh" bench_fresh total in
  let reused = measure "reused" bench_reused total in
  let ratio_reused = boxed /. Float.max reused 1e-9 in
  let ratio_fresh = boxed /. Float.max fresh 1e-9 in
  Printf.printf
    "allocation reduction vs boxed reference: reused %.1fx, fresh closures %.1fx\n%!"
    ratio_reused ratio_fresh;
  if ratio_reused < 2.0 then begin
    Printf.eprintf
      "FAIL: reused-closure path must allocate >= 2x less than the boxed reference \
       (got %.2fx)\n"
      ratio_reused;
    exit 1
  end;
  print_string "OK: >= 2x fewer allocations per event on the dispatch path\n";
  Printf.printf "-- fleet (conservative parallel, %d shards) --\n%!" fleet_shards;
  fleet_leg total
