(* Engine microbenchmark: allocation and throughput on the dispatch-heavy
   path (many concurrent self-rescheduling events, the shape of the
   orchestrator dispatch loop and executor poll loop).

   Three contenders over the same workload:
     boxed      the pre-refactor design, reproduced here as a reference: a
                boxed-entry binary heap (one record per push, option-boxed
                peek/pop) driven with a freshly allocated closure per event
     fresh      the new indexed-heap engine, still allocating a closure per
                event (what naive call sites do)
     reused     the new engine on its fast path: pre-built closures, zero
                per-event allocation

   Prints minor-heap words per event and wall-clock throughput, and fails
   (exit 1) unless the reused path allocates at least 2x less than the
   boxed reference — the regression guard CI runs in --smoke mode.

     dune exec bench/engine_bench.exe            full run (4M events)
     dune exec bench/engine_bench.exe -- --smoke quick CI guard (200k events) *)

module Engine = Jord_sim.Engine

(* --- Reference implementation: the pre-refactor boxed event queue --- *)

module Boxed = struct
  type 'a entry = { time : int; seq : int; payload : 'a }

  type 'a queue = {
    mutable heap : 'a entry array;
    mutable size : int;
    mutable next_seq : int;
    mutable dummy : 'a entry option;
  }

  let create () = { heap = [||]; size = 0; next_seq = 0; dummy = None }
  let less a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

  let swap t i j =
    let tmp = t.heap.(i) in
    t.heap.(i) <- t.heap.(j);
    t.heap.(j) <- tmp

  let rec sift_up t i =
    if i > 0 then begin
      let parent = (i - 1) / 2 in
      if less t.heap.(i) t.heap.(parent) then begin
        swap t i parent;
        sift_up t parent
      end
    end

  let rec sift_down t i =
    let l = (2 * i) + 1 and r = (2 * i) + 2 in
    let smallest = ref i in
    if l < t.size && less t.heap.(l) t.heap.(!smallest) then smallest := l;
    if r < t.size && less t.heap.(r) t.heap.(!smallest) then smallest := r;
    if !smallest <> i then begin
      swap t i !smallest;
      sift_down t !smallest
    end

  let push t ~time payload =
    let entry = { time; seq = t.next_seq; payload } in
    t.next_seq <- t.next_seq + 1;
    if t.dummy = None then t.dummy <- Some entry;
    let cap = Array.length t.heap in
    if t.size = cap then begin
      let heap = Array.make (Int.max 16 (cap * 2)) entry in
      Array.blit t.heap 0 heap 0 t.size;
      t.heap <- heap
    end;
    t.heap.(t.size) <- entry;
    t.size <- t.size + 1;
    sift_up t (t.size - 1)

  let pop t =
    if t.size = 0 then None
    else begin
      let top = t.heap.(0) in
      t.size <- t.size - 1;
      if t.size > 0 then begin
        t.heap.(0) <- t.heap.(t.size);
        sift_down t 0
      end;
      (match t.dummy with Some d -> t.heap.(t.size) <- d | None -> ());
      Some (top.time, top.payload)
    end

  let peek_time t = if t.size = 0 then None else Some t.heap.(0).time

  type engine = { queue : (engine -> unit) queue; mutable now : int }

  let run e =
    let continue () = match peek_time e.queue with None -> false | Some _ -> true in
    while continue () do
      match pop e.queue with
      | None -> ()
      | Some (time, f) ->
          e.now <- time;
          f e
    done
end

(* --- Workload: [lanes] concurrent events, each rescheduling itself with a
   deterministic per-lane gap until [total] events have fired. Mirrors the
   server: a handful of always-armed control loops dominating the queue. --- *)

let lanes = 64
let gap lane = 1 + (lane * 7 mod 97)

let bench_boxed total =
  let e = Boxed.{ queue = create (); now = 0 } in
  let fired = ref 0 in
  (* Per-event closure allocation, as the old server did via partial
     application. *)
  let rec tick lane (eng : Boxed.engine) =
    incr fired;
    if !fired < total then Boxed.push eng.queue ~time:(eng.now + gap lane) (tick lane)
  in
  for lane = 0 to lanes - 1 do
    Boxed.push e.queue ~time:(gap lane) (tick lane)
  done;
  Boxed.run e;
  !fired

let bench_fresh total =
  let e = Engine.create () in
  let fired = ref 0 in
  let rec tick lane eng =
    incr fired;
    if !fired < total then
      Engine.schedule eng ~after:(gap lane) (fun eng -> tick lane eng)
  in
  for lane = 0 to lanes - 1 do
    Engine.schedule e ~after:(gap lane) (tick lane)
  done;
  Engine.run e;
  !fired

let bench_reused total =
  let e = Engine.create () in
  let fired = ref 0 in
  (* The fast path: one closure per lane for the whole run. *)
  let fns = Array.make lanes (fun (_ : Engine.t) -> ()) in
  Array.iteri
    (fun lane _ ->
      fns.(lane) <-
        (fun eng ->
          incr fired;
          if !fired < total then Engine.schedule eng ~after:(gap lane) fns.(lane)))
    fns;
  for lane = 0 to lanes - 1 do
    Engine.schedule e ~after:(gap lane) fns.(lane)
  done;
  Engine.run e;
  !fired

let measure name f total =
  Gc.full_major ();
  let w0 = Gc.minor_words () in
  let t0 = Unix.gettimeofday () in
  let fired = f total in
  let dt = Unix.gettimeofday () -. t0 in
  let words = Gc.minor_words () -. w0 in
  let per_event = words /. float_of_int fired in
  Printf.printf "%-8s %9d events  %6.2f words/event  %7.2f Mevents/s\n%!" name fired
    per_event
    (float_of_int fired /. dt /. 1e6);
  per_event

let () =
  let smoke = Array.exists (( = ) "--smoke") Sys.argv in
  let total = if smoke then 200_000 else 4_000_000 in
  Printf.printf "engine dispatch-path microbenchmark (%d lanes, %d events)\n%!" lanes
    total;
  (* Warm both engines once so array growth is off the measured path. *)
  ignore (bench_boxed 10_000 : int);
  ignore (bench_reused 10_000 : int);
  print_string "-- measured --\n";
  let boxed = measure "boxed" bench_boxed total in
  let fresh = measure "fresh" bench_fresh total in
  let reused = measure "reused" bench_reused total in
  let ratio_reused = boxed /. Float.max reused 1e-9 in
  let ratio_fresh = boxed /. Float.max fresh 1e-9 in
  Printf.printf
    "allocation reduction vs boxed reference: reused %.1fx, fresh closures %.1fx\n%!"
    ratio_reused ratio_fresh;
  if ratio_reused < 2.0 then begin
    Printf.eprintf
      "FAIL: reused-closure path must allocate >= 2x less than the boxed reference \
       (got %.2fx)\n"
      ratio_reused;
    exit 1
  end;
  print_string "OK: >= 2x fewer allocations per event on the dispatch path\n"
