(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation, runs Bechamel microbenchmarks of the core data structures
   (host-side wall-clock of this implementation), and emits the structured
   BENCH_*.json reports the CI perf-regression gate compares against
   bench/baseline.json.

   Usage:
     bench/main.exe                 run everything (full fidelity)
     bench/main.exe --quick         shorter simulations
     bench/main.exe table4 fig9 ... run selected experiments
     bench/main.exe micro           only the Bechamel microbenchmarks
     bench/main.exe --jobs=N        run sweep points on an N-domain pool
                                    (reports stay byte-identical to -j 1)
     bench/main.exe --json-out=D    run the structured suite (engine, vm,
                                    server, cluster) and write
                                    D/BENCH_<experiment>.json
     bench/main.exe --selftest-par  assert the pool is deterministic and
                                    measurably faster (CI bench smoke)
     bench/main.exe --metrics-dir=D dump each figure point's machine
                                    counters as D/<point>.prom

   Unknown experiment names list the valid ones and exit 2. Timing chatter
   goes to stderr so stdout is diffable across --jobs values. *)

let quick = ref false
let seeds = ref 1
let metrics_dir = ref None
let json_out = ref None
let jobs = ref 1
let selftest_par = ref false

let section title =
  let bar = String.make 74 '=' in
  Printf.printf "\n%s\n== %s\n%s\n%!" bar title bar

let experiments : (string * (unit -> unit)) list =
  [
    ( "table4",
      fun () ->
        section "Table 4: VMA and PD operation latencies";
        print_string (Jord_exp.Table4.report ~iters:(if !quick then 1500 else 4000) ()) );
    ( "fig9",
      fun () ->
        section "Figure 9: p99 latency vs load (NightCore / Jord / Jord_NI)";
        print_string (Jord_exp.Fig9.report ~quick:!quick ~seeds:!seeds ()) );
    ( "fig10",
      fun () ->
        section "Figure 10: CDF of function service time in Jord";
        print_string (Jord_exp.Fig10.report ~quick:!quick ()) );
    ( "fig11",
      fun () ->
        section "Figure 11: service-time breakdown of the selected functions";
        print_string (Jord_exp.Fig11.report ~quick:!quick ()) );
    ( "fig12",
      fun () ->
        section "Figure 12: sensitivity to I-VLB / D-VLB entries";
        print_string (Jord_exp.Fig12.report ~quick:!quick ()) );
    ( "fig13",
      fun () ->
        section "Figure 13: Jord vs Jord_BT (B-tree VMA table)";
        print_string (Jord_exp.Fig13.report ~quick:!quick ()) );
    ( "fig14",
      fun () ->
        section "Figure 14: scalability with system size";
        print_string (Jord_exp.Fig14.report ~quick:!quick ()) );
    ( "background",
      fun () ->
        section "Background (paper 2.1): the FaaS overhead ladder";
        print_string (Jord_exp.Background.report ()) );
    ( "motivation",
      fun () ->
        section "Motivation (paper 2.2): page-based VM vs Jord's PrivLib";
        print_string (Jord_exp.Motivation.report ~iters:(if !quick then 100 else 300) ()) );
    ( "claims",
      fun () ->
        section "Paper-claim checklist (programmatic verification)";
        print_string (Jord_exp.Claims.report ~quick:!quick ()) );
    ( "ablation",
      fun () ->
        section "Ablations (beyond the paper): dispatch policy, grouping, queues";
        print_string (Jord_exp.Ablations.report ~quick:!quick ()) );
  ]

(* --- Bechamel microbenchmarks: host-side cost of the core structures --- *)

let micro () =
  section "Bechamel microbenchmarks (host wall-clock of the implementation)";
  let open Bechamel in
  let open Toolkit in
  let cfg = Jord_vm.Va.default_config in
  let mk_vte index =
    let sc = Jord_vm.Size_class.of_size 4096 in
    let base = Jord_vm.Va.encode cfg sc ~index ~offset:0 in
    Jord_vm.Vte.create ~base ~bytes:4096 ~phys:(0x100000 + (index * 4096)) ()
  in
  (* Pre-populated structures shared by the lookup benchmarks. *)
  let plain = Jord_vm.Vma_table.create cfg in
  let btree = Jord_vm.Vma_btree.create () in
  for i = 0 to 999 do
    ignore (Jord_vm.Vma_table.insert plain (mk_vte i));
    ignore (Jord_vm.Vma_btree.insert btree (mk_vte i))
  done;
  let probe = Jord_vm.Vte.base (mk_vte 500) + 64 in
  let vlb = Jord_vm.Vlb.create ~entries:16 in
  for i = 0 to 15 do
    Jord_vm.Vlb.fill vlb ~vte_addr:i (mk_vte i)
  done;
  let memsys =
    Jord_arch.Memsys.create (Jord_arch.Topology.create Jord_arch.Config.default)
  in
  let priv =
    let m = Jord_arch.Memsys.create (Jord_arch.Topology.create Jord_arch.Config.default) in
    let hw =
      Jord_vm.Hw.create ~memsys:m ~store:(Jord_vm.Vma_store.plain cfg) ~va_cfg:cfg ()
    in
    Jord_privlib.Privlib.create ~hw ~os:(Jord_privlib.Os_facade.create ())
  in
  let counter = ref 0 in
  (* Telemetry hot-path instruments: these bound the overhead an owned
     counter/histogram adds when updated from simulation code (pull
     collectors add literally nothing until snapshot). *)
  let reg = Jord_telemetry.Registry.create () in
  let tel_counter = Jord_telemetry.Registry.counter reg "bench_ctr_total" in
  let tel_hist = Jord_telemetry.Registry.histogram reg "bench_hist_ns" in
  let tests =
    [
      Test.make ~name:"telemetry counter inc"
        (Staged.stage (fun () -> Jord_telemetry.Registry.Counter.inc tel_counter));
      Test.make ~name:"telemetry histogram observe"
        (Staged.stage (fun () ->
             Jord_telemetry.Registry.Hist.observe tel_hist 1234.5));
      Test.make ~name:"plain-list lookup"
        (Staged.stage (fun () -> ignore (Jord_vm.Vma_table.lookup plain ~va:probe)));
      Test.make ~name:"b-tree lookup"
        (Staged.stage (fun () -> ignore (Jord_vm.Vma_btree.lookup btree ~va:probe)));
      Test.make ~name:"vlb lookup"
        (Staged.stage (fun () ->
             ignore (Jord_vm.Vlb.lookup vlb ~va:(Jord_vm.Vte.base (mk_vte 7) + 5))));
      Test.make ~name:"memsys read (hit)"
        (Staged.stage (fun () -> ignore (Jord_arch.Memsys.read memsys ~core:0 ~addr:0x4000)));
      Test.make ~name:"privlib mmap+munmap"
        (Staged.stage (fun () ->
             let va, _ =
               Jord_privlib.Privlib.mmap priv ~core:0 ~bytes:4096 ~perm:Jord_vm.Perm.rw ()
             in
             ignore (Jord_privlib.Privlib.munmap priv ~core:0 ~va)));
      Test.make ~name:"privlib cget+cput"
        (Staged.stage (fun () ->
             let pd, _ = Jord_privlib.Privlib.cget priv ~core:0 in
             ignore (Jord_privlib.Privlib.cput priv ~core:0 ~pd)));
      Test.make ~name:"event queue push+pop x16"
        (Staged.stage (fun () ->
             let q = Jord_sim.Event_queue.create () in
             incr counter;
             for i = 0 to 15 do
               ignore
                 (Jord_sim.Event_queue.push q ~time:((!counter + i) mod 97) i
                   : Jord_sim.Event_queue.handle)
             done;
             while Jord_sim.Event_queue.pop q <> None do
               ()
             done));
    ]
  in
  let benchmark test =
    let quota = Time.second (if !quick then 0.2 else 0.5) in
    Benchmark.all
      (Benchmark.cfg ~limit:2000 ~quota ~kde:(Some 1000) ())
      Instance.[ monotonic_clock ]
      test
  in
  let analyze results =
    Analyze.all
      (Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |])
      Instance.monotonic_clock results
  in
  List.iter
    (fun test ->
      let results = analyze (benchmark (Test.make_grouped ~name:"g" [ test ])) in
      Hashtbl.iter
        (fun name ols ->
          match Analyze.OLS.estimates ols with
          | Some [ est ] -> Printf.printf "%-32s %10.1f ns/op\n%!" name est
          | Some _ | None -> Printf.printf "%-32s (no estimate)\n%!" name)
        results)
    tests

(* Run one structured-suite experiment: print its table and, when
   --json-out is set, write its BENCH_<name>.json. *)
let run_suite name =
  section (Printf.sprintf "bench suite: %s" name);
  match Jord_exp.Benchmarks.run_one ~quick:!quick name with
  | Error msg ->
      prerr_endline msg;
      exit 2
  | Ok doc ->
      print_string (Jord_exp.Benchmarks.render doc);
      (match !json_out with
      | None -> ()
      | Some dir ->
          let path = Jord_util.Bench_json.write_dir ~dir doc in
          Printf.eprintf "wrote %s\n%!" path)

let prefixed_arg ~prefix a =
  let n = String.length prefix in
  if String.length a > n && String.sub a 0 n = prefix then
    Some (String.sub a n (String.length a - n))
  else None

let set_jobs_arg v =
  match int_of_string_opt v with
  | Some n when n >= 1 -> jobs := n
  | Some _ | None ->
      prerr_endline "bench: --jobs must be an integer >= 1";
      exit 2

let () =
  (* Flags accept both --flag=V and --flag V; everything else is an
     experiment name. *)
  let rec parse acc = function
    | [] -> List.rev acc
    | ("--quick" | "-q") :: rest ->
        quick := true;
        parse acc rest
    | "--selftest-par" :: rest ->
        selftest_par := true;
        parse acc rest
    | "--seeds" :: v :: rest ->
        seeds := int_of_string v;
        parse acc rest
    | "--metrics-dir" :: v :: rest ->
        metrics_dir := Some v;
        parse acc rest
    | "--json-out" :: v :: rest ->
        json_out := Some v;
        parse acc rest
    | ("--jobs" | "-j") :: v :: rest ->
        set_jobs_arg v;
        parse acc rest
    | a :: rest -> (
        match prefixed_arg ~prefix:"--seeds=" a with
        | Some v ->
            seeds := int_of_string v;
            parse acc rest
        | None -> (
            match prefixed_arg ~prefix:"--metrics-dir=" a with
            | Some v ->
                metrics_dir := Some v;
                parse acc rest
            | None -> (
                match prefixed_arg ~prefix:"--json-out=" a with
                | Some v ->
                    json_out := Some v;
                    parse acc rest
                | None -> (
                    match prefixed_arg ~prefix:"--jobs=" a with
                    | Some v ->
                        set_jobs_arg v;
                        parse acc rest
                    | None -> parse (a :: acc) rest))))
  in
  let args = parse [] (List.tl (Array.to_list Sys.argv)) in
  Jord_exp.Exp_common.set_jobs !jobs;
  if !selftest_par then begin
    match Jord_exp.Benchmarks.par_selftest ~quick:!quick () with
    | Ok summary ->
        print_endline summary;
        exit 0
    | Error msg ->
        prerr_endline msg;
        exit 1
  end;
  (match !metrics_dir with
  | None -> ()
  | Some dir ->
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      Jord_exp.Exp_common.metrics_sink :=
        Some
          (fun ~name reg ->
            Jord_telemetry.Export.write_file
              ~path:(Filename.concat dir (name ^ ".prom"))
              (Jord_telemetry.Export.to_prometheus reg)));
  let suite = Jord_exp.Benchmarks.names in
  let known = List.map fst experiments @ [ "micro" ] @ suite in
  List.iter
    (fun a ->
      if not (List.mem a known) then begin
        Printf.eprintf "unknown experiment %S; valid experiments: %s\n" a
          (String.concat ", " known);
        exit 2
      end)
    args;
  let selected =
    if args <> [] then args
    else if !json_out <> None then
      (* --json-out with no names: just the structured suite, which is what
         the CI perf-regression job consumes. *)
      suite
    else known
  in
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun name ->
      if name = "micro" then micro ()
      else if Jord_exp.Benchmarks.is_known name then run_suite name
      else (List.assoc name experiments) ())
    selected;
  Printf.eprintf "\n[bench completed in %.1f s]\n" (Unix.gettimeofday () -. t0)
