(* Perf-regression comparator: check a directory of BENCH_*.json reports
   (bench/main.exe --json-out DIR, or jordctl bench --json-out DIR) against
   the checked-in baseline.

     compare.exe --baseline bench/baseline.json --dir bench-out
     compare.exe --dir bench-out --write-baseline bench/baseline.json

   Gate semantics (see Jord_util.Bench_json): deterministic "count" metrics
   out of tolerance are hard failures (exit 1); host wall-clock "time"
   metrics are advisory only. A baseline experiment with no report in the
   directory is a hard failure too.

   --write-baseline refreshes the baseline from the reports in --dir —
   check the diff in and say why the numbers moved. *)

module B = Jord_util.Bench_json

let usage () =
  prerr_endline
    "usage: compare.exe --dir DIR (--baseline FILE [--tolerance T] | \
     --write-baseline FILE [--tolerance T])";
  exit 2

let () =
  let dir = ref None
  and baseline = ref None
  and write_baseline = ref None
  and tolerance = ref 0.2 in
  let rec parse = function
    | [] -> ()
    | "--dir" :: v :: rest ->
        dir := Some v;
        parse rest
    | "--baseline" :: v :: rest ->
        baseline := Some v;
        parse rest
    | "--write-baseline" :: v :: rest ->
        write_baseline := Some v;
        parse rest
    | "--tolerance" :: v :: rest -> (
        match float_of_string_opt v with
        | Some t when t >= 0.0 ->
            tolerance := t;
            parse rest
        | Some _ | None -> usage ())
    | _ -> usage ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  let dir = match !dir with Some d -> d | None -> usage () in
  let read_doc path =
    match B.read_file path with
    | Ok doc -> doc
    | Error msg ->
        Printf.eprintf "compare: %s: %s\n" path msg;
        exit 2
  in
  let docs_in_dir () =
    Sys.readdir dir |> Array.to_list |> List.sort compare
    |> List.filter (fun f ->
           String.length f > 6
           && String.sub f 0 6 = "BENCH_"
           && Filename.check_suffix f ".json")
    |> List.map (fun f -> read_doc (Filename.concat dir f))
  in
  match (!baseline, !write_baseline) with
  | None, None | Some _, Some _ -> usage ()
  | None, Some out ->
      let b = { B.default_tolerance = !tolerance; experiments = docs_in_dir () } in
      if b.B.experiments = [] then begin
        Printf.eprintf "compare: no BENCH_*.json reports in %s\n" dir;
        exit 2
      end;
      let oc = open_out out in
      output_string oc (B.baseline_to_string b);
      output_char oc '\n';
      close_out oc;
      Printf.printf "wrote %s (%d experiments, default tolerance %g)\n" out
        (List.length b.B.experiments) !tolerance
  | Some path, None -> (
      match B.read_baseline path with
      | Error msg ->
          Printf.eprintf "compare: %s: %s\n" path msg;
          exit 2
      | Ok b ->
          let verdicts =
            List.concat_map
              (fun (base_doc : B.doc) ->
                let report = Filename.concat dir (B.filename base_doc.B.experiment) in
                if Sys.file_exists report then
                  B.compare_docs ~default_tolerance:b.B.default_tolerance
                    ~baseline:base_doc ~current:(read_doc report) ()
                else
                  [
                    {
                      B.v_experiment = base_doc.B.experiment;
                      v_metric = "<report>";
                      v_kind = B.Count;
                      v_baseline = nan;
                      v_current = nan;
                      v_deviation = infinity;
                      v_allowed = b.B.default_tolerance;
                      v_status = B.Missing;
                    };
                  ])
              b.B.experiments
          in
          print_string (B.render_verdicts verdicts);
          let advisories =
            List.length (List.filter (fun v -> v.B.v_status = B.Advisory) verdicts)
          in
          if advisories > 0 then
            Printf.printf
              "%d wall-clock metric(s) out of tolerance (advisory only)\n" advisories;
          if B.has_failure verdicts then begin
            prerr_endline
              "perf regression: deterministic metric(s) moved beyond tolerance";
            exit 1
          end
          else print_endline "perf-regression gate: ok")
