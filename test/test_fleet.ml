(* Fleet layer: LB policy units, autoscaler hysteresis, spec grammars, the
   SLO rollup, and the tentpole property — a fleet run with autoscaling and
   flash-crowd traffic is byte-identical at any shard count. *)

module Fleet = Jord_fleet.Fleet
module Lb = Jord_fleet.Lb
module Autoscaler = Jord_fleet.Autoscaler
module Fserver = Jord_fleet.Fserver
module Traffic = Jord_workloads.Traffic
module Rollup = Jord_obsv.Rollup
module Slo = Jord_obsv.Slo

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- Lb --- *)

let mk_view ?(routable = fun _ -> true) ~outstanding ~n ~spill () =
  { Lb.n; routable; outstanding = (fun i -> outstanding.(i)); spill }

let test_lb_round_robin () =
  let lb = Lb.create Lb.Round_robin in
  let v = mk_view ~outstanding:[| 0; 0; 0 |] ~n:3 ~spill:4 () in
  let picks = List.init 6 (fun _ -> fst (Option.get (Lb.pick lb v ~entry:0))) in
  check "cycles" true (picks = [ 0; 1; 2; 0; 1; 2 ]);
  let v =
    mk_view ~routable:(fun i -> i <> 1) ~outstanding:[| 0; 0; 0 |] ~n:3 ~spill:4 ()
  in
  let picks = List.init 4 (fun _ -> fst (Option.get (Lb.pick lb v ~entry:0))) in
  check "skips unroutable" true (List.for_all (fun p -> p <> 1) picks)

let test_lb_least_outstanding () =
  let lb = Lb.create Lb.Least_outstanding in
  let out = [| 3; 1; 1; 5 |] in
  let v = mk_view ~outstanding:out ~n:4 ~spill:4 () in
  check_int "min wins, lowest id ties" 1 (fst (Option.get (Lb.pick lb v ~entry:0)));
  let v = mk_view ~routable:(fun _ -> false) ~outstanding:out ~n:4 ~spill:4 () in
  check "none routable" true (Lb.pick lb v ~entry:0 = None)

let test_lb_affinity () =
  let lb = Lb.create Lb.Affinity in
  let out = [| 0; 0; 0 |] in
  let v = mk_view ~outstanding:out ~n:3 ~spill:2 () in
  (* First route opens the entry on the least-outstanding server (0). *)
  let s0, hit0 = Option.get (Lb.pick lb v ~entry:7) in
  check "first is a cold route" true ((s0, hit0) = (0, false));
  out.(0) <- 1;
  (* Below the spill threshold the warm server keeps winning. *)
  let s1, hit1 = Option.get (Lb.pick lb v ~entry:7) in
  check "warm hit" true ((s1, hit1) = (0, true));
  out.(0) <- 2;
  (* At the threshold it spills to a fresh server and remembers it. *)
  let s2, hit2 = Option.get (Lb.pick lb v ~entry:7) in
  check "spills when saturated" true ((s2, hit2) = (1, false));
  out.(1) <- 1;
  let s3, hit3 = Option.get (Lb.pick lb v ~entry:7) in
  check "spilled server is now warm" true ((s3, hit3) = (1, true));
  (* Other entries are unaffected by entry 7's warm set. *)
  let _, hit4 = Option.get (Lb.pick lb v ~entry:8) in
  check "separate entries separate warmth" true (hit4 = false);
  (* Forgetting a server drops its warm routes. *)
  Lb.forget lb 0;
  out.(0) <- 0;
  out.(1) <- 0;
  let s5, hit5 = Option.get (Lb.pick lb v ~entry:7) in
  check "forgotten server no longer warm-preferred" true ((s5, hit5) = (1, true));
  ignore s5

(* --- Autoscaler --- *)

let test_autoscaler_hysteresis () =
  let spec =
    { Autoscaler.default with Autoscaler.min_servers = 2; max_servers = 10; up_after = 2; down_after = 3; step = 4 }
  in
  let ctl = Autoscaler.control spec in
  let d = Autoscaler.decide ctl ~queue:0.0 ~booting:0 in
  check "first breach holds" true (d ~util:0.9 ~up:4 = Autoscaler.Hold);
  check "second breach scales up by step" true (d ~util:0.9 ~up:4 = Autoscaler.Up 4);
  check "streak resets after action" true (d ~util:0.9 ~up:8 = Autoscaler.Hold);
  check "clamped at max" true (d ~util:0.9 ~up:8 = Autoscaler.Up 2);
  check "mid-band resets streaks" true (d ~util:0.5 ~up:10 = Autoscaler.Hold);
  check "down 1" true (d ~util:0.1 ~up:10 = Autoscaler.Hold);
  check "down 2" true (d ~util:0.1 ~up:10 = Autoscaler.Hold);
  check "down 3 drains, clamped to min" true (d ~util:0.1 ~up:10 = Autoscaler.Down 4);
  (* Queue pressure counts as up-pressure even at low utilization. *)
  let ctl2 = Autoscaler.control spec in
  let d2 = Autoscaler.decide ctl2 ~booting:0 in
  check "queue breach 1" true (d2 ~util:0.1 ~queue:5.0 ~up:4 = Autoscaler.Hold);
  check "queue breach 2 scales" true (d2 ~util:0.1 ~queue:5.0 ~up:4 = Autoscaler.Up 4);
  (* Booting capacity counts toward max. *)
  let ctl3 = Autoscaler.control { spec with Autoscaler.up_after = 1 } in
  check "booting counts toward max" true
    (Autoscaler.decide ctl3 ~util:0.9 ~queue:0.0 ~up:6 ~booting:4 = Autoscaler.Hold)

let test_autoscaler_spec () =
  List.iter
    (fun (name, spec) ->
      (match Autoscaler.validate spec with
      | Ok () -> ()
      | Error m -> Alcotest.failf "preset %s invalid: %s" name m);
      check (name ^ " roundtrips") true
        (Autoscaler.parse (Autoscaler.to_string spec) = Ok spec))
    Autoscaler.presets;
  (match Autoscaler.parse "fast,min=8,max=64,boot-us=123" with
  | Ok s ->
      check "min" true (s.Autoscaler.min_servers = 8);
      check "max" true (s.Autoscaler.max_servers = 64);
      check "boot" true (s.Autoscaler.boot_us = 123.0)
  | Error m -> Alcotest.fail m);
  let bad s =
    match Autoscaler.parse s with
    | Ok _ -> Alcotest.failf "expected parse error for %S" s
    | Error _ -> ()
  in
  bad "min=0";
  bad "min=5,max=2";
  bad "up=0.2,down=0.5";
  bad "interval-us=0";
  bad "nosuchkey=1";
  check "resolve max=0 -> fleet" true
    (Autoscaler.resolve Autoscaler.default ~fleet:33
    = Ok { Autoscaler.default with Autoscaler.max_servers = 33 });
  check "resolve rejects max > fleet" true
    (match Autoscaler.resolve { Autoscaler.default with Autoscaler.max_servers = 64 } ~fleet:8 with
    | Error _ -> true
    | Ok _ -> false)

(* --- Rollup --- *)

let objective =
  {
    Slo.default with
    Slo.name = "t";
    threshold_ps = 10_000_000 (* 10 us *);
    window_ps = 1_000_000_000 (* 1 ms *);
    budget = 0.1;
    fast_windows = 1;
    slow_windows = 2;
    burn_threshold = 1.0;
  }

let test_rollup_verdicts () =
  let r = Rollup.create [ objective ] in
  for i = 0 to 99 do
    Rollup.observe r ~at_ps:(i * 1_000_000) ~fn:"f" ~latency_ps:5_000_000 ~shed:false
  done;
  Rollup.finish r ~now_ps:2_000_000_000;
  (match Rollup.rows r with
  | [ row ] ->
      check_int "requests" 100 row.Rollup.r_requests;
      check_int "bad" 0 row.Rollup.r_bad;
      check "met" true (row.Rollup.r_verdict = "met")
  | _ -> Alcotest.fail "one row expected");
  (* All-bad traffic burns the budget and fires; finishing at the window
     edge (before any empty recovery window) leaves the alert firing. *)
  let r = Rollup.create [ objective ] in
  for i = 0 to 99 do
    Rollup.observe r ~at_ps:(i * 10_000_000) ~fn:"f" ~latency_ps:0 ~shed:true
  done;
  Rollup.finish r ~now_ps:1_000_000_000;
  (match Rollup.rows r with
  | [ row ] ->
      check_int "all bad" 100 row.Rollup.r_bad;
      check "fired at least once" true (row.Rollup.r_fired >= 1);
      check "verdict is firing" true (row.Rollup.r_verdict = "FIRING")
  | _ -> Alcotest.fail "one row expected");
  (* Once traffic recovers (empty windows close), the alert resolves and
     the verdict downgrades to VIOLATED — budget burnt, not on fire. *)
  let r = Rollup.create [ objective ] in
  for i = 0 to 99 do
    Rollup.observe r ~at_ps:(i * 10_000_000) ~fn:"f" ~latency_ps:0 ~shed:true
  done;
  Rollup.finish r ~now_ps:5_000_000_000;
  (match Rollup.rows r with
  | [ row ] ->
      check "resolved after recovery" true (row.Rollup.r_resolved >= 1);
      check "verdict violated" true (row.Rollup.r_verdict = "VIOLATED")
  | _ -> Alcotest.fail "one row expected");
  (* Empty rollup reports no-data and no transitions. *)
  let r = Rollup.create [ objective ] in
  Rollup.finish r ~now_ps:1_000_000_000;
  match Rollup.rows r with
  | [ row ] ->
      check "no-data" true (row.Rollup.r_verdict = "no-data");
      check "no transitions" true (Rollup.transitions r = [])
  | _ -> Alcotest.fail "one row expected"

(* --- the fleet itself --- *)

let ci_shape =
  match Traffic.parse "ci,users=20000,rate=6" with
  | Ok s -> s
  | Error m -> failwith m

let member_cfg =
  { Fserver.default_config with Fserver.slots = 4; queue_cap = 16; cold_start_ns = 10_000.0 }

let run_fleet ~shards ~autoscale () =
  let cfg =
    {
      Fleet.default_config with
      Fleet.servers = 16;
      member = member_cfg;
      shards;
      autoscale;
    }
  in
  let t = Fleet.create cfg ~app:Jord_workloads.Hipster.app in
  let slo =
    match Slo.parse "ci" with Ok o -> o | Error m -> failwith m
  in
  Fleet.run ~slo t ~shape:ci_shape ~duration_us:400.0;
  t

let autoscale_spec =
  match Autoscaler.parse "fast,min=4,boot-us=60" with
  | Ok s -> s
  | Error m -> failwith m

let fingerprint t =
  String.concat "|"
    [
      Fleet.summary t;
      (match Fleet.rollup t with
      | Some r -> Rollup.report_text r
      | None -> "no-rollup");
      string_of_int (Fleet.events_processed t);
    ]

let test_fleet_conservation () =
  let t = run_fleet ~shards:1 ~autoscale:(Some autoscale_spec) () in
  check "arrivals split" true
    (Fleet.arrivals t = Fleet.routed t + Fleet.lb_shed t);
  check "routed split" true
    (Fleet.routed t = Fleet.completed t + Fleet.server_shed t);
  check_int "drained" 0 (Fleet.outstanding_now t);
  check "some traffic" true (Fleet.completed t > 1000);
  check "cold starts happened" true (Fleet.cold_starts t > 0);
  check "autoscaler acted" true (Fleet.boots t > 0);
  check "scale events logged" true (Fleet.scale_events t <> [])

let test_fleet_sharded_identical () =
  let base = fingerprint (run_fleet ~shards:1 ~autoscale:(Some autoscale_spec) ()) in
  List.iter
    (fun shards ->
      let fp = fingerprint (run_fleet ~shards ~autoscale:(Some autoscale_spec) ()) in
      Alcotest.(check string)
        (Printf.sprintf "shards=%d identical to sequential" shards)
        base fp)
    [ 2; 4; 8 ]

let test_fleet_no_autoscale_stays_up () =
  let t = run_fleet ~shards:1 ~autoscale:None () in
  check_int "all up" 16 (Fleet.up_now t);
  check "no scale events" true (Fleet.scale_events t = []);
  check_int "no boots" 0 (Fleet.boots t)

let test_fleet_affinity_beats_rr_on_cold_starts () =
  let run policy =
    let cfg =
      { Fleet.default_config with Fleet.servers = 16; member = member_cfg; policy }
    in
    let t = Fleet.create cfg ~app:Jord_workloads.Hipster.app in
    Fleet.run t ~shape:ci_shape ~duration_us:200.0;
    t
  in
  let aff = run Lb.Affinity and rr = run Lb.Round_robin in
  check "affinity hits recorded" true (Fleet.affinity_hits aff > 0);
  check "affinity pays fewer cold starts" true
    (Fleet.cold_starts aff < Fleet.cold_starts rr)

let test_fleet_gauges () =
  let t = run_fleet ~shards:1 ~autoscale:(Some autoscale_spec) () in
  let r = Fleet.registry t in
  let gauge name =
    match Jord_telemetry.Registry.find r ~name ~labels:[] with
    | Some { Jord_telemetry.Registry.value = Jord_telemetry.Registry.Gauge_v v; _ } -> v
    | Some { Jord_telemetry.Registry.value = Jord_telemetry.Registry.Counter_v v; _ } -> v
    | _ -> Alcotest.failf "missing gauge %s" name
  in
  check "servers_up gauge" true
    (int_of_float (gauge "jord_fleet_servers_up") = Fleet.up_now t);
  check "completed counter" true
    (int_of_float (gauge "jord_fleet_completed_total") = Fleet.completed t);
  (* Per-member jord_server_up instances exist. *)
  check "per-server up gauge" true
    (Jord_telemetry.Registry.find r ~name:"jord_server_up"
       ~labels:[ ("server", "0") ]
    <> None)

let suite =
  [
    Alcotest.test_case "lb: round robin" `Quick test_lb_round_robin;
    Alcotest.test_case "lb: least outstanding" `Quick test_lb_least_outstanding;
    Alcotest.test_case "lb: affinity warm routes and spill" `Quick test_lb_affinity;
    Alcotest.test_case "autoscaler: hysteresis" `Quick test_autoscaler_hysteresis;
    Alcotest.test_case "autoscaler: spec grammar" `Quick test_autoscaler_spec;
    Alcotest.test_case "rollup: verdicts and burn" `Quick test_rollup_verdicts;
    Alcotest.test_case "fleet: conservation + autoscale" `Quick test_fleet_conservation;
    Alcotest.test_case "fleet: byte-identical at shards 2/4/8" `Quick
      test_fleet_sharded_identical;
    Alcotest.test_case "fleet: no autoscale keeps everything up" `Quick
      test_fleet_no_autoscale_stays_up;
    Alcotest.test_case "fleet: affinity cuts cold starts" `Quick
      test_fleet_affinity_beats_rr_on_cold_starts;
    Alcotest.test_case "fleet: telemetry gauges" `Quick test_fleet_gauges;
  ]
