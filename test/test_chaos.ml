(* Fault injection and recovery: deterministic fault plans, deadline
   shedding, crash re-execution, the at-least-once cluster transport, and
   the conservation invariant checker that every scenario must satisfy.
   The property test at the bottom drives random workloads under random
   plans and asserts the invariants and run-to-run determinism that the
   CI chaos-smoke job checks end-to-end. *)

open Jord_faas
module Time = Jord_sim.Time
module Engine = Jord_sim.Engine
module Plan = Jord_fault_inject.Plan
module Invariant = Jord_fault_inject.Invariant

let check_clean name errs =
  Alcotest.(check (list string)) (name ^ ": invariants hold") [] errs

let contains needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

(* --- plan parsing --- *)

let test_plan_parse () =
  (match Plan.parse "ci-smoke" with
  | Ok p -> Alcotest.(check bool) "preset resolves" true (p = Plan.ci_smoke)
  | Error e -> Alcotest.fail e);
  (match Plan.parse "crash=0.01,loss=0.2,seed=7" with
  | Ok p ->
      Alcotest.(check int) "seed" 7 p.Plan.seed;
      Alcotest.(check (float 1e-9)) "crash" 0.01 p.Plan.crash;
      Alcotest.(check (float 1e-9)) "loss" 0.2 p.Plan.loss
  | Error e -> Alcotest.fail e);
  (match Plan.parse "ci-smoke,loss=0.5" with
  | Ok p ->
      Alcotest.(check (float 1e-9)) "override wins" 0.5 p.Plan.loss;
      Alcotest.(check (float 1e-9)) "rest inherited" Plan.ci_smoke.Plan.crash
        p.Plan.crash
  | Error e -> Alcotest.fail e);
  (match Plan.parse "loss=1.5" with
  | Ok _ -> Alcotest.fail "probability > 1 must be rejected"
  | Error _ -> ());
  (* Canonical form round-trips. *)
  match Plan.parse (Plan.to_string Plan.harsh) with
  | Ok p -> Alcotest.(check bool) "to_string round-trips" true (p = Plan.harsh)
  | Error e -> Alcotest.fail e

(* --- single-server scenarios --- *)

let run_server ?(config = Test_cluster.small_config) ?tracer ~requests ~gap_ns () =
  let server = Server.create config Test_cluster.fanout_app in
  (match tracer with Some _ as t -> Server.set_tracer server t | None -> ());
  let count = ref 0 in
  Server.on_root_complete server (fun _ -> incr count);
  let engine = Server.engine server in
  for i = 0 to requests - 1 do
    Engine.schedule_at engine
      ~time:(Time.of_ns (float_of_int i *. gap_ns))
      (fun _ -> Server.submit server ())
  done;
  Server.run server;
  (server, !count)

let test_deadline_sheds () =
  (* A deadline far below the backlog's sojourn time under a burst: the
     tail must be shed as timeouts, and arrivals must still balance. *)
  let config =
    {
      Test_cluster.small_config with
      Server.recovery = { Recovery.default with deadline = Some (Time.of_us 3.0) };
    }
  in
  let server, completed = run_server ~config ~requests:120 ~gap_ns:50.0 () in
  let timed_out = Server.timed_out_requests server in
  Alcotest.(check bool)
    (Printf.sprintf "some requests shed by deadline (%d)" timed_out)
    true (timed_out > 0);
  Alcotest.(check int) "arrivals conserved"
    (Server.arrivals server)
    (completed + Server.dropped_requests server + timed_out);
  Alcotest.(check int) "drained" 0 (Server.in_flight server);
  check_clean "deadline" (Server.check_invariants server)

let test_no_deadline_no_shedding () =
  let server, completed = run_server ~requests:120 ~gap_ns:50.0 () in
  Alcotest.(check int) "no deadline, no timeouts" 0
    (Server.timed_out_requests server);
  Alcotest.(check int) "everything eventually completes" 120
    (completed + Server.dropped_requests server);
  check_clean "no-deadline" (Server.check_invariants server)

let test_crash_recovery () =
  (* Heavy crash injection: every crashed invocation is torn down
     (PD reclaimed, no output written) and re-executed, so all roots
     still finish and nothing leaks. *)
  let config =
    {
      Test_cluster.small_config with
      Server.fault_plan =
        Some { Plan.none with Plan.seed = 11; crash = 0.15; restart_us = 4.0 };
    }
  in
  let server, completed = run_server ~config ~requests:80 ~gap_ns:2000.0 () in
  Alcotest.(check bool)
    (Printf.sprintf "crashes injected (%d)" (Server.crashes server))
    true
    (Server.crashes server > 0);
  Alcotest.(check bool) "every crash recovered at least its own request" true
    (Server.recovered server >= Server.crashes server);
  Alcotest.(check int) "all roots complete despite crashes" 80 completed;
  Alcotest.(check int) "no PDs leaked" 0
    (Jord_privlib.Pd.live_count (Jord_privlib.Privlib.pds (Server.privlib server)));
  check_clean "crash" (Server.check_invariants server)

let test_stalls_and_slowdowns_only_add_latency () =
  let config =
    {
      Test_cluster.small_config with
      Server.fault_plan =
        Some
          {
            Plan.none with
            Plan.seed = 3;
            stall = 0.3;
            stall_us = 2.0;
            slow = 0.3;
            slow_factor = 4.0;
          };
    }
  in
  let server, completed = run_server ~config ~requests:60 ~gap_ns:2000.0 () in
  Alcotest.(check int) "all complete" 60 completed;
  Alcotest.(check bool) "stalls hit" true (Server.stalls server > 0);
  Alcotest.(check bool) "slowdowns hit" true (Server.slowdowns server > 0);
  Alcotest.(check int) "no recovery action needed" 0 (Server.crashes server);
  check_clean "stall+slow" (Server.check_invariants server)

let test_fault_free_plan_is_inert () =
  (* Run with no plan and with the explicit zero plan: bit-identical
     counters — the injection points must cost nothing when disabled. *)
  let base, c0 = run_server ~requests:60 ~gap_ns:900.0 () in
  let config =
    { Test_cluster.small_config with Server.fault_plan = Some Plan.none }
  in
  let zero, c1 = run_server ~config ~requests:60 ~gap_ns:900.0 () in
  Alcotest.(check int) "same completions" c0 c1;
  Alcotest.(check int) "same events processed"
    (Engine.processed (Server.engine base))
    (Engine.processed (Server.engine zero));
  Alcotest.(check (float 0.0)) "same queue wait"
    (Server.queue_wait_ns_total base)
    (Server.queue_wait_ns_total zero)

(* --- trace integration --- *)

let test_trace_records_faults () =
  let tracer = Trace.create () in
  let config =
    {
      Test_cluster.small_config with
      Server.fault_plan =
        Some { Plan.none with Plan.seed = 11; crash = 0.15; restart_us = 4.0 };
      recovery = { Recovery.default with deadline = Some (Time.of_us 3000.0) };
    }
  in
  let server, _ = run_server ~config ~tracer ~requests:80 ~gap_ns:2000.0 () in
  let events = Trace.events tracer in
  let count k = List.length (List.filter (fun e -> e.Trace.kind = k) events) in
  Alcotest.(check int) "one Crash event per crash" (Server.crashes server)
    (count Trace.Crash);
  Alcotest.(check int) "one Recover event per recovery" (Server.recovered server)
    (count Trace.Recover);
  List.iter
    (fun e ->
      if e.Trace.kind = Trace.Crash then
        Alcotest.(check string) "crash detail names the site" "executor"
          e.Trace.detail)
    events;
  (* New kinds render in both exporters. *)
  Alcotest.(check string) "kind_name crash" "crash" (Trace.kind_name Trace.Crash);
  Alcotest.(check string) "kind_name timeout" "timeout" (Trace.kind_name Trace.Timeout);
  let text = Trace.to_text tracer in
  Alcotest.(check bool) "detail rendered in text log" true
    (contains "[executor]" text);
  let json = Trace.to_chrome_json tracer in
  Alcotest.(check bool) "crash events exported to chrome json" true
    (contains "/crash\"" json)

(* --- forward-path regression: enqueued_at re-stamped per hop --- *)

let test_forward_restamps_enqueued_at () =
  (* A request leaving on the wire was just re-dispatched by the
     orchestrator; its queue-wait clock must restart at the hop, or the
     receiver would bill it for queueing already accounted at the source. *)
  let engine = Engine.create () in
  let config = { Test_cluster.small_config with Server.forward_after = 2 } in
  let servers =
    Array.init 2 (fun i ->
        Server.create ~engine
          { config with Server.seed = config.Server.seed + i }
          Test_cluster.fanout_app)
  in
  let checked = ref 0 in
  Array.iteri
    (fun i s ->
      Server.set_forward s
        (Some
           (fun req ->
             Alcotest.(check int) "fresh enqueued_at stamp at the hop"
               (Engine.now engine) req.Request.enqueued_at;
             incr checked;
             let target = servers.((i + 1) mod 2) in
             Engine.schedule engine
               ~after:(Netmodel.one_way (Server.netmodel s))
               (fun _ -> Server.receive_forwarded target req))))
    servers;
  for i = 0 to 79 do
    Engine.schedule_at engine
      ~time:(Time.of_ns (float_of_int i *. 900.0))
      (fun _ -> Server.submit servers.(i mod 2) ())
  done;
  Engine.run engine;
  Alcotest.(check bool)
    (Printf.sprintf "some hops checked (%d)" !checked)
    true (!checked > 0);
  let tally =
    Array.fold_left
      (fun acc s -> Invariant.add acc (Server.conservation s))
      Invariant.zero servers
  in
  check_clean "restamp ring" (Invariant.check tally)

(* --- cluster chaos transport --- *)

let run_chaos_cluster ?(servers = 3) ~config ~requests ~gap_ns () =
  let cluster = Cluster.create ~forward_after:2 ~servers ~config Test_cluster.fanout_app in
  let count = ref 0 in
  Cluster.on_root_complete cluster (fun _ -> incr count);
  let engine = Cluster.engine cluster in
  for i = 0 to requests - 1 do
    Engine.schedule_at engine
      ~time:(Time.of_ns (float_of_int i *. gap_ns))
      (fun _ -> Cluster.submit cluster ())
  done;
  Cluster.run cluster;
  (cluster, !count)

let test_cluster_survives_lossy_wire () =
  let config =
    {
      Test_cluster.small_config with
      Server.fault_plan =
        Some { Plan.none with Plan.seed = 21; loss = 0.3; dup = 0.2; jitter_us = 1.0 };
    }
  in
  let cluster, completed = run_chaos_cluster ~config ~requests:120 ~gap_ns:900.0 () in
  Alcotest.(check int) "all requests complete across a lossy wire" 120 completed;
  let s = Option.get (Cluster.net_stats cluster) in
  Alcotest.(check bool)
    (Printf.sprintf "losses retried (%d lost, %d retries)" s.Cluster.lost
       s.Cluster.retries)
    true
    (s.Cluster.lost > 0 && s.Cluster.retries > 0);
  Alcotest.(check bool)
    (Printf.sprintf "duplicates deduplicated (%d)" s.Cluster.dup_dropped)
    true
    (s.Cluster.duplicated = 0 || s.Cluster.dup_dropped >= 0);
  Alcotest.(check int) "no transfer still pending" 0 (Cluster.pending_transfers cluster);
  check_clean "lossy wire" (Cluster.check_invariants cluster)

let test_total_loss_falls_back_to_local () =
  (* A wire that delivers nothing: every transfer exhausts retry_max, is
     abandoned, and the source re-executes locally — no request is lost
     and no peer is executed twice (there is nothing to dedup since no
     copy ever arrives). *)
  let config =
    {
      Test_cluster.small_config with
      Server.fault_plan = Some { Plan.none with Plan.seed = 5; loss = 1.0 };
      recovery = { Recovery.default with retry_max = 2 };
    }
  in
  let cluster, completed = run_chaos_cluster ~servers:2 ~config ~requests:100 ~gap_ns:900.0 () in
  Alcotest.(check int) "all requests complete via local fallback" 100 completed;
  let s = Option.get (Cluster.net_stats cluster) in
  Alcotest.(check bool)
    (Printf.sprintf "transfers abandoned (%d)" s.Cluster.abandoned)
    true (s.Cluster.abandoned > 0);
  Alcotest.(check int) "every transfer was abandoned" s.Cluster.xfers s.Cluster.abandoned;
  Alcotest.(check int) "nothing delivered" 0 s.Cluster.delivered;
  Alcotest.(check bool) "peers quarantined after repeated timeouts" true
    (s.Cluster.peers_marked_dead > 0);
  let abandoned_noted =
    Array.fold_left
      (fun a sv -> a + Server.forward_abandoned sv)
      0 (Cluster.servers cluster)
  in
  Alcotest.(check int) "abandonments accounted on the source servers"
    s.Cluster.abandoned abandoned_noted;
  check_clean "total loss" (Cluster.check_invariants cluster)

let test_cluster_chaos_full_stack () =
  (* Everything at once: crashes, stalls, slowdowns, loss, duplication,
     jitter — the CI smoke plan. All requests complete; conservation and
     transfer balance hold cluster-wide. *)
  let config =
    { Test_cluster.small_config with Server.fault_plan = Some Plan.ci_smoke }
  in
  let cluster, completed = run_chaos_cluster ~config ~requests:150 ~gap_ns:900.0 () in
  Alcotest.(check int) "all requests complete under the ci-smoke plan" 150 completed;
  check_clean "ci-smoke" (Cluster.check_invariants cluster)

(* --- server failure domain --- *)

let test_plan_parse_server_keys () =
  (match Plan.parse "server-crash=0.01,server-down-us=50,warm-loss=0.5" with
  | Ok p ->
      Alcotest.(check (float 1e-9)) "server-crash" 0.01 p.Plan.server_crash;
      Alcotest.(check (float 1e-9)) "server-down-us" 50.0 p.Plan.server_down_us;
      Alcotest.(check (float 1e-9)) "warm-loss" 0.5 p.Plan.warm_loss
  | Error e -> Alcotest.fail e);
  (match Plan.parse "server_crash=0.02,warm_loss=1" with
  | Ok p ->
      Alcotest.(check (float 1e-9)) "underscore alias" 0.02 p.Plan.server_crash
  | Error e -> Alcotest.fail e);
  (match Plan.parse "server-crash=1.5" with
  | Ok _ -> Alcotest.fail "server-crash > 1 must be rejected"
  | Error e ->
      Alcotest.(check bool) "error names the key" true
        (contains "server-crash" e));
  (match Plan.parse "warm-loss=-0.1" with
  | Ok _ -> Alcotest.fail "warm-loss < 0 must be rejected"
  | Error _ -> ());
  match Plan.parse "server-down-us=-5" with
  | Ok _ -> Alcotest.fail "negative downtime must be rejected"
  | Error e ->
      Alcotest.(check bool) "error names the key" true
        (contains "server-down-us" e)

(* Random valid plans off small decimal grids, so [to_string]'s %g prints
   every field exactly and the round trip is equality, not approximation. *)
let gen_plan =
  QCheck.Gen.(
    let prob = map (fun k -> float_of_int k /. 1000.0) (int_bound 1000) in
    let us = map (fun k -> float_of_int k /. 10.0) (int_bound 2000) in
    map
      (fun ((seed, crash, restart_us, stall, stall_us),
            (loss, dup, jitter_us, slow, factor_tenths),
            (server_crash, server_down_us, warm_loss)) ->
        {
          Plan.seed;
          crash;
          restart_us;
          stall;
          stall_us;
          loss;
          dup;
          jitter_us;
          slow;
          slow_factor = 1.0 +. (float_of_int factor_tenths /. 10.0);
          server_crash;
          server_down_us;
          warm_loss;
        })
      (tup3
         (tup5 (int_bound 100000) prob us prob us)
         (tup5 prob prob us prob (int_bound 90))
         (tup3 prob us prob)))

let arb_plan = QCheck.make ~print:Plan.to_string gen_plan

let prop_plan_roundtrip =
  QCheck.Test.make
    ~name:"plan to_string/parse round-trips every valid plan exactly"
    ~count:200 arb_plan
    (fun plan -> Plan.parse (Plan.to_string plan) = Ok plan)

let test_server_crash_cluster_conservation () =
  (* Whole-server crashes on top of the wire faults: every request still
     completes exactly once (re-queued entries, discarded children), the
     boot is cold when warm_loss hits, and the conservation invariant
     holds cluster-wide. *)
  let plan =
    {
      Plan.ci_smoke with
      Plan.server_crash = 0.03;
      server_down_us = 60.0;
      warm_loss = 1.0;
    }
  in
  let config =
    { Test_cluster.small_config with Server.fault_plan = Some plan }
  in
  let cluster, completed = run_chaos_cluster ~config ~requests:150 ~gap_ns:900.0 () in
  let sum f = Array.fold_left (fun a s -> a + f s) 0 (Cluster.servers cluster) in
  Alcotest.(check int) "all requests complete through server crashes" 150 completed;
  Alcotest.(check bool) "server crashes injected" true
    (sum Server.server_crashes > 0);
  Alcotest.(check bool) "warm state lost" true (sum Server.warm_losses > 0);
  Alcotest.(check bool) "cold starts paid after warm loss" true
    (sum Server.cold_starts > 0);
  check_clean "server-crash" (Cluster.check_invariants cluster)

let test_quarantine_recovery () =
  (* A long down window trips the health threshold (transfers into the
     dead server time out back-to-back), the peer is quarantined, and
     after probe_us a probing transfer un-quarantines it — the full
     mark-dead / probe / rejoin cycle, not just the marking. *)
  let plan =
    {
      Plan.none with
      Plan.seed = 99;
      server_crash = 0.04;
      server_down_us = 300.0;
      warm_loss = 0.0;
    }
  in
  let config =
    { Test_cluster.small_config with Server.fault_plan = Some plan }
  in
  let cluster, completed = run_chaos_cluster ~config ~requests:200 ~gap_ns:700.0 () in
  let s = Option.get (Cluster.net_stats cluster) in
  Alcotest.(check int) "all requests complete" 200 completed;
  Alcotest.(check bool)
    (Printf.sprintf "deliveries hit the down window (%d)" s.Cluster.dropped_down)
    true (s.Cluster.dropped_down > 0);
  Alcotest.(check bool)
    (Printf.sprintf "peers quarantined (%d)" s.Cluster.peers_marked_dead)
    true (s.Cluster.peers_marked_dead > 0);
  Alcotest.(check bool)
    (Printf.sprintf "quarantined peers rejoined (%d)" s.Cluster.peers_unquarantined)
    true
    (s.Cluster.peers_unquarantined > 0);
  check_clean "quarantine recovery" (Cluster.check_invariants cluster)

(* --- determinism + invariants as a property --- *)

type chaos_spec = { wseed : int; fseed : int; crash_pm : int; loss_pm : int; dup_pm : int }

let gen_chaos_spec =
  QCheck.Gen.(
    map
      (fun (wseed, fseed, crash_pm, loss_pm, dup_pm) ->
        { wseed; fseed; crash_pm; loss_pm; dup_pm })
      (tup5 (int_bound 1000) (int_bound 1000) (int_bound 100) (int_bound 400)
         (int_bound 200)))

let arb_chaos_spec =
  QCheck.make
    ~print:(fun s ->
      Printf.sprintf "{wseed=%d fseed=%d crash=%.3f loss=%.3f dup=%.3f}" s.wseed
        s.fseed
        (float_of_int s.crash_pm /. 1000.0)
        (float_of_int s.loss_pm /. 1000.0)
        (float_of_int s.dup_pm /. 1000.0))
    gen_chaos_spec

let chaos_summary spec =
  let plan =
    {
      Plan.seed = spec.fseed;
      crash = float_of_int spec.crash_pm /. 1000.0;
      restart_us = 5.0;
      stall = 0.05;
      stall_us = 1.0;
      loss = float_of_int spec.loss_pm /. 1000.0;
      dup = float_of_int spec.dup_pm /. 1000.0;
      jitter_us = 1.0;
      slow = 0.05;
      slow_factor = 2.0;
      server_crash = 0.0;
      server_down_us = 200.0;
      warm_loss = 1.0;
    }
  in
  let config =
    {
      Test_cluster.small_config with
      Server.seed = spec.wseed;
      fault_plan = Some plan;
    }
  in
  let cluster, completed = run_chaos_cluster ~config ~requests:60 ~gap_ns:1200.0 () in
  let tally = Cluster.conservation cluster in
  let s = Option.get (Cluster.net_stats cluster) in
  let summary =
    ( completed,
      Engine.processed (Cluster.engine cluster),
      (tally.Invariant.crashes, tally.Invariant.recovered, tally.Invariant.forwarded_out),
      (s.Cluster.xfers, s.Cluster.lost, s.Cluster.dup_dropped, s.Cluster.retries,
       s.Cluster.abandoned) )
  in
  (summary, Cluster.check_invariants cluster)

let prop_chaos_invariants_and_determinism =
  QCheck.Test.make
    ~name:"random fault plans: invariants hold and runs are reproducible" ~count:12
    arb_chaos_spec
    (fun spec ->
      let summary1, errs1 = chaos_summary spec in
      let summary2, errs2 = chaos_summary spec in
      errs1 = [] && errs2 = [] && summary1 = summary2)

let suite =
  [
    Alcotest.test_case "fault plan parsing" `Quick test_plan_parse;
    Alcotest.test_case "deadline sheds the backlog" `Quick test_deadline_sheds;
    Alcotest.test_case "no deadline, no shedding" `Quick test_no_deadline_no_shedding;
    Alcotest.test_case "crash teardown and re-execution" `Quick test_crash_recovery;
    Alcotest.test_case "stalls and slowdowns only add latency" `Quick
      test_stalls_and_slowdowns_only_add_latency;
    Alcotest.test_case "zero plan is inert" `Quick test_fault_free_plan_is_inert;
    Alcotest.test_case "trace records faults" `Quick test_trace_records_faults;
    Alcotest.test_case "forward hop re-stamps enqueued_at" `Quick
      test_forward_restamps_enqueued_at;
    Alcotest.test_case "cluster survives a lossy wire" `Quick
      test_cluster_survives_lossy_wire;
    Alcotest.test_case "total loss falls back to local execution" `Quick
      test_total_loss_falls_back_to_local;
    Alcotest.test_case "full chaos stack completes" `Quick test_cluster_chaos_full_stack;
    Alcotest.test_case "server-crash plan keys parse" `Quick
      test_plan_parse_server_keys;
    QCheck_alcotest.to_alcotest prop_plan_roundtrip;
    Alcotest.test_case "server crashes conserve cluster-wide" `Quick
      test_server_crash_cluster_conservation;
    Alcotest.test_case "quarantine recovers via probe" `Quick
      test_quarantine_recovery;
    QCheck_alcotest.to_alcotest prop_chaos_invariants_and_determinism;
  ]
