(* Fleet causal tracing: the span conservation identity under random
   traffic shapes x LB policies x autoscale specs (qcheck), deterministic
   tail sampling (order independence + identical retained sets at any
   shard count), the exemplar pin guarantee, the Sketch exemplar slot and
   the Rollup CSV round-trip. *)

module Fleet = Jord_fleet.Fleet
module Lb = Jord_fleet.Lb
module Autoscaler = Jord_fleet.Autoscaler
module Fserver = Jord_fleet.Fserver
module Traffic = Jord_workloads.Traffic
module Fspan = Jord_obsv.Fspan
module Fsampler = Jord_obsv.Fsampler
module Ftrace = Jord_obsv.Ftrace
module Rollup = Jord_obsv.Rollup
module Slo = Jord_obsv.Slo
module Sketch = Jord_telemetry.Sketch

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let member_cfg =
  { Fserver.default_config with Fserver.slots = 4; queue_cap = 16; cold_start_ns = 10_000.0 }

let slo_ci = match Slo.parse "ci" with Ok o -> o | Error m -> failwith m

(* A traced fleet run; [reservoir] large enough to retain everything when a
   property needs the full population. *)
let traced_run ?(servers = 12) ?(shards = 1) ?(policy = Lb.Affinity)
    ?(autoscale = None) ?(slo = slo_ci) ?(reservoir = Fsampler.default_reservoir)
    ~shape ~duration_us () =
  let cfg =
    {
      Fleet.default_config with
      Fleet.servers;
      policy;
      member = member_cfg;
      shards;
      autoscale;
    }
  in
  let t = Fleet.create cfg ~app:Jord_workloads.Hipster.app in
  let tracer = Ftrace.create ~reservoir () in
  Fleet.run ~slo ~tracer t ~shape ~duration_us;
  (t, tracer)

(* --- qcheck: conservation over random fleet configurations --- *)

type fleet_case = {
  c_policy : Lb.policy;
  c_servers : int;
  c_autoscale : string option;
  c_traffic : string;
}

let gen_case =
  QCheck.Gen.(
    let* c_policy = oneofl [ Lb.Round_robin; Lb.Least_outstanding; Lb.Affinity ] in
    let* c_servers = int_range 4 20 in
    let* c_autoscale =
      oneofl [ None; Some "fast,min=2,boot-us=60"; Some "default,min=3,interval-us=50" ]
    in
    let* preset = oneofl [ "steady"; "flash"; "ci" ] in
    let* users = int_range 2_000 20_000 in
    let* rate = int_range 2 8 in
    let* seed = int_range 1 1000 in
    return
      {
        c_policy;
        c_servers;
        c_autoscale;
        c_traffic = Printf.sprintf "%s,users=%d,rate=%d,seed=%d" preset users rate seed;
      })

let print_case c =
  Printf.sprintf "policy=%s servers=%d autoscale=%s traffic=%s"
    (Lb.to_string c.c_policy) c.c_servers
    (Option.value ~default:"none" c.c_autoscale)
    c.c_traffic

let arb_case = QCheck.make ~print:print_case gen_case

let run_case c =
  let shape = match Traffic.parse c.c_traffic with Ok s -> s | Error m -> failwith m in
  let autoscale =
    match c.c_autoscale with
    | None -> None
    | Some s -> (
        match Autoscaler.parse s with
        | Ok spec -> (
            match Autoscaler.resolve spec ~fleet:c.c_servers with
            | Ok spec -> Some spec
            | Error m -> failwith m)
        | Error m -> failwith m)
  in
  traced_run ~servers:c.c_servers ~policy:c.c_policy ~autoscale
    ~reservoir:1_000_000 ~shape ~duration_us:150.0 ()

let prop_conservation =
  QCheck.Test.make
    ~name:
      "fleet spans: balancer_queue+wire+member_queue+cold_start+service+\
       response_wire = end-to-end"
    ~count:12 arb_case
    (fun c ->
      let t, tracer = run_case c in
      let spans = Ftrace.retained tracer in
      (* The reservoir out-sizes the run: every decided request's span is
         retained, so the identity is checked over the whole population. *)
      List.length spans = Fleet.completed t + Fleet.shed t
      && List.for_all (fun (_, sp) -> Fspan.conservation_ok sp) spans
      && List.for_all
           (fun (_, sp) ->
             match sp.Fspan.outcome with
             | Fspan.Completed ->
                 sp.Fspan.member >= 0
                 && Fspan.phase_ps sp Fspan.Wire > 0
                 && Fspan.phase_ps sp Fspan.Service > 0
             | Fspan.Shed_lb -> sp.Fspan.member = -1 && Fspan.e2e_ps sp = 0
             | Fspan.Shed_member ->
                 (* A queue-full drop pays the two wire hops and nothing else. *)
                 Fspan.e2e_ps sp
                 = Fspan.phase_ps sp Fspan.Wire
                   + Fspan.phase_ps sp Fspan.Response_wire)
           spans)

(* --- qcheck: the sampler is a pure function of the id set --- *)

let mk_span id =
  let phases = Array.make Fspan.phase_count 0 in
  phases.(Fspan.phase_index Fspan.Service) <- 100 * (id + 1);
  {
    Fspan.req_id = id;
    user = id;
    fn = "f";
    member = 0;
    lb_hit = false;
    cold = false;
    outcome = Fspan.Completed;
    submit_ps = 0;
    end_ps = 100 * (id + 1);
    phases;
  }

let prop_sampler_order_independent =
  QCheck.Test.make ~name:"sampler: retained set independent of offer order"
    ~count:100
    QCheck.(pair (int_range 1 200) small_int)
    (fun (n, seed) ->
      let forward = List.init n mk_span in
      let backward = List.rev forward in
      let retained spans =
        let s = Fsampler.create ~seed ~reservoir:8 () in
        List.iter (fun sp -> Fsampler.offer s sp) spans;
        List.map (fun (_, sp) -> sp.Fspan.req_id) (Fsampler.retained s)
      in
      retained forward = retained backward)

(* --- deterministic retained sets at any shard count --- *)

let flash_shape =
  match Traffic.parse "flash,users=20000,rate=6" with
  | Ok s -> s
  | Error m -> failwith m

let autoscale_spec =
  match Autoscaler.parse "fast,min=4,boot-us=60" with
  | Ok s -> (
      match Autoscaler.resolve s ~fleet:16 with Ok s -> s | Error m -> failwith m)
  | Error m -> failwith m

let trace_lines tracer =
  List.map (fun (keep, sp) -> Fspan.to_json_line ~keep sp) (Ftrace.retained tracer)

let test_sharded_identical_traces () =
  let run shards =
    let t, tracer =
      traced_run ~servers:16 ~shards ~autoscale:(Some autoscale_spec)
        ~shape:flash_shape ~duration_us:400.0 ()
    in
    (* The verdict table (exemplar column included) rides along: the whole
       observable trace surface is shard-invariant, not just the spans. *)
    let rollup =
      match Fleet.rollup t with Some r -> Rollup.report_text r | None -> ""
    in
    rollup :: trace_lines tracer
  in
  let base = run 1 in
  check "retained set is non-trivial" true (List.length base > 100);
  List.iter
    (fun shards ->
      Alcotest.(check (list string))
        (Printf.sprintf "shards=%d trace lines identical" shards)
        base (run shards))
    [ 2; 4; 8 ]

(* --- always-keep rules and the exemplar pin guarantee --- *)

let test_keep_rules_and_exemplars () =
  (* A small overloaded fleet: sheds, cold starts and SLO violations all
     occur, and the tiny reservoir forces the rules to do the keeping. *)
  let t, tracer =
    traced_run ~servers:2 ~reservoir:16 ~shape:flash_shape ~duration_us:400.0 ()
  in
  let spans = Ftrace.retained tracer in
  let ids = Ftrace.retained_ids tracer in
  check "something was shed" true (Fleet.shed t > 0);
  let kept_with reason =
    List.length (List.filter (fun (k, _) -> k = reason) spans)
  in
  (* Every shed request survives sampling. *)
  check_int "all sheds retained" (Fleet.shed t) (kept_with "shed");
  check "slo keeps present" true (kept_with "slo" > 0);
  List.iter
    (fun (keep, sp) ->
      match sp.Fspan.outcome with
      | Fspan.Shed_lb | Fspan.Shed_member ->
          Alcotest.(check string) "shed spans tagged shed" "shed" keep
      | Fspan.Completed -> ())
    spans;
  (* Exemplar guarantee: every exemplar id the rollup names — per closed
     window and per objective row — is present in the retained set. *)
  let r = match Fleet.rollup t with Some r -> r | None -> failwith "no rollup" in
  let windows = Rollup.windows r in
  let some_window_exemplar = ref false in
  List.iter
    (fun (_, ws) ->
      List.iter
        (fun cw ->
          if cw.Rollup.cw_exemplar >= 0 then begin
            some_window_exemplar := true;
            check "window exemplar retained" true
              (List.mem cw.Rollup.cw_exemplar ids)
          end)
        ws)
    windows;
  check "windows carried exemplars" true !some_window_exemplar;
  List.iter
    (fun row ->
      if row.Rollup.r_exemplar >= 0 then
        check "row exemplar retained" true (List.mem row.Rollup.r_exemplar ids))
    (Rollup.rows r)

(* --- span JSONL round-trip --- *)

let test_span_json_roundtrip () =
  let sp = mk_span 42 in
  let sp = { sp with Fspan.lb_hit = true; cold = true; fn = "Get\"Cart" } in
  sp.Fspan.phases.(Fspan.phase_index Fspan.Cold_start) <- 17;
  let sp = { sp with Fspan.end_ps = Fspan.sum_phases sp } in
  let line = Fspan.to_json_line ~keep:"cold-start" sp in
  match Jord_util.Json.of_string line with
  | Error m -> Alcotest.fail m
  | Ok j -> (
      match Fspan.of_json j with
      | Error m -> Alcotest.fail m
      | Ok (keep, sp') ->
          Alcotest.(check string) "keep" "cold-start" keep;
          check "record round-trips" true (sp = sp'))

(* --- Sketch exemplar slot --- *)

let test_sketch_exemplar () =
  let s = Sketch.create () in
  check "empty has none" true (Sketch.exemplar s = None);
  Sketch.add_ex s 10 ~ex:3;
  Sketch.add_ex s 50 ~ex:7;
  Sketch.add_ex s 50 ~ex:5;  (* equal value: smaller id wins *)
  Sketch.add_ex s 20 ~ex:1;
  check "max value, min id tie" true (Sketch.exemplar s = Some (50, 5));
  Sketch.add s 99;  (* untagged observations never displace the exemplar *)
  check "plain add keeps exemplar" true (Sketch.exemplar s = Some (50, 5));
  (* Exemplars merge like the rest of the sketch: exact and commutative. *)
  let a = Sketch.create () and b = Sketch.create () in
  Sketch.add_ex a 10 ~ex:2;
  Sketch.add_ex b 50 ~ex:9;
  let ab = Sketch.copy a and ba = Sketch.copy b in
  Sketch.merge_into ~into:ab b;
  Sketch.merge_into ~into:ba a;
  check "merge picks the max" true (Sketch.exemplar ab = Some (50, 9));
  check "merge commutes" true (Sketch.equal ab ba)

(* --- Rollup CSV round-trip (the blame_csv conventions) --- *)

let test_rollup_csv_roundtrip () =
  let obj =
    {
      Slo.default with
      Slo.name = "t";
      threshold_ps = 10_000_000;
      window_ps = 1_000_000_000;
      budget = 0.1;
    }
  in
  (* [finish] advances every objective's window clock, so a window-less
     objective needs a window wider than the whole run. *)
  let r =
    Rollup.create
      [ obj; { obj with Slo.name = "empty"; fn = Some "nosuch"; window_ps = 10_000_000_000 } ]
  in
  for i = 0 to 99 do
    Rollup.observe ~trace_id:i r ~at_ps:(i * 30_000_000) ~fn:"f"
      ~latency_ps:((i + 1) * 200_000) ~shed:false
  done;
  Rollup.finish r ~now_ps:3_000_000_000;
  let csv = Rollup.report_csv r in
  match Rollup.parse_csv csv with
  | Error m -> Alcotest.fail m
  | Ok rows ->
      let expect_rows =
        List.fold_left
          (fun a (_, ws) -> a + Int.max 1 (List.length ws))
          0 (Rollup.windows r)
      in
      check_int "one row per objective x window" expect_rows (List.length rows);
      let field name row = List.assoc name row in
      (* Objective-level columns repeat on every sub-row; per-window columns
         carry the window history, ties to the exemplar machinery intact. *)
      let t_rows = List.filter (fun row -> field "objective" row = "t") rows in
      check "t has closed windows" true (List.length t_rows >= 3);
      List.iter
        (fun row ->
          check_int "requests repeats" 100 (int_of_string (field "requests" row));
          check "window parses" true (int_of_string (field "window" row) >= 0);
          check "window exemplar is a trace id" true
            (int_of_string (field "w_exemplar" row) >= 0))
        t_rows;
      (* The row exemplar is the max-latency trace id: observation 99. *)
      (match Rollup.rows r with
      | [ trow; _ ] -> check_int "row exemplar" 99 trow.Rollup.r_exemplar
      | _ -> Alcotest.fail "two rows expected");
      let empty_rows = List.filter (fun row -> field "objective" row = "empty") rows in
      (match empty_rows with
      | [ row ] ->
          check_int "window-less objective emits window=-1" (-1)
            (int_of_string (field "window" row));
          Alcotest.(check string) "no-data verdict" "no-data" (field "verdict" row)
      | _ -> Alcotest.fail "one empty row expected");
      (* Parse errors are reported, not swallowed. *)
      match Rollup.parse_csv "a,b\n1\n" with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "short row must fail"

let suite =
  [
    QCheck_alcotest.to_alcotest prop_conservation;
    QCheck_alcotest.to_alcotest prop_sampler_order_independent;
    Alcotest.test_case "fleet trace: byte-identical at shards 2/4/8" `Quick
      test_sharded_identical_traces;
    Alcotest.test_case "fleet trace: keep rules + exemplar pins" `Quick
      test_keep_rules_and_exemplars;
    Alcotest.test_case "fspan: JSONL round-trip" `Quick test_span_json_roundtrip;
    Alcotest.test_case "sketch: exemplar slot + merge" `Quick test_sketch_exemplar;
    Alcotest.test_case "rollup: CSV round-trip" `Quick test_rollup_csv_roundtrip;
  ]
