(* Jord_par.Pool: the deterministic parmap contract. Pool size 1 must be
   List.map; any size must agree with it on order, values and exception
   behaviour; a raising work item must not wedge the pool. *)

module Pool = Jord_par.Pool

let test_create_invalid () =
  Alcotest.check_raises "jobs=0 rejected" (Invalid_argument "Pool.create: jobs must be >= 1")
    (fun () -> ignore (Pool.create ~jobs:0))

let test_sequential_identity () =
  Pool.with_pool ~jobs:1 (fun pool ->
      let xs = List.init 100 Fun.id in
      Alcotest.(check (list int))
        "size-1 pool is List.map" (List.map succ xs)
        (Pool.parmap pool succ xs))

let test_order_preserved () =
  (* Items finishing out of submission order (earlier items do more work)
     must still come back in submission order. *)
  Pool.with_pool ~jobs:4 (fun pool ->
      let xs = List.init 64 Fun.id in
      let work i =
        let spin = (64 - i) * 2000 in
        let acc = ref 0 in
        for k = 1 to spin do
          acc := (!acc + k) mod 1000003
        done;
        ignore !acc;
        i * i
      in
      Alcotest.(check (list int)) "order preserved" (List.map work xs)
        (Pool.parmap pool work xs))

let test_empty_and_singleton () =
  Pool.with_pool ~jobs:3 (fun pool ->
      Alcotest.(check (list int)) "empty" [] (Pool.parmap pool succ []);
      Alcotest.(check (list int)) "singleton" [ 8 ] (Pool.parmap pool succ [ 7 ]))

let test_exception_propagates_pool_survives () =
  Pool.with_pool ~jobs:3 (fun pool ->
      let boom x = if x = 5 then failwith "boom" else x * 2 in
      (match Pool.parmap pool boom (List.init 10 Fun.id) with
      | _ -> Alcotest.fail "expected Failure"
      | exception Failure m -> Alcotest.(check string) "message" "boom" m);
      (* The pool must stay usable: workers consumed the failing batch
         without dying or leaving queued garbage behind. *)
      Alcotest.(check (list int))
        "pool usable after a raise"
        (List.init 20 (fun i -> i * 3))
        (Pool.parmap pool (fun i -> i * 3) (List.init 20 Fun.id)))

let test_first_exception_wins () =
  (* Two raising items: the one with the lower submission index is the one
     re-raised, matching sequential List.map semantics. *)
  Pool.with_pool ~jobs:4 (fun pool ->
      let boom x = if x = 3 || x = 7 then failwith (string_of_int x) else x in
      match Pool.parmap pool boom (List.init 10 Fun.id) with
      | _ -> Alcotest.fail "expected Failure"
      | exception Failure m -> Alcotest.(check string) "lowest index raised" "3" m)

let test_shutdown_falls_back () =
  let pool = Pool.create ~jobs:2 in
  Pool.shutdown pool;
  Alcotest.(check (list int))
    "parmap after shutdown is sequential" [ 2; 3; 4 ]
    (Pool.parmap pool succ [ 1; 2; 3 ])

let test_nested_parmap_does_not_deadlock () =
  Pool.with_pool ~jobs:2 (fun pool ->
      let nested x =
        (* From a worker domain, parmap must fall back to sequential rather
           than feed (and wait on) its own queue. *)
        List.fold_left ( + ) 0 (Pool.parmap pool Fun.id [ x; x; x ])
      in
      Alcotest.(check (list int)) "nested" [ 0; 3; 6 ]
        (Pool.parmap pool nested [ 0; 1; 2 ]))

(* qcheck: parmap == List.map for arbitrary inputs and pool sizes. *)
let prop_parmap_is_map =
  QCheck.Test.make ~name:"parmap equals List.map (any pool size)" ~count:30
    QCheck.(pair (int_range 1 6) (small_list small_int))
    (fun (jobs, xs) ->
      let f x = (x * 7) + 1 in
      Pool.with_pool ~jobs (fun pool -> Pool.parmap pool f xs = List.map f xs))

let prop_parmap_raises_like_map =
  QCheck.Test.make ~name:"parmap raises iff List.map raises" ~count:30
    QCheck.(pair (int_range 1 4) (small_list (int_range 0 20)))
    (fun (jobs, xs) ->
      let f x = if x = 13 then raise Exit else x in
      let seq = match List.map f xs with l -> Ok l | exception Exit -> Error () in
      let par =
        Pool.with_pool ~jobs (fun pool ->
            match Pool.parmap pool f xs with l -> Ok l | exception Exit -> Error ())
      in
      seq = par)

let suite =
  [
    Alcotest.test_case "create rejects jobs=0" `Quick test_create_invalid;
    Alcotest.test_case "size-1 pool is sequential" `Quick test_sequential_identity;
    Alcotest.test_case "order preserved under imbalance" `Quick test_order_preserved;
    Alcotest.test_case "empty and singleton" `Quick test_empty_and_singleton;
    Alcotest.test_case "raise propagates, pool survives" `Quick
      test_exception_propagates_pool_survives;
    Alcotest.test_case "first exception wins" `Quick test_first_exception_wins;
    Alcotest.test_case "shutdown falls back to sequential" `Quick
      test_shutdown_falls_back;
    Alcotest.test_case "nested parmap does not deadlock" `Quick
      test_nested_parmap_does_not_deadlock;
    QCheck_alcotest.to_alcotest prop_parmap_is_map;
    QCheck_alcotest.to_alcotest prop_parmap_raises_like_map;
  ]
