(* Telemetry layer: registry semantics, simulated-time sampling, exporter
   round-trips (parse what we emit) and the recorder's degenerate-run
   guards. *)

module Registry = Jord_telemetry.Registry
module Sampler = Jord_telemetry.Sampler
module Export = Jord_telemetry.Export
module Json = Jord_util.Json
module Engine = Jord_sim.Engine
module Time = Jord_sim.Time

(* --- Registry --- *)

let test_counter_basics () =
  let reg = Registry.create () in
  let c = Registry.counter reg ~help:"h" "t_total" in
  Registry.Counter.inc c;
  Registry.Counter.add c 2.5;
  Alcotest.(check (float 1e-9)) "value" 3.5 (Registry.Counter.value c);
  (try
     Registry.Counter.add c (-1.0);
     Alcotest.fail "negative add accepted"
   with Invalid_argument _ -> ())

let test_labels_are_instances () =
  let reg = Registry.create () in
  let a = Registry.counter reg ~labels:[ ("vlb", "i") ] "hits_total" in
  let b = Registry.counter reg ~labels:[ ("vlb", "d") ] "hits_total" in
  Registry.Counter.inc a;
  Registry.Counter.inc b;
  Registry.Counter.inc b;
  Alcotest.(check int) "one family" 1 (Registry.family_count reg);
  (match Registry.find reg ~name:"hits_total" ~labels:[ ("vlb", "d") ] with
  | Some { Registry.value = Registry.Counter_v v; _ } ->
      Alcotest.(check (float 1e-9)) "d instance" 2.0 v
  | _ -> Alcotest.fail "missing instance");
  (* Same name+labels returns the same handle. *)
  let a' = Registry.counter reg ~labels:[ ("vlb", "i") ] "hits_total" in
  Registry.Counter.inc a';
  Alcotest.(check (float 1e-9)) "shared handle" 2.0 (Registry.Counter.value a)

let test_kind_conflict_rejected () =
  let reg = Registry.create () in
  let (_ : Registry.Counter.t) = Registry.counter reg "x_total" in
  (try
     let (_ : Registry.Hist.t) = Registry.histogram reg "x_total" in
     Alcotest.fail "kind conflict accepted"
   with Invalid_argument _ -> ());
  try
    let (_ : Registry.Counter.t) = Registry.counter reg "bad name!" in
    Alcotest.fail "invalid name accepted"
  with Invalid_argument _ -> ()

let test_histogram_buckets () =
  let reg = Registry.create () in
  let h = Registry.histogram reg ~buckets:[ 10.0; 100.0; 1000.0 ] "lat_ns" in
  List.iter (Registry.Hist.observe h) [ 5.0; 50.0; 500.0; 5000.0 ];
  Alcotest.(check int) "count" 4 (Registry.Hist.count h);
  Alcotest.(check (float 1e-9)) "sum" 5555.0 (Registry.Hist.sum h);
  (match Registry.Hist.buckets h with
  | [ (b1, 1); (b2, 2); (b3, 3); (binf, 4) ] ->
      Alcotest.(check (float 1e-9)) "b1" 10.0 b1;
      Alcotest.(check (float 1e-9)) "b2" 100.0 b2;
      Alcotest.(check (float 1e-9)) "b3" 1000.0 b3;
      Alcotest.(check bool) "+Inf last" true (binf = infinity)
  | _ -> Alcotest.fail "bucket shape")

let test_pull_collectors () =
  let reg = Registry.create () in
  let backing = ref 0 in
  Registry.counter_fn reg "pull_total" (fun () -> float_of_int !backing);
  Registry.gauge_fn reg "pull_level" (fun () -> float_of_int (2 * !backing));
  backing := 21;
  (match Registry.find reg ~name:"pull_total" ~labels:[] with
  | Some { Registry.value = Registry.Counter_v v; _ } ->
      Alcotest.(check (float 1e-9)) "counter reads live" 21.0 v
  | _ -> Alcotest.fail "missing pull counter");
  match Registry.find reg ~name:"pull_level" ~labels:[] with
  | Some { Registry.value = Registry.Gauge_v v; _ } ->
      Alcotest.(check (float 1e-9)) "gauge reads live" 42.0 v
  | _ -> Alcotest.fail "missing pull gauge"

(* --- Sampler --- *)

(* Keep the engine alive with a heartbeat event chain so the sampler keeps
   rescheduling itself (it stops when it is the only pending event). *)
let with_busy_engine ~until_us f =
  let engine = Engine.create () in
  let rec beat eng =
    if Time.to_us (Engine.now eng) < until_us then
      Engine.schedule eng ~after:(Time.of_us 5.0) beat
  in
  Engine.schedule engine ~after:(Time.of_us 5.0) beat;
  f engine;
  Engine.run engine

let test_sampler_collects () =
  let tick = ref 0.0 in
  let sampler = ref None in
  with_busy_engine ~until_us:1000.0 (fun engine ->
      let s = Sampler.create ~engine ~interval_us:50.0 () in
      Sampler.track s "level" (fun () ->
          tick := !tick +. 1.0;
          !tick);
      Sampler.start s;
      sampler := Some s);
  let s = Option.get !sampler in
  Alcotest.(check bool) "at least 10 rounds" true (Sampler.samples_taken s >= 10);
  match Sampler.series s with
  | [ { Sampler.name = "level"; points; _ } ] ->
      Alcotest.(check bool) "points recorded" true (Array.length points >= 10);
      Array.iteri
        (fun i (t_us, _) ->
          if i > 0 then
            Alcotest.(check bool) "times increase" true (t_us > fst points.(i - 1)))
        points
  | _ -> Alcotest.fail "series shape"

let test_sampler_ring_wraparound () =
  let sampler = ref None in
  with_busy_engine ~until_us:2000.0 (fun engine ->
      let s = Sampler.create ~capacity:8 ~engine ~interval_us:50.0 () in
      Sampler.track s "t" (fun () -> 1.0);
      Sampler.start s;
      sampler := Some s);
  let s = Option.get !sampler in
  Alcotest.(check bool) "overflowed" true (Sampler.samples_taken s > 8);
  match Sampler.series s with
  | [ { Sampler.points; _ } ] ->
      Alcotest.(check int) "capacity kept" 8 (Array.length points);
      (* The retained window is the newest samples, oldest first. *)
      let newest = fst points.(7) in
      let oldest = fst points.(0) in
      Alcotest.(check bool) "kept the tail" true (oldest < newest && newest > 400.0)
  | _ -> Alcotest.fail "series shape"

let test_sampler_never_keeps_engine_alive () =
  let engine = Engine.create () in
  let s = Sampler.create ~engine ~interval_us:10.0 () in
  Sampler.track s "x" (fun () -> 0.0);
  Sampler.start s;
  (* No other events: the first tick fires, sees an idle engine, and does
     not reschedule — run terminates. *)
  Engine.run engine;
  Alcotest.(check bool) "terminated quickly" true (Sampler.samples_taken s <= 1)

(* --- Exporters --- *)

let sample_registry () =
  let reg = Registry.create () in
  let c = Registry.counter reg ~help:"c help" ~labels:[ ("op", "mmap") ] "ops_total" in
  Registry.Counter.add c 7.0;
  Registry.gauge_fn reg ~help:"g help" "depth" (fun () -> 2.5);
  let h = Registry.histogram reg ~buckets:[ 10.0; 100.0 ] "lat_ns" in
  Registry.Hist.observe h 5.0;
  Registry.Hist.observe h 50.0;
  reg

let test_prometheus_round_trip () =
  let reg = sample_registry () in
  let text = Export.to_prometheus reg in
  match Export.parse_prometheus text with
  | Error e -> Alcotest.fail ("parse: " ^ e)
  | Ok lines ->
      let value name labels =
        match
          List.find_opt
            (fun l -> l.Export.name = name && l.Export.labels = labels)
            lines
        with
        | Some l -> l.Export.value
        | None -> Alcotest.fail (Printf.sprintf "no line %s" name)
      in
      Alcotest.(check (float 1e-9)) "counter" 7.0 (value "ops_total" [ ("op", "mmap") ]);
      Alcotest.(check (float 1e-9)) "gauge" 2.5 (value "depth" []);
      Alcotest.(check (float 1e-9)) "hist count" 2.0 (value "lat_ns_count" []);
      Alcotest.(check (float 1e-9)) "hist sum" 55.0 (value "lat_ns_sum" []);
      Alcotest.(check (float 1e-9)) "bucket 10" 1.0 (value "lat_ns_bucket" [ ("le", "10") ]);
      Alcotest.(check (float 1e-9)) "bucket +Inf" 2.0
        (value "lat_ns_bucket" [ ("le", "+Inf") ])

let test_prometheus_label_escaping () =
  let reg = Registry.create () in
  let c = Registry.counter reg ~labels:[ ("fn", "a\"b\\c\nd") ] "weird_total" in
  Registry.Counter.inc c;
  match Export.parse_prometheus (Export.to_prometheus reg) with
  | Error e -> Alcotest.fail e
  | Ok [ line ] ->
      Alcotest.(check string) "label round-trips" "a\"b\\c\nd"
        (List.assoc "fn" line.Export.labels)
  | Ok _ -> Alcotest.fail "expected one line"

let test_jsonl_round_trip () =
  let reg = sample_registry () in
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' (Export.to_jsonl reg))
  in
  Alcotest.(check int) "one object per instrument" 3 (List.length lines);
  let parsed =
    List.map
      (fun line ->
        match Json.of_string line with
        | Ok j -> j
        | Error e -> Alcotest.fail (Printf.sprintf "bad JSONL line %S: %s" line e))
      lines
  in
  let counter =
    List.find
      (fun j -> Json.member "name" j = Some (Json.String "ops_total"))
      parsed
  in
  Alcotest.(check bool) "typed" true
    (Json.member "type" counter = Some (Json.String "counter"));
  (match Json.member "value" counter with
  | Some (Json.Float v) -> Alcotest.(check (float 1e-9)) "value" 7.0 v
  | Some (Json.Int v) -> Alcotest.(check int) "value" 7 v
  | _ -> Alcotest.fail "no value");
  match Json.member "labels" counter with
  | Some labels ->
      Alcotest.(check bool) "labels kept" true
        (Json.member "op" labels = Some (Json.String "mmap"))
  | None -> Alcotest.fail "no labels"

let test_csv_shape () =
  let reg = sample_registry () in
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' (Export.to_csv reg))
  in
  (match lines with
  | header :: _ -> Alcotest.(check string) "header" "kind,name,labels,t_us,value" header
  | [] -> Alcotest.fail "empty csv");
  (* counter + gauge + (3 bucket rows incl. +Inf, sum, count) + header. *)
  Alcotest.(check int) "rows" 8 (List.length lines)

let test_format_selection () =
  Alcotest.(check bool) "prom" true (Export.format_of_string "prom" = Some Export.Prometheus);
  Alcotest.(check bool) "jsonl" true (Export.format_of_string "jsonl" = Some Export.Jsonl);
  Alcotest.(check bool) "unknown" true (Export.format_of_string "xml" = None);
  Alcotest.(check bool) "by path" true (Export.format_for_path "m.csv" = Export.Csv);
  Alcotest.(check bool) "default" true (Export.format_for_path "metrics" = Export.Prometheus)

(* --- Json parser --- *)

let test_json_parser () =
  (match Json.of_string "{\"a\": [1, 2.5, \"x\\\"y\", null, true]}" with
  | Ok (Json.Obj [ ("a", Json.List [ Json.Int 1; Json.Float f; Json.String s; Json.Null; Json.Bool true ]) ]) ->
      Alcotest.(check (float 1e-9)) "float" 2.5 f;
      Alcotest.(check string) "escape" "x\"y" s
  | Ok _ -> Alcotest.fail "wrong shape"
  | Error e -> Alcotest.fail e);
  (match Json.of_string "{\"a\": 1} trailing" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "trailing accepted");
  match Json.of_string "[1e3, -4]" with
  | Ok (Json.List [ Json.Float f; Json.Int i ]) ->
      Alcotest.(check (float 1e-9)) "exponent" 1000.0 f;
      Alcotest.(check int) "negative" (-4) i
  | Ok _ -> Alcotest.fail "wrong number shape"
  | Error e -> Alcotest.fail e

let test_sparkline () =
  Alcotest.(check string) "empty" "" (Jord_util.Render.sparkline []);
  let ramp = Jord_util.Render.sparkline [ 0.0; 1.0; 2.0; 3.0 ] in
  Alcotest.(check int) "one cell per point" 4 (String.length ramp);
  Alcotest.(check bool) "rises" true (ramp.[0] <> ramp.[3])

(* --- Recorder guards --- *)

let test_recorder_degenerate_runs () =
  (* Everything inside warmup: no counted completions at all. *)
  let r = Jord_metrics.Recorder.create ~warmup:10 () in
  let observe_at i =
    let root, _ =
      Jord_faas.Request.make_root ~id:i ~entry:"f" ~arrival:(Time.of_us (float_of_int i))
        ~arg_bytes:64
    in
    root.Jord_faas.Request.completed_at <- Time.of_us (float_of_int i +. 1.0);
    root.Jord_faas.Request.finished <- true;
    root.Jord_faas.Request.exec_ns <- 100.0;
    Jord_metrics.Recorder.observe r root
  in
  List.iter observe_at [ 0; 1; 2 ];
  Alcotest.(check int) "nothing counted" 0 (Jord_metrics.Recorder.count r);
  Alcotest.(check (float 1e-9)) "throughput guarded" 0.0
    (Jord_metrics.Recorder.throughput_mrps r);
  Alcotest.(check (float 1e-9)) "mean guarded" 0.0 (Jord_metrics.Recorder.mean_us r);
  let b = Jord_metrics.Recorder.mean_breakdown r in
  Alcotest.(check (float 1e-9)) "breakdown exec" 0.0 b.Jord_metrics.Recorder.exec_ns;
  Alcotest.(check (float 1e-9)) "breakdown iso" 0.0 b.Jord_metrics.Recorder.isolation_ns;
  (* Exactly one counted completion: a rate over a zero span is still 0. *)
  List.iter observe_at (List.init 8 (fun i -> 3 + i));
  Alcotest.(check int) "one counted" 1 (Jord_metrics.Recorder.count r);
  Alcotest.(check (float 1e-9)) "single-point rate" 0.0
    (Jord_metrics.Recorder.throughput_mrps r);
  let b = Jord_metrics.Recorder.mean_breakdown r in
  Alcotest.(check (float 1e-9)) "breakdown now real" 100.0 b.Jord_metrics.Recorder.exec_ns

(* --- Whole-machine integration --- *)

let test_server_registry_and_sampler () =
  let registry = Registry.create () in
  let sampler = ref None in
  let on_server server =
    Jord_faas.Server.register_metrics server registry;
    let s =
      Sampler.create ~engine:(Jord_faas.Server.engine server) ~interval_us:25.0 ()
    in
    Jord_faas.Server.attach_sampler server s;
    Sampler.start s;
    sampler := Some s
  in
  let _, recorder =
    Jord_workloads.Loadgen.run ~on_server ~warmup:0 ~app:Jord_workloads.Hipster.app
      ~config:Jord_faas.Server.default_config ~rate_mrps:1.0 ~duration_us:600.0 ()
  in
  Alcotest.(check bool) "requests ran" true (Jord_metrics.Recorder.count recorder > 50);
  Alcotest.(check bool) "many families" true (Registry.family_count registry >= 20);
  (* Families span every instrumented layer. *)
  let names = List.map (fun (n, _, _) -> n) (Registry.families registry) in
  List.iter
    (fun prefix ->
      Alcotest.(check bool) (prefix ^ " present") true
        (List.exists
           (fun n -> String.length n >= String.length prefix
                     && String.sub n 0 (String.length prefix) = prefix)
           names))
    [ "jord_server_"; "jord_vlb_"; "jord_vtd_"; "jord_mem_"; "jord_privlib_" ];
  (* Counters are coherent with the server's own accessors. *)
  (match Registry.find registry ~name:"jord_server_completed_total" ~labels:[] with
  | Some { Registry.value = Registry.Counter_v v; _ } ->
      Alcotest.(check bool) "completions counted" true (v > 50.0)
  | _ -> Alcotest.fail "no completion counter");
  let s = Option.get !sampler in
  Alcotest.(check bool) "sampled >= 10 rounds" true (Sampler.samples_taken s >= 10);
  let depth_series =
    List.find
      (fun sr ->
        sr.Sampler.name = "jord_executor_queue_depth"
        && List.mem_assoc "agg" sr.Sampler.labels)
      (Sampler.series s)
  in
  Alcotest.(check bool) "series has >= 10 points" true
    (Array.length depth_series.Sampler.points >= 10);
  (* Exported exposition carries the series points. *)
  let text = Export.to_prometheus ~sampler:s registry in
  match Export.parse_prometheus text with
  | Ok lines ->
      let pts =
        List.length
          (List.filter (fun l -> l.Export.name = "jord_executor_queue_depth") lines)
      in
      Alcotest.(check bool) "points exported" true (pts >= 10)
  | Error e -> Alcotest.fail e

let suite =
  [
    Alcotest.test_case "counter basics" `Quick test_counter_basics;
    Alcotest.test_case "labeled instances" `Quick test_labels_are_instances;
    Alcotest.test_case "kind conflicts" `Quick test_kind_conflict_rejected;
    Alcotest.test_case "histogram buckets" `Quick test_histogram_buckets;
    Alcotest.test_case "pull collectors" `Quick test_pull_collectors;
    Alcotest.test_case "sampler collects" `Quick test_sampler_collects;
    Alcotest.test_case "sampler ring wraparound" `Quick test_sampler_ring_wraparound;
    Alcotest.test_case "sampler self-terminates" `Quick test_sampler_never_keeps_engine_alive;
    Alcotest.test_case "prometheus round-trip" `Quick test_prometheus_round_trip;
    Alcotest.test_case "prometheus label escaping" `Quick test_prometheus_label_escaping;
    Alcotest.test_case "jsonl round-trip" `Quick test_jsonl_round_trip;
    Alcotest.test_case "csv shape" `Quick test_csv_shape;
    Alcotest.test_case "format selection" `Quick test_format_selection;
    Alcotest.test_case "json parser" `Quick test_json_parser;
    Alcotest.test_case "sparkline" `Quick test_sparkline;
    Alcotest.test_case "recorder degenerate runs" `Quick test_recorder_degenerate_runs;
    Alcotest.test_case "whole-machine registry+sampler" `Quick test_server_registry_and_sampler;
  ]
