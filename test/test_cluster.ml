open Jord_faas
module Time = Jord_sim.Time

(* A fan-out-heavy app on a small machine with tight queues: the recipe for
   internal requests that cannot be placed locally. *)
let fanout_app =
  let open Model in
  let leaf =
    {
      name = "leaf";
      make_phases = (fun _ -> [ compute 2000.0 ]);
      state_bytes = 1024;
      code_bytes = 1024;
    }
  in
  let entry =
    {
      name = "entry";
      make_phases =
        (fun _ ->
          List.init 6 (fun _ -> invoke ~mode:Async ~arg_bytes:256 "leaf") @ [ wait ]);
      state_bytes = 1024;
      code_bytes = 1024;
    }
  in
  { app_name = "fanout"; fns = [ entry; leaf ]; entries = [ ("entry", 1.0) ] }

let small_config =
  {
    Server.default_config with
    Server.machine = Jord_arch.Config.with_cores Jord_arch.Config.default 4;
    orchestrators = 1;
    queue_capacity = 1;
  }

let run_cluster ~servers n_requests =
  let cluster = Cluster.create ~forward_after:2 ~servers ~config:small_config fanout_app in
  let count = ref 0 in
  Cluster.on_root_complete cluster (fun r ->
      Alcotest.(check bool) "finished flag" true r.Request.finished;
      incr count);
  let engine = Cluster.engine cluster in
  for i = 0 to n_requests - 1 do
    Jord_sim.Engine.schedule_at engine
      ~time:(Time.of_ns (float_of_int i *. 900.0))
      (fun _ -> Cluster.submit cluster ())
  done;
  Cluster.run cluster;
  (cluster, !count)

let test_forwarding_completes_everything () =
  let cluster, completed = run_cluster ~servers:3 120 in
  Alcotest.(check int) "all requests complete" 120 completed;
  Alcotest.(check bool)
    (Printf.sprintf "some requests were forwarded (%d)" (Cluster.forwarded cluster))
    true
    (Cluster.forwarded cluster > 0);
  Array.iter
    (fun s ->
      Alcotest.(check int)
        "server drained"
        0
        (Server.live_continuations s))
    (Cluster.servers cluster)

let test_forward_conservation () =
  let cluster, _ = run_cluster ~servers:3 120 in
  let out = Array.fold_left (fun a s -> a + Server.forwarded_out s) 0 (Cluster.servers cluster) in
  let inn = Array.fold_left (fun a s -> a + Server.received_in s) 0 (Cluster.servers cluster) in
  Alcotest.(check int) "everything sent was received" out inn;
  Alcotest.(check (list string)) "cluster-wide invariants hold" []
    (Cluster.check_invariants cluster)

let test_single_server_never_forwards () =
  let cluster, completed = run_cluster ~servers:1 60 in
  Alcotest.(check int) "completes alone" 60 completed;
  Alcotest.(check int) "no peers, no forwarding" 0 (Cluster.forwarded cluster)

let test_forwarding_disabled_by_default () =
  (* Without a forward callback the server just retries; everything still
     completes, only slower. *)
  let server = Server.create small_config fanout_app in
  let count = ref 0 in
  Server.on_root_complete server (fun _ -> incr count);
  let engine = Server.engine server in
  for i = 0 to 39 do
    Jord_sim.Engine.schedule_at engine
      ~time:(Time.of_ns (float_of_int i *. 2000.0))
      (fun _ -> Server.submit server ())
  done;
  Server.run server;
  Alcotest.(check int) "completes without forwarding" 40 !count;
  Alcotest.(check int) "no forwards" 0 (Server.forwarded_out server)

let test_forwarded_latency_includes_network () =
  (* Compare mean latency with and without a remote hop under pressure:
     the cluster pays the wire but gains capacity, so everything still
     completes with sane latencies. *)
  let _, completed = run_cluster ~servers:2 80 in
  Alcotest.(check int) "cluster of 2 completes" 80 completed

let test_no_cross_server_leaks () =
  let cluster, _ = run_cluster ~servers:3 100 in
  Array.iter
    (fun s ->
      let priv = Server.privlib s in
      Alcotest.(check int) "no PDs leaked" 0
        (Jord_privlib.Pd.live_count (Jord_privlib.Privlib.pds priv));
      (* 3 bootstrap VMAs + 2 function code VMAs per server; every ArgBuf —
         including re-materialized forwarded ones — was reclaimed. *)
      Alcotest.(check int) "no VMAs leaked" 5
        (Jord_vm.Vma_store.count (Jord_vm.Hw.store (Server.hw s))))
    (Cluster.servers cluster);
  Alcotest.(check (list string)) "invariant checker agrees" []
    (Cluster.check_invariants cluster)

let test_nightcore_cluster_never_forwards () =
  (* Cross-server ArgBuf forwarding is a Jord mechanism; the pipe-based
     baseline retries locally instead. *)
  let config = { small_config with Server.variant = Variant.Nightcore } in
  let cluster = Cluster.create ~forward_after:2 ~servers:2 ~config fanout_app in
  let count = ref 0 in
  Cluster.on_root_complete cluster (fun _ -> incr count);
  let engine = Cluster.engine cluster in
  for i = 0 to 19 do
    Jord_sim.Engine.schedule_at engine
      ~time:(Time.of_ns (float_of_int i *. 40_000.0))
      (fun _ -> Cluster.submit cluster ())
  done;
  Cluster.run cluster;
  Alcotest.(check int) "completes" 20 !count;
  Alcotest.(check int) "never forwards" 0 (Cluster.forwarded cluster)

let suite =
  [
    Alcotest.test_case "forwarding completes everything" `Quick
      test_forwarding_completes_everything;
    Alcotest.test_case "forward conservation" `Quick test_forward_conservation;
    Alcotest.test_case "single server never forwards" `Quick
      test_single_server_never_forwards;
    Alcotest.test_case "forwarding disabled by default" `Quick
      test_forwarding_disabled_by_default;
    Alcotest.test_case "cluster of two" `Quick test_forwarded_latency_includes_network;
    Alcotest.test_case "no cross-server leaks" `Quick test_no_cross_server_leaks;
    Alcotest.test_case "NightCore cluster never forwards" `Quick
      test_nightcore_cluster_never_forwards;
  ]
