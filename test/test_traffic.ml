(* Population traffic generator: the properties the sharded fleet runs
   lean on — schedules are nondecreasing, seed-deterministic, and the same
   whether consumed live or pre-generated. *)

module Traffic = Jord_workloads.Traffic

let check = Alcotest.(check bool)

(* Small random shapes for the qcheck properties (big populations are
   exercised by the fleet smoke itself). *)
let gen_shape =
  QCheck.Gen.(
    map
      (fun (users, zipf, rate, amp, flash, seed) ->
        {
          Traffic.users = 1 + users;
          zipf_s = float_of_int zipf /. 10.0;
          rate_mrps = 0.5 +. (float_of_int rate /. 10.0);
          diurnal_amp = float_of_int amp /. 10.0;
          diurnal_period_us = 120.0;
          flash =
            (if flash then [ { Traffic.at_us = 40.0; dur_us = 30.0; boost = 3.0 } ]
             else []);
          seed;
        })
      (tup6 (int_bound 500) (int_bound 20) (int_bound 40) (int_bound 9) bool
         (int_bound 1000)))

let arb_shape = QCheck.make ~print:Traffic.to_string gen_shape

let prop_nondecreasing =
  QCheck.Test.make ~name:"arrival times are nondecreasing" ~count:50 arb_shape
    (fun shape ->
      let arr = Traffic.pregen shape ~duration_us:200.0 in
      let ok = ref true in
      Array.iteri
        (fun i a -> if i > 0 then ok := !ok && a.Traffic.at >= arr.(i - 1).Traffic.at)
        arr;
      !ok
      && Array.for_all
           (fun a -> a.Traffic.at >= 0 && a.Traffic.at < Jord_sim.Time.of_us 200.0)
           arr)

let prop_seed_deterministic =
  QCheck.Test.make ~name:"same shape => identical schedule" ~count:30 arb_shape
    (fun shape ->
      Traffic.pregen shape ~duration_us:150.0 = Traffic.pregen shape ~duration_us:150.0)

let prop_seed_sensitive =
  QCheck.Test.make ~name:"different seed => different schedule (given traffic)"
    ~count:30 arb_shape (fun shape ->
      let a = Traffic.pregen shape ~duration_us:200.0 in
      let b =
        Traffic.pregen { shape with Traffic.seed = shape.Traffic.seed + 1 }
          ~duration_us:200.0
      in
      Array.length a < 3 || a <> b)

let prop_live_equals_pregen =
  QCheck.Test.make ~name:"live iteration = pregenerated array" ~count:50 arb_shape
    (fun shape ->
      let pre = Traffic.pregen shape ~duration_us:150.0 in
      let t = Traffic.make shape ~duration_us:150.0 in
      let live = ref [] in
      let rec go () =
        match Traffic.next t with
        | Some a ->
            live := a :: !live;
            go ()
        | None -> ()
      in
      go ();
      Array.of_list (List.rev !live) = pre
      && Traffic.generated t = Array.length pre)

let prop_roundtrip =
  QCheck.Test.make ~name:"parse (to_string s) = Ok s" ~count:100 arb_shape
    (fun shape -> Traffic.parse (Traffic.to_string shape) = Ok shape)

(* --- deterministic unit checks --- *)

let test_presets_valid () =
  List.iter
    (fun (name, shape) ->
      (match Traffic.validate shape with
      | Ok () -> ()
      | Error m -> Alcotest.failf "preset %s invalid: %s" name m);
      check (name ^ " roundtrips") true
        (Traffic.parse (Traffic.to_string shape) = Ok shape))
    Traffic.presets

let test_parse_errors () =
  let bad s =
    match Traffic.parse s with
    | Ok _ -> Alcotest.failf "expected parse error for %S" s
    | Error _ -> ()
  in
  bad "users=0";
  bad "rate=0";
  bad "amp=1.5";
  bad "nosuchkey=1";
  bad "flash=1:2";
  bad "flash=100:50:0.5";
  bad "steady,period-us=-1"

let test_parse_preset_override () =
  match Traffic.parse "ci,rate=42,users=1234" with
  | Ok s ->
      check "rate" true (s.Traffic.rate_mrps = 42.0);
      check "users" true (s.Traffic.users = 1234);
      check "preset diurnal kept" true (s.Traffic.diurnal_amp > 0.0)
  | Error m -> Alcotest.fail m

let test_flash_boosts_rate () =
  let base =
    {
      Traffic.users = 1000;
      zipf_s = 1.0;
      rate_mrps = 4.0;
      diurnal_amp = 0.0;
      diurnal_period_us = 100.0;
      flash = [];
      seed = 3;
    }
  in
  let flash =
    { base with Traffic.flash = [ { Traffic.at_us = 50.0; dur_us = 50.0; boost = 4.0 } ] }
  in
  check "rate_at inside burst" true
    (Traffic.rate_at flash ~us:60.0 = 4.0 *. Traffic.rate_at base ~us:60.0);
  check "rate_at outside burst" true
    (Traffic.rate_at flash ~us:10.0 = Traffic.rate_at base ~us:10.0);
  let in_window shape =
    Array.fold_left
      (fun acc a ->
        if a.Traffic.at >= Jord_sim.Time.of_us 50.0 then acc + 1 else acc)
      0
      (Traffic.pregen shape ~duration_us:100.0)
  in
  (* 4x the rate in the second half must show up as a lot more arrivals. *)
  check "burst adds arrivals" true (in_window flash > 2 * in_window base)

let test_zipf_skew () =
  let shape =
    {
      Traffic.users = 1000;
      zipf_s = 1.2;
      rate_mrps = 20.0;
      diurnal_amp = 0.0;
      diurnal_period_us = 100.0;
      flash = [];
      seed = 5;
    }
  in
  let arr = Traffic.pregen shape ~duration_us:400.0 in
  let head = ref 0 and tail = ref 0 in
  Array.iter
    (fun a ->
      if a.Traffic.user < 100 then incr head
      else if a.Traffic.user >= 900 then incr tail)
    arr;
  (* The top decile of a Zipf(1.2) population far outweighs the bottom. *)
  check "head heavier than tail" true (!head > 5 * max 1 !tail);
  check "users in range" true
    (Array.for_all (fun a -> a.Traffic.user >= 0 && a.Traffic.user < 1000) arr)

let test_hash01_deterministic () =
  check "stable" true (Traffic.hash01 ~seed:7 ~user:123 = Traffic.hash01 ~seed:7 ~user:123);
  check "in range" true
    (List.for_all
       (fun u ->
         let h = Traffic.hash01 ~seed:9 ~user:u in
         h >= 0.0 && h < 1.0)
       (List.init 1000 Fun.id))

let suite =
  [
    QCheck_alcotest.to_alcotest prop_nondecreasing;
    QCheck_alcotest.to_alcotest prop_seed_deterministic;
    QCheck_alcotest.to_alcotest prop_seed_sensitive;
    QCheck_alcotest.to_alcotest prop_live_equals_pregen;
    QCheck_alcotest.to_alcotest prop_roundtrip;
    Alcotest.test_case "presets validate and roundtrip" `Quick test_presets_valid;
    Alcotest.test_case "parse rejects bad specs" `Quick test_parse_errors;
    Alcotest.test_case "preset with overrides" `Quick test_parse_preset_override;
    Alcotest.test_case "flash crowd boosts the window" `Quick test_flash_boosts_rate;
    Alcotest.test_case "zipf population is head-heavy" `Quick test_zipf_skew;
    Alcotest.test_case "hash01 deterministic" `Quick test_hash01_deterministic;
  ]
