open Jord_sim

let test_time_conversions () =
  Alcotest.(check int) "1ns = 1000ps" 1000 (Time.of_ns 1.0);
  Alcotest.(check (float 1e-9)) "roundtrip" 2.5 (Time.to_ns (Time.of_ns 2.5));
  Alcotest.(check (float 1e-9)) "us" 3.0 (Time.to_us (Time.of_us 3.0));
  (* One cycle at 4 GHz is 250 ps. *)
  Alcotest.(check int) "cycle" 250 (Time.of_cycles 1 ~ghz:4.0);
  Alcotest.(check (float 1e-9)) "cycles roundtrip" 12.0
    (Time.to_cycles (Time.of_cycles 12 ~ghz:4.0) ~ghz:4.0)

let test_event_queue_order () =
  let q = Event_queue.create () in
  let push time v = ignore (Event_queue.push q ~time v : Event_queue.handle) in
  push 300 "c";
  push 100 "a";
  push 200 "b";
  let pop () = match Event_queue.pop q with Some (_, v) -> v | None -> "?" in
  Alcotest.(check string) "first" "a" (pop ());
  Alcotest.(check string) "second" "b" (pop ());
  Alcotest.(check string) "third" "c" (pop ());
  Alcotest.(check bool) "empty" true (Event_queue.is_empty q)

let test_event_queue_fifo_ties () =
  let q = Event_queue.create () in
  for i = 0 to 9 do
    ignore (Event_queue.push q ~time:42 i : Event_queue.handle)
  done;
  for i = 0 to 9 do
    match Event_queue.pop q with
    | Some (t, v) ->
        Alcotest.(check int) "time" 42 t;
        Alcotest.(check int) "fifo within same timestamp" i v
    | None -> Alcotest.fail "queue drained early"
  done

let test_peek () =
  let q = Event_queue.create () in
  Alcotest.(check (option int)) "empty peek" None (Event_queue.peek_time q);
  ignore (Event_queue.push q ~time:7 () : Event_queue.handle);
  Alcotest.(check (option int)) "peek" (Some 7) (Event_queue.peek_time q);
  Alcotest.(check int) "peek does not pop" 1 (Event_queue.length q)

let prop_pop_sorted =
  QCheck.Test.make ~name:"event queue pops in non-decreasing time order"
    QCheck.(list (int_bound 10_000))
    (fun times ->
      let q = Event_queue.create () in
      List.iter (fun t -> ignore (Event_queue.push q ~time:t () : Event_queue.handle)) times;
      let rec drain last =
        match Event_queue.pop q with
        | None -> true
        | Some (t, ()) -> t >= last && drain t
      in
      drain min_int)

let test_engine_runs_in_order () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule e ~after:(Time.of_ns 30.0) (fun _ -> log := "c" :: !log);
  Engine.schedule e ~after:(Time.of_ns 10.0) (fun _ -> log := "a" :: !log);
  Engine.schedule e ~after:(Time.of_ns 20.0) (fun _ -> log := "b" :: !log);
  Engine.run e;
  Alcotest.(check (list string)) "order" [ "a"; "b"; "c" ] (List.rev !log);
  Alcotest.(check int) "processed" 3 (Engine.processed e)

let test_engine_nested_schedule () =
  let e = Engine.create () in
  let fired_at = ref Time.zero in
  Engine.schedule e ~after:(Time.of_ns 5.0) (fun e ->
      Engine.schedule e ~after:(Time.of_ns 7.0) (fun e -> fired_at := Engine.now e));
  Engine.run e;
  Alcotest.(check (float 1e-9)) "nested absolute time" 12.0 (Time.to_ns !fired_at)

let test_engine_until () =
  let e = Engine.create () in
  let count = ref 0 in
  let rec tick eng =
    incr count;
    Engine.schedule eng ~after:(Time.of_ns 10.0) tick
  in
  Engine.schedule e ~after:(Time.of_ns 10.0) tick;
  Engine.run ~until:(Time.of_ns 55.0) e;
  Alcotest.(check int) "events up to the limit only" 5 !count;
  Alcotest.(check int) "remaining event stays queued" 1 (Engine.pending e)

let test_engine_rejects_past () =
  let e = Engine.create () in
  Alcotest.check_raises "negative delay"
    (Invalid_argument "Engine.schedule: negative delay") (fun () ->
      Engine.schedule e ~after:(-1) (fun _ -> ()))

let suite =
  [
    Alcotest.test_case "time conversions" `Quick test_time_conversions;
    Alcotest.test_case "event queue order" `Quick test_event_queue_order;
    Alcotest.test_case "event queue FIFO ties" `Quick test_event_queue_fifo_ties;
    Alcotest.test_case "peek" `Quick test_peek;
    QCheck_alcotest.to_alcotest prop_pop_sorted;
    Alcotest.test_case "engine order" `Quick test_engine_runs_in_order;
    Alcotest.test_case "engine nested schedule" `Quick test_engine_nested_schedule;
    Alcotest.test_case "engine until" `Quick test_engine_until;
    Alcotest.test_case "engine rejects past" `Quick test_engine_rejects_past;
  ]
