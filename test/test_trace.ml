module Trace = Jord_faas.Trace
module Json = Jord_util.Json

let test_json_emission () =
  let j =
    Json.Obj
      [
        ("a", Json.Int 1);
        ("b", Json.String "x\"y\\z\n");
        ("c", Json.List [ Json.Bool true; Json.Null; Json.Float 2.5 ]);
      ]
  in
  Alcotest.(check string) "rendered"
    "{\"a\":1,\"b\":\"x\\\"y\\\\z\\n\",\"c\":[true,null,2.5]}" (Json.to_string j)

let test_json_escape_control () =
  Alcotest.(check string) "control chars" "\\u0001" (Json.escape "\001")

let emit tr i kind =
  Trace.emit tr ~at_ps:(i * 1000) ~kind ~req_id:i ~root_id:0 ~fn:"f" ~core:(i mod 4) ()

let test_ring_buffer () =
  let tr = Trace.create ~capacity:4 () in
  for i = 0 to 9 do
    emit tr i Trace.Start
  done;
  Alcotest.(check int) "retains capacity" 4 (Trace.length tr);
  Alcotest.(check int) "counts all" 10 (Trace.total_emitted tr);
  let evs = Trace.events tr in
  Alcotest.(check (list int)) "keeps the newest, oldest first" [ 6; 7; 8; 9 ]
    (List.map (fun e -> e.Trace.req_id) evs)

let test_ring_below_capacity () =
  let tr = Trace.create ~capacity:8 () in
  for i = 0 to 2 do
    emit tr i Trace.Arrive
  done;
  Alcotest.(check (list int)) "in order" [ 0; 1; 2 ]
    (List.map (fun e -> e.Trace.req_id) (Trace.events tr))

let test_chrome_json_shape () =
  let tr = Trace.create () in
  emit tr 0 Trace.Arrive;
  Trace.emit tr ~at_ps:5000 ~kind:Trace.Segment ~req_id:1 ~root_id:0 ~fn:"g" ~core:2
    ~dur_ps:2500 ();
  let out = Trace.to_chrome_json tr in
  Alcotest.(check bool) "has traceEvents" true
    (String.length out > 0
    && String.sub out 0 15 = "{\"traceEvents\":");
  (* Span events carry ph=X and a duration. *)
  let contains needle hay =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "span" true (contains "\"ph\":\"X\"" out);
  Alcotest.(check bool) "instant" true (contains "\"ph\":\"i\"" out);
  Alcotest.(check bool) "dur" true (contains "\"dur\":" out)

(* Function names containing JSON-hostile characters must survive the
   chrome-trace emission: parse the emitted document back and find them. *)
let test_chrome_json_escaping () =
  let tr = Trace.create () in
  let nasty = "fn\"quoted\\back\nline" in
  Trace.emit tr ~at_ps:1000 ~kind:Trace.Start ~req_id:0 ~root_id:0 ~fn:nasty ~core:0 ();
  let out = Trace.to_chrome_json tr in
  match Json.of_string out with
  | Error e -> Alcotest.fail ("emitted trace is not valid JSON: " ^ e)
  | Ok doc -> (
      match Json.member "traceEvents" doc with
      | Some (Json.List evs) ->
          let arg_fns =
            List.filter_map
              (fun ev ->
                match Option.bind (Json.member "args" ev) (Json.member "fn") with
                | Some (Json.String s) -> Some s
                | _ -> None)
              evs
          in
          Alcotest.(check bool) "fn round-trips" true (List.mem nasty arg_fns);
          (* The display name embeds the fn too and must stay escaped. *)
          let names =
            List.filter_map
              (fun ev ->
                match Json.member "name" ev with
                | Some (Json.String s) -> Some s
                | _ -> None)
              evs
          in
          Alcotest.(check bool) "name keeps the fn" true
            (List.exists
               (fun s ->
                 String.length s > String.length nasty
                 && String.sub s 0 (String.length nasty) = nasty)
               names)
      | _ -> Alcotest.fail "no traceEvents list")

let test_ring_wrap_then_chrome_json () =
  (* Wraparound and emission compose: only retained events are serialized,
     and the document stays parseable after the ring has cycled. *)
  let tr = Trace.create ~capacity:3 () in
  for i = 0 to 7 do
    emit tr i Trace.Dispatch
  done;
  match Json.of_string (Trace.to_chrome_json tr) with
  | Error e -> Alcotest.fail e
  | Ok doc -> (
      match Json.member "traceEvents" doc with
      | Some (Json.List evs) ->
          (* Metadata (ph:"M") rides along; only retained events are real. *)
          let is_meta ev = Json.member "ph" ev = Some (Json.String "M") in
          Alcotest.(check int) "retained only" 3
            (List.length (List.filter (fun ev -> not (is_meta ev)) evs));
          Alcotest.(check bool) "names tracks" true
            (List.exists is_meta evs)
      | _ -> Alcotest.fail "no traceEvents list")

let test_text_log () =
  let tr = Trace.create () in
  for i = 0 to 5 do
    emit tr i Trace.Dispatch
  done;
  let all = Trace.to_text tr in
  Alcotest.(check int) "six lines" 6
    (List.length (List.filter (fun l -> l <> "") (String.split_on_char '\n' all)));
  let limited = Trace.to_text ~limit:2 tr in
  Alcotest.(check int) "limited" 2
    (List.length (List.filter (fun l -> l <> "") (String.split_on_char '\n' limited)))

let test_server_emits () =
  let app = Jord_workloads.Hipster.app in
  let tr = Trace.create () in
  let _, recorder =
    Jord_workloads.Loadgen.run ~warmup:0 ~tracer:tr ~app
      ~config:Jord_faas.Server.default_config ~rate_mrps:0.5 ~duration_us:200.0 ()
  in
  let n = Jord_metrics.Recorder.count recorder in
  Alcotest.(check bool) "ran" true (n > 20);
  let evs = Trace.events tr in
  let by k = List.length (List.filter (fun e -> e.Trace.kind = k) evs) in
  Alcotest.(check int) "one arrive per external" (by Trace.Arrive)
    (List.length (List.filter (fun e -> e.Trace.kind = Trace.Arrive) evs));
  (* Every start was preceded by an arrival (external submit or internal
     child birth), and unfinished tails can leave extra arrivals. *)
  Alcotest.(check bool) "arrivals >= starts" true (by Trace.Arrive >= by Trace.Start);
  Alcotest.(check bool) "dispatches recorded" true (by Trace.Dispatch > 0);
  Alcotest.(check bool) "completes match starts" true (by Trace.Complete = by Trace.Start);
  (* Timestamps are monotone. *)
  let rec monotone = function
    | a :: (b :: _ as rest) -> a.Trace.at_ps <= b.Trace.at_ps && monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "monotone timestamps" true (monotone evs)

let suite =
  [
    Alcotest.test_case "json emission" `Quick test_json_emission;
    Alcotest.test_case "json escape" `Quick test_json_escape_control;
    Alcotest.test_case "ring buffer" `Quick test_ring_buffer;
    Alcotest.test_case "ring below capacity" `Quick test_ring_below_capacity;
    Alcotest.test_case "chrome json shape" `Quick test_chrome_json_shape;
    Alcotest.test_case "chrome json escaping" `Quick test_chrome_json_escaping;
    Alcotest.test_case "ring wrap + chrome json" `Quick test_ring_wrap_then_chrome_json;
    Alcotest.test_case "text log" `Quick test_text_log;
    Alcotest.test_case "server emits" `Quick test_server_emits;
  ]
