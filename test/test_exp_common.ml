let test_throughput_under_slo () =
  (* Synthetic points via recorders is heavyweight; exercise the fold with
     Fig9-style data through the public helper on real recorders is covered
     by integration tests. Here: the scale helper and spec integrity. *)
  let spec = Jord_exp.Exp_common.hipster in
  Alcotest.(check bool) "rates ascending" true
    (let rec asc = function
       | a :: (b :: _ as rest) -> a < b && asc rest
       | _ -> true
     in
     asc spec.Jord_exp.Exp_common.rates);
  let scaled = Jord_exp.Exp_common.scale 0.5 spec in
  Alcotest.(check (float 1e-9)) "duration scaled"
    (spec.Jord_exp.Exp_common.duration_us /. 2.0)
    scaled.Jord_exp.Exp_common.duration_us;
  Alcotest.(check bool) "warmup floor" true (scaled.Jord_exp.Exp_common.warmup >= 50)

let test_all_specs_valid () =
  List.iter
    (fun spec ->
      Alcotest.(check bool)
        (spec.Jord_exp.Exp_common.name ^ " min_rate below sweep")
        true
        (spec.Jord_exp.Exp_common.min_rate < List.hd spec.Jord_exp.Exp_common.rates);
      Alcotest.(check bool)
        (spec.Jord_exp.Exp_common.name ^ " app valid")
        true
        (Jord_faas.Model.validate spec.Jord_exp.Exp_common.app = Ok ()))
    Jord_exp.Exp_common.all

let test_replicated_sweep () =
  let spec =
    {
      (Jord_exp.Exp_common.scale 0.1 Jord_exp.Exp_common.hipster) with
      Jord_exp.Exp_common.rates = [ 2.0 ];
    }
  in
  let config = Jord_exp.Exp_common.config_for Jord_faas.Variant.Jord in
  match Jord_exp.Exp_common.sweep_replicated spec ~config ~seeds:3 with
  | [ (rate, p99, tput) ] ->
      Alcotest.(check (float 1e-9)) "rate echoed" 2.0 rate;
      Alcotest.(check bool) "p99 sane" true (p99 > 1.0 && p99 < 1000.0);
      Alcotest.(check bool) "tput near offered" true (tput > 1.5 && tput < 2.5)
  | _ -> Alcotest.fail "expected one point"

let test_parallel_sweep_identical () =
  (* The acceptance bar for the domain pool: a sweep fanned out on workers
     must be float-for-float identical to the sequential run. *)
  let spec =
    {
      (Jord_exp.Exp_common.scale 0.1 Jord_exp.Exp_common.hipster) with
      Jord_exp.Exp_common.rates = [ 1.0; 3.0; 5.0 ];
    }
  in
  let config = Jord_exp.Exp_common.config_for Jord_faas.Variant.Jord in
  let summarize pts =
    List.map
      (fun (rate, r) ->
        Printf.sprintf "%g:%d:%.17g" rate
          (Jord_metrics.Recorder.count r)
          (Jord_metrics.Recorder.p99_us r))
      pts
  in
  let with_jobs n f =
    Jord_exp.Exp_common.set_jobs n;
    Fun.protect ~finally:(fun () -> Jord_exp.Exp_common.set_jobs 1) f
  in
  let seq = summarize (Jord_exp.Exp_common.sweep spec ~config) in
  let par = with_jobs 3 (fun () -> summarize (Jord_exp.Exp_common.sweep spec ~config)) in
  Alcotest.(check (list string)) "sweep jobs=3 == jobs=1" seq par;
  let rep_seq = Jord_exp.Exp_common.sweep_replicated spec ~config ~seeds:2 in
  let rep_par =
    with_jobs 3 (fun () -> Jord_exp.Exp_common.sweep_replicated spec ~config ~seeds:2)
  in
  let show = List.map (fun (r, p, t) -> Printf.sprintf "%g:%.17g:%.17g" r p t) in
  Alcotest.(check (list string)) "replicated sweep jobs=3 == jobs=1" (show rep_seq)
    (show rep_par)

let suite =
  [
    Alcotest.test_case "scale and ordering" `Quick test_throughput_under_slo;
    Alcotest.test_case "all specs valid" `Quick test_all_specs_valid;
    Alcotest.test_case "replicated sweep" `Slow test_replicated_sweep;
    Alcotest.test_case "parallel sweep is bit-identical" `Slow
      test_parallel_sweep_identical;
  ]
