(* Tests of the conservative parallel core: the Shard mailbox contract,
   deterministic barrier delivery (a qcheck property against a model sort),
   Fleet horizon semantics on empty shards, and the Cluster's sharded mode
   — argument validation plus shards=1 vs shards=3 equivalence. *)

module Engine = Jord_sim.Engine
module Shard = Jord_sim.Shard
module Fleet = Jord_sim.Fleet
module Time = Jord_sim.Time
open Jord_faas

(* --- Shard.post contract --- *)

let test_post_contract () =
  let fleet = Fleet.create ~shards:2 ~lookahead:100 in
  let s0 = Fleet.shard fleet 0 in
  Alcotest.check_raises "own shard rejected"
    (Invalid_argument "Shard.post: message to own shard") (fun () ->
      Shard.post s0 ~dst:0 ~at:500 ~sid:0 (fun _ -> ()));
  Alcotest.check_raises "bad dst rejected"
    (Invalid_argument "Shard.post: bad dst") (fun () ->
      Shard.post s0 ~dst:7 ~at:500 ~sid:0 (fun _ -> ()));
  (* now = 0, lookahead = 100: at must be >= 100. *)
  Alcotest.check_raises "lookahead violation rejected"
    (Invalid_argument "Shard.post: timestamp violates the lookahead window")
    (fun () -> Shard.post s0 ~dst:1 ~at:99 ~sid:0 (fun _ -> ()));
  Shard.post s0 ~dst:1 ~at:100 ~sid:0 (fun _ -> ());
  Alcotest.(check int) "boundary timestamp accepted" 1 (Shard.pending_messages s0);
  Alcotest.(check int) "fleet pending sees the message" 1 (Fleet.pending fleet);
  Alcotest.(check int) "drain delivers it" 1 (Fleet.drain fleet);
  Alcotest.(check int) "outbox reset" 0 (Shard.pending_messages s0);
  Alcotest.(check int) "second drain is empty" 0 (Fleet.drain fleet)

let test_create_validation () =
  Alcotest.check_raises "zero shards"
    (Invalid_argument "Fleet.create: shards must be positive") (fun () ->
      ignore (Fleet.create ~shards:0 ~lookahead:10 : Fleet.t));
  Alcotest.check_raises "zero lookahead"
    (Invalid_argument "Fleet.create: lookahead must be positive") (fun () ->
      ignore (Fleet.create ~shards:2 ~lookahead:0 : Fleet.t))

(* --- qcheck: barrier delivery order is the model sort --- *)

let n_shards = 3
let la = 100

type post = { src : int; dst : int; at : Time.t; sid : int }

(* Random cross-shard posts: any (src, dst <> src) pair, timestamps at or
   past the lookahead with plenty of collisions, and a tiny sid range so
   the (at, sid, posting order) tiebreakers all get exercised. *)
let gen_posts =
  QCheck.Gen.(
    list_size (int_bound 60)
      (map3
         (fun src doff (aoff, sid) ->
           { src; dst = (src + 1 + doff) mod n_shards; at = la + aoff; sid })
         (int_bound (n_shards - 1))
         (int_bound (n_shards - 2))
         (pair (int_bound 20) (int_bound 4))))

let arb_posts =
  QCheck.make
    ~print:(fun l ->
      String.concat "; "
        (List.map
           (fun p -> Printf.sprintf "%d->%d @%d sid=%d" p.src p.dst p.at p.sid)
           l))
    gen_posts

(* The documented delivery order into one destination: gather posting-order
   runs from each source in ascending source order, then stable-sort by
   (at, sid, per-source posting counter). Firing the destination engine
   afterwards must replay exactly that sequence. *)
let expected_for_dst posts d =
  let seq = Array.make n_shards 0 in
  let annotated =
    List.mapi
      (fun i p ->
        let s = seq.(p.src) in
        seq.(p.src) <- s + 1;
        (p, i, s))
      posts
  in
  List.concat
    (List.init n_shards (fun s ->
         List.filter (fun (p, _, _) -> p.src = s && p.dst = d) annotated))
  |> List.stable_sort (fun ((a : post), _, sa) (b, _, sb) ->
         compare (a.at, a.sid, sa) (b.at, b.sid, sb))
  |> List.map (fun (p, i, _) -> (p.at, i))

let drain_matches_model posts =
  let fleet = Fleet.create ~shards:n_shards ~lookahead:la in
  let fired = Array.make n_shards [] in
  List.iteri
    (fun i p ->
      Shard.post (Fleet.shard fleet p.src) ~dst:p.dst ~at:p.at ~sid:p.sid
        (fun eng -> fired.(p.dst) <- (Engine.now eng, i) :: fired.(p.dst)))
    posts;
  let delivered = Fleet.drain fleet in
  for d = 0 to n_shards - 1 do
    Engine.run (Fleet.engine fleet d)
  done;
  delivered = List.length posts
  && List.for_all
       (fun d -> List.rev fired.(d) = expected_for_dst posts d)
       (List.init n_shards Fun.id)

let prop_drain_order =
  QCheck.Test.make
    ~name:"barrier delivers in (timestamp, sid, posting order)" ~count:300
    arb_posts drain_matches_model

(* --- Fleet horizon and epoch semantics --- *)

let test_until_covers_empty_shards () =
  (* The satellite fix, fleet edition: a horizon run must advance every
     shard's clock to the limit — including shards that never held an
     event — so busy fractions read the same as the sequential path. *)
  let fleet = Fleet.create ~shards:2 ~lookahead:50 in
  Fleet.run ~until:1000 fleet;
  Alcotest.(check int) "idle shard 0 at horizon" 1000 (Engine.now (Fleet.engine fleet 0));
  Alcotest.(check int) "idle shard 1 at horizon" 1000 (Engine.now (Fleet.engine fleet 1));
  let fleet = Fleet.create ~shards:2 ~lookahead:50 in
  let fired_at = ref (-1) in
  Engine.schedule_at (Fleet.engine fleet 0) ~time:30 (fun eng ->
      fired_at := Engine.now eng);
  Fleet.run ~until:1000 fleet;
  Alcotest.(check int) "event fired" 30 !fired_at;
  Alcotest.(check int) "busy shard at horizon" 1000 (Engine.now (Fleet.engine fleet 0));
  Alcotest.(check int) "empty shard at horizon too" 1000
    (Engine.now (Fleet.engine fleet 1));
  (* Events beyond the horizon stay queued, exactly like Engine.run. *)
  let fleet = Fleet.create ~shards:2 ~lookahead:50 in
  Engine.schedule_at (Fleet.engine fleet 1) ~time:2000 (fun _ -> ());
  Fleet.run ~until:1000 fleet;
  Alcotest.(check int) "late event still pending" 1 (Fleet.pending fleet);
  Alcotest.(check int) "clock stops at horizon" 1000 (Engine.now (Fleet.engine fleet 1))

let test_cross_shard_ping_pong () =
  (* A courier bouncing between two shards through the mailbox: each hop
     lands exactly one lookahead later, and the fleet runs to quiescence
     across as many epochs as it takes. *)
  let fleet = Fleet.create ~shards:2 ~lookahead:100 in
  let hops = ref [] in
  let rec hop at_shard eng =
    hops := (at_shard, Engine.now eng) :: !hops;
    if List.length !hops < 5 then
      let dst = 1 - at_shard in
      Shard.post (Fleet.shard fleet at_shard) ~dst
        ~at:(Engine.now eng + 100)
        ~sid:at_shard (hop dst)
  in
  Engine.schedule_at (Fleet.engine fleet 0) ~time:10 (hop 0);
  Fleet.run fleet;
  Alcotest.(check (list (pair int int)))
    "five hops, one lookahead apart, alternating shards"
    [ (0, 10); (1, 110); (0, 210); (1, 310); (0, 410) ]
    (List.rev !hops);
  Alcotest.(check int) "all events processed" 5 (Fleet.processed fleet);
  Alcotest.(check int) "nothing pending" 0 (Fleet.pending fleet)

(* --- Netmodel.lookahead --- *)

let test_netmodel_lookahead () =
  Alcotest.(check int) "default lookahead = one-way wire latency"
    (Netmodel.one_way Netmodel.default)
    (Netmodel.lookahead Netmodel.default);
  Alcotest.(check int) "paper default is 2.5us"
    (Time.of_ns 2500.0)
    (Netmodel.lookahead Netmodel.default);
  Alcotest.(check int) "zero wire -> zero lookahead" 0
    (Netmodel.lookahead (Netmodel.create ~one_way_ns:0.0 ()))

(* --- Cluster sharded mode: validation --- *)

let test_cluster_validation () =
  let config = Test_cluster.small_config in
  let app = Test_cluster.fanout_app in
  Alcotest.check_raises "zero shards"
    (Invalid_argument "Cluster.create: shards must be positive") (fun () ->
      ignore (Cluster.create ~shards:0 ~servers:3 ~config app : Cluster.t));
  (* Regression: fault plans used to be rejected under ~shards > 1. Chaos
     state is now partitioned per source server, so creation must succeed. *)
  let chaos_config =
    { config with Server.fault_plan = Some Jord_fault_inject.Plan.ci_smoke }
  in
  ignore
    (Cluster.create ~shards:2 ~servers:3 ~config:chaos_config app : Cluster.t);
  Alcotest.check_raises "sharding needs a wire latency"
    (Invalid_argument "Cluster.create: sharding requires a positive one_way_ns")
    (fun () ->
      let config =
        { config with Server.net = Netmodel.create ~one_way_ns:0.0 () }
      in
      ignore (Cluster.create ~shards:2 ~servers:3 ~config app : Cluster.t));
  (* Clamping: more shards than servers means one server per shard. *)
  let c = Cluster.create ~shards:8 ~servers:3 ~config app in
  Alcotest.(check int) "shards clamp to server count" 3 (Cluster.shards c);
  let c1 = Cluster.create ~servers:3 ~config app in
  Alcotest.(check int) "default is single-engine" 1 (Cluster.shards c1);
  Alcotest.check_raises "live submit rejected when sharded"
    (Invalid_argument "Cluster.submit: sharded clusters take arrivals via submit_at")
    (fun () -> Cluster.submit c ());
  Cluster.submit_at c ~time:500 ();
  Alcotest.check_raises "submission times must be nondecreasing"
    (Invalid_argument "Cluster.submit_at: submission times must be nondecreasing")
    (fun () -> Cluster.submit_at c ~time:499 ())

(* --- Cluster sharded mode: equivalence with the sequential path --- *)

let run_cluster ?(config = Test_cluster.small_config) ~shards n_requests =
  let cluster =
    Cluster.create ~forward_after:2 ~shards ~servers:3 ~config
      Test_cluster.fanout_app
  in
  let tracer = Trace.create ~capacity:32768 () in
  Cluster.set_tracer cluster (Some tracer);
  let roots = ref [] in
  Cluster.on_root_complete cluster (fun r ->
      roots :=
        (r.Request.completed_at, r.Request.finished, r.Request.invocations)
        :: !roots);
  for i = 0 to n_requests - 1 do
    Cluster.submit_at cluster ~time:(Time.of_ns (float_of_int i *. 900.0)) ()
  done;
  Cluster.run cluster;
  let per_server =
    Array.to_list (Cluster.servers cluster)
    |> List.map (fun s -> (Server.forwarded_out s, Server.received_in s))
  in
  ( List.rev !roots,
    Trace.events tracer,
    Cluster.events_processed cluster,
    Cluster.forwarded cluster,
    per_server )

let test_sharded_equals_sequential () =
  let roots1, ev1, n1, fwd1, per1 = run_cluster ~shards:1 60 in
  let roots3, ev3, n3, fwd3, per3 = run_cluster ~shards:3 60 in
  Alcotest.(check int) "all complete sequentially" 60 (List.length roots1);
  Alcotest.(check int) "all complete sharded" 60 (List.length roots3);
  Alcotest.(check bool) "work was forwarded" true (fwd1 > 0);
  Alcotest.(check int) "forwarded counts agree" fwd1 fwd3;
  Alcotest.(check int) "event counts agree" n1 n3;
  Alcotest.(check (list (pair int int))) "per-server forward/receive agree" per1 per3;
  (* Completions and trace events replay in canonical (time, server) order;
     normalize both sides by a total sort so same-picosecond cross-server
     ties cannot flake the comparison. *)
  Alcotest.(check bool) "identical completion records" true
    (List.sort compare roots1 = List.sort compare roots3);
  Alcotest.(check int) "same trace volume" (List.length ev1) (List.length ev3);
  Alcotest.(check bool) "identical trace events" true
    (List.sort compare ev1 = List.sort compare ev3)

(* --- Cluster sharded mode: chaos (fault plans under sharding) --- *)

(* A chaos run at a given shard count, summarized as one comparable value:
   completion records, trace events, chaos counters and the transport's
   net_stats record, plus the conservation verdict. *)
let run_chaos_cluster ~plan ~shards n_requests =
  let config =
    { Test_cluster.small_config with Server.fault_plan = Some plan }
  in
  let cluster =
    Cluster.create ~forward_after:2 ~shards ~servers:3 ~config
      Test_cluster.fanout_app
  in
  let tracer = Trace.create ~capacity:65536 () in
  Cluster.set_tracer cluster (Some tracer);
  let roots = ref [] in
  Cluster.on_root_complete cluster (fun r ->
      roots :=
        (r.Request.completed_at, r.Request.finished, r.Request.invocations)
        :: !roots);
  for i = 0 to n_requests - 1 do
    Cluster.submit_at cluster ~time:(Time.of_ns (float_of_int i *. 900.0)) ()
  done;
  Cluster.run cluster;
  let sum f =
    Array.fold_left (fun a s -> a + f s) 0 (Cluster.servers cluster)
  in
  let chaos =
    ( sum Server.crashes, sum Server.recovered, sum Server.timed_out_requests,
      sum Server.server_crashes, sum Server.warm_losses, sum Server.cold_starts )
  in
  ( List.rev !roots,
    Trace.events tracer,
    chaos,
    Cluster.net_stats cluster,
    Cluster.check_invariants cluster )

let check_chaos_identical ~plan ~label n_requests =
  let roots1, ev1, chaos1, net1, inv1 = run_chaos_cluster ~plan ~shards:1 n_requests in
  let roots3, ev3, chaos3, net3, inv3 = run_chaos_cluster ~plan ~shards:3 n_requests in
  Alcotest.(check (list string)) (label ^ ": sequential invariants") [] inv1;
  Alcotest.(check (list string)) (label ^ ": sharded invariants") [] inv3;
  Alcotest.(check int)
    (label ^ ": all roots complete sequentially")
    n_requests (List.length roots1);
  Alcotest.(check bool)
    (label ^ ": identical completion records")
    true
    (List.sort compare roots1 = List.sort compare roots3);
  Alcotest.(check bool)
    (label ^ ": identical chaos counters")
    true (chaos1 = chaos3);
  Alcotest.(check bool) (label ^ ": identical net stats") true (net1 = net3);
  Alcotest.(check int)
    (label ^ ": same trace volume")
    (List.length ev1) (List.length ev3);
  Alcotest.(check bool)
    (label ^ ": identical trace events")
    true
    (List.sort compare ev1 = List.sort compare ev3);
  (chaos1, net1)

let test_sharded_chaos_equals_sequential () =
  (* Wire faults only (the historical ci-smoke plan): retries, dups, loss
     and executor crashes must replay identically at any shard count. *)
  let chaos, net =
    check_chaos_identical ~plan:Jord_fault_inject.Plan.ci_smoke
      ~label:"ci-smoke" 80
  in
  let crashes, _, _, _, _, _ = chaos in
  Alcotest.(check bool) "ci-smoke injected executor crashes" true (crashes > 0);
  (match net with
  | Some s -> Alcotest.(check bool) "wire faults exercised" true (s.Cluster.lost > 0)
  | None -> Alcotest.fail "net stats missing under a fault plan")

let test_sharded_server_crash_equals_sequential () =
  (* Whole-server crashes on top: down windows, warm loss, failover and
     dropped-at-down deliveries must also be shard-invariant. *)
  let plan =
    {
      Jord_fault_inject.Plan.ci_smoke with
      Jord_fault_inject.Plan.server_crash = 0.02;
      server_down_us = 40.0;
    }
  in
  let chaos, _ = check_chaos_identical ~plan ~label:"server-crash" 80 in
  let _, _, _, server_crashes, _, _ = chaos in
  Alcotest.(check bool) "whole-server crashes injected" true (server_crashes > 0)

let suite =
  [
    Alcotest.test_case "Shard.post contract" `Quick test_post_contract;
    Alcotest.test_case "Fleet.create validation" `Quick test_create_validation;
    QCheck_alcotest.to_alcotest prop_drain_order;
    Alcotest.test_case "~until covers empty shards" `Quick
      test_until_covers_empty_shards;
    Alcotest.test_case "cross-shard ping-pong" `Quick test_cross_shard_ping_pong;
    Alcotest.test_case "Netmodel.lookahead" `Quick test_netmodel_lookahead;
    Alcotest.test_case "Cluster sharded validation" `Quick test_cluster_validation;
    Alcotest.test_case "sharded cluster = sequential cluster" `Quick
      test_sharded_equals_sequential;
    Alcotest.test_case "sharded chaos = sequential chaos" `Quick
      test_sharded_chaos_equals_sequential;
    Alcotest.test_case "sharded server crashes = sequential" `Quick
      test_sharded_server_crash_equals_sequential;
  ]
