(* Aggregated test entry point: one Alcotest section per subsystem. *)
let () =
  Alcotest.run "jord"
    [
      ("util.bits", Test_bits.suite);
      ("util.prng", Test_prng.suite);
      ("util.sample", Test_sample.suite);
      ("util.stats", Test_stats.suite);
      ("util.histogram", Test_histogram.suite);
      ("util.histogram.extra", Test_histogram_extra.suite);
      ("util.bitset", Test_bitset.suite);
      ("sim", Test_sim.suite);
      ("sim.time.extra", Test_time_extra.suite);
      ("arch", Test_arch.suite);
      ("arch.topology.extra", Test_topology_extra.suite);
      ("arch.memsys", Test_memsys.suite);
      ("vm.basics", Test_vm_basics.suite);
      ("vm.va.extra", Test_va_extra.suite);
      ("vm.stores", Test_vma_stores.suite);
      ("vm.vlb+vtd", Test_vlb_vtd.suite);
      ("vm.hw", Test_hw.suite);
      ("privlib", Test_privlib.suite);
      ("privlib.props", Test_privlib_props.suite);
      ("paging", Test_paging.suite);
      ("faas.parts", Test_faas_parts.suite);
      ("faas.model.extra", Test_model_extra.suite);
      ("faas.api", Test_api.suite);
      ("faas.runtime", Test_runtime.suite);
      ("faas.listing1", Test_listing1.suite);
      ("faas.server", Test_server.suite);
      ("faas.server.props", Test_server_props.suite);
      ("baseline", Test_baseline.suite);
      ("background", Test_background.suite);
      ("workloads", Test_workloads.suite);
      ("render", Test_render.suite);
      ("memsys.props", Test_memsys_props.suite);
      ("integration", Test_integration.suite);
      ("cluster", Test_cluster.suite);
      ("misc", Test_misc.suite);
      ("exp", Test_exp.suite);
      ("exp.common", Test_exp_common.suite);
      ("exp.claims", Test_claims.suite);
      ("trace", Test_trace.suite);
      ("telemetry", Test_telemetry.suite);
      ("export", Test_export.suite);
    ]
