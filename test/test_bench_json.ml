(* Bench_json: schema round trip and the perf-regression comparator the CI
   gate runs (count metrics hard-fail out of tolerance, time metrics are
   advisory, missing metrics fail). *)

module B = Jord_util.Bench_json

let doc_testable =
  Alcotest.testable
    (fun ppf d -> Format.pp_print_string ppf (B.to_string d))
    (fun a b -> B.to_string a = B.to_string b)

let sample_doc =
  {
    B.experiment = "engine";
    metrics =
      [
        B.metric ~name:"push_pop" ~unit_:"ns/op" [ 80.0; 82.0; 81.0; 90.0; 79.0 ];
        B.count ~tolerance:0.5 ~name:"minor_words" ~unit_:"words" 214.0;
        B.count ~name:"events" ~unit_:"events" 74994.0;
      ];
  }

let test_metric_summary () =
  let m = B.metric ~name:"t" ~unit_:"ns" [ 1.0; 2.0; 3.0; 4.0; 5.0 ] in
  Alcotest.(check (float 1e-9)) "median" 3.0 m.B.value;
  Alcotest.(check (float 1e-9)) "iqr = p75 - p25" 2.0 m.B.iqr;
  Alcotest.(check int) "repetitions" 5 m.B.repetitions;
  Alcotest.check_raises "empty samples rejected"
    (Invalid_argument "Bench_json.metric: empty samples") (fun () ->
      ignore (B.metric ~name:"t" ~unit_:"ns" []))

let test_round_trip () =
  match B.of_string (B.to_string sample_doc) with
  | Error m -> Alcotest.failf "parse failed: %s" m
  | Ok parsed ->
      Alcotest.(check string) "experiment" "engine" parsed.B.experiment;
      Alcotest.(check int) "metric count" 3 (List.length parsed.B.metrics);
      let m = List.hd parsed.B.metrics in
      Alcotest.(check bool) "kind survives" true (m.B.kind = B.Time);
      let c = List.nth parsed.B.metrics 1 in
      Alcotest.(check bool) "tolerance survives" true (c.B.tolerance = Some 0.5)

let test_parse_errors () =
  (match B.of_string "{\"experiment\":\"x\"}" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing metrics accepted");
  (match B.of_string "not json" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage accepted");
  match B.of_string "{\"experiment\":\"x\",\"metrics\":[{\"name\":\"m\"}]}" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "incomplete metric accepted"

let test_baseline_round_trip () =
  let b = { B.default_tolerance = 0.25; experiments = [ sample_doc ] } in
  match B.baseline_of_string (B.baseline_to_string b) with
  | Error m -> Alcotest.failf "baseline parse failed: %s" m
  | Ok parsed ->
      Alcotest.(check (float 1e-9)) "tolerance" 0.25 parsed.B.default_tolerance;
      Alcotest.(check (list doc_testable)) "experiments" [ sample_doc ]
        parsed.B.experiments

let with_current f =
  let current =
    {
      B.experiment = "engine";
      metrics =
        [
          B.metric ~name:"push_pop" ~unit_:"ns/op" [ 81.0 ];
          B.count ~tolerance:0.5 ~name:"minor_words" ~unit_:"words" 214.0;
          B.count ~name:"events" ~unit_:"events" 74994.0;
        ];
    }
  in
  f current

let find_verdict name verdicts =
  List.find (fun v -> v.B.v_metric = name) verdicts

let test_comparator_within_tolerance () =
  with_current (fun current ->
      let verdicts = B.compare_docs ~baseline:sample_doc ~current () in
      Alcotest.(check int) "one verdict per baseline metric" 3 (List.length verdicts);
      Alcotest.(check bool) "no failure" false (B.has_failure verdicts);
      List.iter
        (fun v -> Alcotest.(check bool) (v.B.v_metric ^ " ok") true (v.B.v_status = B.Ok_within))
        verdicts)

let test_comparator_count_regression_fails () =
  with_current (fun current ->
      (* events is a deterministic count with the default tolerance (20%):
         a 30% jump must hard-fail the gate. *)
      let current =
        {
          current with
          B.metrics =
            List.map
              (fun m ->
                if m.B.name = "events" then
                  B.count ~name:"events" ~unit_:"events" (74994.0 *. 1.3)
                else m)
              current.B.metrics;
        }
      in
      let verdicts = B.compare_docs ~baseline:sample_doc ~current () in
      Alcotest.(check bool) "gate fails" true (B.has_failure verdicts);
      let v = find_verdict "events" verdicts in
      Alcotest.(check bool) "count regression = Fail" true (v.B.v_status = B.Fail);
      Alcotest.(check (float 1e-6)) "deviation" 0.3 v.B.v_deviation)

let test_comparator_time_regression_advisory () =
  with_current (fun current ->
      (* A 10x wall-clock blowup is advisory: time metrics never fail. *)
      let current =
        {
          current with
          B.metrics =
            List.map
              (fun m ->
                if m.B.name = "push_pop" then
                  B.metric ~name:"push_pop" ~unit_:"ns/op" [ 810.0 ]
                else m)
              current.B.metrics;
        }
      in
      let verdicts = B.compare_docs ~baseline:sample_doc ~current () in
      let v = find_verdict "push_pop" verdicts in
      Alcotest.(check bool) "time regression = Advisory" true (v.B.v_status = B.Advisory);
      Alcotest.(check bool) "advisory does not fail the gate" false
        (B.has_failure verdicts))

let test_comparator_per_metric_tolerance () =
  with_current (fun current ->
      (* minor_words carries its own 50% tolerance: +40% passes where the
         20% default would have failed. *)
      let current =
        {
          current with
          B.metrics =
            List.map
              (fun m ->
                if m.B.name = "minor_words" then
                  B.count ~tolerance:0.5 ~name:"minor_words" ~unit_:"words" 300.0
                else m)
              current.B.metrics;
        }
      in
      let verdicts = B.compare_docs ~baseline:sample_doc ~current () in
      let v = find_verdict "minor_words" verdicts in
      Alcotest.(check bool) "within per-metric tolerance" true
        (v.B.v_status = B.Ok_within))

let test_comparator_missing_metric_fails () =
  with_current (fun current ->
      let current =
        {
          current with
          B.metrics = List.filter (fun m -> m.B.name <> "events") current.B.metrics;
        }
      in
      let verdicts = B.compare_docs ~baseline:sample_doc ~current () in
      let v = find_verdict "events" verdicts in
      Alcotest.(check bool) "missing = Missing" true (v.B.v_status = B.Missing);
      Alcotest.(check bool) "missing fails the gate" true (B.has_failure verdicts))

let test_render_verdicts () =
  with_current (fun current ->
      let verdicts = B.compare_docs ~baseline:sample_doc ~current () in
      let s = B.render_verdicts verdicts in
      let contains sub =
        let n = String.length sub and len = String.length s in
        let rec at i = i + n <= len && (String.sub s i n = sub || at (i + 1)) in
        at 0
      in
      Alcotest.(check bool) "mentions experiment" true (contains "engine");
      Alcotest.(check bool) "mentions metric" true (contains "push_pop"))

let test_filename_and_write_dir () =
  Alcotest.(check string) "filename" "BENCH_engine.json" (B.filename "engine");
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "jord_bench_json_test" in
  let path = B.write_dir ~dir sample_doc in
  match B.read_file path with
  | Ok doc -> Alcotest.(check doc_testable) "file round trip" sample_doc doc
  | Error m -> Alcotest.failf "read_file: %s" m

let suite =
  [
    Alcotest.test_case "metric median/iqr" `Quick test_metric_summary;
    Alcotest.test_case "doc round trip" `Quick test_round_trip;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "baseline round trip" `Quick test_baseline_round_trip;
    Alcotest.test_case "comparator: within tolerance" `Quick
      test_comparator_within_tolerance;
    Alcotest.test_case "comparator: count regression fails" `Quick
      test_comparator_count_regression_fails;
    Alcotest.test_case "comparator: time regression advisory" `Quick
      test_comparator_time_regression_advisory;
    Alcotest.test_case "comparator: per-metric tolerance" `Quick
      test_comparator_per_metric_tolerance;
    Alcotest.test_case "comparator: missing metric fails" `Quick
      test_comparator_missing_metric_fails;
    Alcotest.test_case "comparator: render" `Quick test_render_verdicts;
    Alcotest.test_case "filename + write_dir" `Quick test_filename_and_write_dir;
  ]
