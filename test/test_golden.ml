(* Golden-run determinism: the seeded scenarios of Jord_exp.Golden must
   reproduce test/golden.expected bit-for-bit. This is the refactor guard —
   a structural change to the engine or the FaaS layers must not move a
   single measured number. *)

let expected_path () =
  (* cwd is test/ under `dune runtest`, the workspace root under
     `dune exec`. *)
  if Sys.file_exists "golden.expected" then "golden.expected"
  else Filename.concat "test" "golden.expected"

let read_expected () =
  let ic = open_in (expected_path ()) in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let test_golden_bit_identical () =
  let expected = read_expected () in
  let actual = Jord_exp.Golden.report () in
  if String.equal expected actual then ()
  else begin
    (* Point at the first diverging line: far more useful than a giant
       string diff in the Alcotest failure output. *)
    let exp_lines = String.split_on_char '\n' expected in
    let act_lines = String.split_on_char '\n' actual in
    let rec first_diff i = function
      | e :: es, a :: as_ ->
          if String.equal e a then first_diff (i + 1) (es, as_)
          else Some (i, e, a)
      | e :: _, [] -> Some (i, e, "<missing>")
      | [], a :: _ -> Some (i, "<missing>", a)
      | [], [] -> None
    in
    match first_diff 1 (exp_lines, act_lines) with
    | Some (line, e, a) ->
        Alcotest.failf
          "golden mismatch at line %d\n  expected: %s\n  actual:   %s\n\
           (regenerate with `dune exec bin/golden_gen.exe > test/golden.expected` \
           only if the change is meant to move numbers)"
          line e a
    | None -> Alcotest.fail "golden mismatch (whitespace only?)"
  end

let test_golden_reruns_identically () =
  (* Two in-process runs must agree exactly: no hidden global state. *)
  let a = Jord_exp.Golden.report () in
  let b = Jord_exp.Golden.report () in
  Alcotest.(check bool) "report is reproducible in-process" true (String.equal a b)

let test_golden_parallel_identical () =
  (* The domain pool must not move a single byte: scenarios are gathered
     in submission order regardless of which worker ran them. *)
  let a = Jord_exp.Golden.report () in
  let b = Jord_exp.Golden.report ~jobs:4 () in
  Alcotest.(check bool) "report at jobs=4 is byte-identical" true (String.equal a b)

let test_golden_sharded_identical () =
  (* The conservative parallel core's acceptance bar: splitting the cluster
     scenarios over engine shards must not move a single byte of the
     report — same completions, same figures, same trace counts. *)
  let a = Jord_exp.Golden.report () in
  let b = Jord_exp.Golden.report ~shards:2 () in
  Alcotest.(check bool) "report at shards=2 is byte-identical" true (String.equal a b)

let suite =
  [
    Alcotest.test_case "bit-identical to golden.expected" `Quick
      test_golden_bit_identical;
    Alcotest.test_case "re-run determinism" `Quick test_golden_reruns_identically;
    Alcotest.test_case "domain-pool determinism" `Slow test_golden_parallel_identical;
    Alcotest.test_case "sharded determinism" `Slow test_golden_sharded_identical;
  ]
