open Jord_faas
module Time = Jord_sim.Time

(* A small deterministic app exercising sync, async and nested chains. *)
let tiny_app =
  let open Model in
  let leaf name ns =
    { name; make_phases = (fun _ -> [ compute ns ]); state_bytes = 1024; code_bytes = 1024 }
  in
  let mid =
    {
      name = "mid";
      make_phases = (fun _ -> [ compute 150.0; invoke "leafB"; compute 50.0 ]);
      state_bytes = 1024;
      code_bytes = 1024;
    }
  in
  let entry =
    {
      name = "entry";
      make_phases =
        (fun _ ->
          [
            compute 200.0;
            invoke ~mode:Async "leafA";
            invoke "mid";
            wait;
            compute 100.0;
          ]);
      state_bytes = 1024;
      code_bytes = 1024;
    }
  in
  {
    app_name = "tiny";
    fns = [ entry; mid; leaf "leafA" 120.0; leaf "leafB" 80.0 ];
    entries = [ ("entry", 1.0) ];
  }

let small_config variant =
  {
    Server.default_config with
    Server.variant;
    machine = Jord_arch.Config.with_cores Jord_arch.Config.default 8;
    orchestrators = 1;
  }

let run_n ?(variant = Variant.Jord) n =
  let server = Server.create (small_config variant) tiny_app in
  let roots = ref [] in
  Server.on_root_complete server (fun r -> roots := r :: !roots);
  let engine = Server.engine server in
  for i = 0 to n - 1 do
    Jord_sim.Engine.schedule_at engine
      ~time:(Time.of_ns (float_of_int i *. 400.0))
      (fun _ -> Server.submit server ())
  done;
  Server.run server;
  (server, List.rev !roots)

let test_all_requests_complete () =
  let server, roots = run_n 50 in
  Alcotest.(check int) "all complete" 50 (List.length roots);
  Alcotest.(check int) "server count agrees" 50 (Server.completed_roots server);
  Alcotest.(check int) "no stuck continuations" 0 (Server.live_continuations server);
  Alcotest.(check int) "nothing dropped" 0 (Server.dropped_requests server);
  Alcotest.(check (list string)) "conservation invariants hold" []
    (Server.check_invariants server)

let test_tree_accounting () =
  let _, roots = run_n 20 in
  List.iter
    (fun r ->
      let open Request in
      Alcotest.(check int) "4 invocations per tree" 4 r.invocations;
      (* Total compute: 350 (entry) + 120 + 150 + 50 (mid) + 80 = 700 ns. *)
      Alcotest.(check (float 1.0)) "exec sums the tree" 700.0 r.exec_ns;
      Alcotest.(check bool) "isolation charged" true (r.isolation_ns > 0.0);
      Alcotest.(check bool) "dispatch charged" true (r.dispatch_ns > 0.0);
      Alcotest.(check bool) "latency covers exec" true (latency_ns r >= 700.0);
      Alcotest.(check bool) "finished" true r.finished)
    roots

let test_deterministic () =
  let _, roots1 = run_n 30 in
  let _, roots2 = run_n 30 in
  List.iter2
    (fun a b ->
      Alcotest.(check (float 1e-9)) "identical latencies" (Request.latency_ns a)
        (Request.latency_ns b))
    roots1 roots2

let test_ni_has_less_isolation () =
  let _, jord = run_n ~variant:Variant.Jord 30 in
  let _, ni = run_n ~variant:Variant.Jord_ni 30 in
  let iso rs = List.fold_left (fun acc r -> acc +. r.Request.isolation_ns) 0.0 rs in
  Alcotest.(check bool) "NI isolation still pays memory mgmt" true (iso ni > 0.0);
  Alcotest.(check bool) "NI cheaper isolation" true (iso ni < iso jord *. 0.75);
  let lat rs = List.fold_left (fun acc r -> acc +. Request.latency_ns r) 0.0 rs in
  Alcotest.(check bool) "NI faster end to end" true (lat ni < lat jord)

let test_nightcore_slower () =
  let _, jord = run_n ~variant:Variant.Jord 30 in
  let _, nc = run_n ~variant:Variant.Nightcore 30 in
  let lat rs = List.fold_left (fun acc r -> acc +. Request.latency_ns r) 0.0 rs in
  Alcotest.(check bool) "NightCore much slower" true (lat nc > 2.0 *. lat jord)

let test_bt_slower_than_plain () =
  let _, jord = run_n ~variant:Variant.Jord 30 in
  let _, bt = run_n ~variant:Variant.Jord_bt 30 in
  let iso rs = List.fold_left (fun acc r -> acc +. r.Request.isolation_ns) 0.0 rs in
  Alcotest.(check bool) "B-tree isolation dearer" true (iso bt > iso jord)

let test_no_pd_or_chunk_leak () =
  let server, _ = run_n 40 in
  let priv = Server.privlib server in
  (* Only the bootstrap VMAs, code VMAs and the free-list floors remain. *)
  Alcotest.(check int) "no PDs leaked" 0
    (Jord_privlib.Pd.live_count (Jord_privlib.Privlib.pds priv));
  let store = Jord_vm.Hw.store (Server.hw server) in
  (* 3 bootstrap + 4 function code VMAs. *)
  Alcotest.(check int) "no VMAs leaked" 7 (Jord_vm.Vma_store.count store);
  Alcotest.(check (list string)) "invariant checker agrees" []
    (Server.check_invariants server)

let test_policy_ablation_still_works () =
  List.iter
    (fun policy ->
      let config = { (small_config Variant.Jord) with Server.policy } in
      let server = Server.create config tiny_app in
      let count = ref 0 in
      Server.on_root_complete server (fun _ -> incr count);
      for i = 0 to 19 do
        Jord_sim.Engine.schedule_at (Server.engine server)
          ~time:(Time.of_ns (float_of_int i *. 500.0))
          (fun _ -> Server.submit server ())
      done;
      Server.run server;
      Alcotest.(check int)
        (Policy.name policy ^ " completes everything")
        20 !count)
    [ Policy.Jbsq; Policy.Random; Policy.Round_robin ]

let test_overload_sheds () =
  (* Offered load far beyond capacity: the cap bounds the queue and the
     server still drains what it accepted. *)
  let server = Server.create (small_config Variant.Jord) tiny_app in
  let count = ref 0 in
  Server.on_root_complete server (fun _ -> incr count);
  let engine = Server.engine server in
  for i = 0 to 99_999 do
    Jord_sim.Engine.schedule_at engine
      ~time:(Time.of_ns (float_of_int i *. 1.0))
      (fun _ -> Server.submit server ())
  done;
  Server.run ~until:(Time.of_us 20_000.0) server;
  Alcotest.(check bool) "some dropped" true (Server.dropped_requests server > 0);
  Alcotest.(check bool) "some completed" true (!count > 0);
  (* Conservation must hold even at a mid-run cut-off: accepted-but-
     unfinished work is exactly the in_flight term. *)
  Alcotest.(check (list string)) "conservation holds under overload" []
    (Server.check_invariants server)

let test_figure4_op_counts () =
  (* Spec-level check of the Figure-4 flow: a root with one sync child must
     cost exactly the paper's operation sequence. Per request:
     PD ops: 2 cget + 2 ccall + 1 cexit + 1 center + 2 creturn + 2 cput = 10.
     VMA ops: 4 mmap (root ArgBuf, 2 stacks/heaps, child ArgBuf)
            + 4 munmap + 7 pmove + 3 pcopy (2 code grants + 1 reap)
            + 2 mprotect (code revokes) = 20. *)
  let app =
    let open Model in
    let leaf =
      { name = "leaf"; make_phases = (fun _ -> [ compute 100.0 ]); state_bytes = 1024; code_bytes = 1024 }
    in
    let entry =
      { name = "entry"; make_phases = (fun _ -> [ compute 100.0; invoke "leaf"; compute 50.0 ]); state_bytes = 1024; code_bytes = 1024 }
    in
    { app_name = "two"; fns = [ entry; leaf ]; entries = [ ("entry", 1.0) ] }
  in
  let server = Server.create (small_config Variant.Jord) app in
  let priv = Server.privlib server in
  Jord_privlib.Privlib.reset_accounting priv;
  let n = 5 in
  let engine = Server.engine server in
  for i = 0 to n - 1 do
    Jord_sim.Engine.schedule_at engine
      ~time:(Time.of_ns (float_of_int i *. 5000.0))
      (fun _ -> Server.submit server ())
  done;
  Server.run server;
  Alcotest.(check int) "PD ops per request" (10 * n)
    (Jord_privlib.Privlib.call_count priv Jord_privlib.Privlib.Pd_mgmt);
  Alcotest.(check int) "VMA ops per request" (20 * n)
    (Jord_privlib.Privlib.call_count priv Jord_privlib.Privlib.Vma_mgmt)

let test_worst_case_probes () =
  let server, _ = run_n 5 in
  Alcotest.(check bool) "dispatch probe positive" true
    (Server.worst_case_dispatch_ns server > 0.0);
  Alcotest.(check bool) "shootdown probe positive" true
    (Server.worst_case_shootdown_ns server > 0.0)

let suite =
  [
    Alcotest.test_case "all requests complete" `Quick test_all_requests_complete;
    Alcotest.test_case "tree accounting" `Quick test_tree_accounting;
    Alcotest.test_case "deterministic" `Quick test_deterministic;
    Alcotest.test_case "NI cheaper than Jord" `Quick test_ni_has_less_isolation;
    Alcotest.test_case "NightCore slower" `Quick test_nightcore_slower;
    Alcotest.test_case "B-tree dearer" `Quick test_bt_slower_than_plain;
    Alcotest.test_case "no PD/VMA leak" `Quick test_no_pd_or_chunk_leak;
    Alcotest.test_case "policy ablation" `Quick test_policy_ablation_still_works;
    Alcotest.test_case "overload sheds load" `Slow test_overload_sheds;
    Alcotest.test_case "figure-4 op counts" `Quick test_figure4_op_counts;
    Alcotest.test_case "worst-case probes" `Quick test_worst_case_probes;
  ]
