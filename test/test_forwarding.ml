(* Forwarding-path tests at the wire level: a hand-built server ring whose
   forward callbacks capture the actual [Request.t] values in flight, so we
   can assert the ArgBuf handoff protocol directly — origin buffer recorded
   on the first hop and restored on response, intermediate copies reclaimed
   on re-hops, and out/in counter balance. Complements test_cluster.ml,
   which drives the same mechanism through the [Cluster] wrapper. *)

open Jord_faas
module Time = Jord_sim.Time
module Engine = Jord_sim.Engine

(* A ring of [n] servers like Cluster's, but with an instrumented forward
   callback. Returns (servers, hops table, first-hop requests). *)
let instrumented_ring ~servers:n ~requests ~gap_ns =
  let engine = Engine.create () in
  let config = { Test_cluster.small_config with Server.forward_after = 2 } in
  let servers =
    Array.init n (fun i ->
        Server.create ~engine { config with Server.seed = config.Server.seed + i }
          Test_cluster.fanout_app)
  in
  let hops = Hashtbl.create 32 in
  let first_hops = ref [] in
  Array.iteri
    (fun i s ->
      Server.set_forward s
        (Some
           (fun req ->
             (* In flight the payload is serialized: the local buffer is
                already detached, and the origin one is on record. *)
             Alcotest.(check bool) "in flight: marked forwarded" true
               req.Request.forwarded;
             Alcotest.(check int) "in flight: no local argbuf" 0 req.Request.argbuf;
             Alcotest.(check bool) "in flight: origin argbuf recorded" true
               (req.Request.home_argbuf <> 0);
             let count =
               match Hashtbl.find_opt hops req.Request.id with
               | Some c -> c + 1
               | None -> 1
             in
             Hashtbl.replace hops req.Request.id count;
             if count = 1 then first_hops := req :: !first_hops;
             let target = servers.((i + 1) mod n) in
             Engine.schedule engine
               ~after:(Netmodel.one_way (Server.netmodel s))
               (fun _ -> Server.receive_forwarded target req))))
    servers;
  for i = 0 to requests - 1 do
    let s = servers.(i mod n) in
    Engine.schedule_at engine
      ~time:(Time.of_ns (float_of_int i *. gap_ns))
      (fun _ -> Server.submit s ())
  done;
  Engine.run engine;
  (servers, hops, !first_hops)

let total f servers = Array.fold_left (fun acc s -> acc + f s) 0 servers

let test_round_trip_restores_home_argbuf () =
  let servers, _, first_hops = instrumented_ring ~servers:2 ~requests:80 ~gap_ns:900.0 in
  Alcotest.(check bool)
    (Printf.sprintf "some requests forwarded (%d)" (List.length first_hops))
    true
    (first_hops <> []);
  (* Every server drained: all forwarded children completed and responded. *)
  Array.iter
    (fun s -> Alcotest.(check int) "drained" 0 (Server.live_continuations s))
    servers;
  List.iter
    (fun req ->
      Alcotest.(check bool) "response restored the origin argbuf" true
        (req.Request.argbuf = req.Request.home_argbuf);
      Alcotest.(check bool) "origin argbuf non-null" true (req.Request.argbuf <> 0))
    first_hops

let test_out_in_balance () =
  let servers, hops, _ = instrumented_ring ~servers:2 ~requests:80 ~gap_ns:900.0 in
  let wire_hops = Hashtbl.fold (fun _ c acc -> acc + c) hops 0 in
  Alcotest.(check int) "forwarded_out counts every hop" wire_hops
    (total Server.forwarded_out servers);
  Alcotest.(check int) "received_in counts every hop" wire_hops
    (total Server.received_in servers);
  Alcotest.(check int) "out/in balance"
    (total Server.forwarded_out servers)
    (total Server.received_in servers);
  (* Per-member tallies only balance cluster-wide: sum before checking. *)
  let tally =
    Array.fold_left
      (fun acc s ->
        Jord_fault_inject.Invariant.add acc (Server.conservation s))
      Jord_fault_inject.Invariant.zero servers
  in
  Alcotest.(check (list string)) "summed invariants hold" []
    (Jord_fault_inject.Invariant.check tally)

let test_rehop_reclaims_intermediate_argbuf () =
  (* Push a 3-server ring hard enough that some request bounces through an
     intermediate server (hop count >= 2). The intermediate server
     materializes a local copy of the payload on arrival; on the re-hop
     that copy must be reclaimed, not leaked. *)
  let servers, hops, _ = instrumented_ring ~servers:3 ~requests:160 ~gap_ns:600.0 in
  let rehops = Hashtbl.fold (fun _ c acc -> if c >= 2 then acc + 1 else acc) hops 0 in
  Alcotest.(check bool)
    (Printf.sprintf "some request re-hopped (%d)" rehops)
    true (rehops > 0);
  Array.iter
    (fun s ->
      Alcotest.(check int) "drained" 0 (Server.live_continuations s);
      (* 3 bootstrap VMAs + 2 function code VMAs per server remain; every
         ArgBuf — including intermediate copies of re-hopped requests —
         was released. *)
      Alcotest.(check int) "no ArgBuf VMAs leaked" 5
        (Jord_vm.Vma_store.count (Jord_vm.Hw.store (Server.hw s))))
    servers

let suite =
  [
    Alcotest.test_case "round trip restores home_argbuf" `Quick
      test_round_trip_restores_home_argbuf;
    Alcotest.test_case "forwarded_out/received_in balance" `Quick test_out_in_balance;
    Alcotest.test_case "re-hop reclaims intermediate ArgBuf" `Quick
      test_rehop_reclaims_intermediate_argbuf;
  ]
