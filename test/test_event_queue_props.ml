(* Property tests of the indexed-heap event queue: pop order must be a
   stable sort of the push order whatever the heap does internally, handles
   must survive arbitrary cancel/reschedule interleavings, and the heap's
   structural invariants must hold after every operation. *)

module Eq = Jord_sim.Event_queue
module Engine = Jord_sim.Engine
module Time = Jord_sim.Time

(* --- Reference model: a queue is just the list of its pending events in
   push order; popping takes the earliest (stable on ties). --- *)

type op =
  | Push of int (* time *)
  | Pop
  | Cancel of int (* index into the handles issued so far *)
  | Reschedule of int * int (* handle index, new time *)

let gen_op =
  QCheck.Gen.(
    frequency
      [
        (5, map (fun t -> Push t) (int_bound 50));
        (3, return Pop);
        (2, map (fun i -> Cancel i) (int_bound 200));
        (2, map2 (fun i t -> Reschedule (i, t)) (int_bound 200) (int_bound 50));
      ])

let print_op = function
  | Push t -> Printf.sprintf "push %d" t
  | Pop -> "pop"
  | Cancel i -> Printf.sprintf "cancel #%d" i
  | Reschedule (i, t) -> Printf.sprintf "resched #%d @%d" i t

let arb_ops =
  QCheck.make
    ~print:(fun l -> String.concat "; " (List.map print_op l))
    QCheck.Gen.(list_size (int_bound 200) gen_op)

(* Run the op list against both the real queue and a model list of
   [(time, seq, id)] kept in logical-push order; the model's pop takes the
   min (time, seq). Returns false on the first divergence. *)
let agrees_with_model ops =
  let q = Eq.create () in
  let model = ref [] in
  let handles = ref [||] in
  let next_id = ref 0 in
  let next_seq = ref 0 in
  let record h id =
    handles := Array.append !handles [| (h, id) |];
    incr next_id
  in
  let model_pop () =
    match
      List.fold_left
        (fun best ((t, s, _) as e) ->
          match best with
          | None -> Some e
          | Some (bt, bs, _) -> if t < bt || (t = bt && s < bs) then Some e else best)
        None !model
    with
    | None -> None
    | Some ((_, _, id) as e) ->
        model := List.filter (fun (_, _, i) -> i <> id) !model;
        Some e
  in
  let ok = ref true in
  List.iter
    (fun op ->
      if !ok then begin
        (match op with
        | Push t ->
            let h = Eq.push q ~time:t !next_id in
            model := !model @ [ (t, !next_seq, !next_id) ];
            incr next_seq;
            record h !next_id
        | Pop -> (
            match (Eq.pop q, model_pop ()) with
            | None, None -> ()
            | Some (t, id), Some (mt, _, mid) -> ok := !ok && t = mt && id = mid
            | _ -> ok := false)
        | Cancel i ->
            if Array.length !handles > 0 then begin
              let h, id = !handles.(i mod Array.length !handles) in
              let live = List.exists (fun (_, _, j) -> j = id) !model in
              let r = Eq.cancel q h in
              ok := !ok && r = live;
              if r then model := List.filter (fun (_, _, j) -> j <> id) !model
            end
        | Reschedule (i, t) ->
            if Array.length !handles > 0 then begin
              let h, id = !handles.(i mod Array.length !handles) in
              let live = List.exists (fun (_, _, j) -> j = id) !model in
              let r = Eq.reschedule q h ~time:t in
              ok := !ok && r = live;
              if r then begin
                (* A reschedule re-sequences: among equal new timestamps the
                   event fires last, as a fresh push would. *)
                model := List.filter (fun (_, _, j) -> j <> id) !model;
                model := !model @ [ (t, !next_seq, id) ];
                incr next_seq
              end
            end);
        ok := !ok && Eq.invariants_ok q && Eq.length q = List.length !model
      end)
    ops;
  (* Drain both: remaining pops must agree too. *)
  while !ok && not (Eq.is_empty q) do
    match (Eq.pop q, model_pop ()) with
    | Some (t, id), Some (mt, _, mid) -> ok := !ok && t = mt && id = mid
    | _ -> ok := false
  done;
  !ok && !model = []

let prop_model =
  QCheck.Test.make ~name:"queue = stable-sorted model under push/pop/cancel/resched"
    ~count:200 arb_ops agrees_with_model

(* FIFO stability: events pushed at one timestamp pop in push order. *)
let prop_fifo =
  QCheck.Test.make ~name:"same-timestamp events pop in push order" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 100) (int_bound 5))
    (fun times ->
      let q = Eq.create () in
      List.iteri (fun i t -> ignore (Eq.push q ~time:t i : Eq.handle)) times;
      (* Stable sort of (time, push index) is the required pop order. *)
      let expected =
        List.mapi (fun i t -> (t, i)) times
        |> List.stable_sort (fun (a, _) (b, _) -> compare a b)
      in
      let popped = ref [] in
      let rec drain () =
        match Eq.pop q with
        | None -> ()
        | Some (t, i) ->
            popped := (t, i) :: !popped;
            drain ()
      in
      drain ();
      List.rev !popped = expected)

(* Handles stay valid across unrelated operations; a popped or cancelled
   handle is stale forever even after its slot is recycled. *)
let test_handle_staleness () =
  let q = Eq.create () in
  let h1 = Eq.push q ~time:5 "a" in
  let h2 = Eq.push q ~time:3 "b" in
  Alcotest.(check bool) "h1 pending" true (Eq.holds q h1);
  Alcotest.(check (option int)) "time_of h1" (Some 5) (Eq.time_of q h1);
  Alcotest.(check bool) "cancel h2" true (Eq.cancel q h2);
  Alcotest.(check bool) "h2 stale" false (Eq.holds q h2);
  Alcotest.(check bool) "double cancel fails" false (Eq.cancel q h2);
  (* The slot h2 used gets recycled: the old handle must still be stale. *)
  let h3 = Eq.push q ~time:1 "c" in
  Alcotest.(check bool) "h2 still stale after reuse" false (Eq.cancel q h2);
  Alcotest.(check bool) "h3 live" true (Eq.holds q h3);
  Alcotest.(check (option (pair int string))) "pop c" (Some (1, "c")) (Eq.pop q);
  Alcotest.(check bool) "h3 stale after pop" false (Eq.holds q h3);
  Alcotest.(check bool) "none_handle never live" false (Eq.holds q Eq.none_handle);
  Alcotest.(check bool) "invariants" true (Eq.invariants_ok q)

let test_reschedule_resequences () =
  let q = Eq.create () in
  let h = Eq.push q ~time:10 "moved" in
  ignore (Eq.push q ~time:10 "stays" : Eq.handle);
  (* Rescheduling to the same time must re-sequence "moved" behind
     "stays", exactly as a fresh push would land. *)
  Alcotest.(check bool) "resched ok" true (Eq.reschedule q h ~time:10);
  Alcotest.(check (option (pair int string))) "stays first" (Some (10, "stays")) (Eq.pop q);
  Alcotest.(check (option (pair int string))) "moved second" (Some (10, "moved")) (Eq.pop q)

(* --- Engine-level: cancel/reschedule and run ~until semantics --- *)

let test_engine_cancel () =
  let e = Engine.create () in
  let fired = ref [] in
  let mark name _ = fired := name :: !fired in
  let h1 = Engine.schedule_handle e ~after:10 (mark "a") in
  let h2 = Engine.schedule_handle e ~after:20 (mark "b") in
  ignore (Engine.schedule_handle e ~after:30 (mark "c") : Engine.handle);
  Alcotest.(check bool) "cancel b" true (Engine.cancel e h2);
  Alcotest.(check bool) "b not pending" false (Engine.pending_handle e h2);
  Alcotest.(check bool) "a pending" true (Engine.pending_handle e h1);
  Engine.run e;
  Alcotest.(check (list string)) "only a, c fired" [ "a"; "c" ] (List.rev !fired);
  Alcotest.(check int) "cancelled counter" 1 (Engine.cancelled e);
  Alcotest.(check bool) "stale cancel" false (Engine.cancel e h1)

let test_engine_reschedule () =
  let e = Engine.create () in
  let order = ref [] in
  let mark name eng = order := (name, Engine.now eng) :: !order in
  let h = Engine.schedule_handle e ~after:100 (mark "moved") in
  ignore (Engine.schedule_handle e ~after:50 (mark "fixed") : Engine.handle);
  (* Pull the far event before the near one. *)
  Alcotest.(check bool) "resched ok" true (Engine.reschedule e h ~time:25);
  Engine.run e;
  Alcotest.(check (list (pair string int)))
    "moved fires first at its new time"
    [ ("moved", 25); ("fixed", 50) ]
    (List.rev !order)

let test_run_until_advances_now () =
  (* The satellite fix: a drained run must still advance [now] to the
     limit, so busy fractions are computed against the true horizon. *)
  let e = Engine.create () in
  Engine.schedule e ~after:10 (fun _ -> ());
  Engine.run ~until:1000 e;
  Alcotest.(check int) "now = limit after drain" 1000 (Engine.now e);
  (* Events beyond the limit stay queued and now stops at the limit. *)
  let e2 = Engine.create () in
  Engine.schedule e2 ~after:500 (fun _ -> ());
  Engine.schedule e2 ~after:2000 (fun _ -> ());
  Engine.run ~until:1000 e2;
  Alcotest.(check int) "now = limit with events beyond" 1000 (Engine.now e2);
  Alcotest.(check int) "late event still pending" 1 (Engine.pending e2);
  (* A later run without a limit picks the remaining event up. *)
  Engine.run e2;
  Alcotest.(check int) "resumes past the limit" 2000 (Engine.now e2)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_model;
    QCheck_alcotest.to_alcotest prop_fifo;
    Alcotest.test_case "handle staleness + slot reuse" `Quick test_handle_staleness;
    Alcotest.test_case "reschedule re-sequences ties" `Quick test_reschedule_resequences;
    Alcotest.test_case "engine cancel" `Quick test_engine_cancel;
    Alcotest.test_case "engine reschedule" `Quick test_engine_reschedule;
    Alcotest.test_case "run ~until advances now" `Quick test_run_until_advances_now;
  ]
