(* Causal spans, phase attribution and the critical-path profiler.

   The anchor is the conservation identity: for every completed request,
   queue_wait + backoff + run + vm_stall + wire + suspend_wait equals the
   end-to-end latency EXACTLY in integer picoseconds — checked here as a
   qcheck property over random workloads and fault plans, and against the
   engine's own latency measurement. *)

open Jord_faas
module Time = Jord_sim.Time
module Engine = Jord_sim.Engine
module Plan = Jord_fault_inject.Plan
module Span = Jord_obsv.Span
module Critical_path = Jord_obsv.Critical_path
module Report = Jord_obsv.Report
module Tracefile = Jord_obsv.Tracefile

let contains needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

(* A cluster chaos run sharing one tracer across all members; returns the
   span forest plus the engine's own per-root latency measurements. *)
let traced_chaos_run ?(servers = 3) ?(capacity = 1 lsl 17) ~config ~requests
    ~gap_ns () =
  let cluster =
    Cluster.create ~forward_after:2 ~servers ~config Test_cluster.fanout_app
  in
  let tracer = Trace.create ~capacity () in
  Cluster.set_tracer cluster (Some tracer);
  let roots = ref [] in
  Cluster.on_root_complete cluster (fun r -> roots := r :: !roots);
  let engine = Cluster.engine cluster in
  for i = 0 to requests - 1 do
    Engine.schedule_at engine
      ~time:(Time.of_ns (float_of_int i *. gap_ns))
      (fun _ -> Cluster.submit cluster ())
  done;
  Cluster.run cluster;
  (tracer, Span.of_trace tracer, !roots)

(* Span end-to-end must equal what the engine itself measured for the root:
   completed_at - arrival, in exact integer picoseconds. *)
let check_roots_match_engine r roots =
  List.for_all
    (fun (root : Request.root) ->
      match Span.find r root.Request.root_id with
      | None -> false
      | Some sp ->
          Span.complete sp
          && Span.e2e_ps sp
             = Time.(root.Request.completed_at - root.Request.arrival))
    roots

let prop_conservation =
  QCheck.Test.make
    ~name:
      "conservation: phases sum exactly to end-to-end for every completed \
       request, under random workloads and fault plans"
    ~count:10 Test_chaos.arb_chaos_spec
    (fun spec ->
      let plan =
        {
          Plan.seed = spec.Test_chaos.fseed;
          crash = float_of_int spec.Test_chaos.crash_pm /. 1000.0;
          restart_us = 5.0;
          stall = 0.05;
          stall_us = 1.0;
          loss = float_of_int spec.Test_chaos.loss_pm /. 1000.0;
          dup = float_of_int spec.Test_chaos.dup_pm /. 1000.0;
          jitter_us = 1.0;
          slow = 0.05;
          slow_factor = 2.0;
          server_crash = 0.0;
          server_down_us = 200.0;
          warm_loss = 1.0;
        }
      in
      let config =
        {
          Test_cluster.small_config with
          Server.seed = spec.Test_chaos.wseed;
          fault_plan = Some plan;
        }
      in
      let _, r, roots = traced_chaos_run ~config ~requests:50 ~gap_ns:1200.0 () in
      let _, done_, _, _ = Span.stats r in
      Span.conservation_violations r = []
      && done_ > 0 && roots <> []
      && check_roots_match_engine r roots)

let test_single_server_crash_conservation () =
  let config =
    {
      Test_cluster.small_config with
      Server.fault_plan =
        Some { Plan.none with Plan.seed = 11; crash = 0.15; restart_us = 4.0 };
    }
  in
  let server = Server.create config Test_cluster.fanout_app in
  let tracer = Trace.create () in
  Server.set_tracer server (Some tracer);
  let roots = ref [] in
  Server.on_root_complete server (fun r -> roots := r :: !roots);
  let engine = Server.engine server in
  for i = 0 to 79 do
    Engine.schedule_at engine
      ~time:(Time.of_ns (float_of_int i *. 2000.0))
      (fun _ -> Server.submit server ())
  done;
  Server.run server;
  Alcotest.(check bool) "crashes injected" true (Server.crashes server > 0);
  let r = Span.of_trace tracer in
  Alcotest.(check (list string)) "conservation holds through crashes" []
    (Span.conservation_violations r);
  Alcotest.(check bool) "spans match engine latencies" true
    (check_roots_match_engine r !roots);
  (* Crashed-and-recovered requests show the downtime as queue wait. *)
  Alcotest.(check bool) "some span records a crash" true
    (List.exists (fun sp -> sp.Span.crashes > 0)
       (List.of_seq
          (Hashtbl.to_seq_values r.Span.spans)))

let test_critical_path_conserves () =
  let _, r, _ =
    traced_chaos_run
      ~config:Test_cluster.small_config ~requests:60 ~gap_ns:900.0 ()
  in
  let roots = Report.complete_roots r in
  Alcotest.(check bool) "has complete roots" true (roots <> []);
  List.iter
    (fun sp ->
      let b = Critical_path.of_root r sp in
      Alcotest.(check int)
        (Printf.sprintf "blame total = e2e for root %d" sp.Span.req_id)
        (Span.e2e_ps sp)
        (Critical_path.total_ps b);
      Alcotest.(check bool) "chain starts at the root" true
        (match b.Critical_path.chain with
        | (id, _) :: _ -> id = sp.Span.req_id
        | [] -> false))
    roots;
  (* The fanout app really exercises fan-out: some chain must be > 1 deep. *)
  Alcotest.(check bool) "some chain descends into a child" true
    (List.exists
       (fun sp ->
         List.length (Critical_path.of_root r sp).Critical_path.chain > 1)
       roots)

let test_wraparound_truncation () =
  (* A ring too small for the run: analysis must still terminate, mark the
     result truncated, and say so in every report. *)
  let _, r, _ =
    traced_chaos_run ~capacity:64 ~config:Test_cluster.small_config
      ~requests:40 ~gap_ns:900.0 ()
  in
  Alcotest.(check bool) "marked truncated" true r.Span.truncated;
  let total, _, _, partial = Span.stats r in
  Alcotest.(check bool) "some spans partial (lost their birth)" true
    (partial > 0 && partial <= total);
  Alcotest.(check bool) "breakdown warns" true
    (contains "ring wrapped" (Report.breakdown r));
  Alcotest.(check bool) "critical-path warns" true
    (contains "ring wrapped" (Report.critical_path r));
  (* Partial spans are excluded from conservation, so the check still
     passes on the retained suffix. *)
  Alcotest.(check (list string)) "retained suffix conserves" []
    (Span.conservation_violations r)

let test_iter_fold_no_materialize () =
  let tr = Trace.create ~capacity:4 () in
  for i = 0 to 9 do
    Trace.emit tr ~at_ps:(i * 1000) ~kind:Trace.Start ~req_id:i ~root_id:0
      ~fn:"f" ~core:0 ()
  done;
  let seen = ref [] in
  Trace.iter tr (fun e -> seen := e.Trace.req_id :: !seen);
  Alcotest.(check (list int)) "iter in ring order, oldest first" [ 6; 7; 8; 9 ]
    (List.rev !seen);
  Alcotest.(check int) "fold visits the same window" 4
    (Trace.fold tr ~init:0 (fun n _ -> n + 1));
  Alcotest.(check bool) "truncated after wrap" true (Trace.truncated tr);
  let small = Trace.create ~capacity:8 () in
  Trace.emit small ~at_ps:0 ~kind:Trace.Arrive ~req_id:0 ~root_id:0 ~fn:"f"
    ~core:0 ();
  Alcotest.(check bool) "not truncated below capacity" false
    (Trace.truncated small)

let run_traced variant =
  let tracer = Trace.create () in
  let config = { Server.default_config with Server.variant } in
  let _, _ =
    Jord_workloads.Loadgen.run ~tracer ~warmup:0 ~app:Jord_workloads.Hipster.app
      ~config ~rate_mrps:1.0 ~duration_us:300.0 ()
  in
  Span.of_trace tracer

let vm_stall_total r =
  let acc = ref 0 in
  Span.iter_spans r (fun sp ->
      acc := !acc + sp.Span.phases.(Span.phase_index Span.Vm_stall));
  !acc

let test_vm_stall_jord_vs_ni () =
  (* The acceptance criterion of the attribution: VLB misses, VTW walks and
     shootdowns surface as vm_stall under Jord and never under Jord_NI
     (whose MMU events are not charged to isolation). *)
  let jord = run_traced Variant.Jord in
  let ni = run_traced Variant.Jord_ni in
  Alcotest.(check bool) "jord runs conserve" true (Report.conservation_ok jord);
  Alcotest.(check bool) "ni runs conserve" true (Report.conservation_ok ni);
  Alcotest.(check bool) "vm_stall > 0 under jord" true (vm_stall_total jord > 0);
  Alcotest.(check int) "vm_stall = 0 under ni" 0 (vm_stall_total ni)

let test_tracefile_roundtrip () =
  let tracer, r, _ =
    traced_chaos_run ~config:Test_cluster.small_config ~requests:30
      ~gap_ns:900.0 ()
  in
  let path = Filename.temp_file "jord_trace" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Tracefile.save ~path
        ~meta:[ ("variant", Jord_util.Json.String "jord") ]
        tracer;
      match Tracefile.load ~path with
      | Error e -> Alcotest.fail e
      | Ok loaded ->
          Alcotest.(check int) "all retained events round-trip"
            (Trace.length tracer)
            (List.length loaded.Tracefile.events);
          Alcotest.(check bool) "events identical" true
            (loaded.Tracefile.events = Trace.events tracer);
          let r2 = Tracefile.spans loaded in
          Alcotest.(check (list string)) "loaded spans still conserve" []
            (Span.conservation_violations r2);
          let t1, d1, x1, p1 = Span.stats r and t2, d2, x2, p2 = Span.stats r2 in
          Alcotest.(check (list int)) "same span census" [ t1; d1; x1; p1 ]
            [ t2; d2; x2; p2 ])

let test_load_rejects_garbage () =
  let path = Filename.temp_file "jord_trace" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "{\"not\":\"a trace\"}\n";
      close_out oc;
      match Tracefile.load ~path with
      | Ok _ -> Alcotest.fail "missing header must be rejected"
      | Error e ->
          Alcotest.(check bool) "error names the problem" true
            (contains "jord_trace" e))

let suite =
  [
    Alcotest.test_case "iter/fold over the ring window" `Quick
      test_iter_fold_no_materialize;
    Alcotest.test_case "single-server crash runs conserve" `Quick
      test_single_server_crash_conservation;
    Alcotest.test_case "critical-path blame sums to e2e" `Quick
      test_critical_path_conserves;
    Alcotest.test_case "wraparound marks reports truncated" `Quick
      test_wraparound_truncation;
    Alcotest.test_case "vm_stall: nonzero under jord, zero under ni" `Quick
      test_vm_stall_jord_vs_ni;
    Alcotest.test_case "tracefile round-trips exactly" `Quick
      test_tracefile_roundtrip;
    Alcotest.test_case "tracefile rejects non-trace files" `Quick
      test_load_rejects_garbage;
    QCheck_alcotest.to_alcotest prop_conservation;
  ]
