(* The online SLO plane: sketches, objective parsing, burn-rate alerting.

   The anchor is the online/post-hoc equivalence property: the streaming
   pipeline's aggregates (completed/shed/bad counts, integer-ps end-to-end
   and per-phase sums) are EXACTLY equal to a post-hoc Span fold over the
   same trace, under random workloads and fault plans — and sketch merging
   is associative/commutative, so cluster roll-up order never matters. *)

open Jord_faas
module Time = Jord_sim.Time
module Engine = Jord_sim.Engine
module Span = Jord_obsv.Span
module Slo = Jord_obsv.Slo
module Online = Jord_obsv.Online
module Sketch = Jord_telemetry.Sketch

let contains needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

(* --- sketch --- *)

let test_sketch_exact_small () =
  let s = Sketch.create () in
  List.iter (Sketch.add s) [ 0; 1; 5; 15; 15; 3 ];
  Alcotest.(check int) "count" 6 (Sketch.count s);
  Alcotest.(check int) "sum" 39 (Sketch.sum s);
  Alcotest.(check int) "min" 0 (Sketch.min_v s);
  Alcotest.(check int) "max" 15 (Sketch.max_v s);
  (* Values below 16 sit in exact buckets: quantiles are exact. *)
  Alcotest.(check int) "p50 exact" 3 (Sketch.quantile s 50.0);
  Alcotest.(check int) "p100 exact" 15 (Sketch.quantile s 100.0);
  Alcotest.(check bool) "negative rejected" true
    (match Sketch.add s (-1) with
    | exception Invalid_argument _ -> true
    | () -> false)

let test_sketch_error_bound () =
  let s = Sketch.create () in
  let vals = List.init 500 (fun i -> 17 + (i * i * 7)) in
  List.iter (Sketch.add s) vals;
  let sorted = List.sort compare vals in
  let arr = Array.of_list sorted in
  List.iter
    (fun q ->
      let rank =
        Int.max 1 (int_of_float (ceil (q /. 100.0 *. float_of_int (Array.length arr))))
      in
      let exact = arr.(rank - 1) in
      let approx = Sketch.quantile s q in
      let err =
        abs_float (float_of_int (approx - exact)) /. float_of_int exact
      in
      Alcotest.(check bool)
        (Printf.sprintf "p%g within 6.25%% (exact=%d approx=%d)" q exact approx)
        true (err <= 0.0625))
    [ 10.0; 50.0; 90.0; 99.0 ]

let arb_values =
  QCheck.(list_of_size Gen.(int_range 0 200) (int_range 0 1_000_000))

let sketch_of vals =
  let s = Sketch.create () in
  List.iter (Sketch.add s) vals;
  s

let prop_sketch_merge_assoc_commut =
  QCheck.Test.make
    ~name:"sketch merge: associative, commutative, add-order-independent"
    ~count:100
    QCheck.(triple arb_values arb_values arb_values)
    (fun (a, b, c) ->
      let sa = sketch_of a and sb = sketch_of b and sc = sketch_of c in
      let ab_c = Sketch.merge (Sketch.merge sa sb) sc in
      let a_bc = Sketch.merge sa (Sketch.merge sb sc) in
      let ba = Sketch.merge sb sa in
      let all = sketch_of (a @ b @ c) in
      let shuffled = sketch_of (List.rev a @ c @ List.rev b) in
      Sketch.equal ab_c a_bc
      && Sketch.equal (Sketch.merge sa sb) ba
      && Sketch.equal ab_c all
      && Sketch.equal all shuffled)

let test_quantile_of_buckets () =
  (* The Registry.Hist cumulative-ladder variant used by `jordctl stats`. *)
  let buckets = [ (10.0, 2); (100.0, 5); (1000.0, 9); (infinity, 10) ] in
  Alcotest.(check (float 0.0)) "p20 in first bucket" 10.0
    (Sketch.quantile_of_buckets buckets 20.0);
  Alcotest.(check (float 0.0)) "p50 in second" 100.0
    (Sketch.quantile_of_buckets buckets 50.0);
  Alcotest.(check (float 0.0)) "p90 in third" 1000.0
    (Sketch.quantile_of_buckets buckets 90.0);
  (* The infinite overflow bucket falls back to the last finite bound. *)
  Alcotest.(check (float 0.0)) "p100 clamps to last finite" 1000.0
    (Sketch.quantile_of_buckets buckets 100.0)

(* --- objective parsing --- *)

let test_parse_presets () =
  (match Slo.parse "none" with
  | Ok [] -> ()
  | _ -> Alcotest.fail "preset none must select no objectives");
  (match Slo.parse "default" with
  | Ok [ o ] -> Alcotest.(check string) "name" "p99-latency" o.Slo.name
  | _ -> Alcotest.fail "preset default is one objective");
  match Slo.parse "ci,threshold_us=5" with
  | Ok [ o ] ->
      Alcotest.(check string) "preset name kept" "p99-burn" o.Slo.name;
      Alcotest.(check int) "override applied" 5_000_000 o.Slo.threshold_ps
  | Ok _ -> Alcotest.fail "one objective expected"
  | Error e -> Alcotest.fail e

let test_parse_inline_and_errors () =
  (match Slo.parse "p=95,threshold_us=10;name=tail,p=99.9,threshold_us=50" with
  | Ok [ a; b ] ->
      Alcotest.(check string) "auto-named" "p95<10us" a.Slo.name;
      Alcotest.(check (float 1e-12)) "budget re-derived from p" 0.05 a.Slo.budget;
      Alcotest.(check string) "explicit name" "tail" b.Slo.name
  | Ok _ -> Alcotest.fail "two objectives expected"
  | Error e -> Alcotest.fail e);
  let is_error spec frag =
    match Slo.parse spec with
    | Ok _ -> Alcotest.fail (spec ^ " must be rejected")
    | Error e ->
        Alcotest.(check bool) (spec ^ ": error mentions " ^ frag) true
          (contains frag e)
  in
  is_error "bogus=1" "unknown key";
  is_error "p=101" "(0, 100)";
  is_error "threshold_us=0" "threshold_us";
  is_error "p=99,fast=3,slow=2" "slow";
  is_error "name=a,threshold_us=1;name=a,threshold_us=2" "duplicate"

let test_to_string_roundtrip () =
  List.iter
    (fun (_, objectives) ->
      List.iter
        (fun o ->
          match Slo.parse (Slo.to_string o) with
          | Ok [ o' ] ->
              Alcotest.(check bool)
                (o.Slo.name ^ " round-trips") true (o = o')
          | _ -> Alcotest.fail (Slo.to_string o ^ " must parse back"))
        objectives)
    Slo.presets

let test_spec_file () =
  let path = Filename.temp_file "jord_slo" ".slo" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc
        "# latency objectives\n\nname=fast,p=99,threshold_us=10\nname=tail,p=99.9,threshold_us=80\n";
      close_out oc;
      (match Slo.load ~path with
      | Ok [ a; b ] ->
          Alcotest.(check string) "first" "fast" a.Slo.name;
          Alcotest.(check string) "second" "tail" b.Slo.name
      | Ok _ -> Alcotest.fail "two objectives expected"
      | Error e -> Alcotest.fail e);
      let oc = open_out path in
      output_string oc "name=ok,p=99\nbogus=1\n";
      close_out oc;
      match Slo.load ~path with
      | Ok _ -> Alcotest.fail "bad line must be rejected"
      | Error e ->
          Alcotest.(check bool) "error carries file:line" true
            (contains (path ^ ":2") e))

(* --- rule-engine edge cases over synthetic traces --- *)

let ev ?(kind = Trace.Arrive) ?(req = 0) ?(dur = 0) ?(sid = 0) ?(fn = "f") at =
  {
    Trace.at_ps = at;
    kind;
    req_id = req;
    root_id = req;
    parent_id = -1;
    fn;
    core = 0;
    sid;
    dur_ps = dur;
    stall_ps = 0;
    detail = "";
  }

(* One root that completes with end-to-end latency [e2e]. *)
let root ~req ~at ~e2e ?(sid = 0) ?(fn = "f") () =
  [ ev ~req ~sid ~fn at; ev ~kind:Trace.Complete ~req ~sid ~fn ~dur:e2e at ]

let emit_ev tr (e : Trace.event) =
  Trace.emit tr ~at_ps:e.Trace.at_ps ~kind:e.Trace.kind ~req_id:e.Trace.req_id
    ~root_id:e.Trace.root_id ~parent_id:e.Trace.parent_id ~fn:e.Trace.fn
    ~core:e.Trace.core ~sid:e.Trace.sid ~dur_ps:e.Trace.dur_ps
    ~stall_ps:e.Trace.stall_ps ~detail:e.Trace.detail ()

let flap_objective =
  {
    Slo.default with
    Slo.name = "flap";
    threshold_ps = 100;
    window_ps = 1000;
    budget = 0.5;
    fast_windows = 1;
    slow_windows = 2;
    burn_threshold = 1.0;
  }

let test_alert_flap_ordering () =
  (* Window 0: bad -> fire. Window 1: good -> resolve. Window 2: bad ->
     fire again. Transitions must come out chronological and alternating. *)
  let events =
    root ~req:0 ~at:0 ~e2e:200 ()
    @ root ~req:1 ~at:1000 ~e2e:50 ()
    @ root ~req:2 ~at:2000 ~e2e:200 ()
  in
  let t = Online.replay ~objectives:[ flap_objective ] ~finish_ps:2999 events in
  let trs = Online.transitions t in
  Alcotest.(check (list (pair int bool)))
    "fire/resolve/fire at window closes"
    [ (1000, true); (2000, false); (3000, true) ]
    (List.map (fun tr -> (tr.Online.tr_at_ps, tr.Online.tr_firing)) trs);
  match Online.snapshot t with
  | [ s ] ->
      Alcotest.(check int) "fired" 2 s.Online.s_fired;
      Alcotest.(check int) "resolved" 1 s.Online.s_resolved;
      Alcotest.(check bool) "still firing" true s.Online.s_firing
  | _ -> Alcotest.fail "one objective"

let test_zero_traffic_burns_nothing () =
  (* Empty windows burn no budget, never fire, and resolve a firing alert. *)
  let t = Online.replay ~objectives:[ flap_objective ] ~finish_ps:5000 [] in
  (match Online.snapshot t with
  | [ s ] ->
      Alcotest.(check int) "no requests" 0 (s.Online.s_completed + s.Online.s_shed);
      Alcotest.(check int) "no alerts" 0 (s.Online.s_fired + s.Online.s_resolved);
      Alcotest.(check bool) "windows were still evaluated" true
        (s.Online.s_windows_closed >= 5);
      Alcotest.(check bool) "every window burns zero" true
        (List.for_all
           (fun w -> w.Online.w_burn_fast = 0.0 && w.Online.w_burn_slow = 0.0)
           s.Online.s_windows)
  | _ -> Alcotest.fail "one objective");
  (* A bad window followed by silence: the fire must resolve on the first
     empty window, not linger. *)
  let t =
    Online.replay ~objectives:[ flap_objective ] ~finish_ps:4999
      (root ~req:0 ~at:0 ~e2e:200 ())
  in
  let trs = Online.transitions t in
  Alcotest.(check (list (pair int bool)))
    "fire then resolve on the empty window"
    [ (1000, true); (2000, false) ]
    (List.map (fun tr -> (tr.Online.tr_at_ps, tr.Online.tr_firing)) trs)

let test_shed_consumes_budget () =
  (* A shed root (Timeout) counts as bad without a latency observation. *)
  let events =
    root ~req:0 ~at:0 ~e2e:50 ()
    @ [ ev ~req:1 100; ev ~kind:Trace.Timeout ~req:1 500 ]
  in
  let t = Online.replay ~objectives:[ flap_objective ] ~finish_ps:999 events in
  match Online.snapshot t with
  | [ s ] ->
      Alcotest.(check int) "completed" 1 s.Online.s_completed;
      Alcotest.(check int) "shed" 1 s.Online.s_shed;
      Alcotest.(check int) "bad = shed only" 1 s.Online.s_bad;
      Alcotest.(check int) "sketch sees completions only" 1
        (Sketch.count s.Online.s_sketch);
      Alcotest.(check int) "one window, two decided" 2
        (match s.Online.s_windows with [ w ] -> w.Online.w_total | _ -> -1)
  | _ -> Alcotest.fail "one objective"

let test_availability_objective () =
  (* Parsing and round-trip: [kind=availability] switches what consumes
     the error budget; latency objectives keep their exact spelling (no
     [kind=] ever emitted for them). *)
  let avail =
    match Slo.parse "kind=availability,threshold_us=1" with
    | Ok [ o ] -> o
    | Ok _ -> Alcotest.fail "one objective expected"
    | Error e -> Alcotest.fail e
  in
  Alcotest.(check bool) "kind parsed" true (avail.Slo.kind = Slo.Availability);
  Alcotest.(check bool) "auto-name" true (contains "avail>=" avail.Slo.name);
  Alcotest.(check bool) "to_string keeps kind" true
    (contains "kind=availability" (Slo.to_string avail));
  (match Slo.parse (Slo.to_string avail) with
  | Ok [ o' ] -> Alcotest.(check bool) "round-trips" true (avail = o')
  | _ -> Alcotest.fail "availability objective must parse back");
  Alcotest.(check bool) "latency spelling unchanged" false
    (contains "kind=" (Slo.to_string Slo.default));
  (match Slo.parse "kind=bogus" with
  | Ok _ -> Alcotest.fail "kind=bogus must be rejected"
  | Error e ->
      Alcotest.(check bool) "error mentions kind" true (contains "kind" e));
  (* Budget semantics: a slow completion never burns availability budget;
     a shed (timed-out) request does. *)
  let obj =
    { flap_objective with Slo.name = "avail"; kind = Slo.Availability }
  in
  let events =
    root ~req:0 ~at:0 ~e2e:500 ()
    @ [ ev ~req:1 100; ev ~kind:Trace.Timeout ~req:1 500 ]
  in
  let t = Online.replay ~objectives:[ obj ] ~finish_ps:999 events in
  match Online.snapshot t with
  | [ s ] ->
      Alcotest.(check int) "completed" 1 s.Online.s_completed;
      Alcotest.(check int) "shed" 1 s.Online.s_shed;
      Alcotest.(check int) "only the shed is bad" 1 s.Online.s_bad
  | _ -> Alcotest.fail "one objective"

let test_fn_filter () =
  let events =
    root ~req:0 ~at:0 ~e2e:200 ~fn:"a" () @ root ~req:1 ~at:10 ~e2e:200 ~fn:"b" ()
  in
  let only_a = { flap_objective with Slo.name = "a-only"; fn = Some "a" } in
  let t =
    Online.replay ~objectives:[ only_a; flap_objective ] ~finish_ps:999 events
  in
  match Online.snapshot t with
  | [ a; all ] ->
      Alcotest.(check int) "fn filter counts only its function" 1
        a.Online.s_completed;
      Alcotest.(check int) "unfiltered counts both" 2 all.Online.s_completed
  | _ -> Alcotest.fail "two objectives"

(* --- alert trace events and Perfetto markers --- *)

let test_alert_events_and_markers () =
  let tracer = Trace.create () in
  let t = Online.create [ flap_objective ] in
  Online.attach t tracer;
  List.iter (emit_ev tracer) (root ~req:0 ~at:0 ~e2e:200 ());
  (* Advancing the watermark past the window end via the sink closes the
     window and emits the Alert event into the same ring. *)
  List.iter (emit_ev tracer) (root ~req:1 ~at:1500 ~e2e:50 ());
  let alerts =
    List.filter (fun e -> e.Trace.kind = Trace.Alert) (Trace.events tracer)
  in
  (match alerts with
  | [ e ] ->
      Alcotest.(check int) "alert is a system event" (-1) e.Trace.req_id;
      Alcotest.(check string) "objective name" "flap" e.Trace.fn;
      Alcotest.(check string) "fire" "fire" e.Trace.detail;
      Alcotest.(check int) "stamped at the window end" 1000 e.Trace.at_ps
  | _ -> Alcotest.fail "exactly one alert so far");
  (* The live Chrome exporter renders alerts as global instant markers. *)
  let json = Trace.to_chrome_json tracer in
  Alcotest.(check bool) "marker name" true (contains "slo:flap:fire" json);
  Alcotest.(check bool) "global scope" true (contains "\"s\":\"g\"" json);
  (* Span building skips system events, so attribution is untouched. *)
  let r = Span.of_trace tracer in
  Alcotest.(check (list string)) "conservation unaffected" []
    (Span.conservation_violations r)

let test_alert_events_roundtrip_tracefile () =
  let tracer = Trace.create () in
  let t = Online.create [ flap_objective ] in
  Online.attach t tracer;
  List.iter (emit_ev tracer)
    (root ~req:0 ~at:0 ~e2e:200 () @ root ~req:1 ~at:1500 ~e2e:50 ());
  let path = Filename.temp_file "jord_slo_trace" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Jord_obsv.Tracefile.save ~path tracer;
      match Jord_obsv.Tracefile.load ~path with
      | Error e -> Alcotest.fail e
      | Ok loaded ->
          Alcotest.(check bool) "alert events survive the round-trip" true
            (loaded.Jord_obsv.Tracefile.events = Trace.events tracer))

(* --- the equivalence anchor --- *)

let slo_objectives =
  [
    {
      Slo.default with
      Slo.name = "all";
      threshold_ps = 12_000_000;
      window_ps = 20_000_000;
      budget = 0.1;
      fast_windows = 1;
      slow_windows = 3;
    };
    {
      Slo.default with
      Slo.name = "entry";
      fn = Some "entry";
      threshold_ps = 9_000_000;
      window_ps = 50_000_000;
      budget = 0.05;
      fast_windows = 2;
      slow_windows = 4;
    };
  ]

let chaos_run spec =
  let plan =
    {
      Jord_fault_inject.Plan.seed = spec.Test_chaos.fseed;
      crash = float_of_int spec.Test_chaos.crash_pm /. 1000.0;
      restart_us = 5.0;
      stall = 0.05;
      stall_us = 1.0;
      loss = float_of_int spec.Test_chaos.loss_pm /. 1000.0;
      dup = float_of_int spec.Test_chaos.dup_pm /. 1000.0;
      jitter_us = 1.0;
      slow = 0.05;
      slow_factor = 2.0;
      server_crash = 0.0;
      server_down_us = 200.0;
      warm_loss = 1.0;
    }
  in
  let config =
    {
      Test_cluster.small_config with
      Server.seed = spec.Test_chaos.wseed;
      fault_plan = Some plan;
    }
  in
  let cluster =
    Cluster.create ~forward_after:2 ~servers:3 ~config Test_cluster.fanout_app
  in
  let tracer = Trace.create ~capacity:(1 lsl 17) () in
  Cluster.set_tracer cluster (Some tracer);
  let live = Online.create slo_objectives in
  Online.attach live tracer;
  let engine = Cluster.engine cluster in
  for i = 0 to 49 do
    Engine.schedule_at engine
      ~time:(Time.of_ns (float_of_int i *. 1200.0))
      (fun _ -> Cluster.submit cluster ())
  done;
  Cluster.run cluster;
  let now_ps = Engine.now engine in
  Online.finish live ~now_ps;
  (tracer, live, now_ps)

(* The post-hoc expectation for one objective, from the Span fold. *)
let expected_of r (o : Slo.objective) =
  let matches sp =
    match o.Slo.fn with None -> true | Some fn -> fn = sp.Span.fn
  in
  let roots = List.filter matches (Span.roots r) in
  let completed = List.filter Span.complete roots in
  let shed =
    List.filter (fun sp -> sp.Span.dead && not (Span.complete sp)) roots
  in
  let bad_done =
    List.filter (fun sp -> Span.e2e_ps sp > o.Slo.threshold_ps) completed
  in
  let e2e_sum = List.fold_left (fun a sp -> a + Span.e2e_ps sp) 0 completed in
  let phase_sum = Array.make Span.phase_count 0 in
  List.iter
    (fun sp ->
      Array.iteri (fun i v -> phase_sum.(i) <- phase_sum.(i) + v) sp.Span.phases)
    completed;
  ( List.length completed,
    List.length shed,
    List.length bad_done + List.length shed,
    e2e_sum,
    phase_sum )

let prop_online_equals_posthoc =
  QCheck.Test.make
    ~name:
      "online aggregates exactly equal the post-hoc Span fold (counts, \
       integer-ps sums, phase attribution) under random chaos"
    ~count:8 Test_chaos.arb_chaos_spec
    (fun spec ->
      let tracer, live, now_ps = chaos_run spec in
      let r = Span.of_trace tracer in
      let no_ambiguous_roots =
        List.for_all
          (fun sp -> not (Span.complete sp && sp.Span.dead))
          (Span.roots r)
      in
      let snaps = Online.snapshot live in
      no_ambiguous_roots
      && List.length snaps = List.length slo_objectives
      && List.for_all
           (fun s ->
             let completed, shed, bad, e2e_sum, phase_sum =
               expected_of r s.Online.s_objective
             in
             s.Online.s_completed = completed
             && s.Online.s_shed = shed
             && s.Online.s_bad = bad
             && s.Online.s_e2e_sum_ps = e2e_sum
             && s.Online.s_phase_sum_ps = phase_sum
             && Sketch.count s.Online.s_sketch = completed
             && Sketch.sum s.Online.s_sketch = e2e_sum
             (* All decided roots landed in some closed window. *)
             && List.fold_left
                  (fun a w -> a + w.Online.w_total)
                  0 s.Online.s_windows
                = completed + shed
             (* Merging the per-server sketches in ANY order reproduces the
                merged sketch. *)
             && (let merged_fwd =
                   List.fold_left
                     (fun acc (_, sk) -> Sketch.merge acc sk)
                     (Sketch.create ()) s.Online.s_per_sid
                 in
                 let merged_rev =
                   List.fold_left
                     (fun acc (_, sk) -> Sketch.merge acc sk)
                     (Sketch.create ())
                     (List.rev s.Online.s_per_sid)
                 in
                 Sketch.equal merged_fwd s.Online.s_sketch
                 && Sketch.equal merged_rev s.Online.s_sketch))
           snaps
      (* A replay of the recorded events (which include the live run's own
         alert events) reproduces the live pipeline exactly. *)
      && Online.snapshot
           (Online.replay ~objectives:slo_objectives ~finish_ps:now_ps
              (Trace.events tracer))
         = snaps)

(* --- reports --- *)

let test_reports_render () =
  let _, live, _ =
    chaos_run
      { Test_chaos.wseed = 3; fseed = 7; crash_pm = 40; loss_pm = 60; dup_pm = 20 }
  in
  let report = Online.report_text live in
  Alcotest.(check bool) "report names objectives" true
    (contains "all" report && contains "entry" report);
  let json = Online.report_json live in
  Alcotest.(check bool) "json parses" true
    (match Jord_util.Json.of_string json with Ok _ -> true | Error _ -> false);
  let alerts = Online.alerts_json live in
  Alcotest.(check bool) "alerts json parses" true
    (match Jord_util.Json.of_string alerts with Ok _ -> true | Error _ -> false);
  let csv = Online.burn_csv live in
  Alcotest.(check bool) "csv has a header" true
    (contains "objective,window" csv)

let suite =
  [
    Alcotest.test_case "sketch: exact below 16" `Quick test_sketch_exact_small;
    Alcotest.test_case "sketch: 6.25% quantile error bound" `Quick
      test_sketch_error_bound;
    Alcotest.test_case "quantile over Registry.Hist ladders" `Quick
      test_quantile_of_buckets;
    Alcotest.test_case "slo: presets and overrides" `Quick test_parse_presets;
    Alcotest.test_case "slo: inline objectives and rejects" `Quick
      test_parse_inline_and_errors;
    Alcotest.test_case "slo: to_string round-trips" `Quick
      test_to_string_roundtrip;
    Alcotest.test_case "slo: spec files" `Quick test_spec_file;
    Alcotest.test_case "alerts: flap ordering" `Quick test_alert_flap_ordering;
    Alcotest.test_case "alerts: zero traffic burns nothing" `Quick
      test_zero_traffic_burns_nothing;
    Alcotest.test_case "shed requests consume budget" `Quick
      test_shed_consumes_budget;
    Alcotest.test_case "availability objectives parse and burn on shed only"
      `Quick test_availability_objective;
    Alcotest.test_case "fn filters scope objectives" `Quick test_fn_filter;
    Alcotest.test_case "alert trace events and Perfetto markers" `Quick
      test_alert_events_and_markers;
    Alcotest.test_case "alert events round-trip trace files" `Quick
      test_alert_events_roundtrip_tracefile;
    Alcotest.test_case "reports render and parse" `Quick test_reports_render;
    QCheck_alcotest.to_alcotest prop_sketch_merge_assoc_commut;
    QCheck_alcotest.to_alcotest prop_online_equals_posthoc;
  ]
