(* Quick end-to-end smoke run used during development. *)
let () =
  let rate = try float_of_string Sys.argv.(1) with _ -> 2.0 in
  let variant =
    match (try Sys.argv.(2) with _ -> "jord") with
    | "ni" -> Jord_faas.Variant.Jord_ni
    | "bt" -> Jord_faas.Variant.Jord_bt
    | "nc" -> Jord_faas.Variant.Nightcore
    | _ -> Jord_faas.Variant.Jord
  in
  let app =
    match (try Sys.argv.(3) with _ -> "hipster") with
    | "hotel" -> Jord_workloads.Hotel.app
    | "media" -> Jord_workloads.Media.app
    | "social" -> Jord_workloads.Social.app
    | _ -> Jord_workloads.Hipster.app
  in
  let config = { Jord_faas.Server.default_config with variant } in
  let t0 = Unix.gettimeofday () in
  let server, rec_ =
    Jord_workloads.Loadgen.run ~warmup:1000 ~app ~config
      ~rate_mrps:rate ~duration_us:4000.0 ()
  in
  let t1 = Unix.gettimeofday () in
  let open Jord_metrics.Recorder in
  Printf.printf "variant=%s rate=%.1f MRPS\n" (Jord_faas.Variant.name variant) rate;
  Printf.printf "completed=%d tput=%.2f MRPS mean=%.2fus p50=%.2fus p99=%.2fus\n"
    (count rec_) (throughput_mrps rec_) (mean_us rec_) (p50_us rec_) (p99_us rec_);
  let b = mean_breakdown rec_ in
  Printf.printf "breakdown: exec=%.0fns iso=%.0fns disp=%.0fns comm=%.0fns invocations=%.2f\n"
    b.exec_ns b.isolation_ns b.dispatch_ns b.comm_ns (mean_invocations rec_);
  Printf.printf "live_conts=%d events=%d wall=%.1fs\n"
    (Jord_faas.Server.live_continuations server)
    (Jord_sim.Engine.processed (Jord_faas.Server.engine server))
    (t1 -. t0);
  Printf.printf "dispatches=%d avg_dispatch=%.0fns\n"
    (Jord_faas.Server.dispatch_count server)
    (Jord_faas.Server.dispatch_ns_total server
    /. float_of_int (max 1 (Jord_faas.Server.dispatch_count server)))
