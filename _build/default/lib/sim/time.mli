(** Simulated time.

    The whole stack measures time in picoseconds stored in an [int], which is
    exact for CPU cycles at 4 GHz (250 ps) and overflows only after ~104 days
    of simulated time — far beyond any experiment. Helper converters keep the
    unit explicit at API boundaries. *)

type t = int
(** Picoseconds. *)

val zero : t
val ( + ) : t -> t -> t
val ( - ) : t -> t -> t

val of_ns : float -> t
val to_ns : t -> float
val of_us : float -> t
val to_us : t -> float

val of_cycles : int -> ghz:float -> t
(** [of_cycles n ~ghz] is the duration of [n] cycles at [ghz] GHz. *)

val to_cycles : t -> ghz:float -> float

val pp : Format.formatter -> t -> unit
(** Human-readable rendering with an adaptive unit. *)
