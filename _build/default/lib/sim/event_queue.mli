(** Priority queue of timestamped events (binary min-heap).

    Ties are broken by insertion order so the simulation is deterministic:
    two events scheduled for the same instant fire in the order they were
    scheduled. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val length : 'a t -> int

val push : 'a t -> time:Time.t -> 'a -> unit

val pop : 'a t -> (Time.t * 'a) option
(** Remove and return the earliest event. *)

val peek_time : 'a t -> Time.t option
(** Timestamp of the earliest event without removing it. *)

val clear : 'a t -> unit
