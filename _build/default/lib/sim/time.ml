type t = int

let zero = 0
let ( + ) = Stdlib.( + )
let ( - ) = Stdlib.( - )
let of_ns ns = int_of_float (Float.round (ns *. 1000.0))
let to_ns t = float_of_int t /. 1000.0
let of_us us = of_ns (us *. 1000.0)
let to_us t = to_ns t /. 1000.0
let of_cycles n ~ghz = int_of_float (Float.round (float_of_int n *. 1000.0 /. ghz))
let to_cycles t ~ghz = float_of_int t /. 1000.0 *. ghz

let pp ppf t =
  let ns = to_ns t in
  if ns < 1e3 then Format.fprintf ppf "%.1fns" ns
  else if ns < 1e6 then Format.fprintf ppf "%.2fus" (ns /. 1e3)
  else Format.fprintf ppf "%.3fms" (ns /. 1e6)
