lib/sim/engine.ml: Event_queue Time
