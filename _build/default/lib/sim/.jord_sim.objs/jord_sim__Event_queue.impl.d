lib/sim/event_queue.ml: Array Int Time
