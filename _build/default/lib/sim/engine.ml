type t = {
  queue : (t -> unit) Event_queue.t;
  mutable now : Time.t;
  mutable processed : int;
}

let create () = { queue = Event_queue.create (); now = Time.zero; processed = 0 }
let now t = t.now

let schedule_at t ~time f =
  if time < t.now then invalid_arg "Engine.schedule_at: time in the past";
  Event_queue.push t.queue ~time f

let schedule t ~after f =
  if after < 0 then invalid_arg "Engine.schedule: negative delay";
  Event_queue.push t.queue ~time:Time.(t.now + after) f

let step t =
  match Event_queue.pop t.queue with
  | None -> false
  | Some (time, f) ->
      t.now <- time;
      t.processed <- t.processed + 1;
      f t;
      true

let run ?until t =
  let continue () =
    match until, Event_queue.peek_time t.queue with
    | _, None -> false
    | None, Some _ -> true
    | Some limit, Some next -> next <= limit
  in
  while continue () do
    ignore (step t)
  done

let pending t = Event_queue.length t.queue
let processed t = t.processed
