(** Discrete-event simulation engine.

    Entities schedule closures at absolute or relative simulated times; the
    engine runs them in timestamp order. Time only advances between events,
    so a callback observes a consistent [now]. *)

type t

val create : unit -> t

val now : t -> Time.t
(** Current simulated time. *)

val schedule : t -> after:Time.t -> (t -> unit) -> unit
(** [schedule t ~after f] runs [f] at [now t + after]. [after] must be
    non-negative. *)

val schedule_at : t -> time:Time.t -> (t -> unit) -> unit
(** [schedule_at t ~time f] runs [f] at absolute [time >= now t]. *)

val run : ?until:Time.t -> t -> unit
(** Process events in order until the queue drains, or until simulated time
    would exceed [until] (remaining events are left unprocessed). *)

val step : t -> bool
(** Process a single event; [false] if the queue was empty. *)

val pending : t -> int
(** Number of scheduled events not yet run. *)

val processed : t -> int
(** Total number of events executed so far. *)
