lib/metrics/recorder.ml: Hashtbl Int Jord_faas Jord_sim Jord_util List
