lib/metrics/recorder.mli: Jord_faas Jord_sim
