(** Collects completed external requests into latency and breakdown
    statistics.

    Latency measurement follows the paper (§5): it starts when an
    orchestrator receives the request and ends when an executor's completion
    notification reaches the orchestrator. The first [warmup] completions
    are discarded. *)

type t

type breakdown = {
  exec_ns : float;
  isolation_ns : float;
  dispatch_ns : float;
  comm_ns : float;
}

val create : ?warmup:int -> unit -> t
(** [warmup] defaults to 2000 requests. *)

val observe : t -> Jord_faas.Request.root -> unit
(** Feed to {!Jord_faas.Server.on_root_complete}. *)

val count : t -> int
(** Completions counted after warmup. *)

val first_counted_at : t -> Jord_sim.Time.t
val last_counted_at : t -> Jord_sim.Time.t

val throughput_mrps : t -> float
(** Completions per microsecond over the counted window. *)

val p99_us : t -> float
val p50_us : t -> float
val mean_us : t -> float
val percentile_us : t -> float -> float
val cdf : t -> (float * float) list
(** Service-time CDF: [(us, fraction)] points. *)

val mean_breakdown : t -> breakdown
(** Average per-request breakdown (ns). *)

val mean_invocations : t -> float

val by_entry : t -> (string * int * float * breakdown) list
(** Per entry function: (name, count, mean latency us, mean breakdown). *)
