type config = { top_tag : int; table_base : int; table_capacity : int }

let vte_bytes = 64
let class_lo = 51
let class_width = 5
let top_lo = 56
let top_width = 4

let default_config =
  { top_tag = 0xA; table_base = 1 lsl 40; table_capacity = 1 lsl 20 }

let slots_per_class cfg = cfg.table_capacity / Size_class.count

let encode cfg sc ~index ~offset =
  let offs_bits = Size_class.offset_bits sc in
  if offset < 0 || offset >= Size_class.bytes sc then invalid_arg "Va.encode: offset";
  if index < 0 || index >= slots_per_class cfg then invalid_arg "Va.encode: index";
  if index lsl offs_bits >= 1 lsl class_lo then invalid_arg "Va.encode: index width";
  (cfg.top_tag lsl top_lo)
  lor (Size_class.to_index sc lsl class_lo)
  lor (index lsl offs_bits)
  lor offset

let is_jord cfg va =
  va >= 0 && Jord_util.Bits.extract va ~lo:top_lo ~width:top_width = cfg.top_tag

let decode cfg va =
  if not (is_jord cfg va) then None
  else
    let sc_i = Jord_util.Bits.extract va ~lo:class_lo ~width:class_width in
    if sc_i >= Size_class.count then None
    else
      let sc = Size_class.of_index sc_i in
      let offs_bits = Size_class.offset_bits sc in
      let index = Jord_util.Bits.extract va ~lo:offs_bits ~width:(class_lo - offs_bits) in
      let offset = va land ((1 lsl offs_bits) - 1) in
      if index >= slots_per_class cfg then None else Some (sc, index, offset)

let decode_exn cfg va =
  match decode cfg va with
  | Some d -> d
  | None -> invalid_arg "Va: not a Jord-managed address"

let base_of cfg va =
  let sc, index, _ = decode_exn cfg va in
  encode cfg sc ~index ~offset:0

let vte_index cfg sc ~index =
  let i = (index * Size_class.count) + Size_class.to_index sc in
  if i >= cfg.table_capacity then invalid_arg "Va.vte_index: table overflow";
  i

let vte_addr cfg sc ~index = cfg.table_base + (vte_index cfg sc ~index * vte_bytes)

(* ASLR entropy: bits of the index field usable for randomization, i.e. the
   VA bits between the offset field and the size-class field that are not
   needed to address the per-class VTE budget. The paper reports a 5-bit
   entropy reduction (the class field) leaving 29 bits for the 128-byte
   class; our layout has a 51-bit usable span below the class field. *)
let entropy_bits cfg sc =
  let offs = Size_class.offset_bits sc in
  let index_width = class_lo - offs in
  let needed = Jord_util.Bits.ceil_log2 (slots_per_class cfg) in
  Int.max 0 (index_width - needed)

let vte_addr_of_va cfg va =
  let sc, index, _ = decode_exn cfg va in
  vte_addr cfg sc ~index
