(** Virtual translation directory (paper §4.2, Figure 7).

    Set-associative structure co-located with the LLC slices that tracks,
    per VTE address, which cores' VLBs hold the translation. VTE reads with
    the T bit register the reader; VTE writes consult the sharer list to
    generate parallel VLB invalidations. When an entry was evicted (the VTD
    has bounded capacity), the write falls back on the cache-coherence
    directory's sharers for the VTE line — the directory acts as a victim
    cache for the VTD, pessimistically treating every VTE-line sharer as a
    translation sharer. *)

type t

type stats = {
  mutable registrations : int;
  mutable evictions : int;
  mutable tracked_shootdowns : int;
  mutable fallback_shootdowns : int;
}

val create : ?sets:int -> ?ways:int -> cores:int -> unit -> t
(** Default geometry: 512 sets x 8 ways. *)

val stats : t -> stats

val note_read : t -> vte_addr:int -> core:int -> unit
(** Register [core]'s VLB as a sharer of the translation (T-bit read). *)

val sharers : t -> vte_addr:int -> [ `Tracked of int list | `Untracked ]
(** Sharer list for a VTE write. [`Untracked] means the VTD lost the entry
    and the caller must fall back on the coherence directory. *)

val note_write : t -> vte_addr:int -> unit
(** Clear tracking after the invalidations for a VTE write went out. *)

val drop_core : t -> vte_addr:int -> core:int -> unit
(** A VLB silently evicted the translation. (Real hardware would not see
    this; we use it only in tests to create the untracked corner case.) *)

val tracked : t -> int
(** Number of live entries. *)
