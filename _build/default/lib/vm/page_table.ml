let page_bytes = 4096
let levels = 4
let index_bits = 9
let entries_per_table = 1 lsl index_bits
let entry_bytes = 8

type leaf = { mutable phys : int; mutable perm : Perm.t }

type node = Table of node option array | Leaf of leaf

type t = {
  root : node option array;
  root_addr : int;
  mutable next_table : int; (* bump allocator for table frames *)
  table_addrs : (node option array, int) Hashtbl.t; (* physical placement *)
  mutable mapped : int;
}

let create ?(root_addr = 1 lsl 39) () =
  let root = Array.make entries_per_table None in
  let t =
    {
      root;
      root_addr;
      next_table = root_addr + page_bytes;
      table_addrs = Hashtbl.create 64;
      mapped = 0;
    }
  in
  Hashtbl.add t.table_addrs root root_addr;
  t

let table_addr t arr =
  match Hashtbl.find_opt t.table_addrs arr with
  | Some a -> a
  | None ->
      let a = t.next_table in
      t.next_table <- a + page_bytes;
      Hashtbl.add t.table_addrs arr a;
      a

let index_of va level =
  (* level 0 is the root; leaves live at level 3. *)
  let shift = 12 + (index_bits * (levels - 1 - level)) in
  (va lsr shift) land (entries_per_table - 1)

let entry_addr t arr i = table_addr t arr + (i * entry_bytes)

let check_aligned va =
  if va land (page_bytes - 1) <> 0 then invalid_arg "Page_table: unaligned VA"

let map t ~va ~phys ~perm =
  check_aligned va;
  let touched = ref [] in
  let rec go arr level =
    let i = index_of va level in
    if level = levels - 1 then begin
      (match arr.(i) with
      | Some _ -> invalid_arg "Page_table.map: already mapped"
      | None -> ());
      arr.(i) <- Some (Leaf { phys; perm });
      touched := entry_addr t arr i :: !touched
    end
    else
      match arr.(i) with
      | Some (Table next) -> go next (level + 1)
      | Some (Leaf _) -> invalid_arg "Page_table.map: leaf at interior level"
      | None ->
          let next = Array.make entries_per_table None in
          arr.(i) <- Some (Table next);
          touched := entry_addr t arr i :: !touched;
          go next (level + 1)
  in
  go t.root 0;
  t.mapped <- t.mapped + 1;
  List.rev !touched

let rec find_leaf t arr level va touched =
  let i = index_of va level in
  let addr = entry_addr t arr i in
  let touched = addr :: touched in
  match arr.(i) with
  | None -> (None, touched)
  | Some (Leaf l) ->
      if level = levels - 1 then (Some (arr, i, l), touched) else (None, touched)
  | Some (Table next) ->
      if level = levels - 1 then (None, touched)
      else find_leaf t next (level + 1) va touched

let unmap t ~va =
  check_aligned va;
  match find_leaf t t.root 0 va [] with
  | Some (arr, i, _), touched ->
      arr.(i) <- None;
      t.mapped <- t.mapped - 1;
      (* The leaf rewrite is the only table write. *)
      List.hd touched :: []
  | None, _ -> invalid_arg "Page_table.unmap: not mapped"

let protect t ~va ~perm =
  check_aligned va;
  match find_leaf t t.root 0 va [] with
  | Some (_, _, leaf), touched ->
      leaf.perm <- perm;
      [ List.hd touched ]
  | None, _ -> invalid_arg "Page_table.protect: not mapped"

let walk t ~va =
  let page_va = va land lnot (page_bytes - 1) in
  let found, touched = find_leaf t t.root 0 page_va [] in
  match found with
  | Some (_, _, leaf) ->
      (Some (leaf.phys + (va land (page_bytes - 1)), leaf.perm), List.rev touched)
  | None -> (None, List.rev touched)

let mapped_pages t = t.mapped
