type t = {
  i_vlb : Vlb.t;
  d_vlb : Vlb.t;
  mutable ucid : int;
  mutable p_bit : bool;
}

let create ~i_entries ~d_entries =
  {
    i_vlb = Vlb.create ~entries:i_entries;
    d_vlb = Vlb.create ~entries:d_entries;
    ucid = 0;
    p_bit = false;
  }

let i_vlb t = t.i_vlb
let d_vlb t = t.d_vlb
let ucid t = t.ucid
let set_ucid t pd = t.ucid <- pd

let p_bit t = t.p_bit
let set_p_bit t b = t.p_bit <- b

let require_privilege t ~what =
  if not t.p_bit then Fault.raise_fault (Fault.Privileged_access what)

let write_ucid t pd =
  require_privilege t ~what:0;
  t.ucid <- pd

let enter_privileged t ~at_gate =
  if not t.p_bit then begin
    if not at_gate then Fault.raise_fault (Fault.Gate_violation 0);
    t.p_bit <- true
  end

let exit_privileged t = t.p_bit <- false
