type entry = { vte_addr : int; vte : Vte.t; mutable lru : int }

type stats = { mutable hits : int; mutable misses : int; mutable shootdowns : int }

type t = {
  entries : entry option array;
  mutable tick : int;
  stats : stats;
}

let create ~entries =
  if entries <= 0 then invalid_arg "Vlb.create";
  {
    entries = Array.make entries None;
    tick = 0;
    stats = { hits = 0; misses = 0; shootdowns = 0 };
  }

let capacity t = Array.length t.entries
let stats t = t.stats

let touch t e =
  t.tick <- t.tick + 1;
  e.lru <- t.tick

let lookup t ~va =
  let n = Array.length t.entries in
  let rec go i =
    if i = n then begin
      t.stats.misses <- t.stats.misses + 1;
      None
    end
    else
      match t.entries.(i) with
      | Some e when Vte.covers e.vte va ->
          t.stats.hits <- t.stats.hits + 1;
          touch t e;
          Some e.vte
      | Some _ | None -> go (i + 1)
  in
  go 0

let find_slot t ~vte_addr =
  let n = Array.length t.entries in
  let rec go i =
    if i = n then None
    else
      match t.entries.(i) with
      | Some e when e.vte_addr = vte_addr -> Some i
      | Some _ | None -> go (i + 1)
  in
  go 0

let fill t ~vte_addr vte =
  match find_slot t ~vte_addr with
  | Some i ->
      let e = { vte_addr; vte; lru = 0 } in
      t.entries.(i) <- Some e;
      touch t e
  | None ->
      (* Pick an empty slot, else the LRU victim. *)
      let n = Array.length t.entries in
      let victim = ref 0 and victim_lru = ref max_int in
      (try
         for i = 0 to n - 1 do
           match t.entries.(i) with
           | None ->
               victim := i;
               raise Exit
           | Some e ->
               if e.lru < !victim_lru then begin
                 victim := i;
                 victim_lru := e.lru
               end
         done
       with Exit -> ());
      let e = { vte_addr; vte; lru = 0 } in
      t.entries.(!victim) <- Some e;
      touch t e

let invalidate_vte t ~vte_addr =
  match find_slot t ~vte_addr with
  | Some i ->
      t.entries.(i) <- None;
      t.stats.shootdowns <- t.stats.shootdowns + 1;
      true
  | None -> false

let invalidate_all t =
  Array.fill t.entries 0 (Array.length t.entries) None

let contains_vte t ~vte_addr = find_slot t ~vte_addr <> None

let resident t =
  Array.to_list t.entries
  |> List.filter_map (function Some e -> Some e.vte_addr | None -> None)

let occupancy t =
  Array.fold_left (fun acc e -> match e with Some _ -> acc + 1 | None -> acc) 0 t.entries
