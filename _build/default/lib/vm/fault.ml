type t =
  | Unmapped of int
  | Permission of { va : int; pd : int; need : Perm.access }
  | Privileged_access of int
  | Gate_violation of int
  | Bad_handle of string

exception Fault of t

let raise_fault t = raise (Fault t)

let access_to_string = function
  | Perm.Read -> "read"
  | Perm.Write -> "write"
  | Perm.Exec -> "exec"

let to_string = function
  | Unmapped va -> Printf.sprintf "unmapped address 0x%x" va
  | Permission { va; pd; need } ->
      Printf.sprintf "permission fault: pd %d cannot %s 0x%x" pd (access_to_string need) va
  | Privileged_access va -> Printf.sprintf "privileged access violation at 0x%x" va
  | Gate_violation va -> Printf.sprintf "gate (CFI) violation entering 0x%x" va
  | Bad_handle msg -> Printf.sprintf "privlib policy rejection: %s" msg

let pp ppf t = Format.pp_print_string ppf (to_string t)

let () =
  Printexc.register_printer (function
    | Fault f -> Some ("Jord fault: " ^ to_string f)
    | _ -> None)
