let t_min = 8 (* minimum degree *)
let max_keys = (2 * t_min) - 1
let node_region = 1 lsl 41
let node_bytes = 256

type node = {
  id : int;
  keys : int array;
  vals : Vte.t option array;
  kids : node option array; (* max_keys + 1 slots *)
  mutable n : int;
  mutable leaf : bool;
}

type t = {
  mutable root : node;
  mutable next_id : int;
  mutable count : int;
  mutable rebalances : int;
}

type footprint = { reads : int list; writes : int list }

type fp_acc = { mutable r : int list; mutable w : int list }

let addr_of node = node_region + (node.id * node_bytes)

(* A 256 B node spans four cache lines; a binary search over the keys plus
   the value fetch touches about two of them, and a structural modification
   rewrites two. *)
let visit fp node = fp.r <- (addr_of node + 64) :: addr_of node :: fp.r
let modify fp node = fp.w <- (addr_of node + 64) :: addr_of node :: fp.w
let seal fp = { reads = List.rev fp.r; writes = List.rev fp.w }

let make_node ~id ~leaf =
  {
    id;
    keys = Array.make max_keys 0;
    vals = Array.make max_keys None;
    kids = Array.make (max_keys + 1) None;
    n = 0;
    leaf;
  }

let new_node t ~leaf =
  let id = t.next_id in
  t.next_id <- t.next_id + 1;
  make_node ~id ~leaf

let create () =
  { root = make_node ~id:0 ~leaf:true; next_id = 1; count = 0; rebalances = 0 }

let count t = t.count
let rebalance_ops t = t.rebalances

let rec node_height node =
  if node.leaf then 1
  else match node.kids.(0) with Some k -> 1 + node_height k | None -> 1

let height t = node_height t.root

let kid node i =
  match node.kids.(i) with
  | Some k -> k
  | None -> invalid_arg "Vma_btree: missing child"

(* Number of keys in [node] that are <= va. *)
let upper_bound node va =
  let rec go i = if i < node.n && node.keys.(i) <= va then go (i + 1) else i in
  go 0

let rec floor_search fp node va best =
  visit fp node;
  let i = upper_bound node va in
  let best = if i > 0 then node.vals.(i - 1) else best in
  if node.leaf then best else floor_search fp (kid node i) va best

let lookup t ~va =
  let fp = { r = []; w = [] } in
  let found =
    match floor_search fp t.root va None with
    | Some vte when Vte.covers vte va -> Some vte
    | Some _ | None -> None
  in
  (found, seal fp)

let rec exact_search node base =
  let i = upper_bound node base in
  if i > 0 && node.keys.(i - 1) = base then node.vals.(i - 1)
  else if node.leaf then None
  else exact_search (kid node i) base

let find_base t ~base = exact_search t.root base

(* --- Insertion (CLRS top-down with preemptive splits) --- *)

let split_child t fp parent i =
  t.rebalances <- t.rebalances + 1;
  let full = kid parent i in
  let right = new_node t ~leaf:full.leaf in
  right.n <- t_min - 1;
  for j = 0 to t_min - 2 do
    right.keys.(j) <- full.keys.(t_min + j);
    right.vals.(j) <- full.vals.(t_min + j);
    full.vals.(t_min + j) <- None
  done;
  if not full.leaf then
    for j = 0 to t_min - 1 do
      right.kids.(j) <- full.kids.(t_min + j);
      full.kids.(t_min + j) <- None
    done;
  full.n <- t_min - 1;
  (* Shift parent slots right to make room. *)
  for j = parent.n downto i + 1 do
    parent.keys.(j) <- parent.keys.(j - 1);
    parent.vals.(j) <- parent.vals.(j - 1)
  done;
  for j = parent.n + 1 downto i + 2 do
    parent.kids.(j) <- parent.kids.(j - 1)
  done;
  parent.keys.(i) <- full.keys.(t_min - 1);
  parent.vals.(i) <- full.vals.(t_min - 1);
  full.vals.(t_min - 1) <- None;
  parent.kids.(i + 1) <- Some right;
  parent.n <- parent.n + 1;
  modify fp parent;
  modify fp full;
  modify fp right

let rec insert_nonfull t fp node base vte =
  visit fp node;
  let i = upper_bound node base in
  if i > 0 && node.keys.(i - 1) = base then
    invalid_arg "Vma_btree.insert: duplicate base";
  if node.leaf then begin
    for j = node.n downto i + 1 do
      node.keys.(j) <- node.keys.(j - 1);
      node.vals.(j) <- node.vals.(j - 1)
    done;
    node.keys.(i) <- base;
    node.vals.(i) <- Some vte;
    node.n <- node.n + 1;
    modify fp node
  end
  else begin
    let i =
      if (kid node i).n = max_keys then begin
        split_child t fp node i;
        if base > node.keys.(i) then i + 1 else i
      end
      else i
    in
    insert_nonfull t fp (kid node i) base vte
  end

let insert t vte =
  let fp = { r = []; w = [] } in
  let base = Vte.base vte in
  if t.root.n = max_keys then begin
    let old_root = t.root in
    let root = new_node t ~leaf:false in
    root.kids.(0) <- Some old_root;
    t.root <- root;
    split_child t fp root 0
  end;
  insert_nonfull t fp t.root base vte;
  t.count <- t.count + 1;
  seal fp

(* --- Deletion (CLRS) --- *)

let shift_left_keys node i =
  for j = i to node.n - 2 do
    node.keys.(j) <- node.keys.(j + 1);
    node.vals.(j) <- node.vals.(j + 1)
  done;
  node.vals.(node.n - 1) <- None;
  node.n <- node.n - 1

(* Merge kids.(i) and kids.(i+1) around separator key i. *)
let merge_children t fp node i =
  t.rebalances <- t.rebalances + 1;
  let left = kid node i and right = kid node (i + 1) in
  left.keys.(left.n) <- node.keys.(i);
  left.vals.(left.n) <- node.vals.(i);
  for j = 0 to right.n - 1 do
    left.keys.(left.n + 1 + j) <- right.keys.(j);
    left.vals.(left.n + 1 + j) <- right.vals.(j)
  done;
  if not left.leaf then
    for j = 0 to right.n do
      left.kids.(left.n + 1 + j) <- right.kids.(j)
    done;
  left.n <- left.n + 1 + right.n;
  (* Remove separator and right child from the parent. *)
  for j = i to node.n - 2 do
    node.keys.(j) <- node.keys.(j + 1);
    node.vals.(j) <- node.vals.(j + 1)
  done;
  node.vals.(node.n - 1) <- None;
  for j = i + 1 to node.n - 1 do
    node.kids.(j) <- node.kids.(j + 1)
  done;
  node.kids.(node.n) <- None;
  node.n <- node.n - 1;
  modify fp node;
  modify fp left;
  modify fp right;
  left

(* Ensure kids.(i) has at least t_min keys before descending into it.
   Returns the (possibly merged) child and its adjusted index. *)
let ensure_child t fp node i =
  let child = kid node i in
  if child.n >= t_min then (child, i)
  else if i > 0 && (kid node (i - 1)).n >= t_min then begin
    (* Borrow from the left sibling through the parent. *)
    t.rebalances <- t.rebalances + 1;
    let left = kid node (i - 1) in
    for j = child.n downto 1 do
      child.keys.(j) <- child.keys.(j - 1);
      child.vals.(j) <- child.vals.(j - 1)
    done;
    if not child.leaf then
      for j = child.n + 1 downto 1 do
        child.kids.(j) <- child.kids.(j - 1)
      done;
    child.keys.(0) <- node.keys.(i - 1);
    child.vals.(0) <- node.vals.(i - 1);
    if not child.leaf then child.kids.(0) <- left.kids.(left.n);
    node.keys.(i - 1) <- left.keys.(left.n - 1);
    node.vals.(i - 1) <- left.vals.(left.n - 1);
    left.vals.(left.n - 1) <- None;
    if not left.leaf then left.kids.(left.n) <- None;
    left.n <- left.n - 1;
    child.n <- child.n + 1;
    modify fp node;
    modify fp left;
    modify fp child;
    (child, i)
  end
  else if i < node.n && (kid node (i + 1)).n >= t_min then begin
    (* Borrow from the right sibling. *)
    t.rebalances <- t.rebalances + 1;
    let right = kid node (i + 1) in
    child.keys.(child.n) <- node.keys.(i);
    child.vals.(child.n) <- node.vals.(i);
    if not child.leaf then child.kids.(child.n + 1) <- right.kids.(0);
    node.keys.(i) <- right.keys.(0);
    node.vals.(i) <- right.vals.(0);
    shift_left_keys right 0;
    if not right.leaf then begin
      for j = 0 to right.n do
        right.kids.(j) <- right.kids.(j + 1)
      done;
      right.kids.(right.n + 1) <- None
    end;
    child.n <- child.n + 1;
    modify fp node;
    modify fp right;
    modify fp child;
    (child, i)
  end
  else if i > 0 then (merge_children t fp node (i - 1), i - 1)
  else (merge_children t fp node i, i)

let rec max_entry fp node =
  visit fp node;
  if node.leaf then (node.keys.(node.n - 1), node.vals.(node.n - 1))
  else max_entry fp (kid node node.n)

let rec min_entry fp node =
  visit fp node;
  if node.leaf then (node.keys.(0), node.vals.(0))
  else min_entry fp (kid node 0)

let rec delete_key t fp node base =
  visit fp node;
  let i = upper_bound node base in
  if i > 0 && node.keys.(i - 1) = base then begin
    let i = i - 1 in
    if node.leaf then begin
      shift_left_keys node i;
      modify fp node
    end
    else begin
      let left = kid node i and right = kid node (i + 1) in
      if left.n >= t_min then begin
        let k, v = max_entry fp left in
        node.keys.(i) <- k;
        node.vals.(i) <- v;
        modify fp node;
        delete_key t fp left k
      end
      else if right.n >= t_min then begin
        let k, v = min_entry fp right in
        node.keys.(i) <- k;
        node.vals.(i) <- v;
        modify fp node;
        delete_key t fp right k
      end
      else begin
        let merged = merge_children t fp node i in
        delete_key t fp merged base
      end
    end
  end
  else if node.leaf then invalid_arg "Vma_btree.delete: key not found"
  else begin
    let child, _ = ensure_child t fp node i in
    delete_key t fp child base
  end

let shrink_root t =
  if (not t.root.leaf) && t.root.n = 0 then t.root <- kid t.root 0

let remove t ~va =
  let fp = { r = []; w = [] } in
  match floor_search fp t.root va None with
  | Some vte when Vte.covers vte va ->
      delete_key t fp t.root (Vte.base vte);
      shrink_root t;
      t.count <- t.count - 1;
      (Some vte, seal fp)
  | Some _ | None -> (None, seal fp)

let touch_addrs t ~va =
  let fp = { r = []; w = [] } in
  ignore (floor_search fp t.root va None);
  (* The update rewrites the node that holds the entry: charge one write. *)
  (match fp.r with last :: _ -> fp.w <- [ last ] | [] -> ());
  seal fp

let rec iter_node f node =
  if node.leaf then
    for i = 0 to node.n - 1 do
      match node.vals.(i) with Some v -> f v | None -> ()
    done
  else begin
    for i = 0 to node.n - 1 do
      iter_node f (kid node i);
      match node.vals.(i) with Some v -> f v | None -> ()
    done;
    iter_node f (kid node node.n)
  end

let iter f t = iter_node f t.root

let check_invariants t =
  let exception Bad of string in
  let rec check node ~is_root ~lo ~hi ~depth =
    if node.n > max_keys then raise (Bad "node overfull");
    if (not is_root) && node.n < t_min - 1 then raise (Bad "node underfull");
    if is_root && node.n < 1 && not node.leaf then raise (Bad "empty internal root");
    for i = 0 to node.n - 1 do
      let k = node.keys.(i) in
      if i > 0 && node.keys.(i - 1) >= k then raise (Bad "keys not strictly sorted");
      (match lo with Some l when k <= l -> raise (Bad "key below range") | _ -> ());
      (match hi with Some h when k >= h -> raise (Bad "key above range") | _ -> ());
      if node.vals.(i) = None then raise (Bad "missing value")
    done;
    if node.leaf then depth
    else begin
      let depths =
        List.init (node.n + 1) (fun i ->
            let lo = if i = 0 then lo else Some node.keys.(i - 1) in
            let hi = if i = node.n then hi else Some node.keys.(i) in
            check (kid node i) ~is_root:false ~lo ~hi ~depth:(depth + 1))
      in
      match depths with
      | [] -> depth
      | d :: rest ->
          if List.exists (fun d' -> d' <> d) rest then raise (Bad "uneven leaf depth");
          d
    end
  in
  match check t.root ~is_root:true ~lo:None ~hi:None ~depth:0 with
  | (_ : int) -> Ok ()
  | exception Bad msg -> Error msg
