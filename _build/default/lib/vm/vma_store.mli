(** Runtime-selected VMA-table data structure: the plain list (Jord) or the
    B-tree (Jord_BT). Both expose the memory footprint of every operation so
    PrivLib and the VTW can charge the accesses through {!Jord_arch.Memsys}. *)

type footprint = { reads : int list; writes : int list }

type t = Plain of Vma_table.t | Btree of Vma_btree.t

val plain : Va.config -> t
val btree : unit -> t
val kind : t -> string

val lookup : t -> va:int -> Vte.t option * footprint
val find_base : t -> base:int -> Vte.t option
val insert : t -> Vte.t -> footprint
val remove : t -> va:int -> Vte.t option * footprint
val update_footprint : t -> va:int -> footprint
(** Accesses performed by an in-place permission update of the entry
    covering [va]. *)

val count : t -> int

val search_instrs : t -> int
(** Straight-line instruction cost of locating an entry: near-zero address
    arithmetic for the plain list; per-level comparisons for the B-tree. *)

val iter : (Vte.t -> unit) -> t -> unit
