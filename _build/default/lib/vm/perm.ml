type t = int

let none = 0
let r = 1
let w = 2
let x = 4
let rw = r lor w
let rx = r lor x
let rwx = r lor w lor x

let make ?(read = false) ?(write = false) ?(exec = false) () =
  (if read then r else 0) lor (if write then w else 0) lor (if exec then x else 0)

let union = ( lor )
let inter = ( land )
let can_read t = t land r <> 0
let can_write t = t land w <> 0
let can_exec t = t land x <> 0
let subsumes a b = b land lnot a = 0

type access = Read | Write | Exec

let allows t = function
  | Read -> can_read t
  | Write -> can_write t
  | Exec -> can_exec t

let to_string t =
  let c b ch = if b then ch else "-" in
  c (can_read t) "r" ^ c (can_write t) "w" ^ c (can_exec t) "x"

let pp ppf t = Format.pp_print_string ppf (to_string t)
let equal = Int.equal
