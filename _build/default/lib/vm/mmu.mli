(** Per-core MMU front-end: I/D-VLBs, the ucid CSR and the P bit of the
    executing instruction stream (paper §4.3).

    The uatp/uatc pair is machine-global in our model (one Jord process per
    worker server) and lives in {!Va.config}; ucid is per core and selects
    the PD whose permissions apply. The P bit tracks whether the currently
    executing code lies in a privileged VMA; CSR accesses and privileged
    VMA accesses require it. *)

type t

val create : i_entries:int -> d_entries:int -> t

val i_vlb : t -> Vlb.t
val d_vlb : t -> Vlb.t

val ucid : t -> int
(** Current PD id (0 is the executor/root domain). *)

val set_ucid : t -> int -> unit
(** Raw update used by PrivLib internals (already privilege-checked). *)

val write_ucid : t -> int -> unit
(** CSR write path: requires the P bit.
    @raise Fault.Fault otherwise. *)

val p_bit : t -> bool
(** Is the core currently executing privileged code? *)

val set_p_bit : t -> bool -> unit
(** Updated on control transfers; a 0->1 transition must land on a [uatg]
    gate — checked by {!enter_privileged}. *)

val enter_privileged : t -> at_gate:bool -> unit
(** Model the decoder's CFI check on the unprivileged->privileged transition:
    the first privileged instruction must be [uatg].
    @raise Fault.Fault with [Gate_violation] otherwise. *)

val exit_privileged : t -> unit

val require_privilege : t -> what:int -> unit
(** @raise Fault.Fault with [Privileged_access] when the P bit is clear. *)
