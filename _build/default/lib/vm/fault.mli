(** Hardware faults raised by Jord's translation and protection machinery. *)

type t =
  | Unmapped of int  (** No VMA covers the address. *)
  | Permission of { va : int; pd : int; need : Perm.access }
      (** The covering VMA denies the access for the current PD. *)
  | Privileged_access of int
      (** Unprivileged code touched a privileged VMA or CSR. *)
  | Gate_violation of int
      (** Control flow entered privileged code not at a [uatg] gate (CFI). *)
  | Bad_handle of string
      (** PrivLib policy check rejected an argument (bad PD id, foreign VMA,
          double free, ...). *)

exception Fault of t

val raise_fault : t -> 'a
val to_string : t -> string
val pp : Format.formatter -> t -> unit
