type t = int

let min_shift = 7 (* 128 B *)
let max_shift = 32 (* 4 GB *)
let count = max_shift - min_shift + 1
let min_bytes = 1 lsl min_shift
let max_bytes = 1 lsl max_shift

let of_index i =
  if i < 0 || i >= count then invalid_arg "Size_class.of_index";
  i

let to_index t = t
let bytes t = 1 lsl (min_shift + t)

let of_size n =
  if n <= 0 || n > max_bytes then invalid_arg "Size_class.of_size";
  let shift = Jord_util.Bits.ceil_log2 (Int.max n min_bytes) in
  shift - min_shift

let offset_bits t = min_shift + t
let pp ppf t = Format.fprintf ppf "SC%d(%dB)" t (bytes t)
