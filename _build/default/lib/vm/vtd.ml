type entry = {
  mutable vte_addr : int; (* -1 = empty *)
  sharers : Jord_util.Bitset.t;
  mutable lru : int;
}

type stats = {
  mutable registrations : int;
  mutable evictions : int;
  mutable tracked_shootdowns : int;
  mutable fallback_shootdowns : int;
}

type t = {
  sets : int;
  ways : int;
  cores : int;
  slots : entry array;
  mutable tick : int;
  stats : stats;
}

let create ?(sets = 512) ?(ways = 8) ~cores () =
  if sets <= 0 || ways <= 0 then invalid_arg "Vtd.create";
  let mk _ = { vte_addr = -1; sharers = Jord_util.Bitset.create cores; lru = 0 } in
  {
    sets;
    ways;
    cores;
    slots = Array.init (sets * ways) mk;
    tick = 0;
    stats =
      { registrations = 0; evictions = 0; tracked_shootdowns = 0; fallback_shootdowns = 0 };
  }

let stats t = t.stats
let set_of t vte_addr = (vte_addr / Va.vte_bytes) mod t.sets

let find t vte_addr =
  let set = set_of t vte_addr in
  let rec go w =
    if w = t.ways then None
    else
      let e = t.slots.((set * t.ways) + w) in
      if e.vte_addr = vte_addr then Some e else go (w + 1)
  in
  go 0

let touch t e =
  t.tick <- t.tick + 1;
  e.lru <- t.tick

let note_read t ~vte_addr ~core =
  t.stats.registrations <- t.stats.registrations + 1;
  match find t vte_addr with
  | Some e ->
      Jord_util.Bitset.add e.sharers core;
      touch t e
  | None ->
      let set = set_of t vte_addr in
      (* Empty way if any, else LRU victim (its sharers become untracked). *)
      let victim = ref (set * t.ways) and victim_lru = ref max_int in
      (try
         for w = 0 to t.ways - 1 do
           let i = (set * t.ways) + w in
           let e = t.slots.(i) in
           if e.vte_addr = -1 then begin
             victim := i;
             raise Exit
           end
           else if e.lru < !victim_lru then begin
             victim := i;
             victim_lru := e.lru
           end
         done
       with Exit -> ());
      let e = t.slots.(!victim) in
      if e.vte_addr <> -1 then t.stats.evictions <- t.stats.evictions + 1;
      e.vte_addr <- vte_addr;
      Jord_util.Bitset.clear e.sharers;
      Jord_util.Bitset.add e.sharers core;
      touch t e

let sharers t ~vte_addr =
  match find t vte_addr with
  | Some e ->
      t.stats.tracked_shootdowns <- t.stats.tracked_shootdowns + 1;
      `Tracked (Jord_util.Bitset.to_list e.sharers)
  | None ->
      t.stats.fallback_shootdowns <- t.stats.fallback_shootdowns + 1;
      `Untracked

let note_write t ~vte_addr =
  match find t vte_addr with
  | Some e ->
      e.vte_addr <- -1;
      Jord_util.Bitset.clear e.sharers
  | None -> ()

let drop_core t ~vte_addr ~core =
  match find t vte_addr with
  | Some e -> Jord_util.Bitset.remove e.sharers core
  | None -> ()

let tracked t =
  Array.fold_left (fun acc e -> if e.vte_addr <> -1 then acc + 1 else acc) 0 t.slots
