(** Virtual lookaside buffer — a fully associative range TLB over VMAs
    (paper §4.1). Each core has an I-VLB and a D-VLB; entries are tagged
    with the backing VTE address so that T-bit coherence messages (VTD
    shootdowns) can invalidate them by tag match. *)

type t

type stats = { mutable hits : int; mutable misses : int; mutable shootdowns : int }

val create : entries:int -> t
val capacity : t -> int
val stats : t -> stats

val lookup : t -> va:int -> Vte.t option
(** Range match on \[base, base+bytes); a hit refreshes LRU. *)

val fill : t -> vte_addr:int -> Vte.t -> unit
(** Install a translation after a walk, evicting the LRU entry if full.
    Refilling an already-resident VTE refreshes it in place. *)

val invalidate_vte : t -> vte_addr:int -> bool
(** Tag-matched invalidation from a coherence message; [true] if an entry
    was dropped. *)

val invalidate_all : t -> unit
val contains_vte : t -> vte_addr:int -> bool
val resident : t -> int list
(** VTE addresses currently cached. *)

val occupancy : t -> int
