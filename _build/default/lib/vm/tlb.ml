let page_bits = 12

type entry = { vpn : int; phys : int; perm : Perm.t; mutable lru : int }

type stats = { mutable hits : int; mutable misses : int; mutable flushes : int }

type t = {
  l1 : entry option array; (* fully associative *)
  l2 : entry option array; (* set-associative: sets x ways *)
  l2_sets : int;
  l2_ways : int;
  mutable tick : int;
  stats : stats;
}

let create ?(l1_entries = 48) ?(l2_entries = 1024) ?(l2_ways = 4) () =
  if l1_entries <= 0 || l2_entries <= 0 || l2_ways <= 0 then invalid_arg "Tlb.create";
  if l2_entries mod l2_ways <> 0 then invalid_arg "Tlb.create: l2 geometry";
  {
    l1 = Array.make l1_entries None;
    l2 = Array.make l2_entries None;
    l2_sets = l2_entries / l2_ways;
    l2_ways;
    tick = 0;
    stats = { hits = 0; misses = 0; flushes = 0 };
  }

let stats t = t.stats
let vpn_of va = va lsr page_bits

let touch t e =
  t.tick <- t.tick + 1;
  e.lru <- t.tick

let find_l1 t vpn =
  let n = Array.length t.l1 in
  let rec go i =
    if i = n then None
    else match t.l1.(i) with
      | Some e when e.vpn = vpn -> Some i
      | Some _ | None -> go (i + 1)
  in
  go 0

let l2_slot t vpn way = ((vpn mod t.l2_sets) * t.l2_ways) + way

let find_l2 t vpn =
  let rec go w =
    if w = t.l2_ways then None
    else
      let i = l2_slot t vpn w in
      match t.l2.(i) with
      | Some e when e.vpn = vpn -> Some i
      | Some _ | None -> go (w + 1)
  in
  go 0

let insert_assoc arr victim_range entry =
  (* Fill an empty slot in the range, else evict the LRU one. *)
  let lo, len = victim_range in
  let victim = ref lo and victim_lru = ref max_int in
  (try
     for i = lo to lo + len - 1 do
       match arr.(i) with
       | None ->
           victim := i;
           raise Exit
       | Some e ->
           if e.lru < !victim_lru then begin
             victim := i;
             victim_lru := e.lru
           end
     done
   with Exit -> ());
  arr.(!victim) <- Some entry

let fill t ~va ~phys ~perm =
  let vpn = vpn_of va in
  let e () = { vpn; phys; perm; lru = 0 } in
  let e1 = e () in
  insert_assoc t.l1 (0, Array.length t.l1) e1;
  touch t e1;
  (match find_l2 t vpn with
  | Some _ -> ()
  | None ->
      let e2 = e () in
      insert_assoc t.l2 ((vpn mod t.l2_sets) * t.l2_ways, t.l2_ways) e2;
      touch t e2)

let lookup t ~va =
  let vpn = vpn_of va in
  match find_l1 t vpn with
  | Some i ->
      let e = Option.get t.l1.(i) in
      t.stats.hits <- t.stats.hits + 1;
      touch t e;
      Some (e.phys, e.perm)
  | None -> (
      match find_l2 t vpn with
      | Some i ->
          let e = Option.get t.l2.(i) in
          t.stats.hits <- t.stats.hits + 1;
          touch t e;
          (* Refill L1 from L2. *)
          fill t ~va ~phys:e.phys ~perm:e.perm;
          Some (e.phys, e.perm)
      | None ->
          t.stats.misses <- t.stats.misses + 1;
          None)

let invalidate_page t ~va =
  let vpn = vpn_of va in
  let hit = ref false in
  (match find_l1 t vpn with
  | Some i ->
      t.l1.(i) <- None;
      hit := true
  | None -> ());
  (match find_l2 t vpn with
  | Some i ->
      t.l2.(i) <- None;
      hit := true
  | None -> ());
  !hit

let flush t =
  Array.fill t.l1 0 (Array.length t.l1) None;
  Array.fill t.l2 0 (Array.length t.l2) None;
  t.stats.flushes <- t.stats.flushes + 1

let occupancy t =
  let count arr =
    Array.fold_left (fun acc e -> match e with Some _ -> acc + 1 | None -> acc) 0 arr
  in
  count t.l1 + count t.l2
