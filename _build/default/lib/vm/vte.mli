(** VMA-table entry (paper §4.3, Figure 8).

    Each entry spans a full cache block (no false sharing) and holds the
    VMA's bound, its physical backing ([offs]), attribute bits — Global (the
    VMA is visible to every PD with [global_perm]) and Privileged (only
    privileged code may touch it) — and a 20-slot sub-array of per-PD
    permissions. VMAs shared more widely spill into an overflow list
    reachable through the [ptr] field, which costs an extra memory access to
    consult. *)

type t

val create :
  base:int ->
  bytes:int ->
  phys:int ->
  ?global_perm:Perm.t option ->
  ?privileged:bool ->
  unit ->
  t
(** A fresh entry with an empty sub-array. [bytes] is the requested VMA size
    (the bound); the backing chunk may be larger. [global_perm = Some p]
    sets the G bit. *)

val base : t -> int
val bytes : t -> int
val phys : t -> int
val privileged : t -> bool
val global_perm : t -> Perm.t option
val covers : t -> int -> bool
(** Is the VA within [base, base + bytes)? *)

val translate : t -> int -> int
(** Physical address of a covered VA.
    @raise Invalid_argument if not covered. *)

val sub_array_capacity : int
(** 20, per the paper. *)

val perm_for : t -> pd:int -> Perm.t
(** Effective permission of a PD for this VMA: the global permission if the
    G bit is set, otherwise the sub-array (or overflow) entry, otherwise
    {!Perm.none}. *)

val overflow_lookup_needed : t -> pd:int -> bool
(** Whether resolving [pd] requires chasing the overflow pointer (i.e. the
    PD is not in the 20-entry sub-array but the overflow list is non-empty). *)

val set_perm : t -> pd:int -> Perm.t -> unit
(** Grant/replace a PD's permission. {!Perm.none} removes the slot. *)

val has_pd : t -> pd:int -> bool
(** Does the sub-array or overflow list hold an entry for this PD? *)

val sharer_count : t -> int
(** PDs currently holding a non-empty permission. *)

val sharer_pds : t -> int list

val resize : t -> bytes:int -> unit
(** Change the bound (must stay within the backing chunk's size class). *)

val clear_perms : t -> unit
