(** Traditional page TLB hierarchy (Table 2: 48-entry fully associative L1
    I/D TLBs, 1024-entry 4-way L2 TLB).

    Serves the non-Jord half of the address space. Entries are per-page
    translations; invalidation is by page or full flush (the IPI-based
    shootdowns of the §2.2 motivation experiment). *)

type t

type stats = { mutable hits : int; mutable misses : int; mutable flushes : int }

val create : ?l1_entries:int -> ?l2_entries:int -> ?l2_ways:int -> unit -> t
val stats : t -> stats

val lookup : t -> va:int -> (int * Perm.t) option
(** Physical page base + permission on a hit (L1 or L2; an L2 hit refills
    L1). *)

val fill : t -> va:int -> phys:int -> perm:Perm.t -> unit
(** Install a translation after a page walk (into both levels). *)

val invalidate_page : t -> va:int -> bool
(** invlpg: drop one page's translation; [true] if present somewhere. *)

val flush : t -> unit
(** Full flush (the blunt shootdown). *)

val occupancy : t -> int
