(** VMA size classes.

    Following the paper (§4.1), size classes are the powers of two from
    128 bytes to 4 GB — 26 classes — and every VMA allocation is rounded up
    to its class so that free memory can be managed with plain per-class
    free lists (no coalescing, no trees). *)

type t = private int
(** Class id in [\[0, count)]: class 0 is 128 B, class 25 is 4 GB. *)

val count : int
(** 26. *)

val min_bytes : int
(** 128. *)

val max_bytes : int
(** 4 GiB. *)

val of_index : int -> t
(** @raise Invalid_argument outside [\[0, count)]. *)

val to_index : t -> int

val bytes : t -> int
(** Chunk size of the class. *)

val of_size : int -> t
(** [of_size n] is the smallest class whose chunk holds [n] bytes.
    @raise Invalid_argument if [n <= 0] or [n > max_bytes]. *)

val offset_bits : t -> int
(** log2 of {!bytes} — the width of the VA offset field for this class. *)

val pp : Format.formatter -> t -> unit
