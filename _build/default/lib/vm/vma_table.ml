type t = { cfg : Va.config; entries : (int, Vte.t) Hashtbl.t }

let create cfg = { cfg; entries = Hashtbl.create 1024 }
let config t = t.cfg

let slot_of_va t va =
  match Va.decode t.cfg va with
  | None -> None
  | Some (sc, index, _) -> Some (Va.vte_index t.cfg sc ~index, Va.vte_addr t.cfg sc ~index)

let lookup t ~va =
  match slot_of_va t va with
  | None -> (None, [])
  | Some (idx, addr) -> (
      match Hashtbl.find_opt t.entries idx with
      | Some vte when Vte.covers vte va -> (Some vte, [ addr ])
      | Some _ | None -> (None, [ addr ]))

let find_base t ~base =
  match slot_of_va t base with
  | None -> None
  | Some (idx, _) -> (
      match Hashtbl.find_opt t.entries idx with
      | Some vte when Vte.base vte = base -> Some vte
      | Some _ | None -> None)

let insert t vte =
  match slot_of_va t (Vte.base vte) with
  | None -> invalid_arg "Vma_table.insert: not a Jord VA"
  | Some (idx, addr) ->
      if Hashtbl.mem t.entries idx then invalid_arg "Vma_table.insert: slot occupied";
      Hashtbl.add t.entries idx vte;
      [ addr ]

let remove t ~va =
  match slot_of_va t va with
  | None -> (None, [])
  | Some (idx, addr) -> (
      match Hashtbl.find_opt t.entries idx with
      | Some vte when Vte.covers vte va ->
          Hashtbl.remove t.entries idx;
          (Some vte, [ addr ])
      | Some _ | None -> (None, [ addr ]))

let touch_addrs t ~va =
  match slot_of_va t va with Some (_, addr) -> [ addr ] | None -> []

let count t = Hashtbl.length t.entries
let iter f t = Hashtbl.iter (fun _ vte -> f vte) t.entries
