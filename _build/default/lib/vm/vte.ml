type slot = { pd : int; perm : Perm.t }

type t = {
  base : int;
  mutable bytes : int;
  chunk_bytes : int;
  phys : int;
  privileged : bool;
  global_perm : Perm.t option;
  sub : slot option array; (* 20 hardware slots *)
  mutable overflow : slot list; (* reached via the ptr field *)
}

let sub_array_capacity = 20

let create ~base ~bytes ~phys ?(global_perm = None) ?(privileged = false) () =
  if bytes <= 0 then invalid_arg "Vte.create: bytes";
  let chunk_bytes = Size_class.bytes (Size_class.of_size bytes) in
  {
    base;
    bytes;
    chunk_bytes;
    phys;
    privileged;
    global_perm;
    sub = Array.make sub_array_capacity None;
    overflow = [];
  }

let base t = t.base
let bytes t = t.bytes
let phys t = t.phys
let privileged t = t.privileged
let global_perm t = t.global_perm
let covers t va = va >= t.base && va < t.base + t.bytes

let translate t va =
  if not (covers t va) then invalid_arg "Vte.translate: not covered";
  t.phys + (va - t.base)

let find_sub t pd =
  let rec go i =
    if i = sub_array_capacity then None
    else
      match t.sub.(i) with
      | Some s when s.pd = pd -> Some i
      | Some _ | None -> go (i + 1)
  in
  go 0

let perm_for t ~pd =
  match t.global_perm with
  | Some p -> p
  | None -> (
      match find_sub t pd with
      | Some i -> ( match t.sub.(i) with Some s -> s.perm | None -> Perm.none)
      | None -> (
          match List.find_opt (fun s -> s.pd = pd) t.overflow with
          | Some s -> s.perm
          | None -> Perm.none))

let overflow_lookup_needed t ~pd =
  t.global_perm = None && find_sub t pd = None && t.overflow <> []

let set_perm t ~pd perm =
  (* Remove any existing binding first, then insert. *)
  (match find_sub t pd with Some i -> t.sub.(i) <- None | None -> ());
  t.overflow <- List.filter (fun s -> s.pd <> pd) t.overflow;
  if not (Perm.equal perm Perm.none) then begin
    let rec free i =
      if i = sub_array_capacity then None
      else match t.sub.(i) with None -> Some i | Some _ -> free (i + 1)
    in
    match free 0 with
    | Some i -> t.sub.(i) <- Some { pd; perm }
    | None -> t.overflow <- { pd; perm } :: t.overflow
  end

let has_pd t ~pd =
  find_sub t pd <> None || List.exists (fun s -> s.pd = pd) t.overflow

let sharer_pds t =
  let in_sub =
    Array.to_list t.sub
    |> List.filter_map (function Some s -> Some s.pd | None -> None)
  in
  in_sub @ List.map (fun s -> s.pd) t.overflow

let sharer_count t = List.length (sharer_pds t)

let resize t ~bytes =
  if bytes <= 0 || bytes > t.chunk_bytes then invalid_arg "Vte.resize";
  t.bytes <- bytes

let clear_perms t =
  Array.fill t.sub 0 sub_array_capacity None;
  t.overflow <- []
