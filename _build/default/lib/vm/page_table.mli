(** Traditional 4-level radix page table (the x86-64/RISC-V Sv48 shape).

    Jord *extends* rather than replaces paged virtual memory (§4.1): VAs
    without the Jord Top tag still translate through the OS-managed page
    table. This module implements that substrate — and powers the §2.2
    motivation experiment showing why page-based isolation (syscalls, table
    edits, TLB shootdowns) cannot reach nanosecond scale.

    Pages are 4 KiB; each level indexes 9 bits. Operations report the table
    memory they touched so walks and edits can be charged through the
    memory model. *)

type t

val create : ?root_addr:int -> unit -> t
(** [root_addr] places the root table in physical memory (default 2^39). *)

val page_bytes : int
(** 4096. *)

val levels : int
(** 4. *)

val map : t -> va:int -> phys:int -> perm:Perm.t -> int list
(** Map one page; allocates intermediate tables on demand. Returns the PTE
    (and intermediate-entry) addresses written.
    @raise Invalid_argument if already mapped or unaligned. *)

val unmap : t -> va:int -> int list
(** Remove a mapping; returns the table addresses written.
    @raise Invalid_argument if not mapped. *)

val protect : t -> va:int -> perm:Perm.t -> int list
(** Rewrite a leaf PTE's permissions.
    @raise Invalid_argument if not mapped. *)

val walk : t -> va:int -> (int * Perm.t) option * int list
(** Hardware page walk: [(phys, perm)] if mapped, plus the 4 dependent
    table-entry addresses read along the way. *)

val mapped_pages : t -> int
