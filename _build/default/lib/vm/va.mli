(** Size-class–embedded virtual-address encoding (paper §4.1, Figure 6).

    A Jord VA carries its own VMA-table position:

    {v
    | 61..60 | 59..56 | 55..51     | 50..offs_bits | offs_bits-1..0 |
    |   0    |  Top   | size class |     index     |     offset     |
    v}

    so the VMA-table entry address is computable from the VA alone —
    [f(sc, index) = index * n_classes + sc] evenly interleaves classes in
    the plain-list table. The [uatc] CSR (modelled by {!config}) describes
    this layout; [uatp] holds the table base. *)

type config = {
  top_tag : int;  (** Value of the Top field marking Jord-managed VAs. *)
  table_base : int;  (** Byte address of the VMA table (from uatp). *)
  table_capacity : int;  (** Total VTE slots in the plain list. *)
}

val default_config : config
(** 1 Mi-entry table (64 MB at 64 B per VTE), as sized in the paper. *)

val encode : config -> Size_class.t -> index:int -> offset:int -> int
(** Build a VA from its fields.
    @raise Invalid_argument if [offset] exceeds the class chunk or [index]
    exceeds the per-class slot budget. *)

val is_jord : config -> int -> bool
(** Does the address carry the Jord Top tag? Non-Jord addresses fall back to
    the page-based path. *)

val decode : config -> int -> (Size_class.t * int * int) option
(** [(size class, index, offset)] for a Jord VA, [None] otherwise. *)

val base_of : config -> int -> int
(** Base VA of the VMA containing a Jord VA (offset cleared).
    @raise Invalid_argument on a non-Jord VA. *)

val vte_index : config -> Size_class.t -> index:int -> int
(** Position of the VMA's entry in the plain list ([f] above). *)

val vte_addr : config -> Size_class.t -> index:int -> int
(** Byte address of the VMA-table entry (entries span one 64 B line each to
    avoid false sharing). *)

val vte_addr_of_va : config -> int -> int
(** Entry address straight from a VA.
    @raise Invalid_argument on a non-Jord VA. *)

val slots_per_class : config -> int
(** Per-class VTE budget implied by the interleaving. *)

val vte_bytes : int
(** 64: a VTE spans a full cache block. *)

val entropy_bits : config -> Size_class.t -> int
(** ASLR headroom for a class: index bits not consumed by the per-class VTE
    budget (paper §4.1 — encoding the class into the VA costs a modest
    amount of randomization entropy). *)
