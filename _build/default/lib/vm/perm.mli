(** VMA access permissions (R/W/X bit set). *)

type t = private int

val none : t
val r : t
val w : t
val x : t
val rw : t
val rx : t
val rwx : t

val make : ?read:bool -> ?write:bool -> ?exec:bool -> unit -> t
val union : t -> t -> t
val inter : t -> t -> t

val can_read : t -> bool
val can_write : t -> bool
val can_exec : t -> bool

val subsumes : t -> t -> bool
(** [subsumes a b]: every right in [b] is also in [a]. *)

type access = Read | Write | Exec

val allows : t -> access -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
val equal : t -> t -> bool
