(** B-tree VMA table — the Jord_BT ablation (paper §6.2, Figure 13).

    Keyed by VMA base address, CLRS-style B-tree of minimum degree 8, as in
    Midgard/redundant-memory-mapping designs. Unlike the plain list, every
    operation walks root-to-leaf (multiple dependent cache accesses) and
    inserts/deletes trigger node splits, borrows and merges — the
    "frequent B-tree rebalancing" the paper blames for Jord_BT spending 167%
    more PrivLib time. Operations report node addresses touched (reads) and
    modified (writes) for latency charging. *)

type t

type footprint = { reads : int list; writes : int list }
(** Byte addresses of tree nodes touched by an operation, in access order. *)

val create : unit -> t

val lookup : t -> va:int -> Vte.t option * footprint
(** Floor search: the entry with the greatest base [<= va] that covers
    [va]. *)

val find_base : t -> base:int -> Vte.t option
(** Exact-key search without charging. *)

val insert : t -> Vte.t -> footprint
(** @raise Invalid_argument on duplicate base. *)

val remove : t -> va:int -> Vte.t option * footprint
(** Delete the entry covering [va]. *)

val touch_addrs : t -> va:int -> footprint
(** Footprint of an in-place VTE update: the lookup path plus one leaf
    write. *)

val count : t -> int
val height : t -> int

val rebalance_ops : t -> int
(** Cumulative splits + merges + borrows since creation. *)

val check_invariants : t -> (unit, string) result
(** Structural validation (key ordering, occupancy bounds, uniform leaf
    depth) for property tests. *)

val iter : (Vte.t -> unit) -> t -> unit
