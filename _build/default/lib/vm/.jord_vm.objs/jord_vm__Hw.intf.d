lib/vm/hw.mli: Jord_arch Mmu Perm Va Vma_store Vtd Vte
