lib/vm/fault.mli: Format Perm
