lib/vm/vma_table.ml: Hashtbl Va Vte
