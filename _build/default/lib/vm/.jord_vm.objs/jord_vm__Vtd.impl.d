lib/vm/vtd.ml: Array Jord_util Va
