lib/vm/va.mli: Size_class
