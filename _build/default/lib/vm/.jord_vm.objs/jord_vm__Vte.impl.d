lib/vm/vte.ml: Array List Perm Size_class
