lib/vm/tlb.ml: Array Option Perm
