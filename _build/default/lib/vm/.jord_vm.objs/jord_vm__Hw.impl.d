lib/vm/hw.ml: Array Fault Jord_arch Jord_util List Mmu Perm Va Vlb Vma_store Vtd Vte
