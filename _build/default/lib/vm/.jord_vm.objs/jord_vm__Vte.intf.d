lib/vm/vte.mli: Perm
