lib/vm/perm.ml: Format Int
