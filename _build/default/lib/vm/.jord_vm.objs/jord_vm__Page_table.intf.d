lib/vm/page_table.mli: Perm
