lib/vm/va.ml: Int Jord_util Size_class
