lib/vm/vma_store.ml: Vma_btree Vma_table
