lib/vm/page_table.ml: Array Hashtbl List Perm
