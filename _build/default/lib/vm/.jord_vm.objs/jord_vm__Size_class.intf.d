lib/vm/size_class.mli: Format
