lib/vm/vma_table.mli: Va Vte
