lib/vm/vlb.ml: Array List Vte
