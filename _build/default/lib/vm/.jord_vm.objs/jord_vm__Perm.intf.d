lib/vm/perm.mli: Format
