lib/vm/fault.ml: Format Perm Printexc Printf
