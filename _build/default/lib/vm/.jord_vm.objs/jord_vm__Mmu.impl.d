lib/vm/mmu.ml: Fault Vlb
