lib/vm/vma_store.mli: Va Vma_btree Vma_table Vte
