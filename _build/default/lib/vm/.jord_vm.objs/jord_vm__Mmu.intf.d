lib/vm/mmu.mli: Vlb
