lib/vm/vma_btree.mli: Vte
