lib/vm/vma_btree.ml: Array List Vte
