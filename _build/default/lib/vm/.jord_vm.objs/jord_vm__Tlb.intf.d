lib/vm/tlb.mli: Perm
