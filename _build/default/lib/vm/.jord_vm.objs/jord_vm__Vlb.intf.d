lib/vm/vlb.mli: Vte
