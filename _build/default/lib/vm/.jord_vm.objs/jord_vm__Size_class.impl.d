lib/vm/size_class.ml: Format Int Jord_util
