lib/vm/vtd.mli:
