(** Plain-list VMA table (the paper's key data structure, §4.1).

    Because a VA encodes its own size class and index, the table entry
    position is computed — never searched. Every operation therefore touches
    exactly one VTE cache block, which is what makes VMA operations
    nanosecond-scale. Operations return the list of byte addresses they
    touched so the caller can charge them through the memory model. *)

type t

val create : Va.config -> t
val config : t -> Va.config

val lookup : t -> va:int -> Vte.t option * int list
(** Find the entry covering [va] (bound-checked). The returned address list
    is the single VTE block computed from the VA. Non-Jord VAs return
    [(None, [])]. *)

val find_base : t -> base:int -> Vte.t option
(** Entry whose base VA is exactly [base], without charging. *)

val insert : t -> Vte.t -> int list
(** Install an entry at the slot implied by its base VA.
    @raise Invalid_argument if the slot is occupied or the base is not a
    Jord VA. *)

val remove : t -> va:int -> Vte.t option * int list
(** Delete the entry covering [va]. *)

val touch_addrs : t -> va:int -> int list
(** Addresses written by an in-place VTE update (permission change). *)

val count : t -> int

val iter : (Vte.t -> unit) -> t -> unit
