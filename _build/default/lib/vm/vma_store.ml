type footprint = { reads : int list; writes : int list }

type t = Plain of Vma_table.t | Btree of Vma_btree.t

let plain cfg = Plain (Vma_table.create cfg)
let btree () = Btree (Vma_btree.create ())
let kind = function Plain _ -> "plain-list" | Btree _ -> "b-tree"

let of_bt (fp : Vma_btree.footprint) = { reads = fp.Vma_btree.reads; writes = fp.Vma_btree.writes }

let lookup t ~va =
  match t with
  | Plain p ->
      let vte, addrs = Vma_table.lookup p ~va in
      (vte, { reads = addrs; writes = [] })
  | Btree b ->
      let vte, fp = Vma_btree.lookup b ~va in
      (vte, of_bt fp)

let find_base t ~base =
  match t with
  | Plain p -> Vma_table.find_base p ~base
  | Btree b -> Vma_btree.find_base b ~base

let insert t vte =
  match t with
  | Plain p -> { reads = []; writes = Vma_table.insert p vte }
  | Btree b -> of_bt (Vma_btree.insert b vte)

let remove t ~va =
  match t with
  | Plain p ->
      let vte, addrs = Vma_table.remove p ~va in
      (vte, { reads = []; writes = addrs })
  | Btree b ->
      let vte, fp = Vma_btree.remove b ~va in
      (vte, of_bt fp)

let update_footprint t ~va =
  match t with
  | Plain p -> { reads = []; writes = Vma_table.touch_addrs p ~va }
  | Btree b -> of_bt (Vma_btree.touch_addrs b ~va)

let count = function Plain p -> Vma_table.count p | Btree b -> Vma_btree.count b

let search_instrs = function
  | Plain _ -> 4 (* shift/mask/add to compute the VTE address *)
  | Btree b -> 18 * (Vma_btree.height b + 1) (* binary search per level *)

let iter f = function Plain p -> Vma_table.iter f p | Btree b -> Vma_btree.iter f b
