(** Protection-domain lifecycle management.

    PD ids come from a shared free list; PD configurations (saved context,
    status) live in a privileged VMA, one cache line per PD, so PD operations
    charge real coherence traffic. PD 0 is the root domain the executors and
    orchestrators run in; it always exists and is never allocated. *)

type status =
  | Idle  (** Allocated by [cget], not entered yet. *)
  | Running of int  (** Entered via [ccall]/[center] on a core. *)
  | Suspended  (** Exited via [cexit], resumable with [center]. *)

type t

val create : ?max_pds:int -> ?cores:int -> unit -> t
(** Default capacity 4096 PDs; ids are handed out through per-core shard
    caches (batches detached from the shared list with one atomic). *)

val alloc : t -> memsys:Jord_arch.Memsys.t -> core:int -> int * float
(** Pop a PD id: [(id, latency_ns)]. *)

val free : t -> memsys:Jord_arch.Memsys.t -> core:int -> int -> float
(** Release a PD.
    @raise Fault.Fault if the id is invalid, still running, or PD 0. *)

val status : t -> int -> status
(** @raise Fault.Fault on an unallocated id. *)

val set_status : t -> int -> status -> unit
val is_live : t -> int -> bool
val live_count : t -> int
val config_addr : int -> int
(** Line address of a PD's configuration record. *)
