(** OS-mediated, page-based memory management — the world Jord escapes
    (paper §2.2).

    Implements mmap/mprotect/munmap over the traditional substrate: a
    syscall into the kernel, radix page-table edits charged through the
    memory system, and IPI-based TLB shootdowns that interrupt every core
    which may cache the mapping. Only the OS can touch the page table, so
    every operation round-trips through the kernel; the motivation
    experiment contrasts these microsecond-scale costs with PrivLib's
    nanosecond-scale VMA operations. *)

type t

val create :
  ?syscall_ns:float ->
  ?ipi_setup_ns:float ->
  ?ipi_handler_ns:float ->
  memsys:Jord_arch.Memsys.t ->
  unit ->
  t
(** Defaults: 420 ns syscall entry/exit, 160 ns serial IPI programming per
    target core, 750 ns interrupt entry + invlpg + ack at each target. *)

val mmap : t -> core:int -> bytes:int -> perm:Jord_vm.Perm.t -> int * float
(** Allocate and map fresh pages; returns [(va, ns)]. No shootdown needed
    (no core can have cached an unmapped VA). *)

val mprotect : t -> core:int -> va:int -> bytes:int -> perm:Jord_vm.Perm.t -> float
(** Change permissions: syscall + PTE rewrites + full-machine shootdown. *)

val munmap : t -> core:int -> va:int -> bytes:int -> float
(** Unmap: syscall + PTE clears + full-machine shootdown. *)

val translate :
  t -> core:int -> va:int -> access:Jord_vm.Perm.access -> int * float
(** TLB hierarchy lookup, hardware page walk on miss (4 dependent table
    reads through the caches). Returns [(phys, ns)].
    @raise Jord_vm.Fault.Fault on unmapped or denied access. *)

val shootdown_ns : t -> initiator:int -> float
(** Cost of one IPI shootdown across all other cores, as used by
    mprotect/munmap: serial IPI programming plus the farthest handler's
    round trip. *)

val page_table : t -> Jord_vm.Page_table.t
val tlb : t -> core:int -> Jord_vm.Tlb.t
