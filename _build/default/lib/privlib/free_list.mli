(** Per-size-class free lists of VMA chunks (paper §4.1 and §4.4).

    Following segregated-list allocators (the paper's citation [43] is
    mimalloc, whose key idea is free-list sharding), each size class keeps
    a shared LIFO backing list plus a per-core shard cache. A chunk is
    identified by its plain-list index (which, with the class, determines
    its VA) and carries its physical backing. The hot path pops from the
    core-local shard (an L1-resident head line); batches move between the
    shard and the shared list — one atomic on the shared head per batch —
    and the shared list refills from the OS through [uat_config]. Without
    the sharding, every mmap would ping-pong the shared head line across all
    executor cores, which is incompatible with the paper's 16 ns VMA
    allocation. *)

type t

val create :
  os:Os_facade.t ->
  va_cfg:Jord_vm.Va.config ->
  ?refill_batch:int ->
  ?cores:int ->
  ?shard_batch:int ->
  unit ->
  t
(** [refill_batch] chunks are reserved per [uat_config] call (default 64);
    each core-local shard exchanges [shard_batch] chunks (default 16) with
    the shared list. *)

val alloc :
  t ->
  memsys:Jord_arch.Memsys.t ->
  core:int ->
  Jord_vm.Size_class.t ->
  int * int * float
(** [alloc t ~memsys ~core sc] pops a chunk: [(index, phys, latency_ns)].
    The latency covers the atomic list-head update, the chunk-header read,
    and — rarely — the refill syscall. *)

val free :
  t ->
  memsys:Jord_arch.Memsys.t ->
  core:int ->
  Jord_vm.Size_class.t ->
  index:int ->
  phys:int ->
  float
(** Push a chunk back; returns latency. *)

val live_chunks : t -> int
(** Chunks currently allocated (popped and not yet pushed back). *)

val allocations_by_class : t -> (Jord_vm.Size_class.t * int) list
(** Cumulative allocation counts per size class (non-empty classes only) —
    the distribution behind the paper's "99% of VMAs are smaller than 1 KB"
    sizing argument (§4.1). *)

val small_allocation_share : t -> bytes:int -> float
(** Fraction of all allocations at or below [bytes]. *)

val free_chunks : t -> Jord_vm.Size_class.t -> int
