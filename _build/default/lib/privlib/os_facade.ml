type t = {
  mutable next : int;
  syscall_ns : float;
  mutable calls : int;
  mutable reserved : int;
  base : int;
}

let create ?(phys_base = 1 lsl 36) ?(syscall_ns = 1800.0) () =
  { next = phys_base; syscall_ns; calls = 0; reserved = 0; base = phys_base }

let reserve_chunk t ~bytes =
  if bytes <= 0 then invalid_arg "Os_facade.reserve_chunk";
  let align = Jord_util.Bits.ceil_pow2 bytes in
  let addr = Jord_util.Bits.align_up t.next align in
  t.next <- addr + align;
  t.reserved <- t.reserved + align;
  addr

let syscall_ns t = t.syscall_ns
let uat_config_calls t = t.calls
let note_uat_config t = t.calls <- t.calls + 1
let reserved_bytes t = t.reserved
