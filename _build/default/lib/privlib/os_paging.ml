module Vm = Jord_vm

type t = {
  pt : Vm.Page_table.t;
  tlbs : Vm.Tlb.t array;
  memsys : Jord_arch.Memsys.t;
  topo : Jord_arch.Topology.t;
  syscall_ns : float;
  ipi_setup_ns : float;
  ipi_handler_ns : float;
  mutable next_va : int;
  mutable next_phys : int;
}

(* The page-based half of the address space lives below the Jord Top tag. *)
let va_base = 1 lsl 30
let phys_base = 1 lsl 38

let create ?(syscall_ns = 420.0) ?(ipi_setup_ns = 160.0) ?(ipi_handler_ns = 750.0)
    ~memsys () =
  let topo = Jord_arch.Memsys.topology memsys in
  {
    pt = Vm.Page_table.create ();
    tlbs = Array.init (Jord_arch.Topology.cores topo) (fun _ -> Vm.Tlb.create ());
    memsys;
    topo;
    syscall_ns;
    ipi_setup_ns;
    ipi_handler_ns;
    next_va = va_base;
    next_phys = phys_base;
  }

let page_table t = t.pt
let tlb t ~core = t.tlbs.(core)
let page = Vm.Page_table.page_bytes
let pages_of bytes = Jord_util.Bits.ceil_div bytes page

let charge_writes t ~core addrs =
  List.fold_left
    (fun acc addr -> acc +. Jord_arch.Memsys.write t.memsys ~core ~addr)
    0.0 addrs

let charge_reads t ~core addrs =
  List.fold_left
    (fun acc addr -> acc +. Jord_arch.Memsys.read t.memsys ~core ~addr)
    0.0 addrs

(* IPI shootdown: the initiator programs one IPI per target core (serial),
   then waits for the farthest target's interrupt handler to invalidate its
   TLB and acknowledge. *)
let shootdown_ns t ~initiator =
  let cores = Jord_arch.Topology.cores t.topo in
  let worst = ref 0.0 in
  for target = 0 to cores - 1 do
    if target <> initiator then begin
      Vm.Tlb.flush t.tlbs.(target);
      let rtt = 2.0 *. Jord_arch.Topology.latency_ns t.topo ~src:initiator ~dst:target in
      let d = rtt +. t.ipi_handler_ns in
      if d > !worst then worst := d
    end
  done;
  (float_of_int (cores - 1) *. t.ipi_setup_ns) +. !worst

let mmap t ~core ~bytes ~perm =
  let n = pages_of bytes in
  let va = t.next_va in
  t.next_va <- va + (n * page);
  let cost = ref (2.0 *. t.syscall_ns) in
  for i = 0 to n - 1 do
    let phys = t.next_phys in
    t.next_phys <- phys + page;
    let touched = Vm.Page_table.map t.pt ~va:(va + (i * page)) ~phys ~perm in
    cost := !cost +. charge_writes t ~core touched
  done;
  (va, !cost)

let mprotect t ~core ~va ~bytes ~perm =
  let n = pages_of bytes in
  let cost = ref (2.0 *. t.syscall_ns) in
  for i = 0 to n - 1 do
    let touched = Vm.Page_table.protect t.pt ~va:(va + (i * page)) ~perm in
    cost := !cost +. charge_writes t ~core touched
  done;
  ignore (Vm.Tlb.invalidate_page t.tlbs.(core) ~va);
  !cost +. shootdown_ns t ~initiator:core

let munmap t ~core ~va ~bytes =
  let n = pages_of bytes in
  let cost = ref (2.0 *. t.syscall_ns) in
  for i = 0 to n - 1 do
    let touched = Vm.Page_table.unmap t.pt ~va:(va + (i * page)) in
    cost := !cost +. charge_writes t ~core touched
  done;
  ignore (Vm.Tlb.invalidate_page t.tlbs.(core) ~va);
  !cost +. shootdown_ns t ~initiator:core

let translate t ~core ~va ~access =
  let check perm phys =
    if not (Vm.Perm.allows perm access) then
      Vm.Fault.raise_fault (Vm.Fault.Permission { va; pd = -1; need = access });
    phys
  in
  match Vm.Tlb.lookup t.tlbs.(core) ~va with
  | Some (phys_page, perm) ->
      (check perm (phys_page + (va land (page - 1))), 0.0)
  | None -> (
      let result, touched = Vm.Page_table.walk t.pt ~va in
      let walk_ns = charge_reads t ~core touched in
      match result with
      | Some (phys, perm) ->
          Vm.Tlb.fill t.tlbs.(core) ~va ~phys:(phys land lnot (page - 1)) ~perm;
          (check perm phys, walk_ns)
      | None -> Vm.Fault.raise_fault (Vm.Fault.Unmapped va))
