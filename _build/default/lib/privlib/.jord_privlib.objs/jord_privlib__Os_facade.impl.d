lib/privlib/os_facade.ml: Jord_util
