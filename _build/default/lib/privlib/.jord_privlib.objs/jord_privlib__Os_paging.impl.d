lib/privlib/os_paging.ml: Array Jord_arch Jord_util Jord_vm List
