lib/privlib/privlib.mli: Free_list Jord_vm Os_facade Pd
