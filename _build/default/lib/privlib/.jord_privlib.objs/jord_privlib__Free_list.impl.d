lib/privlib/free_list.ml: Array Hashtbl Int Jord_arch Jord_vm List Os_facade
