lib/privlib/os_paging.mli: Jord_arch Jord_vm
