lib/privlib/free_list.mli: Jord_arch Jord_vm Os_facade
