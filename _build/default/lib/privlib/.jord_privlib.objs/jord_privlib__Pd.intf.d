lib/privlib/pd.mli: Jord_arch
