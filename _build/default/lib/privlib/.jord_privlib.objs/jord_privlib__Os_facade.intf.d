lib/privlib/os_facade.mli:
