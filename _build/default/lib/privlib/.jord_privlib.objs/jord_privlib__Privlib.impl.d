lib/privlib/privlib.ml: Free_list Fun Hashtbl Jord_arch Jord_vm List Option Os_facade Pd
