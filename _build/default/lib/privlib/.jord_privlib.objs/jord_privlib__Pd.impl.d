lib/privlib/pd.ml: Array Hashtbl Jord_arch Jord_vm List
