type chunk = { index : int; phys : int }

type shard = {
  mutable cache : chunk list;
  mutable cached : int;
  head_addr : int; (* per-core head line: stays in the owner's L1 *)
}

type class_list = {
  mutable free : chunk list; (* shared backing list *)
  mutable next_index : int;
  shared_head : int;
  shards : shard array; (* one per core *)
  live : (int, unit) Hashtbl.t;
}

type t = {
  os : Os_facade.t;
  va_cfg : Jord_vm.Va.config;
  refill_batch : int;
  shard_batch : int;
  classes : class_list array;
  mutable live : int;
  alloc_counts : int array; (* allocations per size class, cumulative *)
}

(* Free-list metadata lives in PrivLib's privileged heap, above the PD
   table: one line per shared head, one line per (core, class) shard head. *)
let head_region = 1 lsl 43

let create ~os ~va_cfg ?(refill_batch = 64) ?(cores = 512) ?(shard_batch = 16) () =
  if refill_batch <= 0 || shard_batch <= 0 || cores <= 0 then
    invalid_arg "Free_list.create";
  let n_classes = Jord_vm.Size_class.count in
  let mk c =
    {
      free = [];
      next_index = 0;
      shared_head = head_region + (c * 64);
      shards =
        Array.init cores (fun core ->
            {
              cache = [];
              cached = 0;
              head_addr = head_region + (((core + 1) * n_classes * 64) + (c * 64));
            });
      live = Hashtbl.create 64;
    }
  in
  {
    os;
    va_cfg;
    refill_batch;
    shard_batch;
    classes = Array.init n_classes mk;
    live = 0;
    alloc_counts = Array.make n_classes 0;
  }

(* Refill the shared list from the OS through uat_config. *)
let refill t cl sc =
  Os_facade.note_uat_config t.os;
  let bytes = Jord_vm.Size_class.bytes sc in
  let limit = Jord_vm.Va.slots_per_class t.va_cfg in
  let n = Int.min t.refill_batch (limit - cl.next_index) in
  if n <= 0 then failwith "Free_list: size class exhausted";
  for _ = 1 to n do
    let index = cl.next_index in
    cl.next_index <- index + 1;
    let phys = Os_facade.reserve_chunk t.os ~bytes in
    cl.free <- { index; phys } :: cl.free
  done;
  Os_facade.syscall_ns t.os

(* Move a batch from the shared list into a core's shard: one atomic on the
   shared head detaches the whole batch (LIFO list splice). *)
let grab_batch t ~memsys ~core cl sc shard =
  let refill_ns = if cl.free = [] then refill t cl sc else 0.0 in
  let rec take n acc =
    if n = 0 then acc
    else
      match cl.free with
      | [] -> acc
      | c :: rest ->
          cl.free <- rest;
          take (n - 1) (c :: acc)
  in
  let batch = take t.shard_batch [] in
  shard.cache <- batch @ shard.cache;
  shard.cached <- shard.cached + List.length batch;
  refill_ns
  +. Jord_arch.Memsys.atomic memsys ~core ~addr:cl.shared_head
  +. Jord_arch.Memsys.write memsys ~core ~addr:shard.head_addr

let alloc t ~memsys ~core sc =
  let ci = Jord_vm.Size_class.to_index sc in
  t.alloc_counts.(ci) <- t.alloc_counts.(ci) + 1;
  let cl = t.classes.(ci) in
  let shard = cl.shards.(core mod Array.length cl.shards) in
  let extra =
    if shard.cache = [] then grab_batch t ~memsys ~core cl sc shard else 0.0
  in
  match shard.cache with
  | [] -> failwith "Free_list.alloc: empty after refill"
  | chunk :: rest ->
      shard.cache <- rest;
      shard.cached <- shard.cached - 1;
      Hashtbl.replace cl.live chunk.index ();
      t.live <- t.live + 1;
      (* Pop from the core-local list: head line plus the chunk's embedded
         next pointer. *)
      let lat =
        Jord_arch.Memsys.write memsys ~core ~addr:shard.head_addr
        +. Jord_arch.Memsys.read memsys ~core ~addr:chunk.phys
        +. extra
      in
      (chunk.index, chunk.phys, lat)

let free t ~memsys ~core sc ~index ~phys =
  let cl = t.classes.(Jord_vm.Size_class.to_index sc) in
  if not (Hashtbl.mem cl.live index) then
    Jord_vm.Fault.raise_fault (Jord_vm.Fault.Bad_handle "double free of VMA chunk");
  Hashtbl.remove cl.live index;
  let shard = cl.shards.(core mod Array.length cl.shards) in
  shard.cache <- { index; phys } :: shard.cache;
  shard.cached <- shard.cached + 1;
  t.live <- t.live - 1;
  (* Overfull shard: release a batch back to the shared list. *)
  let spill =
    if shard.cached > 2 * t.shard_batch then begin
      let rec take n acc =
        if n = 0 then acc
        else
          match shard.cache with
          | [] -> acc
          | c :: rest ->
              shard.cache <- rest;
              shard.cached <- shard.cached - 1;
              take (n - 1) (c :: acc)
      in
      let batch = take t.shard_batch [] in
      cl.free <- batch @ cl.free;
      Jord_arch.Memsys.atomic memsys ~core ~addr:cl.shared_head
    end
    else 0.0
  in
  Jord_arch.Memsys.write memsys ~core ~addr:phys
  +. Jord_arch.Memsys.write memsys ~core ~addr:shard.head_addr
  +. spill

let live_chunks t = t.live

let allocations_by_class t =
  Array.to_list
    (Array.mapi (fun i n -> (Jord_vm.Size_class.of_index i, n)) t.alloc_counts)
  |> List.filter (fun (_, n) -> n > 0)

let small_allocation_share t ~bytes =
  let total = Array.fold_left ( + ) 0 t.alloc_counts in
  if total = 0 then 0.0
  else begin
    let small = ref 0 in
    Array.iteri
      (fun i n ->
        if Jord_vm.Size_class.bytes (Jord_vm.Size_class.of_index i) <= bytes then
          small := !small + n)
      t.alloc_counts;
    float_of_int !small /. float_of_int total
  end

let free_chunks t sc =
  let cl = t.classes.(Jord_vm.Size_class.to_index sc) in
  List.length cl.free + Array.fold_left (fun acc s -> acc + s.cached) 0 cl.shards
