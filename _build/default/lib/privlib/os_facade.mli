(** The OS side of Jord (paper §4.4).

    During initialization the OS loads PrivLib, reserves the Jord virtual
    region and hands PrivLib a reserved physical memory chunk; afterwards
    PrivLib only re-enters the kernel through the [uat_config] syscall when
    its physical free lists run dry. This facade models exactly that
    contract: an aligned physical bump allocator plus a syscall cost. *)

type t

val create : ?phys_base:int -> ?syscall_ns:float -> unit -> t
(** Defaults: physical region at 2^36, uat_config costing 1.8 us (syscall
    entry/exit plus page-table bookkeeping for the reserved chunk). *)

val reserve_chunk : t -> bytes:int -> int
(** Physical address of a fresh chunk, naturally aligned to its size class.
    Never fails (the facade models an abundant reserved pool). *)

val syscall_ns : t -> float
(** Latency to charge for one [uat_config] refill call. *)

val uat_config_calls : t -> int
(** How many refills PrivLib performed — should stay tiny in steady state. *)

val note_uat_config : t -> unit
val reserved_bytes : t -> int
