type status = Idle | Running of int | Suspended

type shard = { mutable ids : int list; mutable cached : int; head_addr : int }

type t = {
  max_pds : int;
  mutable free : int list;
  live : (int, status) Hashtbl.t;
  shared_head : int;
  shards : shard array;
  batch : int;
}

let pd_table_base = 1 lsl 42
let config_addr id = pd_table_base + (id * 64)

let create ?(max_pds = 4096) ?(cores = 512) () =
  if max_pds < 2 then invalid_arg "Pd.create";
  {
    max_pds;
    (* PD 0 is the root domain and is never handed out. *)
    free = List.init (max_pds - 1) (fun i -> i + 1);
    live = Hashtbl.create 64;
    shared_head = pd_table_base - 64;
    shards =
      Array.init cores (fun core ->
          { ids = []; cached = 0; head_addr = pd_table_base - ((core + 2) * 64) });
    batch = 8;
  }

let alloc t ~memsys ~core =
  let shard = t.shards.(core mod Array.length t.shards) in
  let extra =
    if shard.ids = [] then begin
      (* Detach a batch of ids from the shared list (one atomic). *)
      let rec take n acc =
        if n = 0 then acc
        else
          match t.free with
          | [] -> acc
          | id :: rest ->
              t.free <- rest;
              take (n - 1) (id :: acc)
      in
      let batch = take t.batch [] in
      if batch = [] then
        Jord_vm.Fault.raise_fault (Jord_vm.Fault.Bad_handle "out of PD ids");
      shard.ids <- batch;
      shard.cached <- List.length batch;
      Jord_arch.Memsys.atomic memsys ~core ~addr:t.shared_head
    end
    else 0.0
  in
  match shard.ids with
  | [] -> Jord_vm.Fault.raise_fault (Jord_vm.Fault.Bad_handle "out of PD ids")
  | id :: rest ->
      shard.ids <- rest;
      shard.cached <- shard.cached - 1;
      Hashtbl.replace t.live id Idle;
      (* Pop from the core-local shard + initialization of the config line. *)
      let lat =
        extra
        +. Jord_arch.Memsys.write memsys ~core ~addr:shard.head_addr
        +. Jord_arch.Memsys.write memsys ~core ~addr:(config_addr id)
      in
      (id, lat)

let check_live t id =
  if id <= 0 || id >= t.max_pds then
    Jord_vm.Fault.raise_fault (Jord_vm.Fault.Bad_handle "invalid PD id");
  match Hashtbl.find_opt t.live id with
  | Some s -> s
  | None -> Jord_vm.Fault.raise_fault (Jord_vm.Fault.Bad_handle "PD not allocated")

let status t id = check_live t id

let free t ~memsys ~core id =
  (match check_live t id with
  | Running _ ->
      Jord_vm.Fault.raise_fault (Jord_vm.Fault.Bad_handle "cannot destroy a running PD")
  | Idle | Suspended -> ());
  Hashtbl.remove t.live id;
  let shard = t.shards.(core mod Array.length t.shards) in
  shard.ids <- id :: shard.ids;
  shard.cached <- shard.cached + 1;
  let spill =
    if shard.cached > 2 * t.batch then begin
      let rec take n acc =
        if n = 0 then acc
        else
          match shard.ids with
          | [] -> acc
          | i :: rest ->
              shard.ids <- rest;
              shard.cached <- shard.cached - 1;
              take (n - 1) (i :: acc)
      in
      t.free <- take t.batch [] @ t.free;
      Jord_arch.Memsys.atomic memsys ~core ~addr:t.shared_head
    end
    else 0.0
  in
  Jord_arch.Memsys.write memsys ~core ~addr:(config_addr id)
  +. Jord_arch.Memsys.write memsys ~core ~addr:shard.head_addr
  +. spill

let set_status t id s =
  ignore (check_live t id);
  Hashtbl.replace t.live id s

let is_live t id = Hashtbl.mem t.live id
let live_count t = Hashtbl.length t.live
