lib/exp/ablations.mli:
