lib/exp/background.ml: Jord_arch Jord_baseline Jord_privlib Jord_util Jord_vm List Printf
