lib/exp/claims.ml: Exp_common Fig14 Float Jord_faas Jord_metrics Jord_util List Motivation Printf Table4
