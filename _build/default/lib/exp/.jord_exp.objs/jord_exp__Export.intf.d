lib/exp/export.mli:
