lib/exp/exp_common.mli: Jord_faas Jord_metrics
