lib/exp/fig11.mli:
