lib/exp/ablations.ml: Float Jord_arch Jord_faas Jord_metrics Jord_util Jord_vm Jord_workloads List Printf String
