lib/exp/exp_common.ml: Array Float Hashtbl Int Jord_faas Jord_metrics Jord_util Jord_workloads List
