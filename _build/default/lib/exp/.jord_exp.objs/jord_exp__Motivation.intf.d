lib/exp/motivation.mli:
