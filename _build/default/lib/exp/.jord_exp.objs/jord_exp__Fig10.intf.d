lib/exp/fig10.mli:
