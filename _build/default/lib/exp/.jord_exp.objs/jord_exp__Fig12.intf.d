lib/exp/fig12.mli:
