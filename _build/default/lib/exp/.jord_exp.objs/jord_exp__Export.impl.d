lib/exp/export.ml: Fig10 Fig12 Fig13 Fig14 Fig9 Filename Jord_faas List Motivation Printf String Sys Table4
