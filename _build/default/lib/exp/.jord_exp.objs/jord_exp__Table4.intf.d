lib/exp/table4.mli:
