lib/exp/fig11.ml: Exp_common Float Jord_faas Jord_metrics Jord_util Jord_workloads List Printf
