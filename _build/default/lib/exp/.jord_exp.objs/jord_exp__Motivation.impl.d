lib/exp/motivation.ml: Int Jord_arch Jord_privlib Jord_util Jord_vm List Printf
