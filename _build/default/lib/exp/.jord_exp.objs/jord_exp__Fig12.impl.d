lib/exp/fig12.ml: Buffer Exp_common Jord_faas Jord_metrics Jord_util List Printf
