lib/exp/table4.ml: Array Int Jord_arch Jord_privlib Jord_util Jord_vm List Queue
