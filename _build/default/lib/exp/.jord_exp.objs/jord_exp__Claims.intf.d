lib/exp/claims.mli:
