lib/exp/fig14.ml: Jord_arch Jord_faas Jord_metrics Jord_util Jord_workloads List
