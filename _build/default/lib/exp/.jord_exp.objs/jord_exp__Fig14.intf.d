lib/exp/fig14.mli:
