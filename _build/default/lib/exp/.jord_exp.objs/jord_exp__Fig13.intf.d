lib/exp/fig13.mli:
