lib/exp/fig13.ml: Buffer Exp_common Jord_faas Jord_metrics Jord_privlib Jord_util Jord_vm List Printf
