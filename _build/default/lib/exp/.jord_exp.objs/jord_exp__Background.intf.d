lib/exp/background.mli:
