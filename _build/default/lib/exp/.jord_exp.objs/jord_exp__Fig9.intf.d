lib/exp/fig9.mli: Exp_common Jord_faas
