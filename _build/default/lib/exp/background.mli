(** The §2.1 background ladder: per-invocation overhead and startup latency
    across the three generations of FaaS the paper contrasts —

    - a traditional container/microVM platform (orchestrator-mediated IPC,
      indirect data channels, sandbox cold starts);
    - the enhanced NightCore baseline (threads + pipes + shm);
    - Jord (zero-copy ArgBufs, PrivLib isolation).

    The paper's claim: the first is *milliseconds* per invocation, the
    second *microseconds*, Jord *hundreds of nanoseconds* — and the
    function-as-a-function vision needs the third. *)

type row = {
  system : string;
  warm_overhead_ns : float;  (** Control+data overhead, warm invocation. *)
  startup_ns : float;  (** Cost of bringing up an execution environment. *)
}

val run : unit -> row list
val report : unit -> string
