let quote field =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') field then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' field) ^ "\""
  else field

let csv_of_rows ~header ~rows =
  let line fields = String.concat "," (List.map quote fields) ^ "\n" in
  String.concat "" (line header :: List.map line rows)

let write_file ~dir ~name content =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let path = Filename.concat dir name in
  let oc = open_out path in
  output_string oc content;
  close_out oc;
  path

let f = Printf.sprintf "%.4f"

let fig9 ~dir ?quick () =
  let results = Fig9.run ?quick () in
  List.map
    (fun r ->
      let rows =
        List.concat_map
          (fun s ->
            List.map
              (fun p ->
                [
                  Jord_faas.Variant.name s.Fig9.variant;
                  f p.Fig9.rate;
                  f p.Fig9.tput;
                  f p.Fig9.p99_us;
                  f r.Fig9.slo_us;
                ])
              s.Fig9.points)
          r.Fig9.series
      in
      write_file ~dir
        ~name:(Printf.sprintf "fig9_%s.csv" (String.lowercase_ascii r.Fig9.workload))
        (csv_of_rows ~header:[ "system"; "load_mrps"; "tput_mrps"; "p99_us"; "slo_us" ]
           ~rows))
    results

let fig10 ~dir ?quick () =
  let results = Fig10.run ?quick () in
  let rows =
    List.concat_map
      (fun r ->
        List.map (fun (us, frac) -> [ r.Fig10.workload; f us; f frac ]) r.Fig10.cdf)
      results
  in
  [
    write_file ~dir ~name:"fig10_cdf.csv"
      (csv_of_rows ~header:[ "workload"; "service_us"; "fraction" ] ~rows);
  ]

let fig12 ~dir ?quick () =
  let results = Fig12.run ?quick () in
  List.map
    (fun r ->
      let side = match r.Fig12.side with `I -> "ivlb" | `D -> "dvlb" in
      let rows =
        List.concat_map
          (fun s ->
            List.map
              (fun (rate, p99) -> [ string_of_int s.Fig12.entries; f rate; f p99 ])
              s.Fig12.points)
          r.Fig12.series
      in
      write_file ~dir
        ~name:
          (Printf.sprintf "fig12_%s_%s.csv" (String.lowercase_ascii r.Fig12.workload) side)
        (csv_of_rows ~header:[ "entries"; "load_mrps"; "p99_us" ] ~rows))
    results

let fig13 ~dir ?quick () =
  let r = Fig13.run ?quick () in
  let rows =
    List.map (fun (rate, p99) -> [ "Jord"; f rate; f p99 ]) r.Fig13.jord
    @ List.map (fun (rate, p99) -> [ "Jord_BT"; f rate; f p99 ]) r.Fig13.jord_bt
  in
  [
    write_file ~dir ~name:"fig13_btree.csv"
      (csv_of_rows ~header:[ "system"; "load_mrps"; "p99_us" ] ~rows);
  ]

let fig14 ~dir ?quick () =
  let pts = Fig14.run ?quick () in
  let rows =
    List.map
      (fun p ->
        [
          p.Fig14.label;
          string_of_int p.Fig14.cores;
          string_of_int p.Fig14.sockets;
          f p.Fig14.service_us;
          f p.Fig14.shootdown_ns;
          f p.Fig14.dispatch_us;
        ])
      pts
  in
  [
    write_file ~dir ~name:"fig14_scalability.csv"
      (csv_of_rows
         ~header:[ "scale"; "cores"; "sockets"; "service_us"; "shootdown_ns"; "dispatch_us" ]
         ~rows);
  ]

let table4 ~dir ?iters () =
  let rows =
    List.map
      (fun r ->
        [
          r.Table4.op;
          f r.Table4.sim_ns;
          f r.Table4.fpga_ns;
          f r.Table4.paper_sim_ns;
          f r.Table4.paper_fpga_ns;
        ])
      (Table4.rows ?iters ())
  in
  [
    write_file ~dir ~name:"table4_latencies.csv"
      (csv_of_rows
         ~header:[ "operation"; "sim_ns"; "fpga_ns"; "paper_sim_ns"; "paper_fpga_ns" ]
         ~rows);
  ]

let motivation ~dir ?iters () =
  let rows =
    List.map
      (fun r ->
        [ r.Motivation.op; f r.Motivation.paged_ns; f r.Motivation.jord_ns; f r.Motivation.speedup ])
      (Motivation.run ?iters ())
  in
  [
    write_file ~dir ~name:"motivation_paging.csv"
      (csv_of_rows ~header:[ "operation"; "paged_ns"; "jord_ns"; "speedup" ] ~rows);
  ]

let all ~dir ?quick () =
  let iters = match quick with Some true -> Some 800 | _ -> None in
  List.concat
    [
      table4 ~dir ?iters ();
      motivation ~dir ?iters ();
      fig9 ~dir ?quick ();
      fig10 ~dir ?quick ();
      fig12 ~dir ?quick ();
      fig13 ~dir ?quick ();
      fig14 ~dir ?quick ();
    ]
