(** Figure 13 — Jord vs Jord_BT (B-tree VMA table) p99-vs-load on Hipster,
    plus the two mechanism measurements the paper cites: the higher VLB-miss
    walk penalty (2 ns plain list vs ~20 ns B-tree) and the extra PrivLib
    time spent on VMA management (+167% from rebalancing).

    Expected shape: Jord_BT reaches ~60% of Jord's throughput under SLO but
    still beats NightCore. *)

type result = {
  slo_us : float;
  jord : (float * float) list;  (** (load, p99 us) *)
  jord_bt : (float * float) list;
  jord_tput : float;
  bt_tput : float;
  jord_walk_ns : float;  (** Mean VLB-miss penalty. *)
  bt_walk_ns : float;
  jord_vma_mgmt_ns_per_req : float;
  bt_vma_mgmt_ns_per_req : float;
  bt_rebalances : int;
}

val run : ?quick:bool -> unit -> result
val report : ?quick:bool -> unit -> string
