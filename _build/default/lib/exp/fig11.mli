(** Figure 11 — service-time breakdown for the eight selected functions
    (Table 3): execution vs isolation vs dispatch for Jord, execution vs
    pipe/shm overhead for NightCore, at moderate load.

    Expected shape: Jord's overhead is ~11% of service time on average
    (except RP, whose >100 nested invocations push it higher); NightCore's
    overhead exceeds execution time in most cases and reaches ~3x for RP. *)

type entry = {
  workload : string;
  fn : string;  (** Table 3 abbreviation. *)
  jord_exec_us : float;
  jord_isolation_us : float;
  jord_dispatch_us : float;
  jord_service_us : float;
  nc_exec_us : float;
  nc_pipe_us : float;
  nc_service_us : float;
}

val run : ?quick:bool -> unit -> entry list
val report : ?quick:bool -> unit -> string
