(** Figure 9 — p99 latency vs offered load for the four workloads under
    NightCore, Jord and Jord_NI, plus the derived throughput-under-SLO
    table (the basis of the "within 16% of Jord_NI" and ">2x NightCore"
    claims). *)

type point = { rate : float; tput : float; p99_us : float }

type series = { variant : Jord_faas.Variant.t; points : point list }

type result = { workload : string; slo_us : float; series : series list }

val run :
  ?quick:bool -> ?seeds:int -> ?specs:Exp_common.spec list -> unit -> result list
(** [seeds > 1] replicates every point with independent seeds and reports
    the median p99 / mean throughput. *)

val report : ?quick:bool -> ?seeds:int -> unit -> string
