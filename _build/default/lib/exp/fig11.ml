module Variant = Jord_faas.Variant
module R = Jord_metrics.Recorder

type entry = {
  workload : string;
  fn : string;
  jord_exec_us : float;
  jord_isolation_us : float;
  jord_dispatch_us : float;
  jord_service_us : float;
  nc_exec_us : float;
  nc_pipe_us : float;
  nc_service_us : float;
}

(* Table 3: the eight selected functions and their abbreviations. *)
let selected =
  [
    ("Hipster", Jord_workloads.Hipster.get_cart, "GC");
    ("Hipster", Jord_workloads.Hipster.place_order, "PO");
    ("Hotel", Jord_workloads.Hotel.search_nearby, "SN");
    ("Hotel", Jord_workloads.Hotel.make_reservation, "MR");
    ("Media", Jord_workloads.Media.upload_unique_id, "UU");
    ("Media", Jord_workloads.Media.read_page, "RP");
    ("Social", Jord_workloads.Social.follow, "F");
    ("Social", Jord_workloads.Social.compose_post, "CP");
  ]

(* Moderate load per workload, low enough that NightCore is not saturated
   (its breakdown would otherwise be dominated by queueing). *)
let breakdown_rate = function
  | "Hipster" -> 1.2
  | "Hotel" -> 0.8
  | "Media" -> 0.35
  | "Social" -> 0.25
  | _ -> 0.5

let run ?(quick = false) () =
  let measure spec variant =
    let open Exp_common in
    let rate = breakdown_rate spec.name in
    let samples = if quick then 2500.0 else 6000.0 in
    let spec =
      { spec with duration_us = Float.max spec.duration_us (samples /. rate); warmup = 300 }
    in
    let _, recorder = run_point spec ~config:(config_for variant) ~rate_mrps:rate in
    R.by_entry recorder
  in
  List.concat_map
    (fun spec ->
      let jord = measure spec Variant.Jord in
      let nc = measure spec Variant.Nightcore in
      let find name rows =
        List.find_opt (fun (n, _, _, _) -> n = name) rows
      in
      List.filter_map
        (fun (workload, fn_name, abbrev) ->
          if workload <> spec.Exp_common.name then None
          else
            match (find fn_name jord, find fn_name nc) with
            | Some (_, _, j_lat, j), Some (_, _, n_lat, n) ->
                Some
                  {
                    workload;
                    fn = abbrev;
                    (* Zero-copy data movement is part of execution for
                       Jord; copies and pipes are overhead for NightCore. *)
                    jord_exec_us = (j.R.exec_ns +. j.R.comm_ns) /. 1000.0;
                    jord_isolation_us = j.R.isolation_ns /. 1000.0;
                    jord_dispatch_us = j.R.dispatch_ns /. 1000.0;
                    jord_service_us = j_lat;
                    nc_exec_us = n.R.exec_ns /. 1000.0;
                    nc_pipe_us = (n.R.comm_ns +. n.R.isolation_ns +. n.R.dispatch_ns) /. 1000.0;
                    nc_service_us = n_lat;
                  }
            | _ -> None)
        selected)
    Exp_common.all

let report ?quick () =
  let entries = run ?quick () in
  let pct part total = if total <= 0.0 then "-" else Printf.sprintf "%.0f%%" (100.0 *. part /. total) in
  Jord_util.Render.table
    ~title:
      "Figure 11: breakdown of per-request busy time for the selected functions\n\
       (shares of the invocation tree's busy time; async trees overlap, so\n\
       busy time can exceed the wall-clock service time)"
    ~header:
      [
        "Fn";
        "Workload";
        "J.service(us)";
        "J.exec";
        "J.isol";
        "J.disp";
        "NC.service(us)";
        "NC.exec";
        "NC.pipe";
        "NC/J";
      ]
    ~rows:
      (List.map
         (fun e ->
           let j_total = e.jord_exec_us +. e.jord_isolation_us +. e.jord_dispatch_us in
           let n_total = e.nc_exec_us +. e.nc_pipe_us in
           [
             e.fn;
             e.workload;
             Jord_util.Render.f2 e.jord_service_us;
             pct e.jord_exec_us j_total;
             pct e.jord_isolation_us j_total;
             pct e.jord_dispatch_us j_total;
             Jord_util.Render.f2 e.nc_service_us;
             pct e.nc_exec_us n_total;
             pct e.nc_pipe_us n_total;
             (if e.jord_service_us > 0.0 then
                Jord_util.Render.f2 (e.nc_service_us /. e.jord_service_us)
              else "-");
           ])
         entries)
    ()
