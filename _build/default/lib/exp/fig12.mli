(** Figure 12 — sensitivity of p99-vs-load to the number of I-VLB entries
    (Hipster) and D-VLB entries (Media), for {1, 2, 4, 16} entries.

    Expected shape: 2 I-VLB entries already reach ~99% of peak throughput
    (function code + PrivLib code); Media wants ~8 D-VLB entries (private
    stack/heap, own ArgBuf, and the live child ArgBufs of a batch). *)

type series = { entries : int; points : (float * float) list (** (load, p99 us) *) }

type result = {
  workload : string;
  side : [ `I | `D ];
  slo_us : float;
  series : series list;
  tput_under_slo : (int * float) list;
}

val run : ?quick:bool -> unit -> result list
val report : ?quick:bool -> unit -> string
