module Variant = Jord_faas.Variant
module Server = Jord_faas.Server
module R = Jord_metrics.Recorder

type series = { entries : int; points : (float * float) list }

type result = {
  workload : string;
  side : [ `I | `D ];
  slo_us : float;
  series : series list;
  tput_under_slo : (int * float) list;
}

let sizes = [ 1; 2; 4; 16 ]

let run ?(quick = false) () =
  let cases = [ (Exp_common.hipster, `I); (Exp_common.media, `D) ] in
  List.map
    (fun (spec, side) ->
      let spec = if quick then Exp_common.scale 0.4 spec else spec in
      let slo_us = Exp_common.slo_us spec in
      let series =
        List.map
          (fun entries ->
            let base = Exp_common.config_for Variant.Jord in
            let config =
              match side with
              | `I -> { base with Server.i_vlb_entries = entries }
              | `D -> { base with Server.d_vlb_entries = entries }
            in
            let pts =
              List.map
                (fun (rate, recorder) -> (rate, R.p99_us recorder))
                (Exp_common.sweep spec ~config)
            in
            { entries; points = pts })
          sizes
      in
      let tput_under_slo =
        List.map
          (fun s ->
            let best =
              List.fold_left
                (fun best (rate, p99) ->
                  if p99 <= slo_us && rate > best then rate else best)
                0.0 s.points
            in
            (s.entries, best))
          series
      in
      { workload = spec.Exp_common.name; side; slo_us; series; tput_under_slo })
    cases

let side_name = function `I -> "I-VLB" | `D -> "D-VLB"

let report ?quick () =
  let results = run ?quick () in
  let buf = Buffer.create 4096 in
  List.iter
    (fun r ->
      let named =
        List.map
          (fun s -> (Printf.sprintf "%d-entry" s.entries, s.points))
          r.series
      in
      Buffer.add_string buf
        (Jord_util.Render.series
           ~title:
             (Printf.sprintf "Figure 12 [%s, %s]: p99 vs load (SLO = %.1f us)"
                r.workload (side_name r.side) r.slo_us)
           ~x_label:"load_mrps" ~y_label:"p99_us" named);
      Buffer.add_string buf
        (Jord_util.Render.table
           ~title:(Printf.sprintf "Load under SLO by %s size" (side_name r.side))
           ~header:[ "entries"; "max load under SLO (MRPS)" ]
           ~rows:
             (List.map
                (fun (e, t) -> [ string_of_int e; Jord_util.Render.f2 t ])
                r.tput_under_slo)
           ());
      Buffer.add_char buf '\n')
    results;
  Buffer.contents buf
