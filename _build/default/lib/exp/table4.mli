(** Table 4 — VMA and PD operation latencies on the Simulator and FPGA
    timing profiles.

    Steady-state microbenchmark: each PrivLib operation runs in a loop on a
    warm machine; the reported number is the mean latency after warm-up.
    "VMA lookup" is the VTW walk on a VLB miss whose VTE hits the L1D — the
    paper's common case. *)

type row = { op : string; sim_ns : float; fpga_ns : float; paper_sim_ns : float; paper_fpga_ns : float }

val rows : ?iters:int -> unit -> row list
val report : ?iters:int -> unit -> string
