(** Design-choice ablations beyond the paper's figures.

    The paper declares the dispatch-policy study out of scope (§3.3) and
    asserts its deadlock-avoidance and orchestrator-grouping choices without
    sweeping them; these benches back those choices with data:

    - dispatch policy: JBSQ vs random vs round-robin at fixed load;
    - orchestrator count on the 32-core machine;
    - JBSQ queue bound;
    - internal-queue priority on vs off (deadlock-avoidance rule);
    - VTE sub-array size (the 20-sharers overflow step, paper 4.3);
    - VTD capacity pressure (directory-victim fallback, paper 4.2). *)

type row = { label : string; tput_mrps : float; p99_us : float; mean_us : float }

val dispatch_policies : ?quick:bool -> unit -> row list

val sub_array_overflow : unit -> (int * float) list
(** (sharer PDs, warm translate ns) — the cost step past the 20-entry VTE
    sub-array (overflow-pointer chase). *)

val vtd_fallback : sets:int -> live_vtes:int -> float
(** Share of shootdowns that lost VTD tracking for the given geometry and
    VTE working set (the coherence directory absorbs them, paper §4.2). *)

val orchestrator_counts : ?quick:bool -> unit -> row list
val queue_bounds : ?quick:bool -> unit -> row list
val internal_priority : ?quick:bool -> unit -> row list
val report : ?quick:bool -> unit -> string
